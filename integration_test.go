package roughsurface

import (
	"math"
	"path/filepath"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/core"
	"roughsurface/internal/figures"
	"roughsurface/internal/grid"
	"roughsurface/internal/propag"
	"roughsurface/internal/stats"
)

// TestEndToEndPipeline exercises the full product path a downstream user
// takes: declare a scene → generate → persist → reload → analyze →
// propagate over it. Each stage checks the invariants the previous
// stages promise.
func TestEndToEndPipeline(t *testing.T) {
	zero := 0.0
	scene := core.Scene{
		Nx: 256, Ny: 128, Dx: 2, Dy: 2,
		Method: core.MethodPlate,
		Seed:   2026,
		Regions: []core.RegionSpec{
			{Shape: "rect", X1: &zero, T: 20,
				Spectrum: core.SpectrumSpec{Family: "gaussian", H: 0.3, CL: 12}},
			{Shape: "rect", X0: &zero, T: 20,
				Spectrum: core.SpectrumSpec{Family: "exponential", H: 2.0, CL: 10}},
		},
	}

	// Scene survives its own JSON round trip.
	blob, err := scene.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	scene2, err := core.ParseScene(blob)
	if err != nil {
		t.Fatal(err)
	}

	res, err := core.Generate(scene2)
	if err != nil {
		t.Fatal(err)
	}
	surf := res.Surface

	// Persist + reload.
	path := filepath.Join(t.TempDir(), "scene.grid")
	if err := surf.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := grid.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.EqualWithin(surf, 0) {
		t.Fatal("reloaded surface differs")
	}

	// Regional statistics on the reloaded surface.
	calm := loaded.Sub(10, 10, 80, 100)
	rough := loaded.Sub(166, 10, 80, 100)
	sc := stats.Describe(calm.Data).Std
	sr := stats.Describe(rough.Data).Std
	if math.Abs(sc-0.3) > 0.12 {
		t.Errorf("calm region std %g want 0.3", sc)
	}
	if math.Abs(sr-2.0) > 0.5 {
		t.Errorf("rough region std %g want 2.0", sr)
	}

	// Propagation across the boundary: the rough half hurts.
	link := propag.Link{Lambda: 0.125, TxH: 1.5, RxH: 1.5}
	results, err := propag.Sweep(loaded, -240, 0, 1, 0,
		[]float64{100, 200, 300, 400}, link, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatal("sweep incomplete")
	}
	// Longest link crosses deep into the rough region; it must lose more
	// than free space alone.
	last := results[len(results)-1]
	if last.DiffractionDB <= 0 {
		t.Errorf("no diffraction loss across a 2σ boulder field: %+v", last)
	}
	if !approx.Exact(last.TotalDB, last.FreeSpaceDB+last.DiffractionDB) {
		t.Error("breakdown inconsistent")
	}

	// The generator handle supports extending the same surface: a window
	// east of the original must agree with the original on the shared
	// boundary column when regenerated.
	if res.Inhomo == nil {
		t.Fatal("plate result missing inhomo generator")
	}
	// Original window spans lattice [-128, 128); its column 228 is
	// lattice index 100, which is the extension window's column 0.
	ext := res.Inhomo.GenerateAt(100, -64, 64, 128)
	for iy := 0; iy < 128; iy++ {
		if math.Abs(ext.At(0, iy)-surf.At(228, iy)) > 1e-9 {
			t.Fatalf("extension mismatch at row %d", iy)
		}
	}
}

// TestFigureArtifactsConsistency: a figure's stored grid and its probe
// table derive from the same surface — regenerate and re-evaluate.
func TestFigureArtifactsConsistency(t *testing.T) {
	f, err := figures.Get(3, 128, 5)
	if err != nil {
		t.Fatal(err)
	}
	surfA, probesA, err := figures.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	surfB, _, err := figures.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if !surfA.EqualWithin(surfB, 0) {
		t.Error("figure generation not reproducible")
	}
	probesB := figures.Evaluate(f, surfA)
	for i := range probesA {
		if !approx.Exact(probesA[i].GotH, probesB[i].GotH) {
			t.Error("probe evaluation not deterministic")
		}
	}
}
