# Gnuplot script rendering the regenerated paper figures as 3D surface
# plots in the style of the publication. Generate the data first:
#
#   go run ./cmd/rrsgen -scene ... -xyz figN.xyz        # or:
#   go run ./cmd/rrsfig -fig all -out figures/
#   go run ./cmd/rrsgen -q -scene /dev/null ...         # any .grid → .xyz via rrsgen -xyz
#
# then:  gnuplot -e "datafile='figures/fig1.xyz'" scripts/plot_figures.gp
#
# rrsfig writes binary .grid files; convert with
#   go run ./cmd/rrsgen -scene <scene.json> -xyz out.xyz
# or use the CSV/XYZ flags of rrsgen directly.

if (!exists("datafile")) datafile = 'fig1.xyz'
set terminal pngcairo size 1000,800
set output datafile.'.png'
set view 55, 35
set hidden3d
set ticslevel 0
set xlabel 'x'
set ylabel 'y'
set zlabel 'f(x,y)'
set palette defined (0 '#20406a', 0.5 'white', 1 '#8b5a2b')
splot datafile using 1:2:3 with pm3d notitle
