#!/usr/bin/env bash
# bench.sh — run the root benchmark suite with pinned -benchtime/-count
# and emit a machine-readable BENCH_<date>.json (via cmd/rrsbench) so the
# repo's perf trajectory is diffable across PRs.
#
# Environment overrides:
#   BENCH      benchmark regex (default: the perf-tracked set below;
#              the Figure benches are excluded because they run seconds
#              per op — pass BENCH=. to include everything)
#   BENCHTIME  go test -benchtime (default 500ms)
#   COUNT      go test -count (default 3)
#   OUT        output path (default BENCH_<YYYY-MM-DD>.json)
#   BASELINE   optional BENCH_*.json to diff against; the run fails if
#              any common benchmark's mean ns/op regressed by >15%
#              (rrsbench compare)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-ConvVsDFT|Streaming|Autocovariance|Profile1D|WeightArray|KernelTruncation|SamplerAblation|Inhomo|ZoomWalk}"
BENCHTIME="${BENCHTIME:-500ms}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"
BASELINE="${BASELINE:-}"

go test -run='^$' -bench="$BENCH" -benchmem -benchtime="$BENCHTIME" -count="$COUNT" . \
    | tee /dev/stderr \
    | go run ./cmd/rrsbench -o "$OUT"
echo "bench.sh: wrote $OUT"

if [[ -n "$BASELINE" ]]; then
    echo "bench.sh: comparing against $BASELINE"
    go run ./cmd/rrsbench compare "$BASELINE" "$OUT"
fi

# Pyramid gate: when the run captured both ZoomWalk arms, a self-compare
# with -map proves the pyramid serves the zoom trajectory in well under
# 40% of the render-everything-at-level-0 time (tolerance -0.6 demands a
# >=60% mean ns/op improvement pyramid vs level0).
if grep -q 'ZoomWalk/pyramid' "$OUT" && grep -q 'ZoomWalk/level0' "$OUT"; then
    echo "bench.sh: pyramid zoom-walk gate (pyramid must beat level0 by >=60%)"
    go run ./cmd/rrsbench compare -map 'ZoomWalk/level0=>ZoomWalk/pyramid' \
        -tolerance -0.6 "$OUT" "$OUT"
fi

# Service-level smoke: a short closed-loop rrsload run against a local
# rrsd proves the daemon sustains load end-to-end and prints latency
# quantiles alongside the micro-benchmarks above. Tunables:
#   LOAD_SECS  seconds of load (default 2; 0 skips the smoke)
#   LOAD_QPS   target aggregate rate (default 100)
LOAD_SECS="${LOAD_SECS:-2}"
LOAD_QPS="${LOAD_QPS:-100}"
if [[ "$LOAD_SECS" != "0" ]]; then
    echo "bench.sh: rrsload smoke (${LOAD_SECS}s @ ${LOAD_QPS} req/s)"
    LOAD_DIR="$(mktemp -d)"
    go build -o "$LOAD_DIR/rrsd" ./cmd/rrsd
    "$LOAD_DIR/rrsd" -addr 127.0.0.1:0 -portfile "$LOAD_DIR/port" -q &
    RRSD_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$LOAD_DIR/port" ]] && break
        sleep 0.1
    done
    go run ./cmd/rrsload -url "http://$(cat "$LOAD_DIR/port")" \
        -duration "${LOAD_SECS}s" -qps "$LOAD_QPS" -c 4 -sizes 64x64,128x128
    echo "bench.sh: rrsload zoom-walk trajectory (${LOAD_SECS}s @ ${LOAD_QPS} req/s, zmax 3)"
    go run ./cmd/rrsload -url "http://$(cat "$LOAD_DIR/port")" \
        -duration "${LOAD_SECS}s" -qps "$LOAD_QPS" -c 4 -walk zoom -zmax 3
    kill -TERM "$RRSD_PID"
    wait "$RRSD_PID"
    rm -rf "$LOAD_DIR"
fi

# Cluster leg: aggregate closed-loop QPS of a 1-node fleet vs a
# CLUSTER_NODES-node fleet, each daemon pinned to GOMAXPROCS=1 so the
# fleet size — not the host scheduler — sets the render-CPU ceiling.
# Both runs are recorded as BenchmarkClusterQPS/nodes=N entries in
# CLUSTER_OUT. The >=3x scaling gate (and the per-node cache-hit spread
# check) only fires when the host has enough cores to actually host the
# fleet plus the load generator (nproc > CLUSTER_NODES); on smaller
# machines the numbers are still recorded, with a note, because N
# single-core daemons multiplexed onto one core cannot demonstrate
# scaling no matter how correct the sharding is. Tunables:
#   CLUSTER_SECS   seconds per fleet run (default LOAD_SECS; 0 skips)
#   CLUSTER_NODES  fleet size for the scaled run (default 4)
#   CLUSTER_OUT    output path (default BENCH_<YYYY-MM-DD>-cluster.json)
CLUSTER_SECS="${CLUSTER_SECS:-$LOAD_SECS}"
CLUSTER_NODES="${CLUSTER_NODES:-4}"
CLUSTER_OUT="${CLUSTER_OUT:-BENCH_$(date +%Y-%m-%d)-cluster.json}"
if [[ "$CLUSTER_SECS" != "0" ]]; then
    CORES="$(nproc)"
    CL_DIR="$(mktemp -d)"
    go build -o "$CL_DIR/rrsd" ./cmd/rrsd
    go build -o "$CL_DIR/rrsload" ./cmd/rrsload

    # run_fleet N OUTFILE: bring up an N-node cluster (peers-file
    # bootstrap: ports are only known after every member binds), drive
    # it closed-loop with rrsload, tee the report to OUTFILE, tear down.
    run_fleet() {
        local n="$1" outfile="$2"
        local pids=() urls=() i name addr
        echo '[]' > "$CL_DIR/peers.json"
        for i in $(seq 1 "$n"); do
            GOMAXPROCS=1 "$CL_DIR/rrsd" -addr 127.0.0.1:0 \
                -portfile "$CL_DIR/port.n$i" -node "n$i" \
                -peers-file "$CL_DIR/peers.json" -probe-interval 250ms \
                -tile-edge 64 -q &
            pids+=($!)
        done
        local members=""
        for i in $(seq 1 "$n"); do
            for _ in $(seq 1 100); do
                [[ -s "$CL_DIR/port.n$i" ]] && break
                sleep 0.1
            done
            addr="$(cat "$CL_DIR/port.n$i")"
            urls+=("http://$addr")
            members+="${members:+,}{\"name\":\"n$i\",\"url\":\"http://$addr\"}"
        done
        echo "[$members]" > "$CL_DIR/peers.json"
        for i in $(seq 1 "$n"); do
            for _ in $(seq 1 100); do
                [[ "$(curl -sf "http://$(cat "$CL_DIR/port.n$i")/v1/cluster" \
                    | grep -o '"name"' | wc -l)" == "$n" ]] && break
                sleep 0.1
            done
        done
        local urllist
        urllist="$(IFS=,; echo "${urls[*]}")"
        "$CL_DIR/rrsload" -url "$urllist" -duration "${CLUSTER_SECS}s" \
            -qps 0 -c $((4 * n)) -walk zoom -zmax 3 | tee "$outfile"
        local pid
        for pid in "${pids[@]}"; do kill -TERM "$pid"; done
        for pid in "${pids[@]}"; do wait "$pid"; done
    }

    echo "bench.sh: cluster leg, 1-node fleet (${CLUSTER_SECS}s closed loop)"
    run_fleet 1 "$CL_DIR/load.1"
    echo "bench.sh: cluster leg, ${CLUSTER_NODES}-node fleet (${CLUSTER_SECS}s closed loop)"
    run_fleet "$CLUSTER_NODES" "$CL_DIR/load.n"

    # "rrsload: R requests in E (Q req/s), ..." -> synthesized bench
    # lines so the fleet comparison lands in the same JSON schema as
    # every other perf record in the repo.
    qps_of() { sed -nE 's/^rrsload: [0-9]+ requests in [^(]*\(([0-9.]+) req\/s\).*/\1/p' "$1" | head -1; }
    reqs_of() { sed -nE 's/^rrsload: ([0-9]+) requests in .*/\1/p' "$1" | head -1; }
    QPS1="$(qps_of "$CL_DIR/load.1")"
    QPSN="$(qps_of "$CL_DIR/load.n")"
    {
        awk -v r="$(reqs_of "$CL_DIR/load.1")" -v q="$QPS1" \
            'BEGIN { printf "BenchmarkClusterQPS/nodes=1 \t%d\t%.0f ns/op\t%.1f req/s\n", r, 1e9/q, q }'
        awk -v n="$CLUSTER_NODES" -v r="$(reqs_of "$CL_DIR/load.n")" -v q="$QPSN" \
            'BEGIN { printf "BenchmarkClusterQPS/nodes=%d \t%d\t%.0f ns/op\t%.1f req/s\n", n, r, 1e9/q, q }'
    } | tee /dev/stderr | go run ./cmd/rrsbench -o "$CLUSTER_OUT"
    echo "bench.sh: wrote $CLUSTER_OUT"

    if (( CORES > CLUSTER_NODES )); then
        echo "bench.sh: cluster scaling gate (${CLUSTER_NODES}-node fleet must reach >=3x 1-node QPS)"
        awk -v q1="$QPS1" -v qn="$QPSN" 'BEGIN {
            s = qn / q1
            printf "bench.sh: aggregate speedup %.2fx (%.1f -> %.1f req/s)\n", s, q1, qn
            exit (s >= 3.0) ? 0 : 1
        }' || { echo "bench.sh: cluster scaling below 3x" >&2; exit 1; }
        # Shard balance: per-node cache-hit rates within 10 points.
        HITS="$(sed -nE 's/^rrsload: node .*: [0-9]+ requests \(([0-9.]+) req\/s\), ([0-9.]+)% cache hits.*/\2/p' "$CL_DIR/load.n")"
        echo "$HITS" | awk '
            { if (NR == 1 || $1 < lo) lo = $1; if (NR == 1 || $1 > hi) hi = $1 }
            END {
                printf "bench.sh: per-node cache-hit spread %.1f points (%.1f%% .. %.1f%%)\n", hi - lo, lo, hi
                exit (hi - lo <= 10.0) ? 0 : 1
            }' || { echo "bench.sh: per-node cache-hit rates spread by more than 10 points" >&2; exit 1; }
    else
        awk -v q1="$QPS1" -v qn="$QPSN" -v c="$CORES" -v n="$CLUSTER_NODES" 'BEGIN {
            printf "bench.sh: cluster scaling gate skipped: %d core(s) cannot host a %d-node fleet plus the load generator (measured %.1f -> %.1f req/s)\n", c, n, q1, qn
        }'
    fi
    rm -rf "$CL_DIR"
fi
