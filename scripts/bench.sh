#!/usr/bin/env bash
# bench.sh — run the root benchmark suite with pinned -benchtime/-count
# and emit a machine-readable BENCH_<date>.json (via cmd/rrsbench) so the
# repo's perf trajectory is diffable across PRs.
#
# Environment overrides:
#   BENCH      benchmark regex (default: the perf-tracked set below;
#              the Figure benches are excluded because they run seconds
#              per op — pass BENCH=. to include everything)
#   BENCHTIME  go test -benchtime (default 500ms)
#   COUNT      go test -count (default 3)
#   OUT        output path (default BENCH_<YYYY-MM-DD>.json)
#   BASELINE   optional BENCH_*.json to diff against; the run fails if
#              any common benchmark's mean ns/op regressed by >15%
#              (rrsbench compare)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-ConvVsDFT|Streaming|Autocovariance|Profile1D|WeightArray|KernelTruncation|SamplerAblation|Inhomo}"
BENCHTIME="${BENCHTIME:-500ms}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"
BASELINE="${BASELINE:-}"

go test -run='^$' -bench="$BENCH" -benchmem -benchtime="$BENCHTIME" -count="$COUNT" . \
    | tee /dev/stderr \
    | go run ./cmd/rrsbench -o "$OUT"
echo "bench.sh: wrote $OUT"

if [[ -n "$BASELINE" ]]; then
    echo "bench.sh: comparing against $BASELINE"
    go run ./cmd/rrsbench compare "$BASELINE" "$OUT"
fi
