#!/usr/bin/env bash
# bench.sh — run the root benchmark suite with pinned -benchtime/-count
# and emit a machine-readable BENCH_<date>.json (via cmd/rrsbench) so the
# repo's perf trajectory is diffable across PRs.
#
# Environment overrides:
#   BENCH      benchmark regex (default: the perf-tracked set below;
#              the Figure benches are excluded because they run seconds
#              per op — pass BENCH=. to include everything)
#   BENCHTIME  go test -benchtime (default 500ms)
#   COUNT      go test -count (default 3)
#   OUT        output path (default BENCH_<YYYY-MM-DD>.json)
#   BASELINE   optional BENCH_*.json to diff against; the run fails if
#              any common benchmark's mean ns/op regressed by >15%
#              (rrsbench compare)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-ConvVsDFT|Streaming|Autocovariance|Profile1D|WeightArray|KernelTruncation|SamplerAblation|Inhomo|ZoomWalk}"
BENCHTIME="${BENCHTIME:-500ms}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"
BASELINE="${BASELINE:-}"

go test -run='^$' -bench="$BENCH" -benchmem -benchtime="$BENCHTIME" -count="$COUNT" . \
    | tee /dev/stderr \
    | go run ./cmd/rrsbench -o "$OUT"
echo "bench.sh: wrote $OUT"

if [[ -n "$BASELINE" ]]; then
    echo "bench.sh: comparing against $BASELINE"
    go run ./cmd/rrsbench compare "$BASELINE" "$OUT"
fi

# Pyramid gate: when the run captured both ZoomWalk arms, a self-compare
# with -map proves the pyramid serves the zoom trajectory in well under
# 40% of the render-everything-at-level-0 time (tolerance -0.6 demands a
# >=60% mean ns/op improvement pyramid vs level0).
if grep -q 'ZoomWalk/pyramid' "$OUT" && grep -q 'ZoomWalk/level0' "$OUT"; then
    echo "bench.sh: pyramid zoom-walk gate (pyramid must beat level0 by >=60%)"
    go run ./cmd/rrsbench compare -map 'ZoomWalk/level0=>ZoomWalk/pyramid' \
        -tolerance -0.6 "$OUT" "$OUT"
fi

# Service-level smoke: a short closed-loop rrsload run against a local
# rrsd proves the daemon sustains load end-to-end and prints latency
# quantiles alongside the micro-benchmarks above. Tunables:
#   LOAD_SECS  seconds of load (default 2; 0 skips the smoke)
#   LOAD_QPS   target aggregate rate (default 100)
LOAD_SECS="${LOAD_SECS:-2}"
LOAD_QPS="${LOAD_QPS:-100}"
if [[ "$LOAD_SECS" != "0" ]]; then
    echo "bench.sh: rrsload smoke (${LOAD_SECS}s @ ${LOAD_QPS} req/s)"
    LOAD_DIR="$(mktemp -d)"
    go build -o "$LOAD_DIR/rrsd" ./cmd/rrsd
    "$LOAD_DIR/rrsd" -addr 127.0.0.1:0 -portfile "$LOAD_DIR/port" -q &
    RRSD_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$LOAD_DIR/port" ]] && break
        sleep 0.1
    done
    go run ./cmd/rrsload -url "http://$(cat "$LOAD_DIR/port")" \
        -duration "${LOAD_SECS}s" -qps "$LOAD_QPS" -c 4 -sizes 64x64,128x128
    echo "bench.sh: rrsload zoom-walk trajectory (${LOAD_SECS}s @ ${LOAD_QPS} req/s, zmax 3)"
    go run ./cmd/rrsload -url "http://$(cat "$LOAD_DIR/port")" \
        -duration "${LOAD_SECS}s" -qps "$LOAD_QPS" -c 4 -walk zoom -zmax 3
    kill -TERM "$RRSD_PID"
    wait "$RRSD_PID"
    rm -rf "$LOAD_DIR"
fi
