#!/usr/bin/env bash
# check.sh — the repository's verification gate. CI runs exactly this
# script; run it locally before pushing. It chains:
#   build → gofmt → go vet → rrslint → tests → race tests → bench smoke
#   → fuzz smoke.
# and prints a per-step timing summary at the end (also on failure,
# with the failing step named — slow steps are the first suspects).
#
# Knobs:
#   FUZZTIME  (default 10s)  bounds each fuzz target; 0 skips the fuzz
#                            smoke entirely (e.g. on very slow machines).
#   RACE_ALL  (default 0)    1 runs `go test -race ./...` instead of the
#                            concurrency-sensitive shortlist; CI sets it
#                            on main-branch builds.
#   LINT_JSON (default rrslint-findings.json)  where the rrslint JSON
#                            findings land; CI uploads it as an artifact.
#
# The bench smoke (-benchtime=1x) only proves every benchmark still
# compiles and runs; scripts/bench.sh does the real measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"
RACE_ALL="${RACE_ALL:-0}"
LINT_JSON="${LINT_JSON:-rrslint-findings.json}"

step_name=""
step_start=0
step_names=()
step_secs=()

step_begin() {
    step_name="$1"
    step_start=$SECONDS
    echo "== $step_name"
}

step_end() {
    step_names+=("$step_name")
    step_secs+=($((SECONDS - step_start)))
    step_name=""
}

timing_summary() {
    local status=$?
    echo "== step timings"
    local i
    for i in "${!step_names[@]}"; do
        printf '%6ds  %s\n' "${step_secs[$i]}" "${step_names[$i]}"
    done
    if [[ -n "$step_name" ]]; then
        printf '%6ds  %s (failed)\n' "$((SECONDS - step_start))" "$step_name"
    fi
    return "$status"
}
trap timing_summary EXIT

step_begin "build"
go build ./...
step_end

step_begin "gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
step_end

step_begin "go vet"
go vet ./...
step_end

step_begin "rrslint (findings -> $LINT_JSON)"
if ! go run ./cmd/rrslint -json ./... > "$LINT_JSON"; then
    echo "rrslint findings:" >&2
    go run ./cmd/rrslint ./... >&2 || true
    exit 1
fi
step_end

step_begin "go test"
go test ./...
step_end

if [[ "$RACE_ALL" == "1" ]]; then
    step_begin "go test -race (all packages)"
    go test -race ./...
else
    step_begin "go test -race (concurrency-sensitive packages)"
    go test -race ./internal/par ./internal/fft ./internal/convgen \
        ./internal/inhomo ./internal/rng ./internal/grid
fi
step_end

step_begin "bench smoke (compile + one iteration per benchmark)"
go test -run='^$' -bench=. -benchtime=1x . > /dev/null
step_end

if [[ "$FUZZTIME" != "0" ]]; then
    step_begin "fuzz smoke ($FUZZTIME each)"
    go test -run='^$' -fuzz=FuzzRead -fuzztime="$FUZZTIME" ./internal/grid
    go test -run='^$' -fuzz=FuzzParseScene -fuzztime="$FUZZTIME" ./internal/core
    go test -run='^$' -fuzz=FuzzSupportMaskPlate -fuzztime="$FUZZTIME" ./internal/inhomo
    go test -run='^$' -fuzz=FuzzSupportMaskPoint -fuzztime="$FUZZTIME" ./internal/inhomo
    go test -run='^$' -fuzz=FuzzCFG -fuzztime="$FUZZTIME" ./internal/lint
    step_end
fi

echo "== all checks passed"
