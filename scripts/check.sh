#!/usr/bin/env bash
# check.sh — the repository's verification gate. CI runs exactly this
# script; run it locally before pushing. It chains:
#   build → gofmt → go vet → rrslint → tests → race tests → bench smoke
#   → fuzz smoke.
# and prints a per-step timing summary at the end (also on failure,
# with the failing step named — slow steps are the first suspects).
#
# Knobs:
#   FUZZTIME  (default 10s)  bounds each fuzz target; 0 skips the fuzz
#                            smoke entirely (e.g. on very slow machines).
#   RACE_ALL  (default 0)    1 runs `go test -race ./...` instead of the
#                            concurrency-sensitive shortlist; CI sets it
#                            on main-branch builds.
#   LINT_JSON (default rrslint-findings.json)  where the rrslint JSON
#                            findings land; CI uploads it as an artifact.
#   LINT_SARIF (default rrslint.sarif)  where the SARIF copy of the same
#                            findings lands; CI uploads it to code scanning.
#
# The bench smoke (-benchtime=1x) only proves every benchmark still
# compiles and runs; scripts/bench.sh does the real measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"
RACE_ALL="${RACE_ALL:-0}"
LINT_JSON="${LINT_JSON:-rrslint-findings.json}"
LINT_SARIF="${LINT_SARIF:-rrslint.sarif}"

step_name=""
step_start=0
step_names=()
step_secs=()

step_begin() {
    step_name="$1"
    step_start=$SECONDS
    echo "== $step_name"
}

step_end() {
    step_names+=("$step_name")
    step_secs+=($((SECONDS - step_start)))
    step_name=""
}

timing_summary() {
    local status=$?
    echo "== step timings"
    local i
    for i in "${!step_names[@]}"; do
        printf '%6ds  %s\n' "${step_secs[$i]}" "${step_names[$i]}"
    done
    if [[ -n "$step_name" ]]; then
        printf '%6ds  %s (failed)\n' "$((SECONDS - step_start))" "$step_name"
    fi
    return "$status"
}
trap timing_summary EXIT

step_begin "build"
go build ./...
step_end

step_begin "gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
step_end

step_begin "go vet"
go vet ./...
step_end

# The precision-generic render pipeline ships hand-written MAC kernels
# for amd64 and arm64 plus a pure-Go fallback behind -tags noasm; all
# three must keep compiling, and the fallback must keep passing the
# convolution agreement tests, no matter which architecture CI runs on.
step_begin "cross-compile (arm64) + noasm fallback tests"
GOARCH=arm64 go build ./...
GOARCH=arm64 go vet ./internal/simd
go test -tags noasm ./internal/simd ./internal/convgen
step_end

step_begin "rrslint (findings -> $LINT_JSON, SARIF -> $LINT_SARIF)"
if ! go run ./cmd/rrslint -json ./... > "$LINT_JSON"; then
    echo "rrslint findings:" >&2
    go run ./cmd/rrslint ./... >&2 || true
    # Still produce the SARIF report so code scanning sees the findings.
    go run ./cmd/rrslint -format=sarif ./... > "$LINT_SARIF" || true
    exit 1
fi
go run ./cmd/rrslint -format=sarif ./... > "$LINT_SARIF"
step_end

step_begin "go test"
go test ./...
step_end

if [[ "$RACE_ALL" == "1" ]]; then
    step_begin "go test -race (all packages)"
    go test -race ./...
else
    step_begin "go test -race (concurrency-sensitive packages)"
    go test -race ./internal/par ./internal/fft ./internal/convgen \
        ./internal/inhomo ./internal/rng ./internal/grid \
        ./internal/service ./internal/cluster ./cmd/rrsd ./cmd/rrsload
fi
step_end

# rrsd end-to-end smoke: boot the daemon on a free port, register the
# canonical fixture scene, and verify one f32 tile byte-for-byte. The
# SHA-256 is pinned on amd64 (the CI architecture); elsewhere FP/FMA
# differences may legally change the low bits, so we fall back to a
# determinism check (two fetches, one cold one cached, must agree).
# The pyramid route is exercised at z=0 (which must alias the golden
# free-window tile byte-for-byte, via the shared cache entry) and z=2,
# and /metrics must expose the per-level hit/miss counters. A second
# daemon with -gen-workers 4 must reproduce the golden tile exactly
# (the determinism contract detflow/floatreduce enforce statically).
# Finally SIGTERM must drain and exit 0 within the deadline.
step_begin "rrsd smoke (healthz, golden tile, pyramid route, worker determinism, graceful shutdown)"
GOLDEN_TILE_SHA256="c489266437db4399309159e8e96ed6998423d7d28d5740b2ce569abeb6c36688"
SMOKE_DIR="$(mktemp -d)"
go build -o "$SMOKE_DIR/rrsd" ./cmd/rrsd
"$SMOKE_DIR/rrsd" -addr 127.0.0.1:0 -portfile "$SMOKE_DIR/port" -tile-edge 64 -q &
RRSD_PID=$!
for _ in $(seq 1 100); do
    [[ -s "$SMOKE_DIR/port" ]] && break
    kill -0 "$RRSD_PID" 2>/dev/null || { echo "rrsd died on startup" >&2; exit 1; }
    sleep 0.1
done
RRSD_ADDR="$(cat "$SMOKE_DIR/port")"
curl -sf "http://$RRSD_ADDR/healthz" | grep -q ok
SCENE='{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":8}}'
SCENE_ID="$(curl -sf -X POST --data "$SCENE" "http://$RRSD_ADDR/v1/scene" \
    | sed -E 's/.*"id":"([0-9a-f]+)".*/\1/')"
[[ "$SCENE_ID" == "63d26a72bd0db3592b40fdb04c733d4a" ]] \
    || { echo "scene id drifted: $SCENE_ID" >&2; exit 1; }
TILE_URL="http://$RRSD_ADDR/v1/scene/$SCENE_ID/tile/0,0,64x64?seed=1&format=f32"
curl -sf "$TILE_URL" -o "$SMOKE_DIR/tile.f32"
if [[ "$(uname -m)" == "x86_64" ]]; then
    echo "$GOLDEN_TILE_SHA256  $SMOKE_DIR/tile.f32" | sha256sum -c - >/dev/null
else
    curl -sf "$TILE_URL" -o "$SMOKE_DIR/tile2.f32"
    cmp "$SMOKE_DIR/tile.f32" "$SMOKE_DIR/tile2.f32"
fi
curl -sf "http://$RRSD_ADDR/metrics" | grep -q 'rrsd_requests_total{route="tile",code="200"} 1'
# Pyramid route: tile 0/0,0 at -tile-edge 64 covers the same lattice
# window as the golden fetch above, so it must be served from the shared
# cache entry (X-Cache: hit) with identical bytes.
curl -sf -D "$SMOKE_DIR/z0.hdr" \
    "http://$RRSD_ADDR/v1/scene/$SCENE_ID/tile/0/0,0?seed=1&format=f32" \
    -o "$SMOKE_DIR/z0.f32"
cmp "$SMOKE_DIR/tile.f32" "$SMOKE_DIR/z0.f32"
grep -qi '^X-Cache: hit' "$SMOKE_DIR/z0.hdr"
# A z=2 tile renders the decimated lattice: same byte size, new kernel.
curl -sf "http://$RRSD_ADDR/v1/scene/$SCENE_ID/tile/2/0,0?seed=1&format=f32" \
    -o "$SMOKE_DIR/z2.f32"
[[ "$(wc -c < "$SMOKE_DIR/z2.f32")" == "16384" ]] \
    || { echo "z=2 tile is $(wc -c < "$SMOKE_DIR/z2.f32") bytes, want 16384" >&2; exit 1; }
METRICS="$(curl -sf "http://$RRSD_ADDR/metrics")"
grep -q 'rrsd_tile_level_hits_total{level="0"}' <<<"$METRICS"
grep -q 'rrsd_tile_level_misses_total{level="2"} 1' <<<"$METRICS"
# Determinism across worker counts: the detflow/floatreduce contract,
# checked dynamically. A second daemon with -gen-workers 4 must produce
# the golden tile byte-for-byte identical to the single-worker render.
"$SMOKE_DIR/rrsd" -addr 127.0.0.1:0 -portfile "$SMOKE_DIR/port4" -tile-edge 64 -gen-workers 4 -q &
RRSD4_PID=$!
for _ in $(seq 1 100); do
    [[ -s "$SMOKE_DIR/port4" ]] && break
    kill -0 "$RRSD4_PID" 2>/dev/null || { echo "rrsd (-gen-workers 4) died on startup" >&2; exit 1; }
    sleep 0.1
done
RRSD4_ADDR="$(cat "$SMOKE_DIR/port4")"
SCENE_ID4="$(curl -sf -X POST --data "$SCENE" "http://$RRSD4_ADDR/v1/scene" \
    | sed -E 's/.*"id":"([0-9a-f]+)".*/\1/')"
[[ "$SCENE_ID4" == "$SCENE_ID" ]] || { echo "scene id depends on workers: $SCENE_ID4" >&2; exit 1; }
curl -sf "http://$RRSD4_ADDR/v1/scene/$SCENE_ID4/tile/0,0,64x64?seed=1&format=f32" \
    -o "$SMOKE_DIR/tile-w4.f32"
cmp "$SMOKE_DIR/tile.f32" "$SMOKE_DIR/tile-w4.f32" \
    || { echo "tile bytes depend on -gen-workers" >&2; exit 1; }
kill -TERM "$RRSD4_PID"
wait "$RRSD4_PID" || { echo "rrsd (-gen-workers 4) exited non-zero after SIGTERM" >&2; exit 1; }
kill -TERM "$RRSD_PID"
SHUTDOWN_OK=0
for _ in $(seq 1 100); do
    if ! kill -0 "$RRSD_PID" 2>/dev/null; then SHUTDOWN_OK=1; break; fi
    sleep 0.1
done
[[ "$SHUTDOWN_OK" == "1" ]] || { echo "rrsd did not exit within 10s of SIGTERM" >&2; kill -9 "$RRSD_PID"; exit 1; }
wait "$RRSD_PID" || { echo "rrsd exited non-zero after SIGTERM" >&2; exit 1; }
rm -rf "$SMOKE_DIR"
step_end

# Cluster smoke: three clustered daemons assemble through a peers file
# (ports are only known after every member binds), a scene registered on
# node A fans out to the whole fleet, and the golden tile fetched
# through node B — whichever shard owns it — is byte-identical to node
# A's render. Finally every node must drain and exit 0 on SIGTERM.
step_begin "cluster smoke (3-node assembly, scene fan-out, cross-node golden tile, drain)"
CL_DIR="$(mktemp -d)"
go build -o "$CL_DIR/rrsd" ./cmd/rrsd
echo '[]' > "$CL_DIR/peers.json"
CL_PIDS=()
for n in a b c; do
    "$CL_DIR/rrsd" -addr 127.0.0.1:0 -portfile "$CL_DIR/port.$n" \
        -node "$n" -peers-file "$CL_DIR/peers.json" -probe-interval 200ms \
        -tile-edge 64 -q &
    CL_PIDS+=($!)
done
for n in a b c; do
    for _ in $(seq 1 100); do
        [[ -s "$CL_DIR/port.$n" ]] && break
        sleep 0.1
    done
    [[ -s "$CL_DIR/port.$n" ]] || { echo "cluster node $n never bound" >&2; exit 1; }
done
CL_A="$(cat "$CL_DIR/port.a")"
CL_B="$(cat "$CL_DIR/port.b")"
CL_C="$(cat "$CL_DIR/port.c")"
cat > "$CL_DIR/peers.json" <<EOF
[{"name":"a","url":"http://$CL_A"},{"name":"b","url":"http://$CL_B"},{"name":"c","url":"http://$CL_C"}]
EOF
# Wait for every node's membership view to reach three peers.
for n in a b c; do
    ADDR="$(cat "$CL_DIR/port.$n")"
    CONVERGED=0
    for _ in $(seq 1 100); do
        if [[ "$(curl -sf "http://$ADDR/v1/cluster" | grep -o '"name"' | wc -l)" == "3" ]]; then
            CONVERGED=1; break
        fi
        sleep 0.1
    done
    [[ "$CONVERGED" == "1" ]] || { echo "node $n never converged on the 3-peer map" >&2; exit 1; }
done
SCENE='{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":8}}'
CL_REG="$(curl -sf -X POST --data "$SCENE" "http://$CL_A/v1/scene")"
CL_ID="$(sed -E 's/.*"id":"([0-9a-f]+)".*/\1/' <<<"$CL_REG")"
[[ "$CL_ID" == "63d26a72bd0db3592b40fdb04c733d4a" ]] \
    || { echo "clustered scene id drifted: $CL_ID" >&2; exit 1; }
grep -q '"replicated":2' <<<"$CL_REG" \
    || { echo "fan-out incomplete: $CL_REG" >&2; exit 1; }
# The fan-out made the scene servable on every node without re-posting.
curl -sf "http://$CL_B/v1/scene/$CL_ID" > /dev/null
curl -sf "http://$CL_C/v1/scene/$CL_ID" > /dev/null
# The golden tile through node B must match node A's bytes exactly,
# whichever shard owns the key (proxy and local render are equivalent).
CL_TILE="/v1/scene/$CL_ID/tile/0,0,64x64?seed=1&format=f32"
curl -sf -D "$CL_DIR/b.hdr" "http://$CL_B$CL_TILE" -o "$CL_DIR/tile-b.f32"
curl -sf "http://$CL_A$CL_TILE" -o "$CL_DIR/tile-a.f32"
cmp "$CL_DIR/tile-a.f32" "$CL_DIR/tile-b.f32" \
    || { echo "tile bytes differ across nodes" >&2; exit 1; }
if [[ "$(uname -m)" == "x86_64" ]]; then
    echo "$GOLDEN_TILE_SHA256  $CL_DIR/tile-b.f32" | sha256sum -c - >/dev/null
fi
grep -qi '^X-RRS-Served-By:' "$CL_DIR/b.hdr" \
    || { echo "cluster headers missing on tile response" >&2; exit 1; }
for pid in "${CL_PIDS[@]}"; do kill -TERM "$pid"; done
CL_DEADLINE=$((SECONDS + 15))
for pid in "${CL_PIDS[@]}"; do
    while kill -0 "$pid" 2>/dev/null; do
        (( SECONDS < CL_DEADLINE )) || { echo "cluster node did not exit within deadline" >&2; kill -9 "${CL_PIDS[@]}" 2>/dev/null; exit 1; }
        sleep 0.1
    done
    wait "$pid" || { echo "cluster node exited non-zero after SIGTERM" >&2; exit 1; }
done
rm -rf "$CL_DIR"
step_end

step_begin "bench smoke (compile + one iteration per benchmark)"
go test -run='^$' -bench=. -benchtime=1x . > /dev/null
step_end

if [[ "$FUZZTIME" != "0" ]]; then
    step_begin "fuzz smoke ($FUZZTIME each)"
    go test -run='^$' -fuzz=FuzzRead -fuzztime="$FUZZTIME" ./internal/grid
    go test -run='^$' -fuzz=FuzzParseScene -fuzztime="$FUZZTIME" ./internal/core
    go test -run='^$' -fuzz=FuzzConv32Agreement -fuzztime="$FUZZTIME" ./internal/convgen
    go test -run='^$' -fuzz=FuzzSupportMaskPlate -fuzztime="$FUZZTIME" ./internal/inhomo
    go test -run='^$' -fuzz=FuzzSupportMaskPoint -fuzztime="$FUZZTIME" ./internal/inhomo
    go test -run='^$' -fuzz=FuzzCFG -fuzztime="$FUZZTIME" ./internal/lint
    go test -run='^$' -fuzz=FuzzSummary -fuzztime="$FUZZTIME" ./internal/lint
    go test -run='^$' -fuzz=FuzzTaint -fuzztime="$FUZZTIME" ./internal/lint
    step_end
fi

echo "== all checks passed"
