#!/usr/bin/env bash
# check.sh — the repository's verification gate. CI runs exactly this
# script; run it locally before pushing. It chains:
#   build → gofmt → go vet → rrslint → tests → race tests → bench smoke
#   → fuzz smoke.
# The bench smoke (-benchtime=1x) only proves every benchmark still
# compiles and runs; scripts/bench.sh does the real measurement.
# FUZZTIME (default 10s) bounds each fuzz target; set FUZZTIME=0 to
# skip the fuzz smoke entirely (e.g. on very slow machines).
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== build"
go build ./...

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== rrslint"
go run ./cmd/rrslint ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrency-sensitive packages)"
go test -race ./internal/par ./internal/fft ./internal/convgen ./internal/inhomo

echo "== bench smoke (compile + one iteration per benchmark)"
go test -run='^$' -bench=. -benchtime=1x . > /dev/null

if [[ "$FUZZTIME" != "0" ]]; then
    echo "== fuzz smoke ($FUZZTIME each)"
    go test -run='^$' -fuzz=FuzzRead -fuzztime="$FUZZTIME" ./internal/grid
    go test -run='^$' -fuzz=FuzzParseScene -fuzztime="$FUZZTIME" ./internal/core
    go test -run='^$' -fuzz=FuzzSupportMaskPlate -fuzztime="$FUZZTIME" ./internal/inhomo
    go test -run='^$' -fuzz=FuzzSupportMaskPoint -fuzztime="$FUZZTIME" ./internal/inhomo
fi

echo "== all checks passed"
