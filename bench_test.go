// Package roughsurface's root benchmark harness: one benchmark per paper
// table/figure (Figures 1–4 plus the internal accuracy experiments
// E5–E8 of DESIGN.md) and ablation benches for the design choices the
// convolution method motivates — kernel truncation, engine selection,
// fast-vs-literal inhomogeneous blending, and parallel scaling.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Figure benches regenerate the full-size (1024²) paper figures per
// iteration; expect seconds per op.
package roughsurface

import (
	"fmt"
	"math"
	"testing"

	"roughsurface/internal/convgen"
	"roughsurface/internal/core"
	"roughsurface/internal/dftgen"
	"roughsurface/internal/figures"
	"roughsurface/internal/grid"
	"roughsurface/internal/inhomo"
	"roughsurface/internal/oned"
	"roughsurface/internal/rng"
	"roughsurface/internal/spectrum"
	"roughsurface/internal/stats"
)

// benchFigure regenerates one paper figure per iteration and reports the
// pooled probe error as a metric, so the benchmark output doubles as a
// reproduction record.
func benchFigure(b *testing.B, id int) {
	f, err := figures.Get(id, figures.Size, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var lastErr float64
	for i := 0; i < b.N; i++ {
		surf, probes, err := figures.Run(f)
		if err != nil {
			b.Fatal(err)
		}
		_ = surf
		// Mean relative error of pooled group h against targets.
		pooled := figures.GroupMeans(probes)
		targets := map[string]float64{}
		counts := map[string]int{}
		for _, p := range probes {
			targets[p.Group] += p.WantH
			counts[p.Group]++
		}
		var relSum float64
		var n int
		for g, got := range pooled {
			want := targets[g] / float64(counts[g])
			relSum += math.Abs(got-want) / want
			n++
		}
		lastErr = relSum / float64(n)
	}
	b.ReportMetric(lastErr, "relHerr")
}

// BenchmarkFigure1 regenerates paper Fig. 1 (plate method, one spectrum,
// three parameter sets) at full size. Experiment E1.
func BenchmarkFigure1(b *testing.B) { benchFigure(b, 1) }

// BenchmarkFigure2 regenerates paper Fig. 2 (plate method, four
// spectra). Experiment E2.
func BenchmarkFigure2(b *testing.B) { benchFigure(b, 2) }

// BenchmarkFigure3 regenerates paper Fig. 3 (circular pond). E3.
func BenchmarkFigure3(b *testing.B) { benchFigure(b, 3) }

// BenchmarkFigure4 regenerates paper Fig. 4 (point-oriented method,
// ten representative points). E4.
func BenchmarkFigure4(b *testing.B) { benchFigure(b, 4) }

// BenchmarkWeightArray times the §2.2 weighting-array construction
// (experiment E5's object) for each spectral family at figure scale.
func BenchmarkWeightArray(b *testing.B) {
	specs := []spectrum.Spectrum{
		spectrum.MustGaussian(1, 40, 40),
		spectrum.MustPowerLaw(1, 40, 40, 2),
		spectrum.MustExponential(1, 40, 40),
	}
	for _, s := range specs {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := spectrum.Weights(s, 1024, 1024, 1024, 1024)
				_ = w
			}
		})
	}
}

// BenchmarkConvVsDFT compares the two homogeneous generation methods of
// §2.4 (experiment E7) at 512²: the direct DFT method, the convolution
// method's FFT engine, and the convolution method's literal tap-sum
// engine with a truncated kernel.
func BenchmarkConvVsDFT(b *testing.B) {
	s := spectrum.MustGaussian(1, 12, 12)
	const n = 512

	b.Run("direct-dft", func(b *testing.B) {
		gen := dftgen.Must(s, n, n, 1, 1)
		gauss := rng.NewGaussian(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = gen.Generate(gauss)
		}
	})
	for _, engine := range []struct {
		name string
		e    convgen.Engine
	}{{"conv-fft", convgen.EngineFFT}, {"conv-direct", convgen.EngineDirect}} {
		b.Run(engine.name, func(b *testing.B) {
			k := convgen.MustDesign(s, 1, 1, 8, 1e-4)
			gen := convgen.NewGenerator(k, 1)
			gen.Engine = engine.e
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = gen.GenerateCentered(n, n)
			}
		})
	}
}

// BenchmarkKernelTruncation is the paper's "reduce the size of the
// weighting array to save computation time" claim (E7): same spectrum,
// direct-engine generation cost versus truncation epsilon.
func BenchmarkKernelTruncation(b *testing.B) {
	s := spectrum.MustGaussian(1, 6, 6)
	full := convgen.MustDesign(s, 1, 1, 8, convgen.NoTruncation)
	cases := []struct {
		name string
		k    *convgen.Kernel
	}{
		{"full", full},
		{"eps=1e-6", full.Truncate(1e-6)},
		{"eps=1e-4", full.Truncate(1e-4)},
		{"eps=1e-2", full.Truncate(1e-2)},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%s/taps=%dx%d", c.name, c.k.Nx, c.k.Ny), func(b *testing.B) {
			gen := convgen.NewGenerator(c.k, 1)
			gen.Engine = convgen.EngineDirect
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = gen.GenerateCentered(128, 128)
			}
		})
		// The same window through the f32 render pipeline (SIMD MAC
		// kernels, half the memory traffic). Diff against the f64 case
		// with `rrsbench compare -map old=new -tolerance`.
		b.Run(fmt.Sprintf("%s/taps=%dx%d/f32", c.name, c.k.Nx, c.k.Ny), func(b *testing.B) {
			gen := convgen.NewGenerator(c.k, 1)
			gen.Engine = convgen.EngineDirect
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = gen.GenerateAt32(-64, -64, 128, 128)
			}
		})
	}
}

// BenchmarkCorrelationLengthSweep is the paper's §4 cost remark
// (experiment E8): generation time grows with correlation length because
// the weighting array grows with it.
func BenchmarkCorrelationLengthSweep(b *testing.B) {
	for _, cl := range []float64{5, 10, 20, 40, 80} {
		s := spectrum.MustGaussian(1, cl, cl)
		k := convgen.MustDesign(s, 1, 1, 8, 1e-4)
		b.Run(fmt.Sprintf("cl=%g/taps=%dx%d", cl, k.Nx, k.Ny), func(b *testing.B) {
			gen := convgen.NewGenerator(k, 1)
			gen.Engine = convgen.EngineDirect
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = gen.GenerateCentered(96, 96)
			}
		})
	}
}

// BenchmarkInhomoFastVsReference ablates the blended-fields optimization
// against the literal per-point eqn (46) evaluation.
func BenchmarkInhomoFastVsReference(b *testing.B) {
	ka := convgen.MustDesign(spectrum.MustGaussian(1, 5, 5), 1, 1, 6, 1e-3)
	kb := convgen.MustDesign(spectrum.MustExponential(2, 5, 5), 1, 1, 6, 1e-3)
	blender, err := inhomo.NewPointBlender([]inhomo.Point{
		{X: -20, Y: 0, Component: 0},
		{X: 20, Y: 0, Component: 1},
	}, 10, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, ref := range []bool{false, true} {
		name := "fast"
		if ref {
			name = "reference-eqn46"
		}
		b.Run(name, func(b *testing.B) {
			gen := inhomo.MustGenerator([]*convgen.Kernel{ka, kb}, blender, 1)
			gen.Reference = ref
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = gen.GenerateCentered(64, 64)
			}
		})
	}

	// 3-component plate scene, the tile-sparse engine's target workload:
	// vertical plates meeting at x = ±64 with narrow transitions, so away
	// from the seams every tile has exactly one active component. Output
	// goes into a reused caller-owned grid on both paths, so bytes/op is
	// the engine's own footprint (the dense path's per-component fields
	// vs the tiled path's pooled scratch).
	plates := mustBlender(inhomo.NewPlateBlender([]inhomo.Region{
		inhomo.Rect{X0: math.Inf(-1), Y0: math.Inf(-1), X1: -96, Y1: math.Inf(1), T: 4},
		inhomo.Rect{X0: -96, Y0: math.Inf(-1), X1: 96, Y1: math.Inf(1), T: 4},
		inhomo.Rect{X0: 96, Y0: math.Inf(-1), X1: math.Inf(1), Y1: math.Inf(1), T: 4},
	}))
	plateKernels := []*convgen.Kernel{
		convgen.MustDesign(spectrum.MustGaussian(1, 1.5, 1.5), 1, 1, 6, 1e-3),
		convgen.MustDesign(spectrum.MustExponential(2, 1.5, 1.5), 1, 1, 6, 1e-3),
		convgen.MustDesign(spectrum.MustGaussian(0.5, 1.5, 1.5), 1, 1, 6, 1e-3),
	}
	for _, engine := range []inhomo.Engine{inhomo.EngineDense, inhomo.EngineTiled} {
		name := "plates3/dense"
		if engine == inhomo.EngineTiled {
			name = "plates3/tiled"
		}
		b.Run(name, func(b *testing.B) {
			gen := inhomo.MustGenerator(plateKernels, plates, 1)
			gen.Engine = engine
			gen.TileSize = 32 // seam tiles (two active components) stay a small fraction
			const n = 576
			dst := grid.New(n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen.GenerateAtInto(dst, -n/2, -n/2)
			}
		})
		b.Run(name+"/f32", func(b *testing.B) {
			gen := inhomo.MustGenerator(plateKernels, plates, 1)
			gen.Engine = engine
			gen.TileSize = 32
			const n = 576
			dst := grid.New32(n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen.GenerateAtInto32(dst, -n/2, -n/2)
			}
		})
	}
}

func mustBlender[B inhomo.Blender](b B, err error) B {
	if err != nil {
		panic(err)
	}
	return b
}

// BenchmarkInhomoWeightMap measures the parallelized blend-weight
// rasterizer over the same plate scene.
func BenchmarkInhomoWeightMap(b *testing.B) {
	plates := mustBlender(inhomo.NewPlateBlender([]inhomo.Region{
		inhomo.Rect{X0: math.Inf(-1), Y0: math.Inf(-1), X1: -64, Y1: math.Inf(1), T: 4},
		inhomo.Rect{X0: -64, Y0: math.Inf(-1), X1: 64, Y1: math.Inf(1), T: 4},
		inhomo.Rect{X0: 64, Y0: math.Inf(-1), X1: math.Inf(1), Y1: math.Inf(1), T: 4},
	}))
	k := convgen.MustDesign(spectrum.MustGaussian(1, 3, 3), 1, 1, 6, 1e-3)
	gen := inhomo.MustGenerator([]*convgen.Kernel{k, k, k}, plates, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.WeightMap(1, -256, -256, 512, 512)
	}
}

// BenchmarkParallelScaling measures worker scaling of the direct
// convolution engine.
func BenchmarkParallelScaling(b *testing.B) {
	s := spectrum.MustGaussian(1, 8, 8)
	k := convgen.MustDesign(s, 1, 1, 8, 1e-4)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			gen := convgen.NewGenerator(k, 1)
			gen.Engine = convgen.EngineDirect
			gen.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = gen.GenerateCentered(256, 256)
			}
		})
	}
}

// BenchmarkStreaming reports strip-generation throughput in
// samples/second for the unbounded-surface mode.
func BenchmarkStreaming(b *testing.B) {
	s := spectrum.MustExponential(1, 10, 10)
	k := convgen.MustDesign(s, 1, 1, 8, 1e-4)
	gen := convgen.NewGenerator(k, 1)
	const width, rows = 512, 64
	st := convgen.NewStreamer(gen, 0, 0, width, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Next()
	}
	b.ReportMetric(float64(width*rows)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkAutocovariance times the estimator used throughout the
// experiment harness.
func BenchmarkAutocovariance(b *testing.B) {
	s := spectrum.MustGaussian(1, 10, 10)
	surf := convgen.NewGenerator(convgen.MustDesign(s, 1, 1, 8, 1e-4), 1).GenerateCentered(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.AutocovarianceFFT(surf)
	}
}

// BenchmarkProfile1D measures 1D profile generation throughput
// (samples/second) for the propagation workflow.
func BenchmarkProfile1D(b *testing.B) {
	s := oned.MustExponential(1, 10)
	k, err := oned.DesignKernel(s, 1, 8, 1e-4)
	if err != nil {
		b.Fatal(err)
	}
	gen := oned.NewGenerator(k, 1)
	const n = 8192
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.GenerateAt(int64(i)*n, n)
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkSamplerAblation compares the two N(0,1) samplers driving the
// direct DFT method end to end.
func BenchmarkSamplerAblation(b *testing.B) {
	s := spectrum.MustGaussian(1, 8, 8)
	gen := dftgen.Must(s, 256, 256, 1, 1)
	b.Run("box-muller", func(b *testing.B) {
		normal := rng.NewGaussian(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = gen.Generate(normal)
		}
	})
	b.Run("ziggurat", func(b *testing.B) {
		normal := rng.NewZiggurat(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = gen.Generate(normal)
		}
	})
}

// BenchmarkSeaSurface measures generation over the Pierson–Moskowitz
// spectrum (extension family): kernel design dominated by the Hankel
// table at construction, then ordinary convolution.
func BenchmarkSeaSurface(b *testing.B) {
	sea, err := spectrum.NewSea(5, 9.81)
	if err != nil {
		b.Fatal(err)
	}
	k, err := convgen.DesignExact(sea, 0.5, 0.5, 40, 1e-5)
	if err != nil {
		b.Fatal(err)
	}
	gen := convgen.NewGenerator(k, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.GenerateCentered(256, 256)
	}
}

// BenchmarkExactVarianceOverhead shows the exact-variance option is
// free at generation time (it only rescales the kernel once).
func BenchmarkExactVarianceOverhead(b *testing.B) {
	s := spectrum.MustExponential(1.5, 6, 6)
	for _, exact := range []bool{false, true} {
		name := "raw"
		if exact {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			var k *convgen.Kernel
			var err error
			if exact {
				k, err = convgen.DesignExact(s, 1, 1, 8, 1e-4)
			} else {
				k, err = convgen.Design(s, 1, 1, 8, 1e-4)
			}
			if err != nil {
				b.Fatal(err)
			}
			gen := convgen.NewGenerator(k, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = gen.GenerateCentered(128, 128)
			}
		})
	}
}

// BenchmarkZoomWalk is the tile-pyramid headline (ISSUE 8): serving a
// fixed pan+zoom trace (levels 0..3, the rrsload zoom-walk shape) from
// per-level kernels versus rendering the equivalent map area entirely
// at level 0. A level-z tile covers 4^z level-0 tiles' worth of area,
// so the pyramid renders ~85× fewer samples over this trace; the gate
// in bench.sh requires the pyramid to take at most 40% of the level-0
// time. Generators are pre-built for both arms — the benchmark
// measures render cost, not kernel design.
func BenchmarkZoomWalk(b *testing.B) {
	sc := core.Scene{Nx: 64, Ny: 64, Method: core.MethodHomogeneous,
		Spectrum: &core.SpectrumSpec{Family: "gaussian", H: 1, CL: 8}}
	const (
		edge = 64
		zmax = 3
	)
	// Two tiles per level — a pan step at each stop of the zoom-out.
	var trace [][3]int64
	for z := 0; z <= zmax; z++ {
		trace = append(trace, [3]int64{int64(z), 0, 0}, [3]int64{int64(z), 1, 0})
	}
	gens := make([]*convgen.Generator, zmax+1)
	for z := 0; z <= zmax; z++ {
		view, err := sc.AtLevel(z)
		if err != nil {
			b.Fatal(err)
		}
		comp, err := view.Components()
		if err != nil {
			b.Fatal(err)
		}
		gens[z] = convgen.NewGenerator(comp.Kernels[0], 1)
	}
	buf := make([]float64, edge*edge)

	b.Run("pyramid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, step := range trace {
				gens[step[0]].GenerateAtInto(buf, edge, step[1]*edge, step[2]*edge, edge, edge, 1)
			}
		}
	})
	b.Run("level0", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, step := range trace {
				// The same physical area at full resolution: a level-z
				// tile spans f×f level-0 tiles (f = 2^z).
				f := int64(1) << uint(step[0])
				for ty := int64(0); ty < f; ty++ {
					for tx := int64(0); tx < f; tx++ {
						gens[0].GenerateAtInto(buf, edge,
							(step[1]*f+tx)*edge, (step[2]*f+ty)*edge, edge, edge, 1)
					}
				}
			}
		}
	})
}
