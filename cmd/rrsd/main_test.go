package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"roughsurface/internal/par"
)

// TestRunServesAndShutsDown boots the daemon on a free port, exercises
// the scene + tile endpoints over real TCP, then cancels the context
// and expects a clean (nil) drain — the same lifecycle scripts/check.sh
// drives with SIGTERM.
func TestRunServesAndShutsDown(t *testing.T) {
	portFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer // written only by the run goroutine; read after join
	errc := par.Background(func() error {
		return run(ctx, []string{"-addr", "127.0.0.1:0", "-portfile", portFile, "-q"}, &buf)
	})

	addr := waitForPortFile(t, portFile, errc)
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	scene := `{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":8}}`
	resp, err = http.Post(base+"/v1/scene", "application/json", strings.NewReader(scene))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("scene post: %d %s", resp.StatusCode, body)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatalf("scene post body %q: %v", body, err)
	}

	resp, err = http.Get(fmt.Sprintf("%s/v1/scene/%s/tile/0,0,32x32?seed=1", base, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	tile, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(tile) != 4*32*32 {
		t.Fatalf("tile: %d, %d bytes", resp.StatusCode, len(tile))
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after cancel; want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain within 10s of cancel")
	}
	if out := buf.String(); !strings.Contains(out, "listening on") || !strings.Contains(out, "bye") {
		t.Errorf("run output missing lifecycle lines:\n%s", out)
	}
}

func TestRunBadFlagsAndAddr(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &buf); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// waitForPortFile polls for the daemon's -portfile, failing fast if the
// daemon exits first.
func waitForPortFile(t *testing.T, path string, errc <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-errc:
			t.Fatalf("daemon exited before listening: %v", err)
		default:
		}
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("portfile never appeared")
	return ""
}
