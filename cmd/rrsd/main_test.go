package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"roughsurface/internal/par"
)

// TestRunServesAndShutsDown boots the daemon on a free port, exercises
// the scene + tile endpoints over real TCP, then cancels the context
// and expects a clean (nil) drain — the same lifecycle scripts/check.sh
// drives with SIGTERM.
func TestRunServesAndShutsDown(t *testing.T) {
	portFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer // written only by the run goroutine; read after join
	errc := par.Background(func() error {
		return run(ctx, []string{"-addr", "127.0.0.1:0", "-portfile", portFile, "-q"}, &buf)
	})

	addr := waitForPortFile(t, portFile, errc)
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	scene := `{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":8}}`
	resp, err = http.Post(base+"/v1/scene", "application/json", strings.NewReader(scene))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("scene post: %d %s", resp.StatusCode, body)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatalf("scene post body %q: %v", body, err)
	}

	resp, err = http.Get(fmt.Sprintf("%s/v1/scene/%s/tile/0,0,32x32?seed=1", base, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	tile, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(tile) != 4*32*32 {
		t.Fatalf("tile: %d, %d bytes", resp.StatusCode, len(tile))
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after cancel; want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain within 10s of cancel")
	}
	if out := buf.String(); !strings.Contains(out, "listening on") || !strings.Contains(out, "bye") {
		t.Errorf("run output missing lifecycle lines:\n%s", out)
	}
}

func TestRunBadFlagsAndAddr(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &buf); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run(context.Background(), []string{"-peers", "a=http://127.0.0.1:1"}, &buf); err == nil {
		t.Error("-peers without -node accepted")
	}
	if err := run(context.Background(), []string{"-node", "a", "-peers", "garbage"}, &buf); err == nil {
		t.Error("malformed -peers accepted")
	}
}

// TestRunClusterFlags boots a clustered daemon and checks the cluster
// surface end to end: /v1/cluster serves the membership view, /v1/info
// reports the effective flags, and shutdown still drains cleanly (the
// prober joins before exit).
func TestRunClusterFlags(t *testing.T) {
	portFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	errc := par.Background(func() error {
		return run(ctx, []string{
			"-addr", "127.0.0.1:0", "-portfile", portFile, "-q",
			"-node", "a", "-probe-interval", "1h",
			"-peers", "a=http://placeholder:1", "-peers", "b=http://127.0.0.1:1*2",
		}, &buf)
	})
	addr := waitForPortFile(t, portFile, errc)
	base := "http://" + addr

	resp, err := http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster: %d %s", resp.StatusCode, body)
	}
	var snap struct {
		Self  string `json:"self"`
		Epoch uint64 `json:"epoch"`
		Peers []struct {
			Name   string  `json:"name"`
			Weight float64 `json:"weight"`
		} `json:"peers"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("cluster body %q: %v", body, err)
	}
	if snap.Self != "a" || len(snap.Peers) != 2 || snap.Epoch == 0 {
		t.Errorf("cluster view: %+v", snap)
	}

	resp, err = http.Get(base + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var info struct {
		Flags   map[string]string `json:"flags"`
		Cluster *struct {
			Self  string `json:"self"`
			Peers int    `json:"peers"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("info body %q: %v", body, err)
	}
	if info.Flags["node"] != "a" || info.Flags["addr"] != "127.0.0.1:0" {
		t.Errorf("info flags: %+v", info.Flags)
	}
	if info.Cluster == nil || info.Cluster.Self != "a" || info.Cluster.Peers != 2 {
		t.Errorf("info cluster: %+v", info.Cluster)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after cancel; want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("clustered run did not drain within 10s of cancel")
	}
}

// waitForPortFile polls for the daemon's -portfile, failing fast if the
// daemon exits first.
func waitForPortFile(t *testing.T, path string, errc <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-errc:
			t.Fatalf("daemon exited before listening: %v", err)
		default:
		}
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("portfile never appeared")
	return ""
}
