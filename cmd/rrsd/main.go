// Command rrsd is the rough-surface tile daemon: it serves windows of
// deterministic, seed-addressed surfaces over HTTP (see internal/service
// and DESIGN.md §11).
//
//	rrsd -addr :8270
//	curl -X POST --data @scene.json localhost:8270/v1/scene
//	curl "localhost:8270/v1/scene/<id>/tile/0,0,256x256?seed=7&format=png" > tile.png
//	curl "localhost:8270/v1/scene/<id>/tile/3/0,0?seed=7&format=png" > tile_z3.png
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight tile requests drain (bounded by -drain), the worker pool
// joins, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roughsurface/internal/par"
	"roughsurface/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrsd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rrsd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8270", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "tile-rendering workers (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth beyond the workers (0 = 2x workers)")
	timeout := fs.Duration("timeout", 15*time.Second, "per-tile request deadline (queue wait + render)")
	cacheMB := fs.Int64("cache-mb", 256, "tile LRU capacity in MiB (0 disables)")
	maxEdge := fs.Int("max-tile-edge", 4096, "maximum tile edge in samples")
	genWorkers := fs.Int("gen-workers", 1, "intra-tile render parallelism")
	tileEdge := fs.Int("tile-edge", 256, "fixed edge of pyramid-route tiles")
	maxLevel := fs.Int("max-level", 8, "deepest pyramid level served")
	pinLevel := fs.Int("pin-level", 2, "pin tiles at levels >= this to the pinned cache tier (-1 disables)")
	pinCacheMB := fs.Int64("pin-cache-mb", 32, "pinned (coarse-level) tile tier capacity in MiB (0 folds into -cache-mb)")
	prefetchQueue := fs.Int("prefetch-queue", 32, "neighbor-prefetch queue depth (-1 disables prefetch)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	portFile := fs.String("portfile", "", "write the bound address to this file once listening (for scripts)")
	quiet := fs.Bool("q", false, "disable access logging")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cacheBytes := *cacheMB << 20
	if *cacheMB == 0 {
		cacheBytes = -1
	}
	pinCacheBytes := *pinCacheMB << 20
	if *pinCacheMB == 0 {
		pinCacheBytes = -1
	}
	cfg := service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		CacheBytes:     cacheBytes,
		MaxTileEdge:    *maxEdge,
		GenWorkers:     *genWorkers,
		TileEdge:       *tileEdge,
		MaxLevel:       *maxLevel,
		PinLevel:       *pinLevel,
		PinCacheBytes:  pinCacheBytes,
		PrefetchQueue:  *prefetchQueue,
	}
	if !*quiet {
		cfg.AccessLog = log.New(out, "rrsd: ", log.LstdFlags)
	}
	s := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		s.Close()
		return err
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			s.Close()
			return err
		}
	}
	fmt.Fprintf(out, "rrsd: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := par.Background(func() error { return srv.Serve(ln) })

	select {
	case err := <-serveErr:
		// The listener failed underneath us; nothing to drain.
		s.Close()
		return err
	case <-ctx.Done():
	}

	// Shutdown ordering (DESIGN.md §11): stop accepting and drain HTTP
	// handlers first — handlers blocked on the pool keep their workers
	// busy until their tiles finish — then join the pool, then exit.
	fmt.Fprintf(out, "rrsd: shutting down (drain %s)\n", *drain)
	// The drain context must outlive ctx (which is already done by the
	// time we get here) but should keep its values for any tracing.
	shCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(shCtx)
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		s.Close()
		return err
	}
	s.Close()
	if shutdownErr != nil {
		return fmt.Errorf("drain incomplete: %w", shutdownErr)
	}
	fmt.Fprintln(out, "rrsd: bye")
	return nil
}
