// Command rrsd is the rough-surface tile daemon: it serves windows of
// deterministic, seed-addressed surfaces over HTTP (see internal/service
// and DESIGN.md §11).
//
//	rrsd -addr :8270
//	curl -X POST --data @scene.json localhost:8270/v1/scene
//	curl "localhost:8270/v1/scene/<id>/tile/0,0,256x256?seed=7&format=png" > tile.png
//	curl "localhost:8270/v1/scene/<id>/tile/3/0,0?seed=7&format=png" > tile_z3.png
//
// With -node plus -peers or -peers-file the daemon joins a static
// fleet: tile keys shard across peers by weighted rendezvous hashing,
// scene registrations fan out to every peer, and non-owners proxy tile
// requests to the owning shard's cache (internal/cluster, DESIGN.md
// §16):
//
//	rrsd -addr :8270 -node a -peers "a=http://h1:8270,b=http://h2:8270"
//
// SIGINT/SIGTERM trigger a graceful shutdown: the node first refuses
// proxy traffic (healthz goes 503 so peers route around it), then the
// listener closes, in-flight tile requests drain (bounded by -drain),
// the worker pool joins, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roughsurface/internal/cluster"
	"roughsurface/internal/par"
	"roughsurface/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrsd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rrsd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8270", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "tile-rendering workers (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth beyond the workers (0 = 2x workers)")
	timeout := fs.Duration("timeout", 15*time.Second, "per-tile request deadline (queue wait + render)")
	cacheMB := fs.Int64("cache-mb", 256, "tile LRU capacity in MiB (0 disables)")
	maxEdge := fs.Int("max-tile-edge", 4096, "maximum tile edge in samples")
	genWorkers := fs.Int("gen-workers", 1, "intra-tile render parallelism")
	tileEdge := fs.Int("tile-edge", 256, "fixed edge of pyramid-route tiles")
	maxLevel := fs.Int("max-level", 8, "deepest pyramid level served")
	pinLevel := fs.Int("pin-level", 2, "pin tiles at levels >= this to the pinned cache tier (-1 disables)")
	pinCacheMB := fs.Int64("pin-cache-mb", 32, "pinned (coarse-level) tile tier capacity in MiB (0 folds into -cache-mb)")
	prefetchQueue := fs.Int("prefetch-queue", 32, "neighbor-prefetch queue depth (-1 disables prefetch)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	portFile := fs.String("portfile", "", "write the bound address to this file once listening (for scripts)")
	quiet := fs.Bool("q", false, "disable access logging")
	node := fs.String("node", "", "this node's name in the cluster (enables cluster routing)")
	var peerList []cluster.Peer
	fs.Func("peers", "cluster peers as name=url[*weight], comma-separated (repeatable)", func(v string) error {
		ps, err := cluster.ParsePeersFlag(v)
		if err != nil {
			return err
		}
		peerList = append(peerList, ps...)
		return nil
	})
	peersFile := fs.String("peers-file", "", "JSON peers file ([{name,url,weight},...]), polled for changes")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "peer health-probe and peers-file poll period")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *node == "" && (len(peerList) > 0 || *peersFile != "") {
		return errors.New("-peers/-peers-file require -node")
	}
	// Effective flags, served verbatim at GET /v1/info so multi-node
	// debugging doesn't need process-table archaeology.
	flags := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })

	cacheBytes := *cacheMB << 20
	if *cacheMB == 0 {
		cacheBytes = -1
	}
	pinCacheBytes := *pinCacheMB << 20
	if *pinCacheMB == 0 {
		pinCacheBytes = -1
	}
	cfg := service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		CacheBytes:     cacheBytes,
		MaxTileEdge:    *maxEdge,
		GenWorkers:     *genWorkers,
		TileEdge:       *tileEdge,
		MaxLevel:       *maxLevel,
		PinLevel:       *pinLevel,
		PinCacheBytes:  pinCacheBytes,
		PrefetchQueue:  *prefetchQueue,
		Flags:          flags,
	}
	if !*quiet {
		cfg.AccessLog = log.New(out, "rrsd: ", log.LstdFlags)
	}
	var cl *cluster.Cluster
	if *node != "" {
		cl = cluster.New(*node, peerList, cluster.Options{
			ProbeInterval: *probeInterval,
			PeersFile:     *peersFile,
		})
		cl.Start()
		cfg.Cluster = cl
	}
	closeCluster := func() {
		if cl != nil {
			cl.Close()
		}
	}
	s := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		s.Close()
		closeCluster()
		return err
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			s.Close()
			closeCluster()
			return err
		}
	}
	fmt.Fprintf(out, "rrsd: listening on http://%s\n", ln.Addr())
	if cl != nil {
		fmt.Fprintf(out, "rrsd: cluster node %q (%d configured peers)\n", *node, cl.Size())
	}

	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := par.Background(func() error { return srv.Serve(ln) })

	select {
	case err := <-serveErr:
		// The listener failed underneath us; nothing to drain.
		s.Close()
		closeCluster()
		return err
	case <-ctx.Done():
	}

	// Shutdown ordering (DESIGN.md §11, §16): refuse proxy traffic first
	// — BeginDrain flips /healthz to 503 and rejects peer-marked tile
	// requests, so the fleet routes around this node while it still
	// drains its own clients — then stop accepting and drain HTTP
	// handlers (handlers blocked on the pool keep their workers busy
	// until their tiles finish), then join the prober and the pool.
	fmt.Fprintf(out, "rrsd: shutting down (drain %s)\n", *drain)
	s.BeginDrain()
	// The drain context must outlive ctx (which is already done by the
	// time we get here) but should keep its values for any tracing.
	shCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(shCtx)
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		s.Close()
		closeCluster()
		return err
	}
	closeCluster()
	s.Close()
	if shutdownErr != nil {
		return fmt.Errorf("drain incomplete: %w", shutdownErr)
	}
	fmt.Fprintln(out, "rrsd: bye")
	return nil
}
