// Command rrsgen generates a random rough surface from a JSON scene file
// or from quick homogeneous flags, and writes it in any of the supported
// formats.
//
// Scene file (full generality — plate/point methods, mixed spectra):
//
//	rrsgen -scene scene.json -o surface.grid -ppm surface.ppm
//
// Quick homogeneous surface without a scene file:
//
//	rrsgen -nx 512 -ny 512 -family exponential -height 1.5 -cl 20 \
//	       -seed 7 -o surface.grid -ascii
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"roughsurface/internal/core"
	"roughsurface/internal/grid"
	"roughsurface/internal/render"
	"roughsurface/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrsgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rrsgen", flag.ContinueOnError)
	fs.SetOutput(out)
	scenePath := fs.String("scene", "", "JSON scene file (overrides the quick flags)")
	nx := fs.Int("nx", 512, "grid width (quick mode)")
	ny := fs.Int("ny", 512, "grid height (quick mode)")
	dx := fs.Float64("dx", 1, "sample spacing (quick mode)")
	family := fs.String("family", "gaussian", "spectrum family: gaussian, powerlaw, exponential (quick mode)")
	height := fs.Float64("height", 1, "height standard deviation h (quick mode)")
	cl := fs.Float64("cl", 20, "correlation length (quick mode)")
	order := fs.Float64("n", 2, "power-law order N (quick mode, powerlaw only)")
	gen := fs.String("generator", "conv", "homogeneous generator: conv or dft (quick mode)")
	seed := fs.Uint64("seed", 1, "noise seed (quick mode)")
	outGrid := fs.String("o", "", "write binary .grid surface")
	outCSV := fs.String("csv", "", "write CSV matrix")
	outXYZ := fs.String("xyz", "", "write x y z triples (gnuplot splot)")
	outPGM := fs.String("pgm", "", "write grayscale PGM image")
	outPPM := fs.String("ppm", "", "write terrain-colormap PPM image")
	outShade := fs.String("shade", "", "write hillshaded PPM image")
	ascii := fs.Bool("ascii", false, "print an ASCII preview to stdout")
	quiet := fs.Bool("q", false, "suppress the statistics summary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scene core.Scene
	if *scenePath != "" {
		var err error
		scene, err = core.LoadScene(*scenePath)
		if err != nil {
			return err
		}
	} else {
		scene = core.Scene{
			Nx: *nx, Ny: *ny, Dx: *dx, Dy: *dx, Seed: *seed,
			Method:    core.MethodHomogeneous,
			Generator: *gen,
			Spectrum:  &core.SpectrumSpec{Family: *family, H: *height, CL: *cl, N: *order},
		}
	}

	res, err := core.Generate(scene)
	if err != nil {
		return err
	}
	surf := res.Surface

	if !*quiet {
		fmt.Fprintf(out, "generated %dx%d surface (dx=%g): %s\n",
			surf.Nx, surf.Ny, surf.Dx, stats.Describe(surf.Data))
		for i, ks := range res.KernelSizes {
			fmt.Fprintf(out, "  component %d kernel: %dx%d taps\n", i, ks[0], ks[1])
		}
	}

	if err := writeOutputs(surf, *outGrid, *outCSV, *outXYZ, *outPGM, *outPPM); err != nil {
		return err
	}
	if *outShade != "" {
		if err := render.SaveHillshade(*outShade, surf); err != nil {
			return err
		}
	}
	if *ascii {
		if err := render.ASCII(out, surf, 100); err != nil {
			return err
		}
	}
	return nil
}

func writeOutputs(surf *grid.Grid, gridPath, csvPath, xyzPath, pgmPath, ppmPath string) error {
	if gridPath != "" {
		if err := surf.SaveFile(gridPath); err != nil {
			return err
		}
	}
	if csvPath != "" {
		if err := writeWith(csvPath, surf.WriteCSV); err != nil {
			return err
		}
	}
	if xyzPath != "" {
		if err := writeWith(xyzPath, surf.WriteXYZ); err != nil {
			return err
		}
	}
	if pgmPath != "" {
		if err := render.SavePGM(pgmPath, surf); err != nil {
			return err
		}
	}
	if ppmPath != "" {
		if err := render.SavePPM(ppmPath, surf); err != nil {
			return err
		}
	}
	return nil
}

func writeWith(path string, f func(w io.Writer) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
