package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roughsurface/internal/grid"
)

func TestQuickModeWritesAllFormats(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "s.grid")
	csvPath := filepath.Join(dir, "s.csv")
	xyzPath := filepath.Join(dir, "s.xyz")
	pgmPath := filepath.Join(dir, "s.pgm")
	ppmPath := filepath.Join(dir, "s.ppm")
	shadePath := filepath.Join(dir, "s_shade.ppm")
	var out bytes.Buffer
	err := run([]string{
		"-nx", "64", "-ny", "48", "-family", "exponential", "-height", "1.5", "-cl", "6",
		"-seed", "3", "-o", gridPath, "-csv", csvPath, "-xyz", xyzPath,
		"-pgm", pgmPath, "-ppm", ppmPath, "-shade", shadePath, "-ascii",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.LoadFile(gridPath)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nx != 64 || g.Ny != 48 {
		t.Errorf("stored grid %dx%d", g.Nx, g.Ny)
	}
	for _, p := range []string{csvPath, xyzPath, pgmPath, ppmPath, shadePath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("output %s missing or empty", p)
		}
	}
	if !strings.Contains(out.String(), "generated 64x48 surface") {
		t.Errorf("missing summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "#") { // ASCII art uses ramp glyphs
		t.Error("missing ASCII preview")
	}
}

func TestSceneModeOverridesQuickFlags(t *testing.T) {
	dir := t.TempDir()
	scenePath := filepath.Join(dir, "scene.json")
	scene := `{
	  "nx": 32, "ny": 32, "method": "plate",
	  "regions": [
	    {"shape": "circle", "r": 10, "t": 3, "spectrum": {"family": "gaussian", "h": 0.2, "cl": 4}},
	    {"shape": "outside-circle", "r": 10, "t": 3, "spectrum": {"family": "gaussian", "h": 1.0, "cl": 4}}
	  ]
	}`
	if err := os.WriteFile(scenePath, []byte(scene), 0o644); err != nil {
		t.Fatal(err)
	}
	gridPath := filepath.Join(dir, "s.grid")
	var out bytes.Buffer
	if err := run([]string{"-scene", scenePath, "-nx", "999", "-o", gridPath}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := grid.LoadFile(gridPath)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nx != 32 {
		t.Errorf("scene nx not honored: %d", g.Nx)
	}
	if !strings.Contains(out.String(), "component 1 kernel") {
		t.Errorf("plate scene should report two kernels:\n%s", out.String())
	}
}

func TestBadInputsFail(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-family", "triangular"}, &out); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run([]string{"-scene", "/nonexistent/scene.json"}, &out); err == nil {
		t.Error("missing scene file accepted")
	}
	if err := run([]string{"-height", "-2"}, &out); err == nil {
		t.Error("negative height accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
