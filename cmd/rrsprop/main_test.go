package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/convgen"
	"roughsurface/internal/spectrum"
)

func writeSurface(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.grid")
	s := spectrum.MustGaussian(1.0, 8, 8)
	surf := convgen.NewGenerator(convgen.MustDesign(s, 1, 1, 8, 1e-4), 5).GenerateCentered(256, 64)
	if err := surf.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSweepReport(t *testing.T) {
	path := writeSurface(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-from", "-100,0", "-dir", "1,0",
		"-dmax", "150", "-step", "50", "-budget", "120"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"sweep from (-100, 0)", "FSPL[dB]", "range at 120.0 dB budget"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "\n") < 6 { // header + 3 rows + range line
		t.Errorf("too few rows:\n%s", text)
	}
}

func TestParsePair(t *testing.T) {
	a, b, err := parsePair(" 1.5, -2 ")
	if err != nil || !approx.Exact(a, 1.5) || !approx.Exact(b, -2) {
		t.Errorf("parsePair: %g %g %v", a, b, err)
	}
	if _, _, err := parsePair("1"); err == nil {
		t.Error("single value accepted")
	}
	if _, _, err := parsePair("a,b"); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestValidation(t *testing.T) {
	path := writeSurface(t)
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", path, "-step", "0"}, &out); err == nil {
		t.Error("zero step accepted")
	}
	if err := run([]string{"-in", path, "-from", "bogus"}, &out); err == nil {
		t.Error("bad -from accepted")
	}
	if err := run([]string{"-in", path, "-dir", "0,0"}, &out); err == nil {
		t.Error("zero direction accepted")
	}
	if err := run([]string{"-in", path, "-dmax", "99999"}, &out); err == nil {
		t.Error("out-of-extent sweep accepted")
	}
}
