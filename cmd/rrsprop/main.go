// Command rrsprop evaluates radio propagation over a stored surface:
// a terrain profile with free-space and knife-edge diffraction loss at
// sampled distances, plus the resulting communication-range estimate —
// the library's application-side tool for the wireless-sensor-network
// use case that motivates the paper.
//
//	rrsprop -in surface.grid -from -400,0 -dir 1,0 -dmax 800 -step 50 \
//	        -lambda 0.125 -txh 1.5 -rxh 1.5 -budget 110
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"roughsurface/internal/grid"
	"roughsurface/internal/propag"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrsprop:", err)
		os.Exit(1)
	}
}

func parsePair(s string) (a, b float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want \"x,y\", got %q", s)
	}
	if a, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return 0, 0, err
	}
	if b, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rrsprop", flag.ContinueOnError)
	fs.SetOutput(out)
	in := fs.String("in", "", "binary .grid surface file (required)")
	from := fs.String("from", "0,0", "transmitter position \"x,y\"")
	dir := fs.String("dir", "1,0", "sweep direction \"ux,uy\"")
	dmax := fs.Float64("dmax", 400, "maximum sweep distance")
	step := fs.Float64("step", 50, "distance step")
	lambda := fs.Float64("lambda", 0.125, "carrier wavelength (grid units); 0.125 = 2.4 GHz in meters")
	txh := fs.Float64("txh", 1.5, "transmitter antenna height")
	rxh := fs.Float64("rxh", 1.5, "receiver antenna height")
	budget := fs.Float64("budget", 110, "link budget in dB for the range estimate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if !(*step > 0) || !(*dmax >= *step) {
		return fmt.Errorf("need 0 < step <= dmax, got step=%g dmax=%g", *step, *dmax)
	}
	surf, err := grid.LoadFile(*in)
	if err != nil {
		return err
	}
	x0, y0, err := parsePair(*from)
	if err != nil {
		return fmt.Errorf("-from: %w", err)
	}
	ux, uy, err := parsePair(*dir)
	if err != nil {
		return fmt.Errorf("-dir: %w", err)
	}

	var distances []float64
	for d := *step; d <= *dmax+1e-9; d += *step {
		distances = append(distances, d)
	}
	link := propag.Link{Lambda: *lambda, TxH: *txh, RxH: *rxh}
	results, err := propag.Sweep(surf, x0, y0, ux, uy, distances, link, 2)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "sweep from (%g, %g) along (%g, %g), λ=%g, antennas %g/%g\n",
		x0, y0, ux, uy, *lambda, *txh, *rxh)
	fmt.Fprintf(out, "%10s %12s %12s %12s %6s\n", "dist", "FSPL[dB]", "diffr[dB]", "total[dB]", "edges")
	for _, r := range results {
		fmt.Fprintf(out, "%10.1f %12.2f %12.2f %12.2f %6d\n",
			r.Distance, r.FreeSpaceDB, r.DiffractionDB, r.TotalDB, len(r.Edges))
	}
	fmt.Fprintf(out, "range at %.1f dB budget: %.1f\n", *budget, propag.RangeAt(results, *budget))
	return nil
}
