package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"roughsurface/internal/convgen"
	"roughsurface/internal/spectrum"
)

func TestReportContents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.grid")
	s := spectrum.MustGaussian(1.0, 8, 8)
	surf := convgen.NewGenerator(convgen.MustDesign(s, 1, 1, 8, 1e-4), 5).GenerateCentered(128, 128)
	if err := surf.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-lags", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"surface 128x128", "estimated correlation lengths", "KS normality", "lag   C(dx,0)"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	// 4 lag rows plus header.
	if n := strings.Count(text, "\n  "); n < 4 {
		t.Errorf("expected lag rows, got:\n%s", text)
	}
}

func TestRequiresInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.grid"}, &out); err == nil {
		t.Error("nonexistent file accepted")
	}
}
