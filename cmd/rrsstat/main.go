// Command rrsstat reports the statistics of a stored surface: moments,
// normality, estimated correlation lengths, and (optionally) the
// autocovariance lag profiles — the quantities the paper prescribes
// through W(K), h and cl.
//
//	rrsstat -in surface.grid -lags 32
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"roughsurface/internal/grid"
	"roughsurface/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrsstat:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rrsstat", flag.ContinueOnError)
	fs.SetOutput(out)
	in := fs.String("in", "", "binary .grid surface file (required)")
	lags := fs.Int("lags", 0, "print the autocovariance profile up to this lag")
	ksStride := fs.Int("ks-stride", 0, "subsample stride for the normality test (0 = 3x the estimated correlation length)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	surf, err := grid.LoadFile(*in)
	if err != nil {
		return err
	}

	sum := stats.Describe(surf.Data)
	fmt.Fprintf(out, "surface %dx%d  dx=%g dy=%g  origin=(%g, %g)\n",
		surf.Nx, surf.Ny, surf.Dx, surf.Dy, surf.X0, surf.Y0)
	fmt.Fprintln(out, " ", sum)

	cov := stats.AutocovarianceFFT(surf)
	clx := stats.CorrelationLength(stats.LagProfileX(cov, surf.Nx/2), surf.Dx)
	cly := stats.CorrelationLength(stats.LagProfileY(cov, surf.Ny/2), surf.Dy)
	fmt.Fprintf(out, "  estimated correlation lengths: clx=%.2f cly=%.2f (1/e crossing)\n", clx, cly)

	// Normality on a decorrelated subsample.
	stride := *ksStride
	if stride <= 0 {
		stride = int(3 * clx / surf.Dx)
		if stride < 1 {
			stride = 1
		}
	}
	var sub []float64
	for iy := 0; iy < surf.Ny; iy += stride {
		for ix := 0; ix < surf.Nx; ix += stride {
			sub = append(sub, surf.At(ix, iy))
		}
	}
	if len(sub) >= 8 {
		d, p := stats.KSNormal(sub, sum.Mean, sum.Std)
		fmt.Fprintf(out, "  KS normality (stride %d, n=%d): D=%.4f p=%.3f\n", stride, len(sub), d, p)
	}

	if *lags > 0 {
		fmt.Fprintln(out, "  lag   C(dx,0)      C(0,dy)")
		px := stats.LagProfileX(cov, *lags)
		py := stats.LagProfileY(cov, *lags)
		for i := 0; i < len(px) && i < len(py); i++ {
			fmt.Fprintf(out, "  %4d  %11.5g  %11.5g\n", i, px[i], py[i])
		}
	}
	return nil
}
