// Command rrsload is a closed-loop load generator for rrsd. It
// registers a scene, then drives tile requests from -c concurrent
// workers at a target aggregate rate, mixing tile sizes and seeds
// deterministically (no RNG: run k of worker w always requests the
// same tile, so two rrsload runs against warm caches are comparable).
// It reports achieved throughput, latency quantiles, and per-status
// counts:
//
//	rrsload -url http://localhost:8270 -duration 10s -qps 200 -c 8
//
// -walk zoom switches to the pyramid workload: every worker replays a
// deterministic map-session trace (pan a viewport, zoom in level by
// level, zoom back out along a shifted path) against the
// /tile/{z}/{x},{y} route and the report adds per-level cache hit
// rates:
//
//	rrsload -url http://localhost:8270 -duration 10s -walk zoom -zmax 3
//
// -url accepts a comma-separated list of base URLs: the scene is
// registered on every node and workers spread requests round-robin,
// the way a fleet-fronting load balancer would; the report then adds a
// per-node section (throughput, cache-hit and shed rates). Responses
// of 429/503 are retried with jittered backoff honoring Retry-After,
// and the summary reports total time spent backing off.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"roughsurface/internal/par"
)

const defaultScene = `{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":8}}`

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrsload:", err)
		os.Exit(1)
	}
}

// sample is one completed request (including any shed-retry attempts).
type sample struct {
	code    int // final status; 0 = transport error
	latency time.Duration
	level   int  // pyramid level, -1 for free-window requests
	hit     bool // X-Cache: hit
	urlIdx  int  // index into the -url list this request targeted
	retries int  // 429/503 responses that were retried
	backoff time.Duration
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rrsload", flag.ContinueOnError)
	fs.SetOutput(out)
	baseURL := fs.String("url", "", "rrsd base URL(s), comma-separated for a fleet (required)")
	scenePath := fs.String("scene", "", "scene JSON file (default: a built-in 64x64 gaussian scene)")
	duration := fs.Duration("duration", 10*time.Second, "how long to drive load")
	qps := fs.Float64("qps", 100, "target aggregate request rate (0 = as fast as the closed loop allows)")
	conc := fs.Int("c", 4, "concurrent workers (closed loop: each has one request in flight)")
	sizes := fs.String("sizes", "64x64,128x128,256x256", "comma-separated tile-size mix, cycled per request")
	seeds := fs.Int("seeds", 4, "number of distinct seeds to rotate through")
	span := fs.Int64("span", 4096, "tile origins are spread over [-span, span) on each axis")
	format := fs.String("format", "f32", "tile format to request (f32 or png)")
	walk := fs.String("walk", "sizes", "workload: sizes (free-window mix) or zoom (pyramid pan+zoom trace)")
	zmax := fs.Int("zmax", 3, "deepest pyramid level of the zoom walk")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *walk != "sizes" && *walk != "zoom" {
		return fmt.Errorf("-walk %q: want sizes or zoom", *walk)
	}
	if *zmax < 0 {
		return errors.New("-zmax must be >= 0")
	}
	urls := parseURLs(*baseURL)
	if len(urls) == 0 {
		return errors.New("-url is required")
	}
	if *conc < 1 {
		return errors.New("-c must be >= 1")
	}
	mix, err := parseSizes(*sizes)
	if err != nil {
		return err
	}

	scene := []byte(defaultScene)
	if *scenePath != "" {
		if scene, err = os.ReadFile(*scenePath); err != nil {
			return err
		}
	}
	// Register on every node. Scene IDs are content-addressed, so a
	// clustered fleet (which fans registrations out itself) and a set of
	// independent daemons both converge on one ID; a mismatch means the
	// URLs point at incompatible servers.
	var id string
	for _, u := range urls {
		got, err := registerScene(ctx, u, scene)
		if err != nil {
			return err
		}
		if id == "" {
			id = got
		} else if got != id {
			return fmt.Errorf("scene id mismatch: %s returned %s, %s returned %s", urls[0], id, u, got)
		}
	}
	fmt.Fprintf(out, "rrsload: scene %s, %d nodes, %d workers, %s, target %.0f req/s\n",
		id, len(urls), *conc, *duration, *qps)

	// Each worker self-paces at qps/c: request k of worker w is due at
	// start + k*interval. A closed loop never exceeds the target, and
	// when the server is slower than the target the loop degrades to
	// back-to-back requests (the classic closed-loop saturation mode).
	var interval time.Duration
	if *qps > 0 {
		interval = time.Duration(float64(*conc) / *qps * float64(time.Second))
	}
	deadline := time.Now().Add(*duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	client := &http.Client{}
	trace := zoomTrace(*zmax)
	perWorker := make([][]sample, *conc)
	start := time.Now()
	par.ForEach(*conc, *conc, func(w int) {
		var got []sample
		for k := 0; ; k++ {
			if interval > 0 {
				due := start.Add(time.Duration(k) * interval)
				if d := time.Until(due); d > 0 {
					select {
					case <-time.After(d):
					case <-runCtx.Done():
					}
				}
			}
			if runCtx.Err() != nil || !time.Now().Before(deadline) {
				break
			}
			// Round-robin over the fleet: request k of worker w always
			// lands on the same node, so per-node traffic is identical
			// between runs.
			ui := (w + k) % len(urls)
			var smp sample
			if *walk == "zoom" {
				// Workers replay the same trace at staggered offsets: a
				// fleet of map sessions over one scene, sharing the cache
				// the way real viewers of one dataset would.
				step := trace[(w*31+k)%len(trace)]
				smp = fetchZoomTile(runCtx, client, urls[ui], id, step, *format, w, k)
			} else {
				smp = fetchTile(runCtx, client, urls[ui], id, tileFor(w, k, mix, *seeds, *span, *format), w, k)
			}
			smp.urlIdx = ui
			got = append(got, smp)
		}
		perWorker[w] = got
	})
	elapsed := time.Since(start)

	var all []sample
	for _, s := range perWorker {
		all = append(all, s...)
	}
	report(out, all, elapsed)
	if len(urls) > 1 {
		reportNodes(out, urls, all, elapsed)
	}
	if *walk == "zoom" {
		reportLevels(out, all)
	}
	return nil
}

// parseURLs splits the -url flag into a list of base URLs, trimming
// whitespace and trailing slashes and dropping empty entries.
func parseURLs(s string) []string {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimRight(strings.TrimSpace(part), "/")
		if part != "" {
			urls = append(urls, part)
		}
	}
	return urls
}

// zoomTrace builds the deterministic pan+zoom trajectory: starting at
// level zmax, pan a 2×2-tile viewport through four positions, zoom in
// one level (tile coordinates double: the viewport keeps its physical
// center), repeat down to level 0, then zoom back out along a path
// shifted one tile so the return trip isn't a pure replay. Every call
// returns the same trace — runs are comparable by construction.
func zoomTrace(zmax int) [][3]int64 {
	var trace [][3]int64
	view := func(z int, cx, cy int64) {
		for dy := int64(0); dy < 2; dy++ {
			for dx := int64(0); dx < 2; dx++ {
				trace = append(trace, [3]int64{int64(z), cx + dx, cy + dy})
			}
		}
	}
	cx, cy := int64(0), int64(0)
	for z := zmax; z >= 0; z-- {
		for pan := int64(0); pan < 4; pan++ {
			view(z, cx+pan, cy)
		}
		cx, cy = (cx+3)*2, cy*2 // zoom in under the panned viewport
	}
	cx, cy = cx/2, cy/2+1
	for z := 1; z <= zmax; z++ {
		for pan := int64(0); pan < 4; pan++ {
			view(z, cx-pan, cy)
		}
		cx, cy = cx/2-3, cy/2+1
	}
	return trace
}

// fetchZoomTile requests one pyramid tile of the trace. The zoom walk
// keeps a single seed: per-level cache behavior is the point, and seed
// rotation would just scale every level's miss count equally.
func fetchZoomTile(ctx context.Context, client *http.Client, base, id string, step [3]int64, format string, w, k int) sample {
	url := fmt.Sprintf("%s/v1/scene/%s/tile/%d/%d,%d?seed=1&format=%s",
		base, id, step[0], step[1], step[2], format)
	return doFetch(ctx, client, url, int(step[0]), w, k)
}

// maxAttempts bounds shed retries per request: two backoffs, then the
// 429/503 is reported as the request's outcome.
const maxAttempts = 3

// doFetch issues one scheduled request, retrying 429/503 responses
// with jittered backoff (honoring Retry-After) up to maxAttempts.
// latency spans the whole request including backoff — the closed
// loop's view — while backoff is also tallied separately for the
// summary.
func doFetch(ctx context.Context, client *http.Client, url string, level, w, k int) sample {
	s := sample{level: level}
	begin := time.Now()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			s.code, s.latency = 0, time.Since(begin)
			return s
		}
		resp, err := client.Do(req)
		if err != nil {
			s.code, s.latency = 0, time.Since(begin)
			return s
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		s.code = resp.StatusCode
		s.hit = resp.Header.Get("X-Cache") == "hit"
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		shed := s.code == http.StatusTooManyRequests || s.code == http.StatusServiceUnavailable
		if !shed || attempt+1 >= maxAttempts {
			s.latency = time.Since(begin)
			return s
		}
		d := retryDelay(retryAfter, w, k, attempt)
		s.retries++
		s.backoff += d
		select {
		case <-time.After(d):
		case <-ctx.Done():
			s.latency = time.Since(begin)
			return s
		}
	}
}

// retryDelay picks the backoff before retrying a shed request: the
// server's Retry-After seconds when present (capped at 5s), else
// 25ms·2^attempt, jittered into [0.5x, 1.5x) so a shedding node isn't
// re-hit by every backed-off worker at once. The jitter is a hash of
// (worker, k, attempt) — deterministic, like the rest of the schedule.
func retryDelay(retryAfter string, w, k, attempt int) time.Duration {
	base := 25 * time.Millisecond << attempt
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		base = time.Duration(secs) * time.Second
		if base == 0 {
			base = 25 * time.Millisecond
		}
	}
	if base > 5*time.Second {
		base = 5 * time.Second
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d/%d", w, k, attempt)
	u := float64(h.Sum64()>>11) / float64(1<<53)
	return time.Duration(float64(base) * (0.5 + u))
}

// tileSpec is one request in the deterministic schedule.
type tileSpec struct {
	x0, y0 int64
	nx, ny int
	seed   int
	format string
}

// tileFor derives request k of worker w. Offsets use fixed prime
// strides so the schedule covers many distinct tiles (cache misses)
// while remaining identical between runs.
func tileFor(w, k int, mix [][2]int, seeds int, span int64, format string) tileSpec {
	size := mix[(w+k)%len(mix)]
	n := int64(w)*104729 + int64(k)*7919
	m := int64(w)*15485863 + int64(k)*24593
	mod := 2 * span
	return tileSpec{
		x0:     (n%mod+mod)%mod - span,
		y0:     (m%mod+mod)%mod - span,
		nx:     size[0],
		ny:     size[1],
		seed:   (w+k)%seeds + 1,
		format: format,
	}
}

func fetchTile(ctx context.Context, client *http.Client, base, id string, ts tileSpec, w, k int) sample {
	url := fmt.Sprintf("%s/v1/scene/%s/tile/%d,%d,%dx%d?seed=%d&format=%s",
		base, id, ts.x0, ts.y0, ts.nx, ts.ny, ts.seed, ts.format)
	return doFetch(ctx, client, url, -1, w, k)
}

func registerScene(ctx context.Context, base string, scene []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/scene", strings.NewReader(string(scene)))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("scene post: %d %s", resp.StatusCode, body)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		return "", fmt.Errorf("scene post body %q: %w", body, err)
	}
	return reg.ID, nil
}

func parseSizes(s string) ([][2]int, error) {
	var mix [][2]int
	for _, part := range strings.Split(s, ",") {
		dims := strings.SplitN(strings.TrimSpace(part), "x", 2)
		if len(dims) != 2 {
			return nil, fmt.Errorf("size %q: want NXxNY", part)
		}
		nx, err1 := strconv.Atoi(dims[0])
		ny, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil || nx < 1 || ny < 1 {
			return nil, fmt.Errorf("size %q: want positive integers", part)
		}
		mix = append(mix, [2]int{nx, ny})
	}
	if len(mix) == 0 {
		return nil, errors.New("-sizes is empty")
	}
	return mix, nil
}

// report prints throughput, latency quantiles, and per-status counts.
func report(out io.Writer, all []sample, elapsed time.Duration) {
	if len(all) == 0 {
		fmt.Fprintln(out, "rrsload: no requests completed")
		return
	}
	lat := make([]time.Duration, len(all))
	codes := map[int]int{}
	errs, retries := 0, 0
	var backoff time.Duration
	for i, s := range all {
		lat[i] = s.latency
		codes[s.code]++
		if s.code != http.StatusOK {
			errs++
		}
		retries += s.retries
		backoff += s.backoff
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i].Round(10 * time.Microsecond)
	}
	fmt.Fprintf(out, "rrsload: %d requests in %s (%.1f req/s), %d non-200 (%.2f%%)\n",
		len(all), elapsed.Round(time.Millisecond), float64(len(all))/elapsed.Seconds(),
		errs, 100*float64(errs)/float64(len(all)))
	fmt.Fprintf(out, "rrsload: latency p50=%s p90=%s p99=%s max=%s\n",
		q(0.50), q(0.90), q(0.99), lat[len(lat)-1].Round(10*time.Microsecond))
	keys := make([]int, 0, len(codes))
	for c := range codes {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, c := range keys {
		label := strconv.Itoa(c)
		if c == 0 {
			label = "error"
		}
		parts = append(parts, fmt.Sprintf("%s=%d", label, codes[c]))
	}
	fmt.Fprintf(out, "rrsload: status %s\n", strings.Join(parts, " "))
	fmt.Fprintf(out, "rrsload: shed retries %d, total backoff %s\n", retries, backoff.Round(time.Millisecond))
}

// reportNodes prints the per-node view of a multi-URL run: request
// share, throughput, cache-hit rate, and how often that node shed
// (429/503 responses, counting retried attempts). On a healthy sharded
// fleet the hit rates should sit within a few points of each other —
// divergence means a node is not pulling its ownership share.
func reportNodes(out io.Writer, urls []string, all []sample, elapsed time.Duration) {
	for i, u := range urls {
		n, hits, shed := 0, 0, 0
		for _, s := range all {
			if s.urlIdx != i {
				continue
			}
			n++
			shed += s.retries
			switch s.code {
			case http.StatusOK:
				if s.hit {
					hits++
				}
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				shed++
			}
		}
		if n == 0 {
			fmt.Fprintf(out, "rrsload: node %s: 0 requests\n", u)
			continue
		}
		fmt.Fprintf(out, "rrsload: node %s: %d requests (%.1f req/s), %.1f%% cache hits, %d shed\n",
			u, n, float64(n)/elapsed.Seconds(), 100*float64(hits)/float64(n), shed)
	}
}

// reportLevels prints per-pyramid-level request counts and cache hit
// rates for the zoom walk — the client-side view of the daemon's
// rrsd_tile_level_{hits,misses}_total counters.
func reportLevels(out io.Writer, all []sample) {
	counts := map[int]int{}
	hits := map[int]int{}
	for _, s := range all {
		if s.level < 0 || s.code != http.StatusOK {
			continue
		}
		counts[s.level]++
		if s.hit {
			hits[s.level]++
		}
	}
	levels := make([]int, 0, len(counts))
	for z := range counts {
		levels = append(levels, z)
	}
	sort.Ints(levels)
	for _, z := range levels {
		fmt.Fprintf(out, "rrsload: level %d: %d tiles, %.1f%% cache hits\n",
			z, counts[z], 100*float64(hits[z])/float64(counts[z]))
	}
}
