package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"roughsurface/internal/service"
)

func TestParseSizes(t *testing.T) {
	mix, err := parseSizes("64x64, 128x32")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0] != [2]int{64, 64} || mix[1] != [2]int{128, 32} {
		t.Fatalf("parseSizes = %v", mix)
	}
	for _, bad := range []string{"", "64", "64x", "0x64", "ax б"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestTileForDeterministicAndBounded(t *testing.T) {
	mix := [][2]int{{64, 64}, {128, 128}}
	seen := map[tileSpec]bool{}
	for k := 0; k < 200; k++ {
		ts := tileFor(1, k, mix, 4, 1024, "f32")
		if ts != tileFor(1, k, mix, 4, 1024, "f32") {
			t.Fatal("tileFor is not deterministic")
		}
		if ts.x0 < -1024 || ts.x0 >= 1024 || ts.y0 < -1024 || ts.y0 >= 1024 {
			t.Fatalf("origin (%d,%d) outside span", ts.x0, ts.y0)
		}
		if ts.seed < 1 || ts.seed > 4 {
			t.Fatalf("seed %d outside rotation", ts.seed)
		}
		seen[ts] = true
	}
	if len(seen) < 100 {
		t.Errorf("schedule repeats too much: %d distinct tiles of 200", len(seen))
	}
}

// TestRunAgainstService drives a short closed loop against an in-process
// daemon and checks the report: every request succeeded and the output
// has the quantile line bench.sh greps for.
func TestRunAgainstService(t *testing.T) {
	s := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL, "-duration", "300ms", "-qps", "100", "-c", "2",
		"-sizes", "16x16,32x32", "-span", "128",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"latency p50=", "p99=", "status 200="} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error=") {
		t.Errorf("transport errors during load:\n%s", out)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := run(ctx, nil, &buf); err == nil {
		t.Error("missing -url accepted")
	}
	if err := run(ctx, []string{"-url", "http://x", "-c", "0"}, &buf); err == nil {
		t.Error("-c 0 accepted")
	}
	if err := run(ctx, []string{"-url", "http://x", "-sizes", "bad"}, &buf); err == nil {
		t.Error("bad -sizes accepted")
	}
}

func TestZoomTraceDeterministicAndCoversLevels(t *testing.T) {
	trace := zoomTrace(3)
	again := zoomTrace(3)
	if len(trace) == 0 || len(trace) != len(again) {
		t.Fatalf("trace lengths %d vs %d", len(trace), len(again))
	}
	levels := map[int64]int{}
	for i := range trace {
		if trace[i] != again[i] {
			t.Fatal("zoomTrace is not deterministic")
		}
		if trace[i][0] < 0 || trace[i][0] > 3 {
			t.Fatalf("step %d at level %d, outside [0,3]", i, trace[i][0])
		}
		levels[trace[i][0]]++
	}
	for z := int64(0); z <= 3; z++ {
		if levels[z] == 0 {
			t.Errorf("trace never visits level %d", z)
		}
	}
	// The walk pans: each level visits multiple distinct tiles.
	distinct := map[[3]int64]bool{}
	for _, s := range trace {
		distinct[s] = true
	}
	if len(distinct) < len(trace)/2 {
		t.Errorf("trace of %d steps covers only %d distinct tiles", len(trace), len(distinct))
	}
}

// TestRunZoomWalk drives the pyramid workload against an in-process
// daemon and checks the per-level hit-rate report.
func TestRunZoomWalk(t *testing.T) {
	s := service.New(service.Config{Workers: 2, TileEdge: 32})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL, "-duration", "500ms", "-qps", "200", "-c", "2",
		"-walk", "zoom", "-zmax", "2",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"status 200=", "level 0:", "level 2:", "% cache hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("zoom-walk report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error=") {
		t.Errorf("transport errors during zoom walk:\n%s", out)
	}

	if err := run(context.Background(), []string{"-url", "http://x", "-walk", "sideways"}, &buf); err == nil {
		t.Error("bad -walk accepted")
	}
}
