package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"roughsurface/internal/service"
)

func TestParseSizes(t *testing.T) {
	mix, err := parseSizes("64x64, 128x32")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0] != [2]int{64, 64} || mix[1] != [2]int{128, 32} {
		t.Fatalf("parseSizes = %v", mix)
	}
	for _, bad := range []string{"", "64", "64x", "0x64", "ax б"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestTileForDeterministicAndBounded(t *testing.T) {
	mix := [][2]int{{64, 64}, {128, 128}}
	seen := map[tileSpec]bool{}
	for k := 0; k < 200; k++ {
		ts := tileFor(1, k, mix, 4, 1024, "f32")
		if ts != tileFor(1, k, mix, 4, 1024, "f32") {
			t.Fatal("tileFor is not deterministic")
		}
		if ts.x0 < -1024 || ts.x0 >= 1024 || ts.y0 < -1024 || ts.y0 >= 1024 {
			t.Fatalf("origin (%d,%d) outside span", ts.x0, ts.y0)
		}
		if ts.seed < 1 || ts.seed > 4 {
			t.Fatalf("seed %d outside rotation", ts.seed)
		}
		seen[ts] = true
	}
	if len(seen) < 100 {
		t.Errorf("schedule repeats too much: %d distinct tiles of 200", len(seen))
	}
}

// TestRunAgainstService drives a short closed loop against an in-process
// daemon and checks the report: every request succeeded and the output
// has the quantile line bench.sh greps for.
func TestRunAgainstService(t *testing.T) {
	s := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL, "-duration", "300ms", "-qps", "100", "-c", "2",
		"-sizes", "16x16,32x32", "-span", "128",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"latency p50=", "p99=", "status 200="} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error=") {
		t.Errorf("transport errors during load:\n%s", out)
	}
}

// TestRunMultiURL drives two independent daemons through the
// comma-separated -url form: the content-addressed scene registers
// identically on both, traffic round-robins, and the report grows a
// per-node section.
func TestRunMultiURL(t *testing.T) {
	s1 := service.New(service.Config{Workers: 2})
	ts1 := httptest.NewServer(s1.Handler())
	s2 := service.New(service.Config{Workers: 2})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts1.Close(); s1.Close(); ts2.Close(); s2.Close() })

	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts1.URL + "," + ts2.URL, "-duration", "300ms", "-qps", "100", "-c", "2",
		"-sizes", "16x16", "-span", "128",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"2 nodes", "node " + ts1.URL, "node " + ts2.URL, "shed retries", "total backoff",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("multi-url report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error=") {
		t.Errorf("transport errors during multi-url load:\n%s", out)
	}
}

// TestRunRetryAfterBackoff points rrsload at a server that always
// sheds and checks that the shed responses are retried with backoff
// and the summary reports it.
func TestRunRetryAfterBackoff(t *testing.T) {
	shedder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusCreated)
			fmt.Fprint(w, `{"id":"deadbeef"}`)
			return
		}
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(shedder.Close)

	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-url", shedder.URL, "-duration", "300ms", "-qps", "50", "-c", "2",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	// The status line may lead with error= when the deadline cut a
	// request mid-flight; only the shed count itself matters here.
	if !strings.Contains(out, " 429=") {
		t.Errorf("report missing shed status:\n%s", out)
	}
	if strings.Contains(out, "shed retries 0,") {
		t.Errorf("429s were never retried:\n%s", out)
	}
	if strings.Contains(out, "total backoff 0s") {
		t.Errorf("no backoff accumulated:\n%s", out)
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	if retryDelay("", 1, 2, 0) != retryDelay("", 1, 2, 0) {
		t.Error("retryDelay is not deterministic")
	}
	// No header: exponential base, jittered into [0.5x, 1.5x).
	for attempt := 0; attempt < 3; attempt++ {
		base := 25 * time.Millisecond << attempt
		d := retryDelay("", 3, 7, attempt)
		if d < base/2 || d >= base+base/2 {
			t.Errorf("attempt %d: delay %s outside [%s, %s)", attempt, d, base/2, base+base/2)
		}
	}
	// Retry-After seconds are honored, jittered, and capped.
	if d := retryDelay("2", 0, 0, 0); d < time.Second || d >= 3*time.Second {
		t.Errorf("Retry-After 2: delay %s outside [1s, 3s)", d)
	}
	if d := retryDelay("3600", 0, 0, 0); d >= 8*time.Second {
		t.Errorf("Retry-After 3600: delay %s not capped", d)
	}
	// Different (worker, k) jitter differently.
	same := 0
	for k := 0; k < 16; k++ {
		if retryDelay("", 0, k, 0) == retryDelay("", 1, k, 0) {
			same++
		}
	}
	if same == 16 {
		t.Error("jitter ignores the worker index")
	}
}

func TestParseURLs(t *testing.T) {
	got := parseURLs(" http://a:1/ ,, http://b:2 ")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("parseURLs = %v", got)
	}
	if parseURLs(" , ") != nil {
		t.Error("blank -url accepted")
	}
}

func TestRunFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := run(ctx, nil, &buf); err == nil {
		t.Error("missing -url accepted")
	}
	if err := run(ctx, []string{"-url", "http://x", "-c", "0"}, &buf); err == nil {
		t.Error("-c 0 accepted")
	}
	if err := run(ctx, []string{"-url", "http://x", "-sizes", "bad"}, &buf); err == nil {
		t.Error("bad -sizes accepted")
	}
}

func TestZoomTraceDeterministicAndCoversLevels(t *testing.T) {
	trace := zoomTrace(3)
	again := zoomTrace(3)
	if len(trace) == 0 || len(trace) != len(again) {
		t.Fatalf("trace lengths %d vs %d", len(trace), len(again))
	}
	levels := map[int64]int{}
	for i := range trace {
		if trace[i] != again[i] {
			t.Fatal("zoomTrace is not deterministic")
		}
		if trace[i][0] < 0 || trace[i][0] > 3 {
			t.Fatalf("step %d at level %d, outside [0,3]", i, trace[i][0])
		}
		levels[trace[i][0]]++
	}
	for z := int64(0); z <= 3; z++ {
		if levels[z] == 0 {
			t.Errorf("trace never visits level %d", z)
		}
	}
	// The walk pans: each level visits multiple distinct tiles.
	distinct := map[[3]int64]bool{}
	for _, s := range trace {
		distinct[s] = true
	}
	if len(distinct) < len(trace)/2 {
		t.Errorf("trace of %d steps covers only %d distinct tiles", len(trace), len(distinct))
	}
}

// TestRunZoomWalk drives the pyramid workload against an in-process
// daemon and checks the per-level hit-rate report.
func TestRunZoomWalk(t *testing.T) {
	s := service.New(service.Config{Workers: 2, TileEdge: 32})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL, "-duration", "500ms", "-qps", "200", "-c", "2",
		"-walk", "zoom", "-zmax", "2",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"status 200=", "level 0:", "level 2:", "% cache hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("zoom-walk report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error=") {
		t.Errorf("transport errors during zoom walk:\n%s", out)
	}

	if err := run(context.Background(), []string{"-url", "http://x", "-walk", "sideways"}, &buf); err == nil {
		t.Error("bad -walk accepted")
	}
}
