package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roughsurface/internal/grid"
)

func TestRegenerateOneFigureReduced(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-fig", "3", "-n", "128", "-seed", "2", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := grid.LoadFile(filepath.Join(dir, "fig3.grid"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Nx != 128 {
		t.Errorf("figure grid %dx%d", g.Nx, g.Ny)
	}
	for _, f := range []string{"fig3.pgm", "fig3.ppm", "fig3_shade.ppm", "fig3_stats.txt"} {
		if fi, err := os.Stat(filepath.Join(dir, f)); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s missing or empty", f)
		}
	}
	text := out.String()
	if !strings.Contains(text, "Figure 3") || !strings.Contains(text, "pond") {
		t.Errorf("report incomplete:\n%s", text)
	}
	stats, _ := os.ReadFile(filepath.Join(dir, "fig3_stats.txt"))
	if !strings.Contains(string(stats), "plain") {
		t.Error("stats table incomplete")
	}
}

func TestAllFiguresReducedAndASCII(t *testing.T) {
	if testing.Short() {
		t.Skip("four figures")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-fig", "all", "-n", "96", "-out", dir, "-ascii"}, &out); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		if _, err := os.Stat(filepath.Join(dir, "fig"+string(rune('0'+id))+".grid")); err != nil {
			t.Errorf("figure %d grid missing", id)
		}
	}
	if strings.Count(out.String(), "pooled per group:") != 4 {
		t.Error("expected four pooled summaries")
	}
}

func TestBadFigureRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "9"}, &out); err == nil {
		t.Error("figure 9 accepted")
	}
	if err := run([]string{"-fig", "two"}, &out); err == nil {
		t.Error("non-numeric figure accepted")
	}
}
