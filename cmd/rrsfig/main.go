// Command rrsfig regenerates the paper's evaluation figures (§4,
// Figures 1–4) and reports per-region measured-vs-target statistics —
// the reproduction harness behind EXPERIMENTS.md.
//
//	rrsfig -fig all -out figures/
//	rrsfig -fig 3 -n 512 -seed 9 -ascii
//
// For each figure it writes <out>/figN.grid (binary surface),
// figN.pgm + figN.ppm (images), and figN_stats.txt (probe table).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"roughsurface/internal/figures"
	"roughsurface/internal/render"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrsfig:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rrsfig", flag.ContinueOnError)
	fs.SetOutput(out)
	figArg := fs.String("fig", "all", "figure to regenerate: 1, 2, 3, 4 or all")
	n := fs.Int("n", figures.Size, "grid resolution (paper extent is kept; dx scales)")
	seed := fs.Uint64("seed", 1, "noise seed")
	outDir := fs.String("out", ".", "output directory")
	ascii := fs.Bool("ascii", false, "print ASCII previews")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ids []int
	if *figArg == "all" {
		ids = []int{1, 2, 3, 4}
	} else {
		var id int
		if _, err := fmt.Sscanf(*figArg, "%d", &id); err != nil {
			return fmt.Errorf("bad -fig %q", *figArg)
		}
		ids = []int{id}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	for _, id := range ids {
		f, err := figures.Get(id, *n, *seed)
		if err != nil {
			return err
		}
		start := time.Now()
		surf, probes, err := figures.Run(f)
		if err != nil {
			return fmt.Errorf("figure %d: %w", id, err)
		}
		elapsed := time.Since(start)

		base := filepath.Join(*outDir, fmt.Sprintf("fig%d", id))
		if err := surf.SaveFile(base + ".grid"); err != nil {
			return err
		}
		if err := render.SavePGM(base+".pgm", surf); err != nil {
			return err
		}
		if err := render.SavePPM(base+".ppm", surf); err != nil {
			return err
		}
		if err := render.SaveHillshade(base+"_shade.ppm", surf); err != nil {
			return err
		}
		table := figures.FormatResults(probes)
		if err := os.WriteFile(base+"_stats.txt", []byte(table), 0o644); err != nil {
			return err
		}

		fmt.Fprintf(out, "Figure %d — %s\n", f.ID, f.Caption)
		fmt.Fprintf(out, "  %dx%d grid, dx=%g, generated in %v\n", surf.Nx, surf.Ny, surf.Dx, elapsed.Round(time.Millisecond))
		fmt.Fprint(out, table)
		pooled := figures.GroupMeans(probes)
		groups := make([]string, 0, len(pooled))
		for g := range pooled {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		fmt.Fprint(out, "  pooled per group:")
		for _, g := range groups {
			fmt.Fprintf(out, " %s=%.3f", g, pooled[g])
		}
		fmt.Fprintln(out)
		if *ascii {
			if err := render.ASCII(out, surf, 96); err != nil {
				return err
			}
		}
		fmt.Fprintln(out)
	}
	return nil
}
