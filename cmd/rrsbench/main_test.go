package main

import (
	"strings"
	"testing"

	"roughsurface/internal/approx"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: roughsurface
cpu: Fake CPU @ 2.00GHz
BenchmarkConvVsDFT/conv-fft-8         	      10	 105338398 ns/op	22601353 B/op	     233 allocs/op
BenchmarkConvVsDFT/conv-fft-8         	      12	  95338398 ns/op	22601353 B/op	     231 allocs/op
BenchmarkStreaming                    	      50	  20000000 ns/op	 1638400 samples/s	 7340032 B/op	      40 allocs/op
PASS
ok  	roughsurface	12.3s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "roughsurface" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}

	// Sorted by name: ConvVsDFT/conv-fft first.
	cf := rep.Benchmarks[0]
	if cf.Name != "ConvVsDFT/conv-fft" {
		t.Errorf("name = %q (cpu suffix should be stripped)", cf.Name)
	}
	if cf.Runs != 2 || cf.Iters != 22 {
		t.Errorf("runs=%d iters=%d, want 2/22", cf.Runs, cf.Iters)
	}
	if cf.NsPerOp == nil || !approx.Equal(cf.NsPerOp.Best, 95338398, 1e-9) {
		t.Errorf("ns/op best = %+v", cf.NsPerOp)
	}
	if cf.NsPerOp == nil || !approx.Equal(cf.NsPerOp.Mean, (105338398+95338398)/2.0, 1e-9) {
		t.Errorf("ns/op mean = %+v", cf.NsPerOp)
	}
	if cf.Allocs == nil || !approx.Equal(cf.Allocs.Best, 231, 1e-12) {
		t.Errorf("allocs/op = %+v", cf.Allocs)
	}

	st := rep.Benchmarks[1]
	if st.Name != "Streaming" {
		t.Errorf("name = %q (no cpu suffix to strip)", st.Name)
	}
	s, ok := st.Metrics["samples/s"]
	if !ok {
		t.Fatalf("custom metric missing: %+v", st.Metrics)
	}
	// Rate metric: best is the max.
	if !approx.Equal(s.Best, 1638400, 1e-12) {
		t.Errorf("samples/s best = %g", s.Best)
	}
}

func TestParseRejectsGarbageMetric(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX-4 10 nope ns/op\n"))
	if err == nil {
		t.Error("want error on unparsable metric value")
	}
}
