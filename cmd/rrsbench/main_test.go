package main

import (
	"sort"
	"strings"
	"testing"

	"roughsurface/internal/approx"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: roughsurface
cpu: Fake CPU @ 2.00GHz
BenchmarkConvVsDFT/conv-fft-8         	      10	 105338398 ns/op	22601353 B/op	     233 allocs/op
BenchmarkConvVsDFT/conv-fft-8         	      12	  95338398 ns/op	22601353 B/op	     231 allocs/op
BenchmarkStreaming                    	      50	  20000000 ns/op	 1638400 samples/s	 7340032 B/op	      40 allocs/op
PASS
ok  	roughsurface	12.3s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "roughsurface" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}

	// Sorted by name: ConvVsDFT/conv-fft first.
	cf := rep.Benchmarks[0]
	if cf.Name != "ConvVsDFT/conv-fft" {
		t.Errorf("name = %q (cpu suffix should be stripped)", cf.Name)
	}
	if cf.Runs != 2 || cf.Iters != 22 {
		t.Errorf("runs=%d iters=%d, want 2/22", cf.Runs, cf.Iters)
	}
	if cf.NsPerOp == nil || !approx.Equal(cf.NsPerOp.Best, 95338398, 1e-9) {
		t.Errorf("ns/op best = %+v", cf.NsPerOp)
	}
	if cf.NsPerOp == nil || !approx.Equal(cf.NsPerOp.Mean, (105338398+95338398)/2.0, 1e-9) {
		t.Errorf("ns/op mean = %+v", cf.NsPerOp)
	}
	if cf.Allocs == nil || !approx.Equal(cf.Allocs.Best, 231, 1e-12) {
		t.Errorf("allocs/op = %+v", cf.Allocs)
	}

	st := rep.Benchmarks[1]
	if st.Name != "Streaming" {
		t.Errorf("name = %q (no cpu suffix to strip)", st.Name)
	}
	s, ok := st.Metrics["samples/s"]
	if !ok {
		t.Fatalf("custom metric missing: %+v", st.Metrics)
	}
	// Rate metric: best is the max.
	if !approx.Equal(s.Best, 1638400, 1e-12) {
		t.Errorf("samples/s best = %g", s.Best)
	}
}

func TestParseRejectsGarbageMetric(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX-4 10 nope ns/op\n"))
	if err == nil {
		t.Error("want error on unparsable metric value")
	}
}

func mkReport(ns map[string]float64) *Report {
	names := make([]string, 0, len(ns))
	for n := range ns {
		names = append(names, n)
	}
	sort.Strings(names)
	rep := &Report{}
	for _, n := range names {
		rep.Benchmarks = append(rep.Benchmarks, Entry{
			Name:    n,
			Runs:    1,
			NsPerOp: &Stat{Mean: ns[n], Best: ns[n]},
		})
	}
	return rep
}

func TestCompare(t *testing.T) {
	old := mkReport(map[string]float64{
		"A": 100, // improves
		"B": 100, // regresses past threshold
		"C": 100, // slower but inside threshold
		"D": 100, // dropped in new
	})
	new := mkReport(map[string]float64{
		"B": 130,
		"C": 110,
		"A": 50,
		"E": 7, // new benchmark, no baseline
	})
	deltas := Compare(old, new, CompareOpts{Threshold: 0.15, Tolerance: 0.15})
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3 (common benchmarks only): %+v", len(deltas), deltas)
	}
	want := map[string]bool{"A": false, "B": true, "C": false}
	for _, d := range deltas {
		reg, ok := want[d.Name]
		if !ok {
			t.Errorf("unexpected delta for %q", d.Name)
			continue
		}
		if d.Regressed != reg {
			t.Errorf("%s: regressed = %v (ratio %+.2f), want %v", d.Name, d.Regressed, d.Ratio, reg)
		}
	}
	if !approx.Equal(deltas[1].Ratio, 0.30, 1e-12) {
		t.Errorf("B ratio = %g, want 0.30", deltas[1].Ratio)
	}
}

func TestCompareSkipsZeroBaseline(t *testing.T) {
	old := mkReport(map[string]float64{"Z": 0})
	new := mkReport(map[string]float64{"Z": 50})
	if deltas := Compare(old, new, CompareOpts{Threshold: 0.15, Tolerance: 0.15}); len(deltas) != 0 {
		t.Errorf("zero baseline should be skipped, got %+v", deltas)
	}
}

// TestCompareRenameTolerance: a -map'd pair diffs old name against new
// name under the tolerance gate, including negative tolerances that
// demand a speedup; unmapped benchmarks keep the threshold gate.
func TestCompareRenameTolerance(t *testing.T) {
	old := mkReport(map[string]float64{
		"KernelTruncation/full": 1000,
		"Other":                 100,
	})
	new := mkReport(map[string]float64{
		"KernelTruncation32/full": 600, // 1.67x faster than the f64 baseline
		"Other":                   105,
	})
	rename := map[string]string{"KernelTruncation/full": "KernelTruncation32/full"}

	// Tolerance -0.5 requires >=2x: 600/1000-1 = -0.4 > -0.5 fails.
	deltas := Compare(old, new, CompareOpts{Threshold: 0.15, Tolerance: -0.5, Rename: rename})
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}
	mapped := deltas[0]
	if mapped.Name != "KernelTruncation/full => KernelTruncation32/full" {
		t.Fatalf("mapped delta name %q", mapped.Name)
	}
	if !approx.Equal(mapped.Ratio, -0.40, 1e-12) || !mapped.Regressed {
		t.Errorf("mapped: ratio %g regressed %v; want -0.40, true under tolerance -0.5", mapped.Ratio, mapped.Regressed)
	}
	if deltas[1].Name != "Other" || deltas[1].Regressed {
		t.Errorf("unmapped benchmark mis-gated: %+v", deltas[1])
	}

	// A looser tolerance passes the same pair.
	deltas = Compare(old, new, CompareOpts{Threshold: 0.15, Tolerance: -0.25, Rename: rename})
	if deltas[0].Regressed {
		t.Errorf("tolerance -0.25 should accept ratio -0.40: %+v", deltas[0])
	}
}

func TestParseRenames(t *testing.T) {
	m, err := parseRenames([]string{"A=B,C=D", "E=F", "K/taps=64x64=>K/taps=64x64/f32"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"A": "B", "C": "D", "E": "F", "K/taps=64x64": "K/taps=64x64/f32"}
	if len(m) != len(want) {
		t.Fatalf("got %v", m)
	}
	for o, n := range want {
		if m[o] != n {
			t.Errorf("m[%q] = %q, want %q", o, m[o], n)
		}
	}
	for _, bad := range []string{"A", "=B", "A=", "A=B,A=C"} {
		if _, err := parseRenames([]string{bad}); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if m, err := parseRenames(nil); err != nil || m != nil {
		t.Errorf("nil specs: %v, %v", m, err)
	}
}

// TestUnmatchedRenames pins the -map rot warning: pairs whose old name
// is missing from the baseline or whose new name is missing from the
// new report are surfaced instead of silently gating nothing.
func TestUnmatchedRenames(t *testing.T) {
	old := mkReport(map[string]float64{"A": 100, "B": 200})
	new := mkReport(map[string]float64{"A2": 90, "C": 50})
	rename := map[string]string{
		"A":    "A2", // fully matched
		"B":    "B2", // new name missing from the new report
		"Gone": "C",  // old name missing from the baseline
	}
	missingOld, missingNew := UnmatchedRenames(old, new, rename)
	if len(missingOld) != 1 || missingOld[0] != "Gone" {
		t.Errorf("missingOld = %v, want [Gone]", missingOld)
	}
	if len(missingNew) != 1 || missingNew[0] != "B2" {
		t.Errorf("missingNew = %v, want [B2]", missingNew)
	}
	if mo, mn := UnmatchedRenames(old, new, map[string]string{"A": "A2"}); len(mo) != 0 || len(mn) != 0 {
		t.Errorf("fully matched map reported unmatched: %v %v", mo, mn)
	}
}
