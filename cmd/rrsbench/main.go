// Command rrsbench converts `go test -bench` output into the repository's
// machine-readable benchmark record (BENCH_<date>.json): one entry per
// benchmark with ns/op, B/op, allocs/op, and any custom metrics
// (samples/s, relHerr, ...), aggregated over -count repetitions as mean
// and best. scripts/bench.sh is the canonical driver; the JSON files it
// emits are committed so the perf trajectory of the repo is diffable.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -count=3 . | rrsbench -o BENCH_2026-08-05.json
//	rrsbench compare [-threshold 0.15] [-tolerance f] [-map old=new] BENCH_old.json BENCH_new.json
//
// The compare subcommand diffs two records and exits nonzero when any
// benchmark present in both regressed its mean ns/op by more than the
// threshold fraction. -map diffs a renamed benchmark against its old
// name (the f64↔f32 engine variants being the motivating case), gated
// by -tolerance instead of -threshold — pass a negative tolerance to
// require a speedup across the rename.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Stat aggregates one metric over the repetitions of a benchmark.
type Stat struct {
	Mean float64 `json:"mean"`
	Best float64 `json:"best"` // min over runs (max for rate metrics like samples/s)
}

// Entry is the JSON record for one benchmark name.
type Entry struct {
	Name    string          `json:"name"`
	Runs    int             `json:"runs"`
	Iters   int             `json:"iters"` // total b.N across runs
	NsPerOp *Stat           `json:"ns_per_op,omitempty"`
	BPerOp  *Stat           `json:"bytes_per_op,omitempty"`
	Allocs  *Stat           `json:"allocs_per_op,omitempty"`
	Metrics map[string]Stat `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+(\d+)\s+(.+)$`)

// cpuSuffix is the -GOMAXPROCS suffix go test appends to benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// rateMetric reports whether higher values of the unit are better, so
// Best keeps the max instead of the min.
func rateMetric(unit string) bool {
	return strings.Contains(unit, "/s") || strings.HasSuffix(unit, "/sec")
}

type accum struct {
	runs  int
	iters int
	vals  map[string][]float64 // unit -> one value per run
}

// Parse reads `go test -bench` output and builds the report.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	acc := map[string]*accum{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("rrsbench: bad iteration count in %q: %v", line, err)
		}
		a := acc[name]
		if a == nil {
			a = &accum{vals: map[string][]float64{}}
			acc[name] = a
			order = append(order, name)
		}
		a.runs++
		a.iters += iters
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("rrsbench: bad metric value in %q: %v", line, err)
			}
			a.vals[fields[i+1]] = append(a.vals[fields[i+1]], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	for _, name := range order {
		a := acc[name]
		e := Entry{Name: name, Runs: a.runs, Iters: a.iters}
		units := make([]string, 0, len(a.vals))
		for u := range a.vals {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			s := stat(a.vals[u], rateMetric(u))
			switch u {
			case "ns/op":
				e.NsPerOp = &s
			case "B/op":
				e.BPerOp = &s
			case "allocs/op":
				e.Allocs = &s
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]Stat{}
				}
				e.Metrics[u] = s
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	return rep, nil
}

func stat(vals []float64, higherBetter bool) Stat {
	var sum float64
	best := vals[0]
	for _, v := range vals {
		sum += v
		if (higherBetter && v > best) || (!higherBetter && v < best) {
			best = v
		}
	}
	return Stat{Mean: sum / float64(len(vals)), Best: best}
}

// Delta is one benchmark's old-vs-new mean ns/op comparison.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Ratio     float64 // NewNs/OldNs - 1; positive means slower
	Regressed bool
}

// CompareOpts configures Compare.
type CompareOpts struct {
	// Threshold is the mean ns/op regression fraction that fails a
	// same-name benchmark.
	Threshold float64
	// Tolerance is the regression fraction applied to renamed pairs
	// (see Rename). Cross-engine diffs are not apples-to-apples, so
	// they get their own budget — including negative values, which
	// *require* a speedup (e.g. -0.5 demands the f32 successor run at
	// least 2× faster than the f64 baseline it replaced).
	Tolerance float64
	// Rename maps old-report benchmark names to their new-report
	// names, so the gate can keep tracking a benchmark across an
	// engine rename (the f64↔f32 variants being the motivating case).
	Rename map[string]string
}

// Compare diffs mean ns/op over benchmarks present in both reports,
// flagging those slower by more than the applicable fraction. A new
// benchmark named as a Rename target is diffed against the mapped old
// name under Tolerance; everything else matches by identical name
// under Threshold. Order follows new.Benchmarks, which Parse keeps
// sorted by name.
func Compare(old, new *Report, opts CompareOpts) []Delta {
	prev := make(map[string]*Stat, len(old.Benchmarks))
	for _, e := range old.Benchmarks {
		if e.NsPerOp != nil {
			prev[e.Name] = e.NsPerOp
		}
	}
	target := make(map[string]string, len(opts.Rename)) // new name -> old name
	for o, n := range opts.Rename {
		target[n] = o
	}
	var deltas []Delta
	for _, e := range new.Benchmarks {
		if e.NsPerOp == nil {
			continue
		}
		name, gate := e.Name, opts.Threshold
		if o, ok := target[e.Name]; ok {
			name, gate = o+" => "+e.Name, opts.Tolerance
			e.Name = o
		}
		p, ok := prev[e.Name]
		if !ok || !(p.Mean > 0) {
			continue
		}
		r := e.NsPerOp.Mean/p.Mean - 1
		deltas = append(deltas, Delta{
			Name:      name,
			OldNs:     p.Mean,
			NewNs:     e.NsPerOp.Mean,
			Ratio:     r,
			Regressed: r > gate,
		})
	}
	return deltas
}

// UnmatchedRenames reports -map entries that cannot gate anything:
// old names with no ns/op benchmark in the baseline report, and new
// names absent from the new report. Compare silently skips such pairs
// (there is nothing to diff), which is correct for the diff but lets a
// renamed-bench gate rot unnoticed when a benchmark is renamed again
// or deleted — callers should surface these as warnings.
func UnmatchedRenames(old, new *Report, rename map[string]string) (missingOld, missingNew []string) {
	inOld := make(map[string]bool, len(old.Benchmarks))
	for _, e := range old.Benchmarks {
		if e.NsPerOp != nil {
			inOld[e.Name] = true
		}
	}
	inNew := make(map[string]bool, len(new.Benchmarks))
	for _, e := range new.Benchmarks {
		if e.NsPerOp != nil {
			inNew[e.Name] = true
		}
	}
	for o, n := range rename {
		if !inOld[o] {
			missingOld = append(missingOld, o)
		}
		if !inNew[n] {
			missingNew = append(missingNew, n)
		}
	}
	sort.Strings(missingOld)
	sort.Strings(missingNew)
	return missingOld, missingNew
}

// parseRenames decodes the repeated -map values: each is a
// comma-separated list of old=new benchmark name pairs. Benchmark
// names may themselves contain "=" (sub-benchmarks like taps=64x64),
// so the unambiguous "old=>new" form is preferred and tried first;
// plain "=" splits at the first occurrence.
func parseRenames(specs []string) (map[string]string, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	m := map[string]string{}
	for _, spec := range specs {
		for _, pair := range strings.Split(spec, ",") {
			o, n, ok := strings.Cut(pair, "=>")
			if !ok {
				o, n, ok = strings.Cut(pair, "=")
			}
			if !ok || o == "" || n == "" {
				return nil, fmt.Errorf("rrsbench: -map %q: want old=new (or old=>new)", pair)
			}
			if existing, dup := m[o]; dup && existing != n {
				return nil, fmt.Errorf("rrsbench: -map: %q mapped to both %q and %q", o, existing, n)
			}
			m[o] = n
		}
	}
	return m, nil
}

// stringList collects repeated flag occurrences.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("rrsbench: %s: %v", path, err)
	}
	return &rep, nil
}

func compareMain(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.15, "mean ns/op regression fraction that fails the comparison")
	tolerance := fs.Float64("tolerance", math.NaN(),
		"regression fraction applied to -map'd pairs (default: the -threshold value); negative values require a speedup")
	var maps stringList
	fs.Var(&maps, "map", "old=new benchmark rename pair[s], comma-separated; repeatable")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: rrsbench compare [-threshold 0.15] [-tolerance f] [-map old=new] old.json new.json")
		os.Exit(2)
	}
	rename, err := parseRenames(maps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if math.IsNaN(*tolerance) {
		*tolerance = *threshold
	}
	oldRep, err := readReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	newRep, err := readReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	missingOld, missingNew := UnmatchedRenames(oldRep, newRep, rename)
	if len(missingOld) > 0 {
		fmt.Fprintf(os.Stderr, "rrsbench compare: warning: -map old name(s) not in %s: %s\n",
			fs.Arg(0), strings.Join(missingOld, ", "))
	}
	if len(missingNew) > 0 {
		fmt.Fprintf(os.Stderr, "rrsbench compare: warning: -map new name(s) not in %s: %s\n",
			fs.Arg(1), strings.Join(missingNew, ", "))
	}
	deltas := Compare(oldRep, newRep, CompareOpts{Threshold: *threshold, Tolerance: *tolerance, Rename: rename})
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "rrsbench compare: no common benchmarks with ns/op")
		os.Exit(1)
	}
	failed := false
	for _, d := range deltas {
		status := "ok"
		if d.Regressed {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-60s %14.1f -> %14.1f ns/op  %+7.2f%%  %s\n",
			d.Name, d.OldNs, d.NewNs, 100*d.Ratio, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "rrsbench compare: mean ns/op regression above the gate (threshold %.0f%%, tolerance %.0f%%)\n",
			100**threshold, 100**tolerance)
		os.Exit(1)
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		compareMain(os.Args[2:])
		return
	}
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "rrsbench: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
		w = f
	}
	if _, err := w.Write(buf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
