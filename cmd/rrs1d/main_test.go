package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHomogeneousProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.csv")
	var out bytes.Buffer
	if err := run([]string{"-n", "2048", "-family", "exponential", "-height", "1.5",
		"-cl", "10", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "profile n=2048") {
		t.Errorf("missing summary: %s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(data, []byte("\n"))
	if lines != 2048 {
		t.Errorf("CSV has %d rows", lines)
	}
	if !bytes.HasPrefix(data, []byte("-1024,")) {
		t.Errorf("first row should start at x=-1024: %q", data[:20])
	}
}

func TestPiecewiseProfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "1024", "-family", "gaussian", "-height", "0.3", "-cl", "8",
		"-family2", "exponential", "-height2", "3", "-cl2", "8", "-break", "0", "-t", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "profile n=1024") {
		t.Errorf("missing summary: %s", out.String())
	}
}

func TestValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-family", "wavelet"}, &out); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run([]string{"-n", "1"}, &out); err == nil {
		t.Error("n=1 accepted")
	}
	if err := run([]string{"-family2", "sinusoid"}, &out); err == nil {
		t.Error("unknown second family accepted")
	}
	if err := run([]string{"-height", "0"}, &out); err == nil {
		t.Error("h=0 accepted")
	}
}
