// Command rrs1d generates one-dimensional rough profiles f(x) — the
// input format of profile-based propagation studies. It supports
// homogeneous profiles for any spectral family and piecewise-
// inhomogeneous profiles with linear cross-fades, streaming to CSV
// ("x,height" rows).
//
//	rrs1d -n 4096 -family exponential -height 1.2 -cl 15 -o profile.csv
//	rrs1d -n 8192 -family gaussian -height 0.5 -cl 20 \
//	      -break 0 -family2 exponential -height2 3 -cl2 8 -t 50
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"roughsurface/internal/oned"
	"roughsurface/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrs1d:", err)
		os.Exit(1)
	}
}

func buildSpec(family string, h, cl, order float64) (oned.Spectrum, error) {
	switch family {
	case "gaussian":
		return oned.NewGaussian(h, cl)
	case "powerlaw":
		return oned.NewPowerLaw(h, cl, order)
	case "exponential":
		return oned.NewExponential(h, cl)
	default:
		return nil, fmt.Errorf("unknown 1D family %q (want gaussian, powerlaw or exponential)", family)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rrs1d", flag.ContinueOnError)
	fs.SetOutput(out)
	n := fs.Int("n", 4096, "number of samples")
	dx := fs.Float64("dx", 1, "sample spacing")
	family := fs.String("family", "gaussian", "spectrum family")
	height := fs.Float64("height", 1, "height standard deviation h")
	cl := fs.Float64("cl", 20, "correlation length")
	order := fs.Float64("order", 2, "power-law order N")
	seed := fs.Uint64("seed", 1, "noise seed")
	outPath := fs.String("o", "", "write CSV profile (x,height per row)")
	// Optional second segment: an inhomogeneous two-piece profile.
	family2 := fs.String("family2", "", "second-segment family (enables piecewise mode)")
	height2 := fs.Float64("height2", 1, "second-segment h")
	cl2 := fs.Float64("cl2", 20, "second-segment correlation length")
	order2 := fs.Float64("order2", 2, "second-segment power-law order")
	breakAt := fs.Float64("break", 0, "piecewise break position")
	tHalf := fs.Float64("t", 25, "piecewise transition half-width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("need at least 2 samples, got %d", *n)
	}

	spec, err := buildSpec(*family, *height, *cl, *order)
	if err != nil {
		return err
	}
	k1, err := oned.DesignKernel(spec, *dx, 8, 1e-4)
	if err != nil {
		return err
	}

	var profile []float64
	if *family2 != "" {
		spec2, err := buildSpec(*family2, *height2, *cl2, *order2)
		if err != nil {
			return err
		}
		k2, err := oned.DesignKernel(spec2, *dx, 8, 1e-4)
		if err != nil {
			return err
		}
		pw, err := oned.NewPiecewise([]*oned.Kernel{k1, k2}, []float64{*breakAt}, *tHalf, *seed)
		if err != nil {
			return err
		}
		profile = pw.GenerateAt(-int64(*n/2), *n)
	} else {
		profile = oned.NewGenerator(k1, *seed).GenerateCentered(*n)
	}

	sum := stats.Describe(profile)
	fmt.Fprintf(out, "profile n=%d dx=%g: %s\n", *n, *dx, sum)

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		for i, v := range profile {
			x := (float64(i) - float64(*n/2)) * *dx
			bw.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			bw.WriteByte('\n')
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}
