// Command rrslint runs the project-specific static analysis suite
// (internal/lint) over this module: the AST checks floatcmp,
// parpolicy, seedrand, errdrop and mapordered; the CFG dataflow passes
// poolbalance, retainescape and goleak; the interprocedural passes
// lockbalance, ctxflow and httpwrite; and the determinism-taint passes
// detflow and floatreduce. It is part of the scripts/check.sh
// verification gate.
//
// Usage:
//
//	rrslint [-format text|json|sarif] [-checks a,b,-c] [-list] [packages]
//
// Package patterns are module-relative directories; "./..." (the
// default) lints the whole module, "./internal/fft" one package,
// "./internal/..." a subtree. -checks entries prefixed with "-"
// exclude a check instead of including one. -json is shorthand for
// -format=json, whose object carries the findings (sorted by file,
// line, column, check) plus a per-check timing breakdown; -format=sarif
// emits SARIF 2.1.0 for code-scanning upload. Exit status: 0 clean,
// 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"roughsurface/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rrslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "shorthand for -format=json")
	format := fs.String("format", "text", "output format: text, json (findings + timing), or sarif")
	checksFlag := fs.String("checks", "", "comma-separated checks to run; prefix a name with - to exclude it")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "rrslint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if *list {
		for _, line := range lint.CheckNames() {
			fmt.Fprintln(stdout, line)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "rrslint:", err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "rrslint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, all, err := resolvePatterns(patterns, cwd, root)
	if err != nil {
		fmt.Fprintln(stderr, "rrslint:", err)
		return 2
	}
	if all {
		dirs = nil
	}

	var checks []string
	if *checksFlag != "" {
		checks = strings.Split(*checksFlag, ",")
	}

	res, err := lint.RunTimed(lint.Config{Root: root, Dirs: dirs, Checks: checks})
	if err != nil {
		fmt.Fprintln(stderr, "rrslint:", err)
		return 2
	}
	diags := res.Diagnostics
	if diags == nil {
		diags = []lint.Diagnostic{}
	}

	switch *format {
	case "json":
		out := struct {
			Findings []lint.Diagnostic  `json:"findings"`
			Timing   []lint.CheckTiming `json:"timing"`
		}{Findings: diags, Timing: res.Timing}
		if err := json.NewEncoder(stdout).Encode(out); err != nil {
			fmt.Fprintln(stderr, "rrslint:", err)
			return 2
		}
	case "sarif":
		if err := writeSARIF(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "rrslint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// SARIF 2.1.0, the minimal subset code-scanning upload consumes: one
// run, one rule per registered check, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, diags []lint.Diagnostic) error {
	var rules []sarifRule
	for _, c := range lint.Checks() {
		rules = append(rules, sarifRule{ID: c.Name, ShortDescription: sarifMessage{Text: c.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rrslint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolvePatterns converts CLI package patterns into module-relative
// directory selectors for lint.Config.Dirs. The boolean reports
// whether the whole module was selected.
func resolvePatterns(patterns []string, cwd, root string) ([]string, bool, error) {
	var dirs []string
	for _, pat := range patterns {
		sub, recursive := strings.CutSuffix(pat, "...")
		sub = strings.TrimSuffix(sub, "/")
		if sub == "." || sub == "" {
			sub = cwd
		} else if !filepath.IsAbs(sub) {
			sub = filepath.Join(cwd, sub)
		}
		rel, err := filepath.Rel(root, sub)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return nil, false, fmt.Errorf("pattern %q is outside module root %s", pat, root)
		}
		if rel == "." {
			rel = ""
		}
		rel = filepath.ToSlash(rel)
		if recursive {
			if rel == "" {
				return nil, true, nil // whole module
			}
			dirs = append(dirs, rel+"/...")
		} else {
			dirs = append(dirs, rel)
		}
	}
	return dirs, false, nil
}
