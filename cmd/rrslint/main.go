// Command rrslint runs the project-specific static analysis suite
// (internal/lint) over this module: the AST checks floatcmp,
// parpolicy, seedrand, errdrop and mapordered, and the CFG dataflow
// passes poolbalance, retainescape and goleak. It is part of the
// scripts/check.sh verification gate.
//
// Usage:
//
//	rrslint [-json] [-checks a,b] [-list] [packages]
//
// Package patterns are module-relative directories; "./..." (the
// default) lints the whole module, "./internal/fft" one package,
// "./internal/..." a subtree. Exit status: 0 clean, 1 findings,
// 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"roughsurface/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rrslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (CI mode)")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, line := range lint.CheckNames() {
			fmt.Fprintln(stdout, line)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "rrslint:", err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "rrslint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, all, err := resolvePatterns(patterns, cwd, root)
	if err != nil {
		fmt.Fprintln(stderr, "rrslint:", err)
		return 2
	}
	if all {
		dirs = nil
	}

	var checks []string
	if *checksFlag != "" {
		checks = strings.Split(*checksFlag, ",")
	}

	diags, err := lint.Run(lint.Config{Root: root, Dirs: dirs, Checks: checks})
	if err != nil {
		fmt.Fprintln(stderr, "rrslint:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "rrslint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolvePatterns converts CLI package patterns into module-relative
// directory selectors for lint.Config.Dirs. The boolean reports
// whether the whole module was selected.
func resolvePatterns(patterns []string, cwd, root string) ([]string, bool, error) {
	var dirs []string
	for _, pat := range patterns {
		sub, recursive := strings.CutSuffix(pat, "...")
		sub = strings.TrimSuffix(sub, "/")
		if sub == "." || sub == "" {
			sub = cwd
		} else if !filepath.IsAbs(sub) {
			sub = filepath.Join(cwd, sub)
		}
		rel, err := filepath.Rel(root, sub)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return nil, false, fmt.Errorf("pattern %q is outside module root %s", pat, root)
		}
		if rel == "." {
			rel = ""
		}
		rel = filepath.ToSlash(rel)
		if recursive {
			if rel == "" {
				return nil, true, nil // whole module
			}
			dirs = append(dirs, rel+"/...")
		} else {
			dirs = append(dirs, rel)
		}
	}
	return dirs, false, nil
}
