package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roughsurface/internal/lint"
)

func TestListChecks(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"floatcmp", "parpolicy", "seedrand", "errdrop", "mapordered",
		"poolbalance", "retainescape", "goleak",
		"lockbalance", "ctxflow", "httpwrite",
		"detflow", "floatreduce",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadFlagExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit %d, want 2", code)
	}
}

func TestUnknownCheckExitsError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nope", "./."}, &out, &errb); code != 2 {
		t.Errorf("unknown check exit %d, want 2 (stderr: %s)", code, errb.String())
	}
}

// jsonOutput mirrors the -format=json object.
type jsonOutput struct {
	Findings []lint.Diagnostic  `json:"findings"`
	Timing   []lint.CheckTiming `json:"timing"`
}

// decodeJSON parses CLI JSON output and sanity-checks the timing
// breakdown every invocation must carry.
func decodeJSON(t *testing.T, data []byte, wantChecks int) jsonOutput {
	t.Helper()
	var out jsonOutput
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("JSON output invalid: %v\n%s", err, data)
	}
	if len(out.Timing) != wantChecks {
		t.Errorf("timing entries: got %d, want %d (%v)", len(out.Timing), wantChecks, out.Timing)
	}
	for i, ct := range out.Timing {
		if ct.Millis < 0 {
			t.Errorf("check %s: negative timing", ct.Check)
		}
		if i > 0 && out.Timing[i-1].Check >= ct.Check {
			t.Errorf("timing not sorted: %q before %q", out.Timing[i-1].Check, ct.Check)
		}
	}
	return out
}

// TestRepoIsLintClean is the gate the rest of the PR maintains: the
// module's own tree must produce zero findings under all 13 checks.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", root + "/..."}, &out, &errb); code != 0 {
		t.Fatalf("rrslint exit %d on own tree\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	res := decodeJSON(t, out.Bytes(), 13)
	if len(res.Findings) != 0 {
		t.Errorf("own tree has %d findings", len(res.Findings))
	}
}

// chdir moves the process into dir for the duration of the test; the
// CLI resolves patterns against os.Getwd, so these tests are not
// parallel-safe and do not call t.Parallel.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpfixture\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const leakySrc = `package tmpfixture

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}
var keep []byte

func Leak(cond bool) *[]byte {
	b := pool.Get().(*[]byte)
	if cond {
		return nil
	}
	return b
}

func Orphan(fn func()) {
	go fn()
}

func StashInto(dst []byte) {
	keep = dst
}
`

const silencedSrc = `package tmpfixture

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}
var keep []byte

func Leak(cond bool) *[]byte {
	//lint:ignore poolbalance test fixture: leak is deliberate
	b := pool.Get().(*[]byte)
	if cond {
		return nil
	}
	return b
}

func Orphan(fn func()) {
	//lint:ignore goleak test fixture: orphan is deliberate
	go fn()
}

func StashInto(dst []byte) {
	//lint:ignore retainescape test fixture: retention is deliberate
	keep = dst
}
`

// TestNewPassesExitCode drives the CLI over a module where all three
// CFG passes fire: exit 1, each pass named in the JSON findings.
func TestNewPassesExitCode(t *testing.T) {
	chdir(t, writeModule(t, map[string]string{"leaky.go": leakySrc}))
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "poolbalance,retainescape,goleak", "-json", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	res := decodeJSON(t, out.Bytes(), 3)
	got := map[string]int{}
	for _, d := range res.Findings {
		got[d.Check]++
	}
	for _, check := range []string{"poolbalance", "retainescape", "goleak"} {
		if got[check] == 0 {
			t.Errorf("check %s: no finding in %v", check, res.Findings)
		}
	}
}

// TestNewPassesHonorIgnore is the same module with every finding
// silenced by //lint:ignore: exit 0, empty JSON array.
func TestNewPassesHonorIgnore(t *testing.T) {
	chdir(t, writeModule(t, map[string]string{"leaky.go": silencedSrc}))
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "poolbalance,retainescape,goleak", "-json", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	res := decodeJSON(t, out.Bytes(), 3)
	if len(res.Findings) != 0 {
		t.Errorf("silenced module still has findings: %v", res.Findings)
	}
}

// TestSelfCheckExcludesTestdata pins that linting internal/lint itself
// is clean: the fixture tree under testdata (full of deliberate
// violations) must not leak into the real-package findings.
func TestSelfCheckExcludesTestdata(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "../../internal/lint"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on internal/lint\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	res := decodeJSON(t, out.Bytes(), 13)
	if len(res.Findings) != 0 {
		t.Errorf("internal/lint has %d findings (testdata leaking in?): %v", len(res.Findings), res.Findings)
	}
}

// TestJSONGolden pins the -format=json findings bytes on a fixed
// module: deterministic content AND deterministic order, so CI diffs
// of the findings artifact stay reviewable. Timing is asserted
// structurally (it cannot be byte-stable) and stripped before the
// golden comparison.
func TestJSONGolden(t *testing.T) {
	chdir(t, writeModule(t, map[string]string{"leaky.go": leakySrc}))
	runOnce := func() []byte {
		var out, errb bytes.Buffer
		if code := run([]string{"-checks", "poolbalance,retainescape,goleak", "-format", "json", "./..."}, &out, &errb); code != 1 {
			t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
		}
		res := decodeJSON(t, out.Bytes(), 3)
		findings, err := json.Marshal(res.Findings)
		if err != nil {
			t.Fatal(err)
		}
		return findings
	}
	got := runOnce()
	const golden = `[` +
		`{"check":"poolbalance","file":"leaky.go","line":9,"col":7,"message":"pool.Get may reach a non-panic exit without a matching Put"},` +
		`{"check":"goleak","file":"leaky.go","line":17,"col":2,"message":"goroutine may have no join on some path to return; add a WaitGroup.Wait or channel receive on every exit"},` +
		`{"check":"retainescape","file":"leaky.go","line":21,"col":2,"message":"caller-owned buffer of StashInto stored into a package-level variable; Into/GenerateAt destinations must not outlive the call"}` +
		`]`
	if string(got) != golden {
		t.Errorf("findings drifted from golden:\n got: %s\nwant: %s", got, golden)
	}
	if again := runOnce(); !bytes.Equal(got, again) {
		t.Errorf("findings not deterministic across runs:\n%s\nvs\n%s", got, again)
	}
}

// TestSARIFOutput pins the -format=sarif envelope: schema, one rule
// per registered check, one result per finding with a physical
// location.
func TestSARIFOutput(t *testing.T) {
	chdir(t, writeModule(t, map[string]string{"leaky.go": leakySrc}))
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "poolbalance,retainescape,goleak", "-format", "sarif", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output invalid: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("envelope: version %q, %d runs", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "rrslint" || len(r.Tool.Driver.Rules) != 13 {
		t.Errorf("driver: name %q, %d rules (want rrslint, 13)", r.Tool.Driver.Name, len(r.Tool.Driver.Rules))
	}
	// The determinism-taint rules must be in the SARIF rule table even
	// when the run selects other checks: code scanning keys on rule IDs.
	haveRule := map[string]bool{}
	for _, rule := range r.Tool.Driver.Rules {
		haveRule[rule.ID] = true
	}
	for _, id := range []string{"detflow", "floatreduce"} {
		if !haveRule[id] {
			t.Errorf("SARIF rule table missing %q", id)
		}
	}
	if len(r.Results) != 3 {
		t.Fatalf("results: got %d, want 3", len(r.Results))
	}
	for _, res := range r.Results {
		if res.RuleID == "" || len(res.Locations) != 1 ||
			res.Locations[0].PhysicalLocation.ArtifactLocation.URI != "leaky.go" ||
			res.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("malformed result: %+v", res)
		}
	}
}

// TestChecksExcludeFlag drives the -checks exclusion syntax end to
// end: the excluded pass stays quiet, the rest still fire.
func TestChecksExcludeFlag(t *testing.T) {
	chdir(t, writeModule(t, map[string]string{"leaky.go": leakySrc}))
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "-poolbalance,-floatcmp", "-json", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	res := decodeJSON(t, out.Bytes(), 11)
	for _, d := range res.Findings {
		if d.Check == "poolbalance" || d.Check == "floatcmp" {
			t.Errorf("excluded check still reported: %v", d)
		}
	}
	got := map[string]bool{}
	for _, d := range res.Findings {
		got[d.Check] = true
	}
	if !got["goleak"] || !got["retainescape"] {
		t.Errorf("non-excluded checks missing from %v", res.Findings)
	}
}

func TestResolvePatterns(t *testing.T) {
	root := filepath.FromSlash("/mod")
	cwd := filepath.FromSlash("/mod/internal")
	cases := []struct {
		pats []string
		want []string
		all  bool
		err  bool
	}{
		{pats: []string{"./..."}, all: false, want: []string{"internal/..."}},
		{pats: []string{"fft"}, want: []string{"internal/fft"}},
		{pats: []string{"/mod/..."}, all: true},
		{pats: []string{"../../elsewhere"}, err: true},
	}
	for _, c := range cases {
		got, all, err := resolvePatterns(c.pats, cwd, root)
		if c.err {
			if err == nil {
				t.Errorf("%v: want error", c.pats)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v: %v", c.pats, err)
			continue
		}
		if all != c.all {
			t.Errorf("%v: all = %v, want %v", c.pats, all, c.all)
		}
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("%v: dirs = %v, want %v", c.pats, got, c.want)
		}
	}
}
