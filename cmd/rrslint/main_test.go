package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roughsurface/internal/lint"
)

func TestListChecks(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"floatcmp", "parpolicy", "seedrand", "errdrop", "mapordered",
		"poolbalance", "retainescape", "goleak",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadFlagExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit %d, want 2", code)
	}
}

func TestUnknownCheckExitsError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nope", "./."}, &out, &errb); code != 2 {
		t.Errorf("unknown check exit %d, want 2 (stderr: %s)", code, errb.String())
	}
}

// TestRepoIsLintClean is the gate the rest of the PR maintains: the
// module's own tree must produce zero findings.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", root + "/..."}, &out, &errb); code != 0 {
		t.Fatalf("rrslint exit %d on own tree\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("JSON output invalid: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("own tree has %d findings", len(diags))
	}
}

// chdir moves the process into dir for the duration of the test; the
// CLI resolves patterns against os.Getwd, so these tests are not
// parallel-safe and do not call t.Parallel.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpfixture\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const leakySrc = `package tmpfixture

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}
var keep []byte

func Leak(cond bool) *[]byte {
	b := pool.Get().(*[]byte)
	if cond {
		return nil
	}
	return b
}

func Orphan(fn func()) {
	go fn()
}

func StashInto(dst []byte) {
	keep = dst
}
`

const silencedSrc = `package tmpfixture

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}
var keep []byte

func Leak(cond bool) *[]byte {
	//lint:ignore poolbalance test fixture: leak is deliberate
	b := pool.Get().(*[]byte)
	if cond {
		return nil
	}
	return b
}

func Orphan(fn func()) {
	//lint:ignore goleak test fixture: orphan is deliberate
	go fn()
}

func StashInto(dst []byte) {
	//lint:ignore retainescape test fixture: retention is deliberate
	keep = dst
}
`

// TestNewPassesExitCode drives the CLI over a module where all three
// CFG passes fire: exit 1, each pass named in the JSON findings.
func TestNewPassesExitCode(t *testing.T) {
	chdir(t, writeModule(t, map[string]string{"leaky.go": leakySrc}))
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "poolbalance,retainescape,goleak", "-json", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("JSON output invalid: %v", err)
	}
	got := map[string]int{}
	for _, d := range diags {
		got[d.Check]++
	}
	for _, check := range []string{"poolbalance", "retainescape", "goleak"} {
		if got[check] == 0 {
			t.Errorf("check %s: no finding in %v", check, diags)
		}
	}
}

// TestNewPassesHonorIgnore is the same module with every finding
// silenced by //lint:ignore: exit 0, empty JSON array.
func TestNewPassesHonorIgnore(t *testing.T) {
	chdir(t, writeModule(t, map[string]string{"leaky.go": silencedSrc}))
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "poolbalance,retainescape,goleak", "-json", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("JSON output invalid: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("silenced module still has findings: %v", diags)
	}
}

// TestSelfCheckExcludesTestdata pins that linting internal/lint itself
// is clean: the fixture tree under testdata (full of deliberate
// violations) must not leak into the real-package findings.
func TestSelfCheckExcludesTestdata(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "../../internal/lint"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on internal/lint\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("JSON output invalid: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("internal/lint has %d findings (testdata leaking in?): %v", len(diags), diags)
	}
}

func TestResolvePatterns(t *testing.T) {
	root := filepath.FromSlash("/mod")
	cwd := filepath.FromSlash("/mod/internal")
	cases := []struct {
		pats []string
		want []string
		all  bool
		err  bool
	}{
		{pats: []string{"./..."}, all: false, want: []string{"internal/..."}},
		{pats: []string{"fft"}, want: []string{"internal/fft"}},
		{pats: []string{"/mod/..."}, all: true},
		{pats: []string{"../../elsewhere"}, err: true},
	}
	for _, c := range cases {
		got, all, err := resolvePatterns(c.pats, cwd, root)
		if c.err {
			if err == nil {
				t.Errorf("%v: want error", c.pats)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v: %v", c.pats, err)
			continue
		}
		if all != c.all {
			t.Errorf("%v: all = %v, want %v", c.pats, all, c.all)
		}
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("%v: dirs = %v, want %v", c.pats, got, c.want)
		}
	}
}
