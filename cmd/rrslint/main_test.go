package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roughsurface/internal/lint"
)

func TestListChecks(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"floatcmp", "parpolicy", "seedrand", "errdrop", "mapordered"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadFlagExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit %d, want 2", code)
	}
}

func TestUnknownCheckExitsError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nope", "./."}, &out, &errb); code != 2 {
		t.Errorf("unknown check exit %d, want 2 (stderr: %s)", code, errb.String())
	}
}

// TestRepoIsLintClean is the gate the rest of the PR maintains: the
// module's own tree must produce zero findings.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", root + "/..."}, &out, &errb); code != 0 {
		t.Fatalf("rrslint exit %d on own tree\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("JSON output invalid: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("own tree has %d findings", len(diags))
	}
}

func TestResolvePatterns(t *testing.T) {
	root := filepath.FromSlash("/mod")
	cwd := filepath.FromSlash("/mod/internal")
	cases := []struct {
		pats []string
		want []string
		all  bool
		err  bool
	}{
		{pats: []string{"./..."}, all: false, want: []string{"internal/..."}},
		{pats: []string{"fft"}, want: []string{"internal/fft"}},
		{pats: []string{"/mod/..."}, all: true},
		{pats: []string{"../../elsewhere"}, err: true},
	}
	for _, c := range cases {
		got, all, err := resolvePatterns(c.pats, cwd, root)
		if c.err {
			if err == nil {
				t.Errorf("%v: want error", c.pats)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v: %v", c.pats, err)
			continue
		}
		if all != c.all {
			t.Errorf("%v: all = %v, want %v", c.pats, all, c.all)
		}
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("%v: dirs = %v, want %v", c.pats, got, c.want)
		}
	}
}
