// Package approx is the shared float-comparison vocabulary of the
// repository, and the only place allowed to compare floating-point
// values with == or != (enforced by rrslint's floatcmp check).
//
// Two families:
//
//   - Equal/EqualC: tolerance comparisons, for anything produced by
//     floating-point arithmetic;
//   - Exact/ExactC: bit-for-bit equality, the deliberate spelling for
//     determinism, round-trip, and clamped-sentinel assertions where
//     any deviation at all is a bug (the tiled generators promise
//     bit-identical overlap, not close overlap).
//
// Routing exact comparisons through named helpers keeps the intent
// auditable: a bare == could be a mistake; approx.Exact cannot.
package approx

import (
	"math"
	"math/cmplx"
)

// Equal reports |a-b| <= tol.
func Equal(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// EqualC reports |a-b| <= tol in the complex plane.
func EqualC(a, b complex128, tol float64) bool { return cmplx.Abs(a-b) <= tol }

// Exact reports bit-for-bit equality of two floats.
func Exact(a, b float64) bool { return a == b }

// ExactC reports bit-for-bit equality of two complex values.
func ExactC(a, b complex128) bool { return a == b }
