package approx

import (
	"math"
	"testing"
)

func TestEqual(t *testing.T) {
	if !Equal(1, 1+1e-12, 1e-9) {
		t.Error("within tolerance rejected")
	}
	if Equal(1, 1.1, 1e-9) {
		t.Error("outside tolerance accepted")
	}
	if Equal(1, math.NaN(), 1e-9) {
		t.Error("NaN compared equal")
	}
	if !EqualC(1+1i, 1+1i+complex(1e-12, 0), 1e-9) {
		t.Error("complex within tolerance rejected")
	}
	if EqualC(1+1i, 2+1i, 1e-9) {
		t.Error("complex outside tolerance accepted")
	}
}

func TestExact(t *testing.T) {
	if !Exact(0.75, 0.75) {
		t.Error("identical values rejected")
	}
	if Exact(0.75, 0.75+1e-16) || Exact(1, math.Nextafter(1, 2)) {
		t.Error("adjacent representable values conflated")
	}
	if Exact(math.NaN(), math.NaN()) {
		t.Error("NaN == NaN")
	}
	if !ExactC(2+3i, 2+3i) || ExactC(2+3i, 2+3.0000000001i) {
		t.Error("complex exact comparison wrong")
	}
}
