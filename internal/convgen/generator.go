package convgen

import (
	"fmt"
	"sync"

	"roughsurface/internal/fft"
	"roughsurface/internal/grid"
	"roughsurface/internal/par"
	"roughsurface/internal/rng"
	"roughsurface/internal/simd"
)

// Engine selects the convolution implementation.
type Engine int

const (
	// EngineAuto picks Direct for small kernels and FFT otherwise.
	EngineAuto Engine = iota
	// EngineDirect evaluates paper eqn (36) literally: an explicit tap
	// sum per output sample. O(outputs × taps).
	EngineDirect
	// EngineFFT computes the identical linear correlation through padded
	// real-input FFTs. O(N log N); bit-exact determinism with
	// EngineDirect is not guaranteed but agreement is to ~1e-10.
	EngineFFT
)

// directCostLimit is the tap-multiply budget above which EngineAuto
// switches from the literal sum to the FFT path.
const directCostLimit = 1 << 27

// Generator produces homogeneous surfaces by filtering the counter-based
// white Gaussian field with the kernel. Because the noise is a pure
// function of (seed, lattice point), any window at any offset can be
// generated independently — overlapping windows agree exactly, which is
// what makes strip-by-strip generation of unbounded surfaces seamless.
//
// A Generator is safe for concurrent use: per-call scratch comes from an
// internal pool, and the kernel-spectrum cache is locked. Returned grids
// are caller-owned; scratch is never shared with them. In steady state —
// streaming strips, fixed-size tiles — a Generate call allocates only
// the returned grid.
type Generator struct {
	kernel *Kernel
	field  rng.Field

	// Workers bounds per-call parallelism (0 = GOMAXPROCS).
	Workers int
	// Engine selects the convolution path (default EngineAuto).
	Engine Engine

	// tapsHat caches the half-spectrum of the zero-padded kernel per
	// FFT size: streaming and tiled workloads re-enter convolveFFT with
	// the same geometry, and the kernel never changes. Bounded (small
	// LRU) so mixed-size tiled workloads cannot grow it without limit.
	tapsHat tapsCache

	// arenas pools the per-call scratch buffers (noise window, padded
	// real workspace, half-spectrum). A pool rather than one owned
	// buffer keeps concurrent GenerateAt calls on a shared Generator
	// correct while still reaching zero steady-state allocations.
	arenas sync.Pool

	// taps32 is the kernel narrowed to float32, built once on first use
	// of the f32 render path. It lives on the Generator, not the Kernel:
	// Kernel is a mutable exported value type, while a Generator's
	// kernel is fixed at construction, which makes the cache safe.
	taps32     []float32
	taps32Once sync.Once
}

// genArena is one call's worth of scratch. Buffers grow to the largest
// geometry seen and are reused across calls.
type genArena struct {
	noise   []float64    // direct engine: wx×wy noise window
	noise32 []float32    // f32 direct engine: wx×wy noise window
	pad     []float64    // fft engine: px×py padded real workspace
	spec    []complex128 // fft engine: (px/2+1)×py half-spectrum
}

// growF returns buf resliced to n, reallocating only when capacity is
// insufficient.
func growF(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

func growC(buf []complex128, n int) []complex128 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]complex128, n)
}

func grow32(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}

// NewGenerator wraps a kernel and a noise field seed.
func NewGenerator(k *Kernel, seed uint64) *Generator {
	g := &Generator{kernel: k, field: rng.NewField(seed)}
	g.arenas.New = func() any { return &genArena{} }
	return g
}

// Kernel exposes the generator's kernel (shared, not copied).
func (g *Generator) Kernel() *Kernel { return g.kernel }

// GenerateAt materializes the surface window whose lower corner is
// lattice point (i0, j0), of nx×ny samples. Sample (i, j) of the result
// is the surface value at lattice point (i0+i, j0+j); physical
// coordinates are lattice × spacing. The returned grid is caller-owned.
func (g *Generator) GenerateAt(i0, j0 int64, nx, ny int) *grid.Grid {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("convgen: invalid window %dx%d", nx, ny))
	}
	k := g.kernel
	out := grid.New(nx, ny)
	out.Dx, out.Dy = k.Dx, k.Dy
	out.X0 = float64(i0) * k.Dx
	out.Y0 = float64(j0) * k.Dy
	g.GenerateAtInto(out.Data, nx, i0, j0, nx, ny, g.Workers)
	return out
}

// GenerateAtInto is GenerateAt writing into a caller-owned destination
// buffer instead of allocating a grid: row j of the window lands at
// dst[j*stride : j*stride+nx], so a tile can be rendered in place
// inside a larger raster (stride = the raster's row length). Samples
// outside the written rows/columns are untouched. workers bounds this
// call's parallelism (0 defers to the generator's Workers field, whose
// 0 in turn means GOMAXPROCS); unlike mutating Workers, passing it here
// is safe under concurrent calls on one Generator. Scratch comes from
// the generator's arena pool, so the call itself allocates nothing in
// steady state.
func (g *Generator) GenerateAtInto(dst []float64, stride int, i0, j0 int64, nx, ny, workers int) {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("convgen: invalid window %dx%d", nx, ny))
	}
	if stride < nx {
		panic(fmt.Sprintf("convgen: stride %d below window width %d", stride, nx))
	}
	if need := stride*(ny-1) + nx; len(dst) < need {
		panic(fmt.Sprintf("convgen: destination holds %d samples, window needs %d", len(dst), need))
	}
	if workers == 0 {
		workers = g.Workers
	}
	ar := g.arenas.Get().(*genArena)
	switch g.engineFor(nx, ny) {
	case EngineDirect:
		g.convolveDirect(dst, stride, nx, ny, ar, i0, j0, workers)
	case EngineFFT:
		g.convolveFFT(dst, stride, nx, ny, ar, i0, j0, workers)
	}
	g.arenas.Put(ar)
}

// GenerateAtInto32 is GenerateAtInto rendering in float32 — the serving
// hot path. Taps and noise are narrowed once and the multiply-
// accumulate runs entirely in single precision through the simd MAC
// kernels, which roughly halves memory traffic and doubles SIMD lane
// count over the float64 reference engine. Agreement with the float64
// path is statistical, not bit-exact: each sample differs by rounding
// noise bounded well below the surface's own sampling variability (the
// agreement tests gate at 1e-4·σh per sample). Under the FFT engine
// the float64 transforms run unchanged and only the extracted rows are
// narrowed. All other semantics (row placement, caller ownership,
// worker bounding, pooled scratch) match GenerateAtInto.
func (g *Generator) GenerateAtInto32(dst []float32, stride int, i0, j0 int64, nx, ny, workers int) {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("convgen: invalid window %dx%d", nx, ny))
	}
	if stride < nx {
		panic(fmt.Sprintf("convgen: stride %d below window width %d", stride, nx))
	}
	if need := stride*(ny-1) + nx; len(dst) < need {
		panic(fmt.Sprintf("convgen: destination holds %d samples, window needs %d", len(dst), need))
	}
	if workers == 0 {
		workers = g.Workers
	}
	ar := g.arenas.Get().(*genArena)
	switch g.engineFor(nx, ny) {
	case EngineDirect:
		g.convolveDirect32(dst, stride, nx, ny, ar, i0, j0, workers)
	case EngineFFT:
		g.convolveFFT32(dst, stride, nx, ny, ar, i0, j0, workers)
	}
	g.arenas.Put(ar)
}

// GenerateAt32 is GenerateAt at float32 render precision, returning a
// caller-owned Grid32.
func (g *Generator) GenerateAt32(i0, j0 int64, nx, ny int) *grid.Grid32 {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("convgen: invalid window %dx%d", nx, ny))
	}
	k := g.kernel
	out := grid.New32(nx, ny)
	out.Dx, out.Dy = k.Dx, k.Dy
	out.X0 = float64(i0) * k.Dx
	out.Y0 = float64(j0) * k.Dy
	g.GenerateAtInto32(out.Data, nx, i0, j0, nx, ny, g.Workers)
	return out
}

// GenerateCentered materializes an nx×ny window centered on the lattice
// origin, matching the paper's figure axes.
func (g *Generator) GenerateCentered(nx, ny int) *grid.Grid {
	return g.GenerateAt(-int64(nx/2), -int64(ny/2), nx, ny)
}

// EngineFor reports the engine GenerateAt* would select for an nx×ny
// window — EngineDirect or EngineFFT, resolving EngineAuto's cost
// heuristic. Callers batching windows against a shared noise plane
// (ConvolveNoiseInto*, which is direct-only) use it to fall back to the
// self-contained API where the FFT engine would win.
func (g *Generator) EngineFor(nx, ny int) Engine { return g.engineFor(nx, ny) }

func (g *Generator) engineFor(nx, ny int) Engine {
	switch g.Engine {
	case EngineDirect, EngineFFT:
		return g.Engine
	}
	cost := int64(nx) * int64(ny) * int64(g.kernel.Nx) * int64(g.kernel.Ny)
	if cost <= directCostLimit {
		return EngineDirect
	}
	return EngineFFT
}

// fillNoise materializes the noise window [i0, i0+wx) × [j0, j0+wy)
// into rows of dst at the given stride.
func (g *Generator) fillNoise(dst []float64, i0, j0 int64, wx, wy, stride, workers int) {
	par.For(wy, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			g.field.FillRow(dst[j*stride:j*stride+wx], i0, j0+int64(j))
		}
	})
}

// convolveDirect evaluates f(i,j) = Σ_{a,b} taps[b][a]·X(i+a−cx, j+b−cy);
// the noise window is offset by (−cx, −cy), so the inner expression
// indexes noise at (i+a, j+b). The tap sum runs through the generic
// axpy core, which is bit-identical to the literal per-sample sum.
func (g *Generator) convolveDirect(dst []float64, stride, nx, ny int, ar *genArena, i0, j0 int64, workers int) {
	k := g.kernel
	wx := nx + k.Nx - 1
	wy := ny + k.Ny - 1
	ar.noise = growF(ar.noise, wx*wy)
	noise := ar.noise
	g.fillNoise(noise, i0-int64(k.CX), j0-int64(k.CY), wx, wy, wx, workers)
	convDirect(dst, stride, nx, ny, k.Taps, k.Nx, k.Ny, noise, wx, simd.MacRow64, workers)
}

// convolveDirect32 is the float32 serving path: float32 taps, a noise
// window narrowed at fill time, and the float32 MAC kernel.
func (g *Generator) convolveDirect32(dst []float32, stride, nx, ny int, ar *genArena, i0, j0 int64, workers int) {
	k := g.kernel
	wx := nx + k.Nx - 1
	wy := ny + k.Ny - 1
	ar.noise32 = grow32(ar.noise32, wx*wy)
	noise := ar.noise32
	ni0, nj0 := i0-int64(k.CX), j0-int64(k.CY)
	par.For(wy, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			g.field.FillRow32(noise[j*wx:j*wx+wx], ni0, nj0+int64(j))
		}
	})
	convDirect(dst, stride, nx, ny, g.kernelTaps32(), k.Nx, k.Ny, noise, wx, simd.MacRow32, workers)
}

// kernelTaps32 returns the kernel narrowed to float32, built on first
// use and cached for the generator's lifetime.
func (g *Generator) kernelTaps32() []float32 {
	g.taps32Once.Do(func() {
		g.taps32 = make([]float32, len(g.kernel.Taps))
		simd.Narrow(g.taps32, g.kernel.Taps)
	})
	return g.taps32
}

// convolveFFT computes the same linear correlation with padded
// real-input FFTs: corr = IRFFT(RFFT(noise)·conj(RFFT(taps))) evaluated
// on the valid region. Both spectra are Hermitian (real inputs), so the
// whole pipeline runs on nx/2+1 bins per row — about half the
// arithmetic and memory traffic of the complex route. The padded size
// per axis is the next power of two at or above the noise window, which
// is always at least output+kernel−1, so no circular wrap reaches the
// extracted samples. The kernel half-spectrum is cached per padded
// size; plans come from the worker-keyed process cache, so steady state
// builds no tables and allocates nothing beyond the output grid.
func (g *Generator) convolveFFT(dst []float64, stride, nx, ny int, ar *genArena, i0, j0 int64, workers int) {
	pad, px := g.convolveFFTPad(nx, ny, ar, i0, j0, workers)
	for j := 0; j < ny; j++ {
		copy(dst[j*stride:j*stride+nx], pad[j*px:j*px+nx])
	}
}

// convolveFFT32 runs the float64 FFT engine and narrows the extracted
// rows. The FFT path is already O(N log N) with most of its time in
// the transforms, so a float32 transform stack would buy little; the
// f32 speedup lives in the direct path (DESIGN.md §13).
func (g *Generator) convolveFFT32(dst []float32, stride, nx, ny int, ar *genArena, i0, j0 int64, workers int) {
	pad, px := g.convolveFFTPad(nx, ny, ar, i0, j0, workers)
	for j := 0; j < ny; j++ {
		simd.Narrow(dst[j*stride:j*stride+nx], pad[j*px:j*px+nx])
	}
}

// convolveFFTPad computes the correlation on the padded workspace and
// returns the arena's pad plus its row stride; rows [0, ny) of the
// valid region start at pad[j*px].
func (g *Generator) convolveFFTPad(nx, ny int, ar *genArena, i0, j0 int64, workers int) ([]float64, int) {
	k := g.kernel
	wx := nx + k.Nx - 1
	wy := ny + k.Ny - 1
	px := nextPow2(wx)
	py := nextPow2(wy)
	plan, err := fft.CachedPlan2DWorkers(px, py, workers)
	if err != nil {
		panic(err)
	}
	hx := plan.HalfNx()
	ar.pad = growF(ar.pad, px*py)
	ar.spec = growC(ar.spec, hx*py)
	spec := ar.spec
	pad := ar.pad

	// Noise rows go straight into the padded workspace; the padding is
	// re-zeroed because the arena still holds the previous call's
	// inverse output.
	par.For(py, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			row := pad[j*px : (j+1)*px]
			if j < wy {
				g.field.FillRow(row[:wx], i0-int64(k.CX), j0-int64(k.CY)+int64(j))
				clear(row[wx:])
			} else {
				clear(row)
			}
		}
	})

	plan.ForwardReal(spec, pad)
	tHat := g.cachedTapsHat(plan, px, py)
	par.For(len(spec), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t := tHat[i]
			spec[i] *= complex(real(t), -imag(t))
		}
	})
	plan.InverseRealTo(pad, spec)
	return pad, px
}

// cachedTapsHat returns the half-spectrum of the kernel zero-padded to
// px×py, computing and caching it on first use for that size.
func (g *Generator) cachedTapsHat(plan *fft.Plan2D, px, py int) []complex128 {
	key := [2]int{px, py}
	if hat := g.tapsHat.get(key); hat != nil {
		return hat
	}
	k := g.kernel
	pad := make([]float64, px*py)
	for b := 0; b < k.Ny; b++ {
		copy(pad[b*px:b*px+k.Nx], k.Taps[b*k.Nx:(b+1)*k.Nx])
	}
	hat := make([]complex128, plan.HalfNx()*py)
	plan.ForwardReal(hat, pad)
	g.tapsHat.put(key, hat)
	return hat
}

// tapsCacheSize bounds the kernel-spectrum LRU. Streaming and
// fixed-tile workloads live on one entry; mixed-size tile mosaics cycle
// a handful. Recomputing an evicted entry costs one forward transform,
// so a small bound is the right trade against unbounded growth.
const tapsCacheSize = 4

type tapsEntry struct {
	key  [2]int
	hat  []complex128
	used uint64
}

// tapsCache is a locked fixed-capacity LRU keyed by padded FFT size.
type tapsCache struct {
	mu      sync.Mutex
	tick    uint64
	entries []tapsEntry
}

func (c *tapsCache) get(key [2]int) []complex128 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.entries {
		if c.entries[i].key == key {
			c.tick++
			c.entries[i].used = c.tick
			return c.entries[i].hat
		}
	}
	return nil
}

func (c *tapsCache) put(key [2]int, hat []complex128) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	for i := range c.entries {
		if c.entries[i].key == key {
			// A concurrent call computed the same spectrum; keep ours
			// fresh but do not grow the cache.
			c.entries[i].hat = hat
			c.entries[i].used = c.tick
			return
		}
	}
	if len(c.entries) < tapsCacheSize {
		c.entries = append(c.entries, tapsEntry{key: key, hat: hat, used: c.tick})
		return
	}
	evict := 0
	for i := 1; i < len(c.entries); i++ {
		if c.entries[i].used < c.entries[evict].used {
			evict = i
		}
	}
	c.entries[evict] = tapsEntry{key: key, hat: hat, used: c.tick}
}

// len reports the number of cached spectra (test hook).
func (c *tapsCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Streamer generates an unbounded-in-y surface as successive strips of
// fixed width, realizing the paper's "arbitrarily long or wide RRSs by
// successive computations". Adjacent strips are statistically seamless
// by construction (shared noise field); Next never re-reads previous
// strips.
type Streamer struct {
	gen     *Generator
	i0      int64
	nx      int
	stripNy int
	nextJ   int64
}

// NewStreamer starts a streamer over columns [i0, i0+nx) beginning at
// lattice row j0, producing strips of stripNy rows per Next call.
func NewStreamer(gen *Generator, i0, j0 int64, nx, stripNy int) *Streamer {
	if nx < 1 || stripNy < 1 {
		panic(fmt.Sprintf("convgen: invalid streamer geometry nx=%d stripNy=%d", nx, stripNy))
	}
	return &Streamer{gen: gen, i0: i0, nx: nx, stripNy: stripNy, nextJ: j0}
}

// Next returns the next strip and advances.
func (s *Streamer) Next() *grid.Grid {
	strip := s.gen.GenerateAt(s.i0, s.nextJ, s.nx, s.stripNy)
	s.nextJ += int64(s.stripNy)
	return strip
}

// NextRow reports the lattice row the next strip will start at.
func (s *Streamer) NextRow() int64 { return s.nextJ }
