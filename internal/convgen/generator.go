package convgen

import (
	"fmt"
	"sync"

	"roughsurface/internal/fft"
	"roughsurface/internal/grid"
	"roughsurface/internal/par"
	"roughsurface/internal/rng"
)

// Engine selects the convolution implementation.
type Engine int

const (
	// EngineAuto picks Direct for small kernels and FFT otherwise.
	EngineAuto Engine = iota
	// EngineDirect evaluates paper eqn (36) literally: an explicit tap
	// sum per output sample. O(outputs × taps).
	EngineDirect
	// EngineFFT computes the identical linear correlation through padded
	// FFTs. O(N log N); bit-exact determinism with EngineDirect is not
	// guaranteed but agreement is to ~1e-10.
	EngineFFT
)

// directCostLimit is the tap-multiply budget above which EngineAuto
// switches from the literal sum to the FFT path.
const directCostLimit = 1 << 27

// Generator produces homogeneous surfaces by filtering the counter-based
// white Gaussian field with the kernel. Because the noise is a pure
// function of (seed, lattice point), any window at any offset can be
// generated independently — overlapping windows agree exactly, which is
// what makes strip-by-strip generation of unbounded surfaces seamless.
type Generator struct {
	kernel *Kernel
	field  rng.Field

	// Workers bounds per-call parallelism (0 = GOMAXPROCS).
	Workers int
	// Engine selects the convolution path (default EngineAuto).
	Engine Engine

	// tapsHat caches the padded kernel spectrum per FFT size: streaming
	// and tiled workloads re-enter convolveFFT with the same geometry,
	// and the kernel never changes.
	mu      sync.Mutex
	tapsHat map[[2]int][]complex128
}

// NewGenerator wraps a kernel and a noise field seed.
func NewGenerator(k *Kernel, seed uint64) *Generator {
	return &Generator{kernel: k, field: rng.NewField(seed), tapsHat: map[[2]int][]complex128{}}
}

// Kernel exposes the generator's kernel (shared, not copied).
func (g *Generator) Kernel() *Kernel { return g.kernel }

// GenerateAt materializes the surface window whose lower corner is
// lattice point (i0, j0), of nx×ny samples. Sample (i, j) of the result
// is the surface value at lattice point (i0+i, j0+j); physical
// coordinates are lattice × spacing.
func (g *Generator) GenerateAt(i0, j0 int64, nx, ny int) *grid.Grid {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("convgen: invalid window %dx%d", nx, ny))
	}
	k := g.kernel
	wx := nx + k.Nx - 1
	wy := ny + k.Ny - 1
	noise := make([]float64, wx*wy)
	g.fillNoise(noise, i0-int64(k.CX), j0-int64(k.CY), wx, wy)

	out := grid.New(nx, ny)
	out.Dx, out.Dy = k.Dx, k.Dy
	out.X0 = float64(i0) * k.Dx
	out.Y0 = float64(j0) * k.Dy

	switch g.engineFor(nx, ny) {
	case EngineDirect:
		g.convolveDirect(out, noise, wx)
	case EngineFFT:
		g.convolveFFT(out, noise, wx, wy)
	}
	return out
}

// GenerateCentered materializes an nx×ny window centered on the lattice
// origin, matching the paper's figure axes.
func (g *Generator) GenerateCentered(nx, ny int) *grid.Grid {
	return g.GenerateAt(-int64(nx/2), -int64(ny/2), nx, ny)
}

func (g *Generator) engineFor(nx, ny int) Engine {
	switch g.Engine {
	case EngineDirect, EngineFFT:
		return g.Engine
	}
	cost := int64(nx) * int64(ny) * int64(g.kernel.Nx) * int64(g.kernel.Ny)
	if cost <= directCostLimit {
		return EngineDirect
	}
	return EngineFFT
}

func (g *Generator) fillNoise(dst []float64, i0, j0 int64, wx, wy int) {
	par.For(wy, g.Workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			row := dst[j*wx : (j+1)*wx]
			for i := range row {
				row[i] = g.field.At(i0+int64(i), j0+int64(j))
			}
		}
	})
}

// convolveDirect evaluates f(i,j) = Σ_{a,b} taps[b][a]·X(i+a−cx, j+b−cy);
// the noise window is already offset by (−cx, −cy), so the inner
// expression indexes noise at (i+a, j+b).
func (g *Generator) convolveDirect(out *grid.Grid, noise []float64, wx int) {
	k := g.kernel
	par.For(out.Ny, g.Workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dstRow := out.Data[j*out.Nx : (j+1)*out.Nx]
			for i := range dstRow {
				var acc float64
				for b := 0; b < k.Ny; b++ {
					tapRow := k.Taps[b*k.Nx : (b+1)*k.Nx]
					noiseRow := noise[(j+b)*wx+i:]
					for a, tap := range tapRow {
						acc += tap * noiseRow[a]
					}
				}
				dstRow[i] = acc
			}
		}
	})
}

// convolveFFT computes the same linear correlation with padded FFTs:
// corr = IFFT(FFT(noise)·conj(FFT(taps))) evaluated on the valid region.
// The padded size per axis is the next power of two at or above the
// noise window, which is always at least output+kernel−1, so no circular
// wrap reaches the extracted samples. The kernel spectrum is cached per
// padded size; on a cold cache both real inputs share one complex
// transform (fft.ForwardRealPair).
func (g *Generator) convolveFFT(out *grid.Grid, noise []float64, wx, wy int) {
	k := g.kernel
	px := nextPow2(wx)
	py := nextPow2(wy)
	var plan *fft.Plan2D
	if g.Workers == 0 {
		var err error
		plan, err = fft.CachedPlan2D(px, py)
		if err != nil {
			panic(err)
		}
	} else {
		plan = fft.MustPlan2D(px, py)
		plan.Workers = g.Workers
	}

	noisePad := make([]float64, px*py)
	for j := 0; j < wy; j++ {
		copy(noisePad[j*px:j*px+wx], noise[j*wx:(j+1)*wx])
	}
	nz := make([]complex128, px*py)

	g.mu.Lock()
	tHat, ok := g.tapsHat[[2]int{px, py}]
	g.mu.Unlock()
	if ok {
		for i, v := range noisePad {
			nz[i] = complex(v, 0)
		}
		plan.Forward(nz)
	} else {
		tapsPad := make([]float64, px*py)
		for b := 0; b < k.Ny; b++ {
			for a := 0; a < k.Nx; a++ {
				tapsPad[b*px+a] = k.At(a, b)
			}
		}
		tHat = make([]complex128, px*py)
		plan.ForwardRealPair(noisePad, tapsPad, nz, tHat)
		g.mu.Lock()
		g.tapsHat[[2]int{px, py}] = tHat
		g.mu.Unlock()
	}

	for i := range nz {
		t := tHat[i]
		nz[i] *= complex(real(t), -imag(t))
	}
	plan.Inverse(nz)
	for j := 0; j < out.Ny; j++ {
		for i := 0; i < out.Nx; i++ {
			out.Data[j*out.Nx+i] = real(nz[j*px+i])
		}
	}
}

// Streamer generates an unbounded-in-y surface as successive strips of
// fixed width, realizing the paper's "arbitrarily long or wide RRSs by
// successive computations". Adjacent strips are statistically seamless
// by construction (shared noise field); Next never re-reads previous
// strips.
type Streamer struct {
	gen     *Generator
	i0      int64
	nx      int
	stripNy int
	nextJ   int64
}

// NewStreamer starts a streamer over columns [i0, i0+nx) beginning at
// lattice row j0, producing strips of stripNy rows per Next call.
func NewStreamer(gen *Generator, i0, j0 int64, nx, stripNy int) *Streamer {
	if nx < 1 || stripNy < 1 {
		panic(fmt.Sprintf("convgen: invalid streamer geometry nx=%d stripNy=%d", nx, stripNy))
	}
	return &Streamer{gen: gen, i0: i0, nx: nx, stripNy: stripNy, nextJ: j0}
}

// Next returns the next strip and advances.
func (s *Streamer) Next() *grid.Grid {
	strip := s.gen.GenerateAt(s.i0, s.nextJ, s.nx, s.stripNy)
	s.nextJ += int64(s.stripNy)
	return strip
}

// NextRow reports the lattice row the next strip will start at.
func (s *Streamer) NextRow() int64 { return s.nextJ }
