// Package convgen implements the convolution method of paper §2.4:
// a homogeneous random rough surface is an FIR filtering of white
// Gaussian noise,
//
//	f[n] = Σ_k w̃[k]·X[n+k−c]            (paper eqn 36)
//
// where the weighting kernel w̃ is the centered transform of the
// amplitude array (paper eqns 34–35) and X is a unit white Gaussian
// field. Unlike the direct DFT method, the kernel is computed once and
// any window of an unbounded surface can then be generated — tile by
// tile, strip by strip — and the kernel can be truncated when the
// correlation length is short (both advantages claimed in §2.4 and
// exercised by experiments E7/E8).
package convgen

import (
	"fmt"
	"math"

	"roughsurface/internal/approx"
	"roughsurface/internal/fft"
	"roughsurface/internal/spectrum"
)

// Kernel is a centered FIR weighting array w̃. Taps is row-major
// Nx-fast; (CX, CY) is the index of the zero-lag tap. The sum of squared
// taps approximates h², so filtering unit white noise yields the target
// height variance.
type Kernel struct {
	Nx, Ny int
	CX, CY int
	Dx, Dy float64
	Taps   []float64
}

// FromSpectrum builds the kernel for spectrum s on an nx×ny design grid
// with sample spacings dx×dy, following eqns (34)–(35):
//
//	w̃ = shift(DFT(v))/√(nx·ny),   v = sqrt(w)
//
// where shift is the centering permutation (fft-shift). The design grid
// must span several correlation lengths for the kernel to capture the
// full autocorrelation; Design picks a size automatically.
func FromSpectrum(s spectrum.Spectrum, nx, ny int, dx, dy float64) (*Kernel, error) {
	return fromSpectrum(s, nx, ny, dx, dy, false)
}

// FromSpectrumExact is FromSpectrum with the weight array rescaled so
// the kernel energy (and hence the generated height variance) equals h²
// exactly, compensating the spectral tail lost beyond Nyquist (see
// spectrum.NormalizeVariance).
func FromSpectrumExact(s spectrum.Spectrum, nx, ny int, dx, dy float64) (*Kernel, error) {
	return fromSpectrum(s, nx, ny, dx, dy, true)
}

func fromSpectrum(s spectrum.Spectrum, nx, ny int, dx, dy float64, exact bool) (*Kernel, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("convgen: kernel design grid must be at least 2x2, got %dx%d", nx, ny)
	}
	if !(dx > 0) || !(dy > 0) {
		return nil, fmt.Errorf("convgen: sample spacings must be positive, got (%g, %g)", dx, dy)
	}
	w := spectrum.Weights(s, nx, ny, float64(nx)*dx, float64(ny)*dy)
	if exact {
		spectrum.NormalizeVariance(w, s.SigmaH())
	}
	v := spectrum.Amplitude(w)

	work := make([]complex128, nx*ny)
	for i, x := range v.Data {
		work[i] = complex(x, 0)
	}
	plan, err := fft.NewPlan2D(nx, ny)
	if err != nil {
		return nil, err
	}
	plan.Forward(work) // v is real-symmetric: DFT(v) is real

	flat := make([]float64, nx*ny)
	scale := 1 / math.Sqrt(float64(nx*ny))
	maxImag := 0.0
	for i, z := range work {
		flat[i] = real(z) * scale
		if im := math.Abs(imag(z)); im > maxImag {
			maxImag = im
		}
	}
	if maxImag > 1e-6*(1+s.SigmaH()) {
		return nil, fmt.Errorf("convgen: kernel transform not real (residue %g); weight array asymmetric", maxImag)
	}

	k := &Kernel{Nx: nx, Ny: ny, CX: nx / 2, CY: ny / 2, Dx: dx, Dy: dy,
		Taps: make([]float64, nx*ny)}
	fft.ShiftReal2D(k.Taps, flat, nx, ny)
	return k, nil
}

// Design builds a kernel with an automatically chosen design grid: the
// next power of two covering spanCL correlation lengths per axis
// (spanCL <= 0 selects the default of 8), at least 16 samples. The
// kernel is then truncated to retain all but eps of its tap energy
// (eps <= 0 selects 1e-4; pass NoTruncation to keep the full grid).
func Design(s spectrum.Spectrum, dx, dy, spanCL, eps float64) (*Kernel, error) {
	return design(s, dx, dy, spanCL, eps, false)
}

// DesignExact is Design built from the exact-variance weight array
// (FromSpectrumExact).
func DesignExact(s spectrum.Spectrum, dx, dy, spanCL, eps float64) (*Kernel, error) {
	return design(s, dx, dy, spanCL, eps, true)
}

func design(s spectrum.Spectrum, dx, dy, spanCL, eps float64, exact bool) (*Kernel, error) {
	if spanCL <= 0 {
		spanCL = 8
	}
	clx, cly := s.CorrelationLengths()
	nx := nextPow2(int(math.Ceil(spanCL * clx / dx)))
	ny := nextPow2(int(math.Ceil(spanCL * cly / dy)))
	if nx < 16 {
		nx = 16
	}
	if ny < 16 {
		ny = 16
	}
	k, err := fromSpectrum(s, nx, ny, dx, dy, exact)
	if err != nil {
		return nil, err
	}
	if approx.Exact(eps, NoTruncation) {
		return k, nil
	}
	if eps <= 0 {
		eps = 1e-4
	}
	return k.Truncate(eps), nil
}

// NoTruncation disables Truncate in Design.
const NoTruncation = -1.0

// MustDesign is Design that panics on error.
func MustDesign(s spectrum.Spectrum, dx, dy, spanCL, eps float64) *Kernel {
	k, err := Design(s, dx, dy, spanCL, eps)
	if err != nil {
		panic(err)
	}
	return k
}

// HalfExtents reports the kernel's physical half-extents: the largest
// lattice reach from the zero-lag tap along each axis, times the sample
// spacing. A generated sample depends on noise no farther than (±ex,
// ±ey) away; sparse schedulers dilate support queries by these.
func (k *Kernel) HalfExtents() (ex, ey float64) {
	rx := k.CX
	if r := k.Nx - 1 - k.CX; r > rx {
		rx = r
	}
	ry := k.CY
	if r := k.Ny - 1 - k.CY; r > ry {
		ry = r
	}
	return float64(rx) * k.Dx, float64(ry) * k.Dy
}

// Energy returns Σ taps², the height variance the kernel produces on
// unit white noise (≈ h²).
func (k *Kernel) Energy() float64 {
	var e float64
	for _, t := range k.Taps {
		e += t * t
	}
	return e
}

// Truncate returns the smallest centered window of k retaining at least
// (1−eps) of the tap energy. This is the paper's "reduce the size of the
// weighting array to save computation time when the correlation length
// is small". The original kernel is unchanged.
func (k *Kernel) Truncate(eps float64) *Kernel {
	if !(eps > 0) || eps >= 1 {
		panic(fmt.Sprintf("convgen: truncation eps %g out of (0,1)", eps))
	}
	total := k.Energy()
	if total == 0 {
		return k.clone()
	}
	// Accumulate energy by Chebyshev-distance rings around the center,
	// so the scan over radii is a single O(N²) pass.
	maxR := 0
	for _, c := range []int{k.CX, k.Nx - 1 - k.CX, k.CY, k.Ny - 1 - k.CY} {
		if c > maxR {
			maxR = c
		}
	}
	ring := make([]float64, maxR+1)
	for iy := 0; iy < k.Ny; iy++ {
		dy := iy - k.CY
		if dy < 0 {
			dy = -dy
		}
		row := k.Taps[iy*k.Nx : (iy+1)*k.Nx]
		for ix, tap := range row {
			dx := ix - k.CX
			if dx < 0 {
				dx = -dx
			}
			d := dx
			if dy > d {
				d = dy
			}
			ring[d] += tap * tap
		}
	}
	var acc float64
	for r := 0; r <= maxR; r++ {
		acc += ring[r]
		if acc >= (1-eps)*total {
			return k.crop(r)
		}
	}
	return k.clone()
}

// TruncateRect returns the smallest centered *rectangle* of k retaining
// at least (1−eps) of the tap energy, grown greedily: at each step the
// axis whose next ring of taps carries more energy per added tap is
// extended. For anisotropic kernels (clx ≠ cly) this beats the square
// window of Truncate by roughly the aspect ratio in tap count.
func (k *Kernel) TruncateRect(eps float64) *Kernel {
	if !(eps > 0) || eps >= 1 {
		panic(fmt.Sprintf("convgen: truncation eps %g out of (0,1)", eps))
	}
	total := k.Energy()
	if total == 0 {
		return k.clone()
	}
	rx, ry := 0, 0
	acc := k.At(k.CX, k.CY) * k.At(k.CX, k.CY)

	// colRing(r) sums taps² over the two columns at |dx| = r within the
	// current |dy| <= ry band; rowRing mirrors it.
	colRing := func(r, yr int) (e float64, n int) {
		for _, x := range []int{k.CX - r, k.CX + r} {
			if x < 0 || x >= k.Nx {
				continue
			}
			y0, y1 := clip(k.CY-yr, k.Ny), clip(k.CY+yr+1, k.Ny)
			for y := y0; y < y1; y++ {
				t := k.At(x, y)
				e += t * t
				n++
			}
		}
		return e, n
	}
	rowRing := func(r, xr int) (e float64, n int) {
		for _, y := range []int{k.CY - r, k.CY + r} {
			if y < 0 || y >= k.Ny {
				continue
			}
			x0, x1 := clip(k.CX-xr, k.Nx), clip(k.CX+xr+1, k.Nx)
			for x := x0; x < x1; x++ {
				t := k.At(x, y)
				e += t * t
				n++
			}
		}
		return e, n
	}

	for acc < (1-eps)*total {
		ce, cn := colRing(rx+1, ry)
		re, rn := rowRing(ry+1, rx)
		// The corner taps at (rx+1, ry+1) belong to whichever ring is
		// added second; both candidates here exclude them, which keeps
		// the greedy comparison fair.
		growX := false
		switch {
		case cn == 0 && rn == 0:
			// Kernel exhausted (numerically possible only with eps≈0).
			return k.clone()
		case cn == 0:
			growX = false
		case rn == 0:
			growX = true
		default:
			growX = ce/float64(cn) >= re/float64(rn)
		}
		if growX {
			rx++
			e, _ := colRing(rx, ry)
			acc += e
		} else {
			ry++
			e, _ := rowRing(ry, rx)
			acc += e
		}
	}
	x0, x1 := clip(k.CX-rx, k.Nx), clip(k.CX+rx+1, k.Nx)
	y0, y1 := clip(k.CY-ry, k.Ny), clip(k.CY+ry+1, k.Ny)
	nx, ny := x1-x0, y1-y0
	out := &Kernel{Nx: nx, Ny: ny, CX: k.CX - x0, CY: k.CY - y0, Dx: k.Dx, Dy: k.Dy,
		Taps: make([]float64, nx*ny)}
	for iy := 0; iy < ny; iy++ {
		copy(out.Taps[iy*nx:(iy+1)*nx], k.Taps[(y0+iy)*k.Nx+x0:(y0+iy)*k.Nx+x1])
	}
	return out
}

func (k *Kernel) crop(r int) *Kernel {
	x0, x1 := clip(k.CX-r, k.Nx), clip(k.CX+r+1, k.Nx)
	y0, y1 := clip(k.CY-r, k.Ny), clip(k.CY+r+1, k.Ny)
	nx, ny := x1-x0, y1-y0
	out := &Kernel{Nx: nx, Ny: ny, CX: k.CX - x0, CY: k.CY - y0, Dx: k.Dx, Dy: k.Dy,
		Taps: make([]float64, nx*ny)}
	for iy := 0; iy < ny; iy++ {
		copy(out.Taps[iy*nx:(iy+1)*nx], k.Taps[(y0+iy)*k.Nx+x0:(y0+iy)*k.Nx+x1])
	}
	return out
}

func (k *Kernel) clone() *Kernel {
	c := *k
	c.Taps = append([]float64(nil), k.Taps...)
	return &c
}

// At returns the tap at offset (ax, ay) from the kernel origin corner.
func (k *Kernel) At(ax, ay int) float64 { return k.Taps[ay*k.Nx+ax] }

func clip(v, n int) int {
	if v < 0 {
		return 0
	}
	if v > n {
		return n
	}
	return v
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
