package convgen

import (
	"math"
	"testing"

	"roughsurface/internal/spectrum"
	"roughsurface/internal/stats"
)

// TestRMSSlopeMatchesAnalytic: for the Gaussian family the slope
// variance is analytic, −∂²ρ/∂x²(0) = 2h²/cl². The central-difference
// estimator at spacing dx sees the discretized value
// (ρ(0) − ρ(2dx))/(2dx²); both are checked.
func TestRMSSlopeMatchesAnalytic(t *testing.T) {
	h, cl := 1.2, 10.0
	s := spectrum.MustGaussian(h, cl, cl)
	k := MustDesign(s, 1, 1, 8, 1e-5)
	surf := NewGenerator(k, 3).GenerateCentered(256, 256)

	sx2, sy2 := stats.SlopeVariance(surf)
	discrete := (s.Autocorrelation(0, 0) - s.Autocorrelation(2, 0)) / 2 // dx = 1
	continuum := 2 * h * h / (cl * cl)
	// Discretization keeps the two targets within a few percent of each
	// other here; the estimate must match the discrete one.
	if math.Abs(discrete-continuum)/continuum > 0.05 {
		t.Fatalf("test setup: discrete %g vs continuum %g targets diverged", discrete, continuum)
	}
	for _, v := range []float64{sx2, sy2} {
		if math.Abs(v-discrete)/discrete > 0.15 {
			t.Errorf("slope variance %g, want ≈%g", v, discrete)
		}
	}
}

// TestSlopeAnisotropy: a surface stretched in x must be much flatter
// along x than along y.
func TestSlopeAnisotropy(t *testing.T) {
	s := spectrum.MustGaussian(1, 24, 6)
	k := MustDesign(s, 1, 1, 8, 1e-5)
	surf := NewGenerator(k, 5).GenerateCentered(256, 256)
	sx, sy := stats.RMSSlope(surf)
	if !(sy > 2.5*sx) {
		t.Errorf("slope anisotropy not reproduced: sx=%g sy=%g (want sy ≈ 4·sx)", sx, sy)
	}
}

// TestRadialSpectrumMatchesTarget compares the radially averaged
// periodogram of a generated surface against the radially averaged
// analytic weight array — the realization-side counterpart of the
// deterministic E5 check.
func TestRadialSpectrumMatchesTarget(t *testing.T) {
	const n = 256
	s := spectrum.MustGaussian(1.0, 10, 10)
	k := MustDesign(s, 1, 1, 8, 1e-5)
	surf := NewGenerator(k, 8).GenerateCentered(n, n)

	est := stats.WeightPeriodogram(surf)
	est.Dx = 2 * math.Pi / float64(n)
	est.Dy = est.Dx
	want := spectrum.Weights(s, n, n, n, n)

	const nbins = 24
	fe, me := stats.RadialAverage(est, nbins)
	_, mw := stats.RadialAverage(want, nbins)

	peak := mw[0]
	for i := 2; i < nbins; i++ { // skip the sparsely populated lowest annuli
		if mw[i] < 1e-3*peak {
			break // deep tail: relative comparison meaningless
		}
		if rel := math.Abs(me[i]-mw[i]) / mw[i]; rel > 0.35 {
			t.Errorf("annulus %d (k=%.3f): periodogram %g vs target %g (rel %.2f)",
				i, fe[i], me[i], mw[i], rel)
		}
	}
}

// TestStructureFunctionMatchesAnalytic: D(d) = 2(ρ(0) − ρ(d)) for the
// generated field, over small lags.
func TestStructureFunctionMatchesAnalytic(t *testing.T) {
	s := spectrum.MustExponential(1.5, 8, 8)
	k := MustDesign(s, 1, 1, 8, 1e-5)
	surf := NewGenerator(k, 13).GenerateCentered(256, 256)
	d := stats.StructureFunctionX(surf, 16)
	h2 := 1.5 * 1.5
	for lag := 1; lag <= 16; lag++ {
		want := 2 * (s.Autocorrelation(0, 0) - s.Autocorrelation(float64(lag), 0))
		if math.Abs(d[lag]-want)/h2 > 0.15 {
			t.Errorf("lag %d: D = %g want %g", lag, d[lag], want)
		}
	}
}
