package convgen

import (
	"math"
	"testing"

	"roughsurface/internal/spectrum"
)

// TestEnginesAgreeOddWindows pins the real-input FFT rewire against the
// literal tap sum at odd, prime, and off-center window geometries — the
// shapes where half-spectrum indexing or padding bookkeeping would slip
// first. Agreement must hold to 1e-10 in units of the surface height.
func TestEnginesAgreeOddWindows(t *testing.T) {
	s := spectrum.MustGaussian(1.3, 3, 4)
	k := MustDesign(s, 1, 1, 6, 1e-6)
	cases := []struct {
		i0, j0 int64
		nx, ny int
	}{
		{0, 0, 37, 29},
		{-13, 7, 53, 1},
		{5, -9, 1, 41},
		{101, 203, 31, 47},
		{-64, -64, 17, 64},
	}
	for _, c := range cases {
		gd := NewGenerator(k, 99)
		gd.Engine = EngineDirect
		gf := NewGenerator(k, 99)
		gf.Engine = EngineFFT

		want := gd.GenerateAt(c.i0, c.j0, c.nx, c.ny)
		got := gf.GenerateAt(c.i0, c.j0, c.nx, c.ny)

		var e float64
		for i := range want.Data {
			if d := math.Abs(got.Data[i] - want.Data[i]); d > e {
				e = d
			}
		}
		if e > 1e-10 {
			t.Errorf("window %+v: engine disagreement %g", c, e)
		}
	}
}

// TestTapsHatLRUBounded churns window sizes so the padded FFT geometry
// keeps changing, and checks that the kernel-spectrum cache stays at its
// bound while results remain identical to a cold generator.
func TestTapsHatLRUBounded(t *testing.T) {
	s := spectrum.MustExponential(1, 2, 2)
	k := MustDesign(s, 1, 1, 6, 1e-4)
	g := NewGenerator(k, 7)
	g.Engine = EngineFFT

	// Distinct output sizes → distinct padded sizes (kernel is fixed).
	sizes := []int{8, 24, 56, 120, 248, 500, 8, 120, 700, 56}
	for _, n := range sizes {
		got := g.GenerateAt(3, -4, n, 5)
		cold := NewGenerator(k, 7)
		cold.Engine = EngineFFT
		want := cold.GenerateAt(3, -4, n, 5)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("n=%d: churned generator diverged from cold generator", n)
			}
		}
		if got := g.tapsHat.len(); got > tapsCacheSize {
			t.Fatalf("n=%d: taps cache grew to %d entries (bound %d)", n, got, tapsCacheSize)
		}
	}
	if g.tapsHat.len() != tapsCacheSize {
		t.Errorf("cache holds %d entries after churn, want full bound %d", g.tapsHat.len(), tapsCacheSize)
	}
}

// TestSteadyStateAllocations verifies the zero-allocation pipeline: once
// the arena and plan caches are warm, a streaming strip allocates only
// the returned grid (plus low single-digit bookkeeping), not the
// O(px·py) noise/spectrum buffers it used to.
func TestSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by -race instrumentation")
	}
	s := spectrum.MustExponential(1, 10, 10)
	k := MustDesign(s, 1, 1, 8, 1e-4)
	g := NewGenerator(k, 1)
	g.Engine = EngineFFT
	g.Workers = 1 // serial: no goroutine-spawn allocations in the count
	st := NewStreamer(g, 0, 0, 256, 32)
	st.Next() // warm arena, plans, kernel spectrum

	allocs := testing.AllocsPerRun(5, func() { _ = st.Next() })
	// Returned grid = 2 allocations (header + data); leave headroom for
	// pool internals but fail on any O(strip) regression.
	if allocs > 8 {
		t.Errorf("steady-state strip generation allocates %v objects, want <= 8", allocs)
	}
}
