package convgen

import (
	"roughsurface/internal/par"
	"roughsurface/internal/simd"
)

// convDirect is the precision-generic direct-convolution core: it
// evaluates f(i,j) = Σ_{a,b} taps[b][a]·noise(i+a, j+b) for an nx×ny
// window, writing row j of the output at dst[j*stride : j*stride+nx].
//
// The tap sum is reformulated as fused MAC-row sweeps — one call per
// (output row, tap row) with the output accumulators held in registers
// across every tap of the row — which removes the serial accumulator
// dependency of the literal per-sample sum, hands the inner loop to
// the simd kernels, and amortizes call overhead over the whole tap row
// (the per-tap axpy formulation paid a dispatch and a dst load/store
// sweep per tap, the dominant cost at tile-sized rows). For every
// output sample the additions still happen in the same (b, a) order as
// the literal sum, so the reformulation is bit-identical to it at both
// precisions (DESIGN.md §13); the float64 instantiation is therefore
// byte-compatible with the pre-SIMD reference engine.
//
// macRow is passed in (simd.MacRow32 or simd.MacRow64, the monomorphic
// wrappers) rather than dispatched on F, so the hot loop performs no
// interface boxing.
func convDirect[F simd.Float](dst []F, stride, nx, ny int, taps []F, knx, kny int,
	noise []F, wx int, macRow func(taps, noise, dst []F), workers int) {
	par.For(ny, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			row := dst[j*stride : j*stride+nx]
			clear(row)
			for b := 0; b < kny; b++ {
				off := (j + b) * wx
				macRow(taps[b*knx:(b+1)*knx], noise[off:off+knx-1+nx], row)
			}
		}
	})
}
