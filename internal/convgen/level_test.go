package convgen

import (
	"math"
	"testing"

	"roughsurface/internal/spectrum"
)

// kernelACF computes the kernel's self-correlation at tap lag
// (lx, ly): Σ w̃[i,j]·w̃[i+lx,j+ly]. Because the generated field is
// f[n] = Σ_k w̃[k]·X[n+k−c] over unit white noise (eqn 36), this sum
// IS the covariance of the generated surface at lattice lag (lx, ly)
// — exactly, not asymptotically. Checking it against the analytic
// autocorrelation therefore verifies the statistics every tile at this
// level will carry.
func kernelACF(k *Kernel, lx, ly int) float64 {
	sum := 0.0
	for j := 0; j+ly < k.Ny; j++ {
		for i := 0; i+lx < k.Nx; i++ {
			sum += k.Taps[j*k.Nx+i] * k.Taps[(j+ly)*k.Nx+i+lx]
		}
	}
	return sum
}

// TestLevelKernelCovarianceMatchesDecimatedACF designs the serving
// kernel (default span and truncation, the exact path the daemon's
// pyramid levels use) at spacing 2^z for z = 0..3 and checks variance
// and near-lag covariances against the analytic autocorrelation at the
// decimated lags. Tolerances grow with z as the spectral tail beyond
// the coarser Nyquist aliases; gaussian cl=8 stays sub-percent through
// z=2 and a few percent at z=3 (where cl is a single sample).
func TestLevelKernelCovarianceMatchesDecimatedACF(t *testing.T) {
	cases := []struct {
		name string
		s    spectrum.Spectrum
		tol  [4]float64 // relative error budget per level z=0..3
	}{
		// Measured variance deficits (the spectral mass beyond the level's
		// Nyquist): gaussian 5.4% at z=3; exponential 14% at z=2, 28% at
		// z=3. The budgets sit just above those — a regression that loses
		// more than the tail physically allows trips them.
		{"gaussian", spectrum.MustGaussian(1.0, 8, 8), [4]float64{0.01, 0.01, 0.02, 0.07}},
		{"exponential", spectrum.MustExponential(1.5, 8, 8), [4]float64{0.05, 0.08, 0.16, 0.3}},
	}
	lags := [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 0}}
	for _, c := range cases {
		h2 := c.s.SigmaH() * c.s.SigmaH()
		for z := 0; z <= 3; z++ {
			dx := float64(int(1) << z)
			k, err := Design(c.s, dx, dx, 0, 0)
			if err != nil {
				t.Fatalf("%s z=%d: %v", c.name, z, err)
			}
			for _, lag := range lags {
				got := kernelACF(k, lag[0], lag[1])
				want := c.s.Autocorrelation(float64(lag[0])*dx, float64(lag[1])*dx)
				if e := math.Abs(got-want) / h2; e > c.tol[z] {
					t.Errorf("%s z=%d (dx=%g) lag (%d,%d): kernel covariance %g, analytic ρ %g (rel err %g > %g)",
						c.name, z, dx, lag[0], lag[1], got, want, e, c.tol[z])
				}
			}
		}
	}
}
