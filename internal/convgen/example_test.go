package convgen_test

import (
	"fmt"

	"roughsurface/internal/approx"
	"roughsurface/internal/convgen"
	"roughsurface/internal/spectrum"
)

// Design a convolution kernel, truncate it per the paper's small-
// correlation-length optimization, and generate two overlapping windows
// of the same unbounded surface.
func ExampleKernel_Truncate() {
	s := spectrum.MustGaussian(1.0, 6, 6)
	full := convgen.MustDesign(s, 1, 1, 8, convgen.NoTruncation)
	small := full.Truncate(1e-3)
	fmt.Println("truncated is smaller:", small.Nx < full.Nx)
	fmt.Printf("energy retained: %.3f\n", small.Energy()/full.Energy())
	// Output:
	// truncated is smaller: true
	// energy retained: 0.999
}

// Overlapping windows of one surface agree exactly: the noise field is
// a pure function of lattice position.
func ExampleGenerator_GenerateAt() {
	k := convgen.MustDesign(spectrum.MustExponential(1, 5, 5), 1, 1, 8, 1e-4)
	gen := convgen.NewGenerator(k, 7)
	a := gen.GenerateAt(0, 0, 32, 32)
	b := gen.GenerateAt(16, 0, 32, 32) // shifted window
	fmt.Println("overlap identical:", approx.Exact(a.At(20, 5), b.At(4, 5)))
	// Output: overlap identical: true
}
