package convgen

import (
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/rng"
	"roughsurface/internal/spectrum"
)

// fillPlane materializes the shared noise plane for a window the way
// the inhomo tile engine does: FillRow per plane row.
func fillPlane(seed uint64, pi0, pj0 int64, pnx, pny int) []float64 {
	plane := make([]float64, pnx*pny)
	field := rng.NewField(seed)
	for j := 0; j < pny; j++ {
		field.FillRow(plane[j*pnx:(j+1)*pnx], pi0, pj0+int64(j))
	}
	return plane
}

func fillPlane32(seed uint64, pi0, pj0 int64, pnx, pny int) []float32 {
	plane := make([]float32, pnx*pny)
	field := rng.NewField(seed)
	for j := 0; j < pny; j++ {
		field.FillRow32(plane[j*pnx:(j+1)*pnx], pi0, pj0+int64(j))
	}
	return plane
}

func TestNoiseWindow(t *testing.T) {
	k := MustDesign(spectrum.MustGaussian(1, 3, 5), 1, 1, 4, 1e-3)
	ni0, nj0, wnx, wny := k.NoiseWindow(10, -20, 7, 9)
	if ni0 != 10-int64(k.CX) || nj0 != -20-int64(k.CY) {
		t.Fatalf("NoiseWindow origin (%d,%d), want (%d,%d)", ni0, nj0, 10-int64(k.CX), -20-int64(k.CY))
	}
	if wnx != 7+k.Nx-1 || wny != 9+k.Ny-1 {
		t.Fatalf("NoiseWindow size %dx%d, want %dx%d", wnx, wny, 7+k.Nx-1, 9+k.Ny-1)
	}
}

// TestConvolveNoiseIntoBitIdentical pins the shared-plane contract at
// both precisions: rendering from a caller-owned plane that holds
// FillRow output produces the same bytes as the self-contained direct
// engine — same taps, same noise values, same summation order. The
// plane is deliberately larger than the window's own noise rectangle
// (slack on every side) to exercise the offset arithmetic.
func TestConvolveNoiseIntoBitIdentical(t *testing.T) {
	k := MustDesign(spectrum.MustGaussian(2, 4, 3), 1, 1, 4, 1e-3)
	const seed = 99
	const nx, ny = 25, 18
	const i0, j0 = -7, 12
	gen := NewGenerator(k, seed)
	gen.Engine = EngineDirect

	// Plane with 3 columns / 2 rows of slack beyond the needed window.
	ni0, nj0, wnx, wny := k.NoiseWindow(i0, j0, nx, ny)
	pi0, pj0 := ni0-3, nj0-2
	pnx, pny := wnx+5, wny+4

	want := gen.GenerateAt(i0, j0, nx, ny)
	plane := fillPlane(seed, pi0, pj0, pnx, pny)
	got := make([]float64, nx*ny)
	gen.ConvolveNoiseInto(got, nx, plane, pnx, pi0, pj0, i0, j0, nx, ny, 1)
	for i, v := range got {
		if !approx.Exact(v, want.Data[i]) {
			t.Fatalf("f64 sample %d = %x, self-contained %x", i, v, want.Data[i])
		}
	}

	want32 := gen.GenerateAt32(i0, j0, nx, ny)
	plane32 := fillPlane32(seed, pi0, pj0, pnx, pny)
	got32 := make([]float32, nx*ny)
	gen.ConvolveNoiseInto32(got32, nx, plane32, pnx, pi0, pj0, i0, j0, nx, ny, 1)
	for i, v := range got32 {
		if !approx.Exact(float64(v), float64(want32.Data[i])) {
			t.Fatalf("f32 sample %d = %x, self-contained %x", i, v, want32.Data[i])
		}
	}
}

func TestConvolveNoiseIntoPanics(t *testing.T) {
	k := MustDesign(spectrum.MustGaussian(1, 3, 3), 1, 1, 4, 1e-3)
	gen := NewGenerator(k, 1)
	ni0, nj0, wnx, wny := k.NoiseWindow(0, 0, 8, 8)
	plane := fillPlane(1, ni0, nj0, wnx, wny)
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty window", func() {
			gen.ConvolveNoiseInto(make([]float64, 64), 8, plane, wnx, ni0, nj0, 0, 0, 0, 8, 1)
		}},
		{"stride below width", func() {
			gen.ConvolveNoiseInto(make([]float64, 64), 7, plane, wnx, ni0, nj0, 0, 0, 8, 8, 1)
		}},
		{"destination too short", func() {
			gen.ConvolveNoiseInto(make([]float64, 63), 8, plane, wnx, ni0, nj0, 0, 0, 8, 8, 1)
		}},
		{"ragged plane", func() {
			gen.ConvolveNoiseInto(make([]float64, 64), 8, plane[:len(plane)-1], wnx, ni0, nj0, 0, 0, 8, 8, 1)
		}},
		{"plane misses window", func() {
			gen.ConvolveNoiseInto(make([]float64, 64), 8, plane, wnx, ni0, nj0, -1, 0, 8, 8, 1)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			c.fn()
		})
	}
}
