package convgen

import (
	"math"
	"testing"

	"roughsurface/internal/spectrum"
)

// TestExactVarianceKernelEnergy: the exact-variance kernel's energy is
// h² to round-off even where the raw discretization loses several
// percent of spectral mass (exponential family, short cl).
func TestExactVarianceKernelEnergy(t *testing.T) {
	s := spectrum.MustExponential(1.5, 4, 4) // cl=4: large Nyquist tail
	raw, err := Design(s, 1, 1, 8, NoTruncation)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := DesignExact(s, 1, 1, 8, NoTruncation)
	if err != nil {
		t.Fatal(err)
	}
	h2 := 1.5 * 1.5
	rawDeficit := (h2 - raw.Energy()) / h2
	if rawDeficit < 0.03 {
		t.Fatalf("test premise broken: raw deficit only %g", rawDeficit)
	}
	if rel := math.Abs(exact.Energy()-h2) / h2; rel > 1e-10 {
		t.Errorf("exact kernel energy %g, want %g (rel %g)", exact.Energy(), h2, rel)
	}
}

// TestNormalizeVarianceIdempotentOnGaussian: where the tail is already
// negligible, normalization must be a no-op to high precision.
func TestNormalizeVarianceIdempotentOnGaussian(t *testing.T) {
	s := spectrum.MustGaussian(1.0, 10, 10)
	w := spectrum.Weights(s, 128, 128, 128, 128)
	before := append([]float64(nil), w.Data...)
	spectrum.NormalizeVariance(w, 1.0)
	for i := range before {
		if math.Abs(w.Data[i]-before[i]) > 1e-9*(before[i]+1e-300) {
			t.Fatalf("Gaussian weights changed materially at %d", i)
		}
	}
}

// TestExactVarianceShapePreserved: normalization must not distort the
// autocorrelation shape beyond the uniform scale factor.
func TestExactVarianceShapePreserved(t *testing.T) {
	s := spectrum.MustExponential(1.0, 5, 5)
	raw := MustDesign(s, 1, 1, 8, NoTruncation)
	exact, err := DesignExact(s, 1, 1, 8, NoTruncation)
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Sqrt(exact.Energy() / raw.Energy())
	for i := range raw.Taps {
		if math.Abs(exact.Taps[i]-raw.Taps[i]*scale) > 1e-12 {
			t.Fatalf("tap %d not a uniform rescale", i)
		}
	}
}

// TestSceneExactVarianceOption: end-to-end through the Scene facade the
// generated σ lands noticeably closer to h with the option on.
func TestExactVarianceGeneratedSigma(t *testing.T) {
	s := spectrum.MustExponential(2.0, 4, 4)
	kRaw := MustDesign(s, 1, 1, 8, NoTruncation)
	kExact, err := DesignExact(s, 1, 1, 8, NoTruncation)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: identical noise, so the σ ratio is exactly the kernel
	// energy ratio — a deterministic comparison.
	a := NewGenerator(kRaw, 4).GenerateCentered(128, 128)
	b := NewGenerator(kExact, 4).GenerateCentered(128, 128)
	var sa, sb float64
	for i := range a.Data {
		sa += a.Data[i] * a.Data[i]
		sb += b.Data[i] * b.Data[i]
	}
	gotRatio := math.Sqrt(sb / sa)
	wantRatio := math.Sqrt(kExact.Energy() / kRaw.Energy())
	if math.Abs(gotRatio-wantRatio) > 1e-9 {
		t.Errorf("σ ratio %g, want kernel-energy ratio %g", gotRatio, wantRatio)
	}
	if wantRatio <= 1.01 {
		t.Errorf("exact variance should lift σ by the tail deficit, ratio %g", wantRatio)
	}
}
