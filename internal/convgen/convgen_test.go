package convgen

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/dftgen"
	"roughsurface/internal/spectrum"
	"roughsurface/internal/stats"
)

func gaussSpec() spectrum.Spectrum { return spectrum.MustGaussian(1.3, 6, 6) }

// mustKernel designs a kernel or fails the test; never drop the error.
func mustKernel(t *testing.T, s spectrum.Spectrum, nx, ny int, dx, dy float64) *Kernel {
	t.Helper()
	k, err := FromSpectrum(s, nx, ny, dx, dy)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestFromSpectrumValidates(t *testing.T) {
	s := gaussSpec()
	if _, err := FromSpectrum(s, 1, 64, 1, 1); err == nil {
		t.Error("degenerate design grid accepted")
	}
	if _, err := FromSpectrum(s, 64, 64, 0, 1); err == nil {
		t.Error("dx=0 accepted")
	}
}

func TestKernelEnergyMatchesVariance(t *testing.T) {
	for _, s := range []spectrum.Spectrum{
		spectrum.MustGaussian(1.3, 6, 6),
		spectrum.MustPowerLaw(0.9, 6, 6, 2),
		spectrum.MustExponential(1.1, 6, 6),
	} {
		k, err := FromSpectrum(s, 128, 128, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		h2 := s.SigmaH() * s.SigmaH()
		if rel := math.Abs(k.Energy()-h2) / h2; rel > 0.08 {
			t.Errorf("%s: kernel energy %g vs h²=%g (rel %g)", s.Name(), k.Energy(), h2, rel)
		}
	}
}

func TestKernelCenterIsPeak(t *testing.T) {
	k := mustKernel(t, gaussSpec(), 64, 64, 1, 1)
	peak := math.Abs(k.At(k.CX, k.CY))
	for i, tap := range k.Taps {
		if math.Abs(tap) > peak+1e-12 {
			t.Fatalf("tap %d exceeds center tap", i)
		}
	}
}

func TestKernelSymmetry(t *testing.T) {
	k := mustKernel(t, gaussSpec(), 64, 64, 1, 1)
	for dy := -10; dy <= 10; dy++ {
		for dx := -10; dx <= 10; dx++ {
			a := k.At(k.CX+dx, k.CY+dy)
			b := k.At(k.CX-dx, k.CY-dy)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("kernel asymmetric at (%d,%d): %g vs %g", dx, dy, a, b)
			}
		}
	}
}

// TestKernelSelfCorrelationIsAutocorrelation is the deterministic core
// of experiment E7: the kernel's discrete self-correlation must equal
// the analytic autocorrelation, because Cov(f(n), f(n+d)) = Σ_k w̃_k·w̃_{k+d}
// for unit white noise.
func TestKernelSelfCorrelationIsAutocorrelation(t *testing.T) {
	cases := []struct {
		s   spectrum.Spectrum
		tol float64
	}{
		{spectrum.MustGaussian(1.3, 6, 6), 1e-6},
		{spectrum.MustPowerLaw(0.9, 6, 6, 2), 0.02},
		{spectrum.MustExponential(1.1, 6, 6), 0.06},
	}
	for _, c := range cases {
		k, err := FromSpectrum(c.s, 128, 128, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		h2 := c.s.SigmaH() * c.s.SigmaH()
		for _, lag := range [][2]int{{0, 0}, {1, 0}, {3, 0}, {6, 0}, {0, 4}, {5, 5}, {12, 0}} {
			var acc float64
			for b := 0; b < k.Ny-lag[1]; b++ {
				for a := 0; a < k.Nx-lag[0]; a++ {
					acc += k.At(a, b) * k.At(a+lag[0], b+lag[1])
				}
			}
			want := c.s.Autocorrelation(float64(lag[0]), float64(lag[1]))
			if math.Abs(acc-want)/h2 > c.tol {
				t.Errorf("%s lag %v: self-correlation %g vs ρ %g", c.s.Name(), lag, acc, want)
			}
		}
	}
}

func TestTruncateRetainsEnergyAndCenter(t *testing.T) {
	k := mustKernel(t, gaussSpec(), 128, 128, 1, 1)
	full := k.Energy()
	tr := k.Truncate(1e-4)
	if tr.Nx >= k.Nx || tr.Ny >= k.Ny {
		t.Errorf("truncation did not shrink the kernel: %dx%d", tr.Nx, tr.Ny)
	}
	if tr.Energy() < (1-1e-4)*full {
		t.Errorf("truncated energy %g below criterion (full %g)", tr.Energy(), full)
	}
	// The center tap must still be the zero-lag tap.
	if !approx.Exact(tr.At(tr.CX, tr.CY), k.At(k.CX, k.CY)) {
		t.Error("truncation moved the center tap")
	}
	// Looser criterion → smaller kernel (monotonicity).
	tr2 := k.Truncate(1e-2)
	if tr2.Nx > tr.Nx {
		t.Errorf("eps=1e-2 kernel (%d) larger than eps=1e-4 kernel (%d)", tr2.Nx, tr.Nx)
	}
}

func TestTruncatePanicsOnBadEps(t *testing.T) {
	k := mustKernel(t, gaussSpec(), 32, 32, 1, 1)
	for _, eps := range []float64{0, -1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%g should panic", eps)
				}
			}()
			k.Truncate(eps)
		}()
	}
}

func TestDesignAutoSizing(t *testing.T) {
	k, err := Design(spectrum.MustGaussian(1, 4, 16), 1, 1, 8, NoTruncation)
	if err != nil {
		t.Fatal(err)
	}
	if k.Nx != 32 || k.Ny != 128 {
		t.Errorf("design grid %dx%d, want 32x128 for cl=(4,16) span 8", k.Nx, k.Ny)
	}
	// Truncated design must be no larger.
	kt, err := Design(spectrum.MustGaussian(1, 4, 16), 1, 1, 8, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if kt.Nx > k.Nx || kt.Ny > k.Ny {
		t.Error("truncated design larger than full design")
	}
}

func TestEnginesAgree(t *testing.T) {
	k := MustDesign(gaussSpec(), 1, 1, 8, 1e-6)
	gDirect := NewGenerator(k, 99)
	gDirect.Engine = EngineDirect
	gFFT := NewGenerator(k, 99)
	gFFT.Engine = EngineFFT
	a := gDirect.GenerateAt(-11, 23, 40, 56)
	b := gFFT.GenerateAt(-11, 23, 40, 56)
	if d := a.MaxAbsDiff(b); d > 1e-9 {
		t.Errorf("direct and FFT engines differ by %g", d)
	}
	if !approx.Exact(a.X0, b.X0) || !approx.Exact(a.Y0, b.Y0) {
		t.Error("engines disagree on geometry")
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	k := MustDesign(gaussSpec(), 1, 1, 8, 1e-4)
	g1 := NewGenerator(k, 5)
	g1.Workers = 1
	g1.Engine = EngineDirect
	g8 := NewGenerator(k, 5)
	g8.Workers = 8
	g8.Engine = EngineDirect
	a := g1.GenerateAt(0, 0, 64, 64)
	b := g8.GenerateAt(0, 0, 64, 64)
	if d := a.MaxAbsDiff(b); d > 0 {
		t.Errorf("worker count changed the direct-engine output by %g", d)
	}
}

// TestWindowOverlapSeamless is experiment E7's successive-computation
// claim: two windows generated independently agree exactly where they
// overlap, because the noise field is a pure function of lattice index.
func TestWindowOverlapSeamless(t *testing.T) {
	k := MustDesign(gaussSpec(), 1, 1, 8, 1e-4)
	g := NewGenerator(k, 77)
	g.Engine = EngineDirect
	a := g.GenerateAt(0, 0, 64, 64)
	b := g.GenerateAt(32, 16, 64, 64)
	for j := 0; j < 48; j++ { // overlap rows in a: y=16..63
		for i := 0; i < 32; i++ { // overlap cols in a: x=32..63
			va := a.At(32+i, 16+j)
			vb := b.At(i, j)
			if !approx.Exact(va, vb) {
				t.Fatalf("overlap mismatch at (%d,%d): %g vs %g", i, j, va, vb)
			}
		}
	}
}

func TestStreamerMatchesOneShot(t *testing.T) {
	k := MustDesign(gaussSpec(), 1, 1, 8, 1e-4)
	g := NewGenerator(k, 31)
	g.Engine = EngineDirect
	whole := g.GenerateAt(-8, -4, 48, 60)

	st := NewStreamer(g, -8, -4, 48, 20)
	for strip := 0; strip < 3; strip++ {
		part := st.Next()
		for j := 0; j < 20; j++ {
			for i := 0; i < 48; i++ {
				if !approx.Exact(part.At(i, j), whole.At(i, strip*20+j)) {
					t.Fatalf("strip %d sample (%d,%d) differs", strip, i, j)
				}
			}
		}
	}
	if st.NextRow() != -4+60 {
		t.Errorf("NextRow = %d", st.NextRow())
	}
}

func TestGenerateCenteredGeometry(t *testing.T) {
	k := MustDesign(gaussSpec(), 1, 1, 8, 1e-4)
	g := NewGenerator(k, 1)
	s := g.GenerateCentered(64, 32)
	x, y := s.XY(32, 16)
	if x != 0 || y != 0 {
		t.Errorf("center sample at (%g,%g)", x, y)
	}
}

// TestStatisticsMatchTargets is E7's convolution half: the generated
// field reproduces h and ρ.
func TestStatisticsMatchTargets(t *testing.T) {
	cases := []struct {
		s              spectrum.Spectrum
		stdTol, acfTol float64
	}{
		{spectrum.MustGaussian(1.0, 8, 8), 0.12, 0.08},
		{spectrum.MustPowerLaw(1.5, 8, 8, 2), 0.15, 0.12},
		{spectrum.MustExponential(2.0, 8, 8), 0.15, 0.15},
	}
	for _, c := range cases {
		k := MustDesign(c.s, 1, 1, 8, 1e-5)
		g := NewGenerator(k, 2024)
		surf := g.GenerateCentered(256, 256)

		h := c.s.SigmaH()
		sum := stats.Describe(surf.Data)
		if math.Abs(sum.Std-h)/h > c.stdTol {
			t.Errorf("%s: std %g want %g", c.s.Name(), sum.Std, h)
		}
		cov := stats.AutocovarianceFFT(surf)
		maxLag := 16
		var rmse float64
		for d := 0; d <= maxLag; d++ {
			diff := cov.At(d, 0) - c.s.Autocorrelation(float64(d), 0)
			rmse += diff * diff
		}
		rmse = math.Sqrt(rmse/float64(maxLag+1)) / (h * h)
		if rmse > c.acfTol {
			t.Errorf("%s: autocovariance relative RMSE %g > %g", c.s.Name(), rmse, c.acfTol)
		}
	}
}

// TestConvolutionMatchesDirectDFTDistribution compares the two methods
// head to head (experiment E7): same spectrum, independent noise, both
// must land on the same analytic autocorrelation within sampling error.
func TestConvolutionMatchesDirectDFTDistribution(t *testing.T) {
	s := spectrum.MustGaussian(1.0, 8, 8)
	const n = 256

	conv := NewGenerator(MustDesign(s, 1, 1, 8, 1e-5), 1)
	convSurf := conv.GenerateCentered(n, n)
	dftSurf := dftgen.Must(s, n, n, 1, 1).GenerateSeeded(2)

	covC := stats.AutocovarianceFFT(convSurf)
	covD := stats.AutocovarianceFFT(dftSurf)
	for d := 0; d <= 16; d++ {
		want := s.Autocorrelation(float64(d), 0)
		if math.Abs(covC.At(d, 0)-want) > 0.15 {
			t.Errorf("conv lag %d: %g vs %g", d, covC.At(d, 0), want)
		}
		if math.Abs(covD.At(d, 0)-want) > 0.15 {
			t.Errorf("dft lag %d: %g vs %g", d, covD.At(d, 0), want)
		}
	}
}

func TestTruncationDegradesGracefully(t *testing.T) {
	// Aggressive truncation must still give roughly the right variance:
	// eps is an energy criterion, so 1-eps of h² survives by design.
	s := gaussSpec()
	k := MustDesign(s, 1, 1, 8, 1e-2)
	g := NewGenerator(k, 6)
	surf := g.GenerateCentered(128, 128)
	h := s.SigmaH()
	std := stats.Describe(surf.Data).Std
	if math.Abs(std-h)/h > 0.2 {
		t.Errorf("std %g want ~%g after 1%% energy truncation", std, h)
	}
}

func TestAutoEngineSelection(t *testing.T) {
	small := MustDesign(gaussSpec(), 1, 1, 8, 1e-4)
	g := NewGenerator(small, 1)
	if e := g.engineFor(32, 32); e != EngineDirect {
		t.Errorf("small problem chose engine %v", e)
	}
	if e := g.engineFor(4096, 4096); e != EngineFFT {
		t.Errorf("large problem chose engine %v", e)
	}
}
