package convgen

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/spectrum"
)

func TestTruncateRectMeetsEnergyCriterion(t *testing.T) {
	for _, s := range []spectrum.Spectrum{
		spectrum.MustGaussian(1, 6, 6),
		spectrum.MustGaussian(1, 4, 16),
		spectrum.MustExponential(1.2, 10, 5),
	} {
		full := MustDesign(s, 1, 1, 8, NoTruncation)
		for _, eps := range []float64{1e-2, 1e-4, 1e-6} {
			tr := full.TruncateRect(eps)
			if tr.Energy() < (1-eps)*full.Energy() {
				t.Errorf("%s eps=%g: energy %g below criterion of %g",
					s.Name(), eps, tr.Energy(), (1-eps)*full.Energy())
			}
			if !approx.Exact(tr.At(tr.CX, tr.CY), full.At(full.CX, full.CY)) {
				t.Errorf("%s eps=%g: center tap moved", s.Name(), eps)
			}
		}
	}
}

func TestTruncateRectRespectsAnisotropy(t *testing.T) {
	// clx:cly = 4:16 → the truncated rectangle should be ~4x taller than
	// wide.
	s := spectrum.MustGaussian(1, 4, 16)
	full := MustDesign(s, 1, 1, 8, NoTruncation)
	tr := full.TruncateRect(1e-4)
	aspect := float64(tr.Ny) / float64(tr.Nx)
	if aspect < 2.5 || aspect > 6 {
		t.Errorf("rect truncation aspect %g (%dx%d), want ≈4", aspect, tr.Nx, tr.Ny)
	}
	// And it should use far fewer taps than the square truncation.
	sq := full.Truncate(1e-4)
	if tr.Nx*tr.Ny >= sq.Nx*sq.Ny {
		t.Errorf("rect truncation (%d taps) not smaller than square (%d taps)",
			tr.Nx*tr.Ny, sq.Nx*sq.Ny)
	}
}

func TestTruncateRectEqualsSquareForIsotropic(t *testing.T) {
	// For an isotropic kernel both truncations land on nearly the same
	// window (within one ring).
	s := spectrum.MustGaussian(1, 6, 6)
	full := MustDesign(s, 1, 1, 8, NoTruncation)
	sq := full.Truncate(1e-4)
	re := full.TruncateRect(1e-4)
	if absInt(sq.Nx-re.Nx) > 2 || absInt(sq.Ny-re.Ny) > 2 {
		t.Errorf("isotropic: square %dx%d vs rect %dx%d", sq.Nx, sq.Ny, re.Nx, re.Ny)
	}
}

func TestTruncateRectGenerationStatistics(t *testing.T) {
	// A rect-truncated anisotropic kernel still reproduces the
	// prescribed covariance.
	s := spectrum.MustGaussian(1.2, 4, 12)
	full := MustDesign(s, 1, 1, 8, NoTruncation)
	k := full.TruncateRect(1e-5)
	surf := NewGenerator(k, 3).GenerateCentered(256, 256)
	var ms float64
	for _, v := range surf.Data {
		ms += v * v
	}
	got := math.Sqrt(ms / float64(len(surf.Data)))
	if math.Abs(got-1.2)/1.2 > 0.12 {
		t.Errorf("σ %g want 1.2", got)
	}
}

func TestTruncateRectPanicsOnBadEps(t *testing.T) {
	k := MustDesign(spectrum.MustGaussian(1, 6, 6), 1, 1, 8, NoTruncation)
	for _, eps := range []float64{0, 1, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%g accepted", eps)
				}
			}()
			k.TruncateRect(eps)
		}()
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
