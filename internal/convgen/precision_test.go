package convgen

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/spectrum"
)

// f32Tol is the per-sample agreement gate between the float32 render
// pipeline and the float64 reference engine, as a fraction of the
// target rms height σh. The expected rounding error of the f32 direct
// path is ~sqrt(taps)·eps32·sqrt(Σtaps²)·σnoise ≈ 3e-6·σh for the
// kernels below, so 1e-4·σh leaves ~30× margin while still catching
// any real defect (a dropped tap or swapped index shows up at O(σh)).
// DESIGN.md §13 derives the bound.
const f32Tol = 1e-4

// TestGenerateAt32AgreesWithF64 gates the tentpole invariant: for both
// engines the f32 render of a window must agree with the f64 reference
// within f32Tol·σh per sample, and the two engines' f32 renders must
// agree with each other to the same tolerance.
func TestGenerateAt32AgreesWithF64(t *testing.T) {
	const sigma = 2.5
	k := MustDesign(spectrum.MustGaussian(sigma, 4, 3), 1, 1, 6, 1e-4)
	tol := f32Tol * sigma
	var prev *float32 // engine-to-engine cross-check on sample (0,0)
	for _, engine := range []Engine{EngineDirect, EngineFFT} {
		gen := NewGenerator(k, 17)
		gen.Engine = engine
		const nx, ny = 37, 29
		want := gen.GenerateAt(-13, 7, nx, ny)
		got := gen.GenerateAt32(-13, 7, nx, ny)
		if got.Nx != nx || got.Ny != ny {
			t.Fatalf("engine %v: got %dx%d grid", engine, got.Nx, got.Ny)
		}
		if !approx.Exact(got.Dx, want.Dx) || !approx.Exact(got.X0, want.X0) {
			t.Fatalf("engine %v: metadata mismatch: dx=%g x0=%g", engine, got.Dx, got.X0)
		}
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				d := math.Abs(float64(got.At(i, j)) - want.At(i, j))
				if d > tol {
					t.Fatalf("engine %v: sample (%d,%d) f32=%g f64=%g (|Δ|=%.3g > %.3g)",
						engine, i, j, got.At(i, j), want.At(i, j), d, tol)
				}
			}
		}
		v := got.At(0, 0)
		if prev != nil && math.Abs(float64(v-*prev)) > tol {
			t.Fatalf("engines disagree at (0,0): %g vs %g", v, *prev)
		}
		prev = &v
	}
}

// TestGenerateAtInto32Strided pins the destination-buffer contract of
// the f32 path: arbitrary stride, untouched padding, and agreement
// with the allocating form.
func TestGenerateAtInto32Strided(t *testing.T) {
	k := MustDesign(spectrum.MustGaussian(1, 4, 4), 1, 1, 6, 1e-3)
	for _, engine := range []Engine{EngineDirect, EngineFFT} {
		gen := NewGenerator(k, 11)
		gen.Engine = engine
		const nx, ny = 21, 17
		want := gen.GenerateAt32(-9, 4, nx, ny)

		const stride = 33
		dst := make([]float32, stride*ny+5)
		const sentinel = -123.25
		for i := range dst {
			dst[i] = sentinel
		}
		gen.GenerateAtInto32(dst, stride, -9, 4, nx, ny, 0)
		for j := 0; j < ny; j++ {
			for i := 0; i < stride; i++ {
				got := dst[j*stride+i]
				if i < nx {
					if !approx.Exact(float64(got), float64(want.At(i, j))) {
						t.Fatalf("engine %v: sample (%d,%d) = %g, want %g", engine, i, j, got, want.At(i, j))
					}
				} else if j < ny-1 && !approx.Exact(float64(got), sentinel) {
					t.Fatalf("engine %v: padding at (%d,%d) overwritten: %g", engine, i, j, got)
				}
			}
		}
	}
}

func TestGenerateAtInto32Panics(t *testing.T) {
	k := MustDesign(spectrum.MustGaussian(1, 4, 4), 1, 1, 6, 1e-3)
	gen := NewGenerator(k, 1)
	cases := []struct {
		name string
		fn   func()
	}{
		{"stride below width", func() { gen.GenerateAtInto32(make([]float32, 100), 4, 0, 0, 5, 5, 0) }},
		{"destination too short", func() { gen.GenerateAtInto32(make([]float32, 24), 5, 0, 0, 5, 5, 0) }},
		{"empty window", func() { gen.GenerateAtInto32(make([]float32, 100), 5, 0, 0, 0, 5, 0) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			c.fn()
		})
	}
}

// TestGrid32Widen: the f64 view of an f32 tile must be the exact
// widening of every sample with metadata carried through.
func TestGrid32Widen(t *testing.T) {
	k := MustDesign(spectrum.MustGaussian(1, 3, 3), 0.5, 2, 5, 1e-3)
	gen := NewGenerator(k, 3)
	g32 := gen.GenerateAt32(2, -5, 9, 7)
	w := g32.Widen()
	if w.Nx != g32.Nx || w.Ny != g32.Ny || !approx.Exact(w.Dy, g32.Dy) || !approx.Exact(w.Y0, g32.Y0) {
		t.Fatalf("Widen metadata mismatch: %+v", w)
	}
	for i, v := range g32.Data {
		if !approx.Exact(w.Data[i], float64(v)) {
			t.Fatalf("Widen[%d] = %g, want %g", i, w.Data[i], v)
		}
	}
}

// FuzzConv32Agreement drives the f32/f64 agreement property over
// fuzzer-chosen seeds, window origins, and correlation lengths, for
// whichever engine the auto heuristic picks. Wired into the check.sh
// fuzz smoke.
func FuzzConv32Agreement(f *testing.F) {
	f.Add(uint64(1), int64(0), int64(0), 3.0, 2.0)
	f.Add(uint64(99), int64(-40), int64(25), 1.5, 6.0)
	f.Add(uint64(1<<40), int64(1000), int64(-1000), 5.0, 5.0)
	f.Fuzz(func(t *testing.T, seed uint64, i0, j0 int64, clx, cly float64) {
		if !(clx >= 0.5 && clx <= 8) || !(cly >= 0.5 && cly <= 8) {
			t.Skip()
		}
		const sigma = 1.0
		spec, err := spectrum.NewGaussian(sigma, clx, cly)
		if err != nil {
			t.Skip()
		}
		k, err := Design(spec, 1, 1, 5, 1e-3)
		if err != nil {
			t.Skip()
		}
		gen := NewGenerator(k, seed)
		const nx, ny = 24, 19
		want := gen.GenerateAt(i0, j0, nx, ny)
		got := gen.GenerateAt32(i0, j0, nx, ny)
		tol := f32Tol * sigma
		for i, v := range got.Data {
			if d := math.Abs(float64(v) - want.Data[i]); d > tol {
				t.Fatalf("seed=%d origin=(%d,%d) cl=(%g,%g): sample %d f32=%g f64=%g |Δ|=%.3g",
					seed, i0, j0, clx, cly, i, v, want.Data[i], d)
			}
		}
	})
}
