package convgen

import (
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/spectrum"
)

// TestGenerateAtIntoMatchesGenerateAt pins the destination-buffer API
// to the allocating one: the same window rendered at an arbitrary
// stride inside a larger raster must be sample-identical, and samples
// outside the written rectangle must be untouched.
func TestGenerateAtIntoMatchesGenerateAt(t *testing.T) {
	k := MustDesign(spectrum.MustGaussian(1, 4, 4), 1, 1, 6, 1e-3)
	for _, engine := range []Engine{EngineDirect, EngineFFT} {
		gen := NewGenerator(k, 11)
		gen.Engine = engine
		const nx, ny = 21, 17
		want := gen.GenerateAt(-9, 4, nx, ny)

		const stride = 33
		dst := make([]float64, stride*ny+5)
		sentinel := -123.25
		for i := range dst {
			dst[i] = sentinel
		}
		gen.GenerateAtInto(dst, stride, -9, 4, nx, ny, 0)
		for j := 0; j < ny; j++ {
			for i := 0; i < stride; i++ {
				got := dst[j*stride+i]
				if i < nx {
					if !approx.Exact(got, want.At(i, j)) {
						t.Fatalf("engine %v: sample (%d,%d) = %g, want %g", engine, i, j, got, want.At(i, j))
					}
				} else if j < ny-1 && !approx.Exact(got, sentinel) {
					t.Fatalf("engine %v: padding at (%d,%d) overwritten: %g", engine, i, j, got)
				}
			}
		}
		for _, i := range []int{stride*(ny-1) + nx, len(dst) - 1} {
			if !approx.Exact(dst[i], sentinel) {
				t.Fatalf("engine %v: sample beyond window overwritten at %d", engine, i)
			}
		}
	}
}

// TestGenerateAtIntoWorkerParam: the per-call worker bound must not
// change output, and passing it must not touch the shared Workers
// field.
func TestGenerateAtIntoWorkerParam(t *testing.T) {
	k := MustDesign(spectrum.MustGaussian(1, 4, 4), 1, 1, 6, 1e-3)
	gen := NewGenerator(k, 5)
	const nx, ny = 40, 40
	a := make([]float64, nx*ny)
	b := make([]float64, nx*ny)
	gen.GenerateAtInto(a, nx, 3, -7, nx, ny, 1)
	gen.GenerateAtInto(b, nx, 3, -7, nx, ny, 8)
	for i := range a {
		if !approx.Exact(a[i], b[i]) {
			t.Fatalf("worker count changed sample %d: %g vs %g", i, a[i], b[i])
		}
	}
	if gen.Workers != 0 {
		t.Errorf("GenerateAtInto mutated Workers to %d", gen.Workers)
	}
}

func TestGenerateAtIntoPanics(t *testing.T) {
	k := MustDesign(spectrum.MustGaussian(1, 4, 4), 1, 1, 6, 1e-3)
	gen := NewGenerator(k, 1)
	cases := []struct {
		name string
		fn   func()
	}{
		{"stride below width", func() { gen.GenerateAtInto(make([]float64, 100), 4, 0, 0, 5, 5, 0) }},
		{"destination too short", func() { gen.GenerateAtInto(make([]float64, 24), 5, 0, 0, 5, 5, 0) }},
		{"empty window", func() { gen.GenerateAtInto(make([]float64, 100), 5, 0, 0, 0, 5, 0) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			c.fn()
		})
	}
}

// TestHalfExtents covers centered and cropped (asymmetric) kernels.
func TestHalfExtents(t *testing.T) {
	k := &Kernel{Nx: 7, Ny: 5, CX: 2, CY: 1, Dx: 0.5, Dy: 2, Taps: make([]float64, 35)}
	ex, ey := k.HalfExtents()
	if !approx.Exact(ex, 2) { // max(2, 4)·0.5
		t.Errorf("ex = %g, want 2", ex)
	}
	if !approx.Exact(ey, 6) { // max(1, 3)·2
		t.Errorf("ey = %g, want 6", ey)
	}
}
