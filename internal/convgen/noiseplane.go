package convgen

import (
	"fmt"

	"roughsurface/internal/simd"
)

// NoiseWindow reports the lattice rectangle of field samples the kernel
// reads to render outputs [i0, i0+nx) × [j0, j0+ny): origin
// (i0−CX, j0−CY), size (nx+Nx−1) × (ny+Ny−1). Callers that batch many
// windows against one pre-filled noise plane (the inhomo tile engine)
// size the plane as the union of these rectangles.
func (k *Kernel) NoiseWindow(i0, j0 int64, nx, ny int) (ni0, nj0 int64, wnx, wny int) {
	return i0 - int64(k.CX), j0 - int64(k.CY), nx + k.Nx - 1, ny + k.Ny - 1
}

// convolvePlaneArgs validates a ConvolveNoiseInto* call and returns the
// plane offset of the window's first noise sample. The plane holds
// field samples for the lattice rectangle [pi0, pi0+pnx) × [pj0, …),
// row-major at stride pnx; it must cover the kernel's NoiseWindow for
// the requested output window.
func (g *Generator) convolvePlaneArgs(dstLen, stride int, planeLen, pnx int, pi0, pj0, i0, j0 int64, nx, ny int) int {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("convgen: invalid window %dx%d", nx, ny))
	}
	if stride < nx {
		panic(fmt.Sprintf("convgen: stride %d below window width %d", stride, nx))
	}
	if need := stride*(ny-1) + nx; dstLen < need {
		panic(fmt.Sprintf("convgen: destination holds %d samples, window needs %d", dstLen, need))
	}
	if pnx < 1 || planeLen%pnx != 0 {
		panic(fmt.Sprintf("convgen: noise plane of %d samples is not whole rows of %d", planeLen, pnx))
	}
	pny := planeLen / pnx
	ni0, nj0, wnx, wny := g.kernel.NoiseWindow(i0, j0, nx, ny)
	offX, offY := ni0-pi0, nj0-pj0
	if offX < 0 || offY < 0 || offX+int64(wnx) > int64(pnx) || offY+int64(wny) > int64(pny) {
		panic(fmt.Sprintf("convgen: noise plane %dx%d at (%d,%d) does not cover window %dx%d at (%d,%d) (needs %dx%d at (%d,%d))",
			pnx, pny, pi0, pj0, nx, ny, i0, j0, wnx, wny, ni0, nj0))
	}
	return int(offY)*pnx + int(offX)
}

// ConvolveNoiseInto renders the window like GenerateAtInto but reads
// field samples from the caller-supplied plane instead of materializing
// its own noise window. Sharing one plane across many windows (and
// across same-seed generators, which see the same field) removes the
// per-window Box–Muller cost — the dominant term for small kernels —
// at the price of the caller owning coverage. The plane must hold
// Field.FillRow output for its rectangle; results are then bit-identical
// to GenerateAtInto's direct engine (same taps, same noise values, same
// summation order). Always runs the direct engine: plane reuse targets
// the many-small-windows regime where direct wins anyway.
func (g *Generator) ConvolveNoiseInto(dst []float64, stride int, plane []float64, pnx int, pi0, pj0, i0, j0 int64, nx, ny, workers int) {
	off := g.convolvePlaneArgs(len(dst), stride, len(plane), pnx, pi0, pj0, i0, j0, nx, ny)
	if workers == 0 {
		workers = g.Workers
	}
	k := g.kernel
	convDirect(dst, stride, nx, ny, k.Taps, k.Nx, k.Ny, plane[off:], pnx, simd.MacRow64, workers)
}

// ConvolveNoiseInto32 is ConvolveNoiseInto at float32 render precision:
// the plane holds Field.FillRow32 output (the f64 field rounded once
// per sample), so results are bit-identical to GenerateAtInto32's
// direct engine.
func (g *Generator) ConvolveNoiseInto32(dst []float32, stride int, plane []float32, pnx int, pi0, pj0, i0, j0 int64, nx, ny, workers int) {
	off := g.convolvePlaneArgs(len(dst), stride, len(plane), pnx, pi0, pj0, i0, j0, nx, ny)
	if workers == 0 {
		workers = g.Workers
	}
	k := g.kernel
	convDirect(dst, stride, nx, ny, g.kernelTaps32(), k.Nx, k.Ny, plane[off:], pnx, simd.MacRow32, workers)
}
