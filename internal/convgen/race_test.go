//go:build race

package convgen

// raceEnabled reports that this test binary was built with -race, under
// which allocation counts are inflated by detector bookkeeping.
const raceEnabled = true
