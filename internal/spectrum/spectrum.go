// Package spectrum implements the statistical models of §2.1 of the
// paper: spectral density functions W(K) of two-dimensional random rough
// surfaces and their analytic autocorrelations ρ(r), for the three
// families the paper evaluates — Gaussian (eqns 5–6), N-th order
// Power-Law (eqns 7–8) and Exponential (eqns 9–10) — plus the discrete
// weighting arrays of §2.2 (eqns 15–17) that the generators consume.
//
// All densities are normalized so that ∫∫ W(K) dK = h² (paper eqn 1),
// equivalently ρ(0, 0) = h², where h is the height standard deviation.
// Anisotropy enters through independent correlation lengths clx and cly.
package spectrum

import (
	"fmt"
	"math"
)

// Spectrum describes one homogeneous surface model.
type Spectrum interface {
	// Density evaluates the spectral density W(kx, ky).
	Density(kx, ky float64) float64
	// Autocorrelation evaluates ρ(x, y); ρ(0,0) = h².
	Autocorrelation(x, y float64) float64
	// SigmaH reports the height standard deviation h.
	SigmaH() float64
	// CorrelationLengths reports (clx, cly).
	CorrelationLengths() (clx, cly float64)
	// Name identifies the family for reports ("gaussian", "powerlaw", …).
	Name() string
}

func validateCommon(h, clx, cly float64) error {
	if !(h > 0) || math.IsInf(h, 0) {
		return fmt.Errorf("spectrum: height deviation h must be positive and finite, got %g", h)
	}
	if !(clx > 0) || !(cly > 0) || math.IsInf(clx, 0) || math.IsInf(cly, 0) {
		return fmt.Errorf("spectrum: correlation lengths must be positive and finite, got (%g, %g)", clx, cly)
	}
	return nil
}

// Gaussian is the Gaussian spectrum of paper eqns (5)–(6):
//
//	W(K) = (clx·cly·h²/4π)·exp(−(Kx·clx/2)² − (Ky·cly/2)²)
//	ρ(r) = h²·exp(−(x/clx)² − (y/cly)²)
type Gaussian struct {
	h, clx, cly float64
}

// NewGaussian validates the parameters and returns the spectrum.
func NewGaussian(h, clx, cly float64) (*Gaussian, error) {
	if err := validateCommon(h, clx, cly); err != nil {
		return nil, err
	}
	return &Gaussian{h: h, clx: clx, cly: cly}, nil
}

// MustGaussian is NewGaussian that panics on invalid parameters.
func MustGaussian(h, clx, cly float64) *Gaussian {
	s, err := NewGaussian(h, clx, cly)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Gaussian) Density(kx, ky float64) float64 {
	ux := kx * s.clx / 2
	uy := ky * s.cly / 2
	return s.clx * s.cly * s.h * s.h / (4 * math.Pi) * math.Exp(-ux*ux-uy*uy)
}

func (s *Gaussian) Autocorrelation(x, y float64) float64 {
	ax := x / s.clx
	ay := y / s.cly
	return s.h * s.h * math.Exp(-ax*ax-ay*ay)
}

func (s *Gaussian) SigmaH() float64                        { return s.h }
func (s *Gaussian) CorrelationLengths() (float64, float64) { return s.clx, s.cly }
func (s *Gaussian) Name() string                           { return "gaussian" }

// PowerLaw is the N-th order Power-Law spectrum of paper eqns (7)–(8):
//
//	W(K) = (clx·cly·h²·(N−1)/4π)·[1 + (Kx·clx/2)² + (Ky·cly/2)²]^(−N)
//	ρ(r) = h²·(2^(2−N)/Γ(N−1))·s^(N−1)·K_(N−1)(s),
//	       s = 2·sqrt((x/clx)² + (y/cly)²)
//
// where K_ν is the modified Bessel function of the second kind (the
// Matérn-family autocorrelation that is the exact Fourier partner of the
// density above; ρ(0) = h² by the small-argument limit of s^ν·K_ν).
// N > 1 is required for integrability, as in the paper.
type PowerLaw struct {
	h, clx, cly float64
	n           float64
	norm        float64 // 2^(2−N)/Γ(N−1)
}

// NewPowerLaw validates the parameters (N > 1) and returns the spectrum.
func NewPowerLaw(h, clx, cly, n float64) (*PowerLaw, error) {
	if err := validateCommon(h, clx, cly); err != nil {
		return nil, err
	}
	if !(n > 1) || math.IsInf(n, 0) {
		return nil, fmt.Errorf("spectrum: power-law order N must exceed 1, got %g", n)
	}
	return &PowerLaw{
		h: h, clx: clx, cly: cly, n: n,
		norm: math.Pow(2, 2-n) / math.Gamma(n-1),
	}, nil
}

// MustPowerLaw is NewPowerLaw that panics on invalid parameters.
func MustPowerLaw(h, clx, cly, n float64) *PowerLaw {
	s, err := NewPowerLaw(h, clx, cly, n)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *PowerLaw) Density(kx, ky float64) float64 {
	ux := kx * s.clx / 2
	uy := ky * s.cly / 2
	base := 1 + ux*ux + uy*uy
	return s.clx * s.cly * s.h * s.h * (s.n - 1) / (4 * math.Pi) * math.Pow(base, -s.n)
}

func (s *PowerLaw) Autocorrelation(x, y float64) float64 {
	ax := x / s.clx
	ay := y / s.cly
	arg := 2 * math.Sqrt(ax*ax+ay*ay)
	if arg < 1e-8 {
		return s.h * s.h
	}
	nu := s.n - 1
	return s.h * s.h * s.norm * math.Pow(arg, nu) * BesselK(nu, arg)
}

func (s *PowerLaw) SigmaH() float64                        { return s.h }
func (s *PowerLaw) CorrelationLengths() (float64, float64) { return s.clx, s.cly }
func (s *PowerLaw) Name() string                           { return fmt.Sprintf("powerlaw%g", s.n) }

// Order reports the power-law exponent N.
func (s *PowerLaw) Order() float64 { return s.n }

// Exponential is the Exponential spectrum of paper eqns (9)–(10):
//
//	W(K) = (clx·cly·h²/2π)·[1 + (Kx·clx)² + (Ky·cly)²]^(−3/2)
//	ρ(r) = h²·exp(−sqrt((x/clx)² + (y/cly)²))
type Exponential struct {
	h, clx, cly float64
}

// NewExponential validates the parameters and returns the spectrum.
func NewExponential(h, clx, cly float64) (*Exponential, error) {
	if err := validateCommon(h, clx, cly); err != nil {
		return nil, err
	}
	return &Exponential{h: h, clx: clx, cly: cly}, nil
}

// MustExponential is NewExponential that panics on invalid parameters.
func MustExponential(h, clx, cly float64) *Exponential {
	s, err := NewExponential(h, clx, cly)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Exponential) Density(kx, ky float64) float64 {
	ux := kx * s.clx
	uy := ky * s.cly
	base := 1 + ux*ux + uy*uy
	return s.clx * s.cly * s.h * s.h / (2 * math.Pi) * math.Pow(base, -1.5)
}

func (s *Exponential) Autocorrelation(x, y float64) float64 {
	ax := x / s.clx
	ay := y / s.cly
	return s.h * s.h * math.Exp(-math.Sqrt(ax*ax+ay*ay))
}

func (s *Exponential) SigmaH() float64                        { return s.h }
func (s *Exponential) CorrelationLengths() (float64, float64) { return s.clx, s.cly }
func (s *Exponential) Name() string                           { return "exponential" }
