package spectrum

import (
	"math"
	"testing"

	"roughsurface/internal/fft"
)

// TestWeightDFTMatchesAutocorrelationPerLevel repeats the paper's §2.2
// accuracy check (experiment E5) at every spacing the tile pyramid
// renders: the DFT of the weighting array built for spacing dx·2^z must
// reproduce the analytic autocorrelation sampled at the decimated lags.
// This is the property that makes coarse pyramid levels *exact* — the
// weights are re-derived from the spectrum at the coarse spacing, not
// low-pass filtered from fine samples (DESIGN.md §14).
//
// Tolerances loosen with z: the spectral tail beyond the coarser
// Nyquist π/(dx·2^z) folds back as aliasing, which for the smooth
// gaussian family stays tiny through z=2 and reaches the percent range
// at z=3 (cl = 8 samples at level 0 is only one sample at level 3); the
// heavy-tailed exponential family starts at ~6% even at z=0.
func TestWeightDFTMatchesAutocorrelationPerLevel(t *testing.T) {
	cases := []struct {
		name string
		s    Spectrum
		tol  [4]float64 // relative RMSE per level z=0..3
	}{
		{"gaussian", MustGaussian(1.3, 8, 8), [4]float64{1e-8, 1e-8, 1e-4, 0.05}},
		{"exponential", MustExponential(1.2, 8, 8), [4]float64{0.08, 0.12, 0.18, 0.25}},
	}
	const n = 128
	p := fft.MustPlan2D(n, n)
	for _, c := range cases {
		h2 := c.s.SigmaH() * c.s.SigmaH()
		for z := 0; z <= 3; z++ {
			dx := float64(int(1) << z)
			w := Weights(c.s, n, n, float64(n)*dx, float64(n)*dx)
			work := make([]complex128, n*n)
			for i, v := range w.Data {
				work[i] = complex(v, 0)
			}
			p.InverseUnscaled(work) // Σ_m w·e^{+j...} = NxNy·IDFT(w)
			want := AutocorrelationGrid(c.s, n, n, dx, dx)
			rmse := 0.0
			for i, v := range work {
				d := real(v) - want.Data[i]
				rmse += d * d
			}
			rmse = math.Sqrt(rmse/float64(n*n)) / h2
			if rmse > c.tol[z] {
				t.Errorf("%s z=%d (dx=%g): DFT(w) vs ρ relative RMSE %g > %g",
					c.name, z, dx, rmse, c.tol[z])
			}
		}
	}
}
