package spectrum

import "math"

// BesselK evaluates the modified Bessel function of the second kind
// K_ν(x) for real order ν ≥ 0 and x > 0 using the integral
// representation
//
//	K_ν(x) = ∫_0^∞ e^{−x·cosh t}·cosh(νt) dt,
//
// integrated by the composite Simpson rule. The integrand is smooth,
// even about t = 0 (so the t = 0 endpoint has zero derivative), and
// decays super-exponentially past its interior maximum, so a fixed
// 2000-panel rule delivers better than 1e-9 relative accuracy over the
// range the power-law autocorrelation needs. For x > 700, K_ν underflows
// double precision and 0 is returned.
func BesselK(nu, x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	if x > 700 {
		return 0
	}
	// Cutoff T solving x·(cosh T − 1) − ν·T = margin, so the integrand at
	// T is ~e^{-margin} relative to its t=0 value e^{-x}. Fixed-point
	// iteration converges in a handful of steps.
	const margin = 46
	T := 1.0
	for i := 0; i < 64; i++ {
		next := math.Acosh((margin + nu*T + x) / x)
		if math.IsNaN(next) || next <= 0 {
			next = 1
		}
		if math.Abs(next-T) < 1e-9 {
			T = next
			break
		}
		T = next
	}
	const panels = 2000
	h := T / panels
	f := func(t float64) float64 {
		return math.Exp(-x*math.Cosh(t)) * math.Cosh(nu*t)
	}
	sum := f(0) + f(T)
	for i := 1; i < panels; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4
		}
		sum += w * f(float64(i)*h)
	}
	return sum * h / 3
}
