package spectrum

import (
	"math"
	"sync"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/fft"
)

// The sea spectrum's construction tabulates a Hankel transform; share
// one instance across tests.
var (
	seaOnce sync.Once
	sea5    *Sea
)

func testSea(t *testing.T) *Sea {
	t.Helper()
	seaOnce.Do(func() { sea5 = MustSea(5, 9.81) })
	return sea5
}

func TestSeaValidation(t *testing.T) {
	if _, err := NewSea(0, 9.81); err == nil {
		t.Error("U=0 accepted")
	}
	if _, err := NewSea(5, -1); err == nil {
		t.Error("negative gravity accepted")
	}
}

func TestSeaAnalyticVariance(t *testing.T) {
	s := testSea(t)
	// h = U²/g·sqrt(α/4β): U=5, g=9.81 → 0.1333 m.
	want := 25.0 / 9.81 * math.Sqrt(pmAlpha/(4*pmBeta))
	if math.Abs(s.SigmaH()-want) > 1e-12 {
		t.Errorf("h = %g want %g", s.SigmaH(), want)
	}
	// ρ(0) from the numerical Hankel transform must agree with h².
	h2 := s.SigmaH() * s.SigmaH()
	if got := s.Autocorrelation(0, 0); math.Abs(got-h2)/h2 > 0.002 {
		t.Errorf("ρ(0) = %g want %g", got, h2)
	}
}

func TestSeaDensityIntegratesToVariance(t *testing.T) {
	s := testSea(t)
	// Polar Riemann sum of W over the disc k <= 50·k_p.
	kp := 9.81 / 25.0
	kMax := 50 * kp
	nR, nTheta := 4000, 1 // isotropic: one angle suffices with 2πk factor
	_ = nTheta
	var sum float64
	dk := kMax / float64(nR)
	for i := 0; i < nR; i++ {
		k := (float64(i) + 0.5) * dk
		sum += 2 * math.Pi * k * s.Density(k, 0) * dk
	}
	h2 := s.SigmaH() * s.SigmaH()
	if math.Abs(sum-h2)/h2 > 0.002 {
		t.Errorf("∫W = %g want %g", sum, h2)
	}
}

func TestSeaIsotropy(t *testing.T) {
	s := testSea(t)
	k := 9.81 / 25.0 * 2 // 2·k_p
	w0 := s.Density(k, 0)
	for _, ang := range []float64{0.3, 1.1, 2.7} {
		if got := s.Density(k*math.Cos(ang), k*math.Sin(ang)); math.Abs(got-w0)/w0 > 1e-9 {
			t.Errorf("anisotropic density at angle %g", ang)
		}
	}
	r := 10.0
	r0 := s.Autocorrelation(r, 0)
	if got := s.Autocorrelation(0, r); math.Abs(got-r0) > 1e-12*(1+math.Abs(r0)) {
		t.Error("anisotropic autocorrelation")
	}
}

func TestSeaAutocorrelationOscillates(t *testing.T) {
	// A peaked spectrum yields a swell-like oscillatory ρ: there must be
	// a negative lobe within a few peak wavelengths.
	s := testSea(t)
	lambda := s.PeakWavelength()
	foundNegative := false
	for r := 0.0; r < 4*lambda; r += lambda / 50 {
		if s.Autocorrelation(r, 0) < 0 {
			foundNegative = true
			break
		}
	}
	if !foundNegative {
		t.Error("sea autocorrelation has no negative lobe — not swell-like")
	}
}

func TestSeaCorrelationLengthScale(t *testing.T) {
	s := testSea(t)
	clx, cly := s.CorrelationLengths()
	if !approx.Exact(clx, cly) {
		t.Error("isotropic spectrum reported anisotropic cl")
	}
	lambda := s.PeakWavelength() // 16.0 m at U=5
	// The 1/e crossing of a PM sea sits at a modest fraction of the
	// dominant wavelength.
	if clx < lambda/50 || clx > lambda {
		t.Errorf("cl = %g implausible for λ_p = %g", clx, lambda)
	}
}

// TestSeaWeightDFTMatchesAutocorrelation extends experiment E5 to the
// sea spectrum: the discrete weight array's transform must reproduce the
// numerically obtained ρ.
func TestSeaWeightDFTMatchesAutocorrelation(t *testing.T) {
	s := testSea(t)
	// Resolution: dominant wavelength ~16 m → dx = 0.5 m resolves the
	// spectral peak and most of the tail. Domain 128 m.
	const n = 256
	const dx = 0.5
	w := Weights(s, n, n, n*dx, n*dx)
	sum := SumWeights(w)
	h2 := s.SigmaH() * s.SigmaH()
	if math.Abs(sum-h2)/h2 > 0.05 {
		t.Errorf("Σw = %g want %g", sum, h2)
	}
	work := make([]complex128, n*n)
	for i, v := range w.Data {
		work[i] = complex(v, 0)
	}
	fft.MustPlan2D(n, n).InverseUnscaled(work)
	want := AutocorrelationGrid(s, n, n, dx, dx)
	var rmse float64
	for i := range work {
		d := real(work[i]) - want.Data[i]
		rmse += d * d
	}
	rmse = math.Sqrt(rmse/float64(n*n)) / h2
	// Error sources: Nyquist tail (~0.3%), periodic wraparound of the
	// oscillatory swell tail, and the table interpolation.
	if rmse > 0.08 {
		t.Errorf("sea DFT(w) vs ρ relative RMSE %g", rmse)
	}
}
