package spectrum

import (
	"fmt"
	"math"

	"roughsurface/internal/approx"
)

// Sea is an isotropic fully-developed wind-sea spectrum of the
// Pierson–Moskowitz form — the "sea surface" environment the paper's
// introduction motivates (and its ref [2] scatters from). The
// omnidirectional wavenumber spectrum under deep-water dispersion is
//
//	S(k) = (α/2)·k^(−3)·exp(−β·(k_p/k)²),   k_p = g/U²
//
// with the classic constants α = 8.1e-3, β = 0.74, U the wind speed.
// Spread isotropically over direction, the 2D density is
// W(K) = S(|K|)/(2π|K|), and the height variance is analytic:
//
//	h² = ∫S dk = α·U⁴/(4β·g²)
//
// The autocorrelation has no closed form; it is precomputed at
// construction as the radial Hankel transform ρ(r) = ∫S(k)·J₀(kr) dk
// on a dense table and interpolated. Unlike the three paper families,
// ρ oscillates (swell structure), so the reported correlation length is
// the first 1/e crossing.
type Sea struct {
	u, g float64
	h    float64
	kp   float64

	dr    float64
	rho   []float64 // ρ at radii i·dr
	clEst float64
}

// PM spectral constants.
const (
	pmAlpha = 8.1e-3
	pmBeta  = 0.74
)

// seaKMax bounds spectral integrals at 50·k_p; the k^(−3) tail beyond
// carries < 0.03% of the variance.
const seaKMax = 50.0

// NewSea builds the spectrum for wind speed u (m/s) under gravity g
// (m/s²; pass 9.81 for Earth).
func NewSea(u, g float64) (*Sea, error) {
	if !(u > 0) || math.IsInf(u, 0) {
		return nil, fmt.Errorf("spectrum: wind speed must be positive and finite, got %g", u)
	}
	if !(g > 0) || math.IsInf(g, 0) {
		return nil, fmt.Errorf("spectrum: gravity must be positive and finite, got %g", g)
	}
	s := &Sea{u: u, g: g}
	s.kp = g / (u * u)
	s.h = math.Sqrt(pmAlpha/(4*pmBeta)) * u * u / g

	// Tabulate ρ out to 64 peak wavelengths in steps of 0.02/k_p.
	s.dr = 0.02 / s.kp
	const nTab = 3200
	s.rho = make([]float64, nTab+1)
	for i := range s.rho {
		s.rho[i] = s.hankel(float64(i) * s.dr)
	}
	// First 1/e crossing of the tabulated ρ.
	target := s.rho[0] / math.E
	s.clEst = float64(nTab) * s.dr
	for i := 1; i < len(s.rho); i++ {
		if s.rho[i] <= target {
			frac := 0.0
			if !approx.Exact(s.rho[i-1], s.rho[i]) {
				frac = (s.rho[i-1] - target) / (s.rho[i-1] - s.rho[i])
			}
			s.clEst = (float64(i-1) + frac) * s.dr
			break
		}
	}
	return s, nil
}

// MustSea is NewSea that panics on invalid parameters.
func MustSea(u, g float64) *Sea {
	s, err := NewSea(u, g)
	if err != nil {
		panic(err)
	}
	return s
}

// radial evaluates the omnidirectional spectrum S(k).
func (s *Sea) radial(k float64) float64 {
	if k <= 0 {
		return 0
	}
	q := s.kp / k
	return pmAlpha / 2 * math.Exp(-pmBeta*q*q) / (k * k * k)
}

// hankel evaluates ρ(r) = ∫₀^∞ S(k)·J₀(kr) dk by Simpson's rule with a
// step resolving both the spectral peak and the J₀ oscillation at r.
func (s *Sea) hankel(r float64) float64 {
	kMax := seaKMax * s.kp
	panels := 4000
	if osc := int(3 * kMax * r); osc > panels {
		panels = osc
	}
	if panels%2 == 1 {
		panels++
	}
	hStep := kMax / float64(panels)
	f := func(k float64) float64 { return s.radial(k) * math.J0(k*r) }
	sum := f(0) + f(kMax)
	for i := 1; i < panels; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4
		}
		sum += w * f(float64(i)*hStep)
	}
	return sum * hStep / 3
}

// Density implements Spectrum: W(K) = S(|K|)/(2π|K|).
func (s *Sea) Density(kx, ky float64) float64 {
	k := math.Hypot(kx, ky)
	if k == 0 {
		return 0
	}
	return s.radial(k) / (2 * math.Pi * k)
}

// Autocorrelation implements Spectrum via the precomputed radial table.
func (s *Sea) Autocorrelation(x, y float64) float64 {
	r := math.Hypot(x, y)
	idx := r / s.dr
	i := int(idx)
	if i >= len(s.rho)-1 {
		return 0 // beyond 64 peak wavelengths: negligible
	}
	frac := idx - float64(i)
	return s.rho[i]*(1-frac) + s.rho[i+1]*frac
}

// SigmaH implements Spectrum with the analytic PM variance.
func (s *Sea) SigmaH() float64 { return s.h }

// CorrelationLengths implements Spectrum with the isotropic first 1/e
// crossing of ρ.
func (s *Sea) CorrelationLengths() (float64, float64) { return s.clEst, s.clEst }

// Name implements Spectrum.
func (s *Sea) Name() string { return "sea" }

// WindSpeed reports U.
func (s *Sea) WindSpeed() float64 { return s.u }

// PeakWavelength reports the dominant wavelength 2π/k_p = 2π·U²/g.
func (s *Sea) PeakWavelength() float64 { return 2 * math.Pi / s.kp }
