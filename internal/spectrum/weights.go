package spectrum

import (
	"fmt"
	"math"

	"roughsurface/internal/grid"
)

// Weights builds the discrete weighting array w of paper eqn (15) for an
// nx×ny DFT grid spanning physical lengths lx×ly:
//
//	w[my][mx] = (4π²/(lx·ly)) · W(K_m̃x, K_m̃y),   K_m = 2π·m̃/L
//
// with the index folding of eqn (16): m̃ = m for m below the Nyquist bin
// and m̃ = N − m above it, so w is real, nonnegative and symmetric under
// m → N − m. The array satisfies Σ_m w[m] ≈ h² (the Riemann sum of
// eqn 1); the deficit is the spectral tail beyond the Nyquist frequency.
//
// The returned grid has Dx = 2π/lx and Dy = 2π/ly (the spectral bin
// widths) and no physical origin.
func Weights(s Spectrum, nx, ny int, lx, ly float64) *grid.Grid {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("spectrum: invalid weight grid %dx%d", nx, ny))
	}
	if !(lx > 0) || !(ly > 0) {
		panic(fmt.Sprintf("spectrum: invalid physical lengths %gx%g", lx, ly))
	}
	w := grid.New(nx, ny)
	w.Dx = 2 * math.Pi / lx
	w.Dy = 2 * math.Pi / ly
	scale := 4 * math.Pi * math.Pi / (lx * ly)
	for my := 0; my < ny; my++ {
		ky := w.Dy * float64(fold(my, ny))
		for mx := 0; mx < nx; mx++ {
			kx := w.Dx * float64(fold(mx, nx))
			w.Set(mx, my, scale*s.Density(kx, ky))
		}
	}
	return w
}

// fold maps DFT bin m of an N-point transform to its non-negative
// frequency index per paper eqn (16).
func fold(m, n int) int {
	if 2*m <= n {
		return m
	}
	return n - m
}

// Amplitude returns v = sqrt(w) element-wise (paper eqn 17).
func Amplitude(w *grid.Grid) *grid.Grid {
	v := w.Clone()
	for i, x := range v.Data {
		v.Data[i] = math.Sqrt(x)
	}
	return v
}

// SumWeights returns Σ_m w[m], the discrete estimate of h².
func SumWeights(w *grid.Grid) float64 {
	var s float64
	for _, x := range w.Data {
		s += x
	}
	return s
}

// NormalizeVariance rescales a weight array in place so Σ_m w[m] equals
// exactly h². The raw array undershoots h² by the spectral tail beyond
// the Nyquist frequency (up to several percent for the heavy-tailed
// exponential family at short correlation lengths); normalizing trades
// that bias for an equally small autocorrelation-shape distortion and
// makes the generated height variance exact by construction. This is an
// extension beyond the paper, which uses the raw discretization.
func NormalizeVariance(w *grid.Grid, h float64) {
	sum := SumWeights(w)
	if sum <= 0 {
		return
	}
	scale := h * h / sum
	for i := range w.Data {
		w.Data[i] *= scale
	}
}

// AutocorrelationGrid evaluates the analytic ρ(r) on the DFT lag grid of
// an nx×ny surface with sample spacings dx×dy: entry (mx, my) holds
// ρ(fold(mx)·dx, fold(my)·dy), matching the lag ordering produced by
// stats.AutocovarianceFFT and by the N·IDFT of the weight array — the
// comparison the paper uses as its accuracy check (§2.2).
func AutocorrelationGrid(s Spectrum, nx, ny int, dx, dy float64) *grid.Grid {
	g := grid.New(nx, ny)
	g.Dx, g.Dy = dx, dy
	for my := 0; my < ny; my++ {
		y := dy * float64(fold(my, ny))
		for mx := 0; mx < nx; mx++ {
			x := dx * float64(fold(mx, nx))
			g.Set(mx, my, s.Autocorrelation(x, y))
		}
	}
	return g
}
