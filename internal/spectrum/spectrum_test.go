package spectrum

import (
	"math"
	"strings"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/fft"
	"roughsurface/internal/grid"
)

func TestBesselKHalfIntegerClosedForms(t *testing.T) {
	// K_{1/2}(x) = sqrt(π/2x)·e^{−x}
	// K_{3/2}(x) = sqrt(π/2x)·e^{−x}·(1 + 1/x)
	// K_{5/2}(x) = sqrt(π/2x)·e^{−x}·(1 + 3/x + 3/x²)
	for _, x := range []float64{0.05, 0.3, 1, 2.5, 10, 50} {
		pre := math.Sqrt(math.Pi/(2*x)) * math.Exp(-x)
		cases := []struct {
			nu   float64
			want float64
		}{
			{0.5, pre},
			{1.5, pre * (1 + 1/x)},
			{2.5, pre * (1 + 3/x + 3/(x*x))},
		}
		for _, c := range cases {
			got := BesselK(c.nu, x)
			if rel := math.Abs(got-c.want) / c.want; rel > 1e-8 {
				t.Errorf("K_%g(%g) = %.12g want %.12g (rel %g)", c.nu, x, got, c.want, rel)
			}
		}
	}
}

func TestBesselKRecurrence(t *testing.T) {
	// K_{ν+1}(x) = K_{ν−1}(x) + (2ν/x)·K_ν(x)
	for _, nu := range []float64{1, 1.7, 3} {
		for _, x := range []float64{0.2, 1, 4, 20} {
			lhs := BesselK(nu+1, x)
			rhs := BesselK(nu-1, x) + 2*nu/x*BesselK(nu, x)
			if rel := math.Abs(lhs-rhs) / lhs; rel > 1e-7 {
				t.Errorf("recurrence broken at ν=%g x=%g: %g vs %g", nu, x, lhs, rhs)
			}
		}
	}
}

func TestBesselKEdgeBehavior(t *testing.T) {
	if !math.IsInf(BesselK(1, 0), 1) {
		t.Error("K_ν(0) should be +Inf")
	}
	if BesselK(1, 800) != 0 {
		t.Error("K_ν(800) should underflow to 0")
	}
	if v := BesselK(0, 1); v <= 0 || v >= 1 {
		t.Errorf("K_0(1) = %g out of plausible range", v)
	}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewGaussian(0, 1, 1); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := NewGaussian(1, -1, 1); err == nil {
		t.Error("clx<0 accepted")
	}
	if _, err := NewExponential(1, 1, 0); err == nil {
		t.Error("cly=0 accepted")
	}
	if _, err := NewPowerLaw(1, 1, 1, 1); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := NewPowerLaw(1, 1, 1, 0.5); err == nil {
		t.Error("N<1 accepted")
	}
	if _, err := NewPowerLaw(1, 1, 1, 2); err != nil {
		t.Errorf("valid power law rejected: %v", err)
	}
}

func allSpectra() []Spectrum {
	return []Spectrum{
		MustGaussian(1.3, 8, 8),
		MustGaussian(0.7, 5, 12), // anisotropic
		MustPowerLaw(1.1, 8, 8, 2),
		MustPowerLaw(0.9, 10, 6, 3),
		MustExponential(1.2, 8, 8),
	}
}

func TestAutocorrelationAtOriginIsVariance(t *testing.T) {
	for _, s := range allSpectra() {
		h := s.SigmaH()
		if got := s.Autocorrelation(0, 0); math.Abs(got-h*h) > 1e-9*h*h {
			t.Errorf("%s: ρ(0,0)=%g want %g", s.Name(), got, h*h)
		}
	}
}

func TestAutocorrelationDecaysMonotonically(t *testing.T) {
	for _, s := range allSpectra() {
		prev := s.Autocorrelation(0, 0)
		for _, r := range []float64{1, 2, 5, 10, 20, 50, 100} {
			cur := s.Autocorrelation(r, 0)
			if cur > prev+1e-12 {
				t.Errorf("%s: ρ not decaying at x=%g (%g > %g)", s.Name(), r, cur, prev)
			}
			prev = cur
		}
	}
}

func TestAutocorrelationEvenSymmetry(t *testing.T) {
	for _, s := range allSpectra() {
		for _, p := range [][2]float64{{3, 4}, {-3, 4}, {3, -4}, {-3, -4}} {
			if math.Abs(s.Autocorrelation(p[0], p[1])-s.Autocorrelation(3, 4)) > 1e-12 {
				t.Errorf("%s: ρ not even at %v", s.Name(), p)
			}
		}
	}
}

func TestGaussianAutocorrelationOneOverE(t *testing.T) {
	s := MustGaussian(2, 10, 25)
	if got := s.Autocorrelation(10, 0); math.Abs(got-4/math.E) > 1e-12 {
		t.Errorf("ρ(clx,0)=%g want h²/e=%g", got, 4/math.E)
	}
	if got := s.Autocorrelation(0, 25); math.Abs(got-4/math.E) > 1e-12 {
		t.Errorf("ρ(0,cly)=%g want h²/e", got)
	}
}

func TestExponentialAutocorrelationOneOverE(t *testing.T) {
	s := MustExponential(3, 7, 7)
	if got := s.Autocorrelation(7, 0); math.Abs(got-9/math.E) > 1e-12 {
		t.Errorf("ρ(cl,0)=%g want h²/e=%g", got, 9/math.E)
	}
}

func TestDensityIntegratesToVariance(t *testing.T) {
	// Riemann sum of W over a dense wide spectral grid must give h².
	for _, s := range allSpectra() {
		clx, cly := s.CorrelationLengths()
		kmx := 60 / clx // far into the tail for every family
		kmy := 60 / cly
		n := 1200
		dkx := 2 * kmx / float64(n)
		dky := 2 * kmy / float64(n)
		var sum float64
		for iy := 0; iy < n; iy++ {
			ky := -kmy + (float64(iy)+0.5)*dky
			for ix := 0; ix < n; ix++ {
				kx := -kmx + (float64(ix)+0.5)*dkx
				sum += s.Density(kx, ky)
			}
		}
		sum *= dkx * dky
		h2 := s.SigmaH() * s.SigmaH()
		tol := 0.03 * h2 // heavy-tailed families converge slowly
		if strings.HasPrefix(s.Name(), "gaussian") {
			tol = 1e-6 * h2
		}
		if math.Abs(sum-h2) > tol {
			t.Errorf("%s: ∫W = %g want %g", s.Name(), sum, h2)
		}
	}
}

func TestWeightsSymmetryAndPositivity(t *testing.T) {
	w := Weights(MustGaussian(1, 6, 9), 32, 24, 32, 24)
	for my := 0; my < 24; my++ {
		for mx := 0; mx < 32; mx++ {
			v := w.At(mx, my)
			if v < 0 {
				t.Fatalf("negative weight at (%d,%d)", mx, my)
			}
			if mirror := w.At((32-mx)%32, (24-my)%24); math.Abs(v-mirror) > 1e-15 {
				t.Fatalf("weight asymmetry at (%d,%d)", mx, my)
			}
		}
	}
}

func TestSumWeightsApproximatesVariance(t *testing.T) {
	cases := []struct {
		s   Spectrum
		tol float64 // relative, dominated by the spectral tail beyond Nyquist
	}{
		{MustGaussian(1.5, 8, 8), 1e-9},
		{MustPowerLaw(1.5, 8, 8, 2), 0.02},
		{MustExponential(1.5, 8, 8), 0.06},
	}
	for _, c := range cases {
		w := Weights(c.s, 256, 256, 256, 256)
		h2 := c.s.SigmaH() * c.s.SigmaH()
		sum := SumWeights(w)
		if math.Abs(sum-h2)/h2 > c.tol {
			t.Errorf("%s: Σw=%g want %g (rel %g > %g)", c.s.Name(), sum, h2, math.Abs(sum-h2)/h2, c.tol)
		}
	}
}

func TestAmplitudeSquaresBack(t *testing.T) {
	w := Weights(MustExponential(1, 10, 10), 16, 16, 16, 16)
	v := Amplitude(w)
	for i := range v.Data {
		if math.Abs(v.Data[i]*v.Data[i]-w.Data[i]) > 1e-15 {
			t.Fatalf("v² != w at %d", i)
		}
	}
}

// TestWeightDFTMatchesAutocorrelation is experiment E5: the paper's own
// accuracy check (§2.2) that the DFT of the weighting array reproduces
// the analytic autocorrelation, for all three spectral families.
func TestWeightDFTMatchesAutocorrelation(t *testing.T) {
	cases := []struct {
		s   Spectrum
		tol float64 // relative RMSE over the full lag grid
	}{
		{MustGaussian(1.3, 8, 8), 1e-8},
		{MustGaussian(0.8, 6, 14), 1e-8},
		{MustPowerLaw(1.1, 8, 8, 2), 0.02},
		{MustPowerLaw(1.0, 8, 8, 3), 0.02},
		{MustExponential(1.2, 8, 8), 0.06},
	}
	const n = 256
	p := fft.MustPlan2D(n, n)
	for _, c := range cases {
		w := Weights(c.s, n, n, n, n) // dx = dy = 1
		work := make([]complex128, n*n)
		for i, v := range w.Data {
			work[i] = complex(v, 0)
		}
		p.InverseUnscaled(work) // Σ_m w·e^{+j...} = NxNy·IDFT(w)
		got := grid.New(n, n)
		maxImag := 0.0
		for i, v := range work {
			got.Data[i] = real(v)
			if im := math.Abs(imag(v)); im > maxImag {
				maxImag = im
			}
		}
		if maxImag > 1e-9 {
			t.Errorf("%s: DFT of symmetric weights has imaginary residue %g", c.s.Name(), maxImag)
		}
		want := AutocorrelationGrid(c.s, n, n, 1, 1)
		h2 := c.s.SigmaH() * c.s.SigmaH()
		rmse := 0.0
		for i := range got.Data {
			d := got.Data[i] - want.Data[i]
			rmse += d * d
		}
		rmse = math.Sqrt(rmse/float64(n*n)) / h2
		if rmse > c.tol {
			t.Errorf("%s: DFT(w) vs ρ relative RMSE %g > %g", c.s.Name(), rmse, c.tol)
		}
	}
}

func TestAutocorrelationGridLagOrdering(t *testing.T) {
	s := MustGaussian(1, 5, 5)
	g := AutocorrelationGrid(s, 16, 16, 2, 2)
	if !approx.Exact(g.At(0, 0), s.Autocorrelation(0, 0)) {
		t.Error("lag (0,0) misplaced")
	}
	if !approx.Exact(g.At(3, 0), s.Autocorrelation(6, 0)) {
		t.Error("positive lag misplaced")
	}
	if !approx.Exact(g.At(13, 0), s.Autocorrelation(6, 0)) { // bin 13 folds to lag 3 → x=6
		t.Error("wrapped negative lag misplaced")
	}
}

func TestNames(t *testing.T) {
	if MustGaussian(1, 1, 1).Name() != "gaussian" {
		t.Error("gaussian name")
	}
	if MustPowerLaw(1, 1, 1, 2).Name() != "powerlaw2" {
		t.Error("powerlaw name")
	}
	if MustExponential(1, 1, 1).Name() != "exponential" {
		t.Error("exponential name")
	}
	if !approx.Exact(MustPowerLaw(1, 1, 1, 2.5).Order(), 2.5) {
		t.Error("Order")
	}
}
