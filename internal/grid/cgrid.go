package grid

import (
	"fmt"
	"math/cmplx"
)

// CGrid is a uniformly indexed complex 2D array used for spectral-domain
// intermediates (weight arrays, Hermitian random arrays, FFT workspaces).
// It carries no physical coordinates: spectral indexing follows the DFT
// bin convention of the paper (bin m and bin N−m are conjugate partners).
type CGrid struct {
	Nx, Ny int
	Data   []complex128
}

// NewC allocates a zeroed nx×ny complex grid.
func NewC(nx, ny int) *CGrid {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("grid: invalid size %dx%d", nx, ny))
	}
	return &CGrid{Nx: nx, Ny: ny, Data: make([]complex128, nx*ny)}
}

// Index returns the flat index of bin (ix, iy).
func (c *CGrid) Index(ix, iy int) int { return iy*c.Nx + ix }

// At returns the value at bin (ix, iy).
func (c *CGrid) At(ix, iy int) complex128 { return c.Data[iy*c.Nx+ix] }

// Set stores v at bin (ix, iy).
func (c *CGrid) Set(ix, iy int, v complex128) { c.Data[iy*c.Nx+ix] = v }

// Clone returns a deep copy.
func (c *CGrid) Clone() *CGrid {
	n := *c
	n.Data = append([]complex128(nil), c.Data...)
	return &n
}

// MulElem multiplies c element-wise by o in place.
func (c *CGrid) MulElem(o *CGrid) {
	if c.Nx != o.Nx || c.Ny != o.Ny {
		panic("grid: MulElem dimension mismatch")
	}
	for i := range c.Data {
		c.Data[i] *= o.Data[i]
	}
}

// Real extracts the real part into a new Grid with the given geometry
// template (spacing and origin are copied from tmpl when non-nil).
func (c *CGrid) Real(tmpl *Grid) *Grid {
	g := New(c.Nx, c.Ny)
	if tmpl != nil {
		g.Dx, g.Dy, g.X0, g.Y0 = tmpl.Dx, tmpl.Dy, tmpl.X0, tmpl.Y0
	}
	for i, v := range c.Data {
		g.Data[i] = real(v)
	}
	return g
}

// MaxImagAbs returns the largest |imag| over all bins — the generators
// use it to assert that ostensibly real results really are real.
func (c *CGrid) MaxImagAbs() float64 {
	m := 0.0
	for _, v := range c.Data {
		if im := imag(v); im > m {
			m = im
		} else if -im > m {
			m = -im
		}
	}
	return m
}

// FromReal builds a CGrid whose real parts are g's samples.
func FromReal(g *Grid) *CGrid {
	c := NewC(g.Nx, g.Ny)
	for i, v := range g.Data {
		c.Data[i] = complex(v, 0)
	}
	return c
}

// MaxAbsDiffC returns the largest |a-b| between two same-sized complex grids.
func MaxAbsDiffC(a, b *CGrid) float64 {
	if a.Nx != b.Nx || a.Ny != b.Ny {
		panic("grid: MaxAbsDiffC dimension mismatch")
	}
	m := 0.0
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}
