package grid

import "fmt"

// Grid32 is the float32 sibling of Grid, carried by the serving hot
// path: tiles leave the daemon as f32 or 8-bit PNG, so rendering in
// single precision halves the working set without changing what a
// client can observe beyond documented rounding tolerance. Spacing and
// origin metadata stay float64 — coordinates are exact lattice
// multiples and never accumulate rounding.
type Grid32 struct {
	Nx, Ny int
	Dx, Dy float64
	X0, Y0 float64
	Data   []float32
}

// New32 allocates a zeroed nx×ny float32 grid with unit spacing and
// origin (0, 0).
func New32(nx, ny int) *Grid32 {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("grid: invalid size %dx%d", nx, ny))
	}
	return &Grid32{Nx: nx, Ny: ny, Dx: 1, Dy: 1, Data: make([]float32, nx*ny)}
}

// Index returns the flat index of sample (ix, iy).
func (g *Grid32) Index(ix, iy int) int { return iy*g.Nx + ix }

// At returns the sample at (ix, iy).
func (g *Grid32) At(ix, iy int) float32 { return g.Data[iy*g.Nx+ix] }

// Len reports the number of samples.
func (g *Grid32) Len() int { return g.Nx * g.Ny }

// Widen returns a float64 Grid copy, for handing f32-rendered tiles to
// the float64 render and statistics layers (PNG colormapping, probes).
func (g *Grid32) Widen() *Grid {
	out := &Grid{Nx: g.Nx, Ny: g.Ny, Dx: g.Dx, Dy: g.Dy, X0: g.X0, Y0: g.Y0,
		Data: make([]float64, len(g.Data))}
	for i, v := range g.Data {
		out.Data[i] = float64(v)
	}
	return out
}
