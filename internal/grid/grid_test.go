package grid

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"roughsurface/internal/approx"
	"roughsurface/internal/rng"
)

func randomGrid(nx, ny int, seed int64) *Grid {
	g := NewCentered(nx, ny, 2, 3)
	rng.NewGaussian(uint64(seed)).Fill(g.Data)
	return g
}

func TestNewCenteredOrigin(t *testing.T) {
	g := NewCentered(8, 6, 1, 1)
	x, y := g.XY(4, 3) // the center sample
	if x != 0 || y != 0 {
		t.Errorf("center sample at (%g,%g), want (0,0)", x, y)
	}
	x, y = g.XY(0, 0)
	if !approx.Exact(x, -4) || !approx.Exact(y, -3) {
		t.Errorf("corner sample at (%g,%g), want (-4,-3)", x, y)
	}
}

func TestAtSetIndex(t *testing.T) {
	g := New(5, 4)
	g.Set(3, 2, 7.5)
	if !approx.Exact(g.At(3, 2), 7.5) {
		t.Error("Set/At mismatch")
	}
	if !approx.Exact(g.Data[g.Index(3, 2)], 7.5) {
		t.Error("Index inconsistent with At")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := randomGrid(4, 4, 1)
	c := g.Clone()
	c.Data[0] = 999
	if approx.Exact(g.Data[0], 999) {
		t.Error("Clone shares backing array")
	}
}

func TestSubPreservesCoordinates(t *testing.T) {
	g := randomGrid(16, 12, 2)
	s := g.Sub(4, 3, 8, 6)
	if s.Nx != 8 || s.Ny != 6 {
		t.Fatalf("Sub size %dx%d", s.Nx, s.Ny)
	}
	for iy := 0; iy < s.Ny; iy++ {
		for ix := 0; ix < s.Nx; ix++ {
			if !approx.Exact(s.At(ix, iy), g.At(ix+4, iy+3)) {
				t.Fatalf("sample mismatch at (%d,%d)", ix, iy)
			}
			sx, sy := s.XY(ix, iy)
			gx, gy := g.XY(ix+4, iy+3)
			if !approx.Exact(sx, gx) || !approx.Exact(sy, gy) {
				t.Fatalf("coordinate mismatch at (%d,%d)", ix, iy)
			}
		}
	}
}

func TestSubOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sub out of range should panic")
		}
	}()
	randomGrid(4, 4, 3).Sub(2, 2, 4, 4)
}

func TestMinMaxMean(t *testing.T) {
	g := New(2, 2)
	copy(g.Data, []float64{1, -3, 5, 1})
	min, max := g.MinMax()
	if !approx.Exact(min, -3) || !approx.Exact(max, 5) {
		t.Errorf("MinMax = (%g,%g)", min, max)
	}
	if !approx.Exact(g.Mean(), 1) {
		t.Errorf("Mean = %g", g.Mean())
	}
}

func TestAddScaledScale(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	copy(b.Data, []float64{10, 20, 30, 40})
	a.AddScaled(0.5, b)
	want := []float64{6, 12, 18, 24}
	for i := range want {
		if !approx.Exact(a.Data[i], want[i]) {
			t.Fatalf("AddScaled[%d] = %g want %g", i, a.Data[i], want[i])
		}
	}
	a.Scale(2)
	if !approx.Exact(a.Data[0], 12) {
		t.Error("Scale failed")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGrid(17, 9, 4)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualWithin(g, 0) {
		t.Error("binary round trip changed the grid")
	}
}

func TestBinaryRejectsCorruptHeader(t *testing.T) {
	g := randomGrid(4, 4, 5)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] = 'X' // break magic
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("corrupt magic accepted")
	}
	// Implausible dimension.
	buf.Reset()
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	for i := 8; i < 16; i++ {
		raw[i] = 0xff
	}
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("implausible dimensions accepted")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	g := randomGrid(8, 8, 6)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := randomGrid(6, 5, 7)
	path := filepath.Join(t.TempDir(), "s.grid")
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualWithin(g, 0) {
		t.Error("file round trip changed the grid")
	}
}

func TestWriteCSVShape(t *testing.T) {
	g := randomGrid(3, 2, 8)
	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if n := bytes.Count(lines[1], []byte(",")); n != 2 {
		t.Errorf("row has %d commas, want 2", n)
	}
}

func TestWriteXYZContainsCoordinates(t *testing.T) {
	g := NewCentered(2, 2, 10, 10)
	g.Fill(1.5)
	var buf bytes.Buffer
	if err := g.WriteXYZ(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("-10 -10 1.5")) {
		t.Errorf("XYZ output missing expected line:\n%s", buf.String())
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, rawNx, rawNy uint8) bool {
		nx := int(rawNx)%20 + 1
		ny := int(rawNy)%20 + 1
		g := randomGrid(nx, ny, seed)
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.EqualWithin(g, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCGridRealAndFromReal(t *testing.T) {
	g := randomGrid(5, 4, 9)
	c := FromReal(g)
	back := c.Real(g)
	if !back.EqualWithin(g, 0) {
		t.Error("FromReal/Real round trip changed samples")
	}
	if !approx.Exact(back.Dx, g.Dx) || !approx.Exact(back.X0, g.X0) {
		t.Error("Real did not copy geometry from template")
	}
}

func TestCGridMulElem(t *testing.T) {
	a := NewC(2, 2)
	b := NewC(2, 2)
	a.Set(0, 0, complex(2, 1))
	b.Set(0, 0, complex(3, -1))
	a.MulElem(b)
	if !approx.ExactC(a.At(0, 0), complex(7, 1)) {
		t.Errorf("MulElem = %v", a.At(0, 0))
	}
}

func TestCGridMaxImagAbs(t *testing.T) {
	c := NewC(2, 2)
	c.Set(1, 1, complex(0, -0.25))
	if got := c.MaxImagAbs(); !approx.Exact(got, 0.25) {
		t.Errorf("MaxImagAbs = %g", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := randomGrid(4, 4, 10)
	b := a.Clone()
	b.Data[7] += 0.5
	if d := a.MaxAbsDiff(b); math.Abs(d-0.5) > 1e-15 {
		t.Errorf("MaxAbsDiff = %g", d)
	}
}

// TestTilingPartition: every sample of the raster belongs to exactly
// one tile, no tile is empty or oversized, and edge tiles absorb the
// remainder.
func TestTilingPartition(t *testing.T) {
	cases := []struct{ nx, ny, tx, ty int }{
		{1, 1, 64, 64}, {64, 64, 64, 64}, {65, 64, 64, 64},
		{100, 70, 32, 16}, {7, 31, 8, 8}, {256, 3, 64, 64},
	}
	for _, c := range cases {
		tiles := Tiling(c.nx, c.ny, c.tx, c.ty)
		seen := make([]int, c.nx*c.ny)
		for _, tl := range tiles {
			if tl.Nx < 1 || tl.Ny < 1 || tl.Nx > c.tx || tl.Ny > c.ty {
				t.Fatalf("%+v: tile %+v out of bounds", c, tl)
			}
			for j := tl.Y0; j < tl.Y0+tl.Ny; j++ {
				for i := tl.X0; i < tl.X0+tl.Nx; i++ {
					seen[j*c.nx+i]++
				}
			}
		}
		for idx, n := range seen {
			if n != 1 {
				t.Fatalf("%+v: sample %d covered %d times", c, idx, n)
			}
		}
	}
}

func TestTilingPanicsOnBadGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { Tiling(0, 4, 8, 8) },
		func() { Tiling(4, 4, 0, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}
