package grid

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// Binary surface format ("RRSG"): a fixed little-endian header followed
// by the raw float64 samples. Version 1.
//
//	offset size field
//	0      4    magic "RRSG"
//	4      4    version (uint32) = 1
//	8      8    Nx (int64)
//	16     8    Ny (int64)
//	24     8    Dx (float64)
//	32     8    Dy (float64)
//	40     8    X0 (float64)
//	48     8    Y0 (float64)
//	56     8·Nx·Ny samples, row-major
const (
	binaryMagic   = "RRSG"
	binaryVersion = 1
	// maxBinaryDim guards against corrupt headers causing huge allocations.
	maxBinaryDim = 1 << 24
)

// WriteTo serializes g in the binary surface format.
func (g *Grid) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return n, err
	}
	hdr := make([]byte, 4+6*8)
	binary.LittleEndian.PutUint32(hdr[0:], binaryVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(int64(g.Nx)))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(int64(g.Ny)))
	binary.LittleEndian.PutUint64(hdr[20:], math.Float64bits(g.Dx))
	binary.LittleEndian.PutUint64(hdr[28:], math.Float64bits(g.Dy))
	binary.LittleEndian.PutUint64(hdr[36:], math.Float64bits(g.X0))
	binary.LittleEndian.PutUint64(hdr[44:], math.Float64bits(g.Y0))
	if _, err := bw.Write(hdr); err != nil {
		return n, err
	}
	buf := make([]byte, 8)
	for _, v := range g.Data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	n = int64(4 + len(hdr) + 8*len(g.Data))
	return n, nil
}

// Read deserializes a grid from the binary surface format.
func Read(r io.Reader) (*Grid, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("grid: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("grid: bad magic %q", magic)
	}
	hdr := make([]byte, 4+6*8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("grid: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != binaryVersion {
		return nil, fmt.Errorf("grid: unsupported version %d", v)
	}
	nx := int64(binary.LittleEndian.Uint64(hdr[4:]))
	ny := int64(binary.LittleEndian.Uint64(hdr[12:]))
	if nx < 1 || ny < 1 || nx > maxBinaryDim || ny > maxBinaryDim || nx*ny > maxBinaryDim {
		return nil, fmt.Errorf("grid: implausible dimensions %dx%d", nx, ny)
	}
	g := New(int(nx), int(ny))
	g.Dx = math.Float64frombits(binary.LittleEndian.Uint64(hdr[20:]))
	g.Dy = math.Float64frombits(binary.LittleEndian.Uint64(hdr[28:]))
	g.X0 = math.Float64frombits(binary.LittleEndian.Uint64(hdr[36:]))
	g.Y0 = math.Float64frombits(binary.LittleEndian.Uint64(hdr[44:]))
	buf := make([]byte, 8)
	for i := range g.Data {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("grid: reading sample %d: %w", i, err)
		}
		g.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return g, nil
}

// SaveFile writes g to path in the binary surface format.
func (g *Grid) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a binary surface file.
func LoadFile(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteCSV emits the samples as Ny lines of Nx comma-separated values,
// preceded by a comment header carrying the geometry. Gnuplot and
// spreadsheet tools read this directly.
func (g *Grid) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nx=%d ny=%d dx=%g dy=%g x0=%g y0=%g\n", g.Nx, g.Ny, g.Dx, g.Dy, g.X0, g.Y0)
	for iy := 0; iy < g.Ny; iy++ {
		row := g.Row(iy)
		for ix, v := range row {
			if ix > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteXYZ emits one "x y z" line per sample — the format gnuplot's
// splot and most point-cloud tools accept for 3D surface plots like the
// paper's figures.
func (g *Grid) WriteXYZ(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			x, y := g.XY(ix, iy)
			fmt.Fprintf(bw, "%g %g %g\n", x, y, g.At(ix, iy))
		}
		if err := bw.WriteByte('\n'); err != nil { // blank line between scan rows for splot
			return err
		}
	}
	return bw.Flush()
}
