// Package grid provides the two-dimensional sampled-field containers the
// generators produce and consume: Grid for real height fields f(x, y) and
// CGrid for complex spectral-domain arrays. Data is row-major
// (index iy*Nx+ix) with uniform sample spacing and an arbitrary origin so
// that figure coordinates like the paper's [-500, 500]² map naturally.
package grid

import (
	"fmt"
	"math"
)

// Grid is a uniformly sampled real field. Data[iy*Nx+ix] is the sample at
// physical position (X0 + ix·Dx, Y0 + iy·Dy).
type Grid struct {
	Nx, Ny int
	Dx, Dy float64
	X0, Y0 float64
	Data   []float64
}

// New allocates a zeroed nx×ny grid with unit spacing and origin (0, 0).
func New(nx, ny int) *Grid {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("grid: invalid size %dx%d", nx, ny))
	}
	return &Grid{Nx: nx, Ny: ny, Dx: 1, Dy: 1, Data: make([]float64, nx*ny)}
}

// NewCentered allocates an nx×ny grid with spacing (dx, dy) whose
// coordinate origin sits at the grid center, matching the paper's figure
// axes (e.g. the circle of Fig. 3 is centered at (0, 0)).
func NewCentered(nx, ny int, dx, dy float64) *Grid {
	g := New(nx, ny)
	g.Dx, g.Dy = dx, dy
	g.X0 = -dx * float64(nx/2)
	g.Y0 = -dy * float64(ny/2)
	return g
}

// Index returns the flat index of sample (ix, iy).
func (g *Grid) Index(ix, iy int) int { return iy*g.Nx + ix }

// At returns the sample at (ix, iy).
func (g *Grid) At(ix, iy int) float64 { return g.Data[iy*g.Nx+ix] }

// Set stores v at (ix, iy).
func (g *Grid) Set(ix, iy int, v float64) { g.Data[iy*g.Nx+ix] = v }

// XY returns the physical coordinates of sample (ix, iy).
func (g *Grid) XY(ix, iy int) (x, y float64) {
	return g.X0 + float64(ix)*g.Dx, g.Y0 + float64(iy)*g.Dy
}

// Len reports the number of samples.
func (g *Grid) Len() int { return g.Nx * g.Ny }

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	c := *g
	c.Data = append([]float64(nil), g.Data...)
	return &c
}

// Fill sets every sample to v.
func (g *Grid) Fill(v float64) {
	for i := range g.Data {
		g.Data[i] = v
	}
}

// Scale multiplies every sample by s.
func (g *Grid) Scale(s float64) {
	for i := range g.Data {
		g.Data[i] *= s
	}
}

// AddScaled adds s·o to g sample-wise. The grids must share dimensions.
func (g *Grid) AddScaled(s float64, o *Grid) {
	if g.Nx != o.Nx || g.Ny != o.Ny {
		panic("grid: AddScaled dimension mismatch")
	}
	for i := range g.Data {
		g.Data[i] += s * o.Data[i]
	}
}

// MinMax returns the smallest and largest sample values.
func (g *Grid) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range g.Data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Mean returns the arithmetic mean of the samples.
func (g *Grid) Mean() float64 {
	var s float64
	for _, v := range g.Data {
		s += v
	}
	return s / float64(len(g.Data))
}

// Sub copies the rectangle [x0, x0+nx) × [y0, y0+ny) into a new grid
// whose coordinate origin is adjusted so physical positions are
// preserved.
func (g *Grid) Sub(x0, y0, nx, ny int) *Grid {
	if x0 < 0 || y0 < 0 || nx < 1 || ny < 1 || x0+nx > g.Nx || y0+ny > g.Ny {
		panic(fmt.Sprintf("grid: Sub(%d,%d,%d,%d) out of range for %dx%d", x0, y0, nx, ny, g.Nx, g.Ny))
	}
	s := New(nx, ny)
	s.Dx, s.Dy = g.Dx, g.Dy
	s.X0 = g.X0 + float64(x0)*g.Dx
	s.Y0 = g.Y0 + float64(y0)*g.Dy
	for iy := 0; iy < ny; iy++ {
		copy(s.Data[iy*nx:(iy+1)*nx], g.Data[(y0+iy)*g.Nx+x0:(y0+iy)*g.Nx+x0+nx])
	}
	return s
}

// Row returns the iy-th row as a shared-backing slice view.
func (g *Grid) Row(iy int) []float64 { return g.Data[iy*g.Nx : (iy+1)*g.Nx] }

// Tile is one rectangle of a Tiling decomposition: samples
// [X0, X0+Nx) × [Y0, Y0+Ny) of the decomposed raster.
type Tile struct {
	X0, Y0 int
	Nx, Ny int
}

// Tiling splits an nx×ny raster into row-major tiles of at most tx×ty
// samples. Edge tiles absorb the remainder, so every sample belongs to
// exactly one tile and no tile is empty.
func Tiling(nx, ny, tx, ty int) []Tile {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("grid: invalid raster %dx%d", nx, ny))
	}
	if tx < 1 || ty < 1 {
		panic(fmt.Sprintf("grid: invalid tile %dx%d", tx, ty))
	}
	tilesX := (nx + tx - 1) / tx
	tilesY := (ny + ty - 1) / ty
	out := make([]Tile, 0, tilesX*tilesY)
	for y0 := 0; y0 < ny; y0 += ty {
		h := min(ty, ny-y0)
		for x0 := 0; x0 < nx; x0 += tx {
			out = append(out, Tile{X0: x0, Y0: y0, Nx: min(tx, nx-x0), Ny: h})
		}
	}
	return out
}

// EqualWithin reports whether two grids share geometry and all samples
// differ by at most tol.
func (g *Grid) EqualWithin(o *Grid, tol float64) bool {
	if g.Nx != o.Nx || g.Ny != o.Ny || g.Dx != o.Dx || g.Dy != o.Dy || g.X0 != o.X0 || g.Y0 != o.Y0 {
		return false
	}
	for i := range g.Data {
		if math.Abs(g.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute sample difference between two
// same-sized grids.
func (g *Grid) MaxAbsDiff(o *Grid) float64 {
	if g.Nx != o.Nx || g.Ny != o.Ny {
		panic("grid: MaxAbsDiff dimension mismatch")
	}
	m := 0.0
	for i := range g.Data {
		if d := math.Abs(g.Data[i] - o.Data[i]); d > m {
			m = d
		}
	}
	return m
}
