package grid

import (
	"bytes"
	"testing"
)

// FuzzRead exercises the binary surface parser with arbitrary input: it
// must never panic or over-allocate, and anything it accepts must
// round-trip back to identical bytes semantics (same geometry and
// samples).
func FuzzRead(f *testing.F) {
	// Seed corpus: a valid small grid, its truncations, and mutations.
	g := New(3, 2)
	g.Dx, g.Dy, g.X0, g.Y0 = 0.5, 2, -1, 4
	copy(g.Data, []float64{1, 2, 3, 4, 5, 6})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("RRSG"))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[9] = 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input: invariants must hold.
		if got.Nx < 1 || got.Ny < 1 || len(got.Data) != got.Nx*got.Ny {
			t.Fatalf("accepted grid with broken invariants: %dx%d len %d", got.Nx, got.Ny, len(got.Data))
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back.Nx != got.Nx || back.Ny != got.Ny {
			t.Fatal("round trip changed geometry")
		}
	})
}
