package fft

import (
	"fmt"
	"testing"
)

func BenchmarkForward1D(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := MustPlan(n)
			src := randSeq(n, 1)
			dst := make([]complex128, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Forward(dst, src)
			}
		})
	}
}

func BenchmarkForward2D(b *testing.B) {
	for _, workers := range []int{1, 0} {
		for _, n := range []int{256, 512, 1024} {
			name := fmt.Sprintf("n=%dx%d/workers=auto", n, n)
			if workers == 1 {
				name = fmt.Sprintf("n=%dx%d/workers=1", n, n)
			}
			b.Run(name, func(b *testing.B) {
				p := MustPlan2D(n, n)
				p.Workers = workers
				data := rand2D(n, n, 1)
				work := make([]complex128, len(data))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(work, data)
					p.Forward(work)
				}
			})
		}
	}
}
