package fft

import (
	"fmt"
	"math"
	"testing"

	"roughsurface/internal/rng"
)

// realSeq returns n deterministic N(0,1) samples.
func realSeq(n int, seed uint64) []float64 {
	g := rng.NewGaussian(seed)
	s := make([]float64, n)
	g.Fill(s)
	return s
}

// sizes1D covers the packed path (powers of two), the Bluestein
// fallback (composite and prime), odd lengths, and the degenerate edges.
var sizes1D = []int{1, 2, 4, 8, 16, 256, 1024, 3, 5, 6, 7, 12, 15, 100, 243, 1000}

func TestForwardRealMatchesComplex(t *testing.T) {
	for _, n := range sizes1D {
		src := realSeq(n, uint64(n))
		p := MustPlan(n)

		got := make([]complex128, p.HalfLen())
		p.ForwardReal(got, src)

		want := make([]complex128, n)
		for i, v := range src {
			want[i] = complex(v, 0)
		}
		p.Forward(want, want)

		if e := maxErr(got, want[:p.HalfLen()]); e > 1e-10 {
			t.Errorf("n=%d: half-spectrum err %g vs complex path", n, e)
		}
	}
}

func TestInverseRealRoundTrip(t *testing.T) {
	for _, n := range sizes1D {
		src := realSeq(n, uint64(2*n+1))
		p := MustPlan(n)

		spec := make([]complex128, p.HalfLen())
		p.ForwardReal(spec, src)
		got := make([]float64, n)
		p.InverseRealTo(got, spec)

		var e float64
		for i := range src {
			if d := math.Abs(got[i] - src[i]); d > e {
				e = d
			}
		}
		if e > 1e-10 {
			t.Errorf("n=%d: round-trip err %g", n, e)
		}
	}
}

func TestInverseRealUnscaledMatchesComplex(t *testing.T) {
	for _, n := range sizes1D {
		p := MustPlan(n)
		// A Hermitian half-spectrum with real self-conjugate bins.
		g := rng.NewGaussian(uint64(3*n + 7))
		spec := make([]complex128, p.HalfLen())
		for k := range spec {
			if k == 0 || 2*k == n {
				spec[k] = complex(g.Next(), 0)
			} else {
				spec[k] = complex(g.Next(), g.Next())
			}
		}

		// Reference: Hermitian extension through the complex plan.
		full := make([]complex128, n)
		copy(full, spec)
		for k := 1; 2*k < n; k++ {
			full[n-k] = complex(real(spec[k]), -imag(spec[k]))
		}
		want := make([]complex128, n)
		p.InverseUnscaled(want, full)

		got := make([]float64, n)
		p.InverseRealUnscaledTo(got, spec)
		var e float64
		for i := range got {
			if d := math.Abs(got[i] - real(want[i])); d > e {
				e = d
			}
			if d := math.Abs(imag(want[i])); d > 1e-9 {
				t.Fatalf("n=%d: reference inverse not real (%g)", n, d)
			}
		}
		if e > 1e-10*float64(n) {
			t.Errorf("n=%d: unscaled inverse err %g", n, e)
		}
	}
}

var sizes2D = []struct{ nx, ny int }{
	{4, 4}, {8, 8}, {16, 8}, {64, 32}, {256, 256},
	{6, 5}, {5, 7}, {12, 10}, {15, 16}, {100, 3}, {1, 8}, {8, 1},
}

func TestForwardReal2DMatchesComplex(t *testing.T) {
	for _, c := range sizes2D {
		n := c.nx * c.ny
		src := realSeq(n, uint64(n+13))
		p := MustPlan2D(c.nx, c.ny)
		hx := p.HalfNx()

		got := make([]complex128, hx*c.ny)
		p.ForwardReal(got, src)

		want := make([]complex128, n)
		for i, v := range src {
			want[i] = complex(v, 0)
		}
		p.Forward(want)

		var e float64
		for ky := 0; ky < c.ny; ky++ {
			for kx := 0; kx < hx; kx++ {
				d := got[ky*hx+kx] - want[ky*c.nx+kx]
				if a := math.Hypot(real(d), imag(d)); a > e {
					e = a
				}
			}
		}
		if e > 1e-10*float64(n) {
			t.Errorf("%dx%d: 2D half-spectrum err %g", c.nx, c.ny, e)
		}
	}
}

func TestInverseReal2DRoundTrip(t *testing.T) {
	for _, c := range sizes2D {
		n := c.nx * c.ny
		src := realSeq(n, uint64(2*n+3))
		p := MustPlan2D(c.nx, c.ny)

		spec := make([]complex128, p.HalfNx()*c.ny)
		p.ForwardReal(spec, src)
		got := make([]float64, n)
		p.InverseRealTo(got, spec)

		var e float64
		for i := range src {
			if d := math.Abs(got[i] - src[i]); d > e {
				e = d
			}
		}
		if e > 1e-10 {
			t.Errorf("%dx%d: 2D round-trip err %g", c.nx, c.ny, e)
		}
	}
}

// TestInverseRealUnscaled2DMatchesComplex drives the unscaled real
// inverse with a synthetic Hermitian half-spectrum — the exact shape
// dftgen feeds it — and checks it against the complex route on the
// Hermitian extension.
func TestInverseRealUnscaled2DMatchesComplex(t *testing.T) {
	for _, c := range sizes2D {
		n := c.nx * c.ny
		p := MustPlan2D(c.nx, c.ny)
		hx := p.HalfNx()

		// Build a full Hermitian spectrum, then slice the half.
		full := make([]complex128, n)
		g := rng.NewGaussian(uint64(5*n + 1))
		for ky := 0; ky < c.ny; ky++ {
			ry := (c.ny - ky) % c.ny
			for kx := 0; kx < c.nx; kx++ {
				rx := (c.nx - kx) % c.nx
				i, j := ky*c.nx+kx, ry*c.nx+rx
				if i == j {
					full[i] = complex(g.Next(), 0)
				} else if i < j {
					v := complex(g.Next(), g.Next())
					full[i] = v
					full[j] = complex(real(v), -imag(v))
				}
			}
		}
		half := make([]complex128, hx*c.ny)
		for ky := 0; ky < c.ny; ky++ {
			copy(half[ky*hx:(ky+1)*hx], full[ky*c.nx:ky*c.nx+hx])
		}

		want := make([]complex128, n)
		copy(want, full)
		p.InverseUnscaled(want)

		got := make([]float64, n)
		p.InverseRealUnscaledTo(got, half)

		var e float64
		for i := range got {
			if d := math.Abs(got[i] - real(want[i])); d > e {
				e = d
			}
		}
		if e > 1e-10*float64(n) {
			t.Errorf("%dx%d: 2D unscaled inverse err %g", c.nx, c.ny, e)
		}
	}
}

func TestForwardRealPanicsOnMismatch(t *testing.T) {
	p := MustPlan(8)
	defer func() {
		if recover() == nil {
			t.Error("want panic on short dst")
		}
	}()
	p.ForwardReal(make([]complex128, 4), make([]float64, 8))
}

func TestInverseReal2DPanicsOnMismatch(t *testing.T) {
	p := MustPlan2D(8, 4)
	defer func() {
		if recover() == nil {
			t.Error("want panic on short src")
		}
	}()
	p.InverseRealTo(make([]float64, 32), make([]complex128, 4))
}

func TestCachedPlan2DWorkersKeyed(t *testing.T) {
	a, err := CachedPlan2DWorkers(32, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedPlan2DWorkers(32, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (nx, ny, workers) should share one plan")
	}
	if a.Workers != 2 {
		t.Errorf("Workers = %d, want 2", a.Workers)
	}
	c, err := CachedPlan2DWorkers(32, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different worker bounds must not share a plan")
	}
	d, err := CachedPlan2D(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d == a || d.Workers != 0 {
		t.Errorf("default-bound plan should be its own entry (Workers=%d)", d.Workers)
	}
}

func BenchmarkForwardReal1D(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(sizeName(n), func(b *testing.B) {
			p := MustPlan(n)
			src := realSeq(n, 1)
			dst := make([]complex128, p.HalfLen())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ForwardReal(dst, src)
			}
		})
	}
}

func BenchmarkForwardReal2D(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			p := MustPlan2D(n, n)
			src := realSeq(n*n, 1)
			dst := make([]complex128, p.HalfNx()*n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ForwardReal(dst, src)
			}
		})
	}
}

func sizeName(n int) string { return fmt.Sprintf("n=%d", n) }
