package fft

import "math"

// Naive1D computes the DFT of src into dst by the O(N²) definition.
// It exists as an independent oracle for tests and for documentation of
// the sign/normalization conventions; production code uses Plan.
// When inverse is true it uses the e^{+j...} kernel and applies 1/N.
func Naive1D(dst, src []complex128, inverse bool) {
	n := len(src)
	if len(dst) != n {
		panic("fft: Naive1D length mismatch")
	}
	sign := -2 * math.Pi / float64(n)
	if inverse {
		sign = -sign
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for i := 0; i < n; i++ {
			s, c := math.Sincos(sign * float64(k) * float64(i))
			acc += src[i] * complex(c, s)
		}
		out[k] = acc
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for k := range out {
			out[k] *= inv
		}
	}
	copy(dst, out)
}

// Shift2D applies the standard fft-shift to row-major nx×ny data:
// the zero-frequency bin moves to (nx/2, ny/2). This is exactly the
// index permutation of paper eqns (34)–(35) that centers the
// convolution kernel. The result is written to dst, which must not
// alias src.
func Shift2D(dst, src []complex128, nx, ny int) {
	if len(dst) != nx*ny || len(src) != nx*ny {
		panic("fft: Shift2D length mismatch")
	}
	hx, hy := nx/2, ny/2
	for iy := 0; iy < ny; iy++ {
		ty := (iy + hy) % ny
		for ix := 0; ix < nx; ix++ {
			tx := (ix + hx) % nx
			dst[ty*nx+tx] = src[iy*nx+ix]
		}
	}
}

// ShiftReal2D is Shift2D for real-valued data.
func ShiftReal2D(dst, src []float64, nx, ny int) {
	if len(dst) != nx*ny || len(src) != nx*ny {
		panic("fft: ShiftReal2D length mismatch")
	}
	hx, hy := nx/2, ny/2
	for iy := 0; iy < ny; iy++ {
		ty := (iy + hy) % ny
		for ix := 0; ix < nx; ix++ {
			tx := (ix + hx) % nx
			dst[ty*nx+tx] = src[iy*nx+ix]
		}
	}
}
