package fft

import (
	"testing"
	"testing/quick"

	"roughsurface/internal/rng"
)

func TestForwardRealPairMatchesSeparate(t *testing.T) {
	cases := []struct{ nx, ny int }{{4, 4}, {8, 6}, {5, 7}, {16, 16}, {32, 8}}
	for _, c := range cases {
		n := c.nx * c.ny
		g := rng.NewGaussian(uint64(n))
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = g.Next()
			b[i] = g.Next()
		}
		p := MustPlan2D(c.nx, c.ny)

		fa := make([]complex128, n)
		fb := make([]complex128, n)
		p.ForwardRealPair(a, b, fa, fb)

		wantA := make([]complex128, n)
		wantB := make([]complex128, n)
		for i := range a {
			wantA[i] = complex(a[i], 0)
			wantB[i] = complex(b[i], 0)
		}
		p.Forward(wantA)
		p.Forward(wantB)

		if e := maxErr(fa, wantA); e > 1e-9*float64(n) {
			t.Errorf("%dx%d: A spectrum err %g", c.nx, c.ny, e)
		}
		if e := maxErr(fb, wantB); e > 1e-9*float64(n) {
			t.Errorf("%dx%d: B spectrum err %g", c.nx, c.ny, e)
		}
	}
}

func TestForwardRealPairPanicsOnMismatch(t *testing.T) {
	p := MustPlan2D(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	p.ForwardRealPair(make([]float64, 16), make([]float64, 15),
		make([]complex128, 16), make([]complex128, 16))
}

func TestQuickForwardRealPair(t *testing.T) {
	f := func(seed int64, rawNx, rawNy uint8) bool {
		nx := int(rawNx)%12 + 2
		ny := int(rawNy)%12 + 2
		n := nx * ny
		g := rng.NewGaussian(uint64(seed))
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = g.Next()
			b[i] = g.Next()
		}
		p := MustPlan2D(nx, ny)
		fa := make([]complex128, n)
		fb := make([]complex128, n)
		p.ForwardRealPair(a, b, fa, fb)
		wantA := make([]complex128, n)
		for i := range a {
			wantA[i] = complex(a[i], 0)
		}
		p.Forward(wantA)
		return maxErr(fa, wantA) <= 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
