// Package fft implements the discrete Fourier transforms the surface
// generators are built on: one-dimensional complex transforms for any
// length (iterative radix-2 for powers of two, Bluestein's chirp-z
// algorithm otherwise) and two-dimensional row–column transforms with
// optional parallel execution.
//
// Conventions follow the paper (eqns 11–12):
//
//	forward:  F[k] = Σ_n f[n]·e^{-j2πnk/N}        (unnormalized)
//	inverse:  f[n] = (1/N)·Σ_k F[k]·e^{+j2πnk/N}
//
// Plans hold precomputed twiddle tables and are safe for concurrent use;
// per-call scratch is drawn from an internal pool.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan holds the precomputed tables for transforms of a fixed length.
// The zero value is not usable; construct with NewPlan.
type Plan struct {
	n       int
	logN    int          // valid when power of two
	rev     []int        // bit-reversal permutation (power of two only)
	twiddle []complex128 // e^{-j2πk/n}, k = 0..n/2-1 (power of two only)
	twidInv []complex128 // conjugate table, so the hot loop never branches
	blu     *bluestein   // non power-of-two path
	scratch sync.Pool    // []complex128 of length n for out-of-place calls

	realOnce sync.Once // guards rfft construction (see realfft.go)
	rfft     *realFFT  // packed real-input path; nil when not applicable
}

// NewPlan creates a transform plan for sequences of length n (n >= 1).
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: invalid length %d", n)
	}
	p := &Plan{n: n}
	p.scratch.New = func() any { s := make([]complex128, n); return &s }
	if isPow2(n) {
		p.logN = bits.TrailingZeros(uint(n))
		p.rev = bitReversal(n)
		p.twiddle = twiddleTable(n)
		p.twidInv = make([]complex128, len(p.twiddle))
		for i, w := range p.twiddle {
			p.twidInv[i] = complex(real(w), -imag(w))
		}
		return p, nil
	}
	b, err := newBluestein(n)
	if err != nil {
		return nil, err
	}
	p.blu = b
	return p, nil
}

// MustPlan is NewPlan that panics on error; for lengths known-good at
// call sites (for example derived from validated grid sizes).
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// N reports the transform length the plan was built for.
func (p *Plan) N() int { return p.n }

// Forward computes the unnormalized forward DFT of src into dst.
// dst and src must have length N; they may be the same slice.
func (p *Plan) Forward(dst, src []complex128) {
	p.transform(dst, src, false)
}

// Inverse computes the inverse DFT (including the 1/N factor) of src
// into dst. dst and src must have length N; they may be the same slice.
func (p *Plan) Inverse(dst, src []complex128) {
	p.transform(dst, src, true)
	scale := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= scale
	}
}

// InverseUnscaled computes the inverse-kernel DFT (e^{+j...}) without the
// 1/N normalization. The generators use this where the paper's algebra
// carries the N factor explicitly (e.g. f = Σ v·u·e^{+j...}).
func (p *Plan) InverseUnscaled(dst, src []complex128) {
	p.transform(dst, src, true)
}

func (p *Plan) transform(dst, src []complex128, inverse bool) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fft: length mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src)))
	}
	if p.blu != nil {
		p.blu.transform(dst, src, inverse)
		return
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	p.radix2(dst, inverse)
}

// radix2 runs the iterative decimation-in-time transform in place. The
// first two stages are specialized (twiddles 1 and ∓j need no complex
// multiply) and the remaining stages read a per-direction twiddle table,
// keeping the inner loop branch-free.
func (p *Plan) radix2(a []complex128, inverse bool) {
	n := p.n
	if n == 1 {
		return
	}
	for i, j := range p.rev {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	// Stage size=2: butterflies with w = 1.
	for k := 0; k < n; k += 2 {
		a[k], a[k+1] = a[k]+a[k+1], a[k]-a[k+1]
	}
	if n == 2 {
		return
	}
	// Stage size=4: twiddles are 1 and −j (forward) or +j (inverse).
	for start := 0; start < n; start += 4 {
		x0, x1, x2, x3 := a[start], a[start+1], a[start+2], a[start+3]
		var t3 complex128
		if inverse {
			t3 = complex(-imag(x3), real(x3)) // +j·x3
		} else {
			t3 = complex(imag(x3), -real(x3)) // −j·x3
		}
		a[start] = x0 + x2
		a[start+2] = x0 - x2
		a[start+1] = x1 + t3
		a[start+3] = x1 - t3
	}
	tw := p.twiddle
	if inverse {
		tw = p.twidInv
	}
	for size := 8; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			i := 0
			for k := start; k < start+half; k++ {
				w := tw[i]
				t := w * a[k+half]
				a[k+half] = a[k] - t
				a[k] = a[k] + t
				i += step
			}
		}
	}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func bitReversal(n int) []int {
	logN := bits.TrailingZeros(uint(n))
	rev := make([]int, n)
	for i := 1; i < n; i++ {
		rev[i] = rev[i>>1]>>1 | (i&1)<<(logN-1)
	}
	return rev
}

func twiddleTable(n int) []complex128 {
	tw := make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	return tw
}

// getScratch borrows a length-N buffer from the plan's pool.
func (p *Plan) getScratch() *[]complex128 {
	return p.scratch.Get().(*[]complex128)
}

func (p *Plan) putScratch(s *[]complex128) { p.scratch.Put(s) }
