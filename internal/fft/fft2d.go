package fft

import (
	"fmt"
	"sync"

	"roughsurface/internal/par"
)

// Plan2D performs two-dimensional transforms of row-major data
// (ny rows of nx samples, index iy*nx+ix) by the row–column method.
// Row passes operate on contiguous memory; column passes gather each
// column into a pooled scratch buffer. Both passes are split across a
// worker pool sized by Workers.
type Plan2D struct {
	nx, ny int
	px, py *Plan

	// Workers bounds the number of concurrent goroutines used per pass.
	// Zero (the default) means par.DefaultWorkers(); 1 forces serial
	// execution, which some callers use for reproducible profiling.
	// Plans returned by CachedPlan2D/CachedPlan2DWorkers are shared:
	// do not mutate their Workers field — request the bound through
	// CachedPlan2DWorkers instead.
	Workers int

	// colBuf pools the per-goroutine column-block gather buffers so
	// steady-state transforms allocate nothing.
	colBuf sync.Pool
}

// colBlock is the number of columns gathered per block in column
// passes: 16 complex128 columns fill four 64-byte cache lines per row,
// so every touched line is consumed fully.
const colBlock = 16

// NewPlan2D creates a plan for nx×ny transforms. The 1D sub-plans are
// drawn from the process-wide plan cache (they are immutable and safe
// to share), so constructing many Plan2D values of the same geometry is
// cheap.
func NewPlan2D(nx, ny int) (*Plan2D, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("fft: invalid 2D size %dx%d", nx, ny)
	}
	px, err := CachedPlan(nx)
	if err != nil {
		return nil, err
	}
	py := px
	if ny != nx {
		py, err = CachedPlan(ny)
		if err != nil {
			return nil, err
		}
	}
	p := &Plan2D{nx: nx, ny: ny, px: px, py: py}
	p.colBuf.New = func() any { s := make([]complex128, colBlock*ny); return &s }
	return p, nil
}

// MustPlan2D is NewPlan2D that panics on error.
func MustPlan2D(nx, ny int) *Plan2D {
	p, err := NewPlan2D(nx, ny)
	if err != nil {
		panic(err)
	}
	return p
}

// Nx reports the row length (fast axis).
func (p *Plan2D) Nx() int { return p.nx }

// Ny reports the number of rows (slow axis).
func (p *Plan2D) Ny() int { return p.ny }

// Forward computes the unnormalized 2D DFT of data in place.
func (p *Plan2D) Forward(data []complex128) { p.transform(data, false, false) }

// Inverse computes the 2D inverse DFT of data in place, including the
// 1/(nx·ny) normalization.
func (p *Plan2D) Inverse(data []complex128) { p.transform(data, true, true) }

// InverseUnscaled computes the e^{+j...} transform without normalization.
func (p *Plan2D) InverseUnscaled(data []complex128) { p.transform(data, true, false) }

// workerBound resolves the plan's Workers field to a concrete bound.
func (p *Plan2D) workerBound() int {
	if p.Workers <= 0 {
		return par.DefaultWorkers()
	}
	return p.Workers
}

func (p *Plan2D) transform(data []complex128, inverse, scale bool) {
	if len(data) != p.nx*p.ny {
		panic(fmt.Sprintf("fft: 2D length mismatch: plan %dx%d, data %d", p.nx, p.ny, len(data)))
	}
	workers := p.workerBound()

	// Row pass: contiguous, in place.
	par.For(p.ny, workers, func(lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			row := data[iy*p.nx : (iy+1)*p.nx]
			p.px.transform(row, row, inverse)
		}
	})

	p.colPass(data, p.nx, inverse, workers)

	if scale {
		s := complex(1/float64(p.nx*p.ny), 0)
		par.For(len(data), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] *= s
			}
		})
	}
}

// colPass runs the length-ny transform down each of ncols columns of
// data (row-major with row stride ncols; ncols is nx for full-spectrum
// transforms and HalfNx for the real path). Columns are gathered and
// scattered in blocks so every touched cache line is consumed fully (a
// lone complex128 column stride wastes 3/4 of each 64-byte line); the
// block buffers come from the plan's pool so steady state allocates
// nothing.
func (p *Plan2D) colPass(data []complex128, ncols int, inverse bool, workers int) {
	blocks := (ncols + colBlock - 1) / colBlock
	par.For(blocks, workers, func(lo, hi int) {
		bp := p.colBuf.Get().(*[]complex128)
		buf := *bp
		for blk := lo; blk < hi; blk++ {
			x0 := blk * colBlock
			bw := colBlock
			if x0+bw > ncols {
				bw = ncols - x0
			}
			// Gather: row-major reads, column-major (contiguous per
			// column) writes into buf.
			for iy := 0; iy < p.ny; iy++ {
				src := data[iy*ncols+x0 : iy*ncols+x0+bw]
				for b, v := range src {
					buf[b*p.ny+iy] = v
				}
			}
			for b := 0; b < bw; b++ {
				col := buf[b*p.ny : (b+1)*p.ny]
				p.py.transform(col, col, inverse)
			}
			for iy := 0; iy < p.ny; iy++ {
				dst := data[iy*ncols+x0 : iy*ncols+x0+bw]
				for b := range dst {
					dst[b] = buf[b*p.ny+iy]
				}
			}
		}
		p.colBuf.Put(bp)
	})
}
