package fft

import (
	"fmt"

	"roughsurface/internal/par"
)

// Plan2D performs two-dimensional transforms of row-major data
// (ny rows of nx samples, index iy*nx+ix) by the row–column method.
// Row passes operate on contiguous memory; column passes gather each
// column into a scratch vector. Both passes are split across a worker
// pool sized by Workers.
type Plan2D struct {
	nx, ny int
	px, py *Plan

	// Workers bounds the number of concurrent goroutines used per pass.
	// Zero (the default) means par.DefaultWorkers(); 1 forces serial
	// execution, which some callers use for reproducible profiling.
	Workers int
}

// NewPlan2D creates a plan for nx×ny transforms.
func NewPlan2D(nx, ny int) (*Plan2D, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("fft: invalid 2D size %dx%d", nx, ny)
	}
	px, err := NewPlan(nx)
	if err != nil {
		return nil, err
	}
	py := px
	if ny != nx {
		py, err = NewPlan(ny)
		if err != nil {
			return nil, err
		}
	}
	return &Plan2D{nx: nx, ny: ny, px: px, py: py}, nil
}

// MustPlan2D is NewPlan2D that panics on error.
func MustPlan2D(nx, ny int) *Plan2D {
	p, err := NewPlan2D(nx, ny)
	if err != nil {
		panic(err)
	}
	return p
}

// Nx reports the row length (fast axis).
func (p *Plan2D) Nx() int { return p.nx }

// Ny reports the number of rows (slow axis).
func (p *Plan2D) Ny() int { return p.ny }

// Forward computes the unnormalized 2D DFT of data in place.
func (p *Plan2D) Forward(data []complex128) { p.transform(data, false, false) }

// Inverse computes the 2D inverse DFT of data in place, including the
// 1/(nx·ny) normalization.
func (p *Plan2D) Inverse(data []complex128) { p.transform(data, true, true) }

// InverseUnscaled computes the e^{+j...} transform without normalization.
func (p *Plan2D) InverseUnscaled(data []complex128) { p.transform(data, true, false) }

func (p *Plan2D) transform(data []complex128, inverse, scale bool) {
	if len(data) != p.nx*p.ny {
		panic(fmt.Sprintf("fft: 2D length mismatch: plan %dx%d, data %d", p.nx, p.ny, len(data)))
	}
	workers := p.Workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}

	// Row pass: contiguous, in place.
	par.For(p.ny, workers, func(lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			row := data[iy*p.nx : (iy+1)*p.nx]
			p.px.transform(row, row, inverse)
		}
	})

	// Column pass: gather/scatter in blocks of columns so every touched
	// cache line is consumed fully (a lone complex128 column stride
	// wastes 3/4 of each 64-byte line). Each goroutine owns one block
	// buffer.
	const colBlock = 16
	blocks := (p.nx + colBlock - 1) / colBlock
	par.For(blocks, workers, func(lo, hi int) {
		buf := make([]complex128, colBlock*p.ny)
		for blk := lo; blk < hi; blk++ {
			x0 := blk * colBlock
			bw := colBlock
			if x0+bw > p.nx {
				bw = p.nx - x0
			}
			// Gather: row-major reads, column-major (contiguous per
			// column) writes into buf.
			for iy := 0; iy < p.ny; iy++ {
				src := data[iy*p.nx+x0 : iy*p.nx+x0+bw]
				for b, v := range src {
					buf[b*p.ny+iy] = v
				}
			}
			for b := 0; b < bw; b++ {
				col := buf[b*p.ny : (b+1)*p.ny]
				p.py.transform(col, col, inverse)
			}
			for iy := 0; iy < p.ny; iy++ {
				dst := data[iy*p.nx+x0 : iy*p.nx+x0+bw]
				for b := range dst {
					dst[b] = buf[b*p.ny+iy]
				}
			}
		}
	})

	if scale {
		s := complex(1/float64(p.nx*p.ny), 0)
		par.For(len(data), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] *= s
			}
		})
	}
}
