package fft

import "math"

// sincosPi returns sin(πt), cos(πt) with the range reduction done on t
// itself (exact for representable t), which is substantially more
// accurate than math.Sincos(math.Pi*t) when t is large — exactly the
// regime Bluestein's quadratic chirp indices live in.
func sincosPi(t float64) (sin, cos float64) {
	// Reduce t to (-1, 1] half-turns.
	t = math.Mod(t, 2)
	if t > 1 {
		t -= 2
	} else if t <= -1 {
		t += 2
	}
	// Fold to |t| <= 1/2 where the polynomial kernels are most accurate.
	sign := 1.0
	if t > 0.5 {
		t = 1 - t
		sign = -1 // cos flips, sin unchanged
	} else if t < -0.5 {
		t = -1 - t
		sign = -1
	}
	s, c := math.Sincos(math.Pi * t)
	return s, sign * c
}
