package fft

import (
	"math/cmplx"
	"testing"
	"testing/quick"

	"roughsurface/internal/rng"
)

// Property: for random inputs of random (small) lengths, forward FFT
// agrees with the naive DFT and the round trip is the identity.
func TestQuickForwardAgreesWithNaive(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%200 + 1
		p := MustPlan(n)
		src := randSeq(n, seed)
		got := make([]complex128, n)
		want := make([]complex128, n)
		p.Forward(got, src)
		Naive1D(want, src, false)
		return maxErr(got, want) <= 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripIdentity(t *testing.T) {
	f := func(seed int64, rawN uint16) bool {
		n := int(rawN)%500 + 1
		p := MustPlan(n)
		src := randSeq(n, seed)
		tmp := make([]complex128, n)
		p.Forward(tmp, src)
		p.Inverse(tmp, tmp)
		return maxErr(tmp, src) <= 1e-9*float64(n+8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the DFT of a circular shift is a per-bin phase rotation.
func TestQuickShiftTheorem(t *testing.T) {
	f := func(seed int64, rawN uint8, rawS uint8) bool {
		n := int(rawN)%100 + 2
		s := int(rawS) % n
		p := MustPlan(n)
		x := randSeq(n, seed)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i+s)%n]
		}
		fx := make([]complex128, n)
		fs := make([]complex128, n)
		p.Forward(fx, x)
		p.Forward(fs, shifted)
		for k := 0; k < n; k++ {
			// shift by +s in time multiplies bin k by e^{+j2πks/n}
			w := cis(2 * float64(k) * float64(s) / float64(n))
			if cmplx.Abs(fs[k]-fx[k]*w) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: transforming a real even sequence yields a real spectrum.
func TestQuickRealEvenHasRealSpectrum(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%64 + 4
		g := rng.NewGaussian(uint64(seed))
		x := make([]complex128, n)
		for i := 0; i <= n/2; i++ {
			v := complex(g.Next(), 0)
			x[i] = v
			x[(n-i)%n] = v
		}
		p := MustPlan(n)
		fx := make([]complex128, n)
		p.Forward(fx, x)
		for k := range fx {
			if cmplx.Abs(complex(0, imag(fx[k]))) > 1e-9*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
