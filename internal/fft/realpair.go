package fft

import "fmt"

// ForwardRealPair computes the forward 2D DFTs of two equally sized
// real arrays with a single complex transform, using the classic
// packing z = a + j·b and the unpacking
//
//	A[k] = (Z[k] + conj(Z[−k]))/2,   B[k] = (Z[k] − conj(Z[−k]))/(2j)
//
// where −k is the index-reflected bin. This saves one full transform
// relative to transforming a and b separately — the dominant cost of
// the FFT convolution engine, whose inputs (noise window and kernel
// taps) are both real.
func (p *Plan2D) ForwardRealPair(a, b []float64, fa, fb []complex128) {
	n := p.nx * p.ny
	if len(a) != n || len(b) != n || len(fa) != n || len(fb) != n {
		panic(fmt.Sprintf("fft: ForwardRealPair length mismatch (plan %dx%d)", p.nx, p.ny))
	}
	z := fa // reuse fa as the packed workspace
	for i := range a {
		z[i] = complex(a[i], b[i])
	}
	p.Forward(z)
	// Unpack. Visit each (k, −k) pair once; self-paired bins (where
	// k == −k) have purely real A and B parts by symmetry.
	for ky := 0; ky < p.ny; ky++ {
		ry := (p.ny - ky) % p.ny
		for kx := 0; kx < p.nx; kx++ {
			rx := (p.nx - kx) % p.nx
			i := ky*p.nx + kx
			j := ry*p.nx + rx
			if i > j {
				continue
			}
			zi := z[i]
			zj := z[j]
			cj := complex(real(zj), -imag(zj))
			ci := complex(real(zi), -imag(zi))
			ai := (zi + cj) / 2
			bi := complex(imag(zi)+imag(zj), real(zj)-real(zi)) // (zi − cj)/(2j) × 2 … see below
			// (zi − cj)/(2j): with zi − cj = (re_i − re_j) + j(im_i + im_j),
			// dividing by 2j gives ((im_i + im_j) − j(re_i − re_j))/2.
			bi = complex(real(bi)/2, imag(bi)/2)
			aj := (zj + ci) / 2
			bj := complex(imag(zj)+imag(zi), real(zi)-real(zj))
			bj = complex(real(bj)/2, imag(bj)/2)
			fb[i] = bi
			fb[j] = bj
			// fa aliases z: write A values only after both reads.
			fa[i] = ai
			fa[j] = aj
		}
	}
}
