package fft

import (
	"fmt"
	"sync"
)

// bluestein implements the chirp-z reformulation of the DFT so that
// arbitrary lengths reduce to one power-of-two convolution:
//
//	X[k] = c[k] · Σ_n (x[n]·c[n]) · conj(c[k−n]),   c[n] = e^{-jπn²/N}
//
// The convolution with conj(c) is circular of length M = nextPow2(2N−1)
// and its transform is precomputed once per plan.
type bluestein struct {
	n     int
	m     int
	inner *Plan        // power-of-two plan of length m
	chirp []complex128 // c[n] = e^{-jπ n²/N}, n = 0..n-1 (forward sign)
	hHat  []complex128 // forward-FFT of the padded conj-chirp kernel
	pool  sync.Pool    // scratch of length m
}

func newBluestein(n int) (*bluestein, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: invalid bluestein length %d", n)
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	inner, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	b := &bluestein{n: n, m: m, inner: inner}
	b.pool.New = func() any { s := make([]complex128, m); return &s }

	b.chirp = make([]complex128, n)
	for i := 0; i < n; i++ {
		// exp(-jπ i²/N) is periodic in i² with period 2N; reduce first so
		// the angle stays small and accurate for large i.
		q := (int64(i) * int64(i)) % int64(2*n)
		b.chirp[i] = cis(-float64(q) / float64(n)) // angle = -π q / n, expressed in half-turns
	}

	h := make([]complex128, m)
	for i := 0; i < n; i++ {
		c := conj(b.chirp[i])
		h[i] = c
		if i != 0 {
			h[m-i] = c
		}
	}
	b.hHat = make([]complex128, m)
	inner.Forward(b.hHat, h)
	return b, nil
}

// transform computes dst = DFT(src) (or the conjugate-kernel transform
// when inverse is true, without the 1/N factor — the caller applies it).
func (b *bluestein) transform(dst, src []complex128, inverse bool) {
	sp := b.pool.Get().(*[]complex128)
	s := *sp
	defer b.pool.Put(sp)

	for i := 0; i < b.n; i++ {
		x := src[i]
		if inverse {
			x = conj(x)
		}
		s[i] = x * b.chirp[i]
	}
	for i := b.n; i < b.m; i++ {
		s[i] = 0
	}
	b.inner.Forward(s, s)
	for i := range s {
		s[i] *= b.hHat[i]
	}
	b.inner.Inverse(s, s)
	for k := 0; k < b.n; k++ {
		y := s[k] * b.chirp[k]
		if inverse {
			y = conj(y)
		}
		dst[k] = y
	}
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

// cis returns e^{jπt} for t expressed in half-turns.
func cis(t float64) complex128 {
	s, c := sincosPi(t)
	return complex(c, s)
}
