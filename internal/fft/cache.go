package fft

import "sync"

// Plan construction builds bit-reversal and twiddle tables (and, for
// Bluestein lengths, an inner power-of-two plan plus a transformed
// chirp); callers that transform many same-sized batches — the
// convolution engines, the autocovariance estimator, the figure
// pipeline — should share plans. CachedPlan/CachedPlan2D provide that
// sharing process-wide. Plans are safe for concurrent use, so a single
// cached instance can serve all goroutines.
var (
	planCache   sync.Map // int -> *Plan
	plan2DCache sync.Map // [3]int{nx, ny, workers} -> *Plan2D
)

// CachedPlan returns the shared plan for length n, building it on first
// use.
func CachedPlan(n int) (*Plan, error) {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan), nil
}

// CachedPlan2D returns the shared 2D plan for nx×ny with the default
// worker bound, building it on first use. The returned plan is shared:
// callers needing a non-default worker bound must use
// CachedPlan2DWorkers rather than mutating the Workers field.
func CachedPlan2D(nx, ny int) (*Plan2D, error) {
	return CachedPlan2DWorkers(nx, ny, 0)
}

// CachedPlan2DWorkers returns the shared 2D plan for nx×ny whose
// Workers field is pinned to the given bound. Plans are cached per
// (nx, ny, workers) triple so callers with an explicit parallelism
// policy (e.g. generators with Workers set) stop rebuilding twiddle and
// bit-reversal tables on every transform; the underlying 1D sub-plans
// are shared across all worker bounds regardless, so an extra cache
// entry costs only the Plan2D header and its buffer pool.
func CachedPlan2DWorkers(nx, ny, workers int) (*Plan2D, error) {
	if workers < 0 {
		workers = 0
	}
	key := [3]int{nx, ny, workers}
	if v, ok := plan2DCache.Load(key); ok {
		return v.(*Plan2D), nil
	}
	p, err := NewPlan2D(nx, ny)
	if err != nil {
		return nil, err
	}
	p.Workers = workers
	actual, _ := plan2DCache.LoadOrStore(key, p)
	return actual.(*Plan2D), nil
}
