package fft

import "sync"

// Plan construction builds bit-reversal and twiddle tables (and, for
// Bluestein lengths, an inner power-of-two plan plus a transformed
// chirp); callers that transform many same-sized batches — the
// convolution engines, the autocovariance estimator, the figure
// pipeline — should share plans. CachedPlan/CachedPlan2D provide that
// sharing process-wide. Plans are safe for concurrent use, so a single
// cached instance can serve all goroutines.
var (
	planCache   sync.Map // int -> *Plan
	plan2DCache sync.Map // [2]int -> *Plan2D
)

// CachedPlan returns the shared plan for length n, building it on first
// use.
func CachedPlan(n int) (*Plan, error) {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan), nil
}

// CachedPlan2D returns the shared 2D plan for nx×ny, building it on
// first use. The returned plan's Workers field is shared state: callers
// needing a non-default worker bound should construct their own plan
// with NewPlan2D instead of mutating the cached one.
func CachedPlan2D(nx, ny int) (*Plan2D, error) {
	key := [2]int{nx, ny}
	if v, ok := plan2DCache.Load(key); ok {
		return v.(*Plan2D), nil
	}
	p, err := NewPlan2D(nx, ny)
	if err != nil {
		return nil, err
	}
	actual, _ := plan2DCache.LoadOrStore(key, p)
	return actual.(*Plan2D), nil
}
