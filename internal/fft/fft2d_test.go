package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/rng"
)

func rand2D(nx, ny int, seed int64) []complex128 {
	g := rng.NewGaussian(uint64(seed))
	d := make([]complex128, nx*ny)
	for i := range d {
		d[i] = complex(g.Next(), g.Next())
	}
	return d
}

// naive2D computes the 2D DFT by two nested naive passes.
func naive2D(data []complex128, nx, ny int, inverse bool) []complex128 {
	out := append([]complex128(nil), data...)
	row := make([]complex128, nx)
	for iy := 0; iy < ny; iy++ {
		Naive1D(row, out[iy*nx:(iy+1)*nx], inverse)
		copy(out[iy*nx:(iy+1)*nx], row)
	}
	col := make([]complex128, ny)
	tmp := make([]complex128, ny)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			col[iy] = out[iy*nx+ix]
		}
		Naive1D(tmp, col, inverse)
		for iy := 0; iy < ny; iy++ {
			out[iy*nx+ix] = tmp[iy]
		}
	}
	return out
}

func TestPlan2DMatchesNaive(t *testing.T) {
	cases := []struct{ nx, ny int }{{4, 4}, {8, 4}, {5, 7}, {16, 12}, {32, 32}}
	for _, c := range cases {
		p := MustPlan2D(c.nx, c.ny)
		src := rand2D(c.nx, c.ny, int64(c.nx*100+c.ny))
		got := append([]complex128(nil), src...)
		p.Forward(got)
		want := naive2D(src, c.nx, c.ny, false)
		if e := maxErr(got, want); e > 1e-8 {
			t.Errorf("%dx%d forward max err %g", c.nx, c.ny, e)
		}
	}
}

func TestPlan2DRoundTrip(t *testing.T) {
	cases := []struct{ nx, ny int }{{8, 8}, {16, 8}, {9, 15}, {64, 64}, {128, 64}}
	for _, c := range cases {
		p := MustPlan2D(c.nx, c.ny)
		src := rand2D(c.nx, c.ny, 42)
		data := append([]complex128(nil), src...)
		p.Forward(data)
		p.Inverse(data)
		if e := maxErr(data, src); e > 1e-9 {
			t.Errorf("%dx%d roundtrip max err %g", c.nx, c.ny, e)
		}
	}
}

func TestPlan2DSerialEqualsParallel(t *testing.T) {
	nx, ny := 64, 48
	src := rand2D(nx, ny, 7)

	serial := MustPlan2D(nx, ny)
	serial.Workers = 1
	a := append([]complex128(nil), src...)
	serial.Forward(a)

	parallel := MustPlan2D(nx, ny)
	parallel.Workers = 8
	b := append([]complex128(nil), src...)
	parallel.Forward(b)

	if e := maxErr(a, b); e > 0 {
		// Identical plan tables and identical arithmetic order per row and
		// column mean the results must match bit-for-bit.
		t.Errorf("parallel result differs from serial by %g", e)
	}
}

func TestPlan2DSeparableTone(t *testing.T) {
	nx, ny := 32, 16
	kx, ky := 3, 5
	p := MustPlan2D(nx, ny)
	data := make([]complex128, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			ph := 2 * math.Pi * (float64(kx*ix)/float64(nx) + float64(ky*iy)/float64(ny))
			s, c := math.Sincos(ph)
			data[iy*nx+ix] = complex(c, s)
		}
	}
	p.Forward(data)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			want := complex128(0)
			if ix == kx && iy == ky {
				want = complex(float64(nx*ny), 0)
			}
			if cmplx.Abs(data[iy*nx+ix]-want) > 1e-8 {
				t.Fatalf("bin (%d,%d): got %v want %v", ix, iy, data[iy*nx+ix], want)
			}
		}
	}
}

func TestShift2DInvolutionEvenSizes(t *testing.T) {
	nx, ny := 8, 6
	src := rand2D(nx, ny, 3)
	once := make([]complex128, nx*ny)
	twice := make([]complex128, nx*ny)
	Shift2D(once, src, nx, ny)
	Shift2D(twice, once, nx, ny)
	if e := maxErr(twice, src); e > 0 {
		t.Errorf("Shift2D twice should be identity on even sizes, err %g", e)
	}
	if !approx.ExactC(once[(ny/2)*nx+nx/2], src[0]) {
		t.Error("Shift2D did not move bin (0,0) to the center")
	}
}

func TestShiftReal2DMatchesComplex(t *testing.T) {
	nx, ny := 6, 10
	srcR := make([]float64, nx*ny)
	srcC := make([]complex128, nx*ny)
	g := rng.NewGaussian(11)
	for i := range srcR {
		srcR[i] = g.Next()
		srcC[i] = complex(srcR[i], 0)
	}
	dstR := make([]float64, nx*ny)
	dstC := make([]complex128, nx*ny)
	ShiftReal2D(dstR, srcR, nx, ny)
	Shift2D(dstC, srcC, nx, ny)
	for i := range dstR {
		if !approx.Exact(dstR[i], real(dstC[i])) {
			t.Fatalf("mismatch at %d", i)
		}
	}
}
