package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"

	"roughsurface/internal/rng"
)

func randSeq(n int, seed int64) []complex128 {
	g := rng.NewGaussian(uint64(seed))
	s := make([]complex128, n)
	for i := range s {
		s[i] = complex(g.Next(), g.Next())
	}
	return s
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Lengths exercising radix-2, Bluestein primes, composites, and N=1.
var testLengths = []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 60, 64, 97, 100, 128, 255, 256, 1000, 1024}

func TestForwardMatchesNaive(t *testing.T) {
	for _, n := range testLengths {
		p := MustPlan(n)
		src := randSeq(n, int64(n))
		got := make([]complex128, n)
		want := make([]complex128, n)
		p.Forward(got, src)
		Naive1D(want, src, false)
		tol := 1e-9 * float64(n)
		if e := maxErr(got, want); e > tol {
			t.Errorf("n=%d: forward max err %g > %g", n, e, tol)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	for _, n := range testLengths {
		p := MustPlan(n)
		src := randSeq(n, int64(2*n+1))
		got := make([]complex128, n)
		want := make([]complex128, n)
		p.Inverse(got, src)
		Naive1D(want, src, true)
		tol := 1e-9 * float64(n)
		if e := maxErr(got, want); e > tol {
			t.Errorf("n=%d: inverse max err %g > %g", n, e, tol)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range testLengths {
		p := MustPlan(n)
		src := randSeq(n, int64(3*n+7))
		tmp := make([]complex128, n)
		p.Forward(tmp, src)
		p.Inverse(tmp, tmp)
		tol := 1e-10 * float64(n+8)
		if e := maxErr(tmp, src); e > tol {
			t.Errorf("n=%d: roundtrip max err %g > %g", n, e, tol)
		}
	}
}

func TestInPlaceEqualsOutOfPlace(t *testing.T) {
	for _, n := range []int{8, 12, 64, 100} {
		p := MustPlan(n)
		src := randSeq(n, 99)
		out := make([]complex128, n)
		p.Forward(out, src)
		inPlace := append([]complex128(nil), src...)
		p.Forward(inPlace, inPlace)
		if e := maxErr(out, inPlace); e > 1e-12 {
			t.Errorf("n=%d: in-place differs from out-of-place by %g", n, e)
		}
	}
}

func TestParseval(t *testing.T) {
	for _, n := range []int{16, 17, 64, 100, 256} {
		p := MustPlan(n)
		src := randSeq(n, int64(5*n))
		dst := make([]complex128, n)
		p.Forward(dst, src)
		var et, ef float64
		for i := range src {
			et += real(src[i])*real(src[i]) + imag(src[i])*imag(src[i])
			ef += real(dst[i])*real(dst[i]) + imag(dst[i])*imag(dst[i])
		}
		ef /= float64(n)
		if math.Abs(et-ef) > 1e-8*et {
			t.Errorf("n=%d: Parseval violated: time %g freq %g", n, et, ef)
		}
	}
}

func TestLinearity(t *testing.T) {
	n := 96 // Bluestein path
	p := MustPlan(n)
	a := randSeq(n, 1)
	b := randSeq(n, 2)
	alpha := complex(1.3, -0.4)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = alpha*a[i] + b[i]
	}
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	fsum := make([]complex128, n)
	p.Forward(fa, a)
	p.Forward(fb, b)
	p.Forward(fsum, sum)
	for i := range fsum {
		want := alpha*fa[i] + fb[i]
		if cmplx.Abs(fsum[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestImpulseGivesFlatSpectrum(t *testing.T) {
	for _, n := range []int{8, 15, 64} {
		p := MustPlan(n)
		src := make([]complex128, n)
		src[0] = 1
		dst := make([]complex128, n)
		p.Forward(dst, src)
		for k := range dst {
			if cmplx.Abs(dst[k]-1) > 1e-10 {
				t.Errorf("n=%d bin %d: impulse spectrum %v != 1", n, k, dst[k])
			}
		}
	}
}

func TestSingleToneLandsInOneBin(t *testing.T) {
	n := 64
	k0 := 5
	p := MustPlan(n)
	src := make([]complex128, n)
	for i := range src {
		s, c := math.Sincos(2 * math.Pi * float64(k0) * float64(i) / float64(n))
		src[i] = complex(c, s)
	}
	dst := make([]complex128, n)
	p.Forward(dst, src)
	for k := range dst {
		want := complex128(0)
		if k == k0 {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(dst[k]-want) > 1e-9 {
			t.Errorf("bin %d: got %v want %v", k, dst[k], want)
		}
	}
}

func TestNewPlanRejectsBadLength(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Error("NewPlan(0) should fail")
	}
	if _, err := NewPlan(-3); err == nil {
		t.Error("NewPlan(-3) should fail")
	}
}

func TestSincosPi(t *testing.T) {
	cases := []float64{0, 0.25, 0.5, 1, -1, 2, 1e9 + 0.5, -3.75}
	for _, tc := range cases {
		s, c := sincosPi(tc)
		// Reference via reduced argument.
		r := math.Mod(tc, 2)
		ws, wc := math.Sincos(math.Pi * r)
		if math.Abs(s-ws) > 1e-9 || math.Abs(c-wc) > 1e-9 {
			t.Errorf("sincosPi(%g) = (%g,%g), want (%g,%g)", tc, s, c, ws, wc)
		}
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	p := MustPlan(100) // Bluestein has per-call scratch: exercise the pool
	src := randSeq(100, 7)
	want := make([]complex128, 100)
	p.Forward(want, src)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		//lint:ignore parpolicy this test deliberately shares one plan across raw goroutines
		go func() {
			dst := make([]complex128, 100)
			for it := 0; it < 50; it++ {
				p.Forward(dst, src)
				if e := maxErr(dst, want); e > 1e-12 {
					done <- fmt.Errorf("concurrent transform diverged: %g", e)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
