package fft

import (
	"fmt"
	"math"

	"roughsurface/internal/par"
)

// Real-input fast path.
//
// Every generator in this repository transforms purely real data (noise
// windows, kernel taps, height fields) or inverts Hermitian spectra back
// to real fields — the same symmetry the paper's eqns 21–28 spend their
// bookkeeping on. A length-n real DFT therefore carries only n/2+1
// independent bins, and the remaining work in a complex transform is
// redundant. The fast path packs the even/odd samples of a real input
// into a complex sequence of half the length,
//
//	z[m] = x[2m] + j·x[2m+1],   Z = DFT_{n/2}(z),
//
// and recovers the half-spectrum (bins k = 0..n/2) from Z by the split
//
//	E[k] = (Z[k] + conj(Z[h−k]))/2    (spectrum of the even samples)
//	O[k] = (Z[k] − conj(Z[h−k]))/(2j) (spectrum of the odd samples)
//	X[k] = E[k] + w^k·O[k],           w = e^{−2πj/n}, h = n/2,
//
// for one complex transform of length n/2 — about half the arithmetic
// and half the memory traffic of the complex route. The inverse runs the
// identities backward. Only even power-of-two lengths have the packed
// path; odd and Bluestein lengths fall back to the complex transform
// behind the same half-spectrum interface, so callers never branch.
//
// Half-spectrum convention: bins k = 0..n/2 of the full DFT, with the
// remaining bins implied by X[n−k] = conj(X[k]). The imaginary parts of
// the self-conjugate bins (DC, and Nyquist for even n) must be zero for
// the inverse to be meaningful; the packed inverse ignores them.

// realFFT holds the half-length plan and unpack twiddles backing the
// packed real path of a power-of-two Plan. Built lazily on first use so
// plan construction does not recurse through ever-smaller inner plans.
type realFFT struct {
	half *Plan
	tw   []complex128 // e^{−2πjk/n}, k = 0..n/2
}

// realPath returns the packed-path tables, or nil when this plan's
// length has no packed path (Bluestein or n < 2).
func (p *Plan) realPath() *realFFT {
	p.realOnce.Do(func() {
		if p.blu != nil || p.n < 2 {
			return
		}
		h := p.n / 2
		tw := make([]complex128, h+1)
		for k := range tw {
			s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(p.n))
			tw[k] = complex(c, s)
		}
		p.rfft = &realFFT{half: MustPlan(h), tw: tw}
	})
	return p.rfft
}

// HalfLen reports the number of independent spectrum bins of a real
// length-N input: N/2 + 1.
func (p *Plan) HalfLen() int { return p.n/2 + 1 }

// ForwardReal computes bins 0..N/2 of the unnormalized forward DFT of
// the real sequence src into dst (length HalfLen). The remaining bins
// are implied by Hermitian symmetry. src is not modified.
func (p *Plan) ForwardReal(dst []complex128, src []float64) {
	if len(src) != p.n || len(dst) != p.HalfLen() {
		panic(fmt.Sprintf("fft: ForwardReal length mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src)))
	}
	r := p.realPath()
	if r == nil {
		p.forwardRealFallback(dst, src)
		return
	}
	h := p.n / 2
	z := dst[:h]
	for m := 0; m < h; m++ {
		z[m] = complex(src[2*m], src[2*m+1])
	}
	r.half.transform(z, z, false)
	// Unpack in place. The self-paired bin Z[0] yields the two real
	// edge bins; interior pairs (k, h−k) yield X[k] = E + w^k·O and
	// X[h−k] = conj(E − w^k·O) since E and O are spectra of real
	// sequences (E[h−k] = conj(E[k]), likewise O).
	z0 := z[0]
	dst[h] = complex(real(z0)-imag(z0), 0)
	dst[0] = complex(real(z0)+imag(z0), 0)
	for k, kr := 1, h-1; k <= kr; k, kr = k+1, kr-1 {
		zk, zr := z[k], z[kr]
		e := (zk + conj(zr)) / 2
		d := (zk - conj(zr)) / 2
		o := complex(imag(d), -real(d)) // O[k] = −j·d
		t := r.tw[k] * o
		dst[k] = e + t
		dst[kr] = conj(e - t)
	}
}

// InverseRealTo computes the real inverse DFT (including the 1/N
// factor) of the Hermitian half-spectrum src (length HalfLen) into dst
// (length N). src is not modified on the packed path but is undefined
// input to reuse afterward; treat it as consumed.
func (p *Plan) InverseRealTo(dst []float64, src []complex128) {
	p.inverseReal(dst, src, 1/float64(p.n))
}

// InverseRealUnscaledTo is InverseRealTo without the 1/N normalization:
// dst[m] = Σ_k X[k]·e^{+j2πkm/N} with X the Hermitian extension of src.
// The generators use it where the paper's algebra carries the N factor
// explicitly (e.g. f = Σ v·u·e^{+j...}).
func (p *Plan) InverseRealUnscaledTo(dst []float64, src []complex128) {
	p.inverseReal(dst, src, 1)
}

// inverseReal computes dst[m] = scale·Σ_{k=0}^{N−1} X[k]·e^{+j2πkm/N}.
func (p *Plan) inverseReal(dst []float64, src []complex128, scale float64) {
	if len(dst) != p.n || len(src) != p.HalfLen() {
		panic(fmt.Sprintf("fft: InverseRealTo length mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src)))
	}
	r := p.realPath()
	if r == nil {
		p.inverseRealFallback(dst, src, scale)
		return
	}
	h := p.n / 2
	sp := p.getScratch()
	y := (*sp)[:h]
	// Rebuild the packed spectrum: Y[k] = scale·(E'[k] + j·O'[k]) with
	// E'[k] = X[k] + conj(X[h−k]) and O'[k] = (X[k] − conj(X[h−k]))·w^{−k}
	// — twice the forward-split E and O, so Y = 2·scale·Z and the
	// unscaled half-length inverse below returns scale·N·x.
	cs := complex(scale, 0)
	x0, xh := src[0], src[h]
	y[0] = cs * complex(real(x0)+real(xh), real(x0)-real(xh))
	for k, kr := 1, h-1; k <= kr; k, kr = k+1, kr-1 {
		xk, xr := src[k], src[h-k]
		e := xk + conj(xr)
		d := xk - conj(xr)
		o := conj(r.tw[k]) * d
		y[k] = cs * complex(real(e)-imag(o), imag(e)+real(o))
		if k != kr {
			y[kr] = cs * complex(real(e)+imag(o), real(o)-imag(e))
		}
	}
	r.half.transform(y, y, true)
	for m := 0; m < h; m++ {
		dst[2*m] = real(y[m])
		dst[2*m+1] = imag(y[m])
	}
	p.putScratch(sp)
}

// forwardRealFallback routes through the complex transform, keeping the
// half-spectrum interface for lengths without a packed path.
func (p *Plan) forwardRealFallback(dst []complex128, src []float64) {
	sp := p.getScratch()
	s := *sp
	for i, v := range src {
		s[i] = complex(v, 0)
	}
	p.transform(s, s, false)
	copy(dst, s[:len(dst)])
	p.putScratch(sp)
}

// inverseRealFallback reconstructs the full Hermitian spectrum and
// routes through the complex transform.
func (p *Plan) inverseRealFallback(dst []float64, src []complex128, scale float64) {
	sp := p.getScratch()
	s := *sp
	copy(s[:len(src)], src)
	for k := 1; 2*k < p.n; k++ {
		s[p.n-k] = conj(src[k])
	}
	p.transform(s, s, true)
	for i := range dst {
		dst[i] = real(s[i]) * scale
	}
	p.putScratch(sp)
}

// HalfNx reports the half-spectrum row length of a real nx×ny input:
// nx/2 + 1.
func (p *Plan2D) HalfNx() int { return p.nx/2 + 1 }

// ForwardReal computes the 2D half-spectrum DFT of the real row-major
// array src (nx×ny): dst holds ny rows of HalfNx bins kx = 0..nx/2,
// row-major. The full spectrum is implied by the 2D Hermitian symmetry
// F[nx−kx, (ny−ky) mod ny] = conj(F[kx, ky]). src is not modified.
func (p *Plan2D) ForwardReal(dst []complex128, src []float64) {
	hx := p.HalfNx()
	if len(src) != p.nx*p.ny || len(dst) != hx*p.ny {
		panic(fmt.Sprintf("fft: 2D ForwardReal length mismatch: plan %dx%d, dst %d, src %d",
			p.nx, p.ny, len(dst), len(src)))
	}
	workers := p.workerBound()
	par.For(p.ny, workers, func(lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			p.px.ForwardReal(dst[iy*hx:(iy+1)*hx], src[iy*p.nx:(iy+1)*p.nx])
		}
	})
	p.colPass(dst, hx, false, workers)
}

// InverseRealTo computes the real 2D inverse DFT (including the
// 1/(nx·ny) factor) of the Hermitian half-spectrum src into dst
// (nx×ny). src is consumed: it is overwritten as column workspace.
func (p *Plan2D) InverseRealTo(dst []float64, src []complex128) {
	p.inverseReal(dst, src, 1/float64(p.nx*p.ny))
}

// InverseRealUnscaledTo is InverseRealTo without the 1/(nx·ny) factor.
// src is consumed.
func (p *Plan2D) InverseRealUnscaledTo(dst []float64, src []complex128) {
	p.inverseReal(dst, src, 1)
}

func (p *Plan2D) inverseReal(dst []float64, src []complex128, scale float64) {
	hx := p.HalfNx()
	if len(dst) != p.nx*p.ny || len(src) != hx*p.ny {
		panic(fmt.Sprintf("fft: 2D InverseRealTo length mismatch: plan %dx%d, dst %d, src %d",
			p.nx, p.ny, len(dst), len(src)))
	}
	workers := p.workerBound()
	p.colPass(src, hx, true, workers)
	par.For(p.ny, workers, func(lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			p.px.inverseReal(dst[iy*p.nx:(iy+1)*p.nx], src[iy*hx:(iy+1)*hx], scale)
		}
	})
}
