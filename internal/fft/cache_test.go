package fft

import (
	"sync"
	"testing"
)

func TestCachedPlanSharesInstance(t *testing.T) {
	a, err := CachedPlan(48)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedPlan(48)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache returned distinct plans for the same length")
	}
	c, err := CachedPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("cache conflated different lengths")
	}
	if _, err := CachedPlan(0); err == nil {
		t.Error("invalid length accepted")
	}
}

func TestCachedPlan2DSharesInstance(t *testing.T) {
	a, err := CachedPlan2D(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedPlan2D(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache returned distinct 2D plans")
	}
	c, err := CachedPlan2D(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("cache conflated transposed sizes")
	}
	if _, err := CachedPlan2D(-1, 4); err == nil {
		t.Error("invalid size accepted")
	}
}

func TestCachedPlanConcurrentFirstUse(t *testing.T) {
	// Hammer a fresh size from many goroutines; all must get a working
	// plan and identical results.
	const n = 96
	src := randSeq(n, 5)
	want := make([]complex128, n)
	MustPlan(n).Forward(want, src)
	//lint:ignore parpolicy this test deliberately races raw goroutines at the cache
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		//lint:ignore parpolicy this test deliberately races raw goroutines at the cache
		go func() {
			defer wg.Done()
			p, err := CachedPlan(n)
			if err != nil {
				errs <- err
				return
			}
			dst := make([]complex128, n)
			p.Forward(dst, src)
			if maxErr(dst, want) > 1e-12 {
				errs <- errMismatch
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCachedPlanStress drives both caches from many goroutines with
// overlapping sizes. Run under -race this exercises the cache's internal
// locking; the sync.Map records every instance handed out per size so we
// can assert each size maps to exactly one shared plan.
func TestCachedPlanStress(t *testing.T) {
	const workers = 16
	sizes1D := []int{8, 12, 48, 96, 128, 250}
	sizes2D := []struct{ nx, ny int }{{8, 8}, {16, 12}, {12, 16}, {32, 32}}
	var seen1D, seen2D sync.Map
	//lint:ignore parpolicy stress test must fan out raw goroutines to provoke cache races
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:ignore parpolicy stress test must fan out raw goroutines to provoke cache races
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				n := sizes1D[(w+rep)%len(sizes1D)]
				p, err := CachedPlan(n)
				if err != nil {
					t.Errorf("CachedPlan(%d): %v", n, err)
					return
				}
				if prev, loaded := seen1D.LoadOrStore(n, p); loaded && prev != p {
					t.Errorf("CachedPlan(%d) returned distinct instances", n)
				}
				sz := sizes2D[(w+rep)%len(sizes2D)]
				p2, err := CachedPlan2D(sz.nx, sz.ny)
				if err != nil {
					t.Errorf("CachedPlan2D(%d,%d): %v", sz.nx, sz.ny, err)
					return
				}
				key := [2]int{sz.nx, sz.ny}
				if prev, loaded := seen2D.LoadOrStore(key, p2); loaded && prev != p2 {
					t.Errorf("CachedPlan2D(%d,%d) returned distinct instances", sz.nx, sz.ny)
				}
			}
		}(w)
	}
	wg.Wait()
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent cached plan produced wrong transform" }
