package fft

import (
	"sync"
	"testing"
)

func TestCachedPlanSharesInstance(t *testing.T) {
	a, err := CachedPlan(48)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := CachedPlan(48)
	if a != b {
		t.Error("cache returned distinct plans for the same length")
	}
	c, _ := CachedPlan(64)
	if a == c {
		t.Error("cache conflated different lengths")
	}
	if _, err := CachedPlan(0); err == nil {
		t.Error("invalid length accepted")
	}
}

func TestCachedPlan2DSharesInstance(t *testing.T) {
	a, err := CachedPlan2D(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := CachedPlan2D(32, 16)
	if a != b {
		t.Error("cache returned distinct 2D plans")
	}
	c, _ := CachedPlan2D(16, 32)
	if a == c {
		t.Error("cache conflated transposed sizes")
	}
	if _, err := CachedPlan2D(-1, 4); err == nil {
		t.Error("invalid size accepted")
	}
}

func TestCachedPlanConcurrentFirstUse(t *testing.T) {
	// Hammer a fresh size from many goroutines; all must get a working
	// plan and identical results.
	const n = 96
	src := randSeq(n, 5)
	want := make([]complex128, n)
	MustPlan(n).Forward(want, src)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := CachedPlan(n)
			if err != nil {
				errs <- err
				return
			}
			dst := make([]complex128, n)
			p.Forward(dst, src)
			if maxErr(dst, want) > 1e-12 {
				errs <- errMismatch
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent cached plan produced wrong transform" }
