package inhomo

import (
	"math"
	"testing"
	"testing/quick"

	"roughsurface/internal/approx"
)

// mustPlateBlender builds a plate blender or fails the test.
func mustPlateBlender(t *testing.T, regions []Region) *PlateBlender {
	t.Helper()
	b, err := NewPlateBlender(regions)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// mustPointBlender builds a point blender or fails the test.
func mustPointBlender(t *testing.T, pts []Point, T float64, ncomp int) *PointBlender {
	t.Helper()
	b, err := NewPointBlender(pts, T, ncomp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func weightsOK(w []float64) bool {
	var sum float64
	for _, v := range w {
		if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
			return false
		}
		sum += v
	}
	return math.Abs(sum-1) < 1e-9
}

func TestRampShape(t *testing.T) {
	if !approx.Exact(ramp(0, 10), 0.5) {
		t.Error("ramp at boundary should be 1/2")
	}
	if !approx.Exact(ramp(10, 10), 1) || !approx.Exact(ramp(15, 10), 1) {
		t.Error("ramp deep inside should be 1")
	}
	if ramp(-10, 10) != 0 || ramp(-15, 10) != 0 {
		t.Error("ramp deep outside should be 0")
	}
	if got := ramp(5, 10); !approx.Exact(got, 0.75) {
		t.Errorf("ramp(5,10) = %g want 0.75", got)
	}
	// Hard boundary.
	if !approx.Exact(ramp(0, 0), 1) || ramp(-1e-9, 0) != 0 {
		t.Error("hard boundary misbehaves")
	}
}

func TestRectSupport(t *testing.T) {
	r := Rect{X0: 0, Y0: 0, X1: 100, Y1: 50, T: 10}
	if !approx.Exact(r.Support(50, 25), 1) {
		t.Error("core support should be 1")
	}
	if !approx.Exact(r.Support(0, 25), 0.5) {
		t.Error("edge support should be 1/2")
	}
	if r.Support(-10, 25) != 0 {
		t.Error("far outside support should be 0")
	}
	if got := r.Support(50, 45); !approx.Exact(got, 0.75) { // 5 inside the y=50 edge, T=10
		t.Errorf("support %g at y=45, want 0.75", got)
	}
	if got := r.Support(50, 55); !approx.Exact(got, 0.25) {
		t.Errorf("support %g at y=55, want 0.25", got)
	}
}

func TestRectInfiniteExtents(t *testing.T) {
	// A quadrant: x ≥ 0, y ≥ 0.
	q := Rect{X0: 0, Y0: 0, X1: math.Inf(1), Y1: math.Inf(1), T: 5}
	if !approx.Exact(q.Support(1000, 1000), 1) {
		t.Error("deep quadrant support")
	}
	if !approx.Exact(q.Support(0, 1000), 0.5) {
		t.Error("quadrant edge support")
	}
	if !approx.Exact(q.Support(0, 0), 0.5) {
		t.Error("quadrant corner support")
	}
}

func TestCircleSupport(t *testing.T) {
	c := Circle{CX: 10, CY: -5, R: 100, T: 20}
	if !approx.Exact(c.Support(10, -5), 1) {
		t.Error("center support")
	}
	if !approx.Exact(c.Support(110, -5), 0.5) {
		t.Error("rim support")
	}
	if c.Support(150, -5) != 0 {
		t.Error("outside support")
	}
	if got := c.Support(100, -5); !approx.Exact(got, 0.75) {
		t.Errorf("support %g at r=90, want 0.75", got)
	}
}

func TestComplementPartition(t *testing.T) {
	c := Circle{R: 50, T: 10}
	o := Complement{Inner: c}
	for _, p := range [][2]float64{{0, 0}, {45, 0}, {50, 0}, {55, 0}, {100, 100}} {
		if s := c.Support(p[0], p[1]) + o.Support(p[0], p[1]); math.Abs(s-1) > 1e-15 {
			t.Errorf("partition violated at %v: %g", p, s)
		}
	}
}

func quadrantBlender(T float64) *PlateBlender {
	inf := math.Inf(1)
	b, err := NewPlateBlender([]Region{
		Rect{X0: 0, Y0: 0, X1: inf, Y1: inf, T: T},   // first quadrant
		Rect{X0: -inf, Y0: 0, X1: 0, Y1: inf, T: T},  // second
		Rect{X0: -inf, Y0: -inf, X1: 0, Y1: 0, T: T}, // third
		Rect{X0: 0, Y0: -inf, X1: inf, Y1: 0, T: T},  // fourth
	})
	if err != nil {
		panic(err)
	}
	return b
}

func TestPlateQuadrants(t *testing.T) {
	b := quadrantBlender(10)
	w := make([]float64, 4)

	b.BlendWeights(w, 500, 500)
	if !approx.Exact(w[0], 1) || w[1] != 0 || w[2] != 0 || w[3] != 0 {
		t.Errorf("deep Q1 weights %v", w)
	}
	// On the positive y-axis, far from the origin: Q1/Q2 split evenly.
	b.BlendWeights(w, 0, 500)
	if math.Abs(w[0]-0.5) > 1e-12 || math.Abs(w[1]-0.5) > 1e-12 || w[2] != 0 || w[3] != 0 {
		t.Errorf("Q1/Q2 seam weights %v", w)
	}
	// At the origin all four quadrants meet.
	b.BlendWeights(w, 0, 0)
	for i := range w {
		if math.Abs(w[i]-0.25) > 1e-12 {
			t.Errorf("origin weights %v", w)
		}
	}
	// Linear ramp inside the band.
	b.BlendWeights(w, 5, 500)
	if !(w[0] > 0.5 && w[1] < 0.5) || math.Abs(w[0]+w[1]-1) > 1e-12 {
		t.Errorf("band weights %v", w)
	}
}

func TestPlateFallbackUniform(t *testing.T) {
	b := mustPlateBlender(t, []Region{
		Rect{X0: 0, Y0: 0, X1: 1, Y1: 1, T: 0.1},
		Rect{X0: 2, Y0: 2, X1: 3, Y1: 3, T: 0.1},
	})
	w := make([]float64, 2)
	b.BlendWeights(w, -100, -100) // coverage gap
	if !approx.Exact(w[0], 0.5) || !approx.Exact(w[1], 0.5) {
		t.Errorf("gap fallback weights %v", w)
	}
}

func TestPlateBlenderValidates(t *testing.T) {
	if _, err := NewPlateBlender(nil); err == nil {
		t.Error("empty region list accepted")
	}
}

func TestPointBlenderValidates(t *testing.T) {
	pts := []Point{{X: 0, Y: 0, Component: 0}}
	if _, err := NewPointBlender(nil, 10, 1); err == nil {
		t.Error("no points accepted")
	}
	if _, err := NewPointBlender(pts, 0, 1); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := NewPointBlender(pts, 10, 0); err == nil {
		t.Error("zero components accepted")
	}
	if _, err := NewPointBlender([]Point{{Component: 5}}, 10, 2); err == nil {
		t.Error("out-of-range component accepted")
	}
}

func TestPointBlenderTwoPointRamp(t *testing.T) {
	// Two points on the x-axis: the blend along x must be the same
	// linear cross-fade as a plate boundary at x=0 with half-width T.
	T := 50.0
	b, err := NewPointBlender([]Point{
		{X: -200, Y: 0, Component: 0},
		{X: 200, Y: 0, Component: 1},
	}, T, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 2)

	b.BlendWeights(w, 0, 0) // on the bisector
	if math.Abs(w[0]-0.5) > 1e-12 || math.Abs(w[1]-0.5) > 1e-12 {
		t.Errorf("bisector weights %v", w)
	}
	b.BlendWeights(w, 25, 0) // halfway into the band on the right side
	if math.Abs(w[1]-0.75) > 1e-12 || math.Abs(w[0]-0.25) > 1e-12 {
		t.Errorf("band weights %v, want (0.25, 0.75)", w)
	}
	b.BlendWeights(w, 60, 0) // beyond the band: pure component 1
	if w[0] != 0 || !approx.Exact(w[1], 1) {
		t.Errorf("outside-band weights %v", w)
	}
}

func TestPointBlenderContinuityAcrossBisector(t *testing.T) {
	b := mustPointBlender(t, []Point{
		{X: -100, Y: 30, Component: 0},
		{X: 100, Y: -30, Component: 1},
	}, 40, 2)
	wl := make([]float64, 2)
	wr := make([]float64, 2)
	// Perpendicular bisector passes through the origin; probe both sides.
	for _, yy := range []float64{0, 17, -23} {
		// Find the bisector x at this y: points equidistant.
		// Bisector: |p-a|² = |p-b|² ⇒ 200x·... solve numerically by bisection.
		lo, hi := -50.0, 50.0
		f := func(x float64) float64 {
			da := (x+100)*(x+100) + (yy-30)*(yy-30)
			db := (x-100)*(x-100) + (yy+30)*(yy+30)
			return da - db
		}
		for it := 0; it < 100; it++ {
			mid := (lo + hi) / 2
			if f(lo)*f(mid) <= 0 {
				hi = mid
			} else {
				lo = mid
			}
		}
		xb := (lo + hi) / 2
		b.BlendWeights(wl, xb-1e-7, yy)
		b.BlendWeights(wr, xb+1e-7, yy)
		for i := range wl {
			if math.Abs(wl[i]-wr[i]) > 1e-5 {
				t.Errorf("discontinuity at bisector y=%g: %v vs %v", yy, wl, wr)
			}
		}
	}
}

func TestPointBlenderSharedComponentsAccumulate(t *testing.T) {
	// Two coincident-component points both near the probe: their weights
	// add up in the component bin.
	b := mustPointBlender(t, []Point{
		{X: -10, Y: 0, Component: 0},
		{X: 10, Y: 0, Component: 0},
		{X: 0, Y: 1000, Component: 1},
	}, 100, 2)
	w := make([]float64, 2)
	b.BlendWeights(w, 0, 0)
	if !(w[0] > 0.9) || !weightsOK(w) {
		t.Errorf("shared-component weights %v", w)
	}
}

func TestPointBlenderCoincidentPoints(t *testing.T) {
	b := mustPointBlender(t, []Point{
		{X: 0, Y: 0, Component: 0},
		{X: 0, Y: 0, Component: 1},
	}, 10, 2)
	w := make([]float64, 2)
	b.BlendWeights(w, 3, 4)
	if !weightsOK(w) {
		t.Errorf("coincident-point weights invalid: %v", w)
	}
	if math.Abs(w[0]-w[1]) > 1e-12 {
		t.Errorf("coincident points should split evenly, got %v", w)
	}
}

func TestQuickPointWeightsPartitionOfUnity(t *testing.T) {
	f := func(seed int64, px, py float64) bool {
		// A fixed mildly irregular 5-point configuration; probe anywhere.
		b, err := NewPointBlender([]Point{
			{X: 0, Y: 0, Component: 0},
			{X: 130, Y: 40, Component: 1},
			{X: -90, Y: 110, Component: 2},
			{X: 60, Y: -150, Component: 1},
			{X: -40, Y: -60, Component: 0},
		}, 35, 3)
		if err != nil {
			return false
		}
		if math.IsNaN(px) || math.IsInf(px, 0) || math.IsNaN(py) || math.IsInf(py, 0) {
			return true
		}
		w := make([]float64, 3)
		b.BlendWeights(w, math.Mod(px, 1e6), math.Mod(py, 1e6))
		return weightsOK(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPlateWeightsPartitionOfUnity(t *testing.T) {
	b := quadrantBlender(25)
	f := func(px, py float64) bool {
		if math.IsNaN(px) || math.IsInf(px, 0) || math.IsNaN(py) || math.IsInf(py, 0) {
			return true
		}
		w := make([]float64, 4)
		b.BlendWeights(w, math.Mod(px, 1e6), math.Mod(py, 1e6))
		return weightsOK(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUniformBlender(t *testing.T) {
	b := UniformBlender{M: 3, Index: 1}
	w := make([]float64, 3)
	b.BlendWeights(w, 123, -456)
	if w[0] != 0 || !approx.Exact(w[1], 1) || w[2] != 0 {
		t.Errorf("uniform blender weights %v", w)
	}
}
