package inhomo

import (
	"math"
	"testing"
	"testing/quick"

	"roughsurface/internal/approx"
	"roughsurface/internal/convgen"
	"roughsurface/internal/grid"
	"roughsurface/internal/rng"
	"roughsurface/internal/spectrum"
	"roughsurface/internal/stats"
)

// bruteEDT2 is the O(N²·M) reference implementation.
func bruteEDT2(mask []bool, nx, ny int) []float64 {
	out := make([]float64, nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			best := math.Inf(1)
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					if !mask[j*nx+i] {
						continue
					}
					d := float64((x-i)*(x-i) + (y-j)*(y-j))
					if d < best {
						best = d
					}
				}
			}
			out[y*nx+x] = best
		}
	}
	return out
}

func TestEDTSingleFeature(t *testing.T) {
	nx, ny := 7, 5
	mask := make([]bool, nx*ny)
	mask[2*nx+3] = true // feature at (3,2)
	got := edt2(mask, nx, ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			want := float64((x-3)*(x-3) + (y-2)*(y-2))
			if !approx.Exact(got[y*nx+x], want) {
				t.Fatalf("(%d,%d): %g want %g", x, y, got[y*nx+x], want)
			}
		}
	}
}

func TestEDTEmptyAndFull(t *testing.T) {
	mask := make([]bool, 12)
	d := edt2(mask, 4, 3)
	for _, v := range d {
		if !math.IsInf(v, 1) {
			t.Fatal("empty mask should give +Inf everywhere")
		}
	}
	for i := range mask {
		mask[i] = true
	}
	d = edt2(mask, 4, 3)
	for _, v := range d {
		if v != 0 {
			t.Fatal("full mask should give 0 everywhere")
		}
	}
}

func TestQuickEDTMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, rawNx, rawNy uint8) bool {
		nx := int(rawNx)%14 + 2
		ny := int(rawNy)%14 + 2
		src := rng.NewSource(seed)
		mask := make([]bool, nx*ny)
		any := false
		for i := range mask {
			mask[i] = src.Float64() < 0.3
			any = any || mask[i]
		}
		got := edt2(mask, nx, ny)
		want := bruteEDT2(mask, nx, ny)
		for i := range got {
			if !any {
				if !math.IsInf(got[i], 1) {
					return false
				}
				continue
			}
			if !approx.Exact(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func checkerMask() *grid.Grid {
	// 32×32 map: label 1 inside a blob, label 0 elsewhere.
	m := grid.NewCentered(32, 32, 4, 4)
	for iy := 10; iy < 24; iy++ {
		for ix := 6; ix < 20; ix++ {
			m.Set(ix, iy, 1)
		}
	}
	return m
}

func TestMaskRegionSupportGeometry(t *testing.T) {
	m := checkerMask()
	r := NewMaskRegion(m, 1, 8)
	// Deep inside the blob (cell (12,16) → physical via mask geometry).
	x, y := m.XY(12, 16)
	if got := r.Support(x, y); !approx.Exact(got, 1) {
		t.Errorf("deep inside support %g", got)
	}
	// Deep outside.
	x, y = m.XY(1, 1)
	if got := r.Support(x, y); got != 0 {
		t.Errorf("deep outside support %g", got)
	}
	// Just inside vs just outside the boundary: supports straddle 1/2.
	xin, yin := m.XY(6, 16)   // boundary cell inside
	xout, yout := m.XY(5, 16) // adjacent outside cell
	sin := r.Support(xin, yin)
	sout := r.Support(xout, yout)
	if !(sin > 0.5 && sout < 0.5 && sin < 1 && sout > 0) {
		t.Errorf("boundary supports: in %g out %g", sin, sout)
	}
	// Symmetry about the cell edge.
	if math.Abs((sin-0.5)-(0.5-sout)) > 1e-12 {
		t.Errorf("boundary ramp asymmetric: %g vs %g", sin, sout)
	}
}

func TestRegionsFromLabels(t *testing.T) {
	m := checkerMask()
	labels, regions := RegionsFromLabels(m, 8)
	if len(labels) != 2 || labels[0] != 0 || labels[1] != 1 {
		t.Fatalf("labels %v", labels)
	}
	// The two regions partition (approximately) everywhere: supports sum
	// to ~1 at any probe.
	for _, p := range [][2]int{{1, 1}, {12, 16}, {6, 16}, {31, 31}, {5, 16}} {
		x, y := m.XY(p[0], p[1])
		s := regions[0].Support(x, y) + regions[1].Support(x, y)
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("cell %v: supports sum to %g", p, s)
		}
	}
}

// TestGenerateFromLabelMask: end to end — a labeled map drives an
// inhomogeneous surface whose zones carry their own statistics.
func TestGenerateFromLabelMask(t *testing.T) {
	m := checkerMask() // physical extent 128×128, blob ≈ 56×56 centered at (-12, 4)
	_, regions := RegionsFromLabels(m, 8)
	blender, err := NewPlateBlender(regions)
	if err != nil {
		t.Fatal(err)
	}
	calm := convgen.MustDesign(spectrum.MustGaussian(0.3, 5, 5), 1, 1, 8, 1e-4)
	rough := convgen.MustDesign(spectrum.MustGaussian(2.0, 5, 5), 1, 1, 8, 1e-4)
	gen := MustGenerator([]*convgen.Kernel{calm, rough}, blender, 606)
	surf := gen.GenerateCentered(128, 128)

	// Blob core in surface lattice coordinates: the blob spans physical
	// x ∈ [-40, 16), y ∈ [-24, 40); take a patch near its center.
	blob := surf.Sub(40, 72, 24, 24) // physical (-24..0, 8..32): inside
	plain := surf.Sub(4, 4, 24, 24)  // far corner: outside
	sb := stats.Describe(blob.Data).Std
	sp := stats.Describe(plain.Data).Std
	if !(sb > 3*sp) {
		t.Errorf("mask-driven contrast missing: blob %g plain %g", sb, sp)
	}
}
