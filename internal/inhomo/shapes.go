package inhomo

import (
	"fmt"
	"math"

	"roughsurface/internal/grid"
)

// Sector is an annular sector region: radii in [R0, R1] and angle in
// [A0, A1] (radians, counterclockwise, A1 > A0, span at most 2π) around
// center (CX, CY), with transition half-width T. The paper's remark that
// the plate-oriented method "can easily be applied to other cases such
// as a circular region" extends to sectors — the natural shape for
// pie-slice habitats like Fig. 4's.
type Sector struct {
	CX, CY float64
	R0, R1 float64
	A0, A1 float64
	T      float64
}

// Support implements Region: the signed distance to the sector boundary
// is the minimum of the radial margins and the angular margins (the
// latter converted to arc length at the point's radius).
func (s Sector) Support(x, y float64) float64 {
	dx, dy := x-s.CX, y-s.CY
	r := math.Hypot(dx, dy)
	d := math.Min(r-s.R0, s.R1-r)

	span := s.A1 - s.A0
	if span < 2*math.Pi {
		theta := math.Atan2(dy, dx) - s.A0
		for theta < 0 {
			theta += 2 * math.Pi
		}
		for theta >= 2*math.Pi {
			theta -= 2 * math.Pi
		}
		var dAng float64
		if theta <= span {
			dAng = math.Min(theta, span-theta) * r // inside the wedge
		} else {
			dAng = -math.Min(theta-span, 2*math.Pi-theta) * r
		}
		d = math.Min(d, dAng)
	}
	return ramp(d, s.T)
}

// SupportRange implements SupportRanger conservatively: the radial
// margin alone bounds the support from above (the angular margin can
// only shrink it), and no coverage is claimed (lo = 0) because bounding
// the angular term over a rectangle is not worth the geometry.
func (s Sector) SupportRange(x0, y0, x1, y1 float64) (lo, hi float64) {
	dmin, dmax := rectDistRange(x0, y0, x1, y1, s.CX, s.CY)
	_, dhi := axisRange(dmin, dmax, s.R0, s.R1)
	return 0, ramp(dhi, s.T)
}

// Polygon is a simple (non-self-intersecting) polygon region with
// transition half-width T. Vertices are listed in order (either
// winding); the boundary closes automatically.
type Polygon struct {
	X, Y []float64
	T    float64
}

// NewPolygon validates the vertex lists.
func NewPolygon(xs, ys []float64, t float64) (Polygon, error) {
	if len(xs) != len(ys) {
		return Polygon{}, fmt.Errorf("inhomo: polygon coordinate lists differ: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 3 {
		return Polygon{}, fmt.Errorf("inhomo: polygon needs at least 3 vertices, got %d", len(xs))
	}
	return Polygon{X: xs, Y: ys, T: t}, nil
}

// Support implements Region using the signed Euclidean distance to the
// polygon boundary: positive inside (even-odd rule), negative outside.
func (p Polygon) Support(x, y float64) float64 {
	return ramp(p.signedDistance(x, y), p.T)
}

// SupportRange implements SupportRanger through the 1-Lipschitz
// property of the Euclidean signed distance: over a rectangle with
// center c and half-diagonal ρ, d stays within [d(c)−ρ, d(c)+ρ].
func (p Polygon) SupportRange(x0, y0, x1, y1 float64) (lo, hi float64) {
	rho := math.Hypot(x1-x0, y1-y0) / 2
	d := p.signedDistance((x0+x1)/2, (y0+y1)/2)
	return rampRange(d-rho, d+rho, p.T)
}

func (p Polygon) signedDistance(x, y float64) float64 {
	n := len(p.X)
	inside := false
	minD2 := math.Inf(1)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		xi, yi := p.X[i], p.Y[i]
		xj, yj := p.X[j], p.Y[j]
		// Even-odd crossing test.
		if (yi > y) != (yj > y) {
			xCross := xi + (y-yi)/(yj-yi)*(xj-xi)
			if x < xCross {
				inside = !inside
			}
		}
		// Distance to segment (xj,yj)-(xi,yi).
		ex, ey := xi-xj, yi-yj
		px, py := x-xj, y-yj
		t := 0.0
		if l2 := ex*ex + ey*ey; l2 > 0 {
			t = (px*ex + py*ey) / l2
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
		}
		ddx := px - t*ex
		ddy := py - t*ey
		if d2 := ddx*ddx + ddy*ddy; d2 < minD2 {
			minD2 = d2
		}
	}
	d := math.Sqrt(minD2)
	if !inside {
		d = -d
	}
	return d
}

// Streamer generates an unbounded-in-y inhomogeneous surface as
// successive strips, the inhomogeneous analogue of convgen.Streamer.
// Blend weights are functions of absolute position and the noise of
// absolute lattice index, so strips join seamlessly.
type Streamer struct {
	gen     *Generator
	i0      int64
	nx      int
	stripNy int
	nextJ   int64
}

// NewStreamer starts a streamer over columns [i0, i0+nx) beginning at
// lattice row j0, producing strips of stripNy rows per Next call.
func NewStreamer(gen *Generator, i0, j0 int64, nx, stripNy int) *Streamer {
	if nx < 1 || stripNy < 1 {
		panic(fmt.Sprintf("inhomo: invalid streamer geometry nx=%d stripNy=%d", nx, stripNy))
	}
	return &Streamer{gen: gen, i0: i0, nx: nx, stripNy: stripNy, nextJ: j0}
}

// Next returns the next strip and advances.
func (s *Streamer) Next() *grid.Grid {
	strip := s.gen.GenerateAt(s.i0, s.nextJ, s.nx, s.stripNy)
	s.nextJ += int64(s.stripNy)
	return strip
}

// NextRow reports the lattice row the next strip will start at.
func (s *Streamer) NextRow() int64 { return s.nextJ }
