package inhomo

import (
	"roughsurface/internal/convgen"
	"roughsurface/internal/grid"
	"roughsurface/internal/par"
	"roughsurface/internal/rng"
	"roughsurface/internal/simd"
)

// GenerateAt32 is GenerateAt at float32 render precision: every engine
// below runs the same path selection as the reference API, with the
// component convolutions and the weight blend instantiated at float32
// (blendRows, convgen.GenerateAtInto32). Agreement with the float64
// engine is tolerance-gated in precision_test.go; the serving daemon
// uses this path for f32 tiles.
func (g *Generator) GenerateAt32(i0, j0 int64, nx, ny int) *grid.Grid32 {
	out := grid.New32(nx, ny)
	g.GenerateAtInto32(out, i0, j0)
	return out
}

// GenerateAtInto32 renders the window with lower lattice corner
// (i0, j0) into the caller-owned float32 grid, mirroring
// GenerateAtInto's contract (size fixed by the grid, metadata
// overwritten, pooled per-tile scratch).
func (g *Generator) GenerateAtInto32(out *grid.Grid32, i0, j0 int64) {
	if out == nil || out.Nx < 1 || out.Ny < 1 {
		panic("inhomo: GenerateAtInto32 needs a non-empty destination grid")
	}
	out.Dx, out.Dy = g.dx, g.dy
	out.X0 = float64(i0) * g.dx
	out.Y0 = float64(j0) * g.dy
	if g.Reference {
		// The literal eqn (46) evaluator exists to validate the fast
		// paths, so it stays float64-only; its f32 view is the f64
		// result rounded once per sample.
		ref := grid.New(out.Nx, out.Ny)
		g.generateReference(ref, i0, j0)
		simd.Narrow(out.Data, ref.Data)
		return
	}
	nx, ny := out.Nx, out.Ny
	switch g.Engine {
	case EngineDense:
		g.generateFast32(out, i0, j0)
		return
	case EngineTiled:
		tiles := grid.Tiling(nx, ny, g.tileSize(), g.tileSize())
		g.generateTiled32(out, i0, j0, tiles, g.tileMasks(tiles, i0, j0))
		return
	}
	if _, ok := g.blender.(SupportMasker); !ok {
		g.generateFast32(out, i0, j0)
		return
	}
	tiles := grid.Tiling(nx, ny, g.tileSize(), g.tileSize())
	masks := g.tileMasks(tiles, i0, j0)
	if shared := sharedMask(masks); shared != nil {
		g.generateFastMasked32(out, i0, j0, shared)
		return
	}
	g.generateTiled32(out, i0, j0, tiles, masks)
}

// noisePlane32 fills one float32 noise plane covering the window plus
// the largest component halo. Every component reads the same seed's
// field, so a single plane serves all tiles and all components — the
// Box–Muller transform (log/sqrt/cos per sample, the dominant cost of
// small-kernel tile rendering) runs once per lattice point instead of
// once per tile per active component.
func (g *Generator) noisePlane32(i0, j0 int64, nx, ny int) (plane []float32, pnx int, pi0, pj0 int64) {
	var l, r, t, b int
	for _, k := range g.kernels {
		l = max(l, k.CX)
		r = max(r, k.Nx-1-k.CX)
		t = max(t, k.CY)
		b = max(b, k.Ny-1-k.CY)
	}
	pi0, pj0 = i0-int64(l), j0-int64(t)
	pnx = nx + l + r
	pny := ny + t + b
	plane = make([]float32, pnx*pny)
	field := rng.NewField(g.seed)
	par.For(pny, g.Workers, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			field.FillRow32(plane[row*pnx:(row+1)*pnx], pi0, pj0+int64(row))
		}
	})
	return plane, pnx, pi0, pj0
}

// generateTiled32 is generateTiled with float32 tile rendering against
// a shared noise plane.
func (g *Generator) generateTiled32(out *grid.Grid32, i0, j0 int64, tiles []grid.Tile, masks [][]bool) {
	plane, pnx, pi0, pj0 := g.noisePlane32(i0, j0, out.Nx, out.Ny)
	par.Dynamic(len(tiles), g.Workers, func(t int) {
		g.renderTile32(out, i0, j0, tiles[t], masks[t], plane, pnx, pi0, pj0)
	})
}

// renderTile32 is renderTile at float32: active components convolve
// from the shared noise plane into pooled f32 scratch, and the float32
// instantiation of blendRows fuses the w·F accumulation. Weights stay
// float64 out of the blender and round once per use.
func (g *Generator) renderTile32(out *grid.Grid32, i0, j0 int64, t grid.Tile, mask []bool,
	plane []float32, pnx int, pi0, pj0 int64) {
	ar := g.arenas.Get().(*tileArena)
	defer g.arenas.Put(ar)
	active := ar.active[:0]
	for m, on := range mask {
		if on {
			active = append(active, m)
		}
	}
	if len(active) == 0 {
		// Same broken-masker guard as the f64 path.
		for m := range mask {
			active = append(active, m)
		}
	}
	ar.active = active

	base := t.Y0*out.Nx + t.X0
	ti0, tj0 := i0+int64(t.X0), j0+int64(t.Y0)
	if len(active) == 1 {
		g.convs[active[0]].ConvolveNoiseInto32(out.Data[base:], out.Nx, plane, pnx, pi0, pj0, ti0, tj0, t.Nx, t.Ny, 1)
		return
	}

	n := t.Nx * t.Ny
	if cap(ar.fields32) < len(active) {
		ar.fields32 = append(ar.fields32, make([][]float32, len(active)-len(ar.fields32))...)
	}
	fields := ar.fields32[:len(active)]
	for s, m := range active {
		fields[s] = growFloats32(fields[s], n)
		g.convs[m].ConvolveNoiseInto32(fields[s], t.Nx, plane, pnx, pi0, pj0, ti0, tj0, t.Nx, t.Ny, 1)
	}
	ar.fields32 = fields[:cap(fields)]
	w := growFloats(ar.w, len(mask))
	ar.w = w
	blendRows(g.blender, out.Data[base:], out.Nx, t.Nx, fields, active, 0, t.Ny, ti0, tj0, g.dx, g.dy, w)
}

// generateFast32 is generateFast at float32.
func (g *Generator) generateFast32(out *grid.Grid32, i0, j0 int64) {
	active := make([]bool, len(g.kernels))
	for i := range active {
		active[i] = true
	}
	g.generateFastMasked32(out, i0, j0, active)
}

// generateFastMasked32 is generateFastMasked at float32: component
// fields render once at f32 over the whole window and the dense blend
// sweep runs the float32 blendRows instantiation.
func (g *Generator) generateFastMasked32(out *grid.Grid32, i0, j0 int64, active []bool) {
	nx, ny := out.Nx, out.Ny
	count := 0
	last := 0
	for m, on := range active {
		if on {
			count++
			last = m
		}
	}
	if count == 1 {
		g.convs[last].GenerateAtInto32(out.Data, nx, i0, j0, nx, ny, g.Workers)
		return
	}
	// One shared noise plane serves every component when they all run
	// the direct engine for this window; a component whose kernel is
	// large enough to pick FFT keeps the self-contained path (the FFT
	// engine amortizes better than plane reuse there).
	allDirect := true
	for m, cg := range g.convs {
		if active[m] && cg.EngineFor(nx, ny) != convgen.EngineDirect {
			allDirect = false
			break
		}
	}
	var plane []float32
	var pnx int
	var pi0, pj0 int64
	if allDirect {
		plane, pnx, pi0, pj0 = g.noisePlane32(i0, j0, nx, ny)
	}
	fields := make([][]float32, 0, count)
	act := make([]int, 0, count)
	for m, cg := range g.convs {
		if !active[m] {
			continue
		}
		f := make([]float32, nx*ny)
		if allDirect {
			cg.ConvolveNoiseInto32(f, nx, plane, pnx, pi0, pj0, i0, j0, nx, ny, g.Workers)
		} else {
			cg.GenerateAtInto32(f, nx, i0, j0, nx, ny, g.Workers)
		}
		fields = append(fields, f)
		act = append(act, m)
	}
	par.For(ny, g.Workers, func(lo, hi int) {
		w := make([]float64, len(g.kernels))
		blendRows(g.blender, out.Data, nx, nx, fields, act, lo, hi, i0, j0, g.dx, g.dy, w)
	})
}
