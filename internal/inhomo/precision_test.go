package inhomo

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/grid"
)

// f32BlendTol gates the float32 render path against the float64
// reference: 1e-4 of the largest component σh (2.0 in threeKernels),
// the same budget as the convgen agreement gate (DESIGN.md §13). The
// blend adds one weight rounding and a single-precision accumulation
// over ≤3 terms per sample, both far below the convolution's own
// rounding noise.
const f32BlendTol = 1e-4 * 2.0

// TestInhomoGenerate32AgreesWithF64 drives every engine and blender
// kind through the f32 path and checks per-sample agreement with the
// float64 engine of the same configuration.
func TestInhomoGenerate32AgreesWithF64(t *testing.T) {
	ks := threeKernels(t)
	for name, blender := range tiledBlenders(t) {
		t.Run(name, func(t *testing.T) {
			for _, engine := range []Engine{EngineAuto, EngineDense, EngineTiled} {
				g64 := MustGenerator(ks, blender, 42)
				g64.Engine = engine
				g64.TileSize = 16
				g32 := MustGenerator(ks, blender, 42)
				g32.Engine = engine
				g32.TileSize = 16
				const nx, ny = 48, 40
				want := g64.GenerateAt(-24, -20, nx, ny)
				got := g32.GenerateAt32(-24, -20, nx, ny)
				if !approx.Exact(got.Dx, want.Dx) || !approx.Exact(got.X0, want.X0) ||
					!approx.Exact(got.Y0, want.Y0) {
					t.Fatalf("engine %v: metadata mismatch: %+v", engine, got)
				}
				for i, v := range got.Data {
					if d := math.Abs(float64(v) - want.Data[i]); d > f32BlendTol {
						t.Fatalf("engine %v: sample %d f32=%g f64=%g (|Δ|=%.3g > %.3g)",
							engine, i, v, want.Data[i], d, f32BlendTol)
					}
				}
			}
		})
	}
}

// TestInhomoReference32 pins the f32 view of the literal eqn (46)
// evaluator to the f64 reference rounded once per sample — the
// Reference path narrows rather than re-deriving, so agreement is
// exact.
func TestInhomoReference32(t *testing.T) {
	ks := threeKernels(t)
	blender := tiledBlenders(t)["plate"]
	ref := MustGenerator(ks, blender, 7)
	ref.Reference = true
	want := ref.GenerateAt(-6, -5, 12, 10)
	got := ref.GenerateAt32(-6, -5, 12, 10)
	for i, v := range got.Data {
		if !approx.Exact(float64(v), float64(float32(want.Data[i]))) {
			t.Fatalf("sample %d = %g, want narrow(%g)", i, v, want.Data[i])
		}
	}
}

// TestGenerateAtInto32Reuse: rendering two windows through one reused
// grid must equal fresh allocations (pooled scratch reset correctly)
// and overwrite the metadata each time.
func TestGenerateAtInto32Reuse(t *testing.T) {
	ks := threeKernels(t)
	g := MustGenerator(ks, tiledBlenders(t)["plate-circle"], 9)
	g.Engine = EngineTiled
	g.TileSize = 16
	out := grid.New32(40, 32)
	for _, origin := range []struct{ i0, j0 int64 }{{-20, -16}, {5, 9}, {-20, -16}} {
		g.GenerateAtInto32(out, origin.i0, origin.j0)
		want := g.GenerateAt32(origin.i0, origin.j0, 40, 32)
		if !approx.Exact(out.X0, want.X0) || !approx.Exact(out.Y0, want.Y0) {
			t.Fatalf("origin (%d,%d): metadata not overwritten: %+v", origin.i0, origin.j0, out)
		}
		for i, v := range out.Data {
			if !approx.Exact(float64(v), float64(want.Data[i])) {
				t.Fatalf("origin (%d,%d): sample %d = %g, want %g", origin.i0, origin.j0, i, v, want.Data[i])
			}
		}
	}
}

func TestGenerateAtInto32Panics(t *testing.T) {
	g := MustGenerator(threeKernels(t), UniformBlender{M: 3}, 1)
	for name, fn := range map[string]func(){
		"nil grid":   func() { g.GenerateAtInto32(nil, 0, 0) },
		"empty grid": func() { g.GenerateAtInto32(&grid.Grid32{}, 0, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		})
	}
}
