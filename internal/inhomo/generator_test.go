package inhomo

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/convgen"
	"roughsurface/internal/spectrum"
	"roughsurface/internal/stats"
)

func smallKernels(t *testing.T) []*convgen.Kernel {
	t.Helper()
	a, err := convgen.Design(spectrum.MustGaussian(1.0, 4, 4), 1, 1, 6, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := convgen.Design(spectrum.MustExponential(2.0, 5, 5), 1, 1, 6, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	return []*convgen.Kernel{a, b}
}

func TestNewGeneratorValidates(t *testing.T) {
	ks := smallKernels(t)
	if _, err := NewGenerator(nil, UniformBlender{M: 1}, 1); err == nil {
		t.Error("no kernels accepted")
	}
	if _, err := NewGenerator(ks, nil, 1); err == nil {
		t.Error("nil blender accepted")
	}
	if _, err := NewGenerator(ks, UniformBlender{M: 3}, 1); err == nil {
		t.Error("component count mismatch accepted")
	}
	// Mismatched spacing.
	odd, err := convgen.Design(spectrum.MustGaussian(1, 4, 4), 2, 2, 6, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGenerator([]*convgen.Kernel{ks[0], odd}, UniformBlender{M: 2}, 1); err == nil {
		t.Error("mismatched spacing accepted")
	}
}

// TestReferenceEqualsFastPath pins the blended-fields fast path to the
// literal eqn (46) evaluation: exchanging the sums is exact algebra, so
// the two paths must agree to round-off.
func TestReferenceEqualsFastPath(t *testing.T) {
	ks := smallKernels(t)
	blender, err := NewPlateBlender([]Region{
		Rect{X0: math.Inf(-1), Y0: math.Inf(-1), X1: 0, Y1: math.Inf(1), T: 4},
		Rect{X0: 0, Y0: math.Inf(-1), X1: math.Inf(1), Y1: math.Inf(1), T: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	fast := MustGenerator(ks, blender, 42)
	ref := MustGenerator(ks, blender, 42)
	ref.Reference = true

	a := fast.GenerateAt(-12, -10, 24, 20)
	b := ref.GenerateAt(-12, -10, 24, 20)
	if d := a.MaxAbsDiff(b); d > 1e-9 {
		t.Errorf("fast path deviates from literal eqn (46) by %g", d)
	}
}

func TestReferenceEqualsFastPathPointOriented(t *testing.T) {
	ks := smallKernels(t)
	blender, err := NewPointBlender([]Point{
		{X: -15, Y: 0, Component: 0},
		{X: 15, Y: 5, Component: 1},
		{X: 0, Y: -20, Component: 0},
	}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	fast := MustGenerator(ks, blender, 7)
	ref := MustGenerator(ks, blender, 7)
	ref.Reference = true
	a := fast.GenerateAt(-10, -10, 20, 20)
	b := ref.GenerateAt(-10, -10, 20, 20)
	if d := a.MaxAbsDiff(b); d > 1e-9 {
		t.Errorf("point-oriented fast path deviates by %g", d)
	}
}

// TestUniformBlendReducesToHomogeneous: with all weight on one
// component, the inhomogeneous generator must reproduce the plain
// convolution generator exactly (same seed, same kernel).
func TestUniformBlendReducesToHomogeneous(t *testing.T) {
	ks := smallKernels(t)
	gen := MustGenerator(ks, UniformBlender{M: 2, Index: 1}, 13)
	inSurf := gen.GenerateAt(-16, -16, 32, 32)

	conv := convgen.NewGenerator(ks[1], 13)
	homSurf := conv.GenerateAt(-16, -16, 32, 32)
	if d := inSurf.MaxAbsDiff(homSurf); d > 1e-9 {
		t.Errorf("degenerate blend differs from homogeneous generation by %g", d)
	}
}

func TestWorkerInvariance(t *testing.T) {
	ks := smallKernels(t)
	blender := mustPlateBlender(t, []Region{
		Rect{X0: math.Inf(-1), Y0: math.Inf(-1), X1: 0, Y1: math.Inf(1), T: 4},
		Rect{X0: 0, Y0: math.Inf(-1), X1: math.Inf(1), Y1: math.Inf(1), T: 4},
	})
	g1 := MustGenerator(ks, blender, 3)
	g1.Workers = 1
	g8 := MustGenerator(ks, blender, 3)
	g8.Workers = 8
	a := g1.GenerateAt(0, 0, 48, 40)
	b := g8.GenerateAt(0, 0, 48, 40)
	if d := a.MaxAbsDiff(b); d > 1e-12 {
		t.Errorf("worker count changed output by %g", d)
	}
}

// TestPerRegionStatistics: two half-planes with different heights — deep
// in each core the measured std must match that region's h.
func TestPerRegionStatistics(t *testing.T) {
	left := convgen.MustDesign(spectrum.MustGaussian(1.0, 6, 6), 1, 1, 8, 1e-4)
	right := convgen.MustDesign(spectrum.MustGaussian(3.0, 6, 6), 1, 1, 8, 1e-4)
	blender := mustPlateBlender(t, []Region{
		Rect{X0: math.Inf(-1), Y0: math.Inf(-1), X1: 0, Y1: math.Inf(1), T: 10},
		Rect{X0: 0, Y0: math.Inf(-1), X1: math.Inf(1), Y1: math.Inf(1), T: 10},
	})
	gen := MustGenerator([]*convgen.Kernel{left, right}, blender, 2025)
	surf := gen.GenerateCentered(256, 256)

	// Cores: columns well away from the x=0 seam.
	coreL := surf.Sub(0, 0, 96, 256)
	coreR := surf.Sub(160, 0, 96, 256)
	stdL := stats.Describe(coreL.Data).Std
	stdR := stats.Describe(coreR.Data).Std
	if math.Abs(stdL-1.0) > 0.2 {
		t.Errorf("left core std %g, want 1.0", stdL)
	}
	if math.Abs(stdR-3.0) > 0.6 {
		t.Errorf("right core std %g, want 3.0", stdR)
	}
	if !(stdR > 2*stdL) {
		t.Errorf("height contrast not reproduced: %g vs %g", stdL, stdR)
	}
}

// TestTransitionIsGradual: along the seam the per-column std must climb
// monotonically (within noise) from the low region to the high region —
// no jump discontinuity, which is the whole point of the algorithm.
func TestTransitionIsGradual(t *testing.T) {
	lowK := convgen.MustDesign(spectrum.MustGaussian(0.5, 6, 6), 1, 1, 8, 1e-4)
	highK := convgen.MustDesign(spectrum.MustGaussian(2.5, 6, 6), 1, 1, 8, 1e-4)
	T := 30.0
	blender := mustPlateBlender(t, []Region{
		Rect{X0: math.Inf(-1), Y0: math.Inf(-1), X1: 0, Y1: math.Inf(1), T: T},
		Rect{X0: 0, Y0: math.Inf(-1), X1: math.Inf(1), Y1: math.Inf(1), T: T},
	})
	gen := MustGenerator([]*convgen.Kernel{lowK, highK}, blender, 88)
	surf := gen.GenerateCentered(384, 384)

	colStd := func(ix int) float64 {
		col := make([]float64, surf.Ny)
		for iy := 0; iy < surf.Ny; iy++ {
			col[iy] = surf.At(ix, iy)
		}
		return stats.Describe(col).Std
	}
	// Sample the variance profile across the transition.
	xs := []int{64, 128, 176, 192, 208, 256, 320} // lattice columns; seam at 192
	stds := make([]float64, len(xs))
	for i, ix := range xs {
		stds[i] = colStd(ix)
	}
	if stds[0] > 0.8 || stds[len(stds)-1] < 1.8 {
		t.Fatalf("profile endpoints implausible: %v", stds)
	}
	// Midpoint of the transition should sit between the extremes.
	mid := stds[3]
	if !(mid > stds[0] && mid < stds[len(stds)-1]) {
		t.Errorf("transition midpoint %g not between %g and %g", mid, stds[0], stds[len(stds)-1])
	}
}

func TestWeightMapPartition(t *testing.T) {
	ks := smallKernels(t)
	blender := mustPlateBlender(t, []Region{
		Circle{R: 10, T: 4},
		Complement{Inner: Circle{R: 10, T: 4}},
	})
	gen := MustGenerator(ks, blender, 1)
	w0 := gen.WeightMap(0, -16, -16, 32, 32)
	w1 := gen.WeightMap(1, -16, -16, 32, 32)
	for i := range w0.Data {
		if s := w0.Data[i] + w1.Data[i]; math.Abs(s-1) > 1e-12 {
			t.Fatalf("weight maps do not partition unity at %d: %g", i, s)
		}
	}
	if !approx.Exact(w0.At(16, 16), 1) { // lattice origin = circle center
		t.Error("circle center should be pure component 0")
	}
}

func TestWeightMapPanicsOnBadIndex(t *testing.T) {
	ks := smallKernels(t)
	gen := MustGenerator(ks, UniformBlender{M: 2}, 1)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	gen.WeightMap(5, 0, 0, 4, 4)
}

// TestSeamlessTiling: like the homogeneous case, two overlapping windows
// of an inhomogeneous surface agree on the overlap (the blend weights
// are functions of absolute position, the noise of absolute lattice
// index).
func TestSeamlessTiling(t *testing.T) {
	ks := smallKernels(t)
	blender := mustPointBlender(t, []Point{
		{X: -20, Y: 0, Component: 0},
		{X: 20, Y: 0, Component: 1},
	}, 10, 2)
	gen := MustGenerator(ks, blender, 9)
	a := gen.GenerateAt(-32, -32, 64, 64)
	b := gen.GenerateAt(0, -32, 64, 64)
	for j := 0; j < 64; j++ {
		for i := 0; i < 32; i++ {
			va := a.At(32+i, j)
			vb := b.At(i, j)
			if math.Abs(va-vb) > 1e-9 {
				t.Fatalf("tile mismatch at (%d,%d): %g vs %g", i, j, va, vb)
			}
		}
	}
}
