package inhomo

import (
	"math"
	"testing"
)

// orderRect normalizes a fuzzed rectangle to x0 <= x1, y0 <= y1.
func orderRect(x0, y0, x1, y1 float64) (float64, float64, float64, float64) {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return x0, y0, x1, y1
}

func allFinite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// clampInto pulls a fuzzed probe coordinate into [lo, hi].
func clampInto(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}

// FuzzSupportMaskPlate is the conservativeness property of the
// plate-oriented mask: wherever BlendWeights assigns component m a
// nonzero weight inside a query rectangle, SupportMask over that
// rectangle must report m active. Fuzzed over random rectangles and
// circles (the paper's §3.1 geometries) plus the complement that closes
// the partition.
func FuzzSupportMaskPlate(f *testing.F) {
	f.Add(-10.0, 10.0, 2.0, 0.0, 0.0, 8.0, 3.0, -20.0, -20.0, 20.0, 20.0, 1.0, 1.0)
	f.Add(0.0, 1.0, 0.0, 5.0, -5.0, 0.5, 0.0, -1.0, -1.0, 1.0, 1.0, 0.0, 0.0)
	f.Add(-3.0, 40.0, 11.0, -7.0, 2.0, 30.0, 0.1, -50.0, -4.0, 3.0, 60.0, -2.0, 55.0)
	f.Fuzz(func(t *testing.T, rX0, rX1, rT, cX, cY, cR, cT, qx0, qy0, qx1, qy1, px, py float64) {
		if !allFinite(rX0, rX1, rT, cX, cY, cR, cT, qx0, qy0, qx1, qy1, px, py) {
			t.Skip()
		}
		rX0, _, rX1, _ = orderRect(rX0, 0, rX1, 0)
		qx0, qy0, qx1, qy1 = orderRect(qx0, qy0, qx1, qy1)
		circle := Circle{CX: cX, CY: cY, R: math.Abs(cR), T: math.Abs(cT)}
		regions := []Region{
			Rect{X0: rX0, Y0: math.Inf(-1), X1: rX1, Y1: math.Inf(1), T: math.Abs(rT)},
			circle,
			Complement{Inner: circle},
		}
		b, err := NewPlateBlender(regions)
		if err != nil {
			t.Skip()
		}
		mask := b.SupportMask(qx0, qy0, qx1, qy1)
		x := clampInto(px, qx0, qx1)
		y := clampInto(py, qy0, qy1)
		w := make([]float64, len(regions))
		b.BlendWeights(w, x, y)
		for m, v := range w {
			if v > 0 && !mask[m] {
				t.Fatalf("component %d has weight %g at (%g,%g) inside [%g,%g]x[%g,%g] but mask says inactive",
					m, v, x, y, qx0, qx1, qy0, qy1)
			}
		}
	})
}

// FuzzSupportMaskPoint is the same conservativeness property for the
// point-oriented blender, fuzzed over representative point placement,
// transition half-width, query rectangle, and probe.
func FuzzSupportMaskPoint(f *testing.F) {
	f.Add(-20.0, 0.0, 20.0, 0.0, 0.0, 30.0, 10.0, -32.0, -32.0, 32.0, 32.0, 1.0, 2.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.5, -2.0, -2.0, 2.0, 2.0, 0.0, 0.0)
	f.Add(5.0, -3.0, 4.0, 8.0, -60.0, 2.0, 25.0, 0.0, 0.0, 10.0, 90.0, 7.0, 44.0)
	f.Fuzz(func(t *testing.T, x0, y0, x1, y1, x2, y2, T, qx0, qy0, qx1, qy1, px, py float64) {
		if !allFinite(x0, y0, x1, y1, x2, y2, T, qx0, qy0, qx1, qy1, px, py) {
			t.Skip()
		}
		if !(math.Abs(T) > 0) {
			t.Skip()
		}
		qx0, qy0, qx1, qy1 = orderRect(qx0, qy0, qx1, qy1)
		b, err := NewPointBlender([]Point{
			{X: x0, Y: y0, Component: 0},
			{X: x1, Y: y1, Component: 1},
			{X: x2, Y: y2, Component: 2},
		}, math.Abs(T), 3)
		if err != nil {
			t.Skip()
		}
		mask := b.SupportMask(qx0, qy0, qx1, qy1)
		x := clampInto(px, qx0, qx1)
		y := clampInto(py, qy0, qy1)
		w := make([]float64, 3)
		b.BlendWeights(w, x, y)
		for m, v := range w {
			if v > 0 && !mask[m] {
				t.Fatalf("component %d has weight %g at (%g,%g) inside [%g,%g]x[%g,%g] but mask says inactive",
					m, v, x, y, qx0, qx1, qy0, qy1)
			}
		}
	})
}

// TestSupportRangeBoundsSampled: for every shape with a SupportRange,
// dense sampling inside the query rectangle must stay within [lo, hi].
func TestSupportRangeBoundsSampled(t *testing.T) {
	shapes := map[string]Region{
		"rect":        Rect{X0: -6, Y0: -3, X1: 6, Y1: 9, T: 2},
		"rect-hard":   Rect{X0: -6, Y0: -3, X1: 6, Y1: 9, T: 0},
		"half-plane":  Rect{X0: math.Inf(-1), Y0: math.Inf(-1), X1: 1.5, Y1: math.Inf(1), T: 3},
		"circle":      Circle{CX: 1, CY: -2, R: 7, T: 1.5},
		"complement":  Complement{Inner: Circle{CX: 1, CY: -2, R: 7, T: 1.5}},
		"sector":      Sector{CX: 0, CY: 0, R0: 2, R1: 9, A0: 0.3, A1: 2.1, T: 1},
		"full-sector": Sector{CX: 0, CY: 0, R0: 0, R1: 5, A0: 0, A1: 2 * math.Pi, T: 0.5},
		"polygon": Polygon{X: []float64{-5, 5, 6, 0, -6}, Y: []float64{-4, -5, 3, 7, 2},
			T: 1.2},
	}
	queries := [][4]float64{
		{-10, -10, 10, 10},
		{-2, -2, 2, 2},
		{4, 4, 12, 12},
		{-30, 5, -12, 8}, // entirely outside most shapes
		{3, -1, 3, -1},   // degenerate point rect
	}
	for name, shape := range shapes {
		sr, ok := shape.(SupportRanger)
		if !ok {
			t.Fatalf("%s does not implement SupportRanger", name)
		}
		for _, q := range queries {
			lo, hi := sr.SupportRange(q[0], q[1], q[2], q[3])
			if lo > hi {
				t.Fatalf("%s %v: inverted bounds [%g, %g]", name, q, lo, hi)
			}
			const steps = 24
			for jy := 0; jy <= steps; jy++ {
				y := q[1] + (q[3]-q[1])*float64(jy)/steps
				for ix := 0; ix <= steps; ix++ {
					x := q[0] + (q[2]-q[0])*float64(ix)/steps
					s := shape.Support(x, y)
					if s < lo-1e-12 || s > hi+1e-12 {
						t.Fatalf("%s %v: support %g at (%g,%g) outside [%g, %g]",
							name, q, s, x, y, lo, hi)
					}
				}
			}
		}
	}
}

// maskless wraps a blender and hides its SupportMask, standing in for a
// user-defined blender outside this package.
type maskless struct{ inner Blender }

func (m maskless) NumComponents() int                     { return m.inner.NumComponents() }
func (m maskless) BlendWeights(w []float64, x, y float64) { m.inner.BlendWeights(w, x, y) }

// TestSampleSupportMaskFindsSampledSupport: the generic fallback must
// flag every component whose weight is nonzero at some probe point, and
// the tiled engine forced onto a maskless blender must still agree with
// the dense path when the blend geometry is coarse relative to a tile.
func TestSampleSupportMaskFindsSampledSupport(t *testing.T) {
	inner := UniformBlender{M: 3, Index: 2}
	mask := sampleSupportMask(maskless{inner}, -10, -10, 10, 10)
	if !mask[2] || mask[0] || mask[1] {
		t.Errorf("sampled mask = %v, want only component 2", mask)
	}

	ks := threeKernels(t)
	blender := maskless{mustPlateBlender(t, []Region{
		Rect{X0: math.Inf(-1), Y0: math.Inf(-1), X1: 0, Y1: math.Inf(1), T: 6},
		Rect{X0: 0, Y0: math.Inf(-1), X1: math.Inf(1), Y1: math.Inf(1), T: 6},
		Circle{CX: 0, CY: 40, R: 12, T: 4},
	})}
	tiled := MustGenerator(ks, blender, 4)
	tiled.Engine = EngineTiled
	tiled.TileSize = 16
	dense := MustGenerator(ks, blender, 4)
	dense.Engine = EngineDense
	a := tiled.GenerateAt(-24, -24, 48, 48)
	b := dense.GenerateAt(-24, -24, 48, 48)
	if d := a.MaxAbsDiff(b); d > 1e-12 {
		t.Errorf("tiled-with-sampled-masks deviates from dense by %g", d)
	}
}
