package inhomo

import (
	"fmt"

	"roughsurface/internal/approx"
	"roughsurface/internal/convgen"
	"roughsurface/internal/grid"
	"roughsurface/internal/par"
	"roughsurface/internal/rng"
)

// Generator synthesizes inhomogeneous surfaces from M homogeneous
// component kernels and a Blender. All kernels must share the sample
// spacing; they may differ in size.
type Generator struct {
	kernels []*convgen.Kernel
	convs   []*convgen.Generator // one per component, sharing the noise seed
	blender Blender
	seed    uint64

	// Workers bounds per-call parallelism (0 = GOMAXPROCS).
	Workers int
	// Reference forces the literal per-point evaluation of eqn (46)
	// instead of the algebraically identical blended-fields fast path.
	// O(outputs × taps × M); intended for validation.
	Reference bool

	dx, dy float64
}

// NewGenerator validates the component set against the blender.
func NewGenerator(kernels []*convgen.Kernel, blender Blender, seed uint64) (*Generator, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("inhomo: no component kernels")
	}
	if blender == nil {
		return nil, fmt.Errorf("inhomo: nil blender")
	}
	if blender.NumComponents() != len(kernels) {
		return nil, fmt.Errorf("inhomo: blender expects %d components, got %d kernels",
			blender.NumComponents(), len(kernels))
	}
	dx, dy := kernels[0].Dx, kernels[0].Dy
	convs := make([]*convgen.Generator, len(kernels))
	for i, k := range kernels {
		if !approx.Exact(k.Dx, dx) || !approx.Exact(k.Dy, dy) {
			return nil, fmt.Errorf("inhomo: kernel %d spacing (%g,%g) differs from (%g,%g)",
				i, k.Dx, k.Dy, dx, dy)
		}
		convs[i] = convgen.NewGenerator(k, seed) // same seed → same noise field
	}
	return &Generator{kernels: kernels, convs: convs, blender: blender, seed: seed, dx: dx, dy: dy}, nil
}

// MustGenerator is NewGenerator that panics on error.
func MustGenerator(kernels []*convgen.Kernel, blender Blender, seed uint64) *Generator {
	g, err := NewGenerator(kernels, blender, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// GenerateAt materializes the window with lower lattice corner (i0, j0)
// of nx×ny samples.
func (g *Generator) GenerateAt(i0, j0 int64, nx, ny int) *grid.Grid {
	if g.Reference {
		return g.generateReference(i0, j0, nx, ny)
	}
	return g.generateFast(i0, j0, nx, ny)
}

// GenerateCentered materializes an nx×ny window centered on the lattice
// origin (the paper's figure convention).
func (g *Generator) GenerateCentered(nx, ny int) *grid.Grid {
	return g.GenerateAt(-int64(nx/2), -int64(ny/2), nx, ny)
}

// generateFast produces each component's homogeneous surface from the
// shared noise field and mixes them pointwise: f = Σ_m g_n(m)·F_m(n).
// This is eqn (46) after exchanging the two sums.
func (g *Generator) generateFast(i0, j0 int64, nx, ny int) *grid.Grid {
	fields := make([]*grid.Grid, len(g.kernels))
	for m, cg := range g.convs {
		cg.Workers = g.Workers
		fields[m] = cg.GenerateAt(i0, j0, nx, ny)
	}
	out := g.newWindow(i0, j0, nx, ny)
	par.For(ny, g.Workers, func(lo, hi int) {
		w := make([]float64, len(g.kernels))
		for j := lo; j < hi; j++ {
			y := float64(j0+int64(j)) * g.dy
			for i := 0; i < nx; i++ {
				x := float64(i0+int64(i)) * g.dx
				g.blender.BlendWeights(w, x, y)
				var acc float64
				for m := range fields {
					acc += w[m] * fields[m].Data[j*nx+i]
				}
				out.Data[j*nx+i] = acc
			}
		}
	})
	return out
}

// generateReference evaluates eqn (46) literally: at every output point
// the blended kernel Σ_m g·w̃(m) is applied to the noise window.
func (g *Generator) generateReference(i0, j0 int64, nx, ny int) *grid.Grid {
	field := rng.NewField(g.seed)
	out := g.newWindow(i0, j0, nx, ny)
	par.For(ny, g.Workers, func(lo, hi int) {
		w := make([]float64, len(g.kernels))
		for j := lo; j < hi; j++ {
			y := float64(j0+int64(j)) * g.dy
			for i := 0; i < nx; i++ {
				x := float64(i0+int64(i)) * g.dx
				g.blender.BlendWeights(w, x, y)
				var acc float64
				for m, k := range g.kernels {
					if w[m] == 0 {
						continue
					}
					var conv float64
					for b := 0; b < k.Ny; b++ {
						jn := j0 + int64(j) + int64(b-k.CY)
						for a := 0; a < k.Nx; a++ {
							in := i0 + int64(i) + int64(a-k.CX)
							conv += k.At(a, b) * field.At(in, jn)
						}
					}
					acc += w[m] * conv
				}
				out.Data[j*nx+i] = acc
			}
		}
	})
	return out
}

func (g *Generator) newWindow(i0, j0 int64, nx, ny int) *grid.Grid {
	out := grid.New(nx, ny)
	out.Dx, out.Dy = g.dx, g.dy
	out.X0 = float64(i0) * g.dx
	out.Y0 = float64(j0) * g.dy
	return out
}

// WeightMap renders component m's blend weight over a window — useful
// for inspecting transition geometry and for the per-region statistics
// in the experiment harness.
func (g *Generator) WeightMap(m int, i0, j0 int64, nx, ny int) *grid.Grid {
	if m < 0 || m >= len(g.kernels) {
		panic(fmt.Sprintf("inhomo: WeightMap component %d of %d", m, len(g.kernels)))
	}
	out := g.newWindow(i0, j0, nx, ny)
	w := make([]float64, len(g.kernels))
	for j := 0; j < ny; j++ {
		y := float64(j0+int64(j)) * g.dy
		for i := 0; i < nx; i++ {
			x := float64(i0+int64(i)) * g.dx
			g.blender.BlendWeights(w, x, y)
			out.Data[j*nx+i] = w[m]
		}
	}
	return out
}
