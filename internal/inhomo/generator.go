package inhomo

import (
	"fmt"
	"sync"

	"roughsurface/internal/approx"
	"roughsurface/internal/convgen"
	"roughsurface/internal/grid"
	"roughsurface/internal/par"
	"roughsurface/internal/rng"
	"roughsurface/internal/simd"
)

// Engine selects the inhomogeneous generation path.
type Engine int

const (
	// EngineAuto uses the tile-sparse path when the blender publishes
	// support masks and those masks vary across the window's tiles;
	// otherwise it takes the dense blended-fields path restricted to
	// the components the masks leave active (spatially uniform masks —
	// e.g. UniformBlender — gain nothing from tiling, and a full-window
	// convolution amortizes its FFT padding better than many tiles).
	EngineAuto Engine = iota
	// EngineDense forces the full-window blended-fields path: all M
	// component surfaces over the whole window, mixed pointwise.
	EngineDense
	// EngineTiled forces the tile-sparse path. Blenders without
	// SupportMask get sampled (non-conservative) masks; see DESIGN.md
	// §9 before forcing this on a custom blender.
	EngineTiled
)

// defaultTileSize is the tile edge in samples: 64² float64 = 32 KiB per
// scratch buffer, small enough that a tile's working set (a few active
// component fields plus the noise window) stays cache-resident.
const defaultTileSize = 64

// Generator synthesizes inhomogeneous surfaces from M homogeneous
// component kernels and a Blender. All kernels must share the sample
// spacing; they may differ in size.
//
// A Generator is safe for concurrent use: per-call scratch comes from
// an internal pool and the per-component convolution generators are
// never mutated after construction. Returned grids are caller-owned.
type Generator struct {
	kernels []*convgen.Kernel
	convs   []*convgen.Generator // one per component, sharing the noise seed
	blender Blender
	seed    uint64

	// Workers bounds per-call parallelism (0 = GOMAXPROCS).
	Workers int
	// Engine selects the generation path (default EngineAuto).
	Engine Engine
	// TileSize overrides the tile edge of the sparse path in samples
	// (0 = the 64-sample default).
	TileSize int
	// Reference forces the literal per-point evaluation of eqn (46)
	// instead of the algebraically identical blended-fields paths.
	// O(outputs × taps × M); intended for validation.
	Reference bool

	dx, dy float64

	// extGroups partitions the components by kernel half-extent so each
	// distinct dilation costs one SupportMask query per tile.
	extGroups []extentGroup

	// arenas pools the per-tile scratch (active component fields and
	// the weight vector) so the sparse path allocates nothing per tile
	// in steady state beyond the returned grid.
	arenas sync.Pool
}

// extentGroup is the set of component indices whose kernels share the
// physical half-extent (ex, ey).
type extentGroup struct {
	ex, ey float64
	comps  []int
}

// tileArena is one worker's scratch for rendering a multi-active tile.
// The f64 and f32 paths keep separate field buffers so a mixed-precision
// serving workload does not thrash one set of allocations.
type tileArena struct {
	fields   [][]float64 // one tile-sized buffer per active component
	fields32 [][]float32 // f32 render path's counterpart
	w        []float64   // BlendWeights output, length M
	active   []int       // indices of active components
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

func growFloats32(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}

// NewGenerator validates the component set against the blender.
func NewGenerator(kernels []*convgen.Kernel, blender Blender, seed uint64) (*Generator, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("inhomo: no component kernels")
	}
	if blender == nil {
		return nil, fmt.Errorf("inhomo: nil blender")
	}
	if blender.NumComponents() != len(kernels) {
		return nil, fmt.Errorf("inhomo: blender expects %d components, got %d kernels",
			blender.NumComponents(), len(kernels))
	}
	dx, dy := kernels[0].Dx, kernels[0].Dy
	convs := make([]*convgen.Generator, len(kernels))
	var groups []extentGroup
	for i, k := range kernels {
		if !approx.Exact(k.Dx, dx) || !approx.Exact(k.Dy, dy) {
			return nil, fmt.Errorf("inhomo: kernel %d spacing (%g,%g) differs from (%g,%g)",
				i, k.Dx, k.Dy, dx, dy)
		}
		convs[i] = convgen.NewGenerator(k, seed) // same seed → same noise field
		ex, ey := k.HalfExtents()
		placed := false
		for gi := range groups {
			if approx.Exact(groups[gi].ex, ex) && approx.Exact(groups[gi].ey, ey) {
				groups[gi].comps = append(groups[gi].comps, i)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, extentGroup{ex: ex, ey: ey, comps: []int{i}})
		}
	}
	g := &Generator{kernels: kernels, convs: convs, blender: blender, seed: seed,
		dx: dx, dy: dy, extGroups: groups}
	g.arenas.New = func() any { return &tileArena{} }
	return g, nil
}

// MustGenerator is NewGenerator that panics on error.
func MustGenerator(kernels []*convgen.Kernel, blender Blender, seed uint64) *Generator {
	g, err := NewGenerator(kernels, blender, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// GenerateAt materializes the window with lower lattice corner (i0, j0)
// of nx×ny samples.
func (g *Generator) GenerateAt(i0, j0 int64, nx, ny int) *grid.Grid {
	out := g.newWindow(i0, j0, nx, ny)
	g.GenerateAtInto(out, i0, j0)
	return out
}

// GenerateAtInto renders the window with lower lattice corner (i0, j0)
// into the caller-owned grid; out.Nx×out.Ny fixes the window size and
// the grid's spacing/origin metadata is overwritten to match. Reusing
// one grid across calls makes steady-state generation allocation-free
// on the tiled path (per-tile scratch is pooled).
func (g *Generator) GenerateAtInto(out *grid.Grid, i0, j0 int64) {
	if out == nil || out.Nx < 1 || out.Ny < 1 {
		panic("inhomo: GenerateAtInto needs a non-empty destination grid")
	}
	out.Dx, out.Dy = g.dx, g.dy
	out.X0 = float64(i0) * g.dx
	out.Y0 = float64(j0) * g.dy
	if g.Reference {
		g.generateReference(out, i0, j0)
		return
	}
	nx, ny := out.Nx, out.Ny
	switch g.Engine {
	case EngineDense:
		g.generateFast(out, i0, j0)
		return
	case EngineTiled:
		tiles := grid.Tiling(nx, ny, g.tileSize(), g.tileSize())
		g.generateTiled(out, i0, j0, tiles, g.tileMasks(tiles, i0, j0))
		return
	}
	if _, ok := g.blender.(SupportMasker); !ok {
		g.generateFast(out, i0, j0)
		return
	}
	tiles := grid.Tiling(nx, ny, g.tileSize(), g.tileSize())
	masks := g.tileMasks(tiles, i0, j0)
	if shared := sharedMask(masks); shared != nil {
		g.generateFastMasked(out, i0, j0, shared)
		return
	}
	g.generateTiled(out, i0, j0, tiles, masks)
}

// GenerateCentered materializes an nx×ny window centered on the lattice
// origin (the paper's figure convention).
func (g *Generator) GenerateCentered(nx, ny int) *grid.Grid {
	return g.GenerateAt(-int64(nx/2), -int64(ny/2), nx, ny)
}

func (g *Generator) tileSize() int {
	if g.TileSize > 0 {
		return g.TileSize
	}
	return defaultTileSize
}

// tileMasks computes the per-tile active-component masks. Each
// component is queried over the tile's physical rectangle dilated by
// that component's kernel half-extent (belt-and-braces conservatism;
// the pointwise blend algebra needs no dilation — see DESIGN.md §9),
// with one SupportMask call per distinct half-extent.
func (g *Generator) tileMasks(tiles []grid.Tile, i0, j0 int64) [][]bool {
	sm, _ := g.blender.(SupportMasker)
	masks := make([][]bool, len(tiles))
	slab := make([]bool, len(tiles)*len(g.kernels))
	for t, tile := range tiles {
		x0 := float64(i0+int64(tile.X0)) * g.dx
		y0 := float64(j0+int64(tile.Y0)) * g.dy
		x1 := x0 + float64(tile.Nx-1)*g.dx
		y1 := y0 + float64(tile.Ny-1)*g.dy
		mask := slab[t*len(g.kernels) : (t+1)*len(g.kernels)]
		for _, grp := range g.extGroups {
			var qm []bool
			if sm != nil {
				qm = sm.SupportMask(x0-grp.ex, y0-grp.ey, x1+grp.ex, y1+grp.ey)
			} else {
				qm = sampleSupportMask(g.blender, x0-grp.ex, y0-grp.ey, x1+grp.ex, y1+grp.ey)
			}
			for _, m := range grp.comps {
				mask[m] = qm[m]
			}
		}
		masks[t] = mask
	}
	return masks
}

// sharedMask returns the single mask all tiles agree on, or nil when
// the masks vary — the sparsity signal EngineAuto keys on.
func sharedMask(masks [][]bool) []bool {
	first := masks[0]
	for _, m := range masks[1:] {
		for i := range m {
			if m[i] != first[i] {
				return nil
			}
		}
	}
	return first
}

// generateTiled is the sparse engine: each tile runs only its active
// components through the destination-buffer convolution API and fuses
// the w·F accumulation, so work scales with Σ active-tile area instead
// of M × window area. Tiles are scheduled through par.Dynamic because
// their costs are heterogeneous — a seam tile with three active
// components costs several times an interior tile — and static chunking
// would idle workers behind the expensive ones.
func (g *Generator) generateTiled(out *grid.Grid, i0, j0 int64, tiles []grid.Tile, masks [][]bool) {
	par.Dynamic(len(tiles), g.Workers, func(t int) {
		g.renderTile(out, i0, j0, tiles[t], masks[t])
	})
}

// renderTile materializes one tile of the window in place. The tile is
// the unit of parallelism, so the per-component generation below runs
// single-worker.
func (g *Generator) renderTile(out *grid.Grid, i0, j0 int64, t grid.Tile, mask []bool) {
	ar := g.arenas.Get().(*tileArena)
	defer g.arenas.Put(ar)
	active := ar.active[:0]
	for m, on := range mask {
		if on {
			active = append(active, m)
		}
	}
	if len(active) == 0 {
		// A conservative mask can never be all-false under a partition
		// of unity; guard against a broken custom masker anyway.
		for m := range mask {
			active = append(active, m)
		}
	}
	ar.active = active

	base := t.Y0*out.Nx + t.X0
	ti0, tj0 := i0+int64(t.X0), j0+int64(t.Y0)
	if len(active) == 1 {
		// Sole active component ⇒ its weight is identically 1 on the
		// tile (weights sum to 1 and the rest are provably zero):
		// generate straight into the output rows, no blend pass.
		g.convs[active[0]].GenerateAtInto(out.Data[base:], out.Nx, ti0, tj0, t.Nx, t.Ny, 1)
		return
	}

	n := t.Nx * t.Ny
	if cap(ar.fields) < len(active) {
		ar.fields = append(ar.fields, make([][]float64, len(active)-len(ar.fields))...)
	}
	fields := ar.fields[:len(active)]
	for s, m := range active {
		fields[s] = growFloats(fields[s], n)
		g.convs[m].GenerateAtInto(fields[s], t.Nx, ti0, tj0, t.Nx, t.Ny, 1)
	}
	ar.fields = fields[:cap(fields)]
	w := growFloats(ar.w, len(mask))
	ar.w = w
	blendRows(g.blender, out.Data[base:], out.Nx, t.Nx, fields, active, 0, t.Ny, ti0, tj0, g.dx, g.dy, w)
}

// blendRows is the precision-generic weight-blend inner loop shared by
// the tiled and dense engines: over rows [jlo, jhi) it queries the
// blender once per sample and accumulates Σ_s w[active[s]]·fields[s].
// dst row j spans dst[j*dstStride : j*dstStride+nx]; fields are packed
// at row stride nx with lattice origin (i0, j0). The float64
// instantiation performs exactly the arithmetic of the pre-generic
// loop; the float32 one rounds each weight once per use and
// accumulates in single precision, which the agreement gate in
// precision_test.go bounds (DESIGN.md §13).
func blendRows[F simd.Float](b Blender, dst []F, dstStride, nx int, fields [][]F, active []int,
	jlo, jhi int, i0, j0 int64, dx, dy float64, w []float64) {
	for j := jlo; j < jhi; j++ {
		y := float64(j0+int64(j)) * dy
		row := dst[j*dstStride : j*dstStride+nx]
		off := j * nx
		for i := range row {
			x := float64(i0+int64(i)) * dx
			b.BlendWeights(w, x, y)
			var acc F
			for s, m := range active {
				acc += F(w[m]) * fields[s][off+i]
			}
			row[i] = acc
		}
	}
}

// generateFast produces each component's homogeneous surface from the
// shared noise field and mixes them pointwise: f = Σ_m g_n(m)·F_m(n).
// This is eqn (46) after exchanging the two sums.
func (g *Generator) generateFast(out *grid.Grid, i0, j0 int64) {
	active := make([]bool, len(g.kernels))
	for i := range active {
		active[i] = true
	}
	g.generateFastMasked(out, i0, j0, active)
}

// generateFastMasked is generateFast restricted to the components a
// window-wide support mask leaves active: components the mask rules out
// carry zero weight everywhere, so skipping their fields is exact. With
// a single active component the window is that component's homogeneous
// surface and the blend sweep is skipped entirely.
func (g *Generator) generateFastMasked(out *grid.Grid, i0, j0 int64, active []bool) {
	nx, ny := out.Nx, out.Ny
	count := 0
	last := 0
	for m, on := range active {
		if on {
			count++
			last = m
		}
	}
	if count == 1 {
		g.convs[last].GenerateAtInto(out.Data, nx, i0, j0, nx, ny, g.Workers)
		return
	}
	fields := make([][]float64, 0, count)
	act := make([]int, 0, count)
	for m, cg := range g.convs {
		if !active[m] {
			continue
		}
		f := make([]float64, nx*ny)
		cg.GenerateAtInto(f, nx, i0, j0, nx, ny, g.Workers)
		fields = append(fields, f)
		act = append(act, m)
	}
	par.For(ny, g.Workers, func(lo, hi int) {
		w := make([]float64, len(g.kernels))
		blendRows(g.blender, out.Data, nx, nx, fields, act, lo, hi, i0, j0, g.dx, g.dy, w)
	})
}

// generateReference evaluates eqn (46) literally: at every output point
// the blended kernel Σ_m g·w̃(m) is applied to the noise window.
func (g *Generator) generateReference(out *grid.Grid, i0, j0 int64) {
	field := rng.NewField(g.seed)
	nx, ny := out.Nx, out.Ny
	par.For(ny, g.Workers, func(lo, hi int) {
		w := make([]float64, len(g.kernels))
		for j := lo; j < hi; j++ {
			y := float64(j0+int64(j)) * g.dy
			for i := 0; i < nx; i++ {
				x := float64(i0+int64(i)) * g.dx
				g.blender.BlendWeights(w, x, y)
				var acc float64
				for m, k := range g.kernels {
					if w[m] == 0 {
						continue
					}
					var conv float64
					for b := 0; b < k.Ny; b++ {
						jn := j0 + int64(j) + int64(b-k.CY)
						for a := 0; a < k.Nx; a++ {
							in := i0 + int64(i) + int64(a-k.CX)
							conv += k.At(a, b) * field.At(in, jn)
						}
					}
					acc += w[m] * conv
				}
				out.Data[j*nx+i] = acc
			}
		}
	})
}

func (g *Generator) newWindow(i0, j0 int64, nx, ny int) *grid.Grid {
	out := grid.New(nx, ny)
	out.Dx, out.Dy = g.dx, g.dy
	out.X0 = float64(i0) * g.dx
	out.Y0 = float64(j0) * g.dy
	return out
}

// WeightMap renders component m's blend weight over a window — useful
// for inspecting transition geometry and for the per-region statistics
// in the experiment harness.
func (g *Generator) WeightMap(m int, i0, j0 int64, nx, ny int) *grid.Grid {
	if m < 0 || m >= len(g.kernels) {
		panic(fmt.Sprintf("inhomo: WeightMap component %d of %d", m, len(g.kernels)))
	}
	out := g.newWindow(i0, j0, nx, ny)
	par.For(ny, g.Workers, func(lo, hi int) {
		w := make([]float64, len(g.kernels))
		for j := lo; j < hi; j++ {
			y := float64(j0+int64(j)) * g.dy
			for i := 0; i < nx; i++ {
				x := float64(i0+int64(i)) * g.dx
				g.blender.BlendWeights(w, x, y)
				out.Data[j*nx+i] = w[m]
			}
		}
	})
	return out
}
