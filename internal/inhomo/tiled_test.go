package inhomo

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/convgen"
	"roughsurface/internal/grid"
	"roughsurface/internal/spectrum"
)

// threeKernels returns components small enough that every window in
// these tests stays on the direct convolution engine, where the tiled
// and dense paths share the exact tap summation order.
func threeKernels(t *testing.T) []*convgen.Kernel {
	t.Helper()
	mk := func(s spectrum.Spectrum) *convgen.Kernel {
		k, err := convgen.Design(s, 1, 1, 6, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	return []*convgen.Kernel{
		mk(spectrum.MustGaussian(1.0, 4, 4)),
		mk(spectrum.MustExponential(2.0, 5, 5)),
		mk(spectrum.MustGaussian(0.5, 3, 3)),
	}
}

func tiledBlenders(t *testing.T) map[string]Blender {
	t.Helper()
	return map[string]Blender{
		"plate": mustPlateBlender(t, []Region{
			Rect{X0: math.Inf(-1), Y0: math.Inf(-1), X1: -8, Y1: math.Inf(1), T: 3},
			Rect{X0: -8, Y0: math.Inf(-1), X1: 8, Y1: math.Inf(1), T: 3},
			Rect{X0: 8, Y0: math.Inf(-1), X1: math.Inf(1), Y1: math.Inf(1), T: 3},
		}),
		"plate-circle": mustPlateBlender(t, []Region{
			Circle{CX: -5, CY: 2, R: 9, T: 2},
			Complement{Inner: Circle{CX: -5, CY: 2, R: 9, T: 2}},
			Rect{X0: 20, Y0: math.Inf(-1), X1: math.Inf(1), Y1: math.Inf(1), T: 2},
		}),
		"point": mustPointBlender(t, []Point{
			{X: -18, Y: -4, Component: 0},
			{X: 16, Y: 6, Component: 1},
			{X: 2, Y: 22, Component: 2},
		}, 7, 3),
		"uniform": UniformBlender{M: 3, Index: 1},
	}
}

// TestTiledMatchesDense pins the sparse tiled engine to the dense
// blended-fields path across all blender kinds and window offsets. On
// the direct engine both paths evaluate identical tap sums and blend
// algebra, so agreement is to round-off — far inside the 1e-12 budget.
func TestTiledMatchesDense(t *testing.T) {
	ks := threeKernels(t)
	offsets := []struct {
		i0, j0 int64
		nx, ny int
	}{
		{-24, -20, 48, 40},
		{0, 0, 50, 33},
		{-7, 13, 40, 48},
		{-100, -100, 30, 30}, // window far from every seam: single-component tiles
	}
	for name, blender := range tiledBlenders(t) {
		t.Run(name, func(t *testing.T) {
			dense := MustGenerator(ks, blender, 42)
			dense.Engine = EngineDense
			tiled := MustGenerator(ks, blender, 42)
			tiled.Engine = EngineTiled
			tiled.TileSize = 16
			for _, c := range offsets {
				a := dense.GenerateAt(c.i0, c.j0, c.nx, c.ny)
				b := tiled.GenerateAt(c.i0, c.j0, c.nx, c.ny)
				if d := a.MaxAbsDiff(b); d > 1e-12 {
					t.Errorf("window (%d,%d,%dx%d): tiled deviates from dense by %g",
						c.i0, c.j0, c.nx, c.ny, d)
				}
			}
		})
	}
}

// TestTiledMatchesReference pins the tiled engine to the literal
// eqn (46) evaluation on a small window.
func TestTiledMatchesReference(t *testing.T) {
	ks := threeKernels(t)
	for name, blender := range tiledBlenders(t) {
		t.Run(name, func(t *testing.T) {
			tiled := MustGenerator(ks, blender, 7)
			tiled.Engine = EngineTiled
			tiled.TileSize = 8
			ref := MustGenerator(ks, blender, 7)
			ref.Reference = true
			a := tiled.GenerateAt(-12, -10, 24, 20)
			b := ref.GenerateAt(-12, -10, 24, 20)
			if d := a.MaxAbsDiff(b); d > 1e-9 {
				t.Errorf("tiled deviates from literal eqn (46) by %g", d)
			}
		})
	}
}

// TestAutoMatchesDense: whatever path EngineAuto dispatches to, the
// output must match the dense reference.
func TestAutoMatchesDense(t *testing.T) {
	ks := threeKernels(t)
	for name, blender := range tiledBlenders(t) {
		t.Run(name, func(t *testing.T) {
			auto := MustGenerator(ks, blender, 15)
			auto.TileSize = 16
			dense := MustGenerator(ks, blender, 15)
			dense.Engine = EngineDense
			a := auto.GenerateAt(-20, -16, 44, 36)
			b := dense.GenerateAt(-20, -16, 44, 36)
			if d := a.MaxAbsDiff(b); d > 1e-12 {
				t.Errorf("auto deviates from dense by %g", d)
			}
		})
	}
}

// TestSharedMaskDetectsUniformity: a uniform blender yields identical
// tile masks (the EngineAuto dense-fallback signal); a seam-crossing
// plate scene does not.
func TestSharedMaskDetectsUniformity(t *testing.T) {
	ks := threeKernels(t)
	tiles := grid.Tiling(48, 48, 16, 16)

	uni := MustGenerator(ks, UniformBlender{M: 3, Index: 2}, 1)
	masks := uni.tileMasks(tiles, -24, -24)
	shared := sharedMask(masks)
	if shared == nil {
		t.Fatal("uniform blender should produce one shared mask")
	}
	if !shared[2] || shared[0] || shared[1] {
		t.Errorf("shared mask = %v, want only component 2", shared)
	}

	// The seam window must be wide enough that edge tiles escape the
	// seams even after dilation by the kernel half-extents (~30 units
	// for the cl=5 exponential component here).
	seam := MustGenerator(ks, tiledBlenders(t)["plate"].(*PlateBlender), 1)
	wide := grid.Tiling(160, 48, 16, 16)
	if sharedMask(seam.tileMasks(wide, -80, -24)) != nil {
		t.Error("seam-crossing plate scene should not share one mask")
	}
}

// TestTiledSeamlessAcrossWindows: adjacent tiled windows agree on their
// overlap, like the dense path.
func TestTiledSeamlessAcrossWindows(t *testing.T) {
	ks := threeKernels(t)
	blender := mustPointBlender(t, []Point{
		{X: -20, Y: 0, Component: 0},
		{X: 20, Y: 0, Component: 1},
		{X: 0, Y: 30, Component: 2},
	}, 10, 3)
	gen := MustGenerator(ks, blender, 9)
	gen.Engine = EngineTiled
	gen.TileSize = 16
	a := gen.GenerateAt(-32, -32, 64, 64)
	b := gen.GenerateAt(0, -32, 64, 64)
	for j := 0; j < 64; j++ {
		for i := 0; i < 32; i++ {
			if d := math.Abs(a.At(32+i, j) - b.At(i, j)); d > 1e-9 {
				t.Fatalf("overlap mismatch at (%d,%d): %g", i, j, d)
			}
		}
	}
}

// TestGenerateAtIntoReuse: rendering into a reused caller-owned grid
// must match the allocating API sample-for-sample and refresh the
// window metadata, on every engine.
func TestGenerateAtIntoReuse(t *testing.T) {
	ks := threeKernels(t)
	blender := tiledBlenders(t)["plate"]
	for _, engine := range []Engine{EngineAuto, EngineDense, EngineTiled} {
		gen := MustGenerator(ks, blender, 5)
		gen.Engine = engine
		gen.TileSize = 16
		dst := grid.New(40, 36)
		for _, i0 := range []int64{-20, 4} {
			want := gen.GenerateAt(i0, -18, 40, 36)
			gen.GenerateAtInto(dst, i0, -18)
			if d := want.MaxAbsDiff(dst); d > 0 {
				t.Errorf("engine %v i0=%d: into deviates from allocating API by %g", engine, i0, d)
			}
			if !approx.Exact(dst.X0, want.X0) || !approx.Exact(dst.Y0, want.Y0) ||
				!approx.Exact(dst.Dx, want.Dx) || !approx.Exact(dst.Dy, want.Dy) {
				t.Errorf("engine %v i0=%d: metadata not refreshed", engine, i0)
			}
		}
	}
	gen := MustGenerator(ks, blender, 5)
	defer func() {
		if recover() == nil {
			t.Error("want panic on nil destination")
		}
	}()
	gen.GenerateAtInto(nil, 0, 0)
}

// TestWeightMapWorkerInvariance guards the parallelized WeightMap.
func TestWeightMapWorkerInvariance(t *testing.T) {
	ks := threeKernels(t)
	blender := tiledBlenders(t)["plate-circle"]
	g1 := MustGenerator(ks, blender, 3)
	g1.Workers = 1
	g8 := MustGenerator(ks, blender, 3)
	g8.Workers = 8
	for m := 0; m < 3; m++ {
		a := g1.WeightMap(m, -20, -20, 40, 40)
		b := g8.WeightMap(m, -20, -20, 40, 40)
		if d := a.MaxAbsDiff(b); d > 0 {
			t.Errorf("component %d: worker count changed weight map by %g", m, d)
		}
	}
}

// TestConcurrentGenerateAt is the regression test for the latent race
// the old fast path carried: it mutated the shared Workers field of the
// per-component convolution generators, so two concurrent GenerateAt
// calls on one Generator raced. Run under -race (scripts/check.sh
// does), all engines, and check every goroutine sees identical output.
func TestConcurrentGenerateAt(t *testing.T) {
	ks := threeKernels(t)
	blender := tiledBlenders(t)["plate"]
	for _, engine := range []Engine{EngineAuto, EngineDense, EngineTiled} {
		gen := MustGenerator(ks, blender, 77)
		gen.Engine = engine
		gen.TileSize = 16
		gen.Workers = 2
		want := gen.GenerateAt(-16, -16, 40, 36)

		const goroutines = 8
		results := make([]*grid.Grid, goroutines)
		done := make(chan int, goroutines)
		for i := 0; i < goroutines; i++ {
			go func(i int) { //lint:ignore parpolicy stress test must hammer one generator from raw goroutines
				results[i] = gen.GenerateAt(-16, -16, 40, 36)
				done <- i
			}(i)
		}
		for i := 0; i < goroutines; i++ {
			<-done
		}
		for i, r := range results {
			if d := want.MaxAbsDiff(r); d > 0 {
				t.Errorf("engine %v: goroutine %d deviates by %g", engine, i, d)
			}
		}
	}
}
