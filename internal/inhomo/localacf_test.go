package inhomo

import (
	"math"
	"testing"

	"roughsurface/internal/convgen"
	"roughsurface/internal/spectrum"
	"roughsurface/internal/stats"
)

// TestLocalAutocorrelationPerRegion validates the paper's central
// premise: away from transitions, each region of an inhomogeneous
// surface carries the autocorrelation of its own homogeneous model.
// Two half-planes share h but differ 3x in correlation length; the
// measured ACF profile in each core must track its own analytic ρ and
// not the neighbour's.
func TestLocalAutocorrelationPerRegion(t *testing.T) {
	sShort := spectrum.MustGaussian(1.0, 5, 5)
	sLong := spectrum.MustGaussian(1.0, 15, 15)
	kShort := convgen.MustDesign(sShort, 1, 1, 8, 1e-5)
	kLong := convgen.MustDesign(sLong, 1, 1, 8, 1e-5)
	blender, err := NewPlateBlender([]Region{
		Rect{X0: math.Inf(-1), Y0: math.Inf(-1), X1: 0, Y1: math.Inf(1), T: 10},
		Rect{X0: 0, Y0: math.Inf(-1), X1: math.Inf(1), Y1: math.Inf(1), T: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := MustGenerator([]*convgen.Kernel{kShort, kLong}, blender, 404)
	surf := gen.GenerateCentered(512, 512)

	check := func(name string, x0 int, s spectrum.Spectrum, wrong spectrum.Spectrum) {
		core := surf.Sub(x0, 0, 192, 512)
		cov := stats.AutocovarianceFFTZeroMean(core)
		var own, other float64
		for lag := 1; lag <= 20; lag++ {
			d1 := cov.At(lag, 0) - s.Autocorrelation(float64(lag), 0)
			d2 := cov.At(lag, 0) - wrong.Autocorrelation(float64(lag), 0)
			own += d1 * d1
			other += d2 * d2
		}
		if !(own < other/4) {
			t.Errorf("%s core: ACF closer to the wrong model (own RMSE² %g vs other %g)",
				name, own, other)
		}
	}
	check("short-cl", 16, sShort, sLong) // columns 16..208, seam at 256
	check("long-cl", 304, sLong, sShort) // columns 304..496
}

// TestPointOrientedLocalVariancePerSector: in a three-point scene each
// point's neighbourhood carries its own variance (paper §3.2's premise),
// checked with RMS-about-zero in discs near each point.
func TestPointOrientedLocalVariancePerSector(t *testing.T) {
	specs := []spectrum.Spectrum{
		spectrum.MustGaussian(0.5, 6, 6),
		spectrum.MustGaussian(1.5, 6, 6),
		spectrum.MustGaussian(3.0, 6, 6),
	}
	kernels := make([]*convgen.Kernel, len(specs))
	for i, s := range specs {
		kernels[i] = convgen.MustDesign(s, 1, 1, 8, 1e-5)
	}
	blender, err := NewPointBlender([]Point{
		{X: -120, Y: 0, Component: 0},
		{X: 60, Y: 104, Component: 1},
		{X: 60, Y: -104, Component: 2},
	}, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	gen := MustGenerator(kernels, blender, 505)
	surf := gen.GenerateCentered(384, 384)

	rmsAround := func(px, py float64) float64 {
		ix := int((px - surf.X0) / surf.Dx)
		iy := int((py - surf.Y0) / surf.Dy)
		sub := surf.Sub(ix-30, iy-30, 60, 60)
		var ms float64
		for _, v := range sub.Data {
			ms += v * v
		}
		return math.Sqrt(ms / float64(len(sub.Data)))
	}
	got := []float64{rmsAround(-120, 0), rmsAround(60, 104), rmsAround(60, -104)}
	want := []float64{0.5, 1.5, 3.0}
	for i := range got {
		if math.Abs(got[i]-want[i])/want[i] > 0.35 {
			t.Errorf("point %d: local h %g want %g", i, got[i], want[i])
		}
	}
	if !(got[0] < got[1] && got[1] < got[2]) {
		t.Errorf("local roughness ordering broken: %v", got)
	}
}
