package inhomo

import (
	"math"
	"sort"

	"roughsurface/internal/grid"
)

// edt2 computes the exact squared Euclidean distance transform of a
// binary mask (true = feature cell) by the Felzenszwalb–Huttenlocher
// parabola-envelope algorithm: out[i] is the squared lattice distance
// from cell i to the nearest feature cell (+Inf if the mask is empty).
func edt2(mask []bool, nx, ny int) []float64 {
	out := make([]float64, nx*ny)
	for i, m := range mask {
		if m {
			out[i] = 0
		} else {
			out[i] = math.Inf(1)
		}
	}
	// Column pass then row pass; 1D transforms compose exactly.
	col := make([]float64, ny)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			col[y] = out[y*nx+x]
		}
		dt1d(col)
		for y := 0; y < ny; y++ {
			out[y*nx+x] = col[y]
		}
	}
	for y := 0; y < ny; y++ {
		dt1d(out[y*nx : (y+1)*nx])
	}
	return out
}

// dt1d replaces f with its 1D squared distance transform
// g[q] = min_p ((q−p)² + f[p]) in place.
func dt1d(f []float64) {
	n := len(f)
	v := make([]int, n)       // locations of parabolas in the lower envelope
	z := make([]float64, n+1) // boundaries between parabolas
	d := make([]float64, n)

	k := 0
	v[0] = 0
	z[0] = math.Inf(-1)
	z[1] = math.Inf(1)
	for q := 1; q < n; q++ {
		if math.IsInf(f[q], 1) {
			continue // a parabola at +Inf never enters the envelope
		}
		var s float64
		for {
			p := v[k]
			if math.IsInf(f[p], 1) {
				// The only parabola so far is at +Inf: replace it.
				k--
				if k < 0 {
					break
				}
				continue
			}
			s = ((f[q] + float64(q*q)) - (f[p] + float64(p*p))) / float64(2*q-2*p)
			if s > z[k] {
				break
			}
			k--
			if k < 0 {
				break
			}
		}
		k++
		v[k] = q
		z[k] = s
		if k == 0 {
			z[0] = math.Inf(-1)
		}
		z[k+1] = math.Inf(1)
	}

	k = 0
	for q := 0; q < n; q++ {
		for z[k+1] < float64(q) {
			k++
		}
		p := v[k]
		if math.IsInf(f[p], 1) {
			d[q] = math.Inf(1)
		} else {
			dq := float64(q - p)
			d[q] = dq*dq + f[p]
		}
	}
	copy(f, d)
}

// MaskRegion is a plate-oriented region defined by a set of cells of a
// labeled raster (a land-cover map): support 1 deep inside the label's
// cells, linear falloff across a band of half-width T (physical units)
// around the cell-set boundary, 0 deep outside. Distances are exact
// Euclidean (precomputed transform), so arbitrarily shaped regions —
// coastlines, field patches — blend exactly like the analytic shapes.
type MaskRegion struct {
	signed *grid.Grid // signed distance to the label boundary (+ inside)
	t      float64
}

// NewMaskRegion builds the region of cells where rounding mask's sample
// equals label. The mask's geometry (Dx/Dy/X0/Y0) defines the physical
// placement; outside the mask extent the region's support is that of
// the nearest mask cell.
func NewMaskRegion(mask *grid.Grid, label int, t float64) *MaskRegion {
	nx, ny := mask.Nx, mask.Ny
	inSet := make([]bool, nx*ny)
	outSet := make([]bool, nx*ny)
	for i, v := range mask.Data {
		if int(math.Round(v)) == label {
			inSet[i] = true
		} else {
			outSet[i] = true
		}
	}
	dIn := edt2(outSet, nx, ny) // distance from an inside cell to the outside
	dOut := edt2(inSet, nx, ny) // distance from an outside cell to the set
	signed := grid.New(nx, ny)
	signed.Dx, signed.Dy, signed.X0, signed.Y0 = mask.Dx, mask.Dy, mask.X0, mask.Y0
	// Physical units: lattice distances scale by the (geometric-mean)
	// spacing; half a cell is subtracted so the zero level sits on the
	// cell edge between the sets rather than on cell centers.
	scale := math.Sqrt(mask.Dx * mask.Dy)
	for i := range signed.Data {
		if inSet[i] {
			signed.Data[i] = (math.Sqrt(dIn[i]) - 0.5) * scale
		} else {
			signed.Data[i] = -(math.Sqrt(dOut[i]) - 0.5) * scale
		}
	}
	return &MaskRegion{signed: signed, t: t}
}

// Support implements Region by nearest-cell lookup of the precomputed
// signed distance (clamped to the mask extent).
func (m *MaskRegion) Support(x, y float64) float64 {
	g := m.signed
	ix := int(math.Round((x - g.X0) / g.Dx))
	iy := int(math.Round((y - g.Y0) / g.Dy))
	if ix < 0 {
		ix = 0
	}
	if ix >= g.Nx {
		ix = g.Nx - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= g.Ny {
		iy = g.Ny - 1
	}
	return ramp(g.At(ix, iy), m.t)
}

// RegionsFromLabels builds one MaskRegion per distinct (rounded) label
// value in the mask, returning the sorted labels and their regions in
// matching order — ready to pair with per-label kernels in a
// PlateBlender.
func RegionsFromLabels(mask *grid.Grid, t float64) (labels []int, regions []Region) {
	seen := map[int]bool{}
	for _, v := range mask.Data {
		seen[int(math.Round(v))] = true
	}
	for l := range seen {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	for _, l := range labels {
		regions = append(regions, NewMaskRegion(mask, l, t))
	}
	return labels, regions
}
