package inhomo

import (
	"math"
	"testing"
	"testing/quick"

	"roughsurface/internal/approx"
	"roughsurface/internal/convgen"
	"roughsurface/internal/spectrum"
)

func TestSectorSupportFullRing(t *testing.T) {
	// Full-circle sector degenerates to an annulus.
	s := Sector{R0: 10, R1: 20, A0: 0, A1: 2 * math.Pi, T: 2}
	if !approx.Exact(s.Support(15, 0), 1) {
		t.Error("mid-annulus support")
	}
	if !approx.Exact(s.Support(0, 15), 1) {
		t.Error("annulus must be angle-independent")
	}
	if !approx.Exact(s.Support(10, 0), 0.5) || !approx.Exact(s.Support(20, 0), 0.5) {
		t.Error("annulus rim support should be 1/2")
	}
	if s.Support(0, 0) != 0 || s.Support(30, 0) != 0 {
		t.Error("far inside/outside support should be 0")
	}
}

func TestSectorSupportWedge(t *testing.T) {
	// Quarter wedge in the first quadrant, radii 0..100.
	s := Sector{R0: 0, R1: 100, A0: 0, A1: math.Pi / 2, T: 5}
	if !approx.Exact(s.Support(30, 30), 1) { // mid-wedge, far from all edges
		t.Error("wedge core support")
	}
	// On the angular edge (positive x-axis) the arc distance is 0.
	if got := s.Support(50, 0); !approx.Exact(got, 0.5) {
		t.Errorf("angular edge support %g, want 0.5", got)
	}
	// Just outside the wedge.
	if got := s.Support(50, -20); got != 0 {
		t.Errorf("outside wedge support %g", got)
	}
	// Radial rim.
	if got := s.Support(100/math.Sqrt2, 100/math.Sqrt2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("radial rim support %g", got)
	}
}

func TestSectorAngularWraparound(t *testing.T) {
	// Sector straddling the ±π cut: angles [3π/4, 5π/4].
	s := Sector{R0: 0, R1: 100, A0: 3 * math.Pi / 4, A1: 5 * math.Pi / 4, T: 1}
	if !approx.Exact(s.Support(-50, 0), 1) { // along the negative x-axis: sector middle
		t.Error("wraparound sector core")
	}
	if s.Support(50, 0) != 0 {
		t.Error("opposite direction should be outside")
	}
}

func TestPolygonValidation(t *testing.T) {
	if _, err := NewPolygon([]float64{0, 1}, []float64{0, 1}, 1); err == nil {
		t.Error("2-vertex polygon accepted")
	}
	if _, err := NewPolygon([]float64{0, 1, 2}, []float64{0, 1}, 1); err == nil {
		t.Error("ragged coordinate lists accepted")
	}
	if _, err := NewPolygon([]float64{0, 10, 10, 0}, []float64{0, 0, 10, 10}, 1); err != nil {
		t.Errorf("valid square rejected: %v", err)
	}
}

func TestPolygonSquareMatchesRect(t *testing.T) {
	// An axis-aligned square polygon must agree with the Rect region at
	// interior points, edges, and outside (where Rect uses the same
	// edge-distance convention, i.e. away from corners).
	poly, err := NewPolygon([]float64{0, 100, 100, 0}, []float64{0, 0, 50, 50}, 10)
	if err != nil {
		t.Fatal(err)
	}
	rect := Rect{X0: 0, Y0: 0, X1: 100, Y1: 50, T: 10}
	pts := [][2]float64{{50, 25}, {0, 25}, {100, 25}, {50, 0}, {50, 50}, {5, 25}, {-5, 25}, {50, 57}}
	for _, p := range pts {
		got := poly.Support(p[0], p[1])
		want := rect.Support(p[0], p[1])
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("point %v: polygon %g, rect %g", p, got, want)
		}
	}
}

func TestPolygonConcave(t *testing.T) {
	// L-shaped polygon: (0,0)-(40,0)-(40,20)-(20,20)-(20,40)-(0,40).
	poly, err := NewPolygon(
		[]float64{0, 40, 40, 20, 20, 0},
		[]float64{0, 0, 20, 20, 40, 40}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx.Exact(poly.Support(10, 10), 1) {
		t.Error("inside the L's lower arm")
	}
	if !approx.Exact(poly.Support(10, 30), 1) {
		t.Error("inside the L's upper arm")
	}
	if poly.Support(30, 30) != 0 {
		t.Error("the notch is outside")
	}
}

func TestQuickSectorSupportInRange(t *testing.T) {
	s := Sector{CX: 5, CY: -3, R0: 10, R1: 60, A0: 1, A1: 4, T: 7}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		v := s.Support(math.Mod(x, 1000), math.Mod(y, 1000))
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPolygonSupportInRange(t *testing.T) {
	poly, err := NewPolygon([]float64{0, 30, 45, 10, -20}, []float64{0, 5, 40, 55, 30}, 6)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		v := poly.Support(math.Mod(x, 500), math.Mod(y, 500))
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInhomoStreamerMatchesOneShot(t *testing.T) {
	ka := convgen.MustDesign(spectrum.MustGaussian(1, 4, 4), 1, 1, 6, 1e-3)
	kb := convgen.MustDesign(spectrum.MustGaussian(2.5, 5, 5), 1, 1, 6, 1e-3)
	blender, err := NewPlateBlender([]Region{
		Sector{R0: 0, R1: 40, A0: 0, A1: 2 * math.Pi, T: 6},
		Complement{Inner: Circle{R: 40, T: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := MustGenerator([]*convgen.Kernel{ka, kb}, blender, 77)

	whole := gen.GenerateAt(-32, -30, 64, 60)
	st := NewStreamer(gen, -32, -30, 64, 20)
	for strip := 0; strip < 3; strip++ {
		part := st.Next()
		for j := 0; j < 20; j++ {
			for i := 0; i < 64; i++ {
				if math.Abs(part.At(i, j)-whole.At(i, strip*20+j)) > 1e-9 {
					t.Fatalf("strip %d sample (%d,%d) differs", strip, i, j)
				}
			}
		}
	}
	if st.NextRow() != 30 {
		t.Errorf("NextRow = %d", st.NextRow())
	}
}

func TestSectorBlendsWithGenerator(t *testing.T) {
	// A pie wedge of rough terrain inside a calm disc: statistics in
	// the wedge core must exceed the rest.
	rough := convgen.MustDesign(spectrum.MustGaussian(2.0, 5, 5), 1, 1, 8, 1e-4)
	calm := convgen.MustDesign(spectrum.MustGaussian(0.3, 5, 5), 1, 1, 8, 1e-4)
	blender, err := NewPlateBlender([]Region{
		Sector{R0: 0, R1: 200, A0: -math.Pi / 4, A1: math.Pi / 4, T: 8},
		Complement{Inner: Sector{R0: 0, R1: 200, A0: -math.Pi / 4, A1: math.Pi / 4, T: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := MustGenerator([]*convgen.Kernel{rough, calm}, blender, 31)
	surf := gen.GenerateCentered(160, 160)

	// Wedge core: along positive x. Outside: along negative x.
	var inSS, outSS float64
	var nIn, nOut int
	for iy := 70; iy < 90; iy++ {
		for ix := 110; ix < 150; ix++ {
			v := surf.At(ix, iy)
			inSS += v * v
			nIn++
		}
		for ix := 10; ix < 50; ix++ {
			v := surf.At(ix, iy)
			outSS += v * v
			nOut++
		}
	}
	hIn := math.Sqrt(inSS / float64(nIn))
	hOut := math.Sqrt(outSS / float64(nOut))
	if !(hIn > 3*hOut) {
		t.Errorf("wedge contrast missing: inside %.3f outside %.3f", hIn, hOut)
	}
}
