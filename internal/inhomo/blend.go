// Package inhomo implements the paper's contribution (§3): generation of
// two-dimensional random rough surfaces whose statistical parameters
// vary from place to place. Both algorithms reduce to the same scheme —
// at every output sample n, the effective convolution kernel is a convex
// mix of the M homogeneous component kernels,
//
//	w̃_n = Σ_m g_n(m)·w̃(m),   Σ_m g_n(m) = 1      (paper eqn 46)
//
// — and differ only in how the mixing weights g_n(m) are assigned:
//
//   - the plate-oriented method (§3.1, eqns 37–39) derives them from
//     region membership with linear ramps across transition bands;
//   - the point-oriented method (§3.2, eqns 40–45) derives them from
//     distances to representative points, blending across perpendicular
//     bisectors.
//
// Because g_n does not depend on the kernel tap index, eqn (46) is
// algebraically identical to blending M homogeneous surfaces generated
// from the *same* noise field: f(n) = Σ_m g_n(m)·(w̃(m) ⊛ X)(n). The
// fast generator path exploits this; the reference path evaluates
// eqn (46) literally, and tests pin the two to each other.
package inhomo

import (
	"fmt"
	"math"
)

// Blender assigns component mixing weights to lattice points.
type Blender interface {
	// NumComponents reports M, the number of homogeneous components.
	NumComponents() int
	// BlendWeights fills w (length M) with the mixing weights of
	// physical point (x, y). Weights are nonnegative and sum to 1.
	BlendWeights(w []float64, x, y float64)
}

// Region is a plate-oriented membership function: Support is 1 in the
// region core, falls linearly to 0 across a transition band, and is 0
// outside. At the nominal boundary the support is exactly 1/2, so two
// abutting regions with equal band widths cross-fade symmetrically —
// the linear interpolation of paper eqns (38)–(39).
type Region interface {
	Support(x, y float64) float64
}

// ramp converts a signed distance to the region boundary (positive
// inside) into a support value with transition half-width t.
func ramp(d, t float64) float64 {
	if t <= 0 { // hard boundary
		if d >= 0 {
			return 1
		}
		return 0
	}
	s := 0.5 + d/(2*t)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Rect is an axis-aligned rectangular region [X0,X1]×[Y0,Y1] with
// transition half-width T. Infinite extents are allowed (±Inf) so
// half-planes and quadrants are expressible.
type Rect struct {
	X0, Y0, X1, Y1 float64
	T              float64
}

// Support implements Region using the signed distance to the rectangle
// boundary.
func (r Rect) Support(x, y float64) float64 {
	dx := math.Min(x-r.X0, r.X1-x)
	dy := math.Min(y-r.Y0, r.Y1-y)
	return ramp(math.Min(dx, dy), r.T)
}

// Circle is a disc of radius R centered at (CX, CY) with transition
// half-width T — the Fig. 3 geometry.
type Circle struct {
	CX, CY, R float64
	T         float64
}

// Support implements Region.
func (c Circle) Support(x, y float64) float64 {
	d := c.R - math.Hypot(x-c.CX, y-c.CY)
	return ramp(d, c.T)
}

// Complement is the outside of another region: its support is
// 1 − Inner.Support, giving an exact partition of unity with the inner
// region (how Fig. 3 pairs "inside the pond" with "everything else").
type Complement struct {
	Inner Region
}

// Support implements Region.
func (c Complement) Support(x, y float64) float64 { return 1 - c.Inner.Support(x, y) }

// PlateBlender implements the plate-oriented method: component m's
// weight at a point is region m's support, normalized over all regions.
// Where exactly two regions overlap in a band this is the paper's linear
// interpolation (eqns 37–39); where more overlap (e.g. the meeting point
// of four quadrants) it degrades gracefully to the normalized mix.
type PlateBlender struct {
	Regions []Region
}

// NewPlateBlender validates and wraps the region list; component i of
// the generator corresponds to region i.
func NewPlateBlender(regions []Region) (*PlateBlender, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("inhomo: plate blender needs at least one region")
	}
	return &PlateBlender{Regions: regions}, nil
}

// NumComponents implements Blender.
func (b *PlateBlender) NumComponents() int { return len(b.Regions) }

// BlendWeights implements Blender. If no region claims the point (a
// coverage gap), the weights fall back to uniform so the output remains
// a valid surface; callers should arrange regions to cover the window.
func (b *PlateBlender) BlendWeights(w []float64, x, y float64) {
	var sum float64
	for i, r := range b.Regions {
		s := r.Support(x, y)
		w[i] = s
		sum += s
	}
	if sum <= 0 {
		u := 1 / float64(len(w))
		for i := range w {
			w[i] = u
		}
		return
	}
	inv := 1 / sum
	for i := range w {
		w[i] *= inv
	}
}

// Point is one representative point of the point-oriented method,
// carrying the index of the homogeneous component whose statistics hold
// around it. Several points may share a component (Fig. 4 assigns three
// ring points to each spectrum).
type Point struct {
	X, Y      float64
	Component int
}

// PointBlender implements the point-oriented method of §3.2. T is the
// transition half-width of eqn (41): a non-nearest point m participates
// at an observation point n only if the perpendicular distance τ from n
// to the bisector of the segment (nearest point, m) — eqn (42) — is at
// most T.
//
// The blend weights reconstruct eqns (43)–(45) as
//
//	g(m)  = (1 − τ(m)/T)/(M̃+1)   for the M̃ qualifying points
//	g(m*) = 1 − Σ' g(m)
//
// which sums to one, is continuous across the bisector of the two
// nearest points, keeps every weight in [0, 1], and reduces to the
// plate-oriented linear ramp for two points. (The OCR of eqns 44–45 is
// ambiguous about the denominator; see DESIGN.md §5.)
type PointBlender struct {
	Points []Point
	T      float64

	numComponents int
}

// NewPointBlender validates the configuration. T must be positive; every
// point's Component must be a valid index below numComponents.
func NewPointBlender(points []Point, t float64, numComponents int) (*PointBlender, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("inhomo: point blender needs at least one point")
	}
	if !(t > 0) {
		return nil, fmt.Errorf("inhomo: transition half-width T must be positive, got %g", t)
	}
	if numComponents < 1 {
		return nil, fmt.Errorf("inhomo: need at least one component")
	}
	for i, p := range points {
		if p.Component < 0 || p.Component >= numComponents {
			return nil, fmt.Errorf("inhomo: point %d references component %d of %d", i, p.Component, numComponents)
		}
	}
	return &PointBlender{Points: points, T: t, numComponents: numComponents}, nil
}

// NumComponents implements Blender.
func (b *PointBlender) NumComponents() int { return b.numComponents }

// BlendWeights implements Blender.
func (b *PointBlender) BlendWeights(w []float64, x, y float64) {
	for i := range w {
		w[i] = 0
	}
	// Nearest representative point m* (eqn 40).
	best := 0
	bestD2 := math.Inf(1)
	d2 := make([]float64, len(b.Points))
	for i, p := range b.Points {
		dx, dy := x-p.X, y-p.Y
		d2[i] = dx*dx + dy*dy
		if d2[i] < bestD2 {
			bestD2 = d2[i]
			best = i
		}
	}
	// Perpendicular distance to each bisector (eqn 42): for points a=m*
	// and c=m, τ = (|n−c|² − |n−a|²) / (2·|c−a|).
	type cand struct {
		idx int
		tau float64
	}
	var cands []cand
	for i := range b.Points {
		if i == best {
			continue
		}
		sep := math.Hypot(b.Points[i].X-b.Points[best].X, b.Points[i].Y-b.Points[best].Y)
		if sep == 0 {
			// Coincident representative points: always blended, τ = 0.
			cands = append(cands, cand{i, 0})
			continue
		}
		tau := (d2[i] - bestD2) / (2 * sep)
		if tau <= b.T { // eqn (41)
			cands = append(cands, cand{i, tau})
		}
	}
	mTilde := float64(len(cands))
	var others float64
	for _, c := range cands {
		g := (1 - c.tau/b.T) / (mTilde + 1)
		w[b.Points[c.idx].Component] += g
		others += g
	}
	w[b.Points[best].Component] += 1 - others
}

// UniformBlender assigns all weight to a single component everywhere —
// the degenerate case that reduces inhomogeneous generation to
// homogeneous generation, used by tests and as a building block.
type UniformBlender struct {
	M, Index int
}

// NumComponents implements Blender.
func (b UniformBlender) NumComponents() int { return b.M }

// BlendWeights implements Blender.
func (b UniformBlender) BlendWeights(w []float64, x, y float64) {
	for i := range w {
		w[i] = 0
	}
	w[b.Index] = 1
}
