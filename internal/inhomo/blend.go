// Package inhomo implements the paper's contribution (§3): generation of
// two-dimensional random rough surfaces whose statistical parameters
// vary from place to place. Both algorithms reduce to the same scheme —
// at every output sample n, the effective convolution kernel is a convex
// mix of the M homogeneous component kernels,
//
//	w̃_n = Σ_m g_n(m)·w̃(m),   Σ_m g_n(m) = 1      (paper eqn 46)
//
// — and differ only in how the mixing weights g_n(m) are assigned:
//
//   - the plate-oriented method (§3.1, eqns 37–39) derives them from
//     region membership with linear ramps across transition bands;
//   - the point-oriented method (§3.2, eqns 40–45) derives them from
//     distances to representative points, blending across perpendicular
//     bisectors.
//
// Because g_n does not depend on the kernel tap index, eqn (46) is
// algebraically identical to blending M homogeneous surfaces generated
// from the *same* noise field: f(n) = Σ_m g_n(m)·(w̃(m) ⊛ X)(n). The
// fast generator path exploits this; the reference path evaluates
// eqn (46) literally, and tests pin the two to each other.
package inhomo

import (
	"fmt"
	"math"
)

// Blender assigns component mixing weights to lattice points.
type Blender interface {
	// NumComponents reports M, the number of homogeneous components.
	NumComponents() int
	// BlendWeights fills w (length M) with the mixing weights of
	// physical point (x, y). Weights are nonnegative and sum to 1.
	BlendWeights(w []float64, x, y float64)
}

// SupportMasker is an optional Blender refinement that powers the
// tile-sparse generation path: SupportMask reports, per component,
// whether its blend weight may be nonzero anywhere in the axis-aligned
// rectangle [x0,x1]×[y0,y1]. The contract is a conservative
// over-approximation — false guarantees the weight is identically zero
// throughout the rectangle; true carries no guarantee. All blenders in
// this package implement it.
type SupportMasker interface {
	SupportMask(x0, y0, x1, y1 float64) []bool
}

// SupportRanger is an optional Region refinement used by
// PlateBlender.SupportMask: SupportRange reports conservative bounds
// lo ≤ min Support and hi ≥ max Support over the rectangle
// [x0,x1]×[y0,y1]. Regions without it contribute the vacuous bounds
// [0, 1], i.e. "may be active anywhere, covers nothing for certain".
type SupportRanger interface {
	SupportRange(x0, y0, x1, y1 float64) (lo, hi float64)
}

func supportRange(r Region, x0, y0, x1, y1 float64) (lo, hi float64) {
	if sr, ok := r.(SupportRanger); ok {
		return sr.SupportRange(x0, y0, x1, y1)
	}
	return 0, 1
}

// axisRange bounds d(x) = min(x−a, b−x) over x ∈ [lo, hi] exactly: the
// function is concave piecewise linear, so its minimum sits at an
// interval endpoint and its maximum at the midpoint of [a, b] clamped
// into the interval. Infinite a or b (half-planes) push the maximum to
// the corresponding interval endpoint.
func axisRange(lo, hi, a, b float64) (dmin, dmax float64) {
	d := func(x float64) float64 { return math.Min(x-a, b-x) }
	dmin = math.Min(d(lo), d(hi))
	at := (a + b) / 2
	switch {
	case math.IsInf(a, -1):
		at = lo // d is nonincreasing (or +Inf everywhere)
	case math.IsInf(b, 1):
		at = hi // d is nondecreasing
	case at < lo:
		at = lo
	case at > hi:
		at = hi
	}
	return dmin, d(at)
}

// rectDistRange bounds the Euclidean distance from a point (cx, cy) to
// the rectangle [x0,x1]×[y0,y1]: dmin to the clamped nearest point,
// dmax to the farthest corner.
func rectDistRange(x0, y0, x1, y1, cx, cy float64) (dmin, dmax float64) {
	nx, ny := cx, cy
	if nx < x0 {
		nx = x0
	} else if nx > x1 {
		nx = x1
	}
	if ny < y0 {
		ny = y0
	} else if ny > y1 {
		ny = y1
	}
	fx, fy := x0, y0
	if cx-x0 < x1-cx {
		fx = x1
	}
	if cy-y0 < y1-cy {
		fy = y1
	}
	return math.Hypot(cx-nx, cy-ny), math.Hypot(cx-fx, cy-fy)
}

// rampRange maps exact bounds on the signed distance through the
// monotone ramp.
func rampRange(dlo, dhi, t float64) (lo, hi float64) {
	return ramp(dlo, t), ramp(dhi, t)
}

// Region is a plate-oriented membership function: Support is 1 in the
// region core, falls linearly to 0 across a transition band, and is 0
// outside. At the nominal boundary the support is exactly 1/2, so two
// abutting regions with equal band widths cross-fade symmetrically —
// the linear interpolation of paper eqns (38)–(39).
type Region interface {
	Support(x, y float64) float64
}

// ramp converts a signed distance to the region boundary (positive
// inside) into a support value with transition half-width t.
func ramp(d, t float64) float64 {
	if t <= 0 { // hard boundary
		if d >= 0 {
			return 1
		}
		return 0
	}
	s := 0.5 + d/(2*t)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Rect is an axis-aligned rectangular region [X0,X1]×[Y0,Y1] with
// transition half-width T. Infinite extents are allowed (±Inf) so
// half-planes and quadrants are expressible.
type Rect struct {
	X0, Y0, X1, Y1 float64
	T              float64
}

// Support implements Region using the signed distance to the rectangle
// boundary.
func (r Rect) Support(x, y float64) float64 {
	dx := math.Min(x-r.X0, r.X1-x)
	dy := math.Min(y-r.Y0, r.Y1-y)
	return ramp(math.Min(dx, dy), r.T)
}

// SupportRange implements SupportRanger exactly: the signed distance
// min(dx(x), dy(y)) separates over the axes, so its extremes over a
// rectangle are the axis-wise extremes combined — min over a product
// set of a minimum of independent terms is the min of the per-axis
// minima, and likewise for the max.
func (r Rect) SupportRange(x0, y0, x1, y1 float64) (lo, hi float64) {
	dxmin, dxmax := axisRange(x0, x1, r.X0, r.X1)
	dymin, dymax := axisRange(y0, y1, r.Y0, r.Y1)
	return rampRange(math.Min(dxmin, dymin), math.Min(dxmax, dymax), r.T)
}

// Circle is a disc of radius R centered at (CX, CY) with transition
// half-width T — the Fig. 3 geometry.
type Circle struct {
	CX, CY, R float64
	T         float64
}

// Support implements Region.
func (c Circle) Support(x, y float64) float64 {
	d := c.R - math.Hypot(x-c.CX, y-c.CY)
	return ramp(d, c.T)
}

// SupportRange implements SupportRanger exactly: the center distance
// over a rectangle spans [nearest clamped point, farthest corner], and
// d = R − dist is monotone in it.
func (c Circle) SupportRange(x0, y0, x1, y1 float64) (lo, hi float64) {
	dmin, dmax := rectDistRange(x0, y0, x1, y1, c.CX, c.CY)
	return rampRange(c.R-dmax, c.R-dmin, c.T)
}

// Complement is the outside of another region: its support is
// 1 − Inner.Support, giving an exact partition of unity with the inner
// region (how Fig. 3 pairs "inside the pond" with "everything else").
type Complement struct {
	Inner Region
}

// Support implements Region.
func (c Complement) Support(x, y float64) float64 { return 1 - c.Inner.Support(x, y) }

// SupportRange implements SupportRanger by reflecting the inner
// region's bounds through 1 − s.
func (c Complement) SupportRange(x0, y0, x1, y1 float64) (lo, hi float64) {
	ilo, ihi := supportRange(c.Inner, x0, y0, x1, y1)
	return 1 - ihi, 1 - ilo
}

// PlateBlender implements the plate-oriented method: component m's
// weight at a point is region m's support, normalized over all regions.
// Where exactly two regions overlap in a band this is the paper's linear
// interpolation (eqns 37–39); where more overlap (e.g. the meeting point
// of four quadrants) it degrades gracefully to the normalized mix.
type PlateBlender struct {
	Regions []Region
}

// NewPlateBlender validates and wraps the region list; component i of
// the generator corresponds to region i.
func NewPlateBlender(regions []Region) (*PlateBlender, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("inhomo: plate blender needs at least one region")
	}
	return &PlateBlender{Regions: regions}, nil
}

// NumComponents implements Blender.
func (b *PlateBlender) NumComponents() int { return len(b.Regions) }

// BlendWeights implements Blender. If no region claims the point (a
// coverage gap), the weights fall back to uniform so the output remains
// a valid surface; callers should arrange regions to cover the window.
func (b *PlateBlender) BlendWeights(w []float64, x, y float64) {
	var sum float64
	for i, r := range b.Regions {
		s := r.Support(x, y)
		w[i] = s
		sum += s
	}
	if sum <= 0 {
		u := 1 / float64(len(w))
		for i := range w {
			w[i] = u
		}
		return
	}
	inv := 1 / sum
	for i := range w {
		w[i] *= inv
	}
}

// SupportMask implements SupportMasker. Component m is marked active
// when region m's support bound allows a nonzero value somewhere in the
// rectangle. One extra guard mirrors BlendWeights' coverage-gap
// fallback: the pointwise weight sum is at least the sum of the
// per-region lower bounds, so only when that sum is zero could the
// uniform fallback fire somewhere in the rectangle — then every
// component must be treated as active.
func (b *PlateBlender) SupportMask(x0, y0, x1, y1 float64) []bool {
	mask := make([]bool, len(b.Regions))
	var sumLo float64
	for i, r := range b.Regions {
		lo, hi := supportRange(r, x0, y0, x1, y1)
		mask[i] = hi > 0
		sumLo += lo
	}
	if !(sumLo > 0) {
		for i := range mask {
			mask[i] = true
		}
	}
	return mask
}

// Point is one representative point of the point-oriented method,
// carrying the index of the homogeneous component whose statistics hold
// around it. Several points may share a component (Fig. 4 assigns three
// ring points to each spectrum).
type Point struct {
	X, Y      float64
	Component int
}

// PointBlender implements the point-oriented method of §3.2. T is the
// transition half-width of eqn (41): a non-nearest point m participates
// at an observation point n only if the perpendicular distance τ from n
// to the bisector of the segment (nearest point, m) — eqn (42) — is at
// most T.
//
// The blend weights reconstruct eqns (43)–(45) as
//
//	g(m)  = (1 − τ(m)/T)/(M̃+1)   for the M̃ qualifying points
//	g(m*) = 1 − Σ' g(m)
//
// which sums to one, is continuous across the bisector of the two
// nearest points, keeps every weight in [0, 1], and reduces to the
// plate-oriented linear ramp for two points. (The OCR of eqns 44–45 is
// ambiguous about the denominator; see DESIGN.md §5.)
type PointBlender struct {
	Points []Point
	T      float64

	numComponents int
}

// NewPointBlender validates the configuration. T must be positive; every
// point's Component must be a valid index below numComponents.
func NewPointBlender(points []Point, t float64, numComponents int) (*PointBlender, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("inhomo: point blender needs at least one point")
	}
	if !(t > 0) {
		return nil, fmt.Errorf("inhomo: transition half-width T must be positive, got %g", t)
	}
	if numComponents < 1 {
		return nil, fmt.Errorf("inhomo: need at least one component")
	}
	for i, p := range points {
		if p.Component < 0 || p.Component >= numComponents {
			return nil, fmt.Errorf("inhomo: point %d references component %d of %d", i, p.Component, numComponents)
		}
	}
	return &PointBlender{Points: points, T: t, numComponents: numComponents}, nil
}

// NumComponents implements Blender.
func (b *PointBlender) NumComponents() int { return b.numComponents }

// BlendWeights implements Blender.
func (b *PointBlender) BlendWeights(w []float64, x, y float64) {
	for i := range w {
		w[i] = 0
	}
	// Nearest representative point m* (eqn 40).
	best := 0
	bestD2 := math.Inf(1)
	d2 := make([]float64, len(b.Points))
	for i, p := range b.Points {
		dx, dy := x-p.X, y-p.Y
		d2[i] = dx*dx + dy*dy
		if d2[i] < bestD2 {
			bestD2 = d2[i]
			best = i
		}
	}
	// Perpendicular distance to each bisector (eqn 42): for points a=m*
	// and c=m, τ = (|n−c|² − |n−a|²) / (2·|c−a|).
	type cand struct {
		idx int
		tau float64
	}
	var cands []cand
	for i := range b.Points {
		if i == best {
			continue
		}
		sep := math.Hypot(b.Points[i].X-b.Points[best].X, b.Points[i].Y-b.Points[best].Y)
		if sep == 0 {
			// Coincident representative points: always blended, τ = 0.
			cands = append(cands, cand{i, 0})
			continue
		}
		tau := (d2[i] - bestD2) / (2 * sep)
		if tau <= b.T { // eqn (41)
			cands = append(cands, cand{i, tau})
		}
	}
	mTilde := float64(len(cands))
	var others float64
	for _, c := range cands {
		g := (1 - c.tau/b.T) / (mTilde + 1)
		w[b.Points[c.idx].Component] += g
		others += g
	}
	w[b.Points[best].Component] += 1 - others
}

// SupportMask implements SupportMasker. Representative point i can
// carry weight at an observation point n only when τ(i) ≤ T, and
// because the bisector separation obeys sep ≤ |n−p_i| + |n−p*|, eqn
// (42) gives τ(i) ≥ (|n−p_i| − |n−p*|)/2 — so weight requires
// |n−p_i| ≤ |n−p*| + 2T. Over the rectangle, |n−p_i| is at least
// point i's nearest-approach distance and the nearest-point distance
// |n−p*| is at most min_j (farthest-corner distance to p_j); comparing
// those bounds can only over-report activity, never miss it.
func (b *PointBlender) SupportMask(x0, y0, x1, y1 float64) []bool {
	mask := make([]bool, b.numComponents)
	reach := math.Inf(1)
	for _, p := range b.Points {
		_, dmax := rectDistRange(x0, y0, x1, y1, p.X, p.Y)
		reach = math.Min(reach, dmax)
	}
	for _, p := range b.Points {
		dmin, _ := rectDistRange(x0, y0, x1, y1, p.X, p.Y)
		if dmin <= reach+2*b.T {
			mask[p.Component] = true
		}
	}
	return mask
}

// UniformBlender assigns all weight to a single component everywhere —
// the degenerate case that reduces inhomogeneous generation to
// homogeneous generation, used by tests and as a building block.
type UniformBlender struct {
	M, Index int
}

// NumComponents implements Blender.
func (b UniformBlender) NumComponents() int { return b.M }

// BlendWeights implements Blender.
func (b UniformBlender) BlendWeights(w []float64, x, y float64) {
	for i := range w {
		w[i] = 0
	}
	w[b.Index] = 1
}

// SupportMask implements SupportMasker: only Index is ever active.
func (b UniformBlender) SupportMask(x0, y0, x1, y1 float64) []bool {
	mask := make([]bool, b.M)
	mask[b.Index] = true
	return mask
}

// sampleSupportMask approximates SupportMask for blenders outside this
// package by evaluating BlendWeights on a coarse probe lattice of the
// rectangle (corners included). Unlike the SupportMasker contract it is
// NOT conservative — support confined between probes is missed — so the
// tiled engine only resorts to it when EngineTiled is forced on a
// blender that does not publish masks (EngineAuto takes the dense path
// instead; see DESIGN.md §9).
func sampleSupportMask(b Blender, x0, y0, x1, y1 float64) []bool {
	const probes = 8
	mask := make([]bool, b.NumComponents())
	w := make([]float64, len(mask))
	for jy := 0; jy <= probes; jy++ {
		y := y0 + (y1-y0)*float64(jy)/probes
		for ix := 0; ix <= probes; ix++ {
			b.BlendWeights(w, x0+(x1-x0)*float64(ix)/probes, y)
			for i, v := range w {
				if v != 0 {
					mask[i] = true
				}
			}
		}
	}
	return mask
}
