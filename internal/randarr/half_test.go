package randarr

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/rng"
)

// TestHermitianHalfMatchesFull pins the half array to the left half of
// the full Hermitian array bit for bit: same seed, same draws, same
// values. This is what lets the direct DFT method switch to the real
// inverse transform without changing any generated surface.
func TestHermitianHalfMatchesFull(t *testing.T) {
	for _, c := range []struct{ nx, ny int }{{4, 4}, {8, 6}, {5, 7}, {6, 5}, {16, 16}, {9, 3}} {
		full := Hermitian(c.nx, c.ny, rng.NewGaussian(42))
		half := HermitianHalf(c.nx, c.ny, rng.NewGaussian(42))
		hx := c.nx/2 + 1
		if half.Nx != hx || half.Ny != c.ny {
			t.Fatalf("%dx%d: half is %dx%d, want %dx%d", c.nx, c.ny, half.Nx, half.Ny, hx, c.ny)
		}
		for my := 0; my < c.ny; my++ {
			for mx := 0; mx < hx; mx++ {
				if !approx.ExactC(half.At(mx, my), full.At(mx, my)) {
					t.Fatalf("%dx%d: bin (%d,%d) = %v, want %v",
						c.nx, c.ny, mx, my, half.At(mx, my), full.At(mx, my))
				}
			}
		}
	}
}

// TestHermitianHalfSelfConjugateColumns checks the in-column symmetry
// the real inverse relies on: the kx = 0 column (and kx = nx/2 for even
// nx) must satisfy u[kx, ny−ky] = conj(u[kx, ky]).
func TestHermitianHalfSelfConjugateColumns(t *testing.T) {
	for _, c := range []struct{ nx, ny int }{{8, 8}, {5, 6}, {12, 9}} {
		u := HermitianHalf(c.nx, c.ny, rng.NewGaussian(7))
		cols := []int{0}
		if c.nx%2 == 0 {
			cols = append(cols, c.nx/2)
		}
		for _, kx := range cols {
			for ky := 0; ky < c.ny; ky++ {
				a := u.At(kx, ky)
				b := u.At(kx, (c.ny-ky)%c.ny)
				if math.Abs(real(a)-real(b)) > 0 || math.Abs(imag(a)+imag(b)) > 0 {
					t.Fatalf("%dx%d: column %d not self-conjugate at ky=%d: %v vs %v",
						c.nx, c.ny, kx, ky, a, b)
				}
			}
		}
	}
}
