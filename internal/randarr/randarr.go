// Package randarr builds the Hermitian-symmetric complex Gaussian arrays
// of paper §2.3 (eqns 19–28). The bookkeeping in the paper's eqns 21–28
// exists to guarantee three properties, which this implementation states
// directly:
//
//  1. conjugate symmetry u[(N−m) mod N] = conj(u[m]) in both axes, so the
//     inverse transform Σ_m u[m]·e^{+j2πm·n/N} is exactly real;
//  2. unit variance per bin: E|u[m]|² = 1 (generic bins are (X+jY)/√2,
//     self-conjugate bins are real N(0,1));
//  3. independence between bins that are not conjugate partners.
//
// Together these give paper eqn (33): DFT(u)/√(NxNy) is a real white
// N(0,1) field.
package randarr

import (
	"fmt"
	"math"

	"roughsurface/internal/grid"
	"roughsurface/internal/rng"
)

// Hermitian returns an nx×ny complex Gaussian array with the three
// properties above, drawing variates from g in a fixed raster order so
// results are reproducible for a given seed.
func Hermitian(nx, ny int, g rng.Normal) *grid.CGrid {
	u := grid.NewC(nx, ny)
	invSqrt2 := 1 / math.Sqrt2
	for my := 0; my < ny; my++ {
		py := (ny - my) % ny
		for mx := 0; mx < nx; mx++ {
			px := (nx - mx) % nx
			self := u.Index(mx, my)
			partner := u.Index(px, py)
			switch {
			case self == partner:
				// Self-conjugate bin (DC or Nyquist in both axes):
				// must be real to keep the transform real.
				u.Data[self] = complex(g.Next(), 0)
			case self < partner:
				// Canonical member of the pair: draw both components
				// here; the partner is the conjugate.
				re := g.Next() * invSqrt2
				im := g.Next() * invSqrt2
				u.Data[self] = complex(re, im)
				u.Data[partner] = complex(re, -im)
			}
			// self > partner: already filled when the partner was visited.
		}
	}
	return u
}

// HermitianHalf returns only the non-redundant left half of the array
// Hermitian would produce: hx = nx/2+1 columns (mx = 0..nx/2) of ny
// rows. It draws variates from g in exactly the raster order of
// Hermitian — including draws whose canonical bin lies in the dropped
// right half — so for a given stream the retained bins are bit-identical
// to Hermitian's; a generator switching to the half-spectrum inverse
// keeps reproducing the same surfaces seed for seed.
//
// The kx = 0 column (and the kx = nx/2 column for even nx) is
// self-conjugate under the 2D symmetry, so within those columns
// u[kx, (ny−ky) mod ny] = conj(u[kx, ky]) — the structure the paper's
// eqns 21–28 enumerate case by case and the real inverse transform
// relies on.
func HermitianHalf(nx, ny int, g rng.Normal) *grid.CGrid {
	u := grid.NewC(nx/2+1, ny)
	HermitianHalfInto(u, nx, g)
	return u
}

// HermitianHalfInto is HermitianHalf writing into a caller-supplied
// (nx/2+1)×ny array, so steady-state generators can reuse scratch.
// Every retained bin is overwritten.
func HermitianHalfInto(u *grid.CGrid, nx int, g rng.Normal) {
	hx := nx/2 + 1
	ny := u.Ny
	if u.Nx != hx {
		panic(fmt.Sprintf("randarr: half array is %dx%d, want %dx%d", u.Nx, u.Ny, hx, ny))
	}
	invSqrt2 := 1 / math.Sqrt2
	for my := 0; my < ny; my++ {
		py := (ny - my) % ny
		for mx := 0; mx < nx; mx++ {
			px := (nx - mx) % nx
			self := my*nx + mx
			partner := py*nx + px
			switch {
			case self == partner:
				// Self-conjugate bins have mx ∈ {0, nx/2}, always
				// inside the retained half.
				u.Data[u.Index(mx, my)] = complex(g.Next(), 0)
			case self < partner:
				re := g.Next() * invSqrt2
				im := g.Next() * invSqrt2
				if mx < hx {
					u.Data[u.Index(mx, my)] = complex(re, im)
				}
				if px < hx {
					u.Data[u.Index(px, py)] = complex(re, -im)
				}
			}
		}
	}
}

// IsHermitian reports whether u satisfies the conjugate symmetry within
// tol, and that all self-conjugate bins are real.
func IsHermitian(u *grid.CGrid, tol float64) bool {
	for my := 0; my < u.Ny; my++ {
		py := (u.Ny - my) % u.Ny
		for mx := 0; mx < u.Nx; mx++ {
			px := (u.Nx - mx) % u.Nx
			a := u.At(mx, my)
			b := u.At(px, py)
			if math.Abs(real(a)-real(b)) > tol || math.Abs(imag(a)+imag(b)) > tol {
				return false
			}
		}
	}
	return true
}
