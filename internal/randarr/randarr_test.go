package randarr

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/fft"
	"roughsurface/internal/rng"
	"roughsurface/internal/stats"
)

func TestHermitianSymmetry(t *testing.T) {
	for _, size := range [][2]int{{8, 8}, {16, 8}, {7, 9}, {1, 4}, {64, 64}} {
		u := Hermitian(size[0], size[1], rng.NewGaussian(1))
		if !IsHermitian(u, 0) {
			t.Errorf("%dx%d array is not Hermitian", size[0], size[1])
		}
	}
}

func TestIsHermitianDetectsViolation(t *testing.T) {
	u := Hermitian(8, 8, rng.NewGaussian(2))
	u.Set(1, 0, u.At(1, 0)+complex(0, 0.5))
	if IsHermitian(u, 1e-9) {
		t.Error("IsHermitian missed a broken pair")
	}
}

func TestSelfConjugateBinsAreReal(t *testing.T) {
	u := Hermitian(8, 6, rng.NewGaussian(3))
	for _, bin := range [][2]int{{0, 0}, {4, 0}, {0, 3}, {4, 3}} {
		if imag(u.At(bin[0], bin[1])) != 0 {
			t.Errorf("self-conjugate bin %v has imaginary part", bin)
		}
	}
}

func TestBinVariances(t *testing.T) {
	// Average |u[m]|² over many realizations at a few probe bins.
	const trials = 4000
	var genVar, selfVar float64
	for s := 0; s < trials; s++ {
		u := Hermitian(8, 8, rng.NewGaussian(uint64(s+10)))
		g := u.At(1, 2) // generic bin
		genVar += real(g)*real(g) + imag(g)*imag(g)
		sc := u.At(4, 0) // self-conjugate (Nyquist, DC)
		selfVar += real(sc) * real(sc)
	}
	genVar /= trials
	selfVar /= trials
	if math.Abs(genVar-1) > 0.08 {
		t.Errorf("generic bin E|u|² = %g, want 1", genVar)
	}
	if math.Abs(selfVar-1) > 0.08 {
		t.Errorf("self-conjugate bin variance = %g, want 1", selfVar)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Hermitian(16, 16, rng.NewGaussian(7))
	b := Hermitian(16, 16, rng.NewGaussian(7))
	for i := range a.Data {
		if !approx.ExactC(a.Data[i], b.Data[i]) {
			t.Fatal("same seed produced different arrays")
		}
	}
}

// TestHermitianDFTIsWhiteGaussian is experiment E6: paper eqn (33) —
// the unnormalized inverse transform of u, divided by √(NxNy), is a real
// white N(0,1) field.
func TestHermitianDFTIsWhiteGaussian(t *testing.T) {
	const nx, ny = 64, 64
	u := Hermitian(nx, ny, rng.NewGaussian(11))
	data := append([]complex128(nil), u.Data...)
	p := fft.MustPlan2D(nx, ny)
	p.InverseUnscaled(data)

	scale := 1 / math.Sqrt(float64(nx*ny))
	field := make([]float64, nx*ny)
	for i, v := range data {
		if math.Abs(imag(v)) > 1e-9 {
			t.Fatalf("transform not real at %d: imag %g", i, imag(v))
		}
		field[i] = real(v) * scale
	}

	sum := stats.Describe(field)
	if math.Abs(sum.Mean) > 0.06 {
		t.Errorf("field mean %g", sum.Mean)
	}
	if math.Abs(sum.Std-1) > 0.05 {
		t.Errorf("field std %g, want 1", sum.Std)
	}
	if _, pval := stats.KSNormal(field, 0, 1); pval < 0.005 {
		t.Errorf("KS rejects normality: p=%g", pval)
	}

	// Whiteness: neighbouring-sample correlation should vanish.
	var c10, c01, v0 float64
	for iy := 0; iy < ny-1; iy++ {
		for ix := 0; ix < nx-1; ix++ {
			x := field[iy*nx+ix]
			v0 += x * x
			c10 += x * field[iy*nx+ix+1]
			c01 += x * field[(iy+1)*nx+ix]
		}
	}
	if r := c10 / v0; math.Abs(r) > 0.05 {
		t.Errorf("lag (1,0) correlation %g", r)
	}
	if r := c01 / v0; math.Abs(r) > 0.05 {
		t.Errorf("lag (0,1) correlation %g", r)
	}
}

func TestOddSizesTransformReal(t *testing.T) {
	// Odd dimensions have only the DC self-conjugate bin; the transform
	// must still be exactly real.
	const nx, ny = 15, 9
	u := Hermitian(nx, ny, rng.NewGaussian(13))
	data := append([]complex128(nil), u.Data...)
	fft.MustPlan2D(nx, ny).InverseUnscaled(data)
	for i, v := range data {
		if math.Abs(imag(v)) > 1e-9 {
			t.Fatalf("odd-size transform not real at %d: %g", i, imag(v))
		}
	}
}
