package oned

import (
	"fmt"
	"math"

	"roughsurface/internal/approx"
	"roughsurface/internal/fft"
	"roughsurface/internal/rng"
)

// Weights builds the 1D discrete weighting vector (the 1D analogue of
// paper eqn 15): w[m] = (2π/L)·W(k_m̃), k_m = 2π·m̃/L with index
// folding, for an n-point DFT over physical length L = n·dx.
func Weights(s Spectrum, n int, dx float64) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("oned: weight vector needs n >= 2, got %d", n))
	}
	if !(dx > 0) {
		panic(fmt.Sprintf("oned: invalid spacing %g", dx))
	}
	l := float64(n) * dx
	dk := 2 * math.Pi / l
	w := make([]float64, n)
	for m := range w {
		f := m
		if 2*m > n {
			f = n - m
		}
		w[m] = dk * s.Density(dk*float64(f))
	}
	return w
}

// Kernel is the 1D convolution-method weighting vector: centered FIR
// taps whose self-correlation equals the autocorrelation ρ.
type Kernel struct {
	C    int // index of the zero-lag tap
	Dx   float64
	Taps []float64
}

// DesignKernel builds and truncates a 1D kernel: design grid of the
// next power of two covering spanCL correlation lengths (default 8 for
// spanCL <= 0), truncated to retain 1−eps of the tap energy (default
// 1e-4; pass a negative eps to skip truncation).
func DesignKernel(s Spectrum, dx, spanCL, eps float64) (*Kernel, error) {
	if !(dx > 0) {
		return nil, fmt.Errorf("oned: invalid spacing %g", dx)
	}
	if spanCL <= 0 {
		spanCL = 8
	}
	n := 16
	for float64(n) < spanCL*s.CorrelationLength()/dx {
		n <<= 1
	}
	w := Weights(s, n, dx)
	v := make([]float64, n)
	for i, x := range w {
		v[i] = math.Sqrt(x)
	}
	plan, err := fft.CachedPlan(n)
	if err != nil {
		return nil, err
	}
	// sqrt(w) is even (w uses the folded index), so its transform is real
	// and even: the full spectrum is the half spectrum mirrored,
	// X[i] = X[n−i] for i > n/2, with no conjugation effect on the real
	// part we keep.
	half := make([]complex128, plan.HalfLen())
	plan.ForwardReal(half, v)
	for k, z := range half {
		if math.Abs(imag(z)) > 1e-9*(1+s.SigmaH()) {
			return nil, fmt.Errorf("oned: kernel transform not real (bin %d residue %g)", k, imag(z))
		}
	}
	taps := make([]float64, n)
	scale := 1 / math.Sqrt(float64(n))
	for i := range taps {
		b := i
		if 2*i > n {
			b = n - i
		}
		// fft-shift: center the kernel.
		taps[(i+n/2)%n] = real(half[b]) * scale
	}
	k := &Kernel{C: n / 2, Dx: dx, Taps: taps}
	if eps < 0 {
		return k, nil
	}
	if eps == 0 {
		eps = 1e-4
	}
	return k.truncate(eps), nil
}

// Energy returns Σ taps² ≈ h².
func (k *Kernel) Energy() float64 {
	var e float64
	for _, t := range k.Taps {
		e += t * t
	}
	return e
}

func (k *Kernel) truncate(eps float64) *Kernel {
	total := k.Energy()
	if total == 0 {
		return k
	}
	acc := k.Taps[k.C] * k.Taps[k.C]
	r := 0
	for acc < (1-eps)*total {
		r++
		grew := false
		if lo := k.C - r; lo >= 0 {
			acc += k.Taps[lo] * k.Taps[lo]
			grew = true
		}
		if hi := k.C + r; hi < len(k.Taps) {
			acc += k.Taps[hi] * k.Taps[hi]
			grew = true
		}
		if !grew {
			break
		}
	}
	lo := clampIdx(k.C-r, len(k.Taps))
	hi := clampIdx(k.C+r+1, len(k.Taps))
	return &Kernel{C: k.C - lo, Dx: k.Dx, Taps: append([]float64(nil), k.Taps[lo:hi]...)}
}

func clampIdx(v, n int) int {
	if v < 0 {
		return 0
	}
	if v > n {
		return n
	}
	return v
}

// Generator produces 1D profiles by the convolution method over the
// counter-based noise field (row j = 0 of the 2D field, so 1D and 2D
// generators with the same seed are independent streams for j ≠ 0).
type Generator struct {
	kernel *Kernel
	field  rng.Field
}

// NewGenerator wraps a kernel and a seed.
func NewGenerator(k *Kernel, seed uint64) *Generator {
	return &Generator{kernel: k, field: rng.NewField(seed)}
}

// Kernel exposes the generator's kernel.
func (g *Generator) Kernel() *Kernel { return g.kernel }

// GenerateAt materializes profile samples for lattice indices
// [i0, i0+n): out[i] = f((i0+i)·dx).
func (g *Generator) GenerateAt(i0 int64, n int) []float64 {
	if n < 1 {
		panic(fmt.Sprintf("oned: invalid window %d", n))
	}
	k := g.kernel
	w := n + len(k.Taps) - 1
	noise := make([]float64, w)
	g.field.FillRow(noise, i0-int64(k.C), 0)
	out := make([]float64, n)
	for i := range out {
		var acc float64
		seg := noise[i : i+len(k.Taps)]
		for a, tap := range k.Taps {
			acc += tap * seg[a]
		}
		out[i] = acc
	}
	return out
}

// GenerateCentered materializes n samples centered on the origin.
func (g *Generator) GenerateCentered(n int) []float64 {
	return g.GenerateAt(-int64(n/2), n)
}

// DirectDFT synthesizes one n-sample homogeneous profile by the 1D
// direct DFT method (the 1D analogue of paper eqn 30): a Hermitian
// Gaussian vector weighted by sqrt(w) and transformed.
func DirectDFT(s Spectrum, n int, dx float64, normal rng.Normal) []float64 {
	w := Weights(s, n, dx)
	plan, err := fft.CachedPlan(n)
	if err != nil {
		panic(err)
	}
	// Only the non-redundant half spectrum is materialized; the draw
	// order matches the historical full-spectrum loop (m = 0..n/2, two
	// variates per conjugate pair), so surfaces stay bit-identical seed
	// for seed.
	u := make([]complex128, plan.HalfLen())
	invSqrt2 := 1 / math.Sqrt2
	for m := range u {
		if (n-m)%n == m { // DC, and Nyquist for even n
			u[m] = complex(normal.Next()*math.Sqrt(w[m]), 0)
			continue
		}
		re := normal.Next() * invSqrt2
		im := normal.Next() * invSqrt2
		a := math.Sqrt(w[m])
		u[m] = complex(re*a, im*a)
	}
	out := make([]float64, n)
	plan.InverseRealUnscaledTo(out, u)
	return out
}

// Piecewise blends homogeneous 1D components along the axis: component
// m rules the interval around Breaks[m-1]..Breaks[m] with linear
// cross-fades of half-width T at each break — the 1D specialization of
// the plate-oriented method.
type Piecewise struct {
	gens   []*Generator
	breaks []float64
	t      float64
	dx     float64
}

// NewPiecewise builds the blender: len(kernels) = len(breaks)+1
// components; breaks must be strictly increasing.
func NewPiecewise(kernels []*Kernel, breaks []float64, t float64, seed uint64) (*Piecewise, error) {
	if len(kernels) < 1 {
		return nil, fmt.Errorf("oned: need at least one kernel")
	}
	if len(kernels) != len(breaks)+1 {
		return nil, fmt.Errorf("oned: %d kernels need %d breaks, got %d",
			len(kernels), len(kernels)-1, len(breaks))
	}
	if !(t >= 0) {
		return nil, fmt.Errorf("oned: negative transition half-width %g", t)
	}
	dx := kernels[0].Dx
	for i := 1; i < len(breaks); i++ {
		if breaks[i] <= breaks[i-1] {
			return nil, fmt.Errorf("oned: breaks not increasing at %d", i)
		}
	}
	gens := make([]*Generator, len(kernels))
	for i, k := range kernels {
		if !approx.Exact(k.Dx, dx) {
			return nil, fmt.Errorf("oned: kernel %d spacing %g differs from %g", i, k.Dx, dx)
		}
		gens[i] = NewGenerator(k, seed)
	}
	return &Piecewise{gens: gens, breaks: breaks, t: t, dx: dx}, nil
}

// weight returns component m's blend weight at position x: 1 deep in
// its interval, linear ramps of half-width t at its breaks.
func (p *Piecewise) weight(m int, x float64) float64 {
	w := 1.0
	if m > 0 { // left edge at breaks[m-1]
		w = math.Min(w, rampAt(x-p.breaks[m-1], p.t))
	}
	if m < len(p.breaks) { // right edge at breaks[m]
		w = math.Min(w, rampAt(p.breaks[m]-x, p.t))
	}
	return w
}

func rampAt(d, t float64) float64 {
	if t <= 0 {
		if d >= 0 {
			return 1
		}
		return 0
	}
	v := 0.5 + d/(2*t)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// GenerateAt materializes the blended profile for lattice indices
// [i0, i0+n).
func (p *Piecewise) GenerateAt(i0 int64, n int) []float64 {
	fields := make([][]float64, len(p.gens))
	for m, g := range p.gens {
		fields[m] = g.GenerateAt(i0, n)
	}
	out := make([]float64, n)
	ws := make([]float64, len(p.gens))
	for i := range out {
		x := float64(i0+int64(i)) * p.dx
		var sum float64
		for m := range ws {
			ws[m] = p.weight(m, x)
			sum += ws[m]
		}
		if sum <= 0 {
			sum = 1
		}
		var acc float64
		for m := range ws {
			acc += ws[m] / sum * fields[m][i]
		}
		out[i] = acc
	}
	return out
}
