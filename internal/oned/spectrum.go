// Package oned implements one-dimensional random rough profile
// generation — the companion of the 2D machinery, matching how the
// paper's program of work (refs [8]–[12]) feeds rough profiles f(x) to
// propagation solvers. The structure mirrors the 2D packages: spectral
// families with exact analytic autocorrelations, discrete weighting
// vectors, the direct DFT method, and the convolution method with
// seamless streaming, plus piecewise-inhomogeneous blending.
//
// All densities satisfy ∫ W(k) dk = h², i.e. ρ(0) = h².
package oned

import (
	"fmt"
	"math"

	"roughsurface/internal/spectrum"
)

// Spectrum describes one homogeneous profile model.
type Spectrum interface {
	// Density evaluates the 1D spectral density W(k).
	Density(k float64) float64
	// Autocorrelation evaluates ρ(x); ρ(0) = h².
	Autocorrelation(x float64) float64
	// SigmaH reports the height standard deviation h.
	SigmaH() float64
	// CorrelationLength reports cl.
	CorrelationLength() float64
	// Name identifies the family.
	Name() string
}

func validate(h, cl float64) error {
	if !(h > 0) || math.IsInf(h, 0) {
		return fmt.Errorf("oned: height deviation h must be positive and finite, got %g", h)
	}
	if !(cl > 0) || math.IsInf(cl, 0) {
		return fmt.Errorf("oned: correlation length must be positive and finite, got %g", cl)
	}
	return nil
}

// Gaussian is the 1D Gaussian pair
//
//	W(k) = (cl·h²/2√π)·exp(−(k·cl/2)²),   ρ(x) = h²·exp(−(x/cl)²)
type Gaussian struct {
	h, cl float64
}

// NewGaussian validates parameters and returns the spectrum.
func NewGaussian(h, cl float64) (*Gaussian, error) {
	if err := validate(h, cl); err != nil {
		return nil, err
	}
	return &Gaussian{h: h, cl: cl}, nil
}

// MustGaussian panics on invalid parameters.
func MustGaussian(h, cl float64) *Gaussian {
	s, err := NewGaussian(h, cl)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Gaussian) Density(k float64) float64 {
	u := k * s.cl / 2
	return s.cl * s.h * s.h / (2 * math.SqrtPi) * math.Exp(-u*u)
}

func (s *Gaussian) Autocorrelation(x float64) float64 {
	a := x / s.cl
	return s.h * s.h * math.Exp(-a*a)
}

func (s *Gaussian) SigmaH() float64            { return s.h }
func (s *Gaussian) CorrelationLength() float64 { return s.cl }
func (s *Gaussian) Name() string               { return "gaussian" }

// Exponential is the 1D Lorentzian/exponential pair
//
//	W(k) = (cl·h²/π)/(1 + (k·cl)²),   ρ(x) = h²·exp(−|x|/cl)
type Exponential struct {
	h, cl float64
}

// NewExponential validates parameters and returns the spectrum.
func NewExponential(h, cl float64) (*Exponential, error) {
	if err := validate(h, cl); err != nil {
		return nil, err
	}
	return &Exponential{h: h, cl: cl}, nil
}

// MustExponential panics on invalid parameters.
func MustExponential(h, cl float64) *Exponential {
	s, err := NewExponential(h, cl)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Exponential) Density(k float64) float64 {
	u := k * s.cl
	return s.cl * s.h * s.h / math.Pi / (1 + u*u)
}

func (s *Exponential) Autocorrelation(x float64) float64 {
	return s.h * s.h * math.Exp(-math.Abs(x)/s.cl)
}

func (s *Exponential) SigmaH() float64            { return s.h }
func (s *Exponential) CorrelationLength() float64 { return s.cl }
func (s *Exponential) Name() string               { return "exponential" }

// PowerLaw is the 1D N-th order power-law pair (the Matérn family with
// ν = N − 1/2):
//
//	W(k) = (cl·h²/2√π)·(Γ(N)/Γ(N−1/2))·[1 + (k·cl/2)²]^(−N)
//	ρ(x) = (2h²/Γ(ν))·(s/2)^ν·K_ν(s),   s = |2x/cl|,  ν = N − 1/2
//
// with N > 1/2 for integrability (the paper's 2D constraint N > 1 is
// kept for interface parity).
type PowerLaw struct {
	h, cl, n float64
	nu       float64
	norm     float64 // 2/Γ(ν)
}

// NewPowerLaw validates parameters (N > 1) and returns the spectrum.
func NewPowerLaw(h, cl, n float64) (*PowerLaw, error) {
	if err := validate(h, cl); err != nil {
		return nil, err
	}
	if !(n > 1) || math.IsInf(n, 0) {
		return nil, fmt.Errorf("oned: power-law order N must exceed 1, got %g", n)
	}
	nu := n - 0.5
	return &PowerLaw{h: h, cl: cl, n: n, nu: nu, norm: 2 / math.Gamma(nu)}, nil
}

// MustPowerLaw panics on invalid parameters.
func MustPowerLaw(h, cl, n float64) *PowerLaw {
	s, err := NewPowerLaw(h, cl, n)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *PowerLaw) Density(k float64) float64 {
	u := k * s.cl / 2
	base := 1 + u*u
	return s.cl * s.h * s.h / (2 * math.SqrtPi) *
		math.Gamma(s.n) / math.Gamma(s.n-0.5) * math.Pow(base, -s.n)
}

func (s *PowerLaw) Autocorrelation(x float64) float64 {
	arg := math.Abs(2 * x / s.cl)
	if arg < 1e-8 {
		return s.h * s.h
	}
	return s.h * s.h * s.norm * math.Pow(arg/2, s.nu) * spectrum.BesselK(s.nu, arg)
}

func (s *PowerLaw) SigmaH() float64            { return s.h }
func (s *PowerLaw) CorrelationLength() float64 { return s.cl }
func (s *PowerLaw) Name() string               { return fmt.Sprintf("powerlaw%g", s.n) }
