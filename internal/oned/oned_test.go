package oned

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/fft"
	"roughsurface/internal/rng"
	"roughsurface/internal/stats"
)

func allSpectra() []Spectrum {
	return []Spectrum{
		MustGaussian(1.3, 10),
		MustExponential(0.9, 12),
		MustPowerLaw(1.1, 10, 2),
		MustPowerLaw(1.0, 8, 3),
	}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewGaussian(0, 5); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := NewExponential(1, -5); err == nil {
		t.Error("cl<0 accepted")
	}
	if _, err := NewPowerLaw(1, 5, 1); err == nil {
		t.Error("N=1 accepted")
	}
}

func TestDensityIntegratesToVariance(t *testing.T) {
	for _, s := range allSpectra() {
		// Trapezoid over a wide symmetric window; the 1D heavy tails
		// decay like k^{-2} (exponential) so the window must be wide.
		cl := s.CorrelationLength()
		km := 3000 / cl
		n := 2_000_000
		dk := 2 * km / float64(n)
		var sum float64
		for i := 0; i < n; i++ {
			k := -km + (float64(i)+0.5)*dk
			sum += s.Density(k)
		}
		sum *= dk
		h2 := s.SigmaH() * s.SigmaH()
		if math.Abs(sum-h2)/h2 > 0.01 {
			t.Errorf("%s: ∫W = %g want %g", s.Name(), sum, h2)
		}
	}
}

func TestAutocorrelationProperties(t *testing.T) {
	for _, s := range allSpectra() {
		h2 := s.SigmaH() * s.SigmaH()
		if got := s.Autocorrelation(0); math.Abs(got-h2) > 1e-9*h2 {
			t.Errorf("%s: ρ(0) = %g want %g", s.Name(), got, h2)
		}
		if !approx.Exact(s.Autocorrelation(3), s.Autocorrelation(-3)) {
			t.Errorf("%s: ρ not even", s.Name())
		}
		prev := h2
		for _, x := range []float64{1, 2, 5, 10, 25, 60} {
			cur := s.Autocorrelation(x)
			if cur > prev+1e-12 {
				t.Errorf("%s: ρ not decaying at %g", s.Name(), x)
			}
			prev = cur
		}
	}
}

func TestExponentialOneOverE(t *testing.T) {
	s := MustExponential(2, 9)
	if got := s.Autocorrelation(9); math.Abs(got-4/math.E) > 1e-12 {
		t.Errorf("ρ(cl) = %g want h²/e", got)
	}
}

// TestWeightDFTMatchesAutocorrelation is the 1D version of experiment
// E5: the exact Fourier-pair check for all three families, which pins
// both the density normalizations and the Bessel-K power-law pair.
func TestWeightDFTMatchesAutocorrelation(t *testing.T) {
	cases := []struct {
		s   Spectrum
		tol float64
	}{
		{MustGaussian(1.3, 10), 1e-8},
		{MustPowerLaw(1.1, 10, 2), 0.03},
		{MustPowerLaw(1.0, 10, 3), 0.03},
		{MustExponential(0.9, 10), 0.08}, // k^{-2} tail beyond Nyquist
	}
	const n = 4096
	plan := fft.MustPlan(n)
	for _, c := range cases {
		w := Weights(c.s, n, 1)
		work := make([]complex128, n)
		for i, v := range w {
			work[i] = complex(v, 0)
		}
		plan.InverseUnscaled(work, work)
		h2 := c.s.SigmaH() * c.s.SigmaH()
		var rmse float64
		for i := 0; i < n; i++ {
			lag := i
			if 2*i > n {
				lag = n - i
			}
			d := real(work[i]) - c.s.Autocorrelation(float64(lag))
			rmse += d * d
		}
		rmse = math.Sqrt(rmse/float64(n)) / h2
		if rmse > c.tol {
			t.Errorf("%s: DFT(w) vs ρ relative RMSE %g > %g", c.s.Name(), rmse, c.tol)
		}
	}
}

func TestKernelSelfCorrelationIsAutocorrelation(t *testing.T) {
	for _, c := range []struct {
		s   Spectrum
		tol float64
	}{
		{MustGaussian(1.3, 10), 1e-5},
		{MustExponential(0.9, 10), 0.08},
	} {
		k, err := DesignKernel(c.s, 1, 16, -1)
		if err != nil {
			t.Fatal(err)
		}
		h2 := c.s.SigmaH() * c.s.SigmaH()
		for _, lag := range []int{0, 1, 3, 7, 15} {
			var acc float64
			for i := 0; i+lag < len(k.Taps); i++ {
				acc += k.Taps[i] * k.Taps[i+lag]
			}
			want := c.s.Autocorrelation(float64(lag))
			if math.Abs(acc-want)/h2 > c.tol {
				t.Errorf("%s lag %d: kernel self-correlation %g vs ρ %g", c.s.Name(), lag, acc, want)
			}
		}
	}
}

func TestKernelTruncation(t *testing.T) {
	full, err := DesignKernel(MustGaussian(1, 8), 1, 8, -1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DesignKernel(MustGaussian(1, 8), 1, 8, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Taps) >= len(full.Taps) {
		t.Errorf("truncation did not shrink: %d vs %d taps", len(tr.Taps), len(full.Taps))
	}
	if tr.Energy() < (1-1e-4)*full.Energy() {
		t.Error("truncated energy below criterion")
	}
	if !approx.Exact(tr.Taps[tr.C], full.Taps[full.C]) {
		t.Error("center tap moved")
	}
}

func TestGenerateStatistics(t *testing.T) {
	s := MustGaussian(1.5, 10)
	k, err := DesignKernel(s, 1, 8, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(k, 7)
	prof := g.GenerateCentered(65536)
	sum := stats.Describe(prof)
	if math.Abs(sum.Std-1.5)/1.5 > 0.08 {
		t.Errorf("profile std %g want 1.5", sum.Std)
	}
	if math.Abs(sum.Mean) > 0.15 {
		t.Errorf("profile mean %g", sum.Mean)
	}
	// Empirical autocorrelation at a few lags.
	for _, lag := range []int{0, 5, 10, 20} {
		var acc float64
		n := len(prof) - lag
		for i := 0; i < n; i++ {
			acc += prof[i] * prof[i+lag]
		}
		acc /= float64(n)
		want := s.Autocorrelation(float64(lag))
		if math.Abs(acc-want) > 0.15 {
			t.Errorf("lag %d: C = %g want %g", lag, acc, want)
		}
	}
}

func TestGenerateSeamless(t *testing.T) {
	k, err := DesignKernel(MustExponential(1, 6), 1, 8, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(k, 11)
	a := g.GenerateAt(0, 200)
	b := g.GenerateAt(100, 200)
	for i := 0; i < 100; i++ {
		if !approx.Exact(a[100+i], b[i]) {
			t.Fatalf("overlap mismatch at %d", i)
		}
	}
}

func TestDirectDFTStatistics(t *testing.T) {
	s := MustExponential(1.2, 8)
	prof := DirectDFT(s, 32768, 1, rng.NewZiggurat(5))
	sum := stats.Describe(prof)
	if math.Abs(sum.Std-1.2)/1.2 > 0.1 {
		t.Errorf("direct-DFT std %g want 1.2", sum.Std)
	}
	// Odd length must work (Bluestein path) and stay real.
	profOdd := DirectDFT(s, 999, 1, rng.NewGaussian(6))
	if len(profOdd) != 999 {
		t.Fatal("wrong length")
	}
}

func TestPiecewiseValidation(t *testing.T) {
	k, err := DesignKernel(MustGaussian(1, 5), 1, 6, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPiecewise(nil, nil, 5, 1); err == nil {
		t.Error("no kernels accepted")
	}
	if _, err := NewPiecewise([]*Kernel{k, k}, nil, 5, 1); err == nil {
		t.Error("missing break accepted")
	}
	if _, err := NewPiecewise([]*Kernel{k, k, k}, []float64{10, 5}, 5, 1); err == nil {
		t.Error("non-increasing breaks accepted")
	}
	if _, err := NewPiecewise([]*Kernel{k, k}, []float64{0}, -1, 1); err == nil {
		t.Error("negative T accepted")
	}
}

func TestPiecewiseRegionsAndTransition(t *testing.T) {
	calm, err := DesignKernel(MustGaussian(0.3, 5), 1, 8, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	rough, err := DesignKernel(MustGaussian(3.0, 5), 1, 8, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPiecewise([]*Kernel{calm, rough}, []float64{0}, 20, 13)
	if err != nil {
		t.Fatal(err)
	}
	prof := p.GenerateAt(-2048, 4096)
	left := prof[:1500]  // x < -548: calm core
	right := prof[2600:] // x > 552: rough core
	sl := stats.Describe(left).Std
	sr := stats.Describe(right).Std
	if math.Abs(sl-0.3) > 0.1 {
		t.Errorf("calm side std %g want 0.3", sl)
	}
	if math.Abs(sr-3.0) > 0.8 {
		t.Errorf("rough side std %g want 3.0", sr)
	}
	// Mid-transition sample should blend both components.
	mid := prof[2048-10 : 2048+10]
	sm := stats.Describe(mid).Std
	if !(sm > sl && sm < sr) {
		t.Errorf("transition std %g not between %g and %g", sm, sl, sr)
	}
	// Weight sanity.
	if w := p.weight(0, -100); !approx.Exact(w, 1) {
		t.Errorf("deep-left weight %g", w)
	}
	if w := p.weight(0, 0); !approx.Exact(w, 0.5) {
		t.Errorf("break weight %g want 0.5", w)
	}
	if w := p.weight(1, 100); !approx.Exact(w, 1) {
		t.Errorf("deep-right weight %g", w)
	}
}

func TestWeightsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Weights(MustGaussian(1, 5), 1, 1)
}
