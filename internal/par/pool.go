package par

import "sync"

// Pool is a fixed-size worker pool with a bounded task queue — the
// admission-control primitive for request-serving callers (cmd/rrsd).
// Unlike For/ForEach/Dynamic, which fan one call's loop body out and
// join before returning, a Pool owns long-lived workers: TrySubmit
// never blocks, the queue bounds backlog memory, and Close joins every
// worker. Living in internal/par keeps goroutine ownership where the
// repo's lint policy expects it.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts workers goroutines (<= 0 means DefaultWorkers) behind
// a queue holding up to queue tasks beyond the ones currently
// executing. queue may be 0: then TrySubmit succeeds only when a
// worker is ready to receive immediately.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn for execution by some worker. It never blocks:
// the return is false when the queue is full or the pool is closed, and
// the caller decides how to shed the load (rrsd answers 429).
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// QueueDepth reports the tasks accepted but not yet picked up by a
// worker. It is a point-in-time snapshot intended for metrics.
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// Close stops admission, lets the workers drain the already-accepted
// queue, and joins them. Idempotent; blocks until the last task ends.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Background runs fn on a par-owned goroutine and returns a 1-buffered
// channel that receives fn's result exactly once. It exists so that
// singleton lifecycle goroutines (an HTTP server's Serve loop) keep a
// join edge the caller can select on alongside a context.
func Background(fn func() error) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- fn() }()
	return errc
}
