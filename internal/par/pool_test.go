package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsSubmittedTasks(t *testing.T) {
	p := NewPool(4, 16)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		for !p.TrySubmit(func() { ran.Add(1) }) {
			time.Sleep(time.Millisecond)
		}
	}
	p.Close()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d of 100 tasks", got)
	}
}

func TestPoolTrySubmitShedsWhenSaturated(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	if !p.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("first submit refused on an idle pool")
	}
	<-started // the single worker is now occupied

	// Fill the queue slot, then verify overflow is refused, not queued.
	if !p.TrySubmit(func() {}) {
		t.Fatal("queue slot refused while empty")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit accepted beyond workers+queue")
	}
	if d := p.QueueDepth(); d != 1 {
		t.Fatalf("queue depth %d, want 1", d)
	}
	close(block)
}

func TestPoolCloseDrainsQueueAndJoins(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		if !p.TrySubmit(func() { time.Sleep(5 * time.Millisecond); ran.Add(1) }) {
			i-- // retry until accepted; workers drain continuously
			time.Sleep(time.Millisecond)
		}
	}
	p.Close() // must block until every accepted task finished
	if got := ran.Load(); got != 8 {
		t.Fatalf("Close returned with %d of 8 tasks done", got)
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit accepted after Close")
	}
	p.Close() // idempotent
}

func TestPoolConcurrentSubmitAndClose(t *testing.T) {
	// Hammer TrySubmit from many goroutines racing one Close: no panic
	// (send on closed channel) and no lost joins. Run under -race.
	p := NewPool(2, 4)
	var wg sync.WaitGroup //lint:ignore parpolicy stress test must race raw goroutines against Close
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() { //lint:ignore parpolicy stress test must race raw goroutines against Close
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.TrySubmit(func() {})
			}
		}()
	}
	time.Sleep(time.Millisecond)
	p.Close()
	wg.Wait()
}

func TestBackgroundDeliversResult(t *testing.T) {
	errc := Background(func() error { return nil })
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Background never delivered")
	}
}
