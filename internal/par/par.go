// Package par provides small helpers for data-parallel loops used across
// the library. All heavy kernels (2D FFT passes, convolution tiles,
// per-region blending) funnel through these helpers so that parallelism
// policy lives in one place.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers reports the degree of parallelism used when a caller
// passes workers <= 0. It honors GOMAXPROCS so container CPU limits and
// user overrides are respected.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// For splits the half-open index range [0, n) into contiguous chunks and
// runs fn(lo, hi) for each chunk on its own goroutine. It blocks until
// all chunks complete. With workers <= 1 (or tiny n) it degrades to a
// single direct call, avoiding goroutine overhead on small problems.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n), distributing iterations over
// chunks as in For. Use For directly when per-chunk setup (scratch
// buffers) matters; ForEach is for simple per-index work.
func ForEach(n, workers int, fn func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Dynamic runs fn(i) for every i in [0, n) with work pulled from a
// shared atomic counter instead of the static chunking of For. Use it
// when per-index costs are heterogeneous (e.g. surface tiles whose
// active component counts differ): a worker that finishes a cheap index
// immediately claims the next one, so no worker idles behind a slow
// chunk. Indices are claimed in order but may complete out of order;
// fn must not rely on completion order. Blocks until all indices are
// done. With workers <= 1 (or n == 1) it degrades to a serial loop.
func Dynamic(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}
