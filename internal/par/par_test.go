package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			counts := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-5, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("For should not invoke fn for n <= 0")
	}
}

func TestForChunksAreContiguousAndOrderedWithinChunk(t *testing.T) {
	var mu sync.Mutex
	var spans [][2]int
	For(100, 7, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty chunk [%d,%d)", lo, hi)
		}
		mu.Lock()
		spans = append(spans, [2]int{lo, hi})
		mu.Unlock()
	})
	total := 0
	for _, s := range spans {
		total += s[1] - s[0]
	}
	if total != 100 {
		t.Errorf("chunks cover %d indices, want 100", total)
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	// With workers=1 the callback must run on the calling goroutine:
	// verify by mutating a variable without synchronization under -race.
	x := 0
	For(10, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x++
		}
	})
	if x != 10 {
		t.Errorf("x = %d", x)
	}
}

func TestForEach(t *testing.T) {
	counts := make([]int32, 50)
	ForEach(50, 4, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestDynamicCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			counts := make([]int32, n)
			Dynamic(n, workers, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestDynamicZeroAndNegative(t *testing.T) {
	called := false
	Dynamic(0, 4, func(i int) { called = true })
	Dynamic(-5, 4, func(i int) { called = true })
	if called {
		t.Error("Dynamic should not invoke fn for n <= 0")
	}
}

func TestDynamicSingleWorkerRunsInline(t *testing.T) {
	// With workers=1 the callback must run serially on the calling
	// goroutine: verify by mutating a variable without synchronization
	// under -race, and by observing in-order execution.
	var order []int
	Dynamic(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Dynamic out of order: %v", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("serial Dynamic ran %d of 10 indices", len(order))
	}
}

// TestDynamicBalancesHeterogeneousWork gives one index a cost far above
// the rest and checks the cheap indices are not serialized behind it:
// with static chunking the worker owning the slow index would also own
// a chunk of cheap ones, so completion of all cheap indices before the
// slow one finishes is evidence of dynamic distribution.
func TestDynamicBalancesHeterogeneousWork(t *testing.T) {
	const n = 64
	slowRelease := make(chan struct{})
	var cheapDone atomic.Int32
	done := make(chan struct{})
	go func() { //lint:ignore parpolicy test needs an unmanaged goroutine to gate the slow index
		Dynamic(n, 4, func(i int) {
			if i == 0 {
				<-slowRelease
				return
			}
			cheapDone.Add(1)
		})
		close(done)
	}()
	// All n-1 cheap indices must complete while index 0 is still blocked.
	for deadline := 0; cheapDone.Load() != n-1; deadline++ {
		if deadline > 5000 {
			t.Fatalf("only %d of %d cheap indices done while slow index holds a worker", cheapDone.Load(), n-1)
		}
		runtime.Gosched()
	}
	close(slowRelease)
	<-done
}

func TestQuickDynamicPartition(t *testing.T) {
	f := func(rawN uint16, rawW uint8) bool {
		n := int(rawN) % 2000
		w := int(rawW)%20 - 2 // includes negatives and zero
		var sum int64
		Dynamic(n, w, func(i int) {
			atomic.AddInt64(&sum, 1)
		})
		return sum == int64(max(n, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers must be at least 1")
	}
}

func TestQuickForPartition(t *testing.T) {
	f := func(rawN uint16, rawW uint8) bool {
		n := int(rawN) % 2000
		w := int(rawW)%20 - 2 // includes negatives and zero
		var sum int64
		For(n, w, func(lo, hi int) {
			atomic.AddInt64(&sum, int64(hi-lo))
		})
		return sum == int64(max(n, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
