package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			counts := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-5, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("For should not invoke fn for n <= 0")
	}
}

func TestForChunksAreContiguousAndOrderedWithinChunk(t *testing.T) {
	var mu sync.Mutex
	var spans [][2]int
	For(100, 7, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty chunk [%d,%d)", lo, hi)
		}
		mu.Lock()
		spans = append(spans, [2]int{lo, hi})
		mu.Unlock()
	})
	total := 0
	for _, s := range spans {
		total += s[1] - s[0]
	}
	if total != 100 {
		t.Errorf("chunks cover %d indices, want 100", total)
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	// With workers=1 the callback must run on the calling goroutine:
	// verify by mutating a variable without synchronization under -race.
	x := 0
	For(10, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x++
		}
	})
	if x != 10 {
		t.Errorf("x = %d", x)
	}
}

func TestForEach(t *testing.T) {
	counts := make([]int32, 50)
	ForEach(50, 4, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers must be at least 1")
	}
}

func TestQuickForPartition(t *testing.T) {
	f := func(rawN uint16, rawW uint8) bool {
		n := int(rawN) % 2000
		w := int(rawW)%20 - 2 // includes negatives and zero
		var sum int64
		For(n, w, func(lo, hi int) {
			atomic.AddInt64(&sum, int64(hi-lo))
		})
		return sum == int64(max(n, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
