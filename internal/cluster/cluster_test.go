package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("scene|%d|%d,%d,256x256|f32|f64", i%4, i*64, i*64)
	}
	return out
}

// TestOwnerDeterministicAcrossNodes is the property the whole design
// rests on: every node, given the same membership view, must route a
// key to the same owner — regardless of which node is "self".
func TestOwnerDeterministicAcrossNodes(t *testing.T) {
	peers := []Peer{{Name: "a", URL: "http://a"}, {Name: "b", URL: "http://b"}, {Name: "c", URL: "http://c"}}
	ca := New("a", peers, Options{})
	cb := New("b", peers, Options{})
	for _, k := range keys(500) {
		oa, oka := ca.Owner(k)
		ob, okb := cb.Owner(k)
		if !oka || !okb || oa.Name != ob.Name {
			t.Fatalf("key %q: node a says %q (%v), node b says %q (%v)", k, oa.Name, oka, ob.Name, okb)
		}
	}
}

// TestOwnerBalance checks the HRW distribution: with equal weights
// each of 4 peers should own about a quarter of a large key set.
func TestOwnerBalance(t *testing.T) {
	peers := []Peer{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}}
	c := New("a", peers, Options{})
	counts := map[string]int{}
	ks := keys(4000)
	for _, k := range ks {
		o, ok := c.Owner(k)
		if !ok {
			t.Fatal("no owner")
		}
		counts[o.Name]++
	}
	for _, p := range peers {
		share := float64(counts[p.Name]) / float64(len(ks))
		if share < 0.18 || share > 0.32 {
			t.Errorf("peer %s owns %.1f%% of keys, want ~25%%", p.Name, 100*share)
		}
	}
}

// TestOwnerWeightBias checks that a weight-3 peer owns about three
// times the keys of a weight-1 peer.
func TestOwnerWeightBias(t *testing.T) {
	c := New("a", []Peer{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}, Options{})
	ks := keys(4000)
	na := 0
	for _, k := range ks {
		if o, _ := c.Owner(k); o.Name == "a" {
			na++
		}
	}
	share := float64(na) / float64(len(ks))
	if share < 0.68 || share > 0.82 {
		t.Errorf("weight-3 peer owns %.1f%% of keys, want ~75%%", 100*share)
	}
}

// TestOwnerMinimalDisruption is the HRW property that makes failover
// cheap: when a peer dies, only the keys it owned move; every other
// key keeps its owner.
func TestOwnerMinimalDisruption(t *testing.T) {
	peers := []Peer{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}}
	c := New("a", peers, Options{})
	ks := keys(2000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		o, _ := c.Owner(k)
		before[k] = o.Name
	}
	c.MarkAlive("c", false)
	for _, k := range ks {
		o, ok := c.Owner(k)
		if !ok {
			t.Fatal("no owner after one death")
		}
		if before[k] != "c" && o.Name != before[k] {
			t.Fatalf("key %q moved %s -> %s though %s stayed alive", k, before[k], o.Name, before[k])
		}
		if before[k] == "c" && o.Name == "c" {
			t.Fatalf("key %q still owned by dead peer", k)
		}
	}
}

// TestEpochAndLiveness pins the epoch contract: membership and
// liveness transitions bump it, no-ops don't, and self is always
// routable even when marked down by a confused probe.
func TestEpochAndLiveness(t *testing.T) {
	c := New("a", []Peer{{Name: "a"}, {Name: "b"}}, Options{})
	e0 := c.Epoch()
	c.MarkAlive("b", true) // already alive: no-op
	if c.Epoch() != e0 {
		t.Error("no-op MarkAlive bumped the epoch")
	}
	c.MarkAlive("b", false)
	if c.Epoch() != e0+1 {
		t.Errorf("down transition: epoch %d, want %d", c.Epoch(), e0+1)
	}
	c.MarkAlive("nosuch", false)
	if c.Epoch() != e0+1 {
		t.Error("unknown peer bumped the epoch")
	}
	c.SetPeers([]Peer{{Name: "a"}, {Name: "b"}}) // same set
	if c.Epoch() != e0+1 {
		t.Error("identical SetPeers bumped the epoch")
	}
	c.SetPeers([]Peer{{Name: "a"}, {Name: "b"}, {Name: "c", URL: "http://c"}})
	if c.Epoch() != e0+2 {
		t.Errorf("grown set: epoch %d, want %d", c.Epoch(), e0+2)
	}
	// b kept its probed-down state across the reload.
	if s := c.Snapshot(); len(s.Peers) != 3 || s.Peers[1].Alive {
		t.Errorf("snapshot after reload: %+v", s.Peers)
	}
	// With b down and c alive, owners come only from {a, c}.
	for _, k := range keys(200) {
		if o, ok := c.Owner(k); !ok || o.Name == "b" {
			t.Fatalf("key %q routed to down peer (%v)", k, ok)
		}
	}
	// Everything down but self: self still owns every key.
	c.MarkAlive("c", false)
	for _, k := range keys(50) {
		if o, ok := c.Owner(k); !ok || o.Name != "a" {
			t.Fatalf("key %q: owner %q ok=%v, want self", k, o.Name, ok)
		}
	}
}

// TestProbeMarksDown drives probeAll against a live-then-failing peer.
func TestProbeMarksDown(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	c := New("a", []Peer{{Name: "a"}, {Name: "b", URL: ts.URL}}, Options{ProbeTimeout: 2 * time.Second})
	c.MarkAlive("b", false) // pretend a prior probe failed
	c.probeAll()
	if got := c.AliveCount(); got != 2 {
		t.Fatalf("alive after healthy probe: %d, want 2", got)
	}
	healthy.Store(false)
	c.probeAll()
	if got := c.AliveCount(); got != 1 {
		t.Fatalf("alive after 503 probe: %d, want 1 (self)", got)
	}
}

// TestPeersFileReload brings a fleet up the way check.sh does: start
// with an empty file, then write the real membership and watch the
// prober apply it.
func TestPeersFileReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peers.json")
	if err := os.WriteFile(path, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New("a", nil, Options{PeersFile: path, ProbeInterval: 10 * time.Millisecond})
	c.Start()
	defer c.Close()
	if c.Size() != 0 {
		t.Fatalf("initial size %d, want 0", c.Size())
	}
	peers := `[{"name":"a","url":"http://127.0.0.1:1"},{"name":"b","url":"http://127.0.0.1:2","weight":2}]`
	if err := os.WriteFile(path, []byte(peers), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Size() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("peers file never applied: size %d", c.Size())
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := c.Snapshot()
	if int(s.Peers[1].Weight) != 2 || !s.Peers[0].Selfp {
		t.Errorf("snapshot: %+v", s.Peers)
	}
	// A corrupt rewrite keeps the applied set and surfaces the error.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	for c.Snapshot().FileError == "" {
		if time.Now().After(deadline) {
			t.Fatal("parse error never surfaced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Size() != 2 {
		t.Errorf("corrupt file changed the peer set: size %d", c.Size())
	}
}

// TestParsePeersFlag pins the -peers syntax.
func TestParsePeersFlag(t *testing.T) {
	peers, err := ParsePeersFlag("a=http://h:1, b=http://h:2*2.5 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != (Peer{Name: "a", URL: "http://h:1", Weight: 1}) ||
		peers[1] != (Peer{Name: "b", URL: "http://h:2", Weight: 2.5}) {
		t.Errorf("parsed %+v", peers)
	}
	for _, bad := range []string{"nourl", "a=", "a=http://h*-1", "a=http://h*x"} {
		if _, err := ParsePeersFlag(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
