// Package cluster makes rrsd a sharded fleet. The paper's successive
// computation property (§2.4) means every tile is a pure function of
// (scene, seed, level, window): no node needs any other node's state
// to produce correct bytes, so "which node should render this tile"
// is purely a cache-locality question. This package answers it with a
// shard map: weighted rendezvous (HRW) hashing assigns every tile key
// an owner among the currently-alive peers, every node computes the
// same assignment from the same membership view, and a membership
// change only remaps the keys whose owner changed (the HRW minimal-
// disruption property — no ring maintenance, no token ranges).
//
// Membership is a static registry (flag- or file-provided peer list)
// with health-checked liveness: a background prober marks peers up or
// down from /healthz and re-reads the peers file when its bytes
// change, and every change bumps an epoch exposed at /v1/cluster so
// operators (and tests) can watch the map converge. Epochs are local
// to each node — transient disagreement between nodes is harmless
// because any node can render any tile identically; ownership only
// steers traffic toward the hottest cache.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"roughsurface/internal/par"
)

// Peer is one fleet member. Weight scales its share of the key space
// (2.0 owns twice the keys of 1.0); zero or negative means 1.
type Peer struct {
	Name   string  `json:"name"`
	URL    string  `json:"url"`
	Weight float64 `json:"weight,omitempty"`
}

// Options tunes a Cluster.
type Options struct {
	// ProbeInterval is the health-probe and peers-file poll period
	// (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default min(ProbeInterval, 2s)).
	ProbeTimeout time.Duration
	// PeersFile, when non-empty, is polled every ProbeInterval: when
	// its bytes change, the peer set is reloaded from its JSON array
	// of Peer objects. This is how a fleet whose ports are only known
	// after every member has bound (port 0) assembles itself.
	PeersFile string
	// Client issues health probes (default: a dedicated client).
	Client *http.Client
}

// Cluster is one node's view of the fleet: the peer set, which peers
// are alive, and the epoch stamping that view. Safe for concurrent
// use. Start launches the prober; Close joins it.
type Cluster struct {
	self string
	opts Options

	mu      sync.Mutex
	peers   []Peer // sorted by name, deduplicated
	alive   map[string]bool
	epoch   uint64
	lastErr string // last peers-file problem, surfaced in Snapshot
	fileRaw []byte // bytes of the last successfully-applied peers file

	stop chan struct{}
	done <-chan error
}

// New builds a Cluster for node self. peers may include self (matched
// by name; its URL is informational — a node never dials itself) and
// may be empty when Options.PeersFile will supply the fleet later.
// Peers start alive: optimism lets the first requests route before
// the first probe completes, and the prober corrects within one
// interval.
func New(self string, peers []Peer, opts Options) *Cluster {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = opts.ProbeInterval
		if opts.ProbeTimeout > 2*time.Second {
			opts.ProbeTimeout = 2 * time.Second
		}
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	c := &Cluster{
		self:  self,
		opts:  opts,
		alive: make(map[string]bool),
		stop:  make(chan struct{}),
	}
	c.SetPeers(peers)
	return c
}

// Self returns the local node's name.
func (c *Cluster) Self() string { return c.self }

// SetPeers replaces the peer set (deduplicated by name, sorted).
// Peers keep their previous liveness; new peers start alive. The
// epoch bumps when the effective set changed.
func (c *Cluster) SetPeers(peers []Peer) {
	normalized := normalizePeers(peers)
	c.mu.Lock()
	defer c.mu.Unlock()
	if peersEqual(c.peers, normalized) {
		return
	}
	alive := make(map[string]bool, len(normalized))
	for _, p := range normalized {
		if was, ok := c.alive[p.Name]; ok {
			alive[p.Name] = was
		} else {
			alive[p.Name] = true
		}
	}
	c.peers, c.alive = normalized, alive
	c.epoch++
}

func normalizePeers(peers []Peer) []Peer {
	byName := make(map[string]Peer, len(peers))
	for _, p := range peers {
		if p.Name == "" {
			continue
		}
		if p.Weight <= 0 {
			p.Weight = 1
		}
		p.URL = strings.TrimRight(p.URL, "/")
		byName[p.Name] = p
	}
	out := make([]Peer, 0, len(byName))
	for _, p := range byName {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func peersEqual(a, b []Peer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Epoch returns the local membership-view epoch.
func (c *Cluster) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Size returns the peer-set size (including self, alive or not).
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers)
}

// AliveCount returns how many peers are currently considered alive.
func (c *Cluster) AliveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.peers {
		if c.alive[p.Name] {
			n++
		}
	}
	return n
}

// Owner returns the alive peer that owns key under weighted rendezvous
// hashing. ok is false when the peer set is empty or nothing is alive
// (callers then serve locally). Self, when present in the set, is
// always considered alive.
func (c *Cluster) Owner(key string) (Peer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best Peer
	bestScore := math.Inf(-1)
	found := false
	for _, p := range c.peers {
		if p.Name != c.self && !c.alive[p.Name] {
			continue
		}
		score := hrwScore(p.Name, key, p.Weight)
		// Strict > with name-sorted iteration: ties (practically
		// impossible at 64-bit hashes) break toward the first name.
		if !found || score > bestScore {
			best, bestScore, found = p, score, true
		}
	}
	return best, found
}

// hrwScore is the weighted rendezvous score of peer for key: with
// h = hash(peer, key) mapped into (0,1), score = -weight/ln(h). The
// peer with the maximum score owns the key; the logarithmic form makes
// ownership probability proportional to weight (Thaler–Ravishankar).
func hrwScore(peer, key string, weight float64) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(peer))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	// Map the top 53 bits into (0,1): +1 keeps it strictly positive so
	// ln is finite and negative.
	u := (float64(h.Sum64()>>11) + 1) / float64(1<<53)
	return -weight / math.Log(u)
}

// MarkAlive records one peer's probed liveness, bumping the epoch on a
// transition. Unknown names are ignored.
func (c *Cluster) MarkAlive(name string, alive bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	was, ok := c.alive[name]
	if !ok || was == alive {
		return
	}
	c.alive[name] = alive
	c.epoch++
}

// Snapshot is the epoch-stamped map served at GET /v1/cluster.
type Snapshot struct {
	Self      string       `json:"self"`
	Epoch     uint64       `json:"epoch"`
	Peers     []PeerStatus `json:"peers"`
	PeersFile string       `json:"peers_file,omitempty"`
	FileError string       `json:"peers_file_error,omitempty"`
}

// PeerStatus is one peer's row in the snapshot.
type PeerStatus struct {
	Name   string  `json:"name"`
	URL    string  `json:"url"`
	Weight float64 `json:"weight"`
	Alive  bool    `json:"alive"`
	Selfp  bool    `json:"self,omitempty"`
}

// Snapshot returns the current membership view, peers sorted by name.
func (c *Cluster) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{Self: c.self, Epoch: c.epoch, PeersFile: c.opts.PeersFile, FileError: c.lastErr}
	for _, p := range c.peers {
		s.Peers = append(s.Peers, PeerStatus{
			Name:   p.Name,
			URL:    p.URL,
			Weight: p.Weight,
			Alive:  p.Name == c.self || c.alive[p.Name],
			Selfp:  p.Name == c.self,
		})
	}
	return s
}

// othersSnapshot lists the peers to probe (everyone but self) without
// holding the lock across network calls.
func (c *Cluster) othersSnapshot() []Peer {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Peer, 0, len(c.peers))
	for _, p := range c.peers {
		if p.Name != c.self {
			out = append(out, p)
		}
	}
	return out
}

// Start launches the background prober: every ProbeInterval it
// re-reads the peers file (when configured) and probes every other
// peer's /healthz. Call Close to stop and join it.
func (c *Cluster) Start() {
	c.loadPeersFile() // synchronous first load: flags beat the first tick
	c.done = par.Background(func() error {
		t := time.NewTicker(c.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return nil
			case <-t.C:
				c.loadPeersFile()
				c.probeAll()
			}
		}
	})
}

// Close stops the prober and joins it. Safe to call when Start was
// never called; not safe to call twice.
func (c *Cluster) Close() {
	close(c.stop)
	if c.done != nil {
		<-c.done
	}
}

// loadPeersFile re-reads Options.PeersFile and applies it when its
// bytes changed since the last successful load. Read or parse errors
// keep the previous set and surface in Snapshot.FileError.
func (c *Cluster) loadPeersFile() {
	if c.opts.PeersFile == "" {
		return
	}
	raw, err := os.ReadFile(c.opts.PeersFile)
	if err != nil {
		c.setFileErr(fmt.Sprintf("read: %v", err))
		return
	}
	c.mu.Lock()
	same := string(raw) == string(c.fileRaw)
	c.mu.Unlock()
	if same {
		return
	}
	var peers []Peer
	if err := json.Unmarshal(raw, &peers); err != nil {
		c.setFileErr(fmt.Sprintf("parse: %v", err))
		return
	}
	c.SetPeers(peers)
	c.mu.Lock()
	c.fileRaw = raw
	c.lastErr = ""
	c.mu.Unlock()
}

func (c *Cluster) setFileErr(msg string) {
	c.mu.Lock()
	c.lastErr = msg
	c.mu.Unlock()
}

// probeAll checks every other peer's /healthz once. A peer is alive
// iff the probe returns 200 within ProbeTimeout — a draining node
// answers 503 and is routed around before its listener closes.
func (c *Cluster) probeAll() {
	for _, p := range c.othersSnapshot() {
		c.MarkAlive(p.Name, c.probe(p))
	}
}

func (c *Cluster) probe(p Peer) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ParsePeersFlag decodes the -peers flag format: comma-separated
// name=url entries with an optional *weight suffix, e.g.
// "a=http://10.0.0.1:8270,b=http://10.0.0.2:8270*2".
func ParsePeersFlag(s string) ([]Peer, error) {
	var peers []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("peer %q: want name=url[*weight]", part)
		}
		p := Peer{Name: name, Weight: 1}
		if url, w, ok := strings.Cut(rest, "*"); ok {
			var weight float64
			if _, err := fmt.Sscanf(w, "%g", &weight); err != nil || weight <= 0 {
				return nil, fmt.Errorf("peer %q: weight %q: want a positive number", part, w)
			}
			p.URL, p.Weight = url, weight
		} else {
			p.URL = rest
		}
		if p.URL == "" {
			return nil, fmt.Errorf("peer %q: empty url", part)
		}
		peers = append(peers, p)
	}
	return peers, nil
}
