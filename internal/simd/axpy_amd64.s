//go:build !noasm

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy32AVX(alpha float32, x, y []float32)
//
// y[i] += alpha*x[i], 16 floats (two 8-lane VEX ops) per main-loop
// iteration. Multiply and add are separate instructions — no FMA — so
// every element rounds exactly like the pure-Go fallback and the two
// paths are bit-identical (DESIGN.md §13).
TEXT ·axpy32AVX(SB), NOSPLIT, $0-56
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ         x_base+8(FP), SI
	MOVQ         y_base+32(FP), DI
	MOVQ         y_len+40(FP), CX
	MOVQ         CX, BX
	SHRQ         $4, BX
	JZ           tail8

loop16:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMULPS  Y0, Y1, Y1
	VMULPS  Y0, Y2, Y2
	VADDPS  (DI), Y1, Y1
	VADDPS  32(DI), Y2, Y2
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    BX
	JNZ     loop16

tail8:
	TESTQ   $8, CX
	JZ      tail4
	VMOVUPS (SI), Y1
	VMULPS  Y0, Y1, Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI

tail4:
	TESTQ   $4, CX
	JZ      tail1
	VMOVUPS (SI), X1
	VMULPS  X0, X1, X1
	VADDPS  (DI), X1, X1
	VMOVUPS X1, (DI)
	ADDQ    $16, SI
	ADDQ    $16, DI

tail1:
	ANDQ $3, CX
	JZ   done32

scalar32:
	VMOVSS (SI), X1
	VMULSS X0, X1, X1
	VADDSS (DI), X1, X1
	VMOVSS X1, (DI)
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   CX
	JNZ    scalar32

done32:
	VZEROUPPER
	RET

// func axpy64AVX(alpha float64, x, y []float64)
//
// y[i] += alpha*x[i], 8 doubles (two 4-lane VEX ops) per main-loop
// iteration; separate multiply and add, bit-identical to the fallback.
TEXT ·axpy64AVX(SB), NOSPLIT, $0-56
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ         x_base+8(FP), SI
	MOVQ         y_base+32(FP), DI
	MOVQ         y_len+40(FP), CX
	MOVQ         CX, BX
	SHRQ         $3, BX
	JZ           tail4d

loop8d:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (DI), Y1, Y1
	VADDPD  32(DI), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    BX
	JNZ     loop8d

tail4d:
	TESTQ   $4, CX
	JZ      tail2d
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI

tail2d:
	TESTQ   $2, CX
	JZ      tail1d
	VMOVUPD (SI), X1
	VMULPD  X0, X1, X1
	VADDPD  (DI), X1, X1
	VMOVUPD X1, (DI)
	ADDQ    $16, SI
	ADDQ    $16, DI

tail1d:
	ANDQ $1, CX
	JZ   done64
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VADDSD (DI), X1, X1
	VMOVSD X1, (DI)

done64:
	VZEROUPPER
	RET

// func macRow32AVX(taps, noise, dst []float32)
//
// dst[i] += Σ_a taps[a]*noise[a+i]: the whole tap row is applied per
// call with the destination accumulators held in YMM registers — 32
// floats (four 8-lane vectors) per main-loop block, then an 8-float
// block, then scalars. Multiply and add stay separate (no FMA) and the
// per-output adds run in tap order, so the result is bit-identical to
// composing axpy32 per tap (DESIGN.md §13). The caller guarantees
// len(noise) >= len(taps)-1+len(dst).
TEXT ·macRow32AVX(SB), NOSPLIT, $0-72
	MOVQ taps_base+0(FP), R8
	MOVQ taps_len+8(FP), R9
	MOVQ noise_base+24(FP), R10
	MOVQ dst_base+48(FP), DI
	MOVQ dst_len+56(FP), CX

mrblk32:
	CMPQ    CX, $32
	JL      mrblk8
	VMOVUPS (DI), Y1
	VMOVUPS 32(DI), Y2
	VMOVUPS 64(DI), Y3
	VMOVUPS 96(DI), Y4
	MOVQ    R8, SI
	MOVQ    R10, DX
	MOVQ    R9, BX
	TESTQ   BX, BX
	JZ      mrst32

mrtap32:
	VBROADCASTSS (SI), Y0
	VMULPS       (DX), Y0, Y5
	VMULPS       32(DX), Y0, Y6
	VMULPS       64(DX), Y0, Y7
	VMULPS       96(DX), Y0, Y8
	VADDPS       Y5, Y1, Y1
	VADDPS       Y6, Y2, Y2
	VADDPS       Y7, Y3, Y3
	VADDPS       Y8, Y4, Y4
	ADDQ         $4, SI
	ADDQ         $4, DX
	DECQ         BX
	JNZ          mrtap32

mrst32:
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VMOVUPS Y3, 64(DI)
	VMOVUPS Y4, 96(DI)
	ADDQ    $128, DI
	ADDQ    $128, R10
	SUBQ    $32, CX
	JMP     mrblk32

mrblk8:
	CMPQ    CX, $8
	JL      mrtail
	VMOVUPS (DI), Y1
	MOVQ    R8, SI
	MOVQ    R10, DX
	MOVQ    R9, BX
	TESTQ   BX, BX
	JZ      mrst8

mrtap8:
	VBROADCASTSS (SI), Y0
	VMULPS       (DX), Y0, Y5
	VADDPS       Y5, Y1, Y1
	ADDQ         $4, SI
	ADDQ         $4, DX
	DECQ         BX
	JNZ          mrtap8

mrst8:
	VMOVUPS Y1, (DI)
	ADDQ    $32, DI
	ADDQ    $32, R10
	SUBQ    $8, CX
	JMP     mrblk8

mrtail:
	TESTQ CX, CX
	JZ    mrdone32

mrscalar:
	VMOVSS (DI), X1
	MOVQ   R8, SI
	MOVQ   R10, DX
	MOVQ   R9, BX
	TESTQ  BX, BX
	JZ     mrstsc

mrtapsc:
	VMOVSS (SI), X0
	VMULSS (DX), X0, X5
	VADDSS X5, X1, X1
	ADDQ   $4, SI
	ADDQ   $4, DX
	DECQ   BX
	JNZ    mrtapsc

mrstsc:
	VMOVSS X1, (DI)
	ADDQ   $4, DI
	ADDQ   $4, R10
	DECQ   CX
	JNZ    mrscalar

mrdone32:
	VZEROUPPER
	RET

// func macRow64AVX(taps, noise, dst []float64)
//
// Float64 fused MAC row: 16 doubles (four 4-lane vectors) per main
// block, then a 4-double block, then scalars. Separate multiply and
// add, per-output adds in tap order — bit-identical to composing
// axpy64 per tap, which keeps the reference engine byte-stable.
TEXT ·macRow64AVX(SB), NOSPLIT, $0-72
	MOVQ taps_base+0(FP), R8
	MOVQ taps_len+8(FP), R9
	MOVQ noise_base+24(FP), R10
	MOVQ dst_base+48(FP), DI
	MOVQ dst_len+56(FP), CX

mdblk16:
	CMPQ    CX, $16
	JL      mdblk4
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	VMOVUPD 64(DI), Y3
	VMOVUPD 96(DI), Y4
	MOVQ    R8, SI
	MOVQ    R10, DX
	MOVQ    R9, BX
	TESTQ   BX, BX
	JZ      mdst16

mdtap16:
	VBROADCASTSD (SI), Y0
	VMULPD       (DX), Y0, Y5
	VMULPD       32(DX), Y0, Y6
	VMULPD       64(DX), Y0, Y7
	VMULPD       96(DX), Y0, Y8
	VADDPD       Y5, Y1, Y1
	VADDPD       Y6, Y2, Y2
	VADDPD       Y7, Y3, Y3
	VADDPD       Y8, Y4, Y4
	ADDQ         $8, SI
	ADDQ         $8, DX
	DECQ         BX
	JNZ          mdtap16

mdst16:
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	VMOVUPD Y3, 64(DI)
	VMOVUPD Y4, 96(DI)
	ADDQ    $128, DI
	ADDQ    $128, R10
	SUBQ    $16, CX
	JMP     mdblk16

mdblk4:
	CMPQ    CX, $4
	JL      mdtail
	VMOVUPD (DI), Y1
	MOVQ    R8, SI
	MOVQ    R10, DX
	MOVQ    R9, BX
	TESTQ   BX, BX
	JZ      mdst4

mdtap4:
	VBROADCASTSD (SI), Y0
	VMULPD       (DX), Y0, Y5
	VADDPD       Y5, Y1, Y1
	ADDQ         $8, SI
	ADDQ         $8, DX
	DECQ         BX
	JNZ          mdtap4

mdst4:
	VMOVUPD Y1, (DI)
	ADDQ    $32, DI
	ADDQ    $32, R10
	SUBQ    $4, CX
	JMP     mdblk4

mdtail:
	TESTQ CX, CX
	JZ    mddone

mdscalar:
	VMOVSD (DI), X1
	MOVQ   R8, SI
	MOVQ   R10, DX
	MOVQ   R9, BX
	TESTQ  BX, BX
	JZ     mdstsc

mdtapsc:
	VMOVSD (SI), X0
	VMULSD (DX), X0, X5
	VADDSD X5, X1, X1
	ADDQ   $8, SI
	ADDQ   $8, DX
	DECQ   BX
	JNZ    mdtapsc

mdstsc:
	VMOVSD X1, (DI)
	ADDQ   $8, DI
	ADDQ   $8, R10
	DECQ   CX
	JNZ    mdscalar

mddone:
	VZEROUPPER
	RET
