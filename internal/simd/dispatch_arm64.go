//go:build arm64 && !noasm

package simd

// NEON (ASIMD) is architectural baseline on arm64, so there is no
// feature probe: the assembly kernels are selected unconditionally.

func axpy32NEON(alpha float32, x, y []float32)
func axpy64NEON(alpha float64, x, y []float64)

var (
	axpy32 = axpy32NEON
	axpy64 = axpy64NEON

	// The fused MAC row runs the portable blocked loop: the compiler
	// emits scalar FMADD for its accumulate pattern, which rounds
	// identically to the NEON kernels' FMLA, so composing axpy and
	// fusing the row agree bit-for-bit on arm64 too.
	macRow32 = macRowGeneric32
	macRow64 = macRowGeneric64
)

// Impl reports which MAC kernel the dispatch selected ("go", "avx2" or
// "neon") — surfaced in tests and the daemon's metrics.
func Impl() string { return "neon" }
