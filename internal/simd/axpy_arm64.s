//go:build !noasm

#include "textflag.h"

// func axpy32NEON(alpha float32, x, y []float32)
//
// y[i] += alpha*x[i], 8 floats (two 4-lane FMLA) per main-loop
// iteration. FMLA fuses the multiply-add, matching the FMADD the Go
// compiler emits for the scalar pattern on arm64 (DESIGN.md §13).
//
// Go operand order: VFMLA Vm, Vn, Vd computes Vd += Vn*Vm, and
// FMADDS Fm, Fa, Fn, Fd computes Fd = Fa + Fn*Fm.
TEXT ·axpy32NEON(SB), NOSPLIT, $0-56
	FMOVS alpha+0(FP), F0
	VDUP  V0.S[0], V0.S4
	MOVD  x_base+8(FP), R1
	MOVD  y_base+32(FP), R2
	MOVD  y_len+40(FP), R3
	LSR   $3, R3, R4
	CBZ   R4, tail32

loop8:
	VLD1.P 32(R1), [V1.S4, V2.S4]
	VLD1   (R2), [V3.S4, V4.S4]
	VFMLA  V0.S4, V1.S4, V3.S4
	VFMLA  V0.S4, V2.S4, V4.S4
	VST1.P [V3.S4, V4.S4], 32(R2)
	SUB    $1, R4
	CBNZ   R4, loop8

tail32:
	AND $7, R3, R5
	CBZ R5, done32

scalar32:
	FMOVS  (R1), F1
	FMOVS  (R2), F2
	FMADDS F0, F2, F1, F2
	FMOVS  F2, (R2)
	ADD    $4, R1
	ADD    $4, R2
	SUB    $1, R5
	CBNZ   R5, scalar32

done32:
	RET

// func axpy64NEON(alpha float64, x, y []float64)
//
// y[i] += alpha*x[i], 4 doubles (two 2-lane FMLA) per main-loop
// iteration.
TEXT ·axpy64NEON(SB), NOSPLIT, $0-56
	FMOVD alpha+0(FP), F0
	VDUP  V0.D[0], V0.D2
	MOVD  x_base+8(FP), R1
	MOVD  y_base+32(FP), R2
	MOVD  y_len+40(FP), R3
	LSR   $2, R3, R4
	CBZ   R4, tail64

loop4:
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VLD1   (R2), [V3.D2, V4.D2]
	VFMLA  V0.D2, V1.D2, V3.D2
	VFMLA  V0.D2, V2.D2, V4.D2
	VST1.P [V3.D2, V4.D2], 32(R2)
	SUB    $1, R4
	CBNZ   R4, loop4

tail64:
	AND $3, R3, R5
	CBZ R5, done64

scalar64:
	FMOVD  (R1), F1
	FMOVD  (R2), F2
	FMADDD F0, F2, F1, F2
	FMOVD  F2, (R2)
	ADD    $8, R1
	ADD    $8, R2
	SUB    $1, R5
	CBNZ   R5, scalar64

done64:
	RET
