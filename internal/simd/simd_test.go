package simd

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/rng"
)

// testLengths exercises every tail combination of the unrolled and
// assembly kernels: below one lane, every remainder class mod 16, and a
// few long vectors.
var testLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 23, 24, 31, 32, 33, 48, 63, 64, 100, 255, 1024}

func fill64(src *rng.Source, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = src.Float64()*4 - 2
	}
	return v
}

// axpyRef is the literal one-line-per-element reference both precisions
// are checked against.
func axpyRef[F Float](alpha F, x, y []F) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// TestAxpyMatchesReference checks the dispatched kernels (assembly when
// the build selected them) against the scalar reference — exact
// equality on amd64 and every noasm build, where no path fuses;
// tolerance on arm64, where both FMLA and the compiled reference fuse
// but tails may differ in fusing.
func TestAxpyMatchesReference(t *testing.T) {
	src := rng.NewSource(7)
	for _, n := range testLengths {
		x64 := fill64(src, n)
		y64 := fill64(src, n)
		want64 := append([]float64(nil), y64...)
		const alpha = 1.375 // exact in both precisions
		axpyRef(alpha, x64, want64)
		Axpy64(alpha, x64, y64)
		for i := range y64 {
			if math.Abs(y64[i]-want64[i]) > 1e-13*(1+math.Abs(want64[i])) {
				t.Fatalf("Axpy64 n=%d impl=%s: [%d] = %g, want %g", n, Impl(), i, y64[i], want64[i])
			}
		}

		x32 := make([]float32, n)
		y32 := make([]float32, n)
		Narrow(x32, x64)
		Narrow(y32, fill64(src, n))
		want32 := append([]float32(nil), y32...)
		axpyRef(float32(alpha), x32, want32)
		Axpy32(alpha, x32, y32)
		for i := range y32 {
			if math.Abs(float64(y32[i]-want32[i])) > 1e-5*(1+math.Abs(float64(want32[i]))) {
				t.Fatalf("Axpy32 n=%d impl=%s: [%d] = %g, want %g", n, Impl(), i, y32[i], want32[i])
			}
		}
	}
}

// TestAxpyBitExactVsFallback pins the DESIGN §13 invariant on amd64:
// the VEX kernels use separate multiply and add, so they produce the
// same bytes as the pure-Go unrolled fallback at both precisions.
func TestAxpyBitExactVsFallback(t *testing.T) {
	if Impl() != "avx2" {
		t.Skipf("dispatch selected %q; bit-exactness vs the fallback is only promised for avx2", Impl())
	}
	src := rng.NewSource(11)
	for _, n := range testLengths {
		x64 := fill64(src, n)
		y64a := fill64(src, n)
		y64b := append([]float64(nil), y64a...)
		alpha := src.Float64()*2 - 1
		Axpy64(alpha, x64, y64a)
		axpyGeneric64(alpha, x64, y64b)
		for i := range y64a {
			if !approx.Exact(y64a[i], y64b[i]) {
				t.Fatalf("Axpy64 n=%d: asm [%d] = %x, fallback %x", n, i, y64a[i], y64b[i])
			}
		}

		x32 := make([]float32, n)
		Narrow(x32, x64)
		y32a := make([]float32, n)
		Narrow(y32a, fill64(src, n))
		y32b := append([]float32(nil), y32a...)
		Axpy32(float32(alpha), x32, y32a)
		axpyGeneric32(float32(alpha), x32, y32b)
		for i := range y32a {
			if !approx.Exact(float64(y32a[i]), float64(y32b[i])) {
				t.Fatalf("Axpy32 n=%d: asm [%d] = %x, fallback %x", n, i, y32a[i], y32b[i])
			}
		}
	}
}

// TestAxpyGenericDispatch covers the type-switch wrapper and defined
// float types (the generic fallthrough arm).
func TestAxpyGenericDispatch(t *testing.T) {
	type myFloat float64
	x := []myFloat{1, 2, 3}
	y := []myFloat{10, 20, 30}
	Axpy(myFloat(2), x, y)
	want := []myFloat{12, 24, 36}
	for i := range y {
		if !approx.Exact(float64(y[i]), float64(want[i])) {
			t.Fatalf("Axpy[myFloat][%d] = %g, want %g", i, y[i], want[i])
		}
	}

	x32 := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	y32 := make([]float32, 9)
	Axpy(float32(0.5), x32, y32)
	for i := range y32 {
		if !approx.Exact(float64(y32[i]), float64(x32[i])/2) {
			t.Fatalf("Axpy[float32][%d] = %g", i, y32[i])
		}
	}
}

func TestAxpyLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Axpy32": func() { Axpy32(1, make([]float32, 3), make([]float32, 4)) },
		"Axpy64": func() { Axpy64(1, make([]float64, 4), make([]float64, 3)) },
		"Axpy":   func() { Axpy(1.0, make([]float64, 1), make([]float64, 2)) },
		"Narrow": func() { Narrow(make([]float32, 2), make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestNarrow(t *testing.T) {
	src := []float64{0, 1, -1, 0.1, math.Pi, 1e40, -1e40, math.Inf(1)}
	dst := make([]float32, len(src))
	Narrow(dst, src)
	for i, v := range src {
		if !approx.Exact(float64(dst[i]), float64(float32(v))) {
			t.Fatalf("Narrow[%d] = %g, want %g", i, dst[i], float32(v))
		}
	}
}

// macRowRef is the literal per-sample reference for the fused MAC row.
func macRowRef[F Float](taps, noise, dst []F) {
	for i := range dst {
		acc := dst[i]
		for a, t := range taps {
			acc += t * noise[a+i]
		}
		dst[i] = acc
	}
}

// TestMacRowMatchesReference checks the dispatched fused-row kernels
// against the literal per-sample sum for every tail class and several
// tap-row lengths (including the degenerate empty tap row).
func TestMacRowMatchesReference(t *testing.T) {
	src := rng.NewSource(13)
	for _, taps := range []int{0, 1, 2, 5, 11, 16} {
		for _, n := range testLengths {
			t64 := fill64(src, taps)
			noise64 := fill64(src, taps+n) // >= taps-1+n for every taps
			d64a := fill64(src, n)
			d64b := append([]float64(nil), d64a...)
			macRowRef(t64, noise64, d64b)
			MacRow64(t64, noise64, d64a)
			for i := range d64a {
				if math.Abs(d64a[i]-d64b[i]) > 1e-12*(1+math.Abs(d64b[i])) {
					t.Fatalf("MacRow64 taps=%d n=%d impl=%s: [%d] = %g, want %g", taps, n, Impl(), i, d64a[i], d64b[i])
				}
			}

			t32 := make([]float32, taps)
			noise32 := make([]float32, taps+n)
			d32a := make([]float32, n)
			Narrow(t32, t64)
			Narrow(noise32, noise64)
			Narrow(d32a, fill64(src, n))
			d32b := append([]float32(nil), d32a...)
			macRowRef(t32, noise32, d32b)
			MacRow32(t32, noise32, d32a)
			for i := range d32a {
				if math.Abs(float64(d32a[i]-d32b[i])) > 1e-4*(1+math.Abs(float64(d32b[i]))) {
					t.Fatalf("MacRow32 taps=%d n=%d impl=%s: [%d] = %g, want %g", taps, n, Impl(), i, d32a[i], d32b[i])
				}
			}
		}
	}
}

// TestMacRowBitExactVsAxpy pins the invariant the convolution engines
// rely on: fusing the tap row changes no bits relative to composing
// the axpy kernel per tap, at either precision. This holds on every
// build — both formulations add in tap order, and on arm64 both fuse.
func TestMacRowBitExactVsAxpy(t *testing.T) {
	src := rng.NewSource(17)
	for _, taps := range []int{1, 3, 11} {
		for _, n := range testLengths {
			t64 := fill64(src, taps)
			noise64 := fill64(src, taps+n)
			d64a := fill64(src, n)
			d64b := append([]float64(nil), d64a...)
			MacRow64(t64, noise64, d64a)
			for a, tap := range t64 {
				Axpy64(tap, noise64[a:a+n], d64b)
			}
			for i := range d64a {
				if !approx.Exact(d64a[i], d64b[i]) {
					t.Fatalf("MacRow64 taps=%d n=%d impl=%s: [%d] = %x, axpy %x", taps, n, Impl(), i, d64a[i], d64b[i])
				}
			}

			t32 := make([]float32, taps)
			noise32 := make([]float32, taps+n)
			d32a := make([]float32, n)
			Narrow(t32, t64)
			Narrow(noise32, noise64)
			Narrow(d32a, fill64(src, n))
			d32b := append([]float32(nil), d32a...)
			MacRow32(t32, noise32, d32a)
			for a, tap := range t32 {
				Axpy32(tap, noise32[a:a+n], d32b)
			}
			for i := range d32a {
				if !approx.Exact(float64(d32a[i]), float64(d32b[i])) {
					t.Fatalf("MacRow32 taps=%d n=%d impl=%s: [%d] = %x, axpy %x", taps, n, Impl(), i, d32a[i], d32b[i])
				}
			}
		}
	}
}

// TestMacRowBitExactVsFallback pins the asm kernels against the
// portable blocked loop on amd64, like TestAxpyBitExactVsFallback.
func TestMacRowBitExactVsFallback(t *testing.T) {
	if Impl() != "avx2" {
		t.Skipf("dispatch selected %q; bit-exactness vs the fallback is only promised for avx2", Impl())
	}
	src := rng.NewSource(19)
	for _, taps := range []int{1, 7, 12} {
		for _, n := range testLengths {
			t64 := fill64(src, taps)
			noise64 := fill64(src, taps+n)
			d64a := fill64(src, n)
			d64b := append([]float64(nil), d64a...)
			MacRow64(t64, noise64, d64a)
			macRowGeneric64(t64, noise64, d64b)
			for i := range d64a {
				if !approx.Exact(d64a[i], d64b[i]) {
					t.Fatalf("MacRow64 taps=%d n=%d: asm [%d] = %x, fallback %x", taps, n, i, d64a[i], d64b[i])
				}
			}

			t32 := make([]float32, taps)
			noise32 := make([]float32, taps+n)
			d32a := make([]float32, n)
			Narrow(t32, t64)
			Narrow(noise32, noise64)
			Narrow(d32a, fill64(src, n))
			d32b := append([]float32(nil), d32a...)
			MacRow32(t32, noise32, d32a)
			macRowGeneric32(t32, noise32, d32b)
			for i := range d32a {
				if !approx.Exact(float64(d32a[i]), float64(d32b[i])) {
					t.Fatalf("MacRow32 taps=%d n=%d: asm [%d] = %x, fallback %x", taps, n, i, d32a[i], d32b[i])
				}
			}
		}
	}
}

func TestMacRowShortNoisePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MacRow32": func() { MacRow32(make([]float32, 3), make([]float32, 5), make([]float32, 4)) },
		"MacRow64": func() { MacRow64(make([]float64, 3), make([]float64, 5), make([]float64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on short noise window", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkMacRow(b *testing.B) {
	// Tile-serving shape: 32-sample output rows, 11-tap kernel rows.
	const n, taps = 32, 11
	src := rng.NewSource(5)
	t64 := fill64(src, taps)
	noise64 := fill64(src, taps-1+n)
	d64 := fill64(src, n)
	b.Run("f64/"+Impl(), func(b *testing.B) {
		b.SetBytes(8 * n * taps)
		for i := 0; i < b.N; i++ {
			MacRow64(t64, noise64, d64)
		}
	})
	b.Run("f64/axpy", func(b *testing.B) {
		b.SetBytes(8 * n * taps)
		for i := 0; i < b.N; i++ {
			for a, tap := range t64 {
				Axpy64(tap, noise64[a:a+n], d64)
			}
		}
	})
	t32 := make([]float32, taps)
	noise32 := make([]float32, taps-1+n)
	d32 := make([]float32, n)
	Narrow(t32, t64)
	Narrow(noise32, noise64)
	Narrow(d32, d64)
	b.Run("f32/"+Impl(), func(b *testing.B) {
		b.SetBytes(4 * n * taps)
		for i := 0; i < b.N; i++ {
			MacRow32(t32, noise32, d32)
		}
	})
	b.Run("f32/axpy", func(b *testing.B) {
		b.SetBytes(4 * n * taps)
		for i := 0; i < b.N; i++ {
			for a, tap := range t32 {
				Axpy32(tap, noise32[a:a+n], d32)
			}
		}
	})
}

func BenchmarkAxpy(b *testing.B) {
	const n = 512
	src := rng.NewSource(3)
	x64 := fill64(src, n)
	y64 := fill64(src, n)
	b.Run("f64/"+Impl(), func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			Axpy64(1.0000001, x64, y64)
		}
	})
	x32 := make([]float32, n)
	y32 := make([]float32, n)
	Narrow(x32, x64)
	Narrow(y32, y64)
	b.Run("f32/"+Impl(), func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			Axpy32(1.0000001, x32, y32)
		}
	})
	b.Run("f64/go", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			axpyGeneric64(1.0000001, x64, y64)
		}
	})
	b.Run("f32/go", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			axpyGeneric32(1.0000001, x32, y32)
		}
	})
}
