// Package simd supplies the precision-generic multiply-accumulate (MAC)
// kernels behind the direct-convolution and weight-blend hot loops. The
// contract is one primitive:
//
//	Axpy: y[i] += alpha·x[i]   (elementwise, no reduction)
//
// The elementwise shape is deliberate. A dot-product MAC carries a
// serial dependency through its accumulator, so a scalar loop is bound
// by FP-add latency; the axpy form has no cross-lane dependency at all,
// which lets SIMD lanes (and out-of-order scalar cores) run at
// throughput. Reformulating the convolution tap sum as a sequence of
// axpy sweeps keeps every output sample's additions in the same order
// as the literal per-sample sum, so the reformulation is bit-identical
// to the reference loop at both precisions — see DESIGN.md §13.
//
// Three implementations sit behind the dispatch:
//
//   - amd64: VEX-encoded 8-lane (float32) / 4-lane (float64) kernels,
//     selected at init when CPUID reports AVX2 + OS YMM-state support.
//     They use separate multiply and add (no FMA), so their results are
//     bit-identical to the pure-Go fallback — the float64 reference
//     engine produces the same bytes with and without assembly.
//   - arm64: NEON kernels using FMLA. arm64 is allowed to fuse — the Go
//     compiler already emits FMADD for the fallback's a*x + y pattern —
//     so on arm64 both paths fuse and agreement with amd64 is only
//     within the documented f32/f64 tolerance, as it always has been.
//   - pure Go: an 8-lane manually unrolled loop, the portable
//     reference. Build with -tags noasm to force it everywhere.
package simd

// Float is the precision parameter of the generic render pipeline.
type Float interface {
	~float32 | ~float64
}

// Axpy computes y[i] += alpha·x[i] over the full length of y.
// x and y must have equal length and must not overlap.
func Axpy[F Float](alpha F, x, y []F) {
	if len(x) != len(y) {
		panic("simd: Axpy length mismatch")
	}
	switch ys := any(y).(type) {
	case []float32:
		axpy32(any(alpha).(float32), any(x).([]float32), ys)
	case []float64:
		axpy64(any(alpha).(float64), any(x).([]float64), ys)
	default:
		axpyGeneric(alpha, x, y)
	}
}

// Axpy32 is the float32 MAC kernel: y[i] += alpha·x[i].
func Axpy32(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("simd: Axpy32 length mismatch")
	}
	axpy32(alpha, x, y)
}

// Axpy64 is the float64 MAC kernel: y[i] += alpha·x[i].
func Axpy64(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("simd: Axpy64 length mismatch")
	}
	axpy64(alpha, x, y)
}

// MacRow32 fuses one full kernel row of multiply-accumulates:
//
//	dst[i] += Σ_a taps[a]·noise[a+i]   for every i
//
// It is the convolution inner loop batched one level higher than Axpy:
// instead of len(taps) axpy calls that each reload and restore dst, the
// destination accumulators stay in registers across the whole tap row.
// For the tile-serving regime (rows of a few dozen samples, kernels of
// ~10 taps per row) this removes most of the per-call and dst-traffic
// overhead of the axpy formulation. The additions for each output
// sample happen in tap order a = 0, 1, …, exactly like the axpy sweeps,
// so results are bit-identical to composing Axpy32 per tap (and, on
// amd64/noasm where nothing fuses, to the literal per-sample sum).
//
// Contract: len(noise) ≥ len(taps)−1+len(dst); noise and dst must not
// overlap.
func MacRow32(taps, noise, dst []float32) {
	if len(noise) < len(taps)-1+len(dst) {
		panic("simd: MacRow32 noise window shorter than taps-1+dst")
	}
	macRow32(taps, noise, dst)
}

// MacRow64 is the float64 fused MAC-row kernel; see MacRow32.
func MacRow64(taps, noise, dst []float64) {
	if len(noise) < len(taps)-1+len(dst) {
		panic("simd: MacRow64 noise window shorter than taps-1+dst")
	}
	macRow64(taps, noise, dst)
}

// Narrow converts src to float32 into dst (round-to-nearest, the only
// narrowing the pipeline performs). Lengths must match.
func Narrow(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic("simd: Narrow length mismatch")
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// axpyGeneric is the portable 8-lane manually unrolled MAC loop. The
// unroll buys instruction-level parallelism (eight independent
// load/mul/add/store chains in flight); full-slice-expression reslicing
// keeps the inner block free of bounds checks.
func axpyGeneric[F Float](alpha F, x, y []F) {
	i := 0
	for ; i+8 <= len(y); i += 8 {
		xr := x[i : i+8 : i+8]
		yr := y[i : i+8 : i+8]
		yr[0] += alpha * xr[0]
		yr[1] += alpha * xr[1]
		yr[2] += alpha * xr[2]
		yr[3] += alpha * xr[3]
		yr[4] += alpha * xr[4]
		yr[5] += alpha * xr[5]
		yr[6] += alpha * xr[6]
		yr[7] += alpha * xr[7]
	}
	for ; i < len(y); i++ {
		y[i] += alpha * x[i]
	}
}

func axpyGeneric32(alpha float32, x, y []float32) { axpyGeneric(alpha, x, y) }
func axpyGeneric64(alpha float64, x, y []float64) { axpyGeneric(alpha, x, y) }

// macRowGeneric is the portable fused MAC-row loop: four output
// accumulators per block stay in registers across the whole tap row,
// giving four independent FP chains without touching dst between taps.
// Per output the adds run in tap order, so on amd64 and noasm builds
// (no fusing) the result is bit-identical to per-tap axpy sweeps; on
// arm64 the compiler emits FMADD just as the NEON kernels use FMLA.
func macRowGeneric[F Float](taps, noise, dst []F) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		acc0, acc1, acc2, acc3 := dst[i], dst[i+1], dst[i+2], dst[i+3]
		for a, t := range taps {
			nr := noise[a+i : a+i+4 : a+i+4]
			acc0 += t * nr[0]
			acc1 += t * nr[1]
			acc2 += t * nr[2]
			acc3 += t * nr[3]
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = acc0, acc1, acc2, acc3
	}
	for ; i < len(dst); i++ {
		acc := dst[i]
		for a, t := range taps {
			acc += t * noise[a+i]
		}
		dst[i] = acc
	}
}

func macRowGeneric32(taps, noise, dst []float32) { macRowGeneric(taps, noise, dst) }
func macRowGeneric64(taps, noise, dst []float64) { macRowGeneric(taps, noise, dst) }
