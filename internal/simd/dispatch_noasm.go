//go:build noasm || (!amd64 && !arm64)

package simd

// Pure-Go build: every architecture without a hand-written kernel, and
// any build with -tags noasm, runs the portable unrolled loop.

var (
	axpy32   = axpyGeneric32
	axpy64   = axpyGeneric64
	macRow32 = macRowGeneric32
	macRow64 = macRowGeneric64
)

// Impl reports which MAC kernel the dispatch selected ("go", "avx2" or
// "neon") — surfaced in tests and the daemon's metrics.
func Impl() string { return "go" }
