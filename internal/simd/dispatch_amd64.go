//go:build amd64 && !noasm

package simd

// Assembly kernel selection on amd64. The VEX kernels need AVX register
// state enabled by the OS as well as the CPU flag, so the check is the
// full OSXSAVE → XGETBV → AVX2 chain, probed once at init.

// cpuid executes CPUID with the given leaf/subleaf (axpy_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (axpy_amd64.s).
func xgetbv() (eax, edx uint32)

func axpy32AVX(alpha float32, x, y []float32)
func axpy64AVX(alpha float64, x, y []float64)

func macRow32AVX(taps, noise, dst []float32)
func macRow64AVX(taps, noise, dst []float64)

var (
	axpy32   = axpyGeneric32
	axpy64   = axpyGeneric64
	macRow32 = macRowGeneric32
	macRow64 = macRowGeneric64

	impl = "go"
)

func hasAVX2() bool {
	const osxsave = 1 << 27
	const avx = 1 << 28
	_, _, c, _ := cpuid(1, 0)
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	// The OS must save/restore XMM (bit 1) and YMM (bit 2) state.
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	if maxLeaf, _, _, _ := cpuid(0, 0); maxLeaf < 7 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}

func init() {
	if hasAVX2() {
		axpy32 = axpy32AVX
		axpy64 = axpy64AVX
		macRow32 = macRow32AVX
		macRow64 = macRow64AVX
		impl = "avx2"
	}
}

// Impl reports which MAC kernel the dispatch selected ("go", "avx2" or
// "neon") — surfaced in tests and the daemon's metrics.
func Impl() string { return impl }
