// Package stats provides the estimators used to validate generated
// surfaces against their prescribed statistics: descriptive moments,
// FFT-based autocovariance, spectral (periodogram) estimates of the
// paper's weighting array, normality tests, and error metrics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // population (1/N) variance
	Std      float64
	Skewness float64
	Kurtosis float64 // normalized 4th moment; 3 for a Gaussian
	Min, Max float64
}

// Describe computes a two-pass summary of data. It panics on empty input.
func Describe(data []float64) Summary {
	if len(data) == 0 {
		panic("stats: Describe on empty data")
	}
	var s Summary
	s.N = len(data)
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, v := range data {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var m2, m3, m4 float64
	for _, v := range data {
		d := v - s.Mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	fn := float64(s.N)
	m2 /= fn
	m3 /= fn
	m4 /= fn
	s.Variance = m2
	s.Std = math.Sqrt(m2)
	if m2 > 0 {
		s.Skewness = m3 / math.Pow(m2, 1.5)
		s.Kurtosis = m4 / (m2 * m2)
	}
	return s
}

// String renders a one-line report.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g skew=%.3g kurt=%.3g min=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Skewness, s.Kurtosis, s.Min, s.Max)
}

// RMSE returns the root-mean-square difference between equal-length
// slices.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: RMSE length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// MaxAbs returns max |a[i]-b[i]|.
func MaxAbs(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MaxAbs length mismatch")
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// KSNormal runs a one-sample Kolmogorov–Smirnov test of data against
// N(mu, sigma). It returns the statistic D and the asymptotic p-value.
func KSNormal(data []float64, mu, sigma float64) (d, p float64) {
	n := len(data)
	if n == 0 {
		panic("stats: KSNormal on empty data")
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	fn := float64(n)
	for i, x := range sorted {
		cdf := 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
		upper := float64(i+1)/fn - cdf
		lower := cdf - float64(i)/fn
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return d, ksPValue(d, n)
}

// ksPValue evaluates the asymptotic Kolmogorov distribution
// Q(λ) = 2·Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²} with the usual finite-n
// correction λ = (√n + 0.12 + 0.11/√n)·D.
func ksPValue(d float64, n int) float64 {
	sn := math.Sqrt(float64(n))
	lambda := (sn + 0.12 + 0.11/sn) * d
	if lambda < 1e-6 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ChiSquareNormal bins data into nbins equiprobable cells of N(mu, sigma)
// and returns the χ² statistic and its degrees of freedom (nbins−1).
// Large statistics relative to dof indicate non-normality.
func ChiSquareNormal(data []float64, mu, sigma float64, nbins int) (chi2 float64, dof int) {
	if nbins < 2 {
		panic("stats: ChiSquareNormal needs at least 2 bins")
	}
	if len(data) == 0 {
		panic("stats: ChiSquareNormal on empty data")
	}
	// Equiprobable bin edges via the normal quantile function.
	edges := make([]float64, nbins-1)
	for i := range edges {
		p := float64(i+1) / float64(nbins)
		edges[i] = mu + sigma*math.Sqrt2*erfinv(2*p-1)
	}
	counts := make([]int, nbins)
	for _, x := range data {
		i := sort.SearchFloat64s(edges, x)
		counts[i]++
	}
	expected := float64(len(data)) / float64(nbins)
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2, nbins - 1
}

// erfinv approximates the inverse error function (Giles 2012 single
// precision rational approximation refined with one Newton step), enough
// for quantile-based binning.
func erfinv(x float64) float64 {
	if x <= -1 || x >= 1 {
		panic("stats: erfinv domain")
	}
	w := -math.Log((1 - x) * (1 + x))
	var p float64
	if w < 5 {
		w -= 2.5
		p = 2.81022636e-08
		p = 3.43273939e-07 + p*w
		p = -3.5233877e-06 + p*w
		p = -4.39150654e-06 + p*w
		p = 0.00021858087 + p*w
		p = -0.00125372503 + p*w
		p = -0.00417768164 + p*w
		p = 0.246640727 + p*w
		p = 1.50140941 + p*w
	} else {
		w = math.Sqrt(w) - 3
		p = -0.000200214257
		p = 0.000100950558 + p*w
		p = 0.00134934322 + p*w
		p = -0.00367342844 + p*w
		p = 0.00573950773 + p*w
		p = -0.0076224613 + p*w
		p = 0.00943887047 + p*w
		p = 1.00167406 + p*w
		p = 2.83297682 + p*w
	}
	y := p * x
	// One Newton refinement: f(y) = erf(y) − x.
	e := math.Erf(y) - x
	y -= e * math.Sqrt(math.Pi) / 2 * math.Exp(y*y)
	return y
}
