package stats

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
	"roughsurface/internal/grid"
	"roughsurface/internal/rng"
)

func TestDescribeKnownValues(t *testing.T) {
	s := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx.Exact(s.Mean, 5) {
		t.Errorf("mean %g", s.Mean)
	}
	if !approx.Exact(s.Variance, 4) {
		t.Errorf("variance %g", s.Variance)
	}
	if !approx.Exact(s.Std, 2) {
		t.Errorf("std %g", s.Std)
	}
	if !approx.Exact(s.Min, 2) || !approx.Exact(s.Max, 9) {
		t.Errorf("min/max %g/%g", s.Min, s.Max)
	}
}

func TestDescribeGaussianSample(t *testing.T) {
	g := rng.NewGaussian(1)
	data := make([]float64, 100000)
	g.Fill(data)
	s := Describe(data)
	if math.Abs(s.Mean) > 0.02 {
		t.Errorf("mean %g", s.Mean)
	}
	if math.Abs(s.Std-1) > 0.02 {
		t.Errorf("std %g", s.Std)
	}
	if math.Abs(s.Skewness) > 0.05 {
		t.Errorf("skew %g", s.Skewness)
	}
	if math.Abs(s.Kurtosis-3) > 0.12 {
		t.Errorf("kurtosis %g", s.Kurtosis)
	}
}

func TestDescribePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Describe(nil)
}

func TestRMSEAndMaxAbs(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 7}
	if got := MaxAbs(a, b); !approx.Exact(got, 4) {
		t.Errorf("MaxAbs %g", got)
	}
	want := math.Sqrt(16.0 / 3)
	if got := RMSE(a, b); math.Abs(got-want) > 1e-15 {
		t.Errorf("RMSE %g want %g", got, want)
	}
}

func TestKSNormalAcceptsGaussian(t *testing.T) {
	g := rng.NewGaussian(2)
	data := make([]float64, 20000)
	g.Fill(data)
	_, p := KSNormal(data, 0, 1)
	if p < 0.01 {
		t.Errorf("KS rejected a genuine Gaussian sample: p=%g", p)
	}
}

func TestKSNormalRejectsUniform(t *testing.T) {
	src := rng.NewSource(3)
	data := make([]float64, 5000)
	for i := range data {
		data[i] = src.Float64()*2 - 1
	}
	_, p := KSNormal(data, 0, 1)
	if p > 1e-6 {
		t.Errorf("KS failed to reject uniform data: p=%g", p)
	}
}

func TestKSNormalDetectsWrongScale(t *testing.T) {
	g := rng.NewGaussian(4)
	data := make([]float64, 20000)
	for i := range data {
		data[i] = 2 * g.Next() // σ=2, tested against σ=1
	}
	_, p := KSNormal(data, 0, 1)
	if p > 1e-6 {
		t.Errorf("KS failed to reject wrong σ: p=%g", p)
	}
}

func TestChiSquareNormal(t *testing.T) {
	g := rng.NewGaussian(5)
	data := make([]float64, 50000)
	g.Fill(data)
	chi2, dof := ChiSquareNormal(data, 0, 1, 20)
	// For a correct null, chi2 ≈ dof ± a few sqrt(2·dof).
	if chi2 > float64(dof)+6*math.Sqrt(2*float64(dof)) {
		t.Errorf("chi2 %g too large for dof %d", chi2, dof)
	}
	// Shifted data must fail loudly.
	for i := range data {
		data[i] += 0.5
	}
	chi2, _ = ChiSquareNormal(data, 0, 1, 20)
	if chi2 < 500 {
		t.Errorf("chi2 %g did not detect a 0.5σ shift", chi2)
	}
}

func TestErfinvRoundTrip(t *testing.T) {
	for _, x := range []float64{-0.95, -0.5, -0.1, 0, 0.1, 0.5, 0.9, 0.999} {
		y := erfinv(x)
		if math.Abs(math.Erf(y)-x) > 1e-9 {
			t.Errorf("erf(erfinv(%g)) = %g", x, math.Erf(y))
		}
	}
}

func TestAutocovarianceWhiteNoise(t *testing.T) {
	g := grid.New(128, 128)
	rng.NewGaussian(6).Fill(g.Data)
	cov := AutocovarianceFFT(g)
	if v := cov.At(0, 0); math.Abs(v-1) > 0.05 {
		t.Errorf("white-noise variance estimate %g", v)
	}
	// Off-zero lags should be near zero.
	for _, lag := range [][2]int{{1, 0}, {0, 1}, {5, 5}, {20, 3}} {
		if v := cov.At(lag[0], lag[1]); math.Abs(v) > 0.05 {
			t.Errorf("lag %v covariance %g, want ~0", lag, v)
		}
	}
}

func TestAutocovarianceKnownSinusoid(t *testing.T) {
	// f = A·cos(2πk x/N): autocovariance is (A²/2)·cos(2πk d/N).
	n, k, amp := 64, 3, 2.0
	g := grid.New(n, 1)
	for i := 0; i < n; i++ {
		g.Data[i] = amp * math.Cos(2*math.Pi*float64(k*i)/float64(n))
	}
	cov := AutocovarianceFFT(g)
	for d := 0; d < n; d++ {
		want := amp * amp / 2 * math.Cos(2*math.Pi*float64(k*d)/float64(n))
		if math.Abs(cov.At(d, 0)-want) > 1e-9 {
			t.Fatalf("lag %d: got %g want %g", d, cov.At(d, 0), want)
		}
	}
}

func TestLagProfiles(t *testing.T) {
	g := grid.New(16, 16)
	rng.NewGaussian(8).Fill(g.Data)
	cov := AutocovarianceFFT(g)
	px := LagProfileX(cov, 5)
	py := LagProfileY(cov, 100) // clipped to Ny-1
	if len(px) != 6 {
		t.Errorf("LagProfileX length %d", len(px))
	}
	if len(py) != 16 {
		t.Errorf("LagProfileY length %d", len(py))
	}
	if !approx.Exact(px[0], cov.At(0, 0)) || !approx.Exact(py[0], cov.At(0, 0)) {
		t.Error("profiles must start at zero lag")
	}
	if !approx.Exact(px[3], cov.At(3, 0)) || !approx.Exact(py[2], cov.At(0, 2)) {
		t.Error("profile entries misordered")
	}
}

func TestCorrelationLengthExactExponential(t *testing.T) {
	// profile[i] = exp(-i/5): 1/e crossing at exactly i = 5.
	profile := make([]float64, 30)
	for i := range profile {
		profile[i] = math.Exp(-float64(i) / 5)
	}
	if cl := CorrelationLength(profile, 1); math.Abs(cl-5) > 0.02 {
		t.Errorf("correlation length %g, want 5", cl)
	}
	// With spacing 2 the physical length doubles.
	if cl := CorrelationLength(profile, 2); math.Abs(cl-10) > 0.04 {
		t.Errorf("correlation length %g, want 10", cl)
	}
}

func TestCorrelationLengthNeverDecays(t *testing.T) {
	profile := []float64{1, 0.99, 0.98, 0.97}
	if cl := CorrelationLength(profile, 1); !approx.Exact(cl, 3) {
		t.Errorf("non-decaying profile should return window edge, got %g", cl)
	}
}

func TestCorrelationLengthDegenerate(t *testing.T) {
	if CorrelationLength(nil, 1) != 0 {
		t.Error("empty profile")
	}
	if CorrelationLength([]float64{0, 0}, 1) != 0 {
		t.Error("zero-variance profile")
	}
}

func TestWeightPeriodogramSingleTone(t *testing.T) {
	// f = cos(2πk·x/N) has |DFT|² = (N/2)² at bins ±k → ŵ = 1/4 there.
	n, k := 32, 4
	g := grid.New(n, 1)
	for i := 0; i < n; i++ {
		g.Data[i] = math.Cos(2 * math.Pi * float64(k*i) / float64(n))
	}
	w := WeightPeriodogram(g)
	for i := 0; i < n; i++ {
		want := 0.0
		if i == k || i == n-k {
			want = 0.25
		}
		if math.Abs(w.At(i, 0)-want) > 1e-10 {
			t.Fatalf("bin %d: ŵ=%g want %g", i, w.At(i, 0), want)
		}
	}
}
