package stats

import (
	"math"

	"roughsurface/internal/grid"
)

// SlopeVariance estimates the per-axis slope variances of a surface with
// central differences: Var[∂f/∂x] and Var[∂f/∂y]. For a twice-
// differentiable autocorrelation (Gaussian family) the analytic value is
// −∂²ρ/∂x²(0) = 2h²/clx²; for cusped families (exponential) the surface
// is not mean-square differentiable and the discrete estimate grows as
// the spacing shrinks — both behaviors are physical and tested.
func SlopeVariance(g *grid.Grid) (sx2, sy2 float64) {
	var nx, ny int
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 1; ix < g.Nx-1; ix++ {
			d := (g.At(ix+1, iy) - g.At(ix-1, iy)) / (2 * g.Dx)
			sx2 += d * d
			nx++
		}
	}
	for iy := 1; iy < g.Ny-1; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			d := (g.At(ix, iy+1) - g.At(ix, iy-1)) / (2 * g.Dy)
			sy2 += d * d
			ny++
		}
	}
	if nx > 0 {
		sx2 /= float64(nx)
	}
	if ny > 0 {
		sy2 /= float64(ny)
	}
	return sx2, sy2
}

// RMSSlope returns the root-mean-square slopes per axis.
func RMSSlope(g *grid.Grid) (sx, sy float64) {
	sx2, sy2 := SlopeVariance(g)
	return math.Sqrt(sx2), math.Sqrt(sy2)
}

// StructureFunctionX estimates the structure function
// D(d) = E[(f(x+d, y) − f(x, y))²] along x for lags 0..maxLag, using
// circular differences (matching the circular autocovariance, so the
// identity D(d) = 2·(C(0) − C(d)) holds exactly for the zero-mean
// estimator). For a stationary surface D(d) → 2h² at large lags.
func StructureFunctionX(g *grid.Grid, maxLag int) []float64 {
	if maxLag >= g.Nx {
		maxLag = g.Nx - 1
	}
	out := make([]float64, maxLag+1)
	inv := 1 / float64(g.Nx*g.Ny)
	for d := 1; d <= maxLag; d++ {
		var acc float64
		for iy := 0; iy < g.Ny; iy++ {
			row := g.Row(iy)
			for ix := range row {
				diff := row[(ix+d)%g.Nx] - row[ix]
				acc += diff * diff
			}
		}
		out[d] = acc * inv
	}
	return out
}

// RadialAverage bins a DFT-ordered spectral grid (e.g. the output of
// WeightPeriodogram, or a weight array from package spectrum) into
// nbins annuli of radial spatial frequency and returns the bin-center
// frequencies and the mean value per annulus. The grid's Dx/Dy are the
// spectral bin widths. Radially averaging collapses the periodogram's
// per-bin fluctuation by the annulus population, which is what makes
// single-realization spectrum checks feasible.
func RadialAverage(w *grid.Grid, nbins int) (freq, mean []float64) {
	if nbins < 1 {
		panic("stats: RadialAverage needs at least one bin")
	}
	// Maximum meaningful radius: the smaller Nyquist of the two axes,
	// so annuli stay fully inside the sampled disc.
	kMax := math.Min(float64(w.Nx/2)*w.Dx, float64(w.Ny/2)*w.Dy)
	sums := make([]float64, nbins)
	counts := make([]int, nbins)
	for my := 0; my < w.Ny; my++ {
		ky := float64(foldIdx(my, w.Ny)) * w.Dy
		for mx := 0; mx < w.Nx; mx++ {
			kx := float64(foldIdx(mx, w.Nx)) * w.Dx
			k := math.Hypot(kx, ky)
			if k >= kMax {
				continue
			}
			bin := int(k / kMax * float64(nbins))
			sums[bin] += w.At(mx, my)
			counts[bin]++
		}
	}
	freq = make([]float64, nbins)
	mean = make([]float64, nbins)
	for i := range sums {
		freq[i] = (float64(i) + 0.5) * kMax / float64(nbins)
		if counts[i] > 0 {
			mean[i] = sums[i] / float64(counts[i])
		}
	}
	return freq, mean
}

// foldIdx maps DFT bin m of an N-point axis to its frequency index
// (same convention as the spectrum package's weight arrays).
func foldIdx(m, n int) int {
	if 2*m <= n {
		return m
	}
	return n - m
}
