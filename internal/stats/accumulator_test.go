package stats

import (
	"math"
	"testing"
	"testing/quick"

	"roughsurface/internal/approx"
	"roughsurface/internal/rng"
)

func TestAccumulatorMatchesDescribe(t *testing.T) {
	data := make([]float64, 10000)
	rng.NewGaussian(3).Fill(data)
	for i := range data {
		data[i] = data[i]*2.5 + 7 // non-trivial mean and scale
	}
	var a Accumulator
	a.AddSlice(data)
	d := Describe(data)
	if a.N() != int64(d.N) {
		t.Errorf("N %d vs %d", a.N(), d.N)
	}
	if math.Abs(a.Mean()-d.Mean) > 1e-9 {
		t.Errorf("mean %g vs %g", a.Mean(), d.Mean)
	}
	if math.Abs(a.Variance()-d.Variance) > 1e-9 {
		t.Errorf("variance %g vs %g", a.Variance(), d.Variance)
	}
	min, max := a.MinMax()
	if !approx.Exact(min, d.Min) || !approx.Exact(max, d.Max) {
		t.Errorf("extrema (%g,%g) vs (%g,%g)", min, max, d.Min, d.Max)
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Variance() != 0 || a.Std() != 0 {
		t.Error("empty accumulator not zeroed")
	}
	a.Add(5)
	if !approx.Exact(a.Mean(), 5) || a.Variance() != 0 {
		t.Errorf("single sample: mean %g var %g", a.Mean(), a.Variance())
	}
}

func TestAccumulatorMergeEqualsSequential(t *testing.T) {
	data := make([]float64, 5000)
	rng.NewGaussian(5).Fill(data)
	var whole Accumulator
	whole.AddSlice(data)

	var left, right Accumulator
	left.AddSlice(data[:1234])
	right.AddSlice(data[1234:])
	left.Merge(&right)

	if left.N() != whole.N() {
		t.Error("merged N differs")
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged mean %g vs %g", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance %g vs %g", left.Variance(), whole.Variance())
	}
	lmin, lmax := left.MinMax()
	wmin, wmax := whole.MinMax()
	if !approx.Exact(lmin, wmin) || !approx.Exact(lmax, wmax) {
		t.Error("merged extrema differ")
	}
}

func TestAccumulatorMergeEdges(t *testing.T) {
	var empty, full Accumulator
	full.AddSlice([]float64{1, 2, 3})
	snapshot := full
	full.Merge(&empty) // no-op
	if full != snapshot {
		t.Error("merging empty changed state")
	}
	empty.Merge(&full)
	if empty.N() != 3 || !approx.Exact(empty.Mean(), 2) {
		t.Errorf("merge into empty: n=%d mean=%g", empty.N(), empty.Mean())
	}
}

func TestQuickAccumulatorSplitInvariance(t *testing.T) {
	f := func(seed int64, rawSplit uint16) bool {
		data := make([]float64, 400)
		g := rng.NewGaussian(uint64(seed))
		g.Fill(data)
		split := int(rawSplit)%399 + 1
		var a, b, whole Accumulator
		a.AddSlice(data[:split])
		b.AddSlice(data[split:])
		a.Merge(&b)
		whole.AddSlice(data)
		return math.Abs(a.Mean()-whole.Mean()) < 1e-10 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
