package stats

import "math"

// Accumulator computes running mean/variance/extrema with Welford's
// algorithm — numerically stable single-pass moments for streaming
// workloads (strip-by-strip surface generation) where the data never
// exists in memory at once. The zero value is ready to use.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(v float64) {
	if a.n == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.n++
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
}

// AddSlice folds a batch of samples.
func (a *Accumulator) AddSlice(vs []float64) {
	for _, v := range vs {
		a.Add(v)
	}
}

// Merge folds another accumulator into a (Chan et al. parallel
// combination), so per-goroutine accumulators can be reduced.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.mean += delta * float64(b.n) / float64(n)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// N reports the number of samples folded in.
func (a *Accumulator) N() int64 { return a.n }

// Mean reports the running mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance reports the running population (1/N) variance.
func (a *Accumulator) Variance() float64 {
	if a.n == 0 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// Std reports the running standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Variance()) }

// MinMax reports the running extrema (0, 0 when empty).
func (a *Accumulator) MinMax() (min, max float64) { return a.min, a.max }
