package stats

import (
	"math"
	"testing"

	"roughsurface/internal/grid"
	"roughsurface/internal/rng"
)

func TestSlopeVarianceKnownPlane(t *testing.T) {
	// f = 3x + 4y: slopes are exactly 3 and 4 everywhere.
	g := grid.New(16, 16)
	g.Dx, g.Dy = 0.5, 2
	for iy := 0; iy < 16; iy++ {
		for ix := 0; ix < 16; ix++ {
			x, y := g.XY(ix, iy)
			g.Set(ix, iy, 3*x+4*y)
		}
	}
	sx, sy := RMSSlope(g)
	if math.Abs(sx-3) > 1e-12 || math.Abs(sy-4) > 1e-12 {
		t.Errorf("RMS slopes (%g, %g), want (3, 4)", sx, sy)
	}
}

func TestSlopeVarianceSinusoid(t *testing.T) {
	// f = sin(2πx/N): slope variance over a period = (2π/N)²/2 scaled by
	// the discrete sinc factor sin(2π/N)/(2π/N) of the central
	// difference; with N=64 the factor is ~0.9984.
	n := 64
	g := grid.New(n, 4)
	for iy := 0; iy < 4; iy++ {
		for ix := 0; ix < n; ix++ {
			g.Set(ix, iy, math.Sin(2*math.Pi*float64(ix)/float64(n)))
		}
	}
	sx2, sy2 := SlopeVariance(g)
	omega := 2 * math.Pi / float64(n)
	wantApprox := omega * omega / 2
	if math.Abs(sx2-wantApprox)/wantApprox > 0.05 {
		t.Errorf("sx² = %g want ≈ %g", sx2, wantApprox)
	}
	if sy2 != 0 {
		t.Errorf("sy² = %g for a y-constant field", sy2)
	}
}

func TestStructureFunctionIdentityWithAutocovariance(t *testing.T) {
	// For the circular zero-mean estimators, D(d) = 2(C(0) − C(d))
	// exactly — both sides are the same finite sum rearranged.
	g := grid.New(32, 16)
	rng.NewGaussian(5).Fill(g.Data)
	d := StructureFunctionX(g, 10)
	c := AutocovarianceFFTZeroMean(g)
	for lag := 0; lag <= 10; lag++ {
		want := 2 * (c.At(0, 0) - c.At(lag, 0))
		if math.Abs(d[lag]-want) > 1e-9 {
			t.Fatalf("lag %d: D = %g, 2(C0−C) = %g", lag, d[lag], want)
		}
	}
}

func TestStructureFunctionSaturatesAtTwiceVariance(t *testing.T) {
	g := grid.New(128, 64)
	rng.NewGaussian(6).Fill(g.Data) // white: D(d) = 2 for all d > 0
	d := StructureFunctionX(g, 5)
	if d[0] != 0 {
		t.Error("D(0) must be 0")
	}
	for lag := 1; lag <= 5; lag++ {
		if math.Abs(d[lag]-2) > 0.1 {
			t.Errorf("white-noise D(%d) = %g, want ≈2", lag, d[lag])
		}
	}
}

func TestRadialAverageFlatField(t *testing.T) {
	w := grid.New(32, 32)
	w.Dx, w.Dy = 1, 1
	w.Fill(3.5)
	freq, mean := RadialAverage(w, 8)
	if len(freq) != 8 || len(mean) != 8 {
		t.Fatal("wrong bin count")
	}
	for i, m := range mean {
		if math.Abs(m-3.5) > 1e-12 {
			t.Errorf("bin %d mean %g, want 3.5", i, m)
		}
		if i > 0 && freq[i] <= freq[i-1] {
			t.Error("frequencies not increasing")
		}
	}
}

func TestRadialAverageRecoversRadialProfile(t *testing.T) {
	// Fill a spectral grid with a known radial function and check the
	// annulus means track it.
	n := 128
	w := grid.New(n, n)
	w.Dx, w.Dy = 1, 1
	f := func(k float64) float64 { return math.Exp(-k * k / 400) }
	for my := 0; my < n; my++ {
		ky := float64(foldIdx(my, n))
		for mx := 0; mx < n; mx++ {
			kx := float64(foldIdx(mx, n))
			w.Set(mx, my, f(math.Hypot(kx, ky)))
		}
	}
	freq, mean := RadialAverage(w, 16)
	for i := range freq {
		want := f(freq[i])
		// Annulus averaging of a curved profile has finite-bin bias;
		// 6% absolute of peak is ample for 16 bins.
		if math.Abs(mean[i]-want) > 0.06 {
			t.Errorf("bin %d (k=%.1f): mean %g want %g", i, freq[i], mean[i], want)
		}
	}
}

func TestRadialAveragePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for nbins=0")
		}
	}()
	RadialAverage(grid.New(4, 4), 0)
}
