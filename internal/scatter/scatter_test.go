package scatter

import (
	"math"
	"testing"

	"roughsurface/internal/convgen"
	"roughsurface/internal/grid"
	"roughsurface/internal/rng"
	"roughsurface/internal/spectrum"
	"roughsurface/internal/stats"
)

func gaussSurface(h, cl float64, seed uint64, n int) *grid.Grid {
	s := spectrum.MustGaussian(h, cl, cl)
	k := convgen.MustDesign(s, 1, 1, 8, 1e-5)
	return convgen.NewGenerator(k, seed).GenerateCentered(n, n)
}

// TestCoherentReflectionMatchesRayleigh: the measured coherent
// reflection of a generated Gaussian surface must follow the analytic
// Rayleigh damping over a range of roughness regimes — from nearly
// specular (khcosθ ≪ 1) to fully incoherent.
func TestCoherentReflectionMatchesRayleigh(t *testing.T) {
	h := 0.5
	surf := gaussSurface(h, 10, 3, 256)
	for _, tc := range []struct {
		k, theta float64
	}{
		{0.2, 0},           // mildly rough: damping ≈ 0.98
		{1.0, 0},           // k·h = 0.5: damping ≈ 0.61
		{2.0, 0},           // strong damping ≈ 0.14
		{1.0, math.Pi / 4}, // oblique incidence
		{1.0, math.Pi / 3},
	} {
		got := CoherentReflection(surf, tc.k, tc.theta)
		want := RayleighDamping(tc.k, h, tc.theta)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("k=%g θ=%.2f: coherent %g want %g", tc.k, tc.theta, got, want)
		}
	}
}

func TestCoherentReflectionLimits(t *testing.T) {
	// A flat surface reflects perfectly coherently at any roughness
	// wavenumber.
	flat := grid.New(32, 32)
	if got := CoherentReflection(flat, 5, 0.3); math.Abs(got-1) > 1e-12 {
		t.Errorf("flat surface coherent reflection %g", got)
	}
	// A very rough surface destroys coherence.
	rough := gaussSurface(5, 8, 4, 256)
	if got := CoherentReflection(rough, 2, 0); got > 0.05 {
		t.Errorf("very rough coherent reflection %g, want ~0", got)
	}
}

func TestSlopeHistogramValidation(t *testing.T) {
	g := gaussSurface(1, 8, 5, 64)
	if _, err := NewSlopeHistogram(g, 1, 1); err == nil {
		t.Error("1 bin accepted")
	}
	if _, err := NewSlopeHistogram(g, 16, 0); err == nil {
		t.Error("zero maxSlope accepted")
	}
	tiny := grid.New(2, 2)
	if _, err := NewSlopeHistogram(tiny, 16, 1); err == nil {
		t.Error("2x2 surface accepted")
	}
}

func TestSlopeHistogramNormalization(t *testing.T) {
	g := gaussSurface(1, 8, 6, 256)
	h, err := NewSlopeHistogram(g, 40, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	binW := 2 * h.MaxSlope / float64(h.N)
	var integral float64
	for _, d := range h.Density {
		integral += d * binW * binW
	}
	captured := 1 - float64(h.Dropped)/float64(h.Total)
	if math.Abs(integral-captured) > 1e-9 {
		t.Errorf("density integral %g vs captured fraction %g", integral, captured)
	}
	if captured < 0.98 {
		t.Errorf("slope range clips %g of the distribution", 1-captured)
	}
}

// TestSlopeHistogramMatchesGaussianPDF: the measured density at several
// probe slopes tracks the analytic N(0, s²)² product with the
// discrete-derivative slope variance.
func TestSlopeHistogramMatchesGaussianPDF(t *testing.T) {
	hDev, cl := 1.0, 8.0
	surf := gaussSurface(hDev, cl, 7, 512)
	sx2, sy2 := stats.SlopeVariance(surf)
	s2 := (sx2 + sy2) / 2
	hist, err := NewSlopeHistogram(surf, 48, 4*math.Sqrt(s2))
	if err != nil {
		t.Fatal(err)
	}
	pdf := func(sx, sy float64) float64 {
		return math.Exp(-(sx*sx+sy*sy)/(2*s2)) / (2 * math.Pi * s2)
	}
	sd := math.Sqrt(s2)
	for _, probe := range [][2]float64{{0, 0}, {sd, 0}, {0, -sd}, {1.5 * sd, 1.5 * sd}} {
		got := hist.At(probe[0], probe[1])
		want := pdf(probe[0], probe[1])
		if math.Abs(got-want)/pdf(0, 0) > 0.1 {
			t.Errorf("slope pdf at %v: %g want %g", probe, got, want)
		}
	}
}

// TestGOBackscatterMatchesClosedForm: the histogram-driven σ⁰ curve of
// a generated Gaussian surface must track the closed form with the
// measured slope variance — who wins at nadir, how fast it falls off.
func TestGOBackscatterMatchesClosedForm(t *testing.T) {
	surf := gaussSurface(1.0, 8, 9, 512)
	sx2, sy2 := stats.SlopeVariance(surf)
	s2 := (sx2 + sy2) / 2
	hist, err := NewSlopeHistogram(surf, 48, 4*math.Sqrt(s2))
	if err != nil {
		t.Fatal(err)
	}
	const refl = 0.8
	for _, deg := range []float64{0, 5, 10, 15, 20} {
		th := deg * math.Pi / 180
		got := GOBackscatter(hist, th, refl)
		want := GOBackscatterGaussian(th, s2, refl)
		if want <= 0 {
			t.Fatalf("bad closed form at %g°", deg)
		}
		if math.Abs(got-want)/GOBackscatterGaussian(0, s2, refl) > 0.12 {
			t.Errorf("σ⁰(%g°) = %g want %g", deg, got, want)
		}
	}
}

// TestBackscatterShape: smooth surfaces concentrate σ⁰ at nadir and
// fall off fast; rough surfaces are dimmer at nadir but brighter off-
// nadir — the crossover every radar text shows.
func TestBackscatterShape(t *testing.T) {
	const refl = 1.0
	curve := func(h float64, seed uint64) []float64 {
		surf := gaussSurface(h, 8, seed, 512)
		sx2, sy2 := stats.SlopeVariance(surf)
		s2 := (sx2 + sy2) / 2
		hist, err := NewSlopeHistogram(surf, 48, 6*math.Sqrt(s2))
		if err != nil {
			t.Fatal(err)
		}
		thetas := []float64{0, 10 * math.Pi / 180, 25 * math.Pi / 180}
		return BackscatterCurve(hist, thetas, refl)
	}
	smooth := curve(0.4, 11)
	rough := curve(2.0, 11)
	if !(smooth[0] > rough[0]) {
		t.Errorf("nadir: smooth %g should outshine rough %g", smooth[0], rough[0])
	}
	if !(rough[2] > smooth[2]) {
		t.Errorf("25° off-nadir: rough %g should outshine smooth %g", rough[2], smooth[2])
	}
	if !(smooth[0] > smooth[2]) {
		t.Error("smooth curve should fall off-nadir")
	}
}

func TestToDB(t *testing.T) {
	db := ToDB([]float64{1, 10, 0.1, 0})
	if db[0] != 0 || math.Abs(db[1]-10) > 1e-12 || math.Abs(db[2]+10) > 1e-12 {
		t.Errorf("dB conversion wrong: %v", db)
	}
	if !math.IsInf(db[3], -1) {
		t.Error("zero should map to -inf dB")
	}
}

func TestCoherentReflectionWhiteNoiseCharacteristicFunction(t *testing.T) {
	// For i.i.d. N(0,1) heights the coherent sum is the characteristic
	// function of a standard normal at 2k·cosθ regardless of spatial
	// structure — a direct sanity anchor independent of the generators.
	g := grid.New(512, 512)
	rng.NewGaussian(13).Fill(g.Data)
	k := 0.4
	got := CoherentReflection(g, k, 0)
	want := math.Exp(-2 * k * k)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("characteristic function %g want %g", got, want)
	}
}
