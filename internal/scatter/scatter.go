// Package scatter evaluates classical rough-surface scattering
// observables on generated surfaces — the application domain the paper
// opens with (electromagnetic/acoustic scattering from random rough
// surfaces, its refs [1]–[6]). Two regimes with exact analytic
// references make the package self-validating:
//
//   - the coherent (specular) reflection coefficient, damped by the
//     Rayleigh roughness parameter: ⟨e^{2jk·h·cosθ}⟩ =
//     exp(−2(k·h·cosθ)²) for Gaussian heights;
//   - the geometric-optics backscatter cross-section, controlled by the
//     surface slope distribution: σ⁰(θ) = |R|²·sec⁴θ/(2·s²) ·
//     exp(−tan²θ/(2s²)) for isotropic Gaussian slopes of per-axis
//     variance s².
//
// Tests compare both against surfaces from the convolution generator
// with their analytically known h and s².
package scatter

import (
	"fmt"
	"math"

	"roughsurface/internal/grid"
)

// CoherentReflection estimates the magnitude of the coherent reflection
// coefficient ⟨e^{j·2k·cosθ·f}⟩ of a surface under illumination with
// wavenumber k at incidence angle theta (from vertical). For a
// zero-mean Gaussian surface of deviation h the analytic value is
// exp(−2(k·h·cosθ)²) — the Rayleigh/Ament damping factor.
func CoherentReflection(g *grid.Grid, k, theta float64) float64 {
	phase := 2 * k * math.Cos(theta)
	var re, im float64
	for _, v := range g.Data {
		s, c := math.Sincos(phase * v)
		re += c
		im += s
	}
	n := float64(len(g.Data))
	re /= n
	im /= n
	return math.Hypot(re, im)
}

// RayleighDamping is the analytic coherent damping factor
// exp(−2(k·h·cosθ)²) for Gaussian heights of deviation h.
func RayleighDamping(k, h, theta float64) float64 {
	x := k * h * math.Cos(theta)
	return math.Exp(-2 * x * x)
}

// SlopeHistogram bins the central-difference slopes (∂f/∂x, ∂f/∂y) of a
// surface into an nbins×nbins histogram over [−maxSlope, maxSlope]²,
// normalized to a probability density (integral 1 over the binned
// domain). Out-of-range slopes are dropped and reported.
type SlopeHistogram struct {
	N        int // bins per axis
	MaxSlope float64
	Density  []float64 // row-major, sx fast
	Dropped  int
	Total    int
}

// NewSlopeHistogram estimates the joint slope density of g.
func NewSlopeHistogram(g *grid.Grid, nbins int, maxSlope float64) (*SlopeHistogram, error) {
	if nbins < 2 {
		return nil, fmt.Errorf("scatter: need at least 2 slope bins, got %d", nbins)
	}
	if !(maxSlope > 0) {
		return nil, fmt.Errorf("scatter: maxSlope must be positive, got %g", maxSlope)
	}
	h := &SlopeHistogram{N: nbins, MaxSlope: maxSlope, Density: make([]float64, nbins*nbins)}
	binW := 2 * maxSlope / float64(nbins)
	counts := make([]int, nbins*nbins)
	for iy := 1; iy < g.Ny-1; iy++ {
		for ix := 1; ix < g.Nx-1; ix++ {
			sx := (g.At(ix+1, iy) - g.At(ix-1, iy)) / (2 * g.Dx)
			sy := (g.At(ix, iy+1) - g.At(ix, iy-1)) / (2 * g.Dy)
			h.Total++
			bx := int((sx + maxSlope) / binW)
			by := int((sy + maxSlope) / binW)
			if bx < 0 || bx >= nbins || by < 0 || by >= nbins {
				h.Dropped++
				continue
			}
			counts[by*nbins+bx]++
		}
	}
	if h.Total == 0 {
		return nil, fmt.Errorf("scatter: surface too small for slope estimation")
	}
	norm := 1 / (float64(h.Total) * binW * binW)
	for i, c := range counts {
		h.Density[i] = float64(c) * norm
	}
	return h, nil
}

// At returns the estimated density at slope (sx, sy) via bin lookup, or
// 0 outside the binned domain.
func (h *SlopeHistogram) At(sx, sy float64) float64 {
	binW := 2 * h.MaxSlope / float64(h.N)
	bx := int((sx + h.MaxSlope) / binW)
	by := int((sy + h.MaxSlope) / binW)
	if bx < 0 || bx >= h.N || by < 0 || by >= h.N {
		return 0
	}
	return h.Density[by*h.N+bx]
}

// GOBackscatter evaluates the geometric-optics (stationary-phase /
// specular-point) backscatter cross-section per unit area at incidence
// angle theta from the measured slope density:
//
//	σ⁰(θ) = |R|²·(π/cos⁴θ)·p(−tanθ, 0)·... reduced to the standard
//	σ⁰(θ) = |R|²·sec⁴θ·p(tanθ, 0)
//
// where p is the joint slope pdf and R the (angle-independent, GO)
// reflection coefficient magnitude. Backscatter at incidence θ selects
// facets tilted by θ toward the radar, i.e. slope magnitude tanθ along
// the look azimuth.
func GOBackscatter(h *SlopeHistogram, theta, reflectivity float64) float64 {
	sec := 1 / math.Cos(theta)
	return reflectivity * reflectivity * sec * sec * sec * sec * h.At(math.Tan(theta), 0)
}

// GOBackscatterGaussian is the closed form matching GOBackscatter for
// isotropic Gaussian slopes of per-axis variance s2: the joint slope
// pdf at (tanθ, 0) is exp(−tan²θ/(2·s2))/(2π·s2), so
//
//	σ⁰(θ) = |R|²·sec⁴θ·exp(−tan²θ/(2·s2))/(2π·s2)
//
// (texts differ by a constant factor in the σ⁰ convention; this package
// is internally consistent, which is what the validation tests check).
func GOBackscatterGaussian(theta, s2, reflectivity float64) float64 {
	sec := 1 / math.Cos(theta)
	t := math.Tan(theta)
	pdf := math.Exp(-t*t/(2*s2)) / (2 * math.Pi * s2)
	return reflectivity * reflectivity * sec * sec * sec * sec * pdf
}

// BackscatterCurve evaluates GOBackscatter over a set of incidence
// angles, returning σ⁰ in linear units.
func BackscatterCurve(h *SlopeHistogram, thetas []float64, reflectivity float64) []float64 {
	out := make([]float64, len(thetas))
	for i, th := range thetas {
		out[i] = GOBackscatter(h, th, reflectivity)
	}
	return out
}

// ToDB converts linear cross-sections to decibels (10·log10), mapping
// non-positive values to -inf.
func ToDB(linear []float64) []float64 {
	out := make([]float64, len(linear))
	for i, v := range linear {
		if v <= 0 {
			out[i] = math.Inf(-1)
			continue
		}
		out[i] = 10 * math.Log10(v)
	}
	return out
}
