package figures

import (
	"math"
	"strings"
	"testing"

	"roughsurface/internal/approx"
)

// Reduced-resolution figure runs: the physical extents and all paper
// parameters are unchanged (dx scales instead), so the statistics match
// the full-size figures at coarser sampling while the tests stay fast.
const testN = 256

func TestGetValidates(t *testing.T) {
	for id := 1; id <= 4; id++ {
		f, err := Get(id, testN, 1)
		if err != nil {
			t.Fatalf("figure %d: %v", id, err)
		}
		if err := f.Scene.Validate(); err != nil {
			t.Errorf("figure %d scene invalid: %v", id, err)
		}
		if len(f.Probes) == 0 {
			t.Errorf("figure %d has no probes", id)
		}
	}
	if _, err := Get(5, testN, 1); err == nil {
		t.Error("figure 5 accepted")
	}
}

func TestAllReturnsFullSizeScenes(t *testing.T) {
	figs := All(1)
	if len(figs) != 4 {
		t.Fatalf("All returned %d figures", len(figs))
	}
	for _, f := range figs {
		if f.Scene.Nx != Size || f.Scene.Ny != Size {
			t.Errorf("figure %d not full size", f.ID)
		}
	}
}

func runFigure(t *testing.T, id int) []ProbeResult {
	t.Helper()
	f, err := Get(id, testN, 7)
	if err != nil {
		t.Fatal(err)
	}
	surf, probes, err := Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if surf.Nx != testN || surf.Ny != testN {
		t.Fatalf("figure %d: wrong surface size", id)
	}
	return probes
}

func checkProbes(t *testing.T, id int, rs []ProbeResult, hTol, clTol float64) {
	t.Helper()
	for _, r := range rs {
		if relErr := math.Abs(r.GotH-r.WantH) / r.WantH; relErr > hTol {
			t.Errorf("figure %d probe %s: h measured %.3f want %.3f (rel %.2f > %.2f)",
				id, r.Name, r.GotH, r.WantH, relErr, hTol)
		}
		if r.WantCL > 0 && clTol > 0 {
			if r.GotCL >= 0.45*r.W {
				// The profile never crossed 1/e inside the patch: the
				// estimator saturated at its window ceiling, which a
				// patch of a few correlation lengths does regularly.
				// Inconclusive rather than wrong — the autocorrelation
				// itself is pinned deterministically by E5/E7 tests.
				continue
			}
			if relErr := math.Abs(r.GotCL-r.WantCL) / r.WantCL; relErr > clTol {
				t.Errorf("figure %d probe %s: cl measured %.1f want %.1f (rel %.2f > %.2f)",
					id, r.Name, r.GotCL, r.WantCL, relErr, clTol)
			}
		}
	}
}

// Probe patches span only a few correlation lengths (exactly as in the
// paper's figures), so per-patch estimates carry real sampling error;
// tolerances are ~3σ bands and the *ordering* checks are the sharp
// assertions.
func TestFigure1Statistics(t *testing.T) {
	rs := runFigure(t, 1)
	checkProbes(t, 1, rs, 0.40, 0.8)
	m := GroupMeans(rs)
	if !(m["Q3"] > m["Q1"]) {
		t.Errorf("Q3 (h=2.0) not rougher than Q1 (h=1.0): %.3f vs %.3f", m["Q3"], m["Q1"])
	}
	if math.Abs(m["Q2"]-m["Q4"]) > 0.8 {
		t.Errorf("Q2 and Q4 share parameters but measured %.3f vs %.3f", m["Q2"], m["Q4"])
	}
}

func TestFigure2Statistics(t *testing.T) {
	rs := runFigure(t, 2)
	checkProbes(t, 2, rs, 0.40, 0.8)
	m := GroupMeans(rs)
	if !(m["Q3"] > m["Q1"]) {
		t.Errorf("exponential quadrant (h=2.0) not rougher than Gaussian (h=1.0): %.3f vs %.3f",
			m["Q3"], m["Q1"])
	}
	for _, r := range rs {
		if r.Name == "Q2" && r.Spectrum != "powerlaw" {
			t.Error("Q2 should be power-law")
		}
		if r.Name == "Q3" && r.Spectrum != "exponential" {
			t.Error("Q3 should be exponential")
		}
	}
}

func TestFigure3Statistics(t *testing.T) {
	rs := runFigure(t, 3)
	m := GroupMeans(rs)
	// The defining contrast: the pond (h=0.2) is far calmer than the
	// plain (h=1.0).
	if !(m["plain"] > 3*m["pond"]) {
		t.Errorf("pond/plain contrast missing: pond %.3f plain %.3f", m["pond"], m["plain"])
	}
	checkProbes(t, 3, rs, 0.40, 1.0)
}

func TestFigure4Statistics(t *testing.T) {
	// Fig. 4's patches span ≲2 correlation lengths each (the sectors are
	// small in the paper too), so pool the probe estimates over three
	// independent noise realizations before asserting.
	var all []ProbeResult
	for _, seed := range []uint64{7, 17, 27} {
		f, err := Get(4, testN, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, rs, err := Run(f)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rs...)
	}
	m := GroupMeans(all)
	// Pooled over three sectors per spectrum: roughness rises g1→g3 and
	// the exponential center is the calmest region.
	if !(m["g3"] > m["g1"]) {
		t.Errorf("sector roughness ordering broken: g3 %.3f vs g1 %.3f", m["g3"], m["g1"])
	}
	if !(m["center"] < m["g2"]) {
		t.Errorf("center (h=0.5) not calmer than g2 sectors (h=1.5): %.3f vs %.3f",
			m["center"], m["g2"])
	}
	// Pooled sector estimates should land near their targets.
	for g, want := range map[string]float64{"g1": 1.0, "g2": 1.5, "g3": 2.0} {
		if rel := math.Abs(m[g]-want) / want; rel > 0.5 {
			t.Errorf("group %s pooled h %.3f want %.1f (rel %.2f)", g, m[g], want, rel)
		}
	}
}

func TestGroupMeansPools(t *testing.T) {
	rs := []ProbeResult{
		{Probe: Probe{Group: "a"}, GotH: 3},
		{Probe: Probe{Group: "a"}, GotH: 4},
		{Probe: Probe{Group: "b"}, GotH: 2},
	}
	m := GroupMeans(rs)
	want := math.Sqrt((9.0 + 16.0) / 2)
	if math.Abs(m["a"]-want) > 1e-12 {
		t.Errorf("pooled a = %g want %g", m["a"], want)
	}
	if !approx.Exact(m["b"], 2) {
		t.Errorf("pooled b = %g", m["b"])
	}
}

func TestFormatResults(t *testing.T) {
	rs := []ProbeResult{{
		Probe: Probe{Name: "Q1", Group: "Q1", Spectrum: "gaussian", WantH: 1, WantCL: 40},
		GotH:  1.05, GotCL: 38.2,
	}}
	out := FormatResults(rs)
	if !strings.Contains(out, "Q1") || !strings.Contains(out, "gaussian") || !strings.Contains(out, "1.050") {
		t.Errorf("table missing fields:\n%s", out)
	}
}

func TestProbesInsideGrid(t *testing.T) {
	for id := 1; id <= 4; id++ {
		f, err := Get(id, testN, 1)
		if err != nil {
			t.Fatal(err)
		}
		half := float64(f.Scene.Nx) * f.Scene.Dx / 2
		for _, p := range f.Probes {
			if p.X0 < -half || p.Y0 < -half || p.X0+p.W > half || p.Y0+p.H > half {
				t.Errorf("figure %d probe %s out of grid: (%g,%g)+(%g,%g)",
					id, p.Name, p.X0, p.Y0, p.W, p.H)
			}
		}
	}
}
