// Package figures defines the reproduction scenes for the paper's four
// evaluation figures (§4) and the probe machinery that turns each
// generated surface into measured-vs-target statistics — the quantities
// EXPERIMENTS.md reports.
//
// Each figure has a fixed physical extent; the grid size n only sets the
// resolution (dx = extent/n). The paper's statistical parameters are
// therefore used verbatim at any n, and reduced-size test runs see the
// same physics at coarser sampling. Parameter readings for OCR-damaged
// values are documented in DESIGN.md §2/§5.
package figures

import (
	"fmt"
	"math"

	"roughsurface/internal/core"
	"roughsurface/internal/grid"
	"roughsurface/internal/stats"
)

// Size is the default figure grid edge.
const Size = 1024

// quadExtent is the physical edge length of the quadrant figures (1/2):
// unit spacing at full size, as in the paper's ±500 axes.
const quadExtent = 1024.0

// circExtent is the physical edge for Fig. 3, widened so pure
// outside-circle cores exist beyond the radius-500 pond and its
// transition band.
const circExtent = 1536.0

// pointExtent is the physical edge for Fig. 4.
const pointExtent = 1024.0

// ringRadius is Fig. 4's representative-point ring radius. The paper's
// value is OCR-lost; 350 keeps all sector bisector bands (T = 100)
// separated inside the window. See DESIGN.md §5.
const ringRadius = 350.0

// Probe is a rectangular patch (physical, origin-centered coordinates)
// deep inside one homogeneous region of a figure, with the statistics
// that should hold there. Group labels sets of probes sharing target
// statistics so estimates can be pooled (Fig. 4's three-points-per-
// spectrum sectors). WantCL = 0 skips correlation-length checking where
// the patch spans too few correlation lengths for a stable estimate.
type Probe struct {
	Name     string
	Group    string
	X0, Y0   float64
	W, H     float64
	WantH    float64
	WantCL   float64
	Spectrum string
}

// Figure couples a scene with its probes.
type Figure struct {
	ID      int
	Caption string
	Scene   core.Scene
	Probes  []Probe
}

func gaussSpec(h, cl float64) core.SpectrumSpec {
	return core.SpectrumSpec{Family: "gaussian", H: h, CL: cl}
}

func plSpec(h, cl, n float64) core.SpectrumSpec {
	return core.SpectrumSpec{Family: "powerlaw", H: h, CL: cl, N: n}
}

func expSpec(h, cl float64) core.SpectrumSpec {
	return core.SpectrumSpec{Family: "exponential", H: h, CL: cl}
}

// quadrants builds the four-quadrant plate scene shared by Figs. 1–2.
// Transition half-width: the paper does not state one for the quadrant
// figures; 50 (comparable to the correlation lengths) gives the visibly
// smooth seams of the published plots.
func quadrants(n int, specs [4]core.SpectrumSpec, seed uint64) core.Scene {
	zero := 0.0
	const t = 50.0
	d := quadExtent / float64(n)
	return core.Scene{
		Nx: n, Ny: n, Dx: d, Dy: d, Method: core.MethodPlate, Seed: seed,
		Regions: []core.RegionSpec{
			{Shape: "rect", X0: &zero, Y0: &zero, T: t, Spectrum: specs[0]}, // Q1
			{Shape: "rect", X1: &zero, Y0: &zero, T: t, Spectrum: specs[1]}, // Q2
			{Shape: "rect", X1: &zero, Y1: &zero, T: t, Spectrum: specs[2]}, // Q3
			{Shape: "rect", X0: &zero, Y1: &zero, T: t, Spectrum: specs[3]}, // Q4
		},
	}
}

// quadrantProbes places one probe in each quadrant core: inner edge 130
// from the seams (past the T = 50 band plus a correlation length), outer
// edge 30 in from the boundary.
func quadrantProbes(specs [4]core.SpectrumSpec) []Probe {
	const half = quadExtent / 2
	const lo, margin = 130.0, 30.0
	w := half - lo - margin
	mk := func(name string, sx, sy float64, sp core.SpectrumSpec) Probe {
		x0, y0 := lo, lo
		if sx < 0 {
			x0 = -lo - w
		}
		if sy < 0 {
			y0 = -lo - w
		}
		return Probe{Name: name, Group: name, X0: x0, Y0: y0, W: w, H: w,
			WantH: sp.H, WantCL: sp.CL, Spectrum: sp.Family}
	}
	return []Probe{
		mk("Q1", 1, 1, specs[0]),
		mk("Q2", -1, 1, specs[1]),
		mk("Q3", -1, -1, specs[2]),
		mk("Q4", 1, -1, specs[3]),
	}
}

// Figure1 reproduces Fig. 1: same Gaussian spectrum, three distinct
// parameter sets over four quadrants (Q2 = Q4).
func Figure1(n int, seed uint64) Figure {
	specs := [4]core.SpectrumSpec{
		gaussSpec(1.0, 40),
		gaussSpec(1.5, 60),
		gaussSpec(2.0, 80),
		gaussSpec(1.5, 60),
	}
	return Figure{
		ID:      1,
		Caption: "Inhomogeneous 2D RRS with same spectrum and three different parameters",
		Scene:   quadrants(n, specs, seed),
		Probes:  quadrantProbes(specs),
	}
}

// Figure2 reproduces Fig. 2: four different spectra over four quadrants.
func Figure2(n int, seed uint64) Figure {
	specs := [4]core.SpectrumSpec{
		gaussSpec(1.0, 40),
		plSpec(1.5, 60, 2),
		expSpec(2.0, 80),
		plSpec(1.5, 60, 3),
	}
	return Figure{
		ID:      2,
		Caption: "Inhomogeneous 2D RRS with four different spectra and parameters",
		Scene:   quadrants(n, specs, seed),
		Probes:  quadrantProbes(specs),
	}
}

// Figure3 reproduces Fig. 3: an exponential-spectrum "pond" of radius
// 500 inside a Gaussian-spectrum plain, transition width T = 100 (i.e.
// half-width 50 on each side of the rim).
func Figure3(n int, seed uint64) Figure {
	d := circExtent / float64(n)
	inside := expSpec(0.2, 50)
	outside := gaussSpec(1.0, 50)
	sc := core.Scene{
		Nx: n, Ny: n, Dx: d, Dy: d, Method: core.MethodPlate, Seed: seed,
		Regions: []core.RegionSpec{
			{Shape: "circle", R: 500, T: 50, Spectrum: inside},
			{Shape: "outside-circle", R: 500, T: 50, Spectrum: outside},
		},
	}
	// Pond core: a 300² patch at the center (6 correlation lengths).
	// Plain core: a 340² patch in the corner; its nearest point to the
	// origin is at distance (768−340)·√2 ≈ 605, outside the 500+50 band.
	const half = circExtent / 2
	return Figure{
		ID:      3,
		Caption: "Inhomogeneous 2D RRS with a circular region",
		Scene:   sc,
		Probes: []Probe{
			{Name: "pond", Group: "pond", X0: -150, Y0: -150, W: 300, H: 300,
				WantH: inside.H, WantCL: inside.CL, Spectrum: inside.Family},
			{Name: "plain", Group: "plain", X0: -half + 10, Y0: -half + 10, W: 340, H: 340,
				WantH: outside.H, WantCL: outside.CL, Spectrum: outside.Family},
		},
	}
}

// Figure4 reproduces Fig. 4: the point-oriented method with nine ring
// points — Gaussian(1.0, 50) for i = 1..3, Gaussian(1.5, 75) for 4..6,
// Gaussian(2.0, 100) for 7..9 — and Exponential(0.5, 100) at the origin;
// T = 100.
func Figure4(n int, seed uint64) Figure {
	d := pointExtent / float64(n)
	specs := []core.SpectrumSpec{
		gaussSpec(1.0, 50),
		gaussSpec(1.5, 75),
		gaussSpec(2.0, 100),
	}
	center := expSpec(0.5, 100)
	var pts []core.PointSpec
	for i := 1; i <= 9; i++ {
		ang := 2 * math.Pi * float64(i) / 9
		pts = append(pts, core.PointSpec{
			X:        ringRadius * math.Cos(ang),
			Y:        ringRadius * math.Sin(ang),
			Spectrum: specs[(i-1)/3],
		})
	}
	pts = append(pts, core.PointSpec{X: 0, Y: 0, Spectrum: center})
	sc := core.Scene{
		Nx: n, Ny: n, Dx: d, Dy: d, Method: core.MethodPoint, Seed: seed,
		TransitionT: 100,
		Points:      pts,
	}

	// Probes: one 220² patch per ring point, centered at radius 395 on
	// the point's angle — outside the center point's blending band and
	// at least a sector away from other-group bisectors — pooled per
	// spectrum group. Plus a small patch at the origin. CL checks are
	// skipped: every patch spans ≲2 correlation lengths, exactly like
	// the sectors in the paper's plot, so single-patch estimates carry
	// large sampling error; consumers should pool (GroupMeans) and, for
	// tight bounds, average over seeds.
	probes := []Probe{{
		Name: "center", Group: "center", X0: -60, Y0: -60, W: 120, H: 120,
		WantH: center.H, Spectrum: center.Family,
	}}
	for i := 1; i <= 9; i++ {
		ang := 2 * math.Pi * float64(i) / 9
		g := (i-1)/3 + 1
		cx := 395 * math.Cos(ang)
		cy := 395 * math.Sin(ang)
		probes = append(probes, Probe{
			Name:  fmt.Sprintf("sector-%d", i),
			Group: fmt.Sprintf("g%d", g),
			X0:    cx - 110, Y0: cy - 110, W: 220, H: 220,
			WantH: specs[g-1].H, Spectrum: specs[g-1].Family,
		})
	}
	return Figure{
		ID:      4,
		Caption: "Inhomogeneous 2D RRS with a circular region and three sectors",
		Scene:   sc,
		Probes:  probes,
	}
}

// Get returns figure id at the given grid size and seed.
func Get(id, n int, seed uint64) (Figure, error) {
	switch id {
	case 1:
		return Figure1(n, seed), nil
	case 2:
		return Figure2(n, seed), nil
	case 3:
		return Figure3(n, seed), nil
	case 4:
		return Figure4(n, seed), nil
	}
	return Figure{}, fmt.Errorf("figures: no figure %d (paper has 1-4)", id)
}

// All returns the four figures at full size.
func All(seed uint64) []Figure {
	return []Figure{
		Figure1(Size, seed), Figure2(Size, seed), Figure3(Size, seed), Figure4(Size, seed),
	}
}

// ProbeResult is one measured-vs-target row.
type ProbeResult struct {
	Probe
	GotH  float64
	GotCL float64
}

// Run generates the figure's surface and evaluates every probe.
func Run(f Figure) (*grid.Grid, []ProbeResult, error) {
	res, err := core.Generate(f.Scene)
	if err != nil {
		return nil, nil, err
	}
	return res.Surface, Evaluate(f, res.Surface), nil
}

// Evaluate measures every probe patch on a generated surface. The
// height deviation is estimated as the RMS about zero — the generators
// produce zero-ensemble-mean fields, and subtracting the *patch* mean
// instead would bias σ̂ down by sqrt(1−ρ̄) on patches only a few
// correlation lengths wide (severe for Fig. 4's cl = 100 sectors).
func Evaluate(f Figure, surf *grid.Grid) []ProbeResult {
	out := make([]ProbeResult, 0, len(f.Probes))
	for _, p := range f.Probes {
		sub := extract(surf, p)
		var ms float64
		for _, v := range sub.Data {
			ms += v * v
		}
		ms /= float64(len(sub.Data))
		r := ProbeResult{Probe: p, GotH: math.Sqrt(ms)}
		if p.WantCL > 0 {
			cov := stats.AutocovarianceFFTZeroMean(sub)
			profile := stats.LagProfileX(cov, sub.Nx/2)
			// Undo the circular-estimator attenuation: at lag d only
			// (Nx−d) of the Nx wrapped pairs carry the true lag, so the
			// raw profile is scaled by (1 − d/Nx) in expectation.
			for d := range profile {
				profile[d] /= 1 - float64(d)/float64(sub.Nx)
			}
			r.GotCL = stats.CorrelationLength(profile, sub.Dx)
		}
		out = append(out, r)
	}
	return out
}

// GroupMeans pools probe results by group: the RMS of the measured
// standard deviations (pooling variances, which is the unbiased way to
// combine patches with a common target h).
func GroupMeans(rs []ProbeResult) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range rs {
		sums[r.Group] += r.GotH * r.GotH
		counts[r.Group]++
	}
	out := make(map[string]float64, len(sums))
	for g, s := range sums {
		out[g] = math.Sqrt(s / float64(counts[g]))
	}
	return out
}

// extract converts the probe's physical rectangle to lattice indices.
func extract(surf *grid.Grid, p Probe) *grid.Grid {
	ix := int((p.X0 - surf.X0) / surf.Dx)
	iy := int((p.Y0 - surf.Y0) / surf.Dy)
	nx := int(p.W / surf.Dx)
	ny := int(p.H / surf.Dy)
	ix = clampInt(ix, 0, surf.Nx-2)
	iy = clampInt(iy, 0, surf.Ny-2)
	nx = clampInt(nx, 2, surf.Nx-ix)
	ny = clampInt(ny, 2, surf.Ny-iy)
	return surf.Sub(ix, iy, nx, ny)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// FormatResults renders probe rows as an aligned text table.
func FormatResults(rs []ProbeResult) string {
	out := fmt.Sprintf("%-10s %-6s %-12s %8s %8s %8s %8s\n",
		"probe", "group", "spectrum", "h(tgt)", "h(meas)", "cl(tgt)", "cl(meas)")
	for _, r := range rs {
		cl := "-"
		clm := "-"
		if r.WantCL > 0 {
			cl = fmt.Sprintf("%.1f", r.WantCL)
			clm = fmt.Sprintf("%.1f", r.GotCL)
		}
		out += fmt.Sprintf("%-10s %-6s %-12s %8.3f %8.3f %8s %8s\n",
			r.Name, r.Group, r.Spectrum, r.WantH, r.GotH, cl, clm)
	}
	return out
}
