package rng

import (
	"math"
	"testing"
	"testing/quick"

	"roughsurface/internal/approx"
)

func TestSourceDeterministic(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSourceSeedSensitivity(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs from different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	s := NewSource(11)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean %g far from 0.5", mean)
	}
	variance := sum2/float64(n) - mean*mean
	if math.Abs(variance-1.0/12) > 0.003 {
		t.Errorf("uniform variance %g far from 1/12", variance)
	}
}

func TestGaussianMoments(t *testing.T) {
	g := NewGaussian(13)
	n := 200000
	var sum, sum2, sum3, sum4 float64
	for i := 0; i < n; i++ {
		v := g.Next()
		sum += v
		sum2 += v * v
		sum3 += v * v * v
		sum4 += v * v * v * v
	}
	fn := float64(n)
	mean := sum / fn
	variance := sum2/fn - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Gaussian mean %g", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Gaussian variance %g", variance)
	}
	if skew := sum3 / fn; math.Abs(skew) > 0.05 {
		t.Errorf("Gaussian skewness %g", skew)
	}
	if kurt := sum4 / fn; math.Abs(kurt-3) > 0.1 {
		t.Errorf("Gaussian 4th moment %g, want 3", kurt)
	}
}

func TestGaussianTailProbability(t *testing.T) {
	g := NewGaussian(17)
	n := 100000
	beyond2 := 0
	for i := 0; i < n; i++ {
		if math.Abs(g.Next()) > 2 {
			beyond2++
		}
	}
	frac := float64(beyond2) / float64(n)
	// P(|Z| > 2) = 0.0455; allow generous sampling slack.
	if frac < 0.035 || frac > 0.056 {
		t.Errorf("P(|Z|>2) estimated %g, want about 0.0455", frac)
	}
}

func TestJumpProducesDisjointStreams(t *testing.T) {
	a := NewSource(99)
	b := NewSource(99)
	b.Jump()
	seen := make(map[uint64]bool, 2000)
	for i := 0; i < 1000; i++ {
		seen[a.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 1000; i++ {
		if seen[b.Uint64()] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Errorf("%d collisions between jumped streams", collisions)
	}
}

func TestSplitChildrenDiffer(t *testing.T) {
	root := NewSource(5)
	c1 := root.Split()
	c2 := root.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children start identically")
	}
}

func TestFieldDeterministicAndOrderFree(t *testing.T) {
	f := NewField(123)
	a := f.At(1000, -500)
	b := f.At(-3, 7)
	if !approx.Exact(f.At(1000, -500), a) || !approx.Exact(f.At(-3, 7), b) {
		t.Error("Field.At is not a pure function")
	}
	// Same window, filled in two halves vs at once.
	whole := make([]float64, 8*8)
	f.FillRect(whole, 10, 20, 8, 8)
	top := make([]float64, 8*4)
	bot := make([]float64, 8*4)
	f.FillRect(top, 10, 20, 8, 4)
	f.FillRect(bot, 10, 24, 8, 4)
	for i := range top {
		if !approx.Exact(whole[i], top[i]) {
			t.Fatal("FillRect top half mismatch")
		}
		if !approx.Exact(whole[32+i], bot[i]) {
			t.Fatal("FillRect bottom half mismatch")
		}
	}
}

func TestFieldMoments(t *testing.T) {
	f := NewField(77)
	var sum, sum2 float64
	n := 0
	for j := int64(0); j < 400; j++ {
		for i := int64(0); i < 400; i++ {
			v := f.At(i, j)
			sum += v
			sum2 += v * v
			n++
		}
	}
	fn := float64(n)
	mean := sum / fn
	variance := sum2/fn - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("field mean %g", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("field variance %g", variance)
	}
}

func TestFieldSpatialDecorrelation(t *testing.T) {
	f := NewField(31)
	// Lag-1 autocorrelation in both axes should be ~0 for white noise.
	var c10, c01, v float64
	n := 300
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			x := f.At(int64(i), int64(j))
			v += x * x
			c10 += x * f.At(int64(i+1), int64(j))
			c01 += x * f.At(int64(i), int64(j+1))
		}
	}
	if r := c10 / v; math.Abs(r) > 0.01 {
		t.Errorf("lag (1,0) correlation %g", r)
	}
	if r := c01 / v; math.Abs(r) > 0.01 {
		t.Errorf("lag (0,1) correlation %g", r)
	}
}

func TestFieldSeedsIndependent(t *testing.T) {
	a := NewField(1)
	b := NewField(2)
	var dot, va, vb float64
	for i := int64(0); i < 10000; i++ {
		x, y := a.At(i, 0), b.At(i, 0)
		dot += x * y
		va += x * x
		vb += y * y
	}
	if r := dot / math.Sqrt(va*vb); math.Abs(r) > 0.03 {
		t.Errorf("cross-seed correlation %g", r)
	}
}

func TestQuickFieldPure(t *testing.T) {
	f := func(seed uint64, i, j int64) bool {
		fl := NewField(seed)
		v := fl.At(i, j)
		return approx.Exact(fl.At(i, j), v) && !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFillRectPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FillRect with wrong length should panic")
		}
	}()
	NewField(0).FillRect(make([]float64, 3), 0, 0, 2, 2)
}

func BenchmarkGaussianNext(b *testing.B) {
	g := NewGaussian(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

func BenchmarkFieldAt(b *testing.B) {
	f := NewField(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.At(int64(i), int64(i>>8))
	}
}

// TestFillRowMatchesAt pins the batch fill to the per-sample definition
// bit for bit, including negative indices and uint64 wrap of the index
// mix.
func TestFillRowMatchesAt(t *testing.T) {
	f := NewField(0xfeedbeef)
	for _, c := range []struct {
		i0, j int64
		n     int
	}{{0, 0, 17}, {-9, 4, 32}, {1 << 40, -3, 8}, {-1 << 50, 1 << 33, 5}} {
		dst := make([]float64, c.n)
		f.FillRow(dst, c.i0, c.j)
		for m, got := range dst {
			want := f.At(c.i0+int64(m), c.j)
			if !approx.Exact(got, want) {
				t.Fatalf("FillRow(i0=%d, j=%d)[%d] = %g, At = %g", c.i0, c.j, m, got, want)
			}
		}
	}
}

func BenchmarkFieldFillRow(b *testing.B) {
	f := NewField(1)
	dst := make([]float64, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FillRow(dst, 0, int64(i))
	}
	b.ReportMetric(float64(len(dst))*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}
