package rng

import (
	"math"
	"testing"

	"roughsurface/internal/approx"
)

func TestZigguratMoments(t *testing.T) {
	z := NewZiggurat(21)
	n := 400000
	var sum, sum2, sum3, sum4 float64
	for i := 0; i < n; i++ {
		v := z.Next()
		sum += v
		sum2 += v * v
		sum3 += v * v * v
		sum4 += v * v * v * v
	}
	fn := float64(n)
	mean := sum / fn
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean %g", mean)
	}
	if v := sum2/fn - mean*mean; math.Abs(v-1) > 0.015 {
		t.Errorf("variance %g", v)
	}
	if skew := sum3 / fn; math.Abs(skew) > 0.04 {
		t.Errorf("skewness %g", skew)
	}
	if kurt := sum4 / fn; math.Abs(kurt-3) > 0.08 {
		t.Errorf("4th moment %g", kurt)
	}
}

func TestZigguratTailProbabilities(t *testing.T) {
	z := NewZiggurat(22)
	n := 500000
	counts := map[float64]int{1: 0, 2: 0, 3: 0}
	for i := 0; i < n; i++ {
		v := math.Abs(z.Next())
		for thr := range counts {
			if v > thr {
				counts[thr]++
			}
		}
	}
	// P(|Z|>1)=0.3173, P(|Z|>2)=0.0455, P(|Z|>3)=0.0027.
	want := map[float64]float64{1: 0.3173, 2: 0.0455, 3: 0.0027}
	for thr, c := range counts {
		frac := float64(c) / float64(n)
		if math.Abs(frac-want[thr])/want[thr] > 0.1 {
			t.Errorf("P(|Z|>%g) = %g, want %g", thr, frac, want[thr])
		}
	}
}

func TestZigguratTailSamplesExist(t *testing.T) {
	// The tail branch (|x| > 3.44) must be reachable and produce values
	// beyond the ziggurat base.
	z := NewZiggurat(23)
	found := false
	for i := 0; i < 2000000 && !found; i++ {
		if math.Abs(z.Next()) > zigR {
			found = true
		}
	}
	if !found {
		t.Error("no tail samples in 2M draws (expect ~1200)")
	}
}

func TestZigguratDeterministic(t *testing.T) {
	a := NewZiggurat(9)
	b := NewZiggurat(9)
	for i := 0; i < 1000; i++ {
		if !approx.Exact(a.Next(), b.Next()) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZigguratAgreesWithBoxMullerDistribution(t *testing.T) {
	// Two-sample comparison via binned counts: both samplers should put
	// statistically equal mass in each of 10 equiprobable normal bins.
	edges := []float64{-1.2816, -0.8416, -0.5244, -0.2533, 0, 0.2533, 0.5244, 0.8416, 1.2816}
	bin := func(v float64) int {
		for i, e := range edges {
			if v < e {
				return i
			}
		}
		return len(edges)
	}
	n := 200000
	za := NewZiggurat(31)
	gb := NewGaussian(32)
	ca := make([]int, 10)
	cb := make([]int, 10)
	for i := 0; i < n; i++ {
		ca[bin(za.Next())]++
		cb[bin(gb.Next())]++
	}
	for i := range ca {
		diff := math.Abs(float64(ca[i] - cb[i]))
		// Each bin holds ~n/10 = 20000 ± ~134 (1σ); allow 6σ on the
		// difference of two independent counts.
		if diff > 6*math.Sqrt(2*float64(n)/10) {
			t.Errorf("bin %d: ziggurat %d vs box-muller %d", i, ca[i], cb[i])
		}
	}
}

func TestNormalInterfaceFill(t *testing.T) {
	for _, normal := range []Normal{NewGaussian(1), NewZiggurat(1)} {
		buf := make([]float64, 1000)
		normal.Fill(buf)
		var nonzero int
		for _, v := range buf {
			if v != 0 {
				nonzero++
			}
		}
		if nonzero < 990 {
			t.Errorf("Fill left %d zeros", 1000-nonzero)
		}
	}
}

func BenchmarkZigguratNext(b *testing.B) {
	z := NewZiggurat(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
