// Package rng supplies the random-number machinery of the generators:
//
//   - Source: a seedable xoshiro256** stream with SplitMix64 seeding and
//     a Jump() for carving independent parallel streams;
//   - Gaussian: N(0,1) variates via the Box–Muller transform, the same
//     construction as paper eqn (18);
//   - Field: a counter-based Gaussian *random field* that returns a
//     deterministic N(0,1) value for any integer lattice point (i, j).
//
// Field is what realizes the paper's claim that the convolution method
// "can simulate arbitrarily long or wide RRSs by successive
// computations": two tiles generated independently see bit-identical
// noise in their overlap, so strips join without seams.
package rng

import "math"

// splitmix64 advances *state and returns the next SplitMix64 output.
// It is used both for seeding and as the mixing core of Field.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** pseudo-random generator. It is not safe for
// concurrent use; derive one Source per goroutine with Split or Jump.
type Source struct {
	s [4]uint64
}

// NewSource returns a Source seeded from the given seed via SplitMix64,
// per the xoshiro authors' recommendation.
func NewSource(seed uint64) *Source {
	var src Source
	st := seed
	for i := range src.s {
		src.s[i] = splitmix64(&st)
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// open01 returns a uniform variate in (0, 1), never exactly 0, so it is
// safe inside log().
func (s *Source) open01() float64 {
	return (float64(s.Uint64()>>11) + 0.5) * (1.0 / (1 << 53))
}

// jumpPoly is the xoshiro256** jump polynomial: calling Jump advances the
// stream by 2^128 steps, yielding 2^128 non-overlapping substreams.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Jump advances the source by 2^128 steps in place.
func (s *Source) Jump() {
	var t [4]uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				t[0] ^= s.s[0]
				t[1] ^= s.s[1]
				t[2] ^= s.s[2]
				t[3] ^= s.s[3]
			}
			s.Uint64()
		}
	}
	s.s = t
}

// Split returns a new Source 2^128 steps ahead and advances s past it, so
// repeated Split calls hand out pairwise non-overlapping streams.
func (s *Source) Split() *Source {
	child := &Source{s: s.s}
	s.Jump()
	return child
}

// Gaussian draws standard normal variates from a Source using the
// Box–Muller transform (paper eqn 18): with u1 ~ U(0, 2π) and
// u2 ~ U(0, 1),  X = sqrt(−2·ln u2)·cos(u1). Both Box–Muller outputs are
// used (the sine branch is cached), so one log/sqrt pair serves two
// variates.
type Gaussian struct {
	Src    *Source
	cached float64
	has    bool
}

// NewGaussian returns a Gaussian reading from a fresh Source with seed.
func NewGaussian(seed uint64) *Gaussian {
	return &Gaussian{Src: NewSource(seed)}
}

// Next returns the next N(0,1) variate.
func (g *Gaussian) Next() float64 {
	if g.has {
		g.has = false
		return g.cached
	}
	u1 := g.Src.Float64() * 2 * math.Pi
	u2 := g.Src.open01()
	r := math.Sqrt(-2 * math.Log(u2))
	s, c := math.Sincos(u1)
	g.cached = r * s
	g.has = true
	return r * c
}

// Fill populates dst with independent N(0,1) variates.
func (g *Gaussian) Fill(dst []float64) {
	for i := range dst {
		dst[i] = g.Next()
	}
}

// Field is a counter-based (stateless) Gaussian random field: At(i, j) is
// a deterministic function of (seed, i, j) distributed N(0,1) and
// independent across lattice points. Because there is no sequential
// state, any window of the field can be materialized in any order, on any
// number of goroutines, with identical results — the property the tiled
// and streaming convolution engines rely on.
type Field struct {
	seed uint64
}

// NewField returns the Gaussian field identified by seed.
func NewField(seed uint64) Field { return Field{seed: seed} }

// Seed reports the field's identity.
func (f Field) Seed() uint64 { return f.seed }

// At returns the field value at lattice point (i, j).
func (f Field) At(i, j int64) float64 {
	// Mix the coordinates and seed through two SplitMix64 rounds. The
	// odd multipliers decorrelate the axes; the second round output
	// supplies the angle variate.
	st := f.seed ^ uint64(i)*0x9e3779b97f4a7c15 ^ uint64(j)*0xc2b2ae3d27d4eb4f
	h1 := splitmix64(&st)
	h2 := splitmix64(&st)
	u1 := (float64(h1>>11) + 0.5) * (1.0 / (1 << 53)) // (0,1): safe in log
	u2 := float64(h2>>11) * (1.0 / (1 << 53))         // [0,1): angle
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// FillRow materializes len(dst) consecutive row samples of the field:
// dst[m] = At(i0+m, j), bit-identical to the per-sample calls. The
// row-dependent half of the seed mix is hoisted out of the loop, which
// makes this the preferred form for the generators' noise pass.
func (f Field) FillRow(dst []float64, i0, j int64) {
	rowSeed := f.seed ^ uint64(j)*0xc2b2ae3d27d4eb4f
	i := uint64(i0) * 0x9e3779b97f4a7c15
	for m := range dst {
		st := rowSeed ^ i
		i += 0x9e3779b97f4a7c15
		h1 := splitmix64(&st)
		h2 := splitmix64(&st)
		u1 := (float64(h1>>11) + 0.5) * (1.0 / (1 << 53)) // (0,1): safe in log
		u2 := float64(h2>>11) * (1.0 / (1 << 53))         // [0,1): angle
		dst[m] = math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// FillRow32 is FillRow narrowed to float32 at the store: each sample is
// the float64 field value rounded once to single precision, so the f32
// render pipeline sees the same realization as the reference engine to
// within one rounding step. The Box–Muller math stays in float64 —
// log/sqrt/cos dominate the cost either way, and computing in f32 would
// compound rounding without saving time.
func (f Field) FillRow32(dst []float32, i0, j int64) {
	rowSeed := f.seed ^ uint64(j)*0xc2b2ae3d27d4eb4f
	i := uint64(i0) * 0x9e3779b97f4a7c15
	for m := range dst {
		st := rowSeed ^ i
		i += 0x9e3779b97f4a7c15
		h1 := splitmix64(&st)
		h2 := splitmix64(&st)
		u1 := (float64(h1>>11) + 0.5) * (1.0 / (1 << 53)) // (0,1): safe in log
		u2 := float64(h2>>11) * (1.0 / (1 << 53))         // [0,1): angle
		dst[m] = float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
	}
}

// FillRect materializes the window [i0, i0+nx) × [j0, j0+ny) of the field
// into dst (row-major, nx fast).
func (f Field) FillRect(dst []float64, i0, j0 int64, nx, ny int) {
	if len(dst) != nx*ny {
		panic("rng: FillRect length mismatch")
	}
	for j := 0; j < ny; j++ {
		f.FillRow(dst[j*nx:(j+1)*nx], i0, j0+int64(j))
	}
}
