package rng

import "math"

// Normal is the common interface of the library's N(0,1) samplers —
// Gaussian (Box–Muller, the paper's eqn 18) and Ziggurat (Marsaglia &
// Tsang, the fast rejection method). Generators accept either; the
// bench suite ablates one against the other.
type Normal interface {
	Next() float64
	Fill(dst []float64)
}

var (
	_ Normal = (*Gaussian)(nil)
	_ Normal = (*Ziggurat)(nil)
)

// Ziggurat draws standard normal variates with the Marsaglia–Tsang
// ziggurat algorithm (128 layers): one table lookup and one multiply on
// ~98.8% of draws, falling back to exact edge/tail sampling otherwise.
// The output distribution is exactly N(0,1), like Box–Muller, at a
// fraction of the per-variate cost.
type Ziggurat struct {
	Src *Source
}

// NewZiggurat returns a Ziggurat reading from a fresh Source with seed.
func NewZiggurat(seed uint64) *Ziggurat {
	return &Ziggurat{Src: NewSource(seed)}
}

// Layer tables, built once at init from the classic zignor recurrence.
var (
	zigK [128]uint32
	zigW [128]float64
	zigF [128]float64
)

const zigR = 3.442619855899 // start of the exponential tail

func init() {
	const m1 = 1 << 31
	const vn = 9.91256303526217e-3
	dn := zigR
	tn := dn
	q := vn / math.Exp(-0.5*dn*dn)
	zigK[0] = uint32(dn / q * m1)
	zigK[1] = 0
	zigW[0] = q / m1
	zigW[127] = dn / m1
	zigF[0] = 1
	zigF[127] = math.Exp(-0.5 * dn * dn)
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(vn/dn+math.Exp(-0.5*dn*dn)))
		zigK[i+1] = uint32(dn / tn * m1)
		tn = dn
		zigF[i] = math.Exp(-0.5 * dn * dn)
		zigW[i] = dn / m1
	}
}

// Next returns the next N(0,1) variate.
func (z *Ziggurat) Next() float64 {
	for {
		j := int32(uint32(z.Src.Uint64()))
		i := j & 127
		x := float64(j) * zigW[i]
		// Fast path: strictly inside layer i.
		if uint32(abs32(j)) < zigK[i] {
			return x
		}
		if i == 0 {
			// Tail beyond zigR: exact exponential-rejection sampling.
			for {
				ex := -math.Log(z.Src.open01()) / zigR
				ey := -math.Log(z.Src.open01())
				if ey+ey >= ex*ex {
					if j > 0 {
						return zigR + ex
					}
					return -(zigR + ex)
				}
			}
		}
		// Edge of layer i: accept with the density ratio.
		if zigF[i]+z.Src.Float64()*(zigF[i-1]-zigF[i]) < math.Exp(-0.5*x*x) {
			return x
		}
	}
}

// Fill populates dst with independent N(0,1) variates.
func (z *Ziggurat) Fill(dst []float64) {
	for i := range dst {
		dst[i] = z.Next()
	}
}

func abs32(j int32) int32 {
	if j < 0 {
		return -j
	}
	return j
}
