package lint

// callgraph.go: a package-level call graph over one lint unit, the
// substrate that takes the dataflow passes from intra-procedural
// (PR 4's cfg.go) to interprocedural. Nodes are the unit's declared
// functions and methods; edges are call sites resolved through
// go/types (Info.Uses) to functions declared in the same unit. Calls
// that leave the unit — stdlib, sibling module packages — are not
// edges; their effects are approximated by the name/receiver heuristic
// table in summary.go, mirroring how summary-based analyzers (Infer,
// RacerX) treat library frontiers.
//
// Two call relations are kept per node, because two different
// questions are asked of the graph:
//
//   - sync: calls that execute on the function's own frame (statements
//     and registered defers, stopping at function literals). Effect
//     summaries — locks, blocking, status writes — propagate along
//     sync edges only: a closure handed to `go` or a worker pool does
//     its blocking on another goroutine, and crediting it to the
//     caller would poison every launcher.
//   - reach: sync plus calls made inside function literals defined in
//     the body. Reachability questions ("is this function on a request
//     path from an HTTP handler?") follow reach edges: the closure a
//     handler submits to the render pool still runs on behalf of the
//     request, wherever it runs.
//
// Summaries propagate bottom-up in strongly-connected-component order
// (Tarjan); members of one SCC (direct or mutual recursion) iterate to
// a fixed point, which terminates because every summary domain is a
// finite join-semilattice that only grows.

import (
	"go/ast"
	"go/types"
)

// funcNode is one declared function or method of the unit.
type funcNode struct {
	decl *ast.FuncDecl
	obj  *types.Func // nil when type info is unavailable (fuzzing)

	sync  []*callEdge // same-frame calls, in source order
	reach []*callEdge // sync plus calls inside function literals

	scc int // SCC index; callees have lower-or-equal indices
}

// callEdge is one resolved call site into the same unit.
type callEdge struct {
	call   *ast.CallExpr
	callee *funcNode
}

// name returns the function's declared name, qualified by its receiver
// type for methods, for use in diagnostics.
func (n *funcNode) name() string {
	if n.decl.Recv != nil && len(n.decl.Recv.List) > 0 {
		return "(" + types.ExprString(n.decl.Recv.List[0].Type) + ")." + n.decl.Name.Name
	}
	return n.decl.Name.Name
}

// callGraph is the unit's call graph plus the SCC condensation order.
type callGraph struct {
	nodes  []*funcNode // declaration order
	byObj  map[*types.Func]*funcNode
	byDecl map[*ast.FuncDecl]*funcNode
	sccs   [][]*funcNode // bottom-up: callees before callers

	// Name indices for heuristic resolution when type information is
	// unavailable: package-level functions and methods separately, since
	// an Ident call can only mean the former and a selector call the
	// latter. Ambiguous method names resolve to nothing.
	funcsByName   map[string][]*funcNode
	methodsByName map[string][]*funcNode
}

// buildCallGraph constructs the unit's call graph. It tolerates
// missing type information (every lookup degrades to "unresolved"),
// so the summary fuzzer can drive it with parse-only input.
func buildCallGraph(unit *Unit) *callGraph {
	g := &callGraph{
		byObj:         map[*types.Func]*funcNode{},
		byDecl:        map[*ast.FuncDecl]*funcNode{},
		funcsByName:   map[string][]*funcNode{},
		methodsByName: map[string][]*funcNode{},
	}
	for _, f := range unit.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := &funcNode{decl: fd}
			if unit.Info != nil {
				if obj, ok := unit.Info.Defs[fd.Name].(*types.Func); ok {
					n.obj = obj
					g.byObj[obj] = n
				}
			}
			g.byDecl[fd] = n
			g.nodes = append(g.nodes, n)
			if fd.Recv != nil {
				g.methodsByName[fd.Name.Name] = append(g.methodsByName[fd.Name.Name], n)
			} else {
				g.funcsByName[fd.Name.Name] = append(g.funcsByName[fd.Name.Name], n)
			}
		}
	}
	for _, n := range g.nodes {
		g.resolveCalls(unit, n)
	}
	g.condense()
	return g
}

// resolveCalls fills n's sync and reach edge lists.
func (g *callGraph) resolveCalls(unit *Unit, n *funcNode) {
	addCall := func(call *ast.CallExpr, sync bool) {
		callee := g.calleeOf(unit, call)
		if callee == nil {
			return
		}
		e := &callEdge{call: call, callee: callee}
		if sync {
			n.sync = append(n.sync, e)
		}
		n.reach = append(n.reach, e)
	}
	// depth counts enclosing function literals: 0 = the function's own
	// frame. Defer bodies stay at depth 0 — a registered defer runs on
	// this frame at exit, so its calls are synchronous effects.
	var walk func(node ast.Node, depth int)
	walk = func(node ast.Node, depth int) {
		ast.Inspect(node, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != node {
					walk(m.Body, depth+1)
					return false
				}
			case *ast.CallExpr:
				addCall(m, depth == 0)
			case *ast.DeferStmt:
				// The deferred call itself and its arguments run on
				// this frame; a deferred *closure* body does too.
				addCall(m.Call, depth == 0)
				if fl, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(fl.Body, depth)
				}
				for _, a := range m.Call.Args {
					walk(a, depth)
				}
				return false
			}
			return true
		})
	}
	walk(n.decl.Body, 0)
}

// calleeOf resolves a call expression to a function declared in the
// unit, or nil for everything else (externals, function values,
// builtins, method values through interfaces). With type information
// it resolves through Info.Uses; without it, by name — an Ident call
// to the package-level function of that name, a selector call to the
// unit's method of that name when exactly one type declares it
// (shadowing and ambiguity degrade to "unresolved", never to a wrong
// edge being trusted over a right one).
func (g *callGraph) calleeOf(unit *Unit, call *ast.CallExpr) *funcNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if unit.Info != nil {
			if fn, ok := unit.Info.Uses[fun].(*types.Func); ok {
				return g.byObj[fn]
			}
			return nil
		}
		if cands := g.funcsByName[fun.Name]; len(cands) == 1 {
			return cands[0]
		}
	case *ast.SelectorExpr:
		if unit.Info != nil {
			if fn, ok := unit.Info.Uses[fun.Sel].(*types.Func); ok {
				return g.byObj[fn]
			}
			return nil
		}
		if cands := g.methodsByName[fun.Sel.Name]; len(cands) == 1 {
			return cands[0]
		}
	}
	return nil
}

// condense runs Tarjan's SCC algorithm over the sync edges and stores
// components bottom-up: every sync callee of a node in component i
// lives in some component j <= i.
func (g *callGraph) condense() {
	index := map[*funcNode]int{}
	low := map[*funcNode]int{}
	onStack := map[*funcNode]bool{}
	var stack []*funcNode
	next := 0

	// Iterative Tarjan: the recursion depth of the call graph is
	// user-controlled input (deep helper chains), so no real recursion.
	type frame struct {
		n  *funcNode
		ei int // next sync edge to visit
	}
	var visit func(root *funcNode)
	visit = func(root *funcNode) {
		frames := []frame{{n: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(f.n.sync) {
				w := f.n.sync[f.ei].callee
				f.ei++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{n: w})
				} else if onStack[w] && low[f.n] > index[w] {
					low[f.n] = index[w]
				}
				continue
			}
			// f.n is finished: pop its SCC if it is a root.
			if low[f.n] == index[f.n] {
				var comp []*funcNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					w.scc = len(g.sccs)
					comp = append(comp, w)
					if w == f.n {
						break
					}
				}
				g.sccs = append(g.sccs, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[p.n] > low[f.n] {
					low[p.n] = low[f.n]
				}
			}
		}
	}
	for _, n := range g.nodes {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
}

// reachableFrom returns every node reachable from the given roots over
// reach edges (including the roots themselves).
func (g *callGraph) reachableFrom(roots []*funcNode) map[*funcNode]bool {
	seen := map[*funcNode]bool{}
	stack := append([]*funcNode(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.reach {
			if !seen[e.callee] {
				seen[e.callee] = true
				stack = append(stack, e.callee)
			}
		}
	}
	return seen
}
