package lint

// White-box tests for the interprocedural substrate: call-graph SCC
// ordering, summary propagation, lock-key canonicalization — all in
// heuristic (untyped) mode, which is the mode with no safety net — and
// FuzzSummary, which asserts the builder's invariants on arbitrary
// parseable input and that every interprocedural pass survives it.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parsePass builds an untyped pass (Info == nil: heuristic mode) over
// one source file.
func parsePass(tb testing.TB, src string) *pass {
	tb.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "summary_test.go", src, parser.SkipObjectResolution)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	var diags []Diagnostic
	return &pass{
		fset:    fset,
		root:    ".",
		modPath: "fixture",
		unit:    &Unit{Dir: ".", Name: "p", Files: []*ast.File{f}},
		diags:   &diags,
	}
}

// declSummary finds a function's summary by name.
func declSummary(tb testing.TB, s *summaries, name string) *funcSummary {
	tb.Helper()
	for _, n := range s.graph.nodes {
		if n.decl.Name.Name == name {
			return s.by[n]
		}
	}
	tb.Fatalf("no declaration %q in the unit", name)
	return nil
}

func TestCallGraphSCCOrder(t *testing.T) {
	p := parsePass(t, `package p
func a() { b() }
func b() { c(); a() }
func c() {}
func lone() {}
`)
	s := p.summaries()
	for _, n := range s.graph.nodes {
		for _, e := range n.sync {
			if e.callee.scc > n.scc {
				t.Errorf("sync edge %s -> %s violates bottom-up SCC order (%d -> %d)",
					n.name(), e.callee.name(), n.scc, e.callee.scc)
			}
		}
	}
	var a, b *funcNode
	for _, n := range s.graph.nodes {
		switch n.decl.Name.Name {
		case "a":
			a = n
		case "b":
			b = n
		}
	}
	if a.scc != b.scc {
		t.Errorf("mutually recursive a and b in different SCCs (%d, %d)", a.scc, b.scc)
	}
}

func TestSummaryBlockPropagatesThroughChain(t *testing.T) {
	p := parsePass(t, `package p
import "time"
func outer() { middle() }
func middle() { inner() }
func inner() { time.Sleep(1) }
func pure() { _ = 1 + 2 }
`)
	s := p.summaries()
	if sum := declSummary(t, s, "outer"); !sum.blocks {
		t.Error("outer: blocking did not propagate through two call levels")
	}
	if sum := declSummary(t, s, "pure"); sum.blocks {
		t.Errorf("pure: spurious blocking (%s)", sum.blockWhy)
	}
}

func TestSummaryLockKeyCanonicalization(t *testing.T) {
	p := parsePass(t, `package p
import "sync"
type S struct{ mu sync.Mutex }
func (s *S) low() { s.mu.Lock(); s.mu.Unlock() }
func (z *S) outer() { z.low() }
func local() { var mu sync.Mutex; mu.Lock(); mu.Unlock() }
`)
	s := p.summaries()
	low := declSummary(t, s, "low")
	if low.acquires["@recv.mu"] != lockExcl {
		t.Errorf("low acquires = %v, want @recv.mu excl", low.acquires)
	}
	// The callee's @recv key must survive translation through z.low()
	// even though the receiver is named differently in each frame.
	outer := declSummary(t, s, "outer")
	if outer.acquires["@recv.mu"] != lockExcl {
		t.Errorf("outer acquires = %v, want @recv.mu excl via z.low()", outer.acquires)
	}
}

func TestSummaryCtxDetection(t *testing.T) {
	p := parsePass(t, `package p
import "context"
func used(ctx context.Context) { _ = ctx.Err() }
func dropped(ctx context.Context) { _ = 1 }
func blank(_ context.Context) {}
func none(n int) { _ = n }
`)
	s := p.summaries()
	if sum := declSummary(t, s, "used"); !sum.hasCtx || !sum.ctxUsed {
		t.Errorf("used: hasCtx=%v ctxUsed=%v, want true/true", sum.hasCtx, sum.ctxUsed)
	}
	if sum := declSummary(t, s, "dropped"); !sum.hasCtx || sum.ctxUsed {
		t.Errorf("dropped: hasCtx=%v ctxUsed=%v, want true/false", sum.hasCtx, sum.ctxUsed)
	}
	if sum := declSummary(t, s, "blank"); !sum.hasCtx || sum.ctxName != "" {
		t.Errorf("blank: hasCtx=%v ctxName=%q, want true and empty", sum.hasCtx, sum.ctxName)
	}
	if sum := declSummary(t, s, "none"); sum.hasCtx {
		t.Error("none: spurious hasCtx")
	}
}

func TestSelectWithDefaultIsAPoll(t *testing.T) {
	p := parsePass(t, `package p
var ch = make(chan int)
func poll() { select { case <-ch: default: } }
func park() { select { case <-ch: } }
`)
	s := p.summaries()
	if sum := declSummary(t, s, "poll"); sum.blocks {
		t.Errorf("poll: select with default flagged as blocking (%s)", sum.blockWhy)
	}
	if sum := declSummary(t, s, "park"); !sum.blocks {
		t.Error("park: select without default must block")
	}
}

// TestLockbalanceHeuristicBalanced pins the fuzz target's central
// property deterministically: balanced synthetic bodies produce no
// findings even without type information.
func TestLockbalanceHeuristicBalanced(t *testing.T) {
	p := parsePass(t, `package p
import "sync"
var mu sync.Mutex
func balanced() { mu.Lock(); mu.Unlock() }
func deferred() { mu.Lock(); defer mu.Unlock(); _ = 1 }
`)
	runLockbalance(p)
	if len(*p.diags) != 0 {
		t.Errorf("balanced bodies produced findings: %v", *p.diags)
	}
}

// checkSummaryInvariants asserts what buildSummaries guarantees for
// any parseable input.
func checkSummaryInvariants(tb testing.TB, s *summaries) {
	tb.Helper()
	for _, n := range s.graph.nodes {
		sum := s.by[n]
		if sum == nil {
			tb.Fatalf("%s: no summary", n.name())
		}
		if sum.blocks && !sum.blockPos.IsValid() {
			tb.Fatalf("%s: blocks without a witness position", n.name())
		}
		for key, kind := range sum.acquires {
			if key == "" {
				tb.Fatalf("%s: empty lock key", n.name())
			}
			if kind == 0 || kind&^(lockExcl|lockShared) != 0 {
				tb.Fatalf("%s: lock kind %d outside the lattice", n.name(), kind)
			}
		}
		for _, rw := range sum.rws {
			if rw.unknown {
				continue
			}
			if rw.min < 0 || rw.max > 2 || rw.min > rw.max {
				tb.Fatalf("%s: rw range [%d, %d] malformed", n.name(), rw.min, rw.max)
			}
		}
		for _, e := range n.sync {
			if e.callee.scc > n.scc {
				tb.Fatalf("sync edge %s -> %s breaks SCC order", n.name(), e.callee.name())
			}
		}
	}
}

func FuzzSummary(f *testing.F) {
	seeds := []string{
		"package p\nfunc f() {}\n",
		"package p\nimport \"sync\"\nvar mu sync.Mutex\nfunc f() { mu.Lock(); mu.Unlock() }\n",
		"package p\nimport \"sync\"\nvar mu sync.Mutex\nfunc f(c bool) { mu.Lock(); if c { return }; mu.Unlock() }\n",
		"package p\nimport \"time\"\nfunc a() { b() }\nfunc b() { a(); time.Sleep(1) }\n",
		"package p\nimport \"context\"\nfunc f(ctx context.Context) { <-ctx.Done() }\n",
		"package p\nimport \"net/http\"\nfunc h(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200); w.Write(nil) }\n",
		"package p\nimport \"net/http\"\nfunc h(w http.ResponseWriter, r *http.Request) { helper(w) }\nfunc helper(w http.ResponseWriter) { w.WriteHeader(500) }\n",
		"package p\nvar ch = make(chan int)\nfunc f() { select { case <-ch: default: } }\n",
		"package p\nimport \"sync\"\ntype S struct{ mu sync.RWMutex }\nfunc (s *S) r() { s.mu.RLock(); defer s.mu.RUnlock(); s.r() }\n",
		"package p\nfunc f() { defer func() { recover() }(); panic(1) }\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		var diags []Diagnostic
		p := &pass{
			fset:    fset,
			root:    ".",
			modPath: "fixture",
			unit:    &Unit{Dir: ".", Name: "p", Files: []*ast.File{file}},
			diags:   &diags,
		}
		s := p.summaries()
		checkSummaryInvariants(t, s)
		// Rebuilding must be deterministic in the bits passes consume.
		again := buildSummaries(p)
		for _, n := range s.graph.nodes {
			m := again.graph.byDecl[n.decl]
			if m == nil || again.by[m].blocks != s.by[n].blocks {
				t.Fatalf("%s: rebuild changed the blocking bit", n.name())
			}
		}
		// Every interprocedural pass must survive arbitrary input.
		runLockbalance(p)
		runCtxflow(p)
		runHttpwrite(p)
	})
}
