package lint

// cfg.go: a stdlib-only intra-procedural control-flow graph over
// go/ast, the substrate for the dataflow passes (poolbalance,
// retainescape, goleak). One CFG models one function body; function
// literals get their own CFGs (their statements execute under a
// different frame, possibly on a different goroutine).
//
// Shape:
//
//   - blocks hold "atoms" — simple statements and the conditions of
//     branching constructs — in execution order. Composite statements
//     (if/for/switch/select) are decomposed into edges, so no
//     statement appears in more than one block.
//   - a single normal-exit block models every return and the fall-off
//     at the end of the body; a single panic block models panic(...)
//     calls, empty selects, and malformed jumps. Passes that enforce
//     an obligation "on every non-panic path" treat edges into the
//     panic block as excused.
//   - loop-head blocks remember the ForStmt/RangeStmt they head, so a
//     pass can reason about "the loop whose trip count we cannot see"
//     (see the join-in-loop crediting in goleak).
//
// Known approximations (see DESIGN.md §10): trip counts are opaque;
// panics inside callees are invisible; os.Exit/log.Fatal and runtime.
// Goexit are treated as ordinary calls; `defer` atoms stay at their
// registration point, which is sound for the "registered before every
// exit" obligations the passes check.

import (
	"go/ast"
	"go/token"
)

// blockKind distinguishes the two synthetic exit nodes from ordinary
// straight-line blocks.
type blockKind uint8

const (
	blockBody  blockKind = iota // straight-line code
	blockExit                   // the single normal-exit node
	blockPanic                  // the single panic / no-return node
)

// block is one CFG node.
type block struct {
	index int
	kind  blockKind
	nodes []ast.Node // simple statements and branch conditions, in order
	succs []*block
	loop  ast.Stmt // the ForStmt/RangeStmt this block heads, else nil
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	blocks []*block
	entry  *block
	exit   *block
	panicb *block
}

// labelTargets records the jump targets a label can name: the start of
// the labeled statement (goto) and, once the labeled loop/switch is
// built, its break and continue blocks.
type labelTargets struct {
	start *block // target of goto L
	brk   *block // target of break L
	cont  *block // target of continue L
}

type cfgBuilder struct {
	c        *cfg
	cur      *block
	brk      *block // innermost break target
	cont     *block // innermost continue target
	fallto   *block // fallthrough target inside a switch clause
	labels   map[string]*labelTargets
	labelseq []*labelTargets // creation order, for the undefined-label sweep
	curLabel *labelTargets   // label awaiting the statement it names
}

// buildCFG constructs the CFG of one function body. A nil body (a
// declaration without a definition) yields entry → exit.
func buildCFG(body *ast.BlockStmt) *cfg {
	c := &cfg{}
	b := &cfgBuilder{c: c, labels: map[string]*labelTargets{}}
	c.exit = b.newBlock(blockExit)
	c.panicb = b.newBlock(blockPanic)
	c.entry = b.newBlock(blockBody)
	b.cur = c.entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, c.exit)
	// A goto to a label that is never defined (parseable, type-invalid)
	// leaves the label's start block dangling; route it to the panic
	// block so the "every successor-less block is an exit" invariant
	// holds on arbitrary parseable input.
	for _, lt := range b.labelseq {
		if len(lt.start.succs) == 0 {
			b.edge(lt.start, c.panicb)
		}
	}
	return c
}

func (b *cfgBuilder) newBlock(k blockKind) *block {
	blk := &block{index: len(b.c.blocks), kind: k}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) fresh() *block { return b.newBlock(blockBody) }

func (b *cfgBuilder) edge(from, to *block) {
	from.succs = append(from.succs, to)
}

// terminate ends the current block with an edge to `to` and continues
// into a fresh block that collects any dead code that follows; dead
// blocks have no predecessors but still flow onward, so every block
// without successors is one of the two exit nodes.
func (b *cfgBuilder) terminate(to *block) {
	b.edge(b.cur, to)
	b.cur = b.fresh()
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

// label returns the targets record for name, creating it (with a fresh
// start block, for forward gotos) on first reference.
func (b *cfgBuilder) label(name string) *labelTargets {
	lt := b.labels[name]
	if lt == nil {
		lt = &labelTargets{start: b.fresh()}
		b.labels[name] = lt
		b.labelseq = append(b.labelseq, lt)
	}
	return lt
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// A pending label binds only to the statement directly after it.
	lbl := b.curLabel
	b.curLabel = nil

	switch s := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lt := b.label(s.Label.Name)
		b.edge(b.cur, lt.start)
		b.cur = lt.start
		b.curLabel = lt
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.c.exit)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.terminate(b.c.panicb)
		}

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, lbl)

	case *ast.RangeStmt:
		b.rangeStmt(s, lbl)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, lbl, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.switchBody(s.Body, lbl, s.Assign)

	case *ast.SelectStmt:
		b.selectStmt(s, lbl)

	default:
		// Assignments, declarations, sends, inc/dec, defer, go: one
		// atom, no control effect at this point in the frame.
		b.add(s)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	var target *block
	switch s.Tok {
	case token.BREAK:
		target = b.brk
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil && lt.brk != nil {
				target = lt.brk
			}
		}
	case token.CONTINUE:
		target = b.cont
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil && lt.cont != nil {
				target = lt.cont
			}
		}
	case token.GOTO:
		if s.Label != nil {
			target = b.label(s.Label.Name).start
		}
	case token.FALLTHROUGH:
		target = b.fallto
	}
	b.add(s)
	if target == nil {
		// Malformed jump (break outside a loop, fallthrough in the
		// last clause, goto without label): execution cannot proceed
		// in a legal program, so model it as no-return.
		target = b.c.panicb
	}
	b.terminate(target)
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	after := b.fresh()
	thenB := b.fresh()
	b.edge(head, thenB)
	b.cur = thenB
	b.stmt(s.Body)
	b.edge(b.cur, after)
	if s.Else != nil {
		elseB := b.fresh()
		b.edge(head, elseB)
		b.cur = elseB
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(head, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, lbl *labelTargets) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.fresh()
	head.loop = s
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	after := b.fresh()
	body := b.fresh()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	cont := head
	if s.Post != nil {
		cont = b.fresh()
	}
	saveBrk, saveCont := b.brk, b.cont
	b.brk, b.cont = after, cont
	if lbl != nil {
		lbl.brk, lbl.cont = after, cont
	}
	b.cur = body
	b.stmt(s.Body)
	if s.Post != nil {
		b.edge(b.cur, cont)
		b.cur = cont
		b.add(s.Post)
		b.edge(cont, head)
	} else {
		b.edge(b.cur, head)
	}
	b.brk, b.cont = saveBrk, saveCont
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, lbl *labelTargets) {
	b.add(s.X) // the ranged expression is evaluated once, before the loop
	head := b.fresh()
	head.loop = s
	b.edge(b.cur, head)
	after := b.fresh()
	body := b.fresh()
	b.edge(head, body)
	b.edge(head, after)
	saveBrk, saveCont := b.brk, b.cont
	b.brk, b.cont = after, head
	if lbl != nil {
		lbl.brk, lbl.cont = after, head
	}
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head)
	b.brk, b.cont = saveBrk, saveCont
	b.cur = after
}

// switchBody builds the clause fan-out shared by expression and type
// switches; assign is the type switch's `x := y.(type)` statement.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, lbl *labelTargets, assign ast.Stmt) {
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.fresh()
	saveBrk, saveFall := b.brk, b.fallto
	b.brk = after
	if lbl != nil {
		lbl.brk = after
	}
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blks := make([]*block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blks[i] = b.fresh()
		b.edge(head, blks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after) // no clause matched
	}
	for i, cc := range clauses {
		b.cur = blks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(clauses) {
			b.fallto = blks[i+1]
		} else {
			b.fallto = nil
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.brk, b.fallto = saveBrk, saveFall
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, lbl *labelTargets) {
	head := b.cur
	after := b.fresh()
	saveBrk := b.brk
	b.brk = after
	if lbl != nil {
		lbl.brk = after
	}
	n := 0
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		n++
		blk := b.fresh()
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	if n == 0 {
		// select{} blocks forever: modeled as no-return.
		b.edge(head, b.c.panicb)
	}
	b.brk = saveBrk
	b.cur = after
}

// isPanicCall reports whether e is a direct call to the builtin panic.
// Shadowing `panic` defeats this (and deserves what it gets).
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// leaks reports whether some execution path starting at node index idx
// of block start reaches the normal exit without first hitting an atom
// that satisfy() accepts. Edges into the panic block are excused — the
// obligations the passes check are "on every non-panic path". When
// loopSat is non-nil and a loop-head block is reached, loopSat decides
// whether the loop it heads discharges the obligation for every path
// through it (the trip count is opaque to an intra-procedural
// analysis, so a join/Put inside a loop body is credited to the loop's
// exit edge by the caller's policy, not by path enumeration).
func (c *cfg) leaks(start *block, idx int, satisfy func(ast.Node) bool, loopSat func(ast.Stmt) bool) bool {
	type item struct {
		blk *block
		idx int
	}
	visited := make([]bool, len(c.blocks))
	stack := []item{{start, idx}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk := it.blk
		if it.idx == 0 && blk.loop != nil && loopSat != nil && loopSat(blk.loop) {
			continue
		}
		done := false
		for i := it.idx; i < len(blk.nodes); i++ {
			if satisfy(blk.nodes[i]) {
				done = true
				break
			}
		}
		if done {
			continue
		}
		for _, s := range blk.succs {
			switch s.kind {
			case blockExit:
				return true
			case blockPanic:
				// excused
			default:
				if !visited[s.index] {
					visited[s.index] = true
					stack = append(stack, item{s, 0})
				}
			}
		}
	}
	return false
}

// eachFuncBody invokes fn for every function, method, and function
// literal body in the unit. Each body is its own CFG domain.
func (p *pass) eachFuncBody(fn func(body *ast.BlockStmt)) {
	for _, f := range p.unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}

// inspectShallow walks n like ast.Inspect but does not descend into
// function literals: their statements run under a different frame
// (often a different goroutine), so events inside them must not be
// credited to the enclosing function's paths.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}
