package lint

// retainescape: destination buffers passed to `...Into` and
// `GenerateAt...` functions are caller-owned (DESIGN.md §8–§9): the
// callee may write through them during the call but must not retain
// them. A retained dst aliases memory the caller will reuse — the next
// GenerateAtInto into the same grid silently rewrites whatever the
// retainer later reads, which is exactly the nondeterministic
// statistics corruption this suite exists to keep out of the pipeline.
//
// Scope: exported-contract functions, selected by name (suffix "Into"
// or prefix "GenerateAt"), over their slice- and pointer-typed
// parameters. Flagged sinks for a parameter or any local alias of it
// (x := dst, x := dst[a:b], x := out.Data):
//
//   - stores into struct fields or elements reached through one
//   - stores into package-level variables
//   - channel sends
//   - sync.Pool.Put — handing a caller-owned buffer to a pooled arena
//     lets a future Get return memory the caller still owns
//
// Writing element values through the buffer (dst[i] = v, copy(dst, s))
// is the contract and is never flagged. The analysis is intra-
// procedural: passing the buffer onward to another function is allowed
// (the callee is itself in scope if it is part of the contract).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func runRetainescape(p *pass) {
	for _, f := range p.unit.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if !strings.HasSuffix(name, "Into") && !strings.HasPrefix(name, "GenerateAt") {
				continue
			}
			p.checkRetain(fd)
		}
	}
}

func (p *pass) checkRetain(fd *ast.FuncDecl) {
	owned := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, id := range field.Names {
				obj := p.unit.Info.Defs[id]
				if obj == nil {
					continue
				}
				switch obj.Type().Underlying().(type) {
				case *types.Slice, *types.Pointer:
					owned[obj] = true
				}
			}
		}
	}
	if len(owned) == 0 {
		return
	}

	// Grow the alias set to a fixed point: locals assigned from an
	// alias view the same backing memory. Function literals are
	// included — a closure is still this call's code.
	aliases := make(map[types.Object]bool, len(owned))
	for obj := range owned {
		aliases[obj] = true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Rhs {
				if !p.aliasExpr(as.Rhs[i], aliases) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.objOf(id)
				if obj == nil || aliases[obj] || p.isPackageLevel(obj) {
					continue // package-level stores are the violation scan's business
				}
				aliases[obj] = true
				changed = true
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Rhs {
				if !p.aliasExpr(n.Rhs[i], aliases) {
					continue
				}
				if kind, ok := p.retainTarget(n.Lhs[i]); ok {
					p.reportf(n.Pos(), "retainescape",
						"caller-owned buffer of %s stored into %s; Into/GenerateAt destinations must not outlive the call",
						fd.Name.Name, kind)
				}
			}
		case *ast.SendStmt:
			if p.aliasExpr(n.Value, aliases) {
				p.reportf(n.Arrow, "retainescape",
					"caller-owned buffer of %s sent on a channel; Into/GenerateAt destinations must not outlive the call",
					fd.Name.Name)
			}
		case *ast.CallExpr:
			if _, ok := p.poolMethodKey(n, "Put"); ok && len(n.Args) == 1 && p.aliasExpr(n.Args[0], aliases) {
				p.reportf(n.Pos(), "retainescape",
					"caller-owned buffer of %s returned to a sync.Pool arena; a future Get would hand out memory the caller still owns",
					fd.Name.Name)
			}
		}
		return true
	})
}

// aliasExpr reports whether e denotes (a view of) a caller-owned
// buffer: an alias identifier, a reslice of one, a reference-typed
// field or element of one, or the address of an element.
func (p *pass) aliasExpr(e ast.Expr, aliases map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.objOf(e)
		return obj != nil && aliases[obj]
	case *ast.SliceExpr:
		return p.aliasExpr(e.X, aliases)
	case *ast.SelectorExpr:
		return p.refTyped(e) && p.aliasExpr(e.X, aliases)
	case *ast.IndexExpr:
		return p.refTyped(e) && p.aliasExpr(e.X, aliases)
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		base := ast.Unparen(e.X)
		if idx, ok := base.(*ast.IndexExpr); ok {
			base = idx.X // &dst[i] pins dst's backing array
		}
		return p.aliasExpr(base, aliases)
	}
	return false
}

// refTyped reports whether e's type shares backing memory when copied
// (slice or pointer); selecting a float out of an owned grid is not an
// alias, selecting its Data slice is.
func (p *pass) refTyped(e ast.Expr) bool {
	tv, ok := p.unit.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Pointer:
		return true
	}
	return false
}

// retainTarget classifies an assignment destination that outlives the
// call: a struct field (or an element reached through one) or a
// package-level variable.
func (p *pass) retainTarget(lhs ast.Expr) (string, bool) {
	e := ast.Unparen(lhs)
	for {
		idx, ok := e.(*ast.IndexExpr)
		if !ok {
			break
		}
		e = ast.Unparen(idx.X)
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if v, ok := p.unit.Info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return "a struct field", true
		}
	case *ast.Ident:
		if obj := p.objOf(e); obj != nil && p.isPackageLevel(obj) {
			return "a package-level variable", true
		}
	}
	return "", false
}

// isPackageLevel reports whether obj is declared at package scope.
func (p *pass) isPackageLevel(obj types.Object) bool {
	return obj.Parent() == p.unit.Pkg.Scope()
}
