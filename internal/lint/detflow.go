package lint

// detflow: interprocedural determinism-taint analysis. Everything the
// repo promises — content-addressed scene IDs, golden tile SHAs,
// seed-for-seed bit-identical noise — is a claim that certain values
// are pure functions of (scene, seed, window). This pass checks that
// claim statically: nondeterminism sources (map iteration order,
// time.Now, global math/rand, os.Environ, %p, select branch choice,
// unjoined-goroutine write order) are taint-tracked through
// assignments, returns and call edges (taint.go) into determinism
// sinks: hash inputs, canonical JSON/binary encoding, internal/rng
// seeding, tile encoding, grid sample buffers, and cache-key/ID
// construction.
//
// The analysis is summary-based and bottom-up: a function's taint
// summary says which results carry a source and which parameters flow
// to them (so taint survives a return through three helpers), and its
// sink summary says which parameters reach a sink inside (so a tainted
// argument is flagged at the call site, where the fix belongs).
// sort.*/slices.* calls sanitize, values drawn from internal/rng are
// deterministic by the repo's own contract, and deliberate
// nondeterminism is silenced with //lint:ignore detflow <reason>.

func runDetflow(p *pass) {
	s := p.summaries()
	for _, n := range s.graph.nodes { // declaration order, not map order
		env := s.taintEnvs[n]
		if env == nil {
			continue
		}
		for _, f := range env.findings {
			p.reportf(f.pos, "detflow", "%s", f.msg)
		}
	}
}
