package lint

// status.go: the ResponseWriter status-write analysis behind the
// httpwrite pass and the rwSummary field of funcSummary. For one
// function and one http.ResponseWriter parameter it classifies every
// use of the writer into events, then walks the function's CFG
// tracking, per path, how many status writes have happened:
//
//   - an explicit status write: w.WriteHeader(code), http.Error,
//     http.NotFound, http.Redirect, http.ServeFile/ServeContent, or a
//     call to a same-unit helper whose summary says it writes through
//     the corresponding parameter (writeError, writeJSON, writeTile —
//     this is what makes the pass interprocedural: a helper-indirected
//     write is invisible to a purely intra-procedural scan)
//   - a body write: w.Write, fmt.Fprint*, io.WriteString/Copy,
//     json.NewEncoder(w), or passing w to a callee as a plain
//     io.Writer. The first body write on a path where nothing has been
//     written yet is an implicit 200, so it raises the floor to one
//     without ever counting as a double write.
//
// The per-path state is (lo, hi, err): a saturating [lo, hi] range of
// status writes plus whether an error status has definitely been
// written. Findings only fire on definite evidence — a second status
// write when lo >= 1, a body write when err is already true, a
// normal exit with hi == 0 — so conditional helpers (min < max) never
// produce false positives, they just widen the range.
//
// If the writer escapes the analysis — stored, captured by a function
// literal, passed to an unresolved callee as a ResponseWriter, used in
// a defer — the function is marked unknown and the pass stays quiet on
// it (the instrument-middleware wrapper pattern does exactly this).

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// rwEventKind classifies one writer use.
type rwEventKind uint8

const (
	rwStatus    rwEventKind = iota // explicit status write(s)
	rwWriteLike                    // body write / implicit 200
)

// rwEvent is one classified writer use inside one CFG atom.
type rwEvent struct {
	kind     rwEventKind
	min, max int // status writes contributed (rwStatus only)
	isErr    bool
	pos      token.Pos
}

// rwState is the per-path dataflow fact.
type rwState struct {
	lo, hi uint8 // status writes so far, saturated at 2
	err    bool  // an error status has definitely been written
}

// rwViolation callbacks for the reporting walk.
type rwReporter struct {
	double    func(pos token.Pos)
	bodyAfter func(pos token.Pos)
	zeroExit  func()
}

// rwAnalysis analyzes one function body against one writer object.
type rwAnalysis struct {
	s       *summaries
	body    *ast.BlockStmt
	obj     types.Object // nil in heuristic mode
	name    string
	escaped bool
}

// statusSummaries computes the rwSummary list for a declared function.
// Runs in SCC order, so same-unit helper calls see callee summaries.
func (s *summaries) statusSummaries(n *funcNode) []rwSummary {
	var out []rwSummary
	params := n.decl.Type.Params
	if params == nil {
		return nil
	}
	idx := 0
	for _, field := range params.List {
		isRW := s.isResponseWriterType(field.Type)
		names := field.Names
		if len(names) == 0 {
			if isRW {
				out = append(out, rwSummary{index: idx, unknown: true})
			}
			idx++
			continue
		}
		for _, id := range names {
			if isRW && id.Name != "_" {
				var obj types.Object
				if s.p.unit.Info != nil {
					obj = s.p.unit.Info.Defs[id]
				}
				rw := rwSummary{obj: obj, index: idx}
				a := &rwAnalysis{s: s, body: n.decl.Body, obj: obj, name: id.Name}
				a.scanEscapes()
				if a.escaped {
					rw.unknown = true
				} else {
					min, max, ok := a.walk(s.cfgOf(n), nil)
					if !ok {
						rw.unknown = true
					} else {
						rw.min, rw.max = min, max
					}
				}
				out = append(out, rw)
			} else if isRW {
				out = append(out, rwSummary{index: idx, unknown: true})
			}
			idx++
		}
	}
	return out
}

// isResponseWriterType matches http.ResponseWriter, typed or textual.
func (s *summaries) isResponseWriterType(t ast.Expr) bool {
	if s.p.unit.Info != nil {
		if tv, ok := s.p.unit.Info.Types[t]; ok && tv.Type != nil {
			return isNamedType(tv.Type, "net/http", "ResponseWriter")
		}
	}
	sel, ok := ast.Unparen(t).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ResponseWriter" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "http"
}

// isRequestPtrType matches *http.Request, typed or textual.
func (s *summaries) isRequestPtrType(t ast.Expr) bool {
	if s.p.unit.Info != nil {
		if tv, ok := s.p.unit.Info.Types[t]; ok && tv.Type != nil {
			if ptr, ok := tv.Type.Underlying().(*types.Pointer); ok {
				return isNamedType(ptr.Elem(), "net/http", "Request")
			}
			return false
		}
	}
	star, ok := ast.Unparen(t).(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(star.X).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Request" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "http"
}

// isWriter reports whether the identifier denotes the analyzed writer.
func (a *rwAnalysis) isWriter(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	if a.obj != nil {
		return a.s.p.objOf(id) == a.obj
	}
	return id.Name == a.name
}

// scanEscapes walks the whole body once and marks the analysis escaped
// when the writer is used in any position the event classifier does not
// model: inside a function literal or defer, stored anywhere, or passed
// to a callee the classifier cannot see through.
func (a *rwAnalysis) scanEscapes() {
	consumed := map[*ast.Ident]bool{}
	var inLit, inDefer int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != n {
					inLit++
					walk(m.Body)
					inLit--
					return false
				}
			case *ast.DeferStmt:
				inDefer++
				walk(m.Call)
				inDefer--
				return false
			case *ast.CallExpr:
				for _, id := range a.eventConsumes(m) {
					consumed[id] = true
				}
			case *ast.Ident:
				if a.isWriter(m) && (inLit > 0 || inDefer > 0 || !consumed[m]) {
					a.escaped = true
				}
			}
			return !a.escaped
		})
	}
	// Two-phase per the Inspect order: calls are visited before the
	// identifiers inside them, so consumption is recorded first.
	walk(a.body)
}

// eventConsumes returns the writer identifiers inside call that the
// classifier models (and therefore do not escape). A nil return with
// the writer present means the call is opaque.
func (a *rwAnalysis) eventConsumes(call *ast.CallExpr) []*ast.Ident {
	ev, ids := a.classifyCall(call)
	if ev == nil {
		return nil
	}
	return ids
}

// classifyCall maps one call expression to at most one event for the
// analyzed writer. The returned idents are the writer uses the event
// accounts for.
func (a *rwAnalysis) classifyCall(call *ast.CallExpr) (*rwEvent, []*ast.Ident) {
	// Method call on the writer itself.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && a.isWriter(sel.X) {
		id := ast.Unparen(sel.X).(*ast.Ident)
		switch sel.Sel.Name {
		case "WriteHeader":
			ev := &rwEvent{kind: rwStatus, min: 1, max: 1, pos: call.Pos()}
			if len(call.Args) == 1 && a.constStatusIsError(call.Args[0]) {
				ev.isErr = true
			}
			return ev, []*ast.Ident{id}
		case "Write":
			return &rwEvent{kind: rwWriteLike, pos: call.Pos()}, []*ast.Ident{id}
		case "Header":
			return &rwEvent{pos: call.Pos(), kind: rwWriteLike, min: -1}, []*ast.Ident{id} // neutral, see apply
		}
		return nil, nil
	}

	// The writer as an argument.
	var ids []*ast.Ident
	argIdx := -1
	for i, arg := range call.Args {
		if a.isWriter(arg) {
			ids = append(ids, ast.Unparen(arg).(*ast.Ident))
			if argIdx < 0 {
				argIdx = i
			}
		}
	}
	if argIdx < 0 {
		return nil, nil
	}

	// Known stdlib helpers first.
	if pkg, name, ok := pkgFuncName(a.s.p, call); ok {
		switch {
		case pkg == "net/http" && (name == "Error" || name == "NotFound"):
			return &rwEvent{kind: rwStatus, min: 1, max: 1, isErr: true, pos: call.Pos()}, ids
		case pkg == "net/http" && (name == "Redirect" || name == "ServeFile" ||
			name == "ServeContent" || name == "ServeFileFS"):
			return &rwEvent{kind: rwStatus, min: 1, max: 1, pos: call.Pos()}, ids
		case pkg == "net/http" && name == "MaxBytesReader":
			return &rwEvent{pos: call.Pos(), kind: rwWriteLike, min: -1}, ids // neutral wrapper
		case pkg == "fmt" && strings.HasPrefix(name, "Fprint"):
			return &rwEvent{kind: rwWriteLike, pos: call.Pos()}, ids
		case pkg == "io" && (name == "WriteString" || name == "Copy" || name == "CopyN"):
			return &rwEvent{kind: rwWriteLike, pos: call.Pos()}, ids
		case pkg == "encoding/json" && name == "NewEncoder":
			return &rwEvent{kind: rwWriteLike, pos: call.Pos()}, ids
		}
	}

	// A same-unit callee: use its summary for the parameter the writer
	// lands in. This is the helper-indirection case.
	if callee := a.s.graph.calleeOf(a.s.p.unit, call); callee != nil {
		if cs := a.s.by[callee]; cs != nil {
			// Method calls shift flattened parameter indices by zero —
			// the receiver is not in Params — so argIdx lines up except
			// for variadic/multi-writer corners, which escape below.
			for _, rw := range cs.rws {
				if rw.index != argIdx {
					continue
				}
				if rw.unknown {
					return nil, nil
				}
				ev := &rwEvent{kind: rwStatus, min: rw.min, max: rw.max, pos: call.Pos()}
				if rw.min >= 1 && a.callHasErrorStatusArg(call) {
					ev.isErr = true
				}
				if rw.min == 0 && rw.max == 0 {
					ev = &rwEvent{kind: rwWriteLike, pos: call.Pos()} // pure body helper
				}
				return ev, ids
			}
			// The writer flows into a non-ResponseWriter parameter (an
			// io.Writer): only body writes are possible through it.
			if a.calleeParamIsPlainWriter(callee, argIdx) {
				return &rwEvent{kind: rwWriteLike, pos: call.Pos()}, ids
			}
		}
		return nil, nil
	}

	// Unresolved callee taking the writer as a plain io.Writer can only
	// write body bytes; anything else is opaque.
	if a.callArgIsPlainWriter(call, argIdx) {
		return &rwEvent{kind: rwWriteLike, pos: call.Pos()}, ids
	}
	return nil, nil
}

// constStatusIsError reports whether e is a constant int in [400, 599].
func (a *rwAnalysis) constStatusIsError(e ast.Expr) bool {
	info := a.s.p.unit.Info
	if info == nil {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v >= 400 && v <= 599
}

// callHasErrorStatusArg reports whether any argument is a constant
// error-class status code — how a call to a generic status helper
// (writeError(w, http.StatusNotFound, ...)) is classified as an error
// write at the call site.
func (a *rwAnalysis) callHasErrorStatusArg(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if a.constStatusIsError(arg) {
			return true
		}
	}
	return false
}

// calleeParamIsPlainWriter reports whether the callee's parameter at
// flattened index idx is a non-ResponseWriter type (io.Writer et al).
func (a *rwAnalysis) calleeParamIsPlainWriter(callee *funcNode, idx int) bool {
	params := callee.decl.Type.Params
	if params == nil {
		return false
	}
	i := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if idx < i+n {
			return !a.s.isResponseWriterType(field.Type)
		}
		i += n
	}
	return false
}

// callArgIsPlainWriter inspects an unresolved call's signature (when
// types are available) for the argument's declared parameter type.
func (a *rwAnalysis) callArgIsPlainWriter(call *ast.CallExpr, idx int) bool {
	info := a.s.p.unit.Info
	if info == nil {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || idx >= sig.Params().Len() {
		return false
	}
	return !isNamedType(sig.Params().At(idx).Type(), "net/http", "ResponseWriter")
}

// pkgFuncName resolves a call to (package path, function name) for
// package-level functions, via types.
func pkgFuncName(p *pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || p.unit.Info == nil {
		return "", "", false
	}
	fn, ok := p.unit.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// atomEvents extracts the writer events of one CFG atom, in source
// order. Neutral events (min == -1 markers) are dropped here.
func (a *rwAnalysis) atomEvents(atom ast.Node) []rwEvent {
	var out []rwEvent
	inspectShallow(atom, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		ev, _ := a.classifyCall(call)
		if ev != nil && !(ev.kind == rwWriteLike && ev.min == -1) {
			out = append(out, *ev)
		}
		return true
	})
	return out
}

// walk runs the dataflow over the CFG. It returns the [min, max] status
// writes over all normal-exit paths; ok is false when no normal exit is
// reachable (everything panics) — callers treat that as unknown. When
// rep is non-nil the definite violations are reported through it.
func (a *rwAnalysis) walk(c *cfg, rep *rwReporter) (int, int, bool) {
	type item struct {
		blk *block
		st  rwState
	}
	seen := make([]map[rwState]bool, len(c.blocks))
	reported := map[token.Pos]bool{}
	var exitLo, exitHi int
	exitSeen := false
	zeroExit := false

	push := func(stack []item, blk *block, st rwState) []item {
		if seen[blk.index] == nil {
			seen[blk.index] = map[rwState]bool{}
		}
		if seen[blk.index][st] {
			return stack
		}
		seen[blk.index][st] = true
		return append(stack, item{blk, st})
	}
	stack := push(nil, c.entry, rwState{})
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st := it.st
		for _, atom := range it.blk.nodes {
			for _, ev := range a.atomEvents(atom) {
				switch ev.kind {
				case rwStatus:
					if rep != nil && st.lo >= 1 && ev.min >= 1 && !reported[ev.pos] {
						reported[ev.pos] = true
						rep.double(ev.pos)
					}
					st.lo = satAdd(st.lo, ev.min)
					st.hi = satAdd(st.hi, ev.max)
					if ev.isErr && ev.min >= 1 {
						st.err = true
					}
				case rwWriteLike:
					if rep != nil && st.err && !reported[ev.pos] {
						reported[ev.pos] = true
						rep.bodyAfter(ev.pos)
					}
					if st.lo == 0 {
						st.lo = 1
					}
					if st.hi == 0 {
						st.hi = 1
					}
				}
			}
		}
		for _, succ := range it.blk.succs {
			switch succ.kind {
			case blockExit:
				if !exitSeen {
					exitLo, exitHi, exitSeen = int(st.lo), int(st.hi), true
				} else {
					if int(st.lo) < exitLo {
						exitLo = int(st.lo)
					}
					if int(st.hi) > exitHi {
						exitHi = int(st.hi)
					}
				}
				if st.hi == 0 {
					zeroExit = true
				}
			case blockPanic:
				// excused
			default:
				stack = push(stack, succ, st)
			}
		}
	}
	if rep != nil && zeroExit {
		rep.zeroExit()
	}
	if !exitSeen {
		return 0, 0, false
	}
	return exitLo, exitHi, true
}

func satAdd(a uint8, b int) uint8 {
	v := int(a) + b
	if v > 2 {
		return 2
	}
	if v < 0 {
		return 0
	}
	return uint8(v)
}
