package lint

// errdrop: discarded error results from this module's own APIs
// (fft.CachedPlan, grid IO, generator constructors, ...). A dropped
// internal error usually means a surface was generated from an invalid
// plan or a file silently failed to persist. Flagged forms:
//
//	api.Do()            // call statement, results discarded
//	defer api.Do()      // deferred, error unobservable
//	go api.Do()         // goroutine, error unobservable
//	v, _ := api.Make()  // error position assigned to blank
//
// Only direct calls to functions and methods defined inside the module
// are checked; stdlib calls (fmt.Fprintf, ...) are vet's business.

import (
	"go/ast"
	"go/types"
	"strings"
)

func runErrdrop(p *pass) {
	for _, f := range p.unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					p.checkDroppedCall(call, "discarded")
				}
			case *ast.DeferStmt:
				p.checkDroppedCall(n.Call, "unobservable in defer")
			case *ast.GoStmt:
				p.checkDroppedCall(n.Call, "unobservable in go statement")
			case *ast.AssignStmt:
				p.checkBlankErr(n)
			}
			return true
		})
	}
}

// internalCallee resolves a direct call to a function or method
// defined in this module; nil otherwise.
func (p *pass) internalCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := p.unit.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if path != p.modPath && !strings.HasPrefix(path, p.modPath+"/") {
		return nil
	}
	return fn
}

// calleeName renders the callee compactly, without the module prefix.
func (p *pass) calleeName(fn *types.Func) string {
	return strings.ReplaceAll(fn.FullName(), p.modPath+"/", "")
}

func errorResults(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			idx = append(idx, i)
		}
	}
	return idx
}

func (p *pass) checkDroppedCall(call *ast.CallExpr, how string) {
	fn := p.internalCallee(call)
	if fn == nil || len(errorResults(fn)) == 0 {
		return
	}
	p.reportf(call.Pos(), "errdrop", "error result of %s %s", p.calleeName(fn), how)
}

func (p *pass) checkBlankErr(n *ast.AssignStmt) {
	report := func(call *ast.CallExpr, lhs ast.Expr, resultIdx int) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return
		}
		fn := p.internalCallee(call)
		if fn == nil {
			return
		}
		for _, e := range errorResults(fn) {
			if e == resultIdx {
				p.reportf(id.Pos(), "errdrop",
					"error result of %s assigned to blank", p.calleeName(fn))
			}
		}
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// v, _ := api.Make(): one multi-result call.
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
			for i, lhs := range n.Lhs {
				report(call, lhs, i)
			}
		}
		return
	}
	if len(n.Rhs) == len(n.Lhs) {
		// _ = api.Do() and parallel assignments.
		for i, rhs := range n.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				report(call, n.Lhs[i], 0)
			}
		}
	}
}
