package lint

// floatreduce: scheduling-ordered floating-point reduction. Float
// addition is not associative, so a sum whose term order depends on
// worker count or goroutine interleaving produces different low bits
// run to run — exactly what broke byte-stable tiles before convDirect
// and GenerateAtInto pinned their summation order per index. The
// invariant this pass checks: inside a parallel task (a func literal
// handed to a go statement or an internal/par launcher), floating-
// point accumulation must target per-task or per-index state, never a
// scalar shared with other tasks.
//
// Flagged shapes:
//
//   - sum += x (or sum = sum + x, -=, *=) on a float/complex variable
//     captured from outside the task literal, or on a field of a
//     captured or package-level value;
//   - a call from a task to a same-unit helper whose summary says it
//     accumulates through a pointer-to-float parameter, with a
//     captured variable's address at that position (the helper is
//     innocent serially; the launch makes it a race on term order);
//   - launching (go f / par.Dynamic(n, w, f)) a function whose summary
//     says it accumulates into a package-level float.
//
// Per-index stores (out[i] += v, where each task owns its indices) are
// the blessed deterministic merge and are exempt; so are accumulators
// declared inside the literal. A mutex does NOT exempt: it serializes
// the += but not its order.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func runFloatreduce(p *pass) {
	s := p.summaries()
	for _, n := range s.graph.nodes {
		for _, site := range taskSites(p, n.decl.Body) {
			if site.lit != nil {
				s.checkTaskLit(p, site)
				continue
			}
			// A named function launched as a task: its package-level
			// accumulation now runs concurrently with its siblings'.
			if callee := s.funcValueNode(site.arg); callee != nil {
				if cs := s.by[callee]; cs != nil {
					for key, pos := range cs.accumGlobal {
						_ = pos
						p.reportf(site.pos, "floatreduce",
							"%s launches %s, which accumulates into package-level %s; summation order depends on scheduling — accumulate per task and merge deterministically",
							site.via, callee.name(), key)
					}
				}
			}
		}
	}
}

// checkTaskLit scans one task literal for order-sensitive float
// accumulation into shared state.
func (s *summaries) checkTaskLit(p *pass, site taskSite) {
	lit := site.lit
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// A literal nested inside the task still runs under the
			// task's goroutine (or its own); captured-vs-local stays
			// relative to the outer task literal, so keep walking.
			return true
		case *ast.AssignStmt:
			target, ok := floatAccumTarget(p, m)
			if !ok {
				return true
			}
			if _, isIndexed := ast.Unparen(target).(*ast.IndexExpr); isIndexed {
				return true // per-index merge: each task owns its slots
			}
			root := rootIdent(target)
			if root == nil || !capturedByLit(p, lit, root) {
				return true
			}
			p.reportf(m.Pos(), "floatreduce",
				"floating-point accumulation into %s shared across %s tasks; summation order depends on scheduling — accumulate per index (or per task) and merge deterministically",
				types.ExprString(target), site.via)
		case *ast.CallExpr:
			callee := s.graph.calleeOf(p.unit, m)
			if callee == nil {
				return true
			}
			cs := s.by[callee]
			if cs == nil {
				return true
			}
			for idx, pos := range cs.accumPtr {
				if idx >= len(m.Args) {
					continue
				}
				un, ok := ast.Unparen(m.Args[idx]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				root := rootIdent(un.X)
				if root == nil || !capturedByLit(p, lit, root) {
					continue
				}
				_ = pos
				p.reportf(m.Pos(), "floatreduce",
					"%s accumulates through this pointer into %s, captured from outside the %s task; summation order depends on scheduling",
					callee.name(), types.ExprString(un.X), site.via)
			}
			for key := range cs.accumGlobal {
				p.reportf(m.Pos(), "floatreduce",
					"call to %s accumulates into package-level %s from a %s task; summation order depends on scheduling",
					callee.name(), key, site.via)
			}
		}
		return true
	})
}

// funcValueNode resolves a func-valued expression (par.Dynamic(n, w,
// f)'s f, or go f's f) to a same-unit declaration.
func (s *summaries) funcValueNode(e ast.Expr) *funcNode {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if s.p.unit.Info != nil {
			if fn, ok := s.p.unit.Info.Uses[x].(*types.Func); ok {
				return s.graph.byObj[fn]
			}
			return nil
		}
		if cands := s.graph.funcsByName[x.Name]; len(cands) == 1 {
			return cands[0]
		}
	case *ast.SelectorExpr:
		if s.p.unit.Info != nil {
			if fn, ok := s.p.unit.Info.Uses[x.Sel].(*types.Func); ok {
				return s.graph.byObj[fn]
			}
			return nil
		}
		if cands := s.graph.methodsByName[x.Sel.Name]; len(cands) == 1 {
			return cands[0]
		}
	}
	return nil
}

// --- accumulation shapes (shared with summary seeding) -------------------

// floatAccumTarget reports whether the assignment is a floating-point
// reduction step — x += e, x -= e, x *= e, or x = x ± e — returning
// the accumulation target. In typed units the target must have float
// or complex type; heuristic mode accepts any candidate shape (the
// fuzzer only needs crash-safety, and fixtures are typed).
func floatAccumTarget(p *pass, a *ast.AssignStmt) (ast.Expr, bool) {
	if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return nil, false
	}
	lhs := a.Lhs[0]
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
	case token.ASSIGN:
		// x = x + e (or e + x, x - e, x * e): the self-reference is
		// what makes it a reduction.
		bin, ok := ast.Unparen(a.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return nil, false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL:
		default:
			return nil, false
		}
		want := types.ExprString(lhs)
		if types.ExprString(bin.X) != want && types.ExprString(bin.Y) != want {
			return nil, false
		}
	default:
		return nil, false
	}
	if !isFloatExpr(p, lhs) {
		return nil, false
	}
	return lhs, true
}

// isFloatExpr reports whether e has floating-point or complex type;
// without type information every expression qualifies.
func isFloatExpr(p *pass, e ast.Expr) bool {
	if p.unit.Info == nil {
		return true
	}
	tv, ok := p.unit.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

// seedAccum records one function's direct accumulation effects for the
// summary: *p += v through a pointer parameter, and pkgVar += v into a
// package-level variable. Called from seedSummary's frame walk.
func (s *summaries) seedAccum(n *funcNode, sum *funcSummary, a *ast.AssignStmt) {
	target, ok := floatAccumTarget(s.p, a)
	if !ok {
		return
	}
	if star, ok := ast.Unparen(target).(*ast.StarExpr); ok {
		if id, ok := ast.Unparen(star.X).(*ast.Ident); ok {
			if idx, ok := paramIndexOf(s.p, n.decl, id); ok {
				if _, seen := sum.accumPtr[idx]; !seen {
					sum.accumPtr[idx] = a.Pos()
				}
				return
			}
		}
	}
	root := rootIdent(target)
	if root == nil {
		return
	}
	if _, isIndexed := ast.Unparen(target).(*ast.IndexExpr); isIndexed {
		return // per-index stores are the deterministic merge
	}
	if isPkgLevelVar(s.p, root) {
		key := types.ExprString(target)
		if _, seen := sum.accumGlobal[key]; !seen {
			sum.accumGlobal[key] = a.Pos()
		}
	}
}

// paramIndexOf resolves an identifier to its flattened parameter
// position in the declaration, by object when typed and name
// otherwise.
func paramIndexOf(p *pass, fd *ast.FuncDecl, id *ast.Ident) (int, bool) {
	params := fd.Type.Params
	if params == nil {
		return 0, false
	}
	var want types.Object
	if p.unit.Info != nil {
		want = p.unit.Info.Uses[id]
		if want == nil {
			return 0, false
		}
	}
	idx := 0
	for _, field := range params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if want != nil {
				if p.unit.Info.Defs[name] == want {
					return idx, true
				}
			} else if name.Name == id.Name {
				return idx, true
			}
			idx++
		}
	}
	return 0, false
}

// isPkgLevelVar reports whether the identifier names a package-level
// variable (heuristically: any identifier the unit's declarations
// define at file scope, when untyped).
func isPkgLevelVar(p *pass, id *ast.Ident) bool {
	if p.unit.Info != nil {
		obj := p.unit.Info.Uses[id]
		if obj == nil {
			return false
		}
		_, isVar := obj.(*types.Var)
		return isVar && p.unit.Pkg != nil && obj.Parent() == p.unit.Pkg.Scope()
	}
	for _, f := range p.unit.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if name.Name == id.Name {
							return true
						}
					}
				}
			}
		}
	}
	return false
}
