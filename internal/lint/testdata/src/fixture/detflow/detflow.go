// Package detflow is a lint fixture: nondeterminism sources flowing
// into determinism sinks. Violations: map iteration order concatenated
// into a hash input, a wall-clock value hashed through a helper's
// return, os.Getenv into cache-key construction, pointer formatting
// into rng seeding, a select-branch-dependent value into canonical
// JSON, a tainted argument reaching a hash inside a callee, and
// goroutine write order hashed after the join. Negatives: sorted keys,
// rng-drawn values, and map sizes stay deterministic.
package detflow

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"fixture/detflow/internal/rng"
)

// mapOrderHash concatenates keys in map order and hashes the result.
func mapOrderHash(m map[string]int) [32]byte {
	s := ""
	for k := range m {
		s += k
	}
	return sha256.Sum256([]byte(s)) // want detflow (map iteration order)
}

// stamp returns a wall-clock string; the taint rides its return value.
func stamp() string {
	return time.Now().String()
}

// timeHash hashes a time-derived value obtained through a callee.
func timeHash() []byte {
	h := sha256.New()
	h.Write([]byte(stamp())) // want detflow (time, through a return)
	return h.Sum(nil)
}

// envKey builds a cache key from the process environment.
func envKey() string {
	host := os.Getenv("RRS_HOST")
	return cacheKey(host) // want detflow (env into key construction)
}

// cacheKey is a key constructor by naming convention.
func cacheKey(part string) string {
	return "tile|" + part
}

// ptrSeed seeds the module rng from a formatted pointer address.
func ptrSeed(cfg *Stream) *rng.Stream {
	id := fmt.Sprintf("%p", cfg)
	return rng.New(id) // want detflow (%p into rng seeding)
}

// Stream gives ptrSeed something addressable to format.
type Stream struct{ n int }

// selectJSON encodes whichever channel answered first.
func selectJSON(a, b chan int) []byte {
	var picked int
	select {
	case picked = <-a:
	case picked = <-b:
	}
	out, _ := json.Marshal(picked) // want detflow (select branch choice)
	return out
}

// digest hashes its argument: callers with tainted inputs are flagged
// at the call site via the sinkParams summary.
func digest(b []byte) [32]byte {
	return sha256.Sum256(b)
}

// viaHelper reaches the hash one call deep.
func viaHelper(m map[int]int) [32]byte {
	s := ""
	for _, v := range m {
		s += strconv.Itoa(v)
	}
	return digest([]byte(s)) // want detflow (sink inside callee)
}

// goWriteHash hashes a value whose final content depends on which
// goroutine wrote last, even though the join itself is sound.
func goWriteHash() [32]byte {
	last := ""
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		go func(n int) {
			last = strconv.Itoa(n)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	return sha256.Sum256([]byte(last)) // want detflow (goroutine write order)
}

// sortedHash is clean: sorting the keys removes the iteration-order
// dependence before the hash sees them.
func sortedHash(m map[string]int) [32]byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return sha256.Sum256([]byte(strings.Join(keys, ",")))
}

// seededKey is clean: rng draws are deterministic by contract.
func seededKey(s *rng.Stream) string {
	return cacheKey(strconv.FormatUint(s.Next(), 16))
}

// sizeKey is clean: a map's length does not depend on iteration order.
func sizeKey(m map[string]int) string {
	return cacheKey(strconv.Itoa(len(m)))
}

// ignored documents a deliberately wall-clock-stamped debug key.
func ignored() string {
	//lint:ignore detflow debug key is intentionally unique per run
	return cacheKey(stamp())
}
