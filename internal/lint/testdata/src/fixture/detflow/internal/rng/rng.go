// Package rng is the detflow fixture's stand-in for the module's
// seeded generator package: calls into it are rng-seeding sinks, and
// values drawn from it are deterministic by contract.
package rng

// Stream is a deterministic seeded stream.
type Stream struct{ state uint64 }

// New derives a stream from a key.
func New(key string) *Stream {
	s := &Stream{state: 1}
	for i := 0; i < len(key); i++ {
		s.state = s.state*31 + uint64(key[i])
	}
	return s
}

// Next advances the stream.
func (s *Stream) Next() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}
