// Package ignore is a lint fixture for the //lint:ignore directive:
// the first two violations are silenced, the third is not, and the
// malformed directive is itself a finding.
package ignore

func above(x, y float64) bool {
	//lint:ignore floatcmp fixture: exactness is the point here
	return x == y
}

func trailing(x, y float64) bool {
	return x == y //lint:ignore floatcmp fixture: exactness is the point here
}

func unsilenced(x, y float64) bool {
	return x == y // want floatcmp
}

func malformed(x, y float64) bool {
	//lint:ignore floatcmp
	return x == y // want floatcmp (directive above lacks a reason)
}
