// Package clean is a lint fixture that every check must pass.
package clean

import (
	"math"
	"sort"
)

// Within reports |a-b| <= tol, the comparison style the linter wants.
func Within(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// SortedKeys is the blessed deterministic map traversal.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
