// Package par mirrors the module's internal/par launcher surface for
// the floatreduce fixture; the bodies are serial stand-ins — the check
// keys on the launch-site shape, not the execution.
package par

// For splits [0,n) into one chunk per call.
func For(n, workers int, fn func(lo, hi int)) { fn(0, n) }

// ForEach visits every index.
func ForEach(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Dynamic is ForEach with work stealing in the real package.
func Dynamic(n, workers int, fn func(i int)) { ForEach(n, workers, fn) }
