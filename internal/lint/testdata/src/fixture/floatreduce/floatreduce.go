// Package floatreduce is a lint fixture: floating-point accumulation
// whose summation order depends on scheduling. Violations: a captured
// scalar accumulated from a par task, the x = x + e spelling under a
// raw goroutine, a pointer-to-accumulator helper called from a task, a
// named task function that accumulates a package-level total, and a
// literal task reaching that global through a callee. Negatives:
// per-index writes, task-local accumulators with an indexed merge, the
// same helper called serially, and integer counters.
package floatreduce

import "fixture/floatreduce/par"

var gTotal float64

// capturedScalar accumulates into a captured scalar from tasks.
func capturedScalar(v []float64) float64 {
	sum := 0.0
	par.Dynamic(len(v), 4, func(i int) {
		sum += v[i] // want floatreduce (captured +=)
	})
	return sum
}

// goAccum uses the x = x + e spelling under raw goroutines.
func goAccum(xs []float64) float64 {
	total := 0.0
	done := make(chan struct{}, len(xs))
	for _, x := range xs {
		go func() {
			total = total + x // want floatreduce (x = x + e)
			done <- struct{}{}
		}()
	}
	for range xs {
		<-done
	}
	return total
}

// addTo is the pointer-to-accumulator helper; flagged only at task
// call sites, via its summary.
func addTo(p *float64, v float64) {
	*p += v
}

// viaPointerHelper hands a captured accumulator's address to addTo
// from inside a task.
func viaPointerHelper(v []float64) float64 {
	acc := 0.0
	par.For(len(v), 2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			addTo(&acc, v[i]) // want floatreduce (accumulator via pointer)
		}
	})
	return acc
}

// bump accumulates a package-level total.
func bump(i int) {
	gTotal += float64(i)
}

// namedLaunch hands bump itself to the launcher.
func namedLaunch(n int) {
	par.Dynamic(n, 2, bump) // want floatreduce (named task, global +=)
}

// globalFromLit reaches the global accumulator through a callee.
func globalFromLit(n int) {
	par.ForEach(n, 2, func(i int) {
		bump(i) // want floatreduce (callee accumulates global)
	})
}

// perIndex is clean: each task owns its output slot.
func perIndex(v []float64) []float64 {
	out := make([]float64, len(v))
	par.Dynamic(len(v), 4, func(i int) {
		out[i] += v[i] * 2
	})
	return out
}

// blockMerge is clean: a task-local accumulator lands in a per-block
// slot, and the cross-block merge runs serially in index order.
func blockMerge(v []float64) float64 {
	const block = 4
	nb := (len(v) + block - 1) / block
	partial := make([]float64, nb)
	par.Dynamic(nb, 2, func(b int) {
		s := 0.0
		for i := b * block; i < len(v) && i < (b+1)*block; i++ {
			s += v[i]
		}
		partial[b] = s
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}

// serialHelper is clean: addTo outside any task is ordinary code.
func serialHelper(v []float64) float64 {
	acc := 0.0
	for _, x := range v {
		addTo(&acc, x)
	}
	return acc
}

// intCounter is clean for this check: integer addition is associative
// (the race itself is another tool's business).
func intCounter(n int) int {
	cnt := 0
	par.Dynamic(n, 2, func(i int) {
		cnt += i
	})
	return cnt
}

// ignored documents a deliberately tolerant accumulation.
func ignored(v []float64) float64 {
	e := 0.0
	par.Dynamic(len(v), 2, func(i int) {
		//lint:ignore floatreduce diagnostics-only running error estimate
		e += v[i]
	})
	return e
}
