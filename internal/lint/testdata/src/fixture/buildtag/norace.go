//go:build !race

package buildtag

const raceEnabled = false

// use keeps the constant referenced so the fixture type-checks with
// unused-style vet rules too.
var _ = raceEnabled
