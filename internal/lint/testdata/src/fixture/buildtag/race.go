//go:build race

package buildtag

const raceEnabled = true
