// Package floatcmp is a lint fixture: each flagged line deliberately
// violates the floatcmp check; the rest exercise its carve-outs.
package floatcmp

func equalExact(a, b float64) bool { return a == b } // want floatcmp

func notEqual(a, b float64) bool { return a != b } // want floatcmp

func complexEqual(a, b complex128) bool { return a == b } // want floatcmp

func literalCompare(a float64) bool { return a == 1.5 } // want floatcmp

func float32Compare(a, b float32) bool { return a != b } // want floatcmp

func zeroSentinel(a float64) bool { return a == 0 } // ok: exact zero sentinel

func nanTest(a float64) bool { return a != a } // ok: NaN idiom

func intEqual(a, b int) bool { return a == b } // ok: not floating point

// almostEqual is an approved tolerance-helper name, so its exact
// fast path is allowed.
func almostEqual(a, b float64) bool { return a == b || a-b < 1e-12 && b-a < 1e-12 }
