// Package poolbalance is a lint fixture: sync.Pool Get/Put pairings
// the poolbalance dataflow check must classify — two leaks to flag,
// and the legal patterns (defer, per-branch Put, panic paths,
// ownership transfer by return, Put after a loop) it must not.
package poolbalance

import "sync"

var bufs = sync.Pool{New: func() any { return new([]byte) }}

// leakOnEarlyReturn loses the buffer on the early-return path.
func leakOnEarlyReturn(cond bool) {
	b := bufs.Get().(*[]byte) // want poolbalance (early return skips Put)
	if cond {
		return
	}
	bufs.Put(b)
}

// discarded drops the pooled value on the floor immediately.
func discarded() {
	bufs.Get() // want poolbalance (result discarded)
}

// deferred is the canonical legal pattern: Put on every exit via defer.
func deferred() []byte {
	b := bufs.Get().(*[]byte)
	defer bufs.Put(b)
	return append([]byte(nil), *b...)
}

// branches puts on every non-panic path explicitly.
func branches(cond bool) {
	b := bufs.Get().(*[]byte)
	if cond {
		bufs.Put(b)
		return
	}
	bufs.Put(b)
}

// panics may lose the buffer on the panic path; only non-panic paths
// must balance.
func panics(bad bool) {
	b := bufs.Get().(*[]byte)
	if bad {
		panic("bad input")
	}
	bufs.Put(b)
}

// owner hands the pooled value to its caller, which then owns the Put
// (the wrapper idiom fft's getScratch uses).
func owner() *[]byte {
	return bufs.Get().(*[]byte)
}

// loops rounds through a loop before the unconditional Put.
func loops(n int) {
	b := bufs.Get().(*[]byte)
	for i := 0; i < n; i++ {
		*b = append(*b, byte(i))
	}
	bufs.Put(b)
}
