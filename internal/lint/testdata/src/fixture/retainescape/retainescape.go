// Package retainescape is a lint fixture: caller-owned Into/GenerateAt
// destination buffers that must not outlive the call, plus the legal
// write-through patterns and an out-of-contract function the check
// must leave alone.
package retainescape

import "sync"

type sink struct {
	buf  []float64
	rows [][]float64
}

var (
	global []float64
	sends  = make(chan []float64, 1)
	arena  = sync.Pool{New: func() any { return new([]float64) }}
)

// FillInto retains the caller's slice in a struct field.
func (s *sink) FillInto(dst []float64) {
	s.buf = dst // want retainescape (field store)
	for i := range dst {
		dst[i] = 0 // ok: writing through the buffer is the contract
	}
}

// GenerateAtRow retains a reslice in a struct-field table.
func (s *sink) GenerateAtRow(dst []float64, j int) {
	s.rows[j] = dst[:j] // want retainescape (reslice into field element)
}

// PublishInto leaks through a package-level variable via a local alias.
func PublishInto(dst []float64) {
	d := dst
	global = d // want retainescape (alias into package var)
}

// SendInto leaks the buffer to whoever drains the channel.
func SendInto(dst []float64) {
	sends <- dst // want retainescape (channel send)
}

// PoolInto returns the caller's buffer to a pooled arena.
func PoolInto(dst *[]float64) {
	arena.Put(dst) // want retainescape (pooled arena)
}

// CopyInto writes through the destination without retaining it.
func CopyInto(dst, src []float64) {
	copy(dst, src) // ok: pure write access
}

// publish is outside the Into/GenerateAt naming contract; retaining is
// its caller's informed choice, not this check's business.
func publish(dst []float64) {
	global = dst // ok: not a contract-scoped function name
}
