// Package mapordered is a lint fixture: order-dependent work inside
// map iteration.
package mapordered

import (
	"fmt"
	"sort"
)

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want mapordered (append, never sorted)
		out = append(out, k)
	}
	return out
}

func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // ok: collect-then-sort idiom
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func Dump(m map[string]int) {
	for k, v := range m { // want mapordered (output in range)
		fmt.Println(k, v)
	}
}

func Sum(m map[string]int) int {
	t := 0
	for _, v := range m { // ok: order-independent reduction
		t += v
	}
	return t
}
