// Package goleak is a lint fixture: goroutines that must be joined on
// every path out of the launching function — one launch with no join
// at all, one whose join is skipped on an early return, and the legal
// join shapes (WaitGroup, counted channel drain, range over channel).
package goleak

import "sync"

// fireAndForget has no join at all.
func fireAndForget(fn func()) {
	go fn() // want goleak (no join)
}

// condSkip joins only when skip is false.
func condSkip(fn func(), skip bool) {
	done := make(chan struct{})
	go func() { // want goleak (early return skips the join)
		fn()
		close(done)
	}()
	if skip {
		return
	}
	<-done
}

// waited joins through a WaitGroup on every path.
func waited(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
	wg.Wait()
}

// counted launches n workers and drains n completions; the join lives
// in a loop body, which the check credits to the loop's exit edge.
func counted(fn func(), n int) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			fn()
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// ranged drains a channel the goroutine closes.
func ranged(fn func(ch chan<- int)) {
	out := make(chan int)
	go func() {
		fn(out)
		close(out)
	}()
	for range out {
	}
}
