// Package rng is the fixture's stand-in for the module's seeded rng
// package: the one directory seedrand exempts from the import rule.
// The wall-clock-seeding rule still applies inside it.
package rng

import (
	"math/rand"
	"time"
)

// New is the blessed path: a stream pinned to an explicit seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// FromClock defeats the whole point, even from inside the exempt
// package.
func FromClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want seedrand (time seed)
}
