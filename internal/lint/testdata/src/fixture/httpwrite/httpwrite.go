// Package httpwrite is a lint fixture: HTTP handler status-write
// discipline. Violations: a handler path that writes nothing, a double
// status write through two helpers (each innocent alone — only their
// summaries expose the pair), and a body write after an error status
// with a missing return. Negatives: the branch-per-status pattern
// through the same helpers, and a handler whose writer escapes into a
// wrapper (skipped, not guessed at).
package httpwrite

import (
	"fmt"
	"net/http"
)

// writeErr is the package's error-status helper.
func writeErr(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	fmt.Fprintln(w, msg)
}

// writeOK is the package's success helper.
func writeOK(w http.ResponseWriter, body string) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, body)
}

// zero forgets to answer on the fallthrough path.
func zero(w http.ResponseWriter, r *http.Request) { // want httpwrite (silent path)
	if r.URL.Path == "/gone" {
		writeErr(w, http.StatusNotFound, "gone")
	}
}

// double answers twice: writeErr and writeOK each write a status, a
// fact only their summaries carry to this call site.
func double(w http.ResponseWriter, r *http.Request) {
	writeErr(w, http.StatusInternalServerError, "boom")
	writeOK(w, "ok") // want httpwrite (second status write)
}

// tail forgets the return after the error, appending a body to a 400.
func tail(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("q") == "" {
		http.Error(w, "missing q", http.StatusBadRequest)
	}
	fmt.Fprintln(w, "result") // want httpwrite (body after error status)
}

// --- negatives ----------------------------------------------------------

// good uses the same helpers with exactly one status per path.
func good(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("q") == "" {
		writeErr(w, http.StatusBadRequest, "missing q")
		return
	}
	writeOK(w, "ok")
}

// recorder wraps a writer; handlers that do this escape the analysis.
type recorder struct {
	w      http.ResponseWriter
	status int
}

// wrapped hands its writer to a wrapper struct: skipped, no finding —
// even though no write is visible here.
func wrapped(w http.ResponseWriter, r *http.Request) {
	rec := &recorder{w: w}
	_ = rec
}
