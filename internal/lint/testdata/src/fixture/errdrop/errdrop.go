// Package errdrop is a lint fixture: discarded error results from a
// module-internal API.
package errdrop

import (
	"fmt"

	"fixture/errdrop/api"
)

func Use() int {
	api.Do() // want errdrop (statement drop)

	v, _ := api.Make() // want errdrop (blank error)

	_ = api.Do() // want errdrop (blank single)

	defer api.Do() // want errdrop (defer drop)

	w, err := api.Make() // ok: error handled
	if err != nil {
		return v
	}
	fmt.Println() // ok: not a module-internal API
	return v + w
}
