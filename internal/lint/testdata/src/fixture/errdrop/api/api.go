// Package api stands in for a module-internal API whose error results
// must not be dropped.
package api

import "errors"

func Do() error { return errors.New("boom") }

func Make() (int, error) { return 0, errors.New("boom") }
