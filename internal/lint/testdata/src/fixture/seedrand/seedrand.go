// Package seedrand is a lint fixture: math/rand outside internal/rng.
package seedrand

import "math/rand" // want seedrand

// Sample draws from the unseeded global stream — exactly the
// reproducibility hazard the check exists for.
func Sample() float64 { return rand.Float64() }
