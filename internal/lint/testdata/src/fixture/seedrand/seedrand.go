// Package seedrand is a lint fixture: math/rand outside internal/rng,
// plus wall-clock seeding (flagged wherever it appears — the inner
// NewSource carries the finding, not the wrapping New).
package seedrand

import (
	"math/rand" // want seedrand (import outside internal/rng)
	"time"
)

// Sample draws from the unseeded global stream — exactly the
// reproducibility hazard the check exists for.
func Sample() float64 { return rand.Float64() }

// ClockSeeded constructs a different realization every run.
func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want seedrand (time seed)
}

// Reseeded pushes the clock into the global stream.
func Reseeded() {
	rand.Seed(time.Now().Unix()) // want seedrand (time seed)
}

// FixedSeeded is clean apart from the import: the realization is pinned.
func FixedSeeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}
