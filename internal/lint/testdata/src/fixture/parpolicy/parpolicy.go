// Package parpolicy is a lint fixture: raw goroutine fan-out that the
// parpolicy check must flag.
package parpolicy

import "sync"

func fanOut(n int, fn func(int)) {
	var wg sync.WaitGroup // want parpolicy (WaitGroup)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want parpolicy (go statement)
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

func serial(n int, fn func(int)) { // ok: no fan-out
	for i := 0; i < n; i++ {
		fn(i)
	}
}
