// Package lockbalance is a lint fixture: mutex discipline the
// interprocedural lockbalance check must classify. Violations: a Lock
// leaked on an early return, a channel wait while holding, a blocking
// helper called under a deferred unlock (visible only through the
// callee's summary), a recursive acquisition through a method call
// (ditto), and a direct double Lock. Negatives: the defer idiom,
// per-branch unlocks, a select-with-default poll under the lock, and
// re-locking a mutex only after it was released.
package lockbalance

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

var (
	mu sync.Mutex
	rw sync.RWMutex
	ch = make(chan int)
)

// leakOnEarlyReturn leaves mu locked on the early-return path.
func leakOnEarlyReturn(cond bool) {
	mu.Lock() // want lockbalance (early return skips Unlock)
	if cond {
		return
	}
	mu.Unlock()
}

// blockWhileHeld parks on a channel with the lock held.
func blockWhileHeld() {
	mu.Lock()
	<-ch // want lockbalance (channel receive while holding mu)
	mu.Unlock()
}

// blockViaHelper blocks under the lock through a callee: only the
// helper's summary makes sleepALittle's wait visible here.
func blockViaHelper() {
	mu.Lock()
	defer mu.Unlock()
	sleepALittle() // want lockbalance (callee may block, lock held to exit)
}

func sleepALittle() {
	time.Sleep(time.Millisecond)
}

// total re-acquires the receiver's mutex through bump: the deadlock is
// invisible without translating bump's summary onto the call site.
func (c *counter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want lockbalance (bump re-locks c.mu; deadlock)
	return c.n
}

func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// doubleLock locks the same mutex twice on one path.
func doubleLock() {
	mu.Lock()
	mu.Lock() // want lockbalance (mu already held)
	mu.Unlock()
	mu.Unlock()
}

// --- negatives ----------------------------------------------------------

// deferred is the canonical pattern: no blocking, unlock at every exit.
func deferred() int {
	mu.Lock()
	defer mu.Unlock()
	return 1
}

// branches unlocks explicitly on every non-panic path.
func branches(cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
		return
	}
	mu.Unlock()
}

// polls uses a select with default under the lock: a poll, not a park.
func polls() {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		_ = v
	default:
	}
}

// sequential releases before calling a helper that takes the same
// lock: sequential acquisition is fine; only nesting deadlocks.
func sequential() {
	mu.Lock()
	mu.Unlock()
	relock()
}

func relock() {
	mu.Lock()
	defer mu.Unlock()
}

// readers takes and releases the read side; RLock pairs with RUnlock.
func readers() int {
	rw.RLock()
	defer rw.RUnlock()
	return 2
}
