// Package ctxflow is a lint fixture: context threading on request
// paths. Violations: a helper on a handler's call path that blocks
// without accepting a context (reached directly and through a
// pool-submitted closure — both invisible without the call graph), a
// named context parameter that is never used, and a fresh
// context.Background() while a parameter is in scope. Negatives: a
// blocking helper that takes and uses its context, the handler itself
// (it carries *http.Request), and a non-blocking helper with no
// context.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// handle is the request path root.
func handle(w http.ResponseWriter, r *http.Request) {
	render()
	submit(func() {
		slowEncode()
	})
	shaped(r.Context())
	quick()
	_, _ = w.Write([]byte("ok"))
}

// render blocks on a request path with no context parameter: the
// finding needs both reachability from handle and render's own
// summary.
func render() { // want ctxflow (request path, blocks, no ctx)
	time.Sleep(time.Millisecond)
}

// slowEncode is only on the request path through the closure handed to
// submit — reach edges, not just direct calls.
func slowEncode() { // want ctxflow (request path via closure, blocks, no ctx)
	time.Sleep(time.Millisecond)
}

// submit stands in for a worker-pool enqueue; it never blocks.
func submit(f func()) {
	_ = f
}

// dropped takes a deadline and ignores it.
func dropped(ctx context.Context) { // want ctxflow (ctx never used)
	time.Sleep(time.Millisecond)
}

// fresh detaches from the caller's deadline mid-path.
func fresh(ctx context.Context) {
	<-ctx.Done()
	c := context.Background() // want ctxflow (fresh root under a ctx param)
	_ = c
}

// --- negatives ----------------------------------------------------------

// shaped blocks but accepts and uses its context.
func shaped(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(time.Millisecond):
	}
}

// quick is on the request path but never blocks; no context needed.
func quick() int {
	return 3
}

// proxy builds an outbound request while an inbound context is in
// scope but drops it (R4): the dial outlives the caller's deadline.
func proxy(ctx context.Context) {
	req, err := http.NewRequest(http.MethodGet, "http://peer/tile", nil) // want ctxflow (outbound drops inbound ctx)
	if err != nil {
		return
	}
	_ = req
	<-ctx.Done()
}

// proxyShaped is the R4 negative: the outbound request carries the
// inbound context.
func proxyShaped(ctx context.Context) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://peer/tile", nil)
	if err != nil {
		return
	}
	_ = req
	<-ctx.Done()
}
