package lint

// summary.go: per-function effect summaries, propagated bottom-up over
// the call graph's SCC order (callgraph.go). A summary answers, for one
// declared function, the questions the interprocedural passes ask at
// its call sites:
//
//   - may it block? (channel ops, selects without default, sync waits,
//     time.Sleep, network/file I/O — directly or through a same-unit
//     callee)
//   - which locks may it acquire, in caller-translatable form?
//     (receiver-relative keys are canonicalized to "@recv.path" and
//     re-based onto the call site's receiver expression; package-level
//     keys pass through; locks on locals and parameters are dropped —
//     the caller has no name for them)
//   - does it take a context.Context, and does it actually use it?
//   - how many HTTP status writes does it perform through each of its
//     http.ResponseWriter parameters, as a [min, max] range over
//     non-panic paths?
//
// Calls that resolve inside the unit use the callee's summary; calls
// that leave it fall back to a small effect table keyed by package
// path, receiver type, and name (the "library frontier" heuristic).
// When type information is absent (the summary fuzzer feeds parse-only
// sources) every lookup degrades to name/receiver heuristics and the
// builder must still terminate without panicking — FuzzSummary pins
// that.
//
// All summary domains are finite join-semilattices that only grow
// (bools, saturating counters, key sets bounded by the keys printed in
// the package), so the per-SCC fixed-point iteration terminates.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lock acquisition kinds, stored as bits so one key can be taken both
// ways across paths.
const (
	lockExcl   = 1 << iota // Mutex.Lock / RWMutex.Lock
	lockShared             // RWMutex.RLock
)

// blockEvent is one potentially-blocking operation with its witness.
type blockEvent struct {
	pos token.Pos
	why string
}

// rwSummary describes the status writes one function performs through
// one http.ResponseWriter parameter.
type rwSummary struct {
	obj      types.Object // the parameter object (nil without type info)
	index    int          // parameter position in the flattened list
	min, max int          // status writes over non-panic paths, saturated at 2
	unknown  bool         // the writer escaped analysis; range unusable
}

// funcSummary is the effect summary of one declared function.
type funcSummary struct {
	node *funcNode

	blocks   bool
	blockPos token.Pos
	blockWhy string

	// acquires maps canonical lock keys ("@recv.mu", "pkgMu") to the
	// lockExcl/lockShared bits seen anywhere inside, transitively
	// through same-unit callees.
	acquires map[string]int

	hasCtx  bool
	ctxName string // "" when the parameter is unnamed or blank
	ctxPos  token.Pos
	ctxUsed bool

	rws []rwSummary

	// Determinism-taint bits (taint.go): per-result taint the caller
	// inherits, and the parameters that reach a determinism sink
	// inside (transitively) — how detflow sees through helpers.
	taintRets  []*taintVal
	sinkParams map[int]sinkRef

	// Float-accumulation bits (floatreduce.go): pointer-to-float
	// parameters the function accumulates into, and package-level
	// float variables it accumulates into (transitively through
	// same-unit callees). Harmless serially; findings only when such
	// a function runs as a parallel task.
	accumPtr    map[int]token.Pos
	accumGlobal map[string]token.Pos
}

// summaries is the per-unit interprocedural state, built lazily by the
// first pass that needs it and shared by the rest.
type summaries struct {
	p     *pass
	graph *callGraph
	by    map[*funcNode]*funcSummary
	cfgs  map[*funcNode]*cfg
	// taintEnvs holds each function's final taint environment, built
	// alongside the summaries (taint.go) and consumed by detflow.
	taintEnvs map[*funcNode]*taintEnv
	// nonBlockingComm marks channel operations that sit in the comm
	// clause of a select with a default clause: they are polls, not
	// blocking points.
	nonBlockingComm map[ast.Node]bool
}

// summaries returns the unit's summary table, building it on first use.
func (p *pass) summaries() *summaries {
	if p.sums == nil {
		p.sums = buildSummaries(p)
	}
	return p.sums
}

func buildSummaries(p *pass) *summaries {
	s := &summaries{
		p:               p,
		graph:           buildCallGraph(p.unit),
		by:              map[*funcNode]*funcSummary{},
		cfgs:            map[*funcNode]*cfg{},
		taintEnvs:       map[*funcNode]*taintEnv{},
		nonBlockingComm: map[ast.Node]bool{},
	}
	for _, f := range p.unit.Files {
		markNonBlockingComms(f, s.nonBlockingComm)
	}
	for _, n := range s.graph.nodes {
		s.by[n] = s.seedSummary(n)
	}
	// Bottom-up over the condensation: g.sccs is already ordered with
	// callees first. Iterate each component to a fixed point.
	for _, comp := range s.graph.sccs {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if s.joinCallees(n) {
					changed = true
				}
			}
		}
		for _, n := range comp {
			s.by[n].rws = s.statusSummaries(n)
		}
		// Second fixpoint per component: taint return/sink summaries
		// (taint.go) depend on callee taint summaries, which for
		// recursive components grow as this loop iterates.
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if s.computeTaint(n) {
					changed = true
				}
			}
		}
	}
	return s
}

// cfgOf returns the (cached) CFG of a declared function.
func (s *summaries) cfgOf(n *funcNode) *cfg {
	c, ok := s.cfgs[n]
	if !ok {
		c = buildCFG(n.decl.Body)
		s.cfgs[n] = c
	}
	return c
}

// summaryOf looks a summary up by declaration; nil for functions the
// graph does not know (no body).
func (s *summaries) summaryOf(fd *ast.FuncDecl) *funcSummary {
	if n := s.graph.byDecl[fd]; n != nil {
		return s.by[n]
	}
	return nil
}

// markNonBlockingComms records the channel operations inside the comm
// clauses of selects that have a default clause: those are polls.
func markNonBlockingComms(f *ast.File, out map[ast.Node]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cs := range sel.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.SendStmt:
					out[m] = true
				case *ast.UnaryExpr:
					if m.Op == token.ARROW {
						out[m] = true
					}
				}
				return true
			})
		}
		return true
	})
}

// seedSummary computes a function's direct (non-transitive) effects.
func (s *summaries) seedSummary(n *funcNode) *funcSummary {
	sum := &funcSummary{
		node:        n,
		acquires:    map[string]int{},
		accumPtr:    map[int]token.Pos{},
		accumGlobal: map[string]token.Pos{},
	}
	s.seedCtx(n, sum)
	recv := recvName(n.decl)

	// One walk over the frame's own code: defer bodies are part of the
	// frame, other function literals are not.
	s.eachFrameNode(n.decl.Body, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.AssignStmt:
			s.seedAccum(n, sum, m)
		case *ast.SendStmt:
			if !s.nonBlockingComm[m] {
				sum.noteBlock(m.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && !s.nonBlockingComm[m] {
				sum.noteBlock(m.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if s.isChanExpr(m.X) {
				sum.noteBlock(m.X.Pos(), "range over channel")
			}
		case *ast.CallExpr:
			if key, kind, ok := s.p.lockMethodKey(m, lockAcquireMethods); ok {
				if ck, ok := canonicalKey(s.p, key, recv); ok {
					sum.acquires[ck] |= kind
				}
				return
			}
			if why, ok := s.blockingExternal(m); ok {
				sum.noteBlock(m.Pos(), why)
			}
		}
	})
	return sum
}

// noteBlock records a blocking witness, keeping the first one seen.
func (sum *funcSummary) noteBlock(pos token.Pos, why string) {
	if !sum.blocks {
		sum.blocks, sum.blockPos, sum.blockWhy = true, pos, why
	}
}

// joinCallees folds same-unit callee summaries into n's summary along
// sync edges, reporting whether anything changed.
func (s *summaries) joinCallees(n *funcNode) bool {
	sum := s.by[n]
	recv := recvName(n.decl)
	changed := false
	for _, e := range n.sync {
		cs := s.by[e.callee]
		if cs == nil {
			continue
		}
		if cs.blocks && !sum.blocks {
			sum.noteBlock(e.call.Pos(),
				fmt.Sprintf("call to %s, which may block (%s)", e.callee.name(), cs.blockWhy))
			changed = true
		}
		for key, kind := range cs.acquires {
			//lint:ignore detflow lock-key joins are commutative: iteration order cannot change the summary
			ck, ok := translateKey(s.p, key, e.call, recv)
			if !ok {
				continue
			}
			if sum.acquires[ck]&kind != kind {
				sum.acquires[ck] |= kind
				changed = true
			}
		}
		// A caller of a package-level accumulator is itself one: the
		// same global gets a scheduling-ordered term if the caller is
		// ever launched as a task.
		for key, pos := range cs.accumGlobal {
			if _, ok := sum.accumGlobal[key]; !ok {
				sum.accumGlobal[key] = pos
				changed = true
			}
		}
	}
	return changed
}

// eachFrameNode walks body visiting every node that executes on the
// function's own frame: it descends into deferred closures (they run at
// this frame's exits) but not into other function literals.
func (s *summaries) eachFrameNode(body *ast.BlockStmt, fn func(ast.Node)) {
	var walk func(node ast.Node)
	walk = func(node ast.Node) {
		ast.Inspect(node, func(m ast.Node) bool {
			if m == nil {
				return true
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != node {
					return false
				}
			case *ast.DeferStmt:
				fn(m.Call)
				if fl, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(fl)
				}
				for _, a := range m.Call.Args {
					walk(a)
				}
				return false
			}
			fn(m)
			return true
		})
	}
	walk(body)
}

// frameBlocking reports the first blocking effect inside one CFG atom,
// using callee summaries for same-unit calls and the effect table for
// the frontier. Used by lockbalance's while-held scan.
func (s *summaries) frameBlocking(atom ast.Node) (token.Pos, string, bool) {
	var pos token.Pos
	var why string
	found := false
	note := func(p token.Pos, w string) {
		if !found {
			pos, why, found = p, w, true
		}
	}
	probe := func(m ast.Node) {
		switch m := m.(type) {
		case *ast.SendStmt:
			if !s.nonBlockingComm[m] {
				note(m.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && !s.nonBlockingComm[m] {
				note(m.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if s.isChanExpr(m.X) {
				note(m.X.Pos(), "range over channel")
			}
		case *ast.CallExpr:
			if callee := s.graph.calleeOf(s.p.unit, m); callee != nil {
				if cs := s.by[callee]; cs != nil && cs.blocks {
					note(m.Pos(), fmt.Sprintf("call to %s, which may block (%s)", callee.name(), cs.blockWhy))
				}
				return
			}
			if w, ok := s.blockingExternal(m); ok {
				note(m.Pos(), w)
			}
		}
	}
	if _, ok := atom.(*ast.DeferStmt); ok {
		// A deferred call runs at exit, when the lock is (for a
		// non-deferred release) no longer held; do not scan it.
		return 0, "", false
	}
	inspectShallow(atom, func(m ast.Node) bool {
		probe(m)
		return !found
	})
	return pos, why, found
}

// seedCtx records whether the function takes a context.Context and
// whether the parameter is referenced anywhere in the body (closures
// included: a captured ctx is a used ctx).
func (s *summaries) seedCtx(n *funcNode, sum *funcSummary) {
	params := n.decl.Type.Params
	if params == nil {
		return
	}
	idx := 0
	var obj types.Object
	for _, field := range params.List {
		names := field.Names
		isCtx := s.isContextType(field.Type)
		if len(names) == 0 {
			if isCtx {
				sum.hasCtx = true
				sum.ctxPos = field.Pos()
			}
			idx++
			continue
		}
		for _, id := range names {
			if isCtx {
				sum.hasCtx = true
				sum.ctxPos = id.Pos()
				if id.Name != "_" {
					sum.ctxName = id.Name
					if s.p.unit.Info != nil {
						obj = s.p.unit.Info.Defs[id]
					}
				}
			}
			idx++
		}
	}
	if sum.ctxName == "" {
		return
	}
	ast.Inspect(n.decl.Body, func(m ast.Node) bool {
		if sum.ctxUsed {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok || id.Name != sum.ctxName {
			return true
		}
		if obj != nil {
			if s.p.unit.Info != nil && s.p.unit.Info.Uses[id] == obj {
				sum.ctxUsed = true
			}
			return true
		}
		sum.ctxUsed = true // heuristic mode: same name counts
		return true
	})
}

// isContextType reports whether the type expression denotes
// context.Context, through types when available, textually otherwise.
func (s *summaries) isContextType(t ast.Expr) bool {
	if s.p.unit.Info != nil {
		if tv, ok := s.p.unit.Info.Types[t]; ok && tv.Type != nil {
			return isNamedType(tv.Type, "context", "Context")
		}
	}
	sel, ok := ast.Unparen(t).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// isChanExpr reports whether e has channel type (false without info).
func (s *summaries) isChanExpr(e ast.Expr) bool {
	if s.p.unit.Info == nil {
		return false
	}
	tv, ok := s.p.unit.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// --- lock keys ----------------------------------------------------------

// lockAcquireMethods / lockReleaseMethods map method names to kinds.
var lockAcquireMethods = map[string]int{"Lock": lockExcl, "RLock": lockShared}
var lockReleaseMethods = map[string]int{"Unlock": lockExcl, "RUnlock": lockShared}

// lockMethodKey resolves call as a sync.Mutex/sync.RWMutex method from
// the given name set, returning the printed receiver expression that
// keys Lock/Unlock matching. Without type information it falls back to
// the method name alone (fuzzing, heuristic mode).
func (p *pass) lockMethodKey(call *ast.CallExpr, methods map[string]int) (string, int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	kind, ok := methods[sel.Sel.Name]
	if !ok {
		return "", 0, false
	}
	if p.unit.Info != nil {
		if fn, ok := p.unit.Info.Uses[sel.Sel].(*types.Func); ok {
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil ||
				!(isSyncType(sig.Recv().Type(), "Mutex") || isSyncType(sig.Recv().Type(), "RWMutex")) {
				return "", 0, false
			}
			return types.ExprString(sel.X), kind, true
		}
		// Typed unit but unresolved selector (embedded locker, field of
		// an error type): stay quiet rather than guess.
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

// recvName returns the receiver identifier of a method declaration, or
// "" for functions and unnamed receivers.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// canonicalKey rewrites a frame-local lock key into caller-translatable
// form: keys rooted at the receiver become "@recv...", keys rooted at a
// package-level variable pass through, everything else (locals,
// parameters) is dropped — callers have no stable name for those.
func canonicalKey(p *pass, key, recv string) (string, bool) {
	base, rest, _ := strings.Cut(key, ".")
	if recv != "" && base == recv {
		if rest == "" {
			return "@recv", true
		}
		return "@recv." + rest, true
	}
	if p.unit.Info == nil {
		return key, true // heuristic mode: keep everything
	}
	// Keep the key only when its base resolves to a package-level var.
	obj := p.unit.Pkg.Scope().Lookup(base)
	if _, ok := obj.(*types.Var); ok {
		return key, true
	}
	return "", false
}

// translateKey rebases a callee's canonical key onto the caller's
// frame at one call site, then re-canonicalizes it for the caller.
func translateKey(p *pass, key string, call *ast.CallExpr, callerRecv string) (string, bool) {
	if !strings.HasPrefix(key, "@recv") {
		return key, true // package-level: same var in the same package
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false // f() with receiver-relative effects: untranslatable
	}
	base := types.ExprString(sel.X)
	return canonicalKey(p, base+key[len("@recv"):], callerRecv)
}

// --- the external effect table ------------------------------------------

// blockingExternal classifies a call that does not resolve inside the
// unit: may it block? The table covers the sync waits, timers, and
// network/file I/O the serving stack actually calls; module-internal
// cross-package calls get a name heuristic (internal/par's joins and
// pool/server lifecycle methods).
func (s *summaries) blockingExternal(call *ast.CallExpr) (string, bool) {
	p := s.p
	var name, pkgPath, recvType string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
		if p.unit.Info != nil {
			if fn, ok := p.unit.Info.Uses[fun].(*types.Func); ok && fn.Pkg() != nil {
				pkgPath = fn.Pkg().Path()
			}
		}
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if p.unit.Info != nil {
			if fn, ok := p.unit.Info.Uses[fun.Sel].(*types.Func); ok {
				if fn.Pkg() != nil {
					pkgPath = fn.Pkg().Path()
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					recvType = typeBaseName(sig.Recv().Type())
				}
			} else if _, isPkg := p.unit.Info.Uses[fun.Sel].(*types.Builtin); isPkg {
				return "", false
			}
		}
	default:
		return "", false
	}

	untyped := p.unit.Info == nil || pkgPath == ""
	switch {
	case name == "Wait":
		// Any Wait method: sync.WaitGroup, sync.Cond, errgroup-style
		// collectors, exec.Cmd. Waiting is the point of the name.
		if recvType != "" {
			return fmt.Sprintf("(%s).Wait", recvType), true
		}
		return "a Wait call", true
	case pkgPath == "time" && name == "Sleep":
		return "time.Sleep", true
	case untyped && name == "Sleep":
		return "a Sleep call", true
	case pkgPath == "sync" && recvType == "Once" && name == "Do":
		return "sync.Once.Do (waits for a concurrent first call)", true
	case pkgPath == "io" && (name == "ReadAll" || name == "Copy" || name == "CopyN" ||
		name == "CopyBuffer" || name == "ReadFull"):
		return "io." + name, true
	case pkgPath == "os" && (name == "Open" || name == "OpenFile" || name == "Create" ||
		name == "ReadFile" || name == "WriteFile" || name == "ReadDir"):
		return "os." + name, true
	case pkgPath == "net" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") ||
		name == "Accept"):
		return "net." + name, true
	case pkgPath == "net/http" && (name == "Serve" || strings.HasPrefix(name, "ListenAndServe") ||
		name == "Shutdown" || name == "Do" || name == "Get" || name == "Post" ||
		name == "PostForm" || name == "Head"):
		if recvType != "" {
			return fmt.Sprintf("(net/http.%s).%s", recvType, name), true
		}
		return "net/http." + name, true
	case strings.HasPrefix(pkgPath, p.modPath+"/") || pkgPath == p.modPath:
		// Sibling module package: summaries stop at the unit boundary,
		// so fall back to the names of the module's known joiners.
		switch name {
		case "For", "ForEach", "Dynamic", "Close", "Shutdown", "Serve", "Join", "Drain", "Submit":
			return fmt.Sprintf("%s.%s (module helper that joins or blocks)", pkgPath, name), true
		}
	}
	return "", false
}

// typeBaseName unwraps pointers and returns the named type's name.
func typeBaseName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isNamedType reports whether t is the named type pkg.name (possibly
// behind a pointer).
func isNamedType(t types.Type, pkg, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}
