package lint

// lockbalance: discipline for sync.Mutex / sync.RWMutex. Three rules,
// the last two interprocedural through the summary table (summary.go):
//
//  1. balance — every Lock/RLock is matched by an Unlock/RUnlock of the
//     same lock expression on every non-panic path to return. A
//     deferred release discharges the obligation for all paths below
//     its registration, exactly like poolbalance's deferred Put.
//  2. no blocking while held — between an acquisition and its
//     (non-deferred) release, no atom may block: channel operations
//     (unless polled in a select with default), waits, sleeps, I/O, or
//     a call to a same-unit function whose summary says it may block.
//     A deferred release never ends the held region — the lock is held
//     to function exit, so everything after `defer mu.Unlock()` is
//     scanned.
//  3. no recursive acquisition — while a lock is held, neither this
//     frame nor (through the call graph) any same-frame callee may
//     acquire the same lock again; sync mutexes are not reentrant and
//     recursive RLock deadlocks once a writer queues. The callee check
//     compares the callee's canonical acquire keys, translated onto
//     the call site, against the held lock's canonical key — this is
//     the finding an intra-procedural scan cannot see.

import (
	"go/ast"
	"go/token"
)

func runLockbalance(p *pass) {
	s := p.summaries()
	for _, n := range s.graph.nodes {
		p.lockCheckBody(s, s.cfgOf(n), recvName(n.decl))
	}
	// Function literals get the same frame rules; there is no receiver
	// to canonicalize against, so rule 3 only sees package-level locks.
	for _, f := range p.unit.Files {
		ast.Inspect(f, func(m ast.Node) bool {
			if fl, ok := m.(*ast.FuncLit); ok {
				p.lockCheckBody(s, buildCFG(fl.Body), "")
			}
			return true
		})
	}
}

// lockCheckBody applies all three rules to one function body.
func (p *pass) lockCheckBody(s *summaries, c *cfg, recv string) {
	for _, blk := range c.blocks {
		for i, atom := range blk.nodes {
			if _, ok := atom.(*ast.DeferStmt); ok {
				continue // a deferred acquisition is not this frame's entry
			}
			inspectShallow(atom, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				key, kind, ok := p.lockMethodKey(call, lockAcquireMethods)
				if !ok {
					return true
				}
				method := "Lock"
				if kind == lockShared {
					method = "RLock"
				}
				if c.leaks(blk, i+1, p.releaseSatisfier(key, kind), p.loopReleases(key, kind)) {
					p.reportf(call.Pos(), "lockbalance",
						"%s.%s may not be released on some path to return; unlock on every non-panic path (a deferred release counts)",
						key, method)
				}
				p.scanHeld(s, c, blk, i+1, key, kind, recv, call.Pos())
				return true
			})
		}
	}
}

// releaseSatisfier builds the leaks() predicate: does this atom release
// (key, kind) on the current frame? Deferred releases count — they run
// at every exit below their registration — including releases inside a
// deferred closure.
func (p *pass) releaseSatisfier(key string, kind int) func(ast.Node) bool {
	return func(atom ast.Node) bool {
		return p.containsRelease(atom, key, kind)
	}
}

// loopReleases is the loop policy for leaks(): a loop discharges the
// obligation when a matching release appears anywhere in it, mirroring
// poolbalance's loop-join policy (trip counts are opaque statically).
func (p *pass) loopReleases(key string, kind int) func(ast.Stmt) bool {
	return func(st ast.Stmt) bool {
		return p.containsRelease(st, key, kind)
	}
}

// containsRelease scans nd for an Unlock/RUnlock of key on this frame:
// shallow over function literals, except deferred ones, which run on
// the frame at exit.
func (p *pass) containsRelease(nd ast.Node, key string, kind int) bool {
	found := false
	var walk func(node ast.Node)
	walk = func(node ast.Node) {
		ast.Inspect(node, func(m ast.Node) bool {
			if found {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != node {
					return false
				}
			case *ast.DeferStmt:
				walk(m.Call)
				if fl, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(fl.Body)
				}
				return false
			case *ast.CallExpr:
				if k, kd, ok := p.lockMethodKey(m, lockReleaseMethods); ok && k == key && kd == kind {
					found = true
				}
			}
			return !found
		})
	}
	walk(nd)
	return found
}

// scanHeld walks the CFG forward from just after an acquisition until
// the matching non-deferred release on each path, flagging blocking
// atoms (rule 2) and re-acquisitions of the same lock, direct or
// through a same-unit callee's summary (rule 3). Panic successors are
// excused; reaching exit still holding is rule 1's business.
func (p *pass) scanHeld(s *summaries, c *cfg, start *block, startIdx int, key string, kind int, recv string, lockPos token.Pos) {
	heldCanon, haveCanon := canonicalKey(p, key, recv)
	lockLine := p.fset.Position(lockPos).Line
	type workItem struct {
		blk *block
		idx int
	}
	visited := map[*block]bool{start: true}
	stack := []workItem{{start, startIdx}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		released := false
		for i := it.idx; i < len(it.blk.nodes); i++ {
			atom := it.blk.nodes[i]
			if _, ok := atom.(*ast.DeferStmt); ok {
				continue // runs at exit; never ends or blocks the held region
			}
			inspectShallow(atom, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if k, kd, ok := p.lockMethodKey(call, lockReleaseMethods); ok && k == key && kd == kind {
					released = true
					return false
				}
				if k, _, ok := p.lockMethodKey(call, lockAcquireMethods); ok && k == key {
					p.reportf(call.Pos(), "lockbalance",
						"%s acquired again while already held (locked at line %d); sync mutexes are not reentrant",
						key, lockLine)
					return true
				}
				if !haveCanon {
					return true
				}
				if callee := s.graph.calleeOf(p.unit, call); callee != nil {
					if cs := s.by[callee]; cs != nil {
						for acqKey := range cs.acquires {
							//lint:ignore detflow lock-key translation order is irrelevant: every match reports the same held key
							if tk, ok := translateKey(p, acqKey, call, recv); ok && tk == heldCanon {
								p.reportf(call.Pos(), "lockbalance",
									"call to %s re-acquires %s, held since line %d; deadlock",
									callee.name(), key, lockLine)
								break
							}
						}
					}
				}
				return true
			})
			if released {
				break
			}
			if pos, why, ok := s.frameBlocking(atom); ok {
				p.reportf(pos, "lockbalance",
					"blocking operation (%s) while %s is held (locked at line %d); release before blocking",
					why, key, lockLine)
			}
		}
		if released {
			continue
		}
		for _, succ := range it.blk.succs {
			if succ.kind == blockBody && !visited[succ] {
				visited[succ] = true
				stack = append(stack, workItem{succ, 0})
			}
		}
	}
}
