package lint

// goleak: every goroutine launched outside internal/par must have a
// join edge — a WaitGroup-style Wait, a channel receive, or a
// range-over-channel drain — on every non-panic path from the launch
// to the function's return. This subsumes and extends parpolicy:
// parpolicy says raw fan-out belongs in internal/par as a matter of
// policy (and is silenced in stress tests that deliberately hammer
// shared state), while goleak checks the thing that actually corrupts
// statistics — a goroutine that outlives its launcher keeps writing
// into buffers the caller has already handed to a pool or reused.
//
// Join events on a path:
//
//   - a call to any method named Wait (sync.WaitGroup, errgroup-style
//     collectors), directly or inside a registered defer
//   - a channel receive expression `<-ch` (including in select comm
//     clauses and if-statement initializers)
//   - a loop that performs one of the above in its body, credited to
//     the loop's exit edge (the `for i := 0; i < n; i++ { <-done }`
//     collect idiom; trip counts are opaque to the CFG)
//   - ranging over a channel
//
// internal/par itself is exempt: it is the one place that is allowed
// to own goroutine lifecycles, and its For/ForEach/Dynamic all join
// via WaitGroup before returning anyway.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func runGoleak(p *pass) {
	if p.unit.Dir == "internal/par" {
		return
	}
	p.eachFuncBody(func(body *ast.BlockStmt) {
		c := buildCFG(body)
		for _, blk := range c.blocks {
			for i, n := range blk.nodes {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					continue
				}
				if c.leaks(blk, i+1, p.joinEvent, p.loopJoins) {
					p.reportf(g.Go, "goleak",
						"goroutine may have no join on some path to return; add a WaitGroup.Wait or channel receive on every exit")
				}
			}
		}
	})
}

// joinEvent reports whether atom n joins a goroutine: a receive
// expression or a Wait method call. Defers are searched in full (a
// registered `defer wg.Wait()` guards every exit); other atoms stop at
// function literals.
func (p *pass) joinEvent(n ast.Node) bool {
	walk := inspectShallow
	if _, ok := n.(*ast.DeferStmt); ok {
		walk = func(n ast.Node, f func(ast.Node) bool) {
			ast.Inspect(n, func(m ast.Node) bool { return m == nil || f(m) })
		}
	}
	found := false
	walk(n, func(m ast.Node) bool {
		if isJoinExpr(m) {
			found = true
		}
		return !found
	})
	return found
}

// isJoinExpr recognizes the two expression-level join forms.
func isJoinExpr(m ast.Node) bool {
	switch m := m.(type) {
	case *ast.UnaryExpr:
		return m.Op == token.ARROW
	case *ast.CallExpr:
		sel, ok := m.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Wait"
	}
	return false
}

// loopJoins decides whether the loop headed by s discharges the join
// obligation for every path through it: ranging over a channel blocks
// until the goroutine closes it, and a receive or Wait in the body is
// the counted-collect idiom whose trip count the CFG cannot see.
func (p *pass) loopJoins(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.RangeStmt:
		if tv, ok := p.unit.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return true
			}
		}
		return p.bodyJoins(s.Body)
	case *ast.ForStmt:
		return p.bodyJoins(s.Body)
	}
	return false
}

func (p *pass) bodyJoins(body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(m ast.Node) bool {
		if isJoinExpr(m) {
			found = true
		}
		return !found
	})
	return found
}
