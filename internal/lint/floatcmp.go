package lint

// floatcmp: exact ==/!= between floating-point or complex operands.
// De Castro et al. show how silent statistical-pipeline mistakes skew
// surface statistics; exact float equality is the classic one. What
// stays legal: comparison against an exact constant zero (the "field
// unset" sentinel used throughout the scene specs), the x != x NaN
// test, the internal/approx package (the one blessed home of float
// comparison), and comparisons inside tolerance helpers themselves
// (functions whose name says approx/almost/close/within/toler).

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// approvedCmpFunc names functions allowed to compare floats exactly:
// the tolerance helpers and equality shims the rest of the code is
// told to use instead.
var approvedCmpFunc = regexp.MustCompile(`(?i)(approx|almost|close|within|toler)`)

func runFloatcmp(p *pass) {
	if p.unit.Dir == "internal/approx" {
		return
	}
	for _, f := range p.unit.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && approvedCmpFunc.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				tx := p.unit.Info.Types[be.X]
				ty := p.unit.Info.Types[be.Y]
				if !isFloatish(tx.Type) && !isFloatish(ty.Type) {
					return true
				}
				if isZeroConst(tx.Value) || isZeroConst(ty.Value) {
					return true // exact sentinel against representable zero
				}
				if types.ExprString(be.X) == types.ExprString(be.Y) {
					return true // x != x NaN test
				}
				p.reportf(be.OpPos, "floatcmp",
					"exact %s between floating-point/complex values; compare against a tolerance instead", be.Op)
				return true
			})
		}
	}
}

func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}
