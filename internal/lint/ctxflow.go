package lint

// ctxflow: context.Context discipline on the serving stack's request
// paths. Three rules over the summary table (summary.go):
//
//   R1 — a named context parameter that the body never references is a
//        dropped deadline: the caller believes cancellation propagates
//        and it does not. (An interface-mandated parameter can be
//        declared `_ context.Context`, which documents the drop.)
//   R2 — calling context.Background() or context.TODO() while a
//        context parameter is in scope detaches the work from the
//        caller's deadline; derive from the parameter instead
//        (context.WithoutCancel for intentionally-detached shutdown
//        work).
//   R3 — a function reachable from an HTTP handler (over reach edges,
//        so a closure handed to the render pool still counts) whose
//        summary says it may block must accept a context.Context.
//        Handlers themselves are exempt: they carry *http.Request and
//        get their context from r.Context(). This is the
//        interprocedural rule — whether a function is on a request
//        path and whether it transitively blocks are both call-graph
//        facts.
//   R4 — an outbound HTTP request built while an inbound context is
//        available (a context parameter, or *http.Request in a
//        handler) must carry it: http.NewRequest and the package-level
//        http.Get/Post/Head/PostForm all attach context.Background(),
//        so the proxied dial outlives the client that asked for it.
//        Use http.NewRequestWithContext.

import "go/ast"

func runCtxflow(p *pass) {
	s := p.summaries()
	for _, n := range s.graph.nodes {
		sum := s.by[n]
		if sum.ctxName != "" && !sum.ctxUsed {
			p.reportf(sum.ctxPos, "ctxflow",
				"context parameter %q is never used; thread it into blocking calls, or declare it _ to document the drop",
				sum.ctxName)
		}
		if hasInbound := sum.hasCtx || s.isHandlerDecl(n); hasInbound {
			ast.Inspect(n.decl.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sum.hasCtx {
					if name, ok := pkgCallName(p, call, "context", "Background", "TODO"); ok {
						p.reportf(call.Pos(), "ctxflow",
							"context.%s() while a context parameter is in scope; derive from it (context.WithoutCancel for detached work)",
							name)
					}
				}
				if name, ok := pkgCallName(p, call, "net/http", "NewRequest", "Get", "Post", "Head", "PostForm"); ok {
					p.reportf(call.Pos(), "ctxflow",
						"outbound http.%s drops the inbound context (it attaches context.Background()); use http.NewRequestWithContext",
						name)
				}
				return true
			})
		}
	}

	var roots []*funcNode
	for _, n := range s.graph.nodes {
		if s.isHandlerDecl(n) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return
	}
	reachable := s.graph.reachableFrom(roots)
	for _, n := range s.graph.nodes { // declaration order, not map order
		if !reachable[n] || s.isHandlerDecl(n) {
			continue
		}
		sum := s.by[n]
		if sum.blocks && !sum.hasCtx {
			p.reportf(n.decl.Name.Pos(), "ctxflow",
				"%s is on a request path and may block (%s) but takes no context.Context",
				n.name(), sum.blockWhy)
		}
	}
}
