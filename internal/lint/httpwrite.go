package lint

// httpwrite: every handler path writes exactly one HTTP status. The
// engine is the ResponseWriter dataflow in status.go; this pass points
// it at handler-shaped declarations ((http.ResponseWriter,
// *http.Request) parameters) and turns definite violations into
// findings:
//
//   - zero-write  — some non-panic path returns without a status or
//     body write; the client hangs on an implicit 200-with-no-body or
//     the middleware records nothing.
//   - double write — a second status write on a path that has already
//     written one (WriteHeader after WriteHeader, or two status-writing
//     helpers — the latter is invisible without callee summaries).
//   - body-after-error — a body write after an error status helper
//     (http.Error, WriteHeader(5xx), a helper called with an error
//     code): the error payload has been sent; the extra body corrupts
//     it.
//
// Handlers whose writer escapes the model (stored, captured by a
// closure, deferred, passed as a ResponseWriter to an unresolved
// callee) are skipped, not guessed at — the middleware-wrapper pattern
// in internal/service does exactly that on purpose.

import (
	"go/token"
	"go/types"
)

func runHttpwrite(p *pass) {
	s := p.summaries()
	for _, n := range s.graph.nodes {
		if !s.isHandlerDecl(n) {
			continue
		}
		node := n
		s.eachRWParam(node, func(a *rwAnalysis) {
			a.scanEscapes()
			if a.escaped {
				return
			}
			rep := &rwReporter{
				double: func(pos token.Pos) {
					p.reportf(pos, "httpwrite",
						"second status write on a path that already wrote one; each request gets exactly one status")
				},
				bodyAfter: func(pos token.Pos) {
					p.reportf(pos, "httpwrite",
						"body write after an error status; the error payload is already sent")
				},
				zeroExit: func() {
					p.reportf(node.decl.Name.Pos(), "httpwrite",
						"%s has a path that returns without writing a status or body", node.name())
				},
			}
			a.walk(s.cfgOf(node), rep)
		})
	}
}

// isHandlerDecl reports whether the declaration is handler-shaped: it
// takes both an http.ResponseWriter and a *http.Request.
func (s *summaries) isHandlerDecl(n *funcNode) bool {
	params := n.decl.Type.Params
	if params == nil {
		return false
	}
	hasRW, hasReq := false, false
	for _, field := range params.List {
		if s.isResponseWriterType(field.Type) {
			hasRW = true
		}
		if s.isRequestPtrType(field.Type) {
			hasReq = true
		}
	}
	return hasRW && hasReq
}

// eachRWParam invokes fn with a fresh analysis for every named,
// non-blank http.ResponseWriter parameter of n.
func (s *summaries) eachRWParam(n *funcNode, fn func(a *rwAnalysis)) {
	params := n.decl.Type.Params
	if params == nil {
		return
	}
	for _, field := range params.List {
		if !s.isResponseWriterType(field.Type) {
			continue
		}
		for _, id := range field.Names {
			if id.Name == "_" {
				continue
			}
			var obj types.Object
			if s.p.unit.Info != nil {
				obj = s.p.unit.Info.Defs[id]
			}
			fn(&rwAnalysis{s: s, body: n.decl.Body, obj: obj, name: id.Name})
		}
	}
}
