package lint

// mapordered: Go map iteration order is deliberately randomized, so a
// range over a map that appends to a slice or writes output produces a
// different artifact every run — poison for the deterministic figure
// and stats emission this repo promises. The one blessed idiom is
// collect-then-sort: appending inside the range is fine when the
// target slice is later passed to sort.* / slices.Sort* in the same
// function.

import (
	"go/ast"
	"go/types"
	"strings"
)

// outputMethods are receiver methods that externalize data.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true,
}

func runMapordered(p *pass) {
	for _, f := range p.unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				p.checkFuncBody(body)
			}
			return true
		})
	}
}

func (p *pass) checkFuncBody(body *ast.BlockStmt) {
	sorted := sortedSliceNames(body)
	inspectShallow(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv := p.unit.Info.Types[rs.X]
		if tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		p.checkMapRange(rs, sorted)
		return true
	})
}

// sortedSliceNames collects identifiers passed to sort.* or
// slices.Sort* anywhere in the function body.
func sortedSliceNames(body *ast.BlockStmt) map[string]bool {
	names := map[string]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		arg := call.Args[0]
		// Unwrap sort.Sort(byLen(s)) style single-argument wrappers.
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			arg = inner.Args[0]
		}
		if id, ok := arg.(*ast.Ident); ok {
			names[id.Name] = true
		}
		return true
	})
	return names
}

func (p *pass) checkMapRange(rs *ast.RangeStmt, sorted map[string]bool) {
	reported := false
	inspectShallow(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(n.Lhs) {
					continue
				}
				if id, ok := baseIdent(n.Lhs[i]); ok && sorted[id] {
					continue // collect-then-sort idiom
				}
				p.reportf(rs.For, "mapordered",
					"appending to a slice in map iteration order; sort the slice (or the keys) for deterministic output")
				reported = true
			}
		case *ast.CallExpr:
			if name, ok := outputCall(p, n); ok {
				p.reportf(rs.For, "mapordered",
					"%s inside map iteration emits nondeterministic order; iterate sorted keys", name)
				reported = true
			}
		}
		return true
	})
}

func isBuiltinAppend(p *pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := p.unit.Info.Uses[id].(*types.Builtin)
	return builtin
}

func baseIdent(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// outputCall recognizes fmt print calls and Write/Encode-style method
// calls, the ways a map range leaks its order into artifacts.
func outputCall(p *pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if fn, ok := p.unit.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "fmt." + fn.Name(), true
	}
	if outputMethods[sel.Sel.Name] {
		if _, isMethod := p.unit.Info.Selections[sel]; isMethod {
			return sel.Sel.Name, true
		}
	}
	return "", false
}
