package lint

// taint.go: the determinism-taint engine behind detflow (and the
// shared source matchers seedrand's time-seed rule reuses). The repo's
// contract — content-addressed scene IDs, golden tile SHAs, seed-for-
// seed bit-identical noise — makes "deterministic" a semantic property
// of values, so this file models it as a taint lattice:
//
//	sources     — where nondeterminism enters a function: map (and
//	              sync.Map) iteration order, time.Now/Since/Until,
//	              global math/rand, os.Environ/Getenv/LookupEnv,
//	              pointer formatting (%p), the branch choice of a
//	              multi-way select, and writes to captured scalars
//	              from go/par-launched task literals (scheduling
//	              decides the final value).
//	propagation — flow-insensitive over assignments, range bindings,
//	              composite/binary expressions and call results. Calls
//	              resolved inside the unit use the callee's taint
//	              summary (which return positions carry a source, and
//	              which parameters flow to them); frontier calls
//	              conservatively map any tainted argument (or
//	              receiver) to a tainted result.
//	sanitizers  — sort.*/slices.* calls (a sorted collection no longer
//	              depends on insertion or iteration order), values
//	              drawn from internal/rng (explicitly seeded streams
//	              are the repo's definition of deterministic), and
//	              len/cap (the size of a map is stable even when its
//	              order is not).
//	sinks       — where nondeterminism becomes a broken contract:
//	              hash inputs (crypto/*, hash/*), canonical JSON and
//	              binary encoding, internal/rng seeding, tile encoding
//	              (internal/render), grid sample buffers (stores into
//	              a Grid's Data), and cache-key/ID construction
//	              (functions whose name ends in Key or ID).
//
// Each taint value is a pair: an optional source witness (kind + site,
// first one seen wins so reports are deterministic) and the set of
// parameter indices whose taint would flow here. The parameter half is
// what makes the analysis interprocedural in both directions: returns
// export "param i taints result j" facts to callers, and sink scans
// export "param i reaches a hash input" facts (sinkParams), so a
// tainted argument three helpers above the hash call is still caught —
// at the call site, where the fix belongs.
//
// The per-function environments are built inside buildSummaries'
// bottom-up SCC fixpoint, so recursion terminates for the usual
// reason: every domain here is a finite join-semilattice that only
// grows. Heuristic (Info == nil) mode degrades to name-keyed
// environments and textual matchers; FuzzTaint pins that the builder
// and both passes survive arbitrary parseable input there.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maxTaintIters bounds the intra-procedural fixpoint; the environment
// only grows, so the bound is a belt-and-braces guard for pathological
// (fuzzed) inputs, not a correctness requirement.
const maxTaintIters = 64

// taintFact is the provenance of one nondeterministic value.
type taintFact struct {
	why string // source kind, e.g. "map iteration order"
	pos token.Pos
}

// taintVal is the lattice value of one expression or variable: an
// optional source witness plus the parameter indices whose taint would
// flow here. Join is witness-preserving union.
type taintVal struct {
	fact   *taintFact
	params map[int]bool
}

// joinTaint returns the join of a and b, reusing a when possible.
func joinTaint(a, b *taintVal) *taintVal {
	if b == nil {
		return a
	}
	if a == nil {
		return &taintVal{fact: b.fact, params: copyIntSet(b.params)}
	}
	if a.fact == nil {
		a.fact = b.fact
	}
	for i := range b.params {
		if a.params == nil {
			a.params = map[int]bool{}
		}
		a.params[i] = true
	}
	return a
}

func copyIntSet(s map[int]bool) map[int]bool {
	if len(s) == 0 {
		return nil
	}
	out := make(map[int]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// taintValEq compares the lattice bits the fixpoint watches.
func taintValEq(a, b *taintVal) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if (a.fact == nil) != (b.fact == nil) || len(a.params) != len(b.params) {
		return false
	}
	for i := range a.params {
		if !b.params[i] {
			return false
		}
	}
	return true
}

// sinkRef records that a parameter reaches one determinism sink.
type sinkRef struct {
	what string // sink description, e.g. "hash input"
	pos  token.Pos
}

// taintFinding is one detflow diagnostic, collected during summary
// construction and reported by runDetflow in source order.
type taintFinding struct {
	pos token.Pos
	msg string
}

// taintEnv is the flow-insensitive taint environment of one function,
// keyed by types.Object in typed units and by identifier spelling in
// heuristic mode.
type taintEnv struct {
	s *summaries
	n *funcNode

	vals      map[any]*taintVal
	sanitized map[any]bool
	paramIdx  map[any]int // flattened parameter positions

	findings []taintFinding
	reported map[string]bool // pos/sink dedup
	sinks    map[int]sinkRef // parameter -> sink it reaches
}

// keyOf resolves an identifier to its environment key, nil for blanks
// and unresolvable names.
func (e *taintEnv) keyOf(id *ast.Ident) any {
	if id == nil || id.Name == "_" {
		return nil
	}
	if info := e.s.p.unit.Info; info != nil {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return nil
	}
	return id.Name
}

// rootIdent unwraps selectors, indexes, stars and parens down to the
// base identifier an lvalue or value expression hangs off.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// computeTaint (re)builds n's taint environment against the current
// callee summaries and refreshes the taint bits of n's own summary,
// reporting whether they changed — the per-SCC fixpoint driver.
func (s *summaries) computeTaint(n *funcNode) bool {
	e := &taintEnv{
		s:         s,
		n:         n,
		vals:      map[any]*taintVal{},
		sanitized: map[any]bool{},
		paramIdx:  map[any]int{},
		reported:  map[string]bool{},
		sinks:     map[int]sinkRef{},
	}
	e.indexParams()
	e.seed()
	for i := 0; i < maxTaintIters && e.propagate(); i++ {
	}
	e.scanSinks()
	rets := e.deriveRets()

	sum := s.by[n]
	changed := len(rets) != len(sum.taintRets) || len(e.sinks) != len(sum.sinkParams)
	if !changed {
		for i := range rets {
			if !taintValEq(rets[i], sum.taintRets[i]) {
				changed = true
				break
			}
		}
		for i := range e.sinks {
			if _, ok := sum.sinkParams[i]; !ok {
				changed = true
				break
			}
		}
	}
	sum.taintRets = rets
	sum.sinkParams = e.sinks
	s.taintEnvs[n] = e
	return changed
}

// indexParams maps parameter objects (or names) to their flattened
// positions, the coordinate system taint summaries speak.
func (e *taintEnv) indexParams() {
	params := e.n.decl.Type.Params
	if params == nil {
		return
	}
	idx := 0
	for _, field := range params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, id := range field.Names {
			if key := e.keyOf(id); key != nil {
				e.paramIdx[key] = idx
			}
			idx++
		}
	}
}

// seed walks the whole body once, recording binding-shaped sources
// (map ranges, select branches, goroutine writes) and the sanitized
// set. Expression-shaped sources (time.Now() and friends) are matched
// lazily by exprTaint.
func (e *taintEnv) seed() {
	ast.Inspect(e.n.decl.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.RangeStmt:
			if e.isMapExpr(m.X) {
				fact := &taintFact{why: "map iteration order", pos: m.For}
				e.taintLHS(m.Key, &taintVal{fact: fact})
				e.taintLHS(m.Value, &taintVal{fact: fact})
			}
		case *ast.SelectStmt:
			e.seedSelect(m)
		case *ast.CallExpr:
			if e.isSyncMapRange(m) {
				if lit, ok := ast.Unparen(m.Args[0]).(*ast.FuncLit); ok {
					fact := &taintFact{why: "sync.Map iteration order", pos: m.Pos()}
					for _, field := range lit.Type.Params.List {
						for _, id := range field.Names {
							e.taintLHS(id, &taintVal{fact: fact})
						}
					}
				}
			}
			if name, ok := sanitizerCall(e.s.p, m); ok && len(m.Args) > 0 {
				if root := rootIdent(m.Args[0]); root != nil {
					if key := e.keyOf(root); key != nil {
						_ = name
						e.sanitized[key] = true
					}
				}
			}
		}
		return true
	})
	// Writes to captured scalars from task goroutines: the scheduler
	// decides which write lands last, so the value it leaves behind is
	// tainted everywhere.
	for _, site := range taskSites(e.s.p, e.n.decl.Body) {
		if site.lit == nil {
			continue
		}
		lit := site.lit
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			a, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range a.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || !e.capturedBy(lit, id) {
					continue
				}
				e.taintLHS(id, &taintVal{fact: &taintFact{
					why: "unjoined-goroutine write order", pos: a.Pos()}})
			}
			return true
		})
	}
}

// seedSelect taints every variable assigned under a multi-way select:
// which branch ran — and therefore which assignment happened — is the
// runtime's choice.
func (e *taintEnv) seedSelect(sel *ast.SelectStmt) {
	var comms []*ast.CommClause
	for _, cs := range sel.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
			comms = append(comms, cc)
		}
	}
	if len(comms) < 2 {
		return
	}
	for _, cc := range comms {
		fact := &taintFact{why: "select branch choice", pos: cc.Pos()}
		ast.Inspect(cc, func(m ast.Node) bool {
			if a, ok := m.(*ast.AssignStmt); ok {
				for _, lhs := range a.Lhs {
					e.taintLHS(lhs, &taintVal{fact: fact})
				}
			}
			return true
		})
	}
}

// propagate runs one transfer pass over every assignment-shaped node
// in the body (closures included — they share the enclosing frame's
// objects), reporting whether the environment grew.
func (e *taintEnv) propagate() bool {
	changed := false
	ast.Inspect(e.n.decl.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Rhs) == 1 && len(m.Lhs) > 1 {
				v := e.exprTaint(m.Rhs[0])
				for _, lhs := range m.Lhs {
					if e.taintLHS(lhs, v) {
						changed = true
					}
				}
				break
			}
			for i, lhs := range m.Lhs {
				if i >= len(m.Rhs) {
					break
				}
				if e.taintLHS(lhs, e.exprTaint(m.Rhs[i])) {
					changed = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range m.Names {
				var v *taintVal
				if len(m.Values) == 1 && len(m.Names) > 1 {
					v = e.exprTaint(m.Values[0])
				} else if i < len(m.Values) {
					v = e.exprTaint(m.Values[i])
				}
				if e.taintLHS(name, v) {
					changed = true
				}
			}
		case *ast.RangeStmt:
			if v := e.exprTaint(m.X); v != nil {
				if e.taintLHS(m.Key, v) {
					changed = true
				}
				if e.taintLHS(m.Value, v) {
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// taintLHS joins v into the environment entry of the lvalue's root
// identifier, refusing blanks and sanitized variables.
func (e *taintEnv) taintLHS(lhs ast.Expr, v *taintVal) bool {
	if lhs == nil || v == nil {
		return false
	}
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	key := e.keyOf(root)
	if key == nil || e.sanitized[key] {
		return false
	}
	old := e.vals[key]
	merged := joinTaint(old, v)
	if taintValEq(old, merged) && old != nil {
		e.vals[key] = merged
		return false
	}
	e.vals[key] = merged
	return true
}

// exprTaint computes the taint of one expression under the current
// environment; nil means clean.
func (e *taintEnv) exprTaint(expr ast.Expr) *taintVal {
	switch x := expr.(type) {
	case nil:
		return nil
	case *ast.Ident:
		key := e.keyOf(x)
		if key == nil || e.sanitized[key] {
			return nil
		}
		var out *taintVal
		if v := e.vals[key]; v != nil {
			out = joinTaint(out, v)
		}
		if idx, ok := e.paramIdx[key]; ok {
			out = joinTaint(out, &taintVal{params: map[int]bool{idx: true}})
		}
		return out
	case *ast.ParenExpr:
		return e.exprTaint(x.X)
	case *ast.StarExpr:
		return e.exprTaint(x.X)
	case *ast.UnaryExpr:
		return e.exprTaint(x.X)
	case *ast.BinaryExpr:
		return joinTaint(e.exprTaint(x.X), e.exprTaint(x.Y))
	case *ast.SelectorExpr:
		return e.exprTaint(x.X)
	case *ast.IndexExpr:
		return joinTaint(e.exprTaint(x.X), e.exprTaint(x.Index))
	case *ast.SliceExpr:
		return e.exprTaint(x.X)
	case *ast.TypeAssertExpr:
		return e.exprTaint(x.X)
	case *ast.KeyValueExpr:
		return e.exprTaint(x.Value)
	case *ast.CompositeLit:
		var out *taintVal
		for _, elt := range x.Elts {
			out = joinTaint(out, e.exprTaint(elt))
		}
		return out
	case *ast.CallExpr:
		return e.callTaint(x)
	}
	return nil
}

// callTaint models one call: sources introduce taint, sanitizers and
// seeded-rng values clear it, in-unit callees apply their summaries,
// and the frontier conservatively maps tainted inputs to tainted
// outputs.
func (e *taintEnv) callTaint(call *ast.CallExpr) *taintVal {
	p := e.s.p
	// Conversions pass taint through unchanged.
	if p.unit.Info != nil {
		if tv, ok := p.unit.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			return e.exprTaint(call.Args[0])
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if isBuiltinName(p, id) {
			switch id.Name {
			case "len", "cap", "make", "new", "min", "max":
				return nil // a map's size is stable even when its order is not
			}
			var out *taintVal
			for _, a := range call.Args {
				out = joinTaint(out, e.exprTaint(a))
			}
			return out
		}
	}
	if why, ok := taintSourceCall(p, call); ok {
		return &taintVal{fact: &taintFact{why: why, pos: call.Pos()}}
	}
	if _, ok := sanitizerCall(p, call); ok {
		return nil
	}
	if isModulePkgCall(p, call, "internal/rng") {
		return nil // explicitly seeded streams are deterministic by contract
	}
	if callee := e.s.graph.calleeOf(p.unit, call); callee != nil {
		cs := e.s.by[callee]
		if cs == nil {
			return nil
		}
		var out *taintVal
		for _, ret := range cs.taintRets {
			if ret == nil {
				continue
			}
			if ret.fact != nil {
				out = joinTaint(out, &taintVal{fact: ret.fact})
			}
			for pi := range ret.params {
				if pi < len(call.Args) {
					out = joinTaint(out, e.exprTaint(call.Args[pi]))
				}
			}
		}
		return out
	}
	// Frontier: any tainted argument (or receiver) taints the result.
	var out *taintVal
	for _, a := range call.Args {
		out = joinTaint(out, e.exprTaint(a))
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		out = joinTaint(out, e.exprTaint(sel.X))
	}
	return out
}

// scanSinks walks every call (and grid-buffer store) in the body,
// turning tainted-with-witness sink arguments into findings and
// tainted-from-parameter ones into sinkParams entries for callers.
func (e *taintEnv) scanSinks() {
	ast.Inspect(e.n.decl.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if what, ok := classifySink(e.s.p, m); ok {
				for _, arg := range m.Args {
					e.sinkArg(arg, what, arg.Pos(), "")
				}
				return true
			}
			// A callee whose summary says some parameter reaches a sink:
			// check the matching arguments here, where the taint is.
			if callee := e.s.graph.calleeOf(e.s.p.unit, m); callee != nil {
				if cs := e.s.by[callee]; cs != nil {
					for pi, ref := range cs.sinkParams {
						if pi < len(m.Args) {
							e.sinkArg(m.Args[pi], ref.what, m.Pos(),
								fmt.Sprintf(" via call to %s", callee.name()))
						}
					}
				}
			}
		case *ast.AssignStmt:
			e.scanGridStore(m)
		}
		return true
	})
}

// sinkArg classifies one value arriving at a sink.
func (e *taintEnv) sinkArg(arg ast.Expr, what string, pos token.Pos, via string) {
	v := e.exprTaint(arg)
	if v == nil {
		return
	}
	if v.fact != nil {
		e.report(pos, fmt.Sprintf(
			"nondeterministic value (%s) flows into %s%s; sort, seed via internal/rng, or make the input deterministic",
			v.fact.why, what, via))
	}
	for pi := range v.params {
		if _, seen := e.sinks[pi]; !seen {
			e.sinks[pi] = sinkRef{what: what, pos: pos}
		}
	}
}

// scanGridStore flags tainted stores into a Grid's sample buffer
// (g.Data[i] = v with Grid from internal/grid): generated samples must
// be pure functions of (scene, seed, window).
func (e *taintEnv) scanGridStore(a *ast.AssignStmt) {
	info := e.s.p.unit.Info
	if info == nil {
		return
	}
	for i, lhs := range a.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Data" {
			continue
		}
		tv, ok := info.Types[sel.X]
		if !ok || tv.Type == nil || !isModuleNamedType(e.s.p, tv.Type, "internal/grid") {
			continue
		}
		var v *taintVal
		if len(a.Rhs) == 1 {
			v = e.exprTaint(a.Rhs[0])
		} else if i < len(a.Rhs) {
			v = e.exprTaint(a.Rhs[i])
		}
		if v != nil && v.fact != nil {
			e.report(lhs.Pos(), fmt.Sprintf(
				"nondeterministic value (%s) stored into a grid sample buffer; samples must be pure functions of (scene, seed, window)",
				v.fact.why))
		}
	}
}

func (e *taintEnv) report(pos token.Pos, msg string) {
	key := fmt.Sprintf("%d:%s", pos, msg)
	if e.reported[key] {
		return
	}
	e.reported[key] = true
	e.findings = append(e.findings, taintFinding{pos: pos, msg: msg})
}

// deriveRets computes the taint of each result position from the
// frame's return statements (closures excluded — their returns are
// theirs).
func (e *taintEnv) deriveRets() []*taintVal {
	results := e.n.decl.Type.Results
	if results == nil {
		return nil
	}
	nres := 0
	for _, field := range results.List {
		if len(field.Names) == 0 {
			nres++
		} else {
			nres += len(field.Names)
		}
	}
	if nres == 0 {
		return nil
	}
	rets := make([]*taintVal, nres)
	var walk func(node ast.Node)
	walk = func(node ast.Node) {
		ast.Inspect(node, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				switch {
				case len(m.Results) == 0:
					// Naked return: named results carry the values.
					idx := 0
					for _, field := range results.List {
						for _, id := range field.Names {
							if idx < nres {
								rets[idx] = joinTaint(rets[idx], e.exprTaint(id))
							}
							idx++
						}
					}
				case len(m.Results) == nres:
					for i, res := range m.Results {
						rets[i] = joinTaint(rets[i], e.exprTaint(res))
					}
				case len(m.Results) == 1:
					// return f() splat: smear the call's taint everywhere.
					v := e.exprTaint(m.Results[0])
					for i := range rets {
						rets[i] = joinTaint(rets[i], v)
					}
				}
			}
			return true
		})
	}
	walk(e.n.decl.Body)
	return rets
}

// capturedBy reports whether the identifier refers to a variable
// declared outside the function literal (captured state shared with
// the launching frame, or package level).
func (e *taintEnv) capturedBy(lit *ast.FuncLit, id *ast.Ident) bool {
	return capturedByLit(e.s.p, lit, id)
}

func capturedByLit(p *pass, lit *ast.FuncLit, id *ast.Ident) bool {
	if id == nil || id.Name == "_" {
		return false
	}
	if info := p.unit.Info; info != nil {
		obj := info.Uses[id]
		if obj == nil {
			// Defined at this very site (:=) — local to the literal.
			return false
		}
		if obj.Parent() == p.unit.Pkg.Scope() {
			return true
		}
		return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
	}
	return !litDeclares(lit, id.Name)
}

// litDeclares reports whether the literal's parameters or body declare
// name — the heuristic-mode stand-in for scope resolution.
func litDeclares(lit *ast.FuncLit, name string) bool {
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, id := range field.Names {
				if id.Name == name {
					return true
				}
			}
		}
	}
	found := false
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.AssignStmt:
			if m.Tok == token.DEFINE {
				for _, lhs := range m.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range m.Names {
				if id.Name == name {
					found = true
				}
			}
		case *ast.RangeStmt:
			if m.Tok == token.DEFINE {
				for _, x := range []ast.Expr{m.Key, m.Value} {
					if id, ok := x.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// isMapExpr reports whether e has map type (false without type info).
func (e *taintEnv) isMapExpr(x ast.Expr) bool {
	info := e.s.p.unit.Info
	if info == nil {
		return false
	}
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isSyncMapRange matches m.Range(func(k, v any) bool { ... }) on a
// sync.Map receiver.
func (e *taintEnv) isSyncMapRange(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" || len(call.Args) != 1 {
		return false
	}
	info := e.s.p.unit.Info
	if info == nil {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && typeBaseName(sig.Recv().Type()) == "Map"
}

// --- shared call matchers ------------------------------------------------

// pkgCallName resolves a call to a package-level function of pkgPath,
// returning its name when it is one of names — through go/types when
// the unit is typed, and by the package identifier's spelling (the
// path's last element) otherwise. Shared by ctxflow's Background/TODO
// matcher, detflow's source matchers, and seedrand's time-seed rule.
func pkgCallName(p *pass, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	match := func(name string) (string, bool) {
		for _, want := range names {
			if name == want {
				return name, true
			}
		}
		return "", false
	}
	if pkg, name, ok := pkgFuncName(p, call); ok {
		if pkg != pkgPath {
			return "", false
		}
		return match(name)
	}
	if p.unit.Info != nil {
		return "", false // typed unit, not a package-level call
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	last := pkgPath
	if i := strings.LastIndexByte(pkgPath, '/'); i >= 0 {
		last = pkgPath[i+1:]
	}
	if !ok || id.Name != last {
		return "", false
	}
	return match(sel.Sel.Name)
}

// taintSourceCall classifies expression-shaped nondeterminism sources.
func taintSourceCall(p *pass, call *ast.CallExpr) (string, bool) {
	if name, ok := pkgCallName(p, call, "time", "Now", "Since", "Until"); ok {
		return "time." + name, true
	}
	if name, ok := pkgCallName(p, call, "os", "Environ", "Getenv", "LookupEnv", "Hostname", "Getpid"); ok {
		return "os." + name, true
	}
	if pkg, _, ok := pkgFuncName(p, call); ok && (pkg == "math/rand" || pkg == "math/rand/v2") {
		return "global " + pkg, true
	}
	if p.unit.Info == nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "rand" {
				return "global math/rand", true
			}
		}
	}
	// Pointer formatting: fmt.Sprintf("%p", x) and friends bake an
	// ASLR-randomized address into a string.
	if name, ok := pkgCallName(p, call, "fmt", "Sprintf", "Sprint", "Appendf", "Errorf"); ok {
		if len(call.Args) > 0 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok &&
				lit.Kind == token.STRING && strings.Contains(lit.Value, "%p") {
				return "pointer formatting (%p) in fmt." + name, true
			}
		}
	}
	return "", false
}

// sanitizerCall matches order-erasing calls: anything in sort or
// slices (Sort*, Compact, etc. — their outputs no longer depend on
// insertion or iteration order).
func sanitizerCall(p *pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkg, name, ok := pkgFuncName(p, call); ok {
		if pkg == "sort" || pkg == "slices" {
			return pkg + "." + name, true
		}
		return "", false
	}
	if p.unit.Info == nil {
		if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
			return id.Name + "." + sel.Sel.Name, true
		}
	}
	return "", false
}

// isModulePkgCall reports whether the call resolves into a module
// package whose import path ends with suffix (e.g. "internal/rng"),
// methods included.
func isModulePkgCall(p *pass, call *ast.CallExpr, suffix string) bool {
	if p.unit.Info != nil {
		var fn *types.Func
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			fn, _ = p.unit.Info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			fn, _ = p.unit.Info.Uses[fun.Sel].(*types.Func)
		}
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		pkg := fn.Pkg().Path()
		return strings.HasSuffix(pkg, "/"+suffix) || pkg == suffix
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			last := suffix
			if i := strings.LastIndexByte(suffix, '/'); i >= 0 {
				last = suffix[i+1:]
			}
			return id.Name == last
		}
	}
	return false
}

// isModuleNamedType reports whether t is a named type (possibly behind
// a pointer) declared in a module package whose path ends with suffix.
func isModuleNamedType(p *pass, t types.Type, suffix string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && strings.HasSuffix(pkg.Path(), suffix)
}

// isBuiltinName reports whether the identifier resolves to a builtin
// (textually, for heuristic mode).
func isBuiltinName(p *pass, id *ast.Ident) bool {
	if p.unit.Info != nil {
		_, ok := p.unit.Info.Uses[id].(*types.Builtin)
		return ok
	}
	switch id.Name {
	case "len", "cap", "make", "new", "append", "copy", "min", "max", "delete", "clear":
		return true
	}
	return false
}

// --- sinks ---------------------------------------------------------------

// classifySink reports whether the call is a determinism sink and what
// kind: a place where a nondeterministic input breaks a repo contract.
func classifySink(p *pass, call *ast.CallExpr) (string, bool) {
	var name, pkgPath, recvPath string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
		if p.unit.Info != nil {
			if fn, ok := p.unit.Info.Uses[fun].(*types.Func); ok && fn.Pkg() != nil {
				pkgPath = fn.Pkg().Path()
			}
		}
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if p.unit.Info != nil {
			if fn, ok := p.unit.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
				pkgPath = fn.Pkg().Path()
			}
			// A method reached through an embedded interface resolves to
			// the embedding package (hash.Hash.Write is io.Writer.Write);
			// the receiver's named type carries the package that matters.
			if tv, ok := p.unit.Info.Types[fun.X]; ok && tv.Type != nil {
				t := tv.Type
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
					recvPath = named.Obj().Pkg().Path()
				}
			}
		} else if id, ok := fun.X.(*ast.Ident); ok {
			// Heuristic mode: trust the package identifier's spelling.
			switch id.Name {
			case "sha256", "sha1", "sha512", "md5", "fnv", "crc32", "crc64", "maphash":
				pkgPath = "hash/" + id.Name
			case "json":
				pkgPath = "encoding/json"
			case "binary":
				pkgPath = "encoding/binary"
			case "rng":
				pkgPath = "internal/rng"
			case "render":
				pkgPath = "internal/render"
			}
		}
	default:
		return "", false
	}

	if what, ok := sinkForPkg(pkgPath, name); ok {
		return what, true
	}
	if what, ok := sinkForPkg(recvPath, name); ok {
		return what, true
	}
	if strings.HasSuffix(name, "Key") || strings.HasSuffix(name, "ID") {
		// Cache-key/ID construction by naming convention: tileKey,
		// cacheKey, sceneID — module code addressed by these strings.
		return "cache-key/ID construction", true
	}
	return "", false
}

// sinkForPkg applies the package-based sink rules to one resolved
// import path (the callee's own, or its receiver's).
func sinkForPkg(pkgPath, name string) (string, bool) {
	switch {
	case pkgPath == "hash" || strings.HasPrefix(pkgPath, "hash/") ||
		strings.HasPrefix(pkgPath, "crypto/"):
		return "hash input", true
	case pkgPath == "encoding/json" && (name == "Marshal" || name == "MarshalIndent" || name == "Encode"):
		return "canonical JSON encoding", true
	case pkgPath == "encoding/binary" && (strings.HasPrefix(name, "Write") ||
		strings.HasPrefix(name, "Put") || strings.HasPrefix(name, "Append") || name == "Encode"):
		return "binary encoding", true
	case strings.HasSuffix(pkgPath, "internal/rng") || pkgPath == "internal/rng":
		return "rng seeding", true
	case strings.HasSuffix(pkgPath, "internal/render") || pkgPath == "internal/render":
		return "tile encoding", true
	}
	return "", false
}

// --- task launch sites ---------------------------------------------------

// taskSite is one place a function hands work to another goroutine: a
// go statement or a func argument to a module par launcher.
type taskSite struct {
	lit *ast.FuncLit  // the task body, when launched as a literal
	arg ast.Expr      // the launched expression (named funcs included)
	pos token.Pos     // launch site
	via string        // "go statement" or the launcher call's name
	par *ast.CallExpr // the launcher call, nil for go statements
}

// parLauncherNames are the fan-out entry points of the module's par
// package (and the name-heuristic fallback for untyped units).
var parLauncherNames = map[string]bool{
	"For": true, "ForEach": true, "Dynamic": true,
	"Submit": true, "TrySubmit": true, "Background": true, "Go": true,
}

// taskSites collects every goroutine launch under root: go statements
// and func-valued arguments to internal/par launchers.
func taskSites(p *pass, root ast.Node) []taskSite {
	var sites []taskSite
	ast.Inspect(root, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			site := taskSite{arg: m.Call.Fun, pos: m.Pos(), via: "go statement"}
			if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
				site.lit = lit
			}
			sites = append(sites, site)
		case *ast.CallExpr:
			if !isParLauncher(p, m) {
				return true
			}
			for _, a := range m.Args {
				au := ast.Unparen(a)
				if lit, ok := au.(*ast.FuncLit); ok {
					sites = append(sites, taskSite{lit: lit, arg: a, pos: m.Pos(), via: launcherName(m), par: m})
					continue
				}
				switch au.(type) {
				case *ast.Ident, *ast.SelectorExpr:
					if isFuncValued(p, au) {
						sites = append(sites, taskSite{arg: au, pos: m.Pos(), via: launcherName(m), par: m})
					}
				}
			}
		}
		return true
	})
	return sites
}

// isParLauncher matches calls into a module-internal package named
// par (For/ForEach/Dynamic/Pool.Submit/...), the only blessed fan-out
// path (parpolicy enforces that part).
func isParLauncher(p *pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !parLauncherNames[sel.Sel.Name] {
		return false
	}
	if p.unit.Info != nil {
		fn, ok := p.unit.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		path := fn.Pkg().Path()
		inModule := path == p.modPath || strings.HasPrefix(path, p.modPath+"/")
		return inModule && (strings.HasSuffix(path, "/par") || path == "par")
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "par"
}

func launcherName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return "par." + sel.Sel.Name
	}
	return "par launcher"
}

// isFuncValued reports whether the expression has function type (true
// by shape in heuristic mode — the launcher arg position implies it).
func isFuncValued(p *pass, e ast.Expr) bool {
	if p.unit.Info == nil {
		return true
	}
	tv, ok := p.unit.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}
