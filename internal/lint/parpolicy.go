package lint

// parpolicy: the repo's documented rule that parallelism policy lives
// in one place — internal/par. Raw go statements and sync.WaitGroup
// declarations anywhere else are flagged; worker-count decisions,
// chunking, and joins must route through par.For/par.ForEach.
// Concurrency *tests* that deliberately hammer shared state from raw
// goroutines silence the check with //lint:ignore parpolicy <reason>.

import (
	"go/ast"
	"go/types"
)

func runParpolicy(p *pass) {
	if p.unit.Dir == "internal/par" {
		return
	}
	for _, f := range p.unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.reportf(n.Go, "parpolicy",
					"raw go statement outside internal/par; route fan-out through par.For/par.ForEach")
			case *ast.Ident:
				if obj, ok := p.unit.Info.Defs[n].(*types.Var); ok && isSyncType(obj.Type(), "WaitGroup") {
					p.reportf(n.Pos(), "parpolicy",
						"sync.WaitGroup outside internal/par; parallelism policy lives in internal/par")
				}
			}
			return true
		})
	}
}
