package lint

// Program loading. The linter type-checks every package under the
// module root using only the standard library: go/parser for syntax,
// go/types for semantics, and go/importer's "source" mode for
// dependencies outside the module (the standard library itself). This
// keeps rrslint free of module dependencies, per the repo's
// no-new-deps policy.
//
// Each directory yields up to two lint units:
//
//   - the primary unit: the package's compiled files merged with its
//     in-package _test.go files (test code is linted too — that is
//     where float comparisons and stray math/rand imports live);
//   - an external-test unit (package foo_test), type-checked against
//     the primary unit so test helpers exported via export_test.go
//     patterns resolve.
//
// Import resolution for sibling module packages type-checks only the
// non-test files, memoized per loader, so units see the same package
// identity the compiler does.

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Unit is one type-checked lint target.
type Unit struct {
	Dir   string // module-relative directory, "" for the module root
	Name  string // package name as written in the source
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// srcFile is one parsed source file.
type srcFile struct {
	path string
	name string // file name only
	pkg  string // package clause
	test bool   // *_test.go
	file *ast.File
}

type loader struct {
	root    string // absolute module root
	modPath string
	fset    *token.FileSet
	std     types.ImporterFrom
	memo    map[string]*types.Package // import path -> non-test package
	loading map[string]bool           // cycle detection
	parsed  map[string][]srcFile      // dir -> parse results
}

func newLoader(root, modPath string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &loader{
		root:    abs,
		modPath: modPath,
		fset:    fset,
		std:     std,
		memo:    map[string]*types.Package{},
		loading: map[string]bool{},
		parsed:  map[string][]srcFile{},
	}, nil
}

// moduleRel maps an import path inside the module to a module-relative
// directory ("" for the root package).
func (l *loader) moduleRel(path string) (string, bool) {
	if path == l.modPath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// importPath is the inverse of moduleRel.
func (l *loader) importPath(rel string) string {
	if rel == "" {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	rel, ok := l.moduleRel(path)
	if !ok {
		return l.std.ImportFrom(path, dir, mode)
	}
	if pkg, ok := l.memo[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(rel)
	if err != nil {
		return nil, err
	}
	var compiled []*ast.File
	for _, sf := range files {
		if !sf.test && !strings.HasSuffix(sf.pkg, "_test") {
			compiled = append(compiled, sf.file)
		}
	}
	if len(compiled) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files for import %q", path)
	}
	pkg, _, err := l.typeCheck(path, compiled, l, false)
	if err != nil {
		return nil, err
	}
	l.memo[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file in the module-relative directory rel,
// memoized so lint units and import resolution share one AST per file.
func (l *loader) parseDir(rel string) ([]srcFile, error) {
	if files, ok := l.parsed[rel]; ok {
		return files, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []srcFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !buildOK(f) {
			continue
		}
		files = append(files, srcFile{
			path: path,
			name: name,
			pkg:  f.Name.Name,
			test: strings.HasSuffix(name, "_test.go"),
			file: f,
		})
	}
	l.parsed[rel] = files
	return files, nil
}

// buildOK reports whether the file's //go:build constraint (if any) is
// satisfied under the default build configuration the linter models:
// the host GOOS/GOARCH and Go release tags are true, feature tags such
// as "race" are false. Files excluded by their constraint (e.g. the
// race/!race constant pairs some tests use) must not be merged into
// one lint unit — the compiler never sees them together either.
func buildOK(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed constraint: let go/types complain
			}
			return expr.Eval(func(tag string) bool {
				if tag == runtime.GOOS || tag == runtime.GOARCH {
					return true
				}
				return strings.HasPrefix(tag, "go1")
			})
		}
	}
	return true
}

// typeCheck runs go/types over files using imp for imports. withInfo
// selects whether expression/object facts are recorded (lint units
// need them; import resolution does not).
func (l *loader) typeCheck(path string, files []*ast.File, imp types.ImporterFrom, withInfo bool) (*types.Package, *types.Info, error) {
	var info *types.Info
	if withInfo {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// override resolves one import path to a fixed package (the merged
// package-under-test for external _test units) and defers everything
// else to the loader.
type override struct {
	l    *loader
	path string
	pkg  *types.Package
}

func (o override) Import(path string) (*types.Package, error) {
	return o.ImportFrom(path, o.l.root, 0)
}

func (o override) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == o.path {
		return o.pkg, nil
	}
	return o.l.ImportFrom(path, dir, mode)
}

// discoverDirs lists every module-relative directory containing Go
// files, skipping VCS internals, testdata fixtures, and hidden or
// underscore-prefixed directories, per the go tool's conventions.
func (l *loader) discoverDirs() ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := d.Name()
			if path != l.root && (base == "testdata" || base == ".git" ||
				strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			rel, err := filepath.Rel(l.root, filepath.Dir(path))
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			seen[filepath.ToSlash(rel)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for rel := range seen {
		dirs = append(dirs, rel)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// dirSelected reports whether rel is included by the patterns: exact
// module-relative directories, or subtree patterns ending in "/...".
// An empty pattern list selects everything.
func dirSelected(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if sub, ok := strings.CutSuffix(p, "..."); ok {
			sub = strings.TrimSuffix(sub, "/")
			if sub == "" || rel == sub || strings.HasPrefix(rel, sub+"/") {
				return true
			}
			continue
		}
		if rel == p {
			return true
		}
	}
	return false
}

// units loads and type-checks every lint unit selected by patterns.
func (l *loader) units(patterns []string) ([]*Unit, error) {
	dirs, err := l.discoverDirs()
	if err != nil {
		return nil, err
	}
	var units []*Unit
	for _, rel := range dirs {
		if !dirSelected(rel, patterns) {
			continue
		}
		files, err := l.parseDir(rel)
		if err != nil {
			return nil, err
		}
		groups := map[string][]srcFile{}
		var names []string
		for _, sf := range files {
			if _, ok := groups[sf.pkg]; !ok {
				names = append(names, sf.pkg)
			}
			groups[sf.pkg] = append(groups[sf.pkg], sf)
		}
		sort.Strings(names)
		var primary, ext string
		for _, name := range names {
			if strings.HasSuffix(name, "_test") {
				if ext != "" {
					return nil, fmt.Errorf("lint: %s: multiple external test packages (%s, %s)", rel, ext, name)
				}
				ext = name
				continue
			}
			if primary != "" {
				return nil, fmt.Errorf("lint: %s: multiple packages (%s, %s)", rel, primary, name)
			}
			primary = name
		}
		path := l.importPath(rel)
		var primaryUnit *Unit
		if primary != "" {
			var asts []*ast.File
			for _, sf := range groups[primary] {
				asts = append(asts, sf.file)
			}
			pkg, info, err := l.typeCheck(path, asts, l, true)
			if err != nil {
				return nil, err
			}
			primaryUnit = &Unit{Dir: rel, Name: primary, Files: asts, Info: info, Pkg: pkg}
			units = append(units, primaryUnit)
		}
		if ext != "" {
			var asts []*ast.File
			for _, sf := range groups[ext] {
				asts = append(asts, sf.file)
			}
			var imp types.ImporterFrom = l
			if primaryUnit != nil {
				imp = override{l: l, path: path, pkg: primaryUnit.Pkg}
			}
			pkg, info, err := l.typeCheck(path+"_test", asts, imp, true)
			if err != nil {
				return nil, err
			}
			units = append(units, &Unit{Dir: rel, Name: ext, Files: asts, Info: info, Pkg: pkg})
		}
	}
	return units, nil
}
