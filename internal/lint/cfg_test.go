package lint

// White-box tests for the CFG substrate: structural expectations on
// hand-built bodies, direct exercises of the leaks() path search, and
// FuzzCFG, which asserts the graph invariants on arbitrary parseable
// input (the builder must never need type information).

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncBodies parses src as a whole file and returns every
// function and function-literal body in source order.
func parseFuncBodies(tb testing.TB, src string) []*ast.BlockStmt {
	tb.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, parser.SkipObjectResolution)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}

// bodyCFG wraps stmts in a function and builds its CFG.
func bodyCFG(tb testing.TB, stmts string) *cfg {
	tb.Helper()
	bodies := parseFuncBodies(tb, "package p\n\nfunc f() {\n"+stmts+"\n}\n")
	if len(bodies) == 0 {
		tb.Fatal("no function body parsed")
	}
	return buildCFG(bodies[0])
}

func TestCFGLinear(t *testing.T) {
	c := bodyCFG(t, "x := 1\ny := x\n_ = y")
	if len(c.entry.nodes) != 3 {
		t.Fatalf("entry atoms: got %d, want 3", len(c.entry.nodes))
	}
	if len(c.entry.succs) != 1 || c.entry.succs[0] != c.exit {
		t.Fatalf("entry succs: got %v, want [exit]", c.entry.succs)
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	c := bodyCFG(t, "x := 1\nreturn\n_ = x")
	// The return ends the entry block with a single edge to exit; the
	// dead statement after it lands in a fresh block that still flows
	// to exit (terminate's dead-code rule).
	if got := c.entry.nodes[len(c.entry.nodes)-1]; true {
		if _, ok := got.(*ast.ReturnStmt); !ok {
			t.Fatalf("last entry atom: got %T, want *ast.ReturnStmt", got)
		}
	}
	if len(c.entry.succs) != 1 || c.entry.succs[0] != c.exit {
		t.Fatalf("entry succs: got %v, want [exit]", c.entry.succs)
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	c := bodyCFG(t, "if x := 1; x > 0 {\n_ = x\n} else {\n_ = -x\n}")
	// Head carries init+cond and fans out to then and else.
	if len(c.entry.succs) != 2 {
		t.Fatalf("if head succs: got %d, want 2", len(c.entry.succs))
	}
	for _, s := range c.entry.succs {
		if len(s.succs) != 1 {
			t.Fatalf("branch block succs: got %d, want 1 (the join)", len(s.succs))
		}
	}
	if c.entry.succs[0].succs[0] != c.entry.succs[1].succs[0] {
		t.Fatal("then and else do not join at the same block")
	}
}

func TestCFGPanicRoutesToPanicBlock(t *testing.T) {
	c := bodyCFG(t, "if bad {\npanic(\"boom\")\n}\nok()")
	found := false
	for _, blk := range c.blocks {
		for _, s := range blk.succs {
			if s == c.panicb {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no edge into the panic block")
	}
	if len(c.panicb.succs) != 0 || len(c.panicb.nodes) != 0 {
		t.Fatal("panic block must stay empty and terminal")
	}
}

func TestCFGLoopHeadsRecordTheirLoop(t *testing.T) {
	c := bodyCFG(t, "for i := 0; i < n; i++ {\nuse(i)\n}\nfor range ch {\n}")
	var forHead, rangeHead bool
	for _, blk := range c.blocks {
		switch blk.loop.(type) {
		case *ast.ForStmt:
			forHead = true
		case *ast.RangeStmt:
			rangeHead = true
		}
	}
	if !forHead || !rangeHead {
		t.Fatalf("loop heads recorded: for=%v range=%v, want both", forHead, rangeHead)
	}
}

func TestCFGEmptySelectIsNoReturn(t *testing.T) {
	c := bodyCFG(t, "setup()\nselect {}\nunreachable()")
	if len(c.entry.succs) != 1 || c.entry.succs[0] != c.panicb {
		t.Fatalf("select{} head succs: got %v, want [panic]", c.entry.succs)
	}
}

func TestCFGUndefinedGotoLabel(t *testing.T) {
	// Parseable but type-invalid: goto to a label that never appears.
	// The dangling label start must be routed to the panic block so no
	// body block is successor-less.
	c := bodyCFG(t, "goto L")
	for _, blk := range c.blocks {
		if len(blk.succs) == 0 && blk.kind == blockBody {
			t.Fatalf("block %d: body block with no successors", blk.index)
		}
	}
}

// exprStmtCalling matches an ExprStmt atom calling the named function.
func exprStmtCalling(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestLeaks(t *testing.T) {
	tests := []struct {
		name  string
		stmts string
		want  bool // does the obligation started at entry atom 0 leak?
	}{
		{"satisfied straight line", "acquire()\nrelease()", false},
		{"early return skips", "acquire()\nif c {\nreturn\n}\nrelease()", true},
		{"both branches satisfy", "acquire()\nif c {\nrelease()\nreturn\n}\nrelease()", false},
		{"panic path excused", "acquire()\nif c {\npanic(\"x\")\n}\nrelease()", false},
		{"no release at all", "acquire()\nwork()", true},
		{"release only in loop body", "acquire()\nfor i := 0; i < n; i++ {\nrelease()\n}", true},
		{"release after loop", "acquire()\nfor i := 0; i < n; i++ {\nwork()\n}\nrelease()", false},
		{"release in one switch clause", "acquire()\nswitch v {\ncase 1:\nrelease()\ncase 2:\nwork()\n}", true},
		{"release in every clause and default", "acquire()\nswitch v {\ncase 1:\nrelease()\ndefault:\nrelease()\n}", false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := bodyCFG(t, tc.stmts)
			got := c.leaks(c.entry, 1, exprStmtCalling("release"), nil)
			if got != tc.want {
				t.Errorf("leaks = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestLeaksLoopCredit(t *testing.T) {
	// The counted-collect idiom: the satisfying atom sits in a loop
	// body whose trip count the CFG cannot see. Without loopSat the
	// zero-trip path leaks; with loopSat crediting loops that contain a
	// release, it does not.
	c := bodyCFG(t, "acquire()\nfor i := 0; i < n; i++ {\nrelease()\n}")
	sat := exprStmtCalling("release")
	if !c.leaks(c.entry, 1, sat, nil) {
		t.Fatal("without loop credit: want leak on the zero-trip path")
	}
	loopSat := func(s ast.Stmt) bool {
		f, ok := s.(*ast.ForStmt)
		if !ok {
			return false
		}
		found := false
		inspectShallow(f.Body, func(n ast.Node) bool {
			if sat(n) {
				found = true
			}
			return !found
		})
		return found
	}
	if c.leaks(c.entry, 1, sat, loopSat) {
		t.Fatal("with loop credit: the loop discharges the obligation")
	}
}

// checkCFGInvariants asserts everything buildCFG guarantees for any
// parseable body, typed or not.
func checkCFGInvariants(tb testing.TB, c *cfg) {
	tb.Helper()
	if c.exit == nil || c.panicb == nil || c.entry == nil {
		tb.Fatal("cfg missing a distinguished block")
	}
	if c.exit.kind != blockExit || c.panicb.kind != blockPanic || c.entry.kind != blockBody {
		tb.Fatal("distinguished block kinds wrong")
	}
	if len(c.exit.succs) != 0 || len(c.exit.nodes) != 0 ||
		len(c.panicb.succs) != 0 || len(c.panicb.nodes) != 0 {
		tb.Fatal("exit/panic blocks must be empty and terminal")
	}
	seen := map[ast.Node]bool{}
	for i, blk := range c.blocks {
		if blk.index != i {
			tb.Fatalf("block %d carries index %d", i, blk.index)
		}
		if len(blk.succs) == 0 && blk.kind == blockBody {
			tb.Fatalf("block %d: body block with no successors", i)
		}
		for _, s := range blk.succs {
			if s == nil || s.index < 0 || s.index >= len(c.blocks) || c.blocks[s.index] != s {
				tb.Fatalf("block %d: successor not in graph", i)
			}
		}
		for _, n := range blk.nodes {
			if n == nil {
				tb.Fatalf("block %d: nil atom", i)
			}
			if seen[n] {
				tb.Fatalf("block %d: atom appears in more than one block", i)
			}
			seen[n] = true
		}
	}
	// Every block reachable from the entry either reaches an exit node
	// or sits in a region of the graph that must contain a cycle (every
	// block in its reachable set has a successor): no silent dead ends.
	reach := make([]bool, len(c.blocks))
	var stack []*block
	push := func(b *block) {
		if !reach[b.index] {
			reach[b.index] = true
			stack = append(stack, b)
		}
	}
	push(c.entry)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.succs {
			push(s)
		}
	}
	for i, blk := range c.blocks {
		if !reach[i] || blk.kind != blockBody {
			continue
		}
		sub := make([]bool, len(c.blocks))
		var q []*block
		grow := func(b *block) {
			if !sub[b.index] {
				sub[b.index] = true
				q = append(q, b)
			}
		}
		grow(blk)
		exits := false
		for len(q) > 0 {
			b := q[len(q)-1]
			q = q[:len(q)-1]
			if b.kind != blockBody {
				exits = true
				break
			}
			for _, s := range b.succs {
				grow(s)
			}
		}
		if !exits {
			// No exit in reach: legal only as an infinite loop, which
			// requires every block in the closed region to flow onward.
			for j, in := range sub {
				if in && len(c.blocks[j].succs) == 0 {
					tb.Fatalf("block %d: reaches neither an exit nor a cycle", i)
				}
			}
		}
	}
}

// cfgShape renders the graph structure for determinism comparison.
func cfgShape(c *cfg) string {
	var sb strings.Builder
	for _, blk := range c.blocks {
		fmt.Fprintf(&sb, "%d k%d n%d:", blk.index, blk.kind, len(blk.nodes))
		for _, s := range blk.succs {
			fmt.Fprintf(&sb, " %d", s.index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func FuzzCFG(f *testing.F) {
	seeds := []string{
		"package p\nfunc f() {}\n",
		"package p\nfunc f(c bool) int {\nif c {\nreturn 1\n}\nreturn 0\n}\n",
		"package p\nfunc f(n int) {\nfor i := 0; i < n; i++ {\nif i == 3 {\nbreak\n}\n}\n}\n",
		"package p\nfunc f(m map[int]int) {\nouter:\nfor k := range m {\nswitch k {\ncase 0:\ncontinue outer\ncase 1:\nfallthrough\ncase 2:\nbreak outer\ndefault:\npanic(\"k\")\n}\n}\n}\n",
		"package p\nfunc f(a, b chan int) int {\nselect {\ncase v := <-a:\nreturn v\ncase b <- 1:\n}\nselect {}\n}\n",
		"package p\nfunc f() {\ndefer cleanup()\ngo func() {\nfor {\n}\n}()\n}\n",
		"package p\nfunc f(x any) {\nswitch v := x.(type) {\ncase int:\n_ = v\n}\n}\n",
		"package p\nfunc f() {\ngoto L\n}\n", // undefined label: parseable, type-invalid
		"package p\nfunc f(n int) {\nL:\nif n > 0 {\nn--\ngoto L\n}\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			c := buildCFG(body)
			checkCFGInvariants(t, c)
			if got, again := cfgShape(c), cfgShape(buildCFG(body)); got != again {
				t.Fatalf("rebuild not deterministic:\n%s\nvs\n%s", got, again)
			}
			return true
		})
	})
}
