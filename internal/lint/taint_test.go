package lint

// White-box tests for the determinism-taint engine (taint.go): return
// taint, sanitizers, sink-through-callee summaries, and the float
// accumulation summaries floatreduce consumes — all in heuristic
// (untyped) mode, the mode with no safety net — plus FuzzTaint, which
// asserts the engine's invariants on arbitrary parseable input and
// that both taint passes survive it.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestTaintReturnPropagation(t *testing.T) {
	p := parsePass(t, `package p
import "time"
func stamp() string { return time.Now().String() }
func indirect() string { return stamp() }
func fixed() string { return "v1" }
`)
	s := p.summaries()
	for _, name := range []string{"stamp", "indirect"} {
		sum := declSummary(t, s, name)
		if len(sum.taintRets) != 1 || sum.taintRets[0] == nil || sum.taintRets[0].fact == nil {
			t.Errorf("%s: taintRets = %v, want one tainted result", name, sum.taintRets)
		}
	}
	if sum := declSummary(t, s, "fixed"); len(sum.taintRets) == 1 && sum.taintRets[0] != nil {
		t.Errorf("fixed: spurious return taint %v", sum.taintRets[0])
	}
}

func TestTaintSanitizerClears(t *testing.T) {
	// Map ranges need type information, so the heuristic-mode source
	// here is os.Getenv; the point is the sanitizer model — a variable
	// that passes through sort.* never reports.
	p := parsePass(t, `package p
import (
	"crypto/sha256"
	"os"
	"sort"
	"strings"
)
func dirty() [32]byte {
	keys := strings.Split(os.Getenv("RRS"), ",")
	return sha256.Sum256([]byte(strings.Join(keys, "+")))
}
func cleaned() [32]byte {
	keys := strings.Split(os.Getenv("RRS"), ",")
	sort.Strings(keys)
	return sha256.Sum256([]byte(strings.Join(keys, "+")))
}
`)
	runDetflow(p)
	if len(*p.diags) != 1 {
		t.Fatalf("got %d findings, want 1 (dirty only): %v", len(*p.diags), *p.diags)
	}
	if (*p.diags)[0].Line != 10 {
		t.Errorf("finding at line %d, want 10 (dirty's hash)", (*p.diags)[0].Line)
	}
}

func TestTaintSinkParamsSummary(t *testing.T) {
	p := parsePass(t, `package p
import "crypto/sha256"
func digest(b []byte) [32]byte { return sha256.Sum256(b) }
func relay(b []byte) [32]byte { return digest(b) }
func pure(b []byte) int { return len(b) }
`)
	s := p.summaries()
	for _, name := range []string{"digest", "relay"} {
		sum := declSummary(t, s, name)
		if ref, ok := sum.sinkParams[0]; !ok || ref.what != "hash input" {
			t.Errorf("%s: sinkParams = %v, want param 0 -> hash input", name, sum.sinkParams)
		}
	}
	if sum := declSummary(t, s, "pure"); len(sum.sinkParams) != 0 {
		t.Errorf("pure: spurious sinkParams %v", sum.sinkParams)
	}
}

func TestFloatAccumSummaries(t *testing.T) {
	p := parsePass(t, `package p
var total float64
func addTo(p *float64, v float64) { *p += v }
func bump(v float64) { total += v }
func chain(v float64) { bump(v) }
func local(v float64) { acc := 0.0; acc += v; _ = acc }
`)
	s := p.summaries()
	if sum := declSummary(t, s, "addTo"); len(sum.accumPtr) != 1 {
		t.Errorf("addTo: accumPtr = %v, want param 0", sum.accumPtr)
	}
	if sum := declSummary(t, s, "bump"); len(sum.accumGlobal) != 1 {
		t.Errorf("bump: accumGlobal = %v, want total", sum.accumGlobal)
	}
	// Reaching a global accumulator through a callee is still a
	// summary fact: launching chain as a task is as bad as bump.
	if sum := declSummary(t, s, "chain"); len(sum.accumGlobal) != 1 {
		t.Errorf("chain: accumGlobal = %v, want total via bump", sum.accumGlobal)
	}
	if sum := declSummary(t, s, "local"); len(sum.accumPtr)+len(sum.accumGlobal) != 0 {
		t.Errorf("local: spurious accumulation summary (%v, %v)", sum.accumPtr, sum.accumGlobal)
	}
}

func TestFloatreduceHeuristic(t *testing.T) {
	p := parsePass(t, `package p
func sum(v []float64) float64 {
	s := 0.0
	done := make(chan bool)
	go func() { s += v[0]; done <- true }()
	<-done
	return s
}
func perIndex(v []float64) {
	out := make([]float64, len(v))
	go func() { out[0] += v[0] }()
}
`)
	runFloatreduce(p)
	if len(*p.diags) != 1 {
		t.Fatalf("got %d findings, want 1 (captured scalar only): %v", len(*p.diags), *p.diags)
	}
	if (*p.diags)[0].Line != 5 {
		t.Errorf("finding at line %d, want 5", (*p.diags)[0].Line)
	}
}

// checkTaintInvariants asserts what the taint fixpoint guarantees for
// any parseable input.
func checkTaintInvariants(tb testing.TB, s *summaries) {
	tb.Helper()
	for _, n := range s.graph.nodes {
		sum := s.by[n]
		for i, v := range sum.taintRets {
			if v == nil {
				continue
			}
			if v.fact == nil && len(v.params) == 0 {
				tb.Fatalf("%s: result %d tainted by nothing", n.name(), i)
			}
			if v.fact != nil && v.fact.why == "" {
				tb.Fatalf("%s: result %d has an empty witness", n.name(), i)
			}
		}
		for pi, ref := range sum.sinkParams {
			if pi < 0 || ref.what == "" {
				tb.Fatalf("%s: malformed sinkParams entry %d -> %q", n.name(), pi, ref.what)
			}
		}
		for pi := range sum.accumPtr {
			if pi < 0 {
				tb.Fatalf("%s: negative accumPtr index", n.name())
			}
		}
		for key := range sum.accumGlobal {
			if key == "" {
				tb.Fatalf("%s: empty accumGlobal key", n.name())
			}
		}
		if env := s.taintEnvs[n]; env != nil {
			for _, f := range env.findings {
				if !f.pos.IsValid() || f.msg == "" {
					tb.Fatalf("%s: finding without position or message", n.name())
				}
			}
		}
	}
}

func FuzzTaint(f *testing.F) {
	seeds := []string{
		"package p\nfunc f() {}\n",
		"package p\nimport \"crypto/sha256\"\nfunc f(m map[string]int) {\n\ts := \"\"\n\tfor k := range m {\n\t\ts += k\n\t}\n\tsha256.Sum256([]byte(s))\n}\n",
		"package p\nimport \"time\"\nfunc stamp() string { return time.Now().String() }\nfunc g() string { return stamp() }\n",
		"package p\nimport (\n\t\"crypto/sha256\"\n\t\"sort\"\n)\nfunc f(ks []string) { sort.Strings(ks); sha256.Sum256([]byte(ks[0])) }\n",
		"package p\nimport \"os\"\nfunc key() string { return cacheKey(os.Getenv(\"X\")) }\nfunc cacheKey(s string) string { return s }\n",
		"package p\nfunc f(v []float64) float64 {\n\ts := 0.0\n\tgo func() { s += v[0] }()\n\treturn s\n}\n",
		"package p\nvar total float64\nfunc bump(v float64) { total += v }\nfunc launch() { par.Dynamic(4, 2, bump) }\n",
		"package p\nfunc addTo(p *float64, v float64) { *p += v }\nfunc f(v []float64) {\n\tacc := 0.0\n\tpar.For(4, 2, func(lo, hi int) { addTo(&acc, v[lo]) })\n}\n",
		"package p\nimport \"encoding/json\"\nfunc f(a, b chan int) {\n\tvar x int\n\tselect {\n\tcase x = <-a:\n\tcase x = <-b:\n\t}\n\tjson.Marshal(x)\n}\n",
		"package p\nfunc a() string { return b() }\nfunc b() string { return a() }\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		var diags []Diagnostic
		p := &pass{
			fset:    fset,
			root:    ".",
			modPath: "fixture",
			unit:    &Unit{Dir: ".", Name: "p", Files: []*ast.File{file}},
			diags:   &diags,
		}
		s := p.summaries()
		checkTaintInvariants(t, s)
		// Rebuilding must reproduce the same findings and summaries.
		again := buildSummaries(p)
		for _, n := range s.graph.nodes {
			m := again.graph.byDecl[n.decl]
			if m == nil {
				t.Fatalf("%s: lost on rebuild", n.name())
			}
			if len(again.by[m].taintRets) != len(s.by[n].taintRets) ||
				len(again.by[m].sinkParams) != len(s.by[n].sinkParams) {
				t.Fatalf("%s: rebuild changed the taint summary", n.name())
			}
			a, b := s.taintEnvs[n], again.taintEnvs[m]
			if (a == nil) != (b == nil) || (a != nil && len(a.findings) != len(b.findings)) {
				t.Fatalf("%s: rebuild changed the findings", n.name())
			}
		}
		// Both taint passes must survive arbitrary input.
		runDetflow(p)
		runFloatreduce(p)
	})
}
