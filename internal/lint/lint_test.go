package lint_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"roughsurface/internal/lint"
)

// fixtureRun lints one fixture directory with one check enabled and
// returns findings as "file:line check" strings.
func fixtureRun(t *testing.T, dir, check string) []string {
	t.Helper()
	diags, err := lint.Run(lint.Config{
		Root:    "testdata/src/fixture",
		ModPath: "fixture",
		Dirs:    []string{dir + "/..."},
		Checks:  []string{check},
	})
	if err != nil {
		t.Fatalf("lint.Run(%s): %v", dir, err)
	}
	got := make([]string, len(diags))
	for i, d := range diags {
		got[i] = fmt.Sprintf("%s:%d %s", d.File, d.Line, d.Check)
	}
	return got
}

// TestChecks drives every check over a fixture package that violates
// it, asserting the exact findings (and, via the clean fixture, the
// absence of false positives).
func TestChecks(t *testing.T) {
	tests := []struct {
		dir   string
		check string
		want  []string
	}{
		{"floatcmp", "floatcmp", []string{
			"floatcmp/floatcmp.go:5 floatcmp",
			"floatcmp/floatcmp.go:7 floatcmp",
			"floatcmp/floatcmp.go:9 floatcmp",
			"floatcmp/floatcmp.go:11 floatcmp",
			"floatcmp/floatcmp.go:13 floatcmp",
		}},
		{"parpolicy", "parpolicy", []string{
			"parpolicy/parpolicy.go:8 parpolicy",
			"parpolicy/parpolicy.go:11 parpolicy",
		}},
		{"seedrand", "seedrand", []string{
			"seedrand/seedrand.go:7 seedrand",  // import outside internal/rng
			"seedrand/seedrand.go:17 seedrand", // NewSource(time.Now...)
			"seedrand/seedrand.go:22 seedrand", // Seed(time.Now...)
		}},
		// The exempt package: no import finding, but wall-clock seeding
		// is flagged even here.
		{"internal/rng", "seedrand", []string{
			"internal/rng/rng.go:19 seedrand",
		}},
		{"errdrop", "errdrop", []string{
			"errdrop/errdrop.go:12 errdrop",
			"errdrop/errdrop.go:14 errdrop",
			"errdrop/errdrop.go:16 errdrop",
			"errdrop/errdrop.go:18 errdrop",
		}},
		{"mapordered", "mapordered", []string{
			"mapordered/mapordered.go:12 mapordered",
			"mapordered/mapordered.go:28 mapordered",
		}},
		{"poolbalance", "poolbalance", []string{
			"poolbalance/poolbalance.go:13 poolbalance",
			"poolbalance/poolbalance.go:22 poolbalance",
		}},
		{"retainescape", "retainescape", []string{
			"retainescape/retainescape.go:22 retainescape",
			"retainescape/retainescape.go:30 retainescape",
			"retainescape/retainescape.go:36 retainescape",
			"retainescape/retainescape.go:41 retainescape",
			"retainescape/retainescape.go:46 retainescape",
		}},
		{"goleak", "goleak", []string{
			"goleak/goleak.go:11 goleak",
			"goleak/goleak.go:17 goleak",
		}},
		{"lockbalance", "lockbalance", []string{
			"lockbalance/lockbalance.go:29 lockbalance", // leaked on early return
			"lockbalance/lockbalance.go:39 lockbalance", // channel wait while held
			"lockbalance/lockbalance.go:48 lockbalance", // blocking callee (needs summary)
			"lockbalance/lockbalance.go:60 lockbalance", // recursive lock via method (needs call graph)
			"lockbalance/lockbalance.go:73 lockbalance", // direct double lock
		}},
		{"ctxflow", "ctxflow", []string{
			"ctxflow/ctxflow.go:32 ctxflow", // blocks on request path, no ctx (needs call graph)
			"ctxflow/ctxflow.go:38 ctxflow", // same, reached through a closure (needs reach edges)
			"ctxflow/ctxflow.go:48 ctxflow", // ctx parameter dropped
			"ctxflow/ctxflow.go:55 ctxflow", // context.Background under a ctx param
			"ctxflow/ctxflow.go:77 ctxflow", // outbound http.NewRequest drops the inbound ctx
		}},
		{"httpwrite", "httpwrite", []string{
			"httpwrite/httpwrite.go:28 httpwrite", // path with no write
			"httpwrite/httpwrite.go:38 httpwrite", // double status via two helpers (needs summaries)
			"httpwrite/httpwrite.go:46 httpwrite", // body after error status
		}},
		{"detflow", "detflow", []string{
			"detflow/detflow.go:30 detflow",  // map iteration order into a hash
			"detflow/detflow.go:41 detflow",  // time.Now through a callee's return
			"detflow/detflow.go:48 detflow",  // os.Getenv into key construction
			"detflow/detflow.go:59 detflow",  // %p into rng seeding
			"detflow/detflow.go:72 detflow",  // select branch choice into JSON
			"detflow/detflow.go:88 detflow",  // hash inside a callee (needs sinkParams)
			"detflow/detflow.go:105 detflow", // goroutine write order into a hash
		}},
		{"floatreduce", "floatreduce", []string{
			"floatreduce/floatreduce.go:19 floatreduce", // captured += under par.Dynamic
			"floatreduce/floatreduce.go:30 floatreduce", // x = x + e under a raw goroutine
			"floatreduce/floatreduce.go:52 floatreduce", // &acc through addTo (needs accum summary)
			"floatreduce/floatreduce.go:65 floatreduce", // named task accumulating a global
			"floatreduce/floatreduce.go:71 floatreduce", // global reached through a callee
		}},
		// parpolicy's fixture joins every goroutine through wg.Wait, so
		// the CFG pass must stay quiet on it even though parpolicy fires.
		{"parpolicy", "goleak", nil},
		// The new fixtures' negatives double as cross-checks: httpwrite's
		// helpers never block (no ctxflow), ctxflow's handler writes once
		// (no httpwrite), lockbalance's helpers are handler-free.
		{"httpwrite", "ctxflow", nil},
		{"ctxflow", "httpwrite", nil},
		{"lockbalance", "ctxflow", nil},
		{"lockbalance", "httpwrite", nil},
		{"httpwrite", "lockbalance", nil},
		{"ctxflow", "lockbalance", nil},
		// The taint fixtures must not trip each other: detflow's joined
		// goroutines write strings (no float accumulation), and
		// floatreduce's accumulators never reach a sink. Neither trips
		// goleak (every launch joins), and detflow's collect-then-sort
		// negative stays invisible to mapordered.
		{"detflow", "floatreduce", nil},
		{"floatreduce", "detflow", nil},
		{"detflow", "goleak", nil},
		{"floatreduce", "goleak", nil},
		{"detflow", "mapordered", nil},
		{"ignore", "floatcmp", []string{
			"ignore/ignore.go:16 floatcmp",
			"ignore/ignore.go:20 directive",
			"ignore/ignore.go:21 floatcmp",
		}},
		// buildtag holds a race/!race constant pair: honoring //go:build
		// is what keeps the pair from "redeclaring" in one lint unit.
		{"buildtag", "floatcmp", nil},
		{"clean", "floatcmp", nil},
		{"clean", "parpolicy", nil},
		{"clean", "seedrand", nil},
		{"clean", "errdrop", nil},
		{"clean", "mapordered", nil},
		{"clean", "poolbalance", nil},
		{"clean", "retainescape", nil},
		{"clean", "goleak", nil},
		{"clean", "lockbalance", nil},
		{"clean", "ctxflow", nil},
		{"clean", "httpwrite", nil},
		{"clean", "detflow", nil},
		{"clean", "floatreduce", nil},
	}
	for _, tc := range tests {
		t.Run(tc.dir+"/"+tc.check, func(t *testing.T) {
			got := fixtureRun(t, tc.dir, tc.check)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d findings %v, want %d %v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("finding %d: got %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestAllChecksOnFixtureTree runs the full suite over the whole
// fixture module at once: cross-check that selection by Dirs and
// Checks was not hiding interference between checks.
func TestAllChecksOnFixtureTree(t *testing.T) {
	diags, err := lint.Run(lint.Config{
		Root:    "testdata/src/fixture",
		ModPath: "fixture",
	})
	if err != nil {
		t.Fatal(err)
	}
	perCheck := map[string]int{}
	for _, d := range diags {
		perCheck[d.Check]++
	}
	want := map[string]int{
		"floatcmp":     7,  // 5 in floatcmp fixture + 2 unsilenced in ignore fixture
		"parpolicy":    10, // 2 in parpolicy fixture + 6 in goleak + 1 each in detflow/floatreduce
		"seedrand":     4,  // import + 2 time seeds in seedrand fixture, 1 time seed in internal/rng
		"errdrop":      4,
		"mapordered":   2,
		"directive":    1,
		"poolbalance":  2,
		"retainescape": 5,
		"goleak":       2,
		"lockbalance":  5,
		"ctxflow":      5,
		"httpwrite":    3,
		"detflow":      7,
		"floatreduce":  5,
	}
	for check, n := range want {
		if perCheck[check] != n {
			t.Errorf("check %s: got %d findings, want %d (all: %v)", check, perCheck[check], n, diags)
		}
	}
	if len(diags) != 62 {
		t.Errorf("total findings: got %d, want 62: %v", len(diags), diags)
	}
}

// TestUnknownCheckRejected guards the CLI's -checks plumbing.
func TestUnknownCheckRejected(t *testing.T) {
	_, err := lint.Run(lint.Config{
		Root:    "testdata/src/fixture",
		ModPath: "fixture",
		Checks:  []string{"nosuchcheck"},
	})
	if err == nil {
		t.Fatal("unknown check name accepted")
	}
}

// TestDiagnosticJSON pins the JSON shape the CI gate consumes.
func TestDiagnosticJSON(t *testing.T) {
	d := lint.Diagnostic{Check: "floatcmp", File: "a/b.go", Line: 3, Col: 7, Message: "m"}
	out, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"check":"floatcmp","file":"a/b.go","line":3,"col":7,"message":"m"}`
	if string(out) != want {
		t.Errorf("got %s, want %s", out, want)
	}
}

// TestCheckNames pins the registered suite.
func TestCheckNames(t *testing.T) {
	names := lint.CheckNames()
	if len(names) != 13 {
		t.Fatalf("got %d checks, want 13: %v", len(names), names)
	}
}

// TestChecksExclusion pins the -checks exclusion syntax: "-name"
// removes from the full suite, mixing includes and excludes filters
// the include list, and selecting nothing is an error.
func TestChecksExclusion(t *testing.T) {
	run := func(checks []string) ([]lint.Diagnostic, error) {
		return lint.Run(lint.Config{
			Root:    "testdata/src/fixture",
			ModPath: "fixture",
			Dirs:    []string{"lockbalance/...", "ctxflow/..."},
			Checks:  checks,
		})
	}
	all, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	without, err := run([]string{"-lockbalance"})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(all) - 5; len(without) != want {
		t.Errorf("excluding lockbalance: got %d findings, want %d", len(without), want)
	}
	for _, d := range without {
		if d.Check == "lockbalance" {
			t.Errorf("excluded check still reported: %v", d)
		}
	}
	mixed, err := run([]string{"lockbalance", "ctxflow", "-lockbalance"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != 5 {
		t.Errorf("include+exclude: got %d findings, want 5 (ctxflow only): %v", len(mixed), mixed)
	}
	if _, err := run([]string{"ctxflow", "-ctxflow"}); err == nil {
		t.Error("empty selection accepted")
	}
	if _, err := run([]string{"-nosuchcheck"}); err == nil {
		t.Error("unknown excluded check accepted")
	}
}

// TestRunTimed pins the timing breakdown the CI artifact carries: one
// entry per selected check, sorted by name, non-negative.
func TestRunTimed(t *testing.T) {
	res, err := lint.RunTimed(lint.Config{
		Root:    "testdata/src/fixture",
		ModPath: "fixture",
		Dirs:    []string{"clean/..."},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timing) != 13 {
		t.Fatalf("got %d timing entries, want 13: %v", len(res.Timing), res.Timing)
	}
	for i, ct := range res.Timing {
		if ct.Millis < 0 {
			t.Errorf("check %s: negative timing %v", ct.Check, ct.Millis)
		}
		if i > 0 && res.Timing[i-1].Check >= ct.Check {
			t.Errorf("timing not sorted by check: %q before %q", res.Timing[i-1].Check, ct.Check)
		}
	}
}
