package lint_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"roughsurface/internal/lint"
)

// fixtureRun lints one fixture directory with one check enabled and
// returns findings as "file:line check" strings.
func fixtureRun(t *testing.T, dir, check string) []string {
	t.Helper()
	diags, err := lint.Run(lint.Config{
		Root:    "testdata/src/fixture",
		ModPath: "fixture",
		Dirs:    []string{dir + "/..."},
		Checks:  []string{check},
	})
	if err != nil {
		t.Fatalf("lint.Run(%s): %v", dir, err)
	}
	got := make([]string, len(diags))
	for i, d := range diags {
		got[i] = fmt.Sprintf("%s:%d %s", d.File, d.Line, d.Check)
	}
	return got
}

// TestChecks drives every check over a fixture package that violates
// it, asserting the exact findings (and, via the clean fixture, the
// absence of false positives).
func TestChecks(t *testing.T) {
	tests := []struct {
		dir   string
		check string
		want  []string
	}{
		{"floatcmp", "floatcmp", []string{
			"floatcmp/floatcmp.go:5 floatcmp",
			"floatcmp/floatcmp.go:7 floatcmp",
			"floatcmp/floatcmp.go:9 floatcmp",
			"floatcmp/floatcmp.go:11 floatcmp",
			"floatcmp/floatcmp.go:13 floatcmp",
		}},
		{"parpolicy", "parpolicy", []string{
			"parpolicy/parpolicy.go:8 parpolicy",
			"parpolicy/parpolicy.go:11 parpolicy",
		}},
		{"seedrand", "seedrand", []string{
			"seedrand/seedrand.go:4 seedrand",
		}},
		{"errdrop", "errdrop", []string{
			"errdrop/errdrop.go:12 errdrop",
			"errdrop/errdrop.go:14 errdrop",
			"errdrop/errdrop.go:16 errdrop",
			"errdrop/errdrop.go:18 errdrop",
		}},
		{"mapordered", "mapordered", []string{
			"mapordered/mapordered.go:12 mapordered",
			"mapordered/mapordered.go:28 mapordered",
		}},
		{"poolbalance", "poolbalance", []string{
			"poolbalance/poolbalance.go:13 poolbalance",
			"poolbalance/poolbalance.go:22 poolbalance",
		}},
		{"retainescape", "retainescape", []string{
			"retainescape/retainescape.go:22 retainescape",
			"retainescape/retainescape.go:30 retainescape",
			"retainescape/retainescape.go:36 retainescape",
			"retainescape/retainescape.go:41 retainescape",
			"retainescape/retainescape.go:46 retainescape",
		}},
		{"goleak", "goleak", []string{
			"goleak/goleak.go:11 goleak",
			"goleak/goleak.go:17 goleak",
		}},
		// parpolicy's fixture joins every goroutine through wg.Wait, so
		// the CFG pass must stay quiet on it even though parpolicy fires.
		{"parpolicy", "goleak", nil},
		{"ignore", "floatcmp", []string{
			"ignore/ignore.go:16 floatcmp",
			"ignore/ignore.go:20 directive",
			"ignore/ignore.go:21 floatcmp",
		}},
		// buildtag holds a race/!race constant pair: honoring //go:build
		// is what keeps the pair from "redeclaring" in one lint unit.
		{"buildtag", "floatcmp", nil},
		{"clean", "floatcmp", nil},
		{"clean", "parpolicy", nil},
		{"clean", "seedrand", nil},
		{"clean", "errdrop", nil},
		{"clean", "mapordered", nil},
		{"clean", "poolbalance", nil},
		{"clean", "retainescape", nil},
		{"clean", "goleak", nil},
	}
	for _, tc := range tests {
		t.Run(tc.dir+"/"+tc.check, func(t *testing.T) {
			got := fixtureRun(t, tc.dir, tc.check)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d findings %v, want %d %v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("finding %d: got %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestAllChecksOnFixtureTree runs the full suite over the whole
// fixture module at once: cross-check that selection by Dirs and
// Checks was not hiding interference between checks.
func TestAllChecksOnFixtureTree(t *testing.T) {
	diags, err := lint.Run(lint.Config{
		Root:    "testdata/src/fixture",
		ModPath: "fixture",
	})
	if err != nil {
		t.Fatal(err)
	}
	perCheck := map[string]int{}
	for _, d := range diags {
		perCheck[d.Check]++
	}
	want := map[string]int{
		"floatcmp":     7, // 5 in floatcmp fixture + 2 unsilenced in ignore fixture
		"parpolicy":    8, // 2 in parpolicy fixture + 6 raw goroutines/WaitGroup in goleak fixture
		"seedrand":     1,
		"errdrop":      4,
		"mapordered":   2,
		"directive":    1,
		"poolbalance":  2,
		"retainescape": 5,
		"goleak":       2,
	}
	for check, n := range want {
		if perCheck[check] != n {
			t.Errorf("check %s: got %d findings, want %d (all: %v)", check, perCheck[check], n, diags)
		}
	}
	if len(diags) != 32 {
		t.Errorf("total findings: got %d, want 32: %v", len(diags), diags)
	}
}

// TestUnknownCheckRejected guards the CLI's -checks plumbing.
func TestUnknownCheckRejected(t *testing.T) {
	_, err := lint.Run(lint.Config{
		Root:    "testdata/src/fixture",
		ModPath: "fixture",
		Checks:  []string{"nosuchcheck"},
	})
	if err == nil {
		t.Fatal("unknown check name accepted")
	}
}

// TestDiagnosticJSON pins the JSON shape the CI gate consumes.
func TestDiagnosticJSON(t *testing.T) {
	d := lint.Diagnostic{Check: "floatcmp", File: "a/b.go", Line: 3, Col: 7, Message: "m"}
	out, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"check":"floatcmp","file":"a/b.go","line":3,"col":7,"message":"m"}`
	if string(out) != want {
		t.Errorf("got %s, want %s", out, want)
	}
}

// TestCheckNames pins the registered suite.
func TestCheckNames(t *testing.T) {
	names := lint.CheckNames()
	if len(names) != 8 {
		t.Fatalf("got %d checks, want 8: %v", len(names), names)
	}
}
