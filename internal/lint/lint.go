// Package lint is rrslint: a project-specific static analysis suite
// for this repository. It enforces invariants the compiler cannot see
// but the paper's statistics depend on:
//
//	floatcmp     — no exact ==/!= between float or complex values
//	parpolicy    — parallel fan-out only via internal/par
//	seedrand     — math/rand only inside internal/rng (reproducibility)
//	errdrop      — no discarded errors from this module's own APIs
//	mapordered   — no order-dependent work inside map iteration
//
// Three passes run dataflow over a control-flow graph (cfg.go) instead
// of walking the AST, because their invariants are path properties:
//
//	poolbalance  — sync.Pool.Get balanced by Put on every non-panic path
//	retainescape — Into/GenerateAt destination buffers never retained
//	goleak       — goroutines joined on every path out of their launcher
//
// Three more are interprocedural: they run over per-function effect
// summaries (summary.go) propagated bottom-up in SCC order across a
// package-level call graph (callgraph.go), so a lock acquired, a park
// reached, or a status written three helpers deep is still visible at
// the caller:
//
//	lockbalance  — locks released on every non-panic path, never
//	               blocked on while held, never re-acquired
//	ctxflow      — request-path blocking always has a threaded
//	               context.Context; no dropped or severed contexts
//	httpwrite    — every handler path writes exactly one status and
//	               no body after an error
//
// Two more track determinism, the property every golden SHA and
// content-addressed ID in this repo rests on, over the same summary
// substrate (taint.go):
//
//	detflow      — nondeterminism sources (map order, time, global
//	               rand, env, %p, select choice, goroutine write
//	               order) never flow into hashes, cache keys, rng
//	               seeds, sample buffers, or encoded artifacts
//	floatreduce  — no floating-point accumulation whose summation
//	               order depends on worker count or scheduling
//
// Any single finding can be silenced in source with a justification:
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// placed on the offending line or the line directly above it. The
// suite is stdlib-only (go/ast, go/parser, go/types) by design.
package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, addressed by module-relative file path.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Config selects what Run analyzes.
type Config struct {
	Root    string   // module root directory
	ModPath string   // module path; read from Root/go.mod when empty
	Dirs    []string // module-relative dirs ("x", "x/..."); nil = all
	Checks  []string // check names to run; nil = all
}

// check is one registered analysis.
type check struct {
	name string
	doc  string
	run  func(*pass)
}

var allChecks = []check{
	{"floatcmp", "exact ==/!= between floating-point or complex values", runFloatcmp},
	{"parpolicy", "goroutine fan-out outside internal/par", runParpolicy},
	{"seedrand", "math/rand usage outside internal/rng", runSeedrand},
	{"errdrop", "discarded error results from module-internal APIs", runErrdrop},
	{"mapordered", "order-dependent work inside map iteration", runMapordered},
	{"poolbalance", "sync.Pool.Get without a matching Put on some non-panic path", runPoolbalance},
	{"retainescape", "caller-owned Into/GenerateAt buffer retained beyond the call", runRetainescape},
	{"goleak", "goroutine without a join on every path out of its launcher", runGoleak},
	{"lockbalance", "mutex left locked on some path, blocked on, or re-acquired through a callee", runLockbalance},
	{"ctxflow", "request-path blocking without an accepted and threaded context.Context", runCtxflow},
	{"httpwrite", "handler path with zero, double, or post-error HTTP status/body writes", runHttpwrite},
	{"detflow", "nondeterministic value flowing into a hash, key, seed, or encoded artifact", runDetflow},
	{"floatreduce", "floating-point accumulation whose summation order depends on scheduling", runFloatreduce},
}

// CheckNames lists every registered check with its one-line doc.
func CheckNames() []string {
	out := make([]string, len(allChecks))
	for i, c := range allChecks {
		out[i] = fmt.Sprintf("%-12s %s", c.name, c.doc)
	}
	return out
}

// CheckInfo is one registered check, for tool output (SARIF rules).
type CheckInfo struct {
	Name string
	Doc  string
}

// Checks returns the registered suite in registration order.
func Checks() []CheckInfo {
	out := make([]CheckInfo, len(allChecks))
	for i, c := range allChecks {
		out[i] = CheckInfo{Name: c.name, Doc: c.doc}
	}
	return out
}

// pass is the per-unit state handed to each check.
type pass struct {
	fset    *token.FileSet
	root    string
	modPath string
	unit    *Unit
	diags   *[]Diagnostic
	sums    *summaries // lazily built per unit; see summary.go
}

// reportf records a finding at pos.
func (p *pass) reportf(pos token.Pos, check, format string, args ...any) {
	position := p.fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Check:   check,
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	return string(m[1]), nil
}

// CheckTiming records the wall-clock cost of one check across all
// analyzed units, for the findings artifact CI uploads.
type CheckTiming struct {
	Check  string  `json:"check"`
	Millis float64 `json:"ms"`
}

// Result is what RunTimed returns: the surviving diagnostics plus the
// per-check timing breakdown (sorted by check name).
type Result struct {
	Diagnostics []Diagnostic
	Timing      []CheckTiming
}

// Run loads every selected package and applies the selected checks,
// returning surviving diagnostics sorted by position.
func Run(cfg Config) ([]Diagnostic, error) {
	res, err := RunTimed(cfg)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunTimed is Run plus the per-check timing breakdown.
func RunTimed(cfg Config) (Result, error) {
	modPath := cfg.ModPath
	if modPath == "" {
		var err error
		if modPath, err = ModulePath(cfg.Root); err != nil {
			return Result{}, err
		}
	}
	selected, err := selectChecks(cfg.Checks)
	if err != nil {
		return Result{}, err
	}
	l, err := newLoader(cfg.Root, modPath)
	if err != nil {
		return Result{}, err
	}
	units, err := l.units(cfg.Dirs)
	if err != nil {
		return Result{}, err
	}
	var diags []Diagnostic
	spent := make([]time.Duration, len(selected))
	for _, u := range units {
		p := &pass{fset: l.fset, root: l.root, modPath: modPath, unit: u, diags: &diags}
		for i, c := range selected {
			start := time.Now()
			c.run(p)
			spent[i] += time.Since(start)
		}
	}
	diags = applyIgnores(l, units, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	timing := make([]CheckTiming, len(selected))
	for i, c := range selected {
		timing[i] = CheckTiming{Check: c.name, Millis: float64(spent[i].Microseconds()) / 1000}
	}
	sort.Slice(timing, func(i, j int) bool { return timing[i].Check < timing[j].Check })
	return Result{Diagnostics: diags, Timing: timing}, nil
}

// selectChecks resolves a -checks list. Plain names include; names
// prefixed with "-" exclude. With only exclusions the baseline is every
// registered check; any include makes the list explicit first.
func selectChecks(names []string) ([]check, error) {
	if len(names) == 0 {
		return allChecks, nil
	}
	byName := func(name string) (check, bool) {
		for _, c := range allChecks {
			if c.name == name {
				return c, true
			}
		}
		return check{}, false
	}
	var includes []check
	excluded := map[string]bool{}
	for _, name := range names {
		if bare, isExcl := strings.CutPrefix(name, "-"); isExcl {
			if _, ok := byName(bare); !ok {
				return nil, fmt.Errorf("lint: unknown check %q", bare)
			}
			excluded[bare] = true
			continue
		}
		c, ok := byName(name)
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
		includes = append(includes, c)
	}
	base := includes
	if len(base) == 0 {
		base = allChecks
	}
	var out []check
	for _, c := range base {
		if !excluded[c.name] {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: -checks selects no checks")
	}
	return out, nil
}

// ignoreRe matches a well-formed directive: check name(s), then a
// non-empty justification.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+([\w,]+)\s+(\S.*)$`)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	checks map[string]bool
	line   int
}

// applyIgnores drops diagnostics suppressed by //lint:ignore
// directives and reports malformed directives as findings of the
// synthetic "directive" check, so silencing always carries a reason.
func applyIgnores(l *loader, units []*Unit, diags []Diagnostic) []Diagnostic {
	perFile := map[string][]ignoreDirective{}
	var out []Diagnostic
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//lint:ignore") {
						continue
					}
					pos := l.fset.Position(c.Pos())
					file := pos.Filename
					if rel, err := filepath.Rel(l.root, file); err == nil {
						file = filepath.ToSlash(rel)
					}
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						out = append(out, Diagnostic{
							Check: "directive", File: file, Line: pos.Line, Col: pos.Column,
							Message: "malformed directive: want //lint:ignore <check>[,<check>] <reason>",
						})
						continue
					}
					checks := map[string]bool{}
					for _, name := range strings.Split(m[1], ",") {
						checks[name] = true
					}
					perFile[file] = append(perFile[file], ignoreDirective{checks: checks, line: pos.Line})
				}
			}
		}
	}
	for _, d := range diags {
		suppressed := false
		for _, ig := range perFile[d.File] {
			if ig.checks[d.Check] && (ig.line == d.Line || ig.line == d.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}
