package lint

// poolbalance: every sync.Pool.Get in module code must reach a
// matching Put on all non-panic paths out of the function, or hand the
// value to its caller (a wrapper like fft's getScratch returns the
// pooled buffer; the caller then owns the Put). An unbalanced Get
// silently degrades the arena pools the generation hot paths depend on
// (DESIGN.md §8–§9): the pool refills through New, so nothing crashes —
// steady-state allocation just creeps back in, and a retained buffer
// can later be handed to a concurrent caller while still referenced.
//
// Matching is per pool, keyed by the printed receiver expression
// (`g.arenas`, `p.scratch`), per function. Satisfying events on a path:
//
//   - pool.Put(...) on the same pool, as a statement or inside a defer
//     (including defers of closures: `defer func() { pool.Put(x) }()`)
//   - return of the Get'd value to the caller
//
// A Get whose result is discarded outright (`pool.Get()` as a
// statement) is always a finding. Paths that end in panic are excused.
// Known approximations are documented in DESIGN.md §10.

import (
	"go/ast"
	"go/types"
)

func runPoolbalance(p *pass) {
	p.eachFuncBody(func(body *ast.BlockStmt) {
		c := buildCFG(body)
		for _, blk := range c.blocks {
			for i, n := range blk.nodes {
				p.checkPoolGets(c, blk, i, n)
			}
		}
	})
}

// checkPoolGets analyzes every sync.Pool.Get call inside atom n.
func (p *pass) checkPoolGets(c *cfg, blk *block, idx int, n ast.Node) {
	if _, ok := n.(*ast.ReturnStmt); ok {
		// `return pool.Get().(*T)`: ownership transfers to the caller.
		return
	}
	var gets []*ast.CallExpr
	inspectShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if _, ok := p.poolMethodKey(call, "Get"); ok {
				gets = append(gets, call)
			}
		}
		return true
	})
	for _, call := range gets {
		key, _ := p.poolMethodKey(call, "Get")
		if es, ok := n.(*ast.ExprStmt); ok && unwrapValue(es.X) == call {
			p.reportf(call.Pos(), "poolbalance",
				"result of %s.Get discarded: the pooled buffer is lost to the collector", key)
			continue
		}
		obj := getResultObj(p, n, call)
		satisfy := func(m ast.Node) bool {
			if p.putsPool(m, key) {
				return true
			}
			ret, ok := m.(*ast.ReturnStmt)
			return ok && obj != nil && mentionsObj(p, ret, obj)
		}
		if c.leaks(blk, idx+1, satisfy, nil) {
			p.reportf(call.Pos(), "poolbalance",
				"%s.Get may reach a non-panic exit without a matching Put", key)
		}
	}
}

// poolMethodKey resolves call as a direct sync.Pool method invocation
// of the given name, returning the printed pool expression that keys
// Get/Put matching.
func (p *pass) poolMethodKey(call *ast.CallExpr, name string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.unit.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isSyncType(sig.Recv().Type(), "Pool") {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// putsPool reports whether atom n performs a Put on the pool keyed by
// key. Defer atoms are searched in full — including deferred closures —
// because a registered defer runs on every exit of the frame; all
// other atoms stop at function literals (a Put inside `go func(){...}`
// is another goroutine's business).
func (p *pass) putsPool(n ast.Node, key string) bool {
	walk := inspectShallow
	if _, ok := n.(*ast.DeferStmt); ok {
		walk = func(n ast.Node, f func(ast.Node) bool) {
			ast.Inspect(n, func(m ast.Node) bool { return m == nil || f(m) })
		}
	}
	found := false
	walk(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if k, ok := p.poolMethodKey(call, "Put"); ok && k == key {
				found = true
			}
		}
		return !found
	})
	return found
}

// getResultObj resolves the variable the Get result is bound to, when
// atom n is an assignment or declaration; nil when the value cannot be
// tracked (then only a Put on the same pool can balance the path).
func getResultObj(p *pass, n ast.Node, call *ast.CallExpr) types.Object {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
			if id, ok := n.Lhs[0].(*ast.Ident); ok {
				return p.objOf(id)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && len(gd.Specs) == 1 {
			if vs, ok := gd.Specs[0].(*ast.ValueSpec); ok && len(vs.Names) >= 1 {
				return p.objOf(vs.Names[0])
			}
		}
	}
	_ = call
	return nil
}

// objOf resolves an identifier to its object, whether the ident
// defines it (:=) or uses it (=).
func (p *pass) objOf(id *ast.Ident) types.Object {
	if obj := p.unit.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.unit.Info.Uses[id]
}

// mentionsObj reports whether any result expression of ret refers to
// obj — the "returned to a caller who owns it" escape hatch.
func mentionsObj(p *pass, ret *ast.ReturnStmt, obj types.Object) bool {
	found := false
	for _, r := range ret.Results {
		inspectShallow(r, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && p.objOf(id) == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// unwrapValue strips parens and type assertions: `pool.Get().(*T)`
// carries the same value as `pool.Get()`.
func unwrapValue(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return e
		}
	}
}

// isSyncType reports whether t is sync.<name> or a pointer to it.
func isSyncType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}
