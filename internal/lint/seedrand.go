package lint

// seedrand: every random number in a generated surface must flow from
// the seeded, splittable streams in internal/rng, or realizations stop
// being reproducible and the tiled/streaming engines lose their
// bit-identical-overlap guarantee. Importing math/rand (or v2)
// anywhere else is flagged at the import site.
//
// A second rule applies everywhere, including inside internal/rng (the
// one package allowed to touch math/rand): constructing or seeding a
// generator from the wall clock — rand.NewSource(time.Now().UnixNano()),
// rand.New with a time-derived argument, rand.Seed(time...) — makes
// every run a different realization, silently. The time-derived
// argument is matched through the shared package-call matcher
// (pkgCallName, taint.go); a nested rand constructor is reported once,
// at the innermost call that takes the time value.

import (
	"go/ast"
	"strconv"
)

func runSeedrand(p *pass) {
	if p.unit.Dir != "internal/rng" {
		for _, f := range p.unit.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					p.reportf(imp.Pos(), "seedrand",
						"%s outside internal/rng; draw variates from internal/rng so seeds stay reproducible", path)
				}
			}
		}
	}
	for _, f := range p.unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRandSeedCall(p, call) {
				return true
			}
			if hasTimeDerivedArg(p, call) {
				p.reportf(call.Pos(), "seedrand",
					"seeding math/rand from the wall clock; every run becomes a different realization — use a fixed seed via internal/rng")
			}
			return true
		})
	}
}

// isRandSeedCall matches the math/rand (and v2) constructors and
// seeders whose argument determines the stream.
func isRandSeedCall(p *pass, call *ast.CallExpr) bool {
	if _, ok := pkgCallName(p, call, "math/rand", "NewSource", "New", "Seed"); ok {
		return true
	}
	if _, ok := pkgCallName(p, call, "math/rand/v2", "New", "NewPCG", "NewChaCha8"); ok {
		return true
	}
	if p.unit.Info == nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "rand" {
				switch sel.Sel.Name {
				case "NewSource", "New", "Seed", "NewPCG", "NewChaCha8":
					return true
				}
			}
		}
	}
	return false
}

// hasTimeDerivedArg reports whether any argument's subtree reaches
// time.Now (UnixNano and friends are methods on its result, so the
// root call is the telltale). Nested rand constructors are skipped —
// they carry their own finding at the inner call.
func hasTimeDerivedArg(p *pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(m ast.Node) bool {
			if found {
				return false
			}
			inner, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isRandSeedCall(p, inner) {
				return false
			}
			if _, ok := pkgCallName(p, inner, "time", "Now"); ok {
				found = true
				return false
			}
			return true
		})
	}
	return found
}
