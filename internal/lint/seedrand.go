package lint

// seedrand: every random number in a generated surface must flow from
// the seeded, splittable streams in internal/rng, or realizations stop
// being reproducible and the tiled/streaming engines lose their
// bit-identical-overlap guarantee. Importing math/rand (or v2)
// anywhere else is flagged at the import site.

import "strconv"

func runSeedrand(p *pass) {
	if p.unit.Dir == "internal/rng" {
		return
	}
	for _, f := range p.unit.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.reportf(imp.Pos(), "seedrand",
					"%s outside internal/rng; draw variates from internal/rng so seeds stay reproducible", path)
			}
		}
	}
}
