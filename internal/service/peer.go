package service

// Cluster serving: the peer-fetch proxy path and scene-registration
// fan-out (DESIGN.md §16). Tiles are deterministic, so sharding is a
// cache-locality policy, not a correctness mechanism: a tile request
// landing on a non-owner first asks the owning shard (whose LRU is the
// authoritative hot cache for that key) and falls back to rendering
// locally the moment the owner is down, shedding, or slow — every node
// can serve any tile, byte-identically, at worst paying a redundant
// render.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"roughsurface/internal/cluster"
)

const (
	// headerPeer marks a proxied tile request with the sender's node
	// name. The receiver serves it locally (never re-proxies: no
	// forwarding loops) and rejects it with 503 while draining.
	headerPeer = "X-RRS-Peer"
	// headerReplicated marks a fanned-out scene registration so the
	// receiver does not fan out again.
	headerReplicated = "X-RRS-Replicated"
	// headerShard reports the owning shard of the requested tile key
	// under the current membership view.
	headerShard = "X-RRS-Shard"
	// headerServedBy reports the node that actually produced (rendered
	// or cache-served) the response bytes.
	headerServedBy = "X-RRS-Served-By"
)

// maxPeerTileBody bounds a proxied tile response body: the largest
// legal tile is MaxTileSamples float32 samples, and PNG encodings of
// the same windows are smaller; 4 bytes per sample plus slack covers
// every legitimate response.
func (s *Server) maxPeerTileBody() int64 {
	return int64(s.cfg.MaxTileSamples)*4 + 1<<16
}

// peerResult is the outcome of one proxied tile fetch.
type peerResult struct {
	body       []byte
	ctype      string
	ownerCache string // the owner's X-Cache (hit/miss) for per-peer counters
	status     int    // non-200 status from the owner, 0 on transport error
	err        error  // transport error (owner unreachable)
}

// flight is one in-progress peer fetch, shared by every concurrent
// request for the same tile key (singleflight): the first caller
// dials, the rest park on done and reuse the result.
type flight struct {
	done chan struct{}
	res  peerResult
}

// peerFetch proxies one tile request to its owning shard, coalescing
// concurrent fetches of the same key. ctx bounds the dial and body
// read for the leader, and the wait for followers.
func (s *Server) peerFetch(ctx context.Context, owner cluster.Peer, uri, key string) peerResult {
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		s.flightMu.Unlock()
		select {
		case <-f.done:
			return f.res
		case <-ctx.Done():
			return peerResult{err: ctx.Err()}
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()

	f.res = s.peerFetchOnce(ctx, owner, uri)
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)
	return f.res
}

func (s *Server) peerFetchOnce(ctx context.Context, owner cluster.Peer, uri string) peerResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner.URL+uri, nil)
	if err != nil {
		return peerResult{err: err}
	}
	req.Header.Set(headerPeer, s.cluster.Self())
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return peerResult{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a bounded slug so the connection can be reused.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return peerResult{status: resp.StatusCode}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, s.maxPeerTileBody()))
	if err != nil {
		return peerResult{err: err}
	}
	return peerResult{
		body:       body,
		ctype:      resp.Header.Get("Content-Type"),
		ownerCache: resp.Header.Get("X-Cache"),
		status:     http.StatusOK,
	}
}

// fetchFromOwner tries to fetch the tile from its owning shard,
// returning the entry to serve plus the owner's cache disposition. A
// false return means the caller must fall back to a local render (the
// per-peer fallback counter has already been incremented with the
// reason). Successful proxied bodies are cached locally too: the
// owner's LRU stays the authoritative hot cache, but repeat traffic
// through this node becomes a local hit.
func (s *Server) fetchFromOwner(ctx context.Context, uri string, owner cluster.Peer, level int, key string) (*cacheEntry, string, bool) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	res := s.peerFetch(ctx, owner, uri, key)
	switch {
	case res.err != nil:
		// Unreachable: mark it down now (the prober will confirm) so
		// the very next request routes around it.
		s.cluster.MarkAlive(owner.Name, false)
		s.met.countPeer(owner.Name, "fallback_down")
		return nil, "", false
	case res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable:
		// The owner is shedding or draining; it is alive, just busy.
		s.met.countPeer(owner.Name, "fallback_shed")
		return nil, "", false
	case res.status != http.StatusOK:
		s.met.countPeer(owner.Name, "fallback_error")
		return nil, "", false
	}
	if res.ownerCache == "hit" {
		s.met.countPeer(owner.Name, "proxy_hit")
	} else {
		s.met.countPeer(owner.Name, "proxy_miss")
	}
	s.cache.add(&cacheEntry{key: key, body: res.body, ctype: res.ctype, pinned: s.pinLevel(level)})
	return &cacheEntry{body: res.body, ctype: res.ctype}, res.ownerCache, true
}

// fanoutScene replicates a freshly-registered scene's canonical JSON
// to every other peer so any node can serve its tiles. Content
// addressing makes replication idempotent (re-posting is a no-op with
// the same ID), so failures are tolerable: they are counted per peer
// and the local registration still succeeds — an operator retry or the
// next registration through any node converges the fleet.
func (s *Server) fanoutScene(ctx context.Context, canonical []byte) int {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.FanoutTimeout)
	defer cancel()
	replicated := 0
	for _, p := range s.cluster.Snapshot().Peers {
		if p.Name == s.cluster.Self() {
			continue
		}
		if err := s.postScenePeer(ctx, p.URL, canonical); err != nil {
			s.met.countPeer(p.Name, "fanout_error")
			continue
		}
		replicated++
	}
	return replicated
}

func (s *Server) postScenePeer(ctx context.Context, baseURL string, canonical []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/scene",
		strings.NewReader(string(canonical)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerReplicated, s.cluster.Self())
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("service: peer scene post: %d", resp.StatusCode)
	}
	return nil
}

// handleCluster is GET /v1/cluster: the epoch-stamped membership view.
func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "not clustered (no -peers configured)")
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Snapshot())
}
