package service

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

// f32ServeTol bounds the wire-level disagreement between an f32-served
// tile and the f64 reference render of the same window: 1e-4 of the
// largest fixture σh (2.5), the DESIGN.md §13 budget. Violations at
// O(σh) would mean the f32 pipeline rendered a different surface.
const f32ServeTol = 1e-4 * 2.5

// TestTilePrecisionParam drives ?precision= through every fixture:
// agreement with the f64 reference, cache-key separation between the
// precisions, and native f32 determinism.
func TestTilePrecisionParam(t *testing.T) {
	for _, fixture := range []struct{ name, doc string }{
		{"homog", fixtureHomog}, {"plate", fixturePlate}, {"point", fixturePoint},
	} {
		t.Run(fixture.name, func(t *testing.T) {
			_, ts := testServer(t, Config{Workers: 2})
			id := postScene(t, ts, fixture.doc)
			base := "/v1/scene/" + id + "/tile/-32,-32,64x64?seed=7"

			ref, _ := getTile(t, ts, base+"&precision=f64")
			f32Body, c1 := getTile(t, ts, base+"&precision=f32")
			if c1 != "miss" {
				t.Errorf("f32 tile after f64 tile: X-Cache %q, want miss (separate key)", c1)
			}
			if len(f32Body) != 64*64*4 {
				t.Fatalf("f32-precision tile is %d bytes, want %d", len(f32Body), 64*64*4)
			}
			want := decodeF32(ref)
			got := decodeF32(f32Body)
			for i := range got {
				if d := math.Abs(float64(got[i]) - float64(want[i])); d > f32ServeTol {
					t.Fatalf("sample %d: f32 render %g vs f64 reference %g (|Δ|=%.3g > %.3g)",
						i, got[i], want[i], d, f32ServeTol)
				}
			}

			again, c2 := getTile(t, ts, base+"&precision=f32")
			if c2 != "hit" || !bytes.Equal(again, f32Body) {
				t.Errorf("repeat f32 fetch: X-Cache %q, bytes equal %v; want hit with identical body",
					c2, bytes.Equal(again, f32Body))
			}
			// Default precision is f64: the bare path must hit the f64 entry.
			_, c3 := getTile(t, ts, base)
			if c3 != "hit" {
				t.Errorf("default-precision fetch: X-Cache %q, want hit on the f64 entry", c3)
			}
		})
	}
}

// TestTilePrecisionPNG: f32 precision composes with the PNG format
// (render at f32, widen into the shared colormapper).
func TestTilePrecisionPNG(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	id := postScene(t, ts, fixtureHomog)
	resp, err := http.Get(ts.URL + "/v1/scene/" + id + "/tile/0,0,32x32?format=png&precision=f32")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("png+f32: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("Content-Type %q, want image/png", ct)
	}
	if !bytes.HasPrefix(body, []byte("\x89PNG")) {
		t.Fatal("body is not a PNG")
	}
}

// TestTilePrecisionErrors pins the field-path error style for the new
// query parameter.
func TestTilePrecisionErrors(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	id := postScene(t, ts, fixtureHomog)
	resp, err := http.Get(ts.URL + "/v1/scene/" + id + "/tile/0,0,8x8?precision=f16")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("precision=f16: status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body %q: %v", body, err)
	}
	if e.Error != `precision "f16": want f32 or f64` {
		t.Fatalf("error %q missing field-path message", e.Error)
	}
}

// TestScenePrecisionDefault: a scene registered with "precision":"f32"
// serves f32 tiles by default, ?precision=f64 overrides back to the
// reference engine, and spelling out "f64" does not change the scene's
// content address.
func TestScenePrecisionDefault(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	docF32 := strings.Replace(fixtureHomog, `"method"`, `"precision":"f32","method"`, 1)
	id := postScene(t, ts, docF32)
	base := "/v1/scene/" + id + "/tile/-16,-16,32x32?seed=3"

	def, _ := getTile(t, ts, base)
	explicit, c := getTile(t, ts, base+"&precision=f32")
	if c != "hit" || !bytes.Equal(def, explicit) {
		t.Errorf("scene-default f32 and explicit f32 differ (X-Cache %q)", c)
	}
	ref, c := getTile(t, ts, base+"&precision=f64")
	if c != "miss" {
		t.Errorf("f64 override: X-Cache %q, want miss", c)
	}
	want := decodeF32(ref)
	got := decodeF32(def)
	for i := range got {
		if d := math.Abs(float64(got[i]) - float64(want[i])); d > f32ServeTol {
			t.Fatalf("sample %d: default f32 %g vs f64 override %g (|Δ|=%.3g)", i, got[i], want[i], d)
		}
	}

	// precision is a render knob, not surface identity: "f32" hashes
	// differently from absent (it changes default serving behavior),
	// but "f64" collapses to the historical address.
	docF64 := strings.Replace(fixtureHomog, `"method"`, `"precision":"f64","method"`, 1)
	if got, want := postScene(t, ts, docF64), postScene(t, ts, fixtureHomog); got != want {
		t.Errorf(`"precision":"f64" changed scene id: %s vs %s`, got, want)
	}
}
