package service

import (
	"container/list"
	"sync"
)

// tileCache is a byte-capacity-bounded LRU over encoded tile bodies.
// Keys are the full identity of a response — (sceneID, level, seed,
// window, format, precision) — so a hit can be streamed verbatim: tiles
// are deterministic functions of their key, which is what makes an LRU
// (rather than a TTL cache) the right shape; entries never go stale,
// they only get cold.
//
// Pyramid awareness: coarse-level tiles are as expensive to render as
// fine ones (same sample count) but each one covers 4^z times the map
// area, so a zoom-out renders through them constantly. A flood of
// level-0 tiles from one panning client must not evict them. Entries
// admitted with pinned=true are therefore charged to a separate byte
// budget with its own LRU list; the two tiers never evict each other.
//
// Bodies are immutable after insertion: get returns the stored slice
// and callers must only read it.
type tileCache struct {
	mu       sync.Mutex
	capBytes int64 // main tier budget; <= 0 disables the whole cache
	pinCap   int64 // pinned tier budget; <= 0 folds pinned adds into the main tier
	used     int64
	pinUsed  int64
	ll       *list.List // main tier, front = most recently used
	pinLL    *list.List // pinned tier
	items    map[string]*list.Element
}

// cacheEntry is one encoded tile response.
type cacheEntry struct {
	key    string
	body   []byte
	ctype  string
	pinned bool
}

// entryOverhead approximates the fixed per-entry bookkeeping a cached
// tile costs beyond its strings: the cacheEntry struct, its
// list.Element, and the map bucket slot. Charged so a flood of tiny
// coarse-level tiles cannot blow past the configured budget on
// overhead the old body-bytes-only accounting never saw.
const entryOverhead = 128

// size is the bytes an entry is charged against its tier's budget:
// payload plus key and content-type strings plus fixed overhead.
func (e *cacheEntry) size() int64 {
	return int64(len(e.body)) + int64(len(e.key)) + int64(len(e.ctype)) + entryOverhead
}

// newTileCache bounds the main tier at capBytes and the pinned tier at
// pinCap. capBytes <= 0 disables caching entirely: every get misses,
// every add is dropped.
func newTileCache(capBytes, pinCap int64) *tileCache {
	return &tileCache{
		capBytes: capBytes,
		pinCap:   pinCap,
		ll:       list.New(),
		pinLL:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

func (c *tileCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.pinned {
		c.pinLL.MoveToFront(el)
	} else {
		c.ll.MoveToFront(el)
	}
	return e, true
}

// contains reports presence without touching recency — the prefetcher
// probes with it, and a probe is not a use.
func (c *tileCache) contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

func (c *tileCache) add(e *cacheEntry) {
	if c.capBytes <= 0 {
		return
	}
	if e.pinned && c.pinCap <= 0 {
		e.pinned = false // no pinned budget: compete in the main tier
	}
	size := e.size()
	budget, used, ll := c.capBytes, &c.used, c.ll
	if e.pinned {
		budget, used, ll = c.pinCap, &c.pinUsed, c.pinLL
	}
	if size > budget {
		return // a single over-capacity tile would evict everything for nothing
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		// Deterministic tiles: an existing entry is byte-identical, so
		// just refresh recency in whichever tier it landed.
		if el.Value.(*cacheEntry).pinned {
			c.pinLL.MoveToFront(el)
		} else {
			c.ll.MoveToFront(el)
		}
		return
	}
	c.items[e.key] = ll.PushFront(e)
	*used += size
	for *used > budget {
		back := ll.Back()
		if back == nil {
			break
		}
		old := back.Value.(*cacheEntry)
		ll.Remove(back)
		delete(c.items, old.key)
		*used -= old.size()
	}
}

// bytes reports the charged bytes across both tiers, for the metrics
// gauge.
func (c *tileCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used + c.pinUsed
}

// pinnedBytes reports the pinned tier's charged bytes.
func (c *tileCache) pinnedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pinUsed
}

// len reports the entry count across both tiers, for the metrics gauge.
func (c *tileCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len() + c.pinLL.Len()
}

// pinnedLen reports the pinned tier's entry count.
func (c *tileCache) pinnedLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pinLL.Len()
}
