package service

import (
	"container/list"
	"sync"
)

// tileCache is a byte-capacity-bounded LRU over encoded tile bodies.
// Keys are the full identity of a response — (sceneID, seed, window,
// format) — so a hit can be streamed verbatim: tiles are deterministic
// functions of their key, which is what makes an LRU (rather than a
// TTL cache) the right shape; entries never go stale, they only get
// cold.
//
// Bodies are immutable after insertion: get returns the stored slice
// and callers must only read it.
type tileCache struct {
	mu       sync.Mutex
	capBytes int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

// cacheEntry is one encoded tile response.
type cacheEntry struct {
	key   string
	body  []byte
	ctype string
}

// newTileCache bounds the cache at capBytes of body data (keys and
// bookkeeping overhead are not counted). capBytes <= 0 disables
// caching entirely: every get misses, every add is dropped.
func newTileCache(capBytes int64) *tileCache {
	return &tileCache{
		capBytes: capBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

func (c *tileCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

func (c *tileCache) add(e *cacheEntry) {
	size := int64(len(e.body))
	if size > c.capBytes {
		return // a single over-capacity tile would evict everything for nothing
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		// Deterministic tiles: an existing entry is byte-identical, so
		// just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	c.used += size
	for c.used > c.capBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		old := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, old.key)
		c.used -= int64(len(old.body))
	}
}

// bytes reports the cached body bytes, for the metrics gauge.
func (c *tileCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// len reports the entry count, for the metrics gauge.
func (c *tileCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
