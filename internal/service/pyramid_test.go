package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestPyramidRouteAliasesLevel0 pins the compatibility contract: a z=0
// pyramid tile is byte-identical to the free-window route's tile over
// the same lattice window, and the two share cache entries.
func TestPyramidRouteAliasesLevel0(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, TileEdge: 64})
	id := postScene(t, ts, fixtureHomog)

	old, oldCache := getTile(t, ts, "/v1/scene/"+id+"/tile/0,0,64x64?seed=5")
	viaZ, zCache := getTile(t, ts, "/v1/scene/"+id+"/tile/0/0,0?seed=5")
	if !bytes.Equal(old, viaZ) {
		t.Error("z=0 pyramid tile differs from free-window route bytes")
	}
	if oldCache != "miss" || zCache != "hit" {
		t.Errorf("X-Cache sequence %q, %q; want miss then hit — the routes must share cache entries", oldCache, zCache)
	}

	// Off-origin tile coordinates address multiples of TileEdge.
	shifted, _ := getTile(t, ts, "/v1/scene/"+id+"/tile/0/-1,2?seed=5")
	direct, _ := getTile(t, ts, "/v1/scene/"+id+"/tile/-64,128,64x64?seed=5")
	if !bytes.Equal(shifted, direct) {
		t.Error("tile (-1,2) differs from window (-64,128,64x64)")
	}
}

// TestPyramidLevelsDifferAndAreDeterministic: coarser levels render a
// different (decimated) lattice, deterministically.
func TestPyramidLevelsDifferAndAreDeterministic(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, TileEdge: 64})
	id := postScene(t, ts, fixtureHomog)

	z0, _ := getTile(t, ts, "/v1/scene/"+id+"/tile/0/0,0?seed=1")
	z2a, _ := getTile(t, ts, "/v1/scene/"+id+"/tile/2/0,0?seed=1")
	z2b, _ := getTile(t, ts, "/v1/scene/"+id+"/tile/2/0,0?seed=1")
	if len(z2a) != 64*64*4 {
		t.Fatalf("z=2 tile is %d bytes, want %d", len(z2a), 64*64*4)
	}
	if !bytes.Equal(z2a, z2b) {
		t.Error("z=2 tile not deterministic")
	}
	if bytes.Equal(z0, z2a) {
		t.Error("z=2 tile identical to z=0; level ignored")
	}

	// The inhomogeneous engine serves levels too (weight maps re-derived
	// at the decimated spacing).
	pid := postScene(t, ts, fixturePlate)
	p2, _ := getTile(t, ts, "/v1/scene/"+pid+"/tile/2/0,0?seed=1")
	if len(p2) != 64*64*4 {
		t.Fatalf("plate z=2 tile is %d bytes, want %d", len(p2), 64*64*4)
	}
}

// TestPyramidHeadersAndValidation covers the new route's headers
// (X-RRS-Level, Link prefetch hints) and its client-error paths.
func TestPyramidHeadersAndValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, TileEdge: 64, MaxLevel: 4})
	id := postScene(t, ts, fixtureHomog)

	resp, err := http.Get(ts.URL + "/v1/scene/" + id + "/tile/1/3,-2?seed=9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("z=1 tile: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-RRS-Level"); got != "1" {
		t.Errorf("X-RRS-Level = %q, want 1", got)
	}
	if got := resp.Header.Get("X-RRS-Window"); got != "192,-128,64x64" {
		t.Errorf("X-RRS-Window = %q, want 192,-128,64x64", got)
	}
	links := resp.Header.Values("Link")
	if len(links) != 4 {
		t.Fatalf("got %d Link headers, want 4: %q", len(links), links)
	}
	for _, want := range []string{"/tile/1/2,-2", "/tile/1/4,-2", "/tile/1/3,-3", "/tile/1/3,-1"} {
		found := false
		for _, l := range links {
			if strings.Contains(l, want) && strings.Contains(l, `rel=prefetch`) && strings.Contains(l, "seed=9") {
				found = true
			}
		}
		if !found {
			t.Errorf("no prefetch Link hint for %s in %q", want, links)
		}
	}

	for _, path := range []string{
		"/tile/5/0,0",   // beyond MaxLevel
		"/tile/-1/0,0",  // negative level
		"/tile/x/0,0",   // non-numeric level
		"/tile/1/0",     // missing y
		"/tile/1/a,b",   // non-numeric coords
		"/tile/1/0,0,0", // trailing junk in y
	} {
		resp, err := http.Get(ts.URL + "/v1/scene/" + id + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestPerLevelMetrics asserts /metrics exposes hit/miss counters per
// pyramid level (the zoom-walk observability the pyramid exists for).
func TestPerLevelMetrics(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, TileEdge: 32, PrefetchQueue: -1})
	id := postScene(t, ts, fixtureHomog)

	getTile(t, ts, "/v1/scene/"+id+"/tile/2/0,0?seed=1") // miss
	getTile(t, ts, "/v1/scene/"+id+"/tile/2/0,0?seed=1") // hit
	getTile(t, ts, "/v1/scene/"+id+"/tile/0/0,0?seed=1") // miss

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`rrsd_tile_level_hits_total{level="2"} 1`,
		`rrsd_tile_level_misses_total{level="2"} 1`,
		`rrsd_tile_level_hits_total{level="0"} 0`,
		`rrsd_tile_level_misses_total{level="0"} 1`,
		`rrsd_prefetch_dropped_total 0`,
		`rrsd_tile_cache_pinned_bytes`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Untouched levels stay out of the scrape (bounded cardinality).
	if strings.Contains(out, `level="5"`) {
		t.Error("metrics emit counters for levels with no traffic")
	}
}

// TestPinnedLevelAdmission: tiles at levels >= PinLevel land in the
// pinned tier and survive a flood of level-0 tiles through the main
// tier.
func TestPinnedLevelAdmission(t *testing.T) {
	// Main budget fits ~2 tiles of 32×32×4 = 4096 bytes (+overhead);
	// pinned budget holds the coarse tile.
	s, ts := testServer(t, Config{
		Workers: 2, TileEdge: 32, PinLevel: 2,
		CacheBytes: 10000, PinCacheBytes: 10000, PrefetchQueue: -1,
	})
	id := postScene(t, ts, fixtureHomog)

	getTile(t, ts, "/v1/scene/"+id+"/tile/3/0,0?seed=1")
	if got := s.cache.pinnedLen(); got != 1 {
		t.Fatalf("pinned tier holds %d entries after a z=3 render, want 1", got)
	}
	for i := 0; i < 6; i++ {
		getTile(t, ts, fmt.Sprintf("/v1/scene/%s/tile/0/%d,0?seed=1", id, i))
	}
	if _, cache := getTile(t, ts, "/v1/scene/"+id+"/tile/3/0,0?seed=1"); cache != "hit" {
		t.Error("pinned z=3 tile evicted by level-0 churn")
	}
}

// neighborCacheKey computes the cache key the prefetcher uses for a
// pyramid neighbor, for white-box cache probing.
func neighborCacheKey(s *Server, id string, z int, x, y int64, seed uint64) string {
	edge := s.cfg.TileEdge
	win := window{x0: x * int64(edge), y0: y * int64(edge), nx: edge, ny: edge}
	return cacheKey(id, z, seed, win, formatF32, "f64")
}

// TestPrefetchWarmsNeighbors: after serving a pyramid tile, the four
// lattice neighbors appear in the cache without any further requests.
func TestPrefetchWarmsNeighbors(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2, TileEdge: 32})
	id := postScene(t, ts, fixtureHomog)

	getTile(t, ts, "/v1/scene/"+id+"/tile/1/0,0?seed=1")
	deadline := time.Now().Add(10 * time.Second)
	neighbors := [][2]int64{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
	for {
		warm := 0
		for _, nb := range neighbors {
			if s.cache.contains(neighborCacheKey(s, id, 1, nb[0], nb[1], 1)) {
				warm++
			}
		}
		if warm == len(neighbors) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d neighbors prefetched within deadline", warm, len(neighbors))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A client following the Link hint gets a hit.
	if _, cache := getTile(t, ts, "/v1/scene/"+id+"/tile/1/1,0?seed=1"); cache != "hit" {
		t.Error("prefetched neighbor served as a miss")
	}
}

// TestPrefetchSaturationKeepsForegroundFast is the satellite
// saturation test: with the prefetch worker jammed and its queue full,
// prefetch jobs are shed — and foreground tile latency is unaffected.
func TestPrefetchSaturationKeepsForegroundFast(t *testing.T) {
	s, ts := testServer(t, Config{
		Workers: 2, QueueDepth: 4, TileEdge: 32,
		PrefetchWorkers: 1, PrefetchQueue: 1,
	})
	id := postScene(t, ts, fixtureHomog)

	// Pay one-time kernel design before measuring latencies.
	getTile(t, ts, "/v1/scene/"+id+"/tile/1/100,100?seed=1")

	block := make(chan struct{})
	started := make(chan struct{})
	if !s.prefetch.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("failed to occupy the prefetch worker")
	}
	<-started
	if !s.prefetch.TrySubmit(func() {}) {
		t.Fatal("failed to fill the prefetch queue slot")
	}
	defer close(block)

	droppedBefore := s.met.prefetchDropped.Load()
	for i := 0; i < 4; i++ {
		begin := time.Now()
		body, cache := getTile(t, ts, fmt.Sprintf("/v1/scene/%s/tile/1/%d,0?seed=1", id, i))
		if len(body) != 32*32*4 || cache != "miss" {
			t.Fatalf("foreground tile %d: %d bytes, cache %q", i, len(body), cache)
		}
		// Generous bound: a fresh 32×32 render is milliseconds; only a
		// foreground path blocked behind prefetch could approach it.
		if elapsed := time.Since(begin); elapsed > 2*time.Second {
			t.Errorf("foreground tile %d took %s while prefetch saturated", i, elapsed)
		}
	}
	if dropped := s.met.prefetchDropped.Load() - droppedBefore; dropped == 0 {
		t.Error("prefetch queue full but no jobs were shed")
	}
}
