package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"roughsurface/internal/core"
	"roughsurface/internal/grid"
	"roughsurface/internal/render"
)

// window is one requested tile: lattice lower corner and sample counts.
// For pyramid requests the coordinates are in the level's own lattice
// (level-z lattice point i sits at physical i·Dx·2^z).
type window struct {
	x0, y0 int64
	nx, ny int
}

// parseWindow decodes the "{x0},{y0},{nx}x{ny}" path segment, e.g.
// "-128,0,256x64".
func parseWindow(s string) (window, error) {
	var w window
	parts := strings.SplitN(s, ",", 3)
	if len(parts) != 3 {
		return w, fmt.Errorf("window %q: want x0,y0,NXxNY", s)
	}
	var err error
	if w.x0, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return w, fmt.Errorf("window x0 %q: not an integer", parts[0])
	}
	if w.y0, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return w, fmt.Errorf("window y0 %q: not an integer", parts[1])
	}
	dims := strings.SplitN(parts[2], "x", 2)
	if len(dims) != 2 {
		return w, fmt.Errorf("window size %q: want NXxNY", parts[2])
	}
	if w.nx, err = strconv.Atoi(dims[0]); err != nil || w.nx < 1 {
		return w, fmt.Errorf("window nx %q: want a positive integer", dims[0])
	}
	if w.ny, err = strconv.Atoi(dims[1]); err != nil || w.ny < 1 {
		return w, fmt.Errorf("window ny %q: want a positive integer", dims[1])
	}
	return w, nil
}

// Tile formats.
const (
	formatF32 = "f32" // row-major little-endian float32, row 0 first
	formatPNG = "png" // terrain-colormapped render.PNG
)

// cacheKey is the full identity of a tile response. precision is part
// of the key because f32 and f64 renders of the same window differ in
// bytes (within tolerance, but cached responses must be reproducible
// bit-for-bit for their parameters). level is part of the key because
// the same window coordinates address different lattices per level;
// level 0 keeps the pre-pyramid key shape so a warm cache stays valid
// across the route addition.
func cacheKey(sceneID string, level int, seed uint64, w window, format, precision string) string {
	if level == 0 {
		return fmt.Sprintf("%s|%d|%d,%d,%dx%d|%s|%s", sceneID, seed, w.x0, w.y0, w.nx, w.ny, format, precision)
	}
	return fmt.Sprintf("%s|z%d|%d|%d,%d,%dx%d|%s|%s", sceneID, level, seed, w.x0, w.y0, w.nx, w.ny, format, precision)
}

// tileParams are the query-derived knobs shared by both tile routes.
type tileParams struct {
	seed      uint64
	format    string
	precision string
}

// parseTileParams resolves seed/format/precision from the query, with
// scene defaults. Errors are client errors (400).
func parseTileParams(r *http.Request, entry *sceneEntry) (tileParams, error) {
	p := tileParams{seed: entry.Scene.Seed, format: formatF32}
	q := r.URL.Query()
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("seed %q: want an unsigned integer", v)
		}
		p.seed = seed
	}
	if v := q.Get("format"); v != "" {
		if v != formatF32 && v != formatPNG {
			return p, fmt.Errorf("format %q: want f32 or png", v)
		}
		p.format = v
	}
	p.precision = entry.Scene.Precision // normalized: "" means f64
	if p.precision == "" {
		p.precision = core.PrecisionF64
	}
	if v := q.Get("precision"); v != "" {
		if v != core.PrecisionF32 && v != core.PrecisionF64 {
			return p, fmt.Errorf("precision %q: want f32 or f64", v)
		}
		p.precision = v
	}
	return p, nil
}

// handleTile is GET /v1/scene/{id}/tile/{win} — the original
// free-window route, kept as the level-0 alias of the pyramid: its
// cache keys, response bytes, and scene IDs are unchanged by the
// pyramid's existence.
func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scene id")
		return
	}
	win, err := parseWindow(r.PathValue("win"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if win.nx > s.cfg.MaxTileEdge || win.ny > s.cfg.MaxTileEdge ||
		win.nx*win.ny > s.cfg.MaxTileSamples {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("tile %dx%d exceeds limits (max edge %d, max samples %d)",
				win.nx, win.ny, s.cfg.MaxTileEdge, s.cfg.MaxTileSamples))
		return
	}
	p, err := parseTileParams(r, entry)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveTile(w, r, entry, 0, win, p)
}

// maxTileCoord bounds pyramid tile coordinates so x·TileEdge cannot
// overflow int64 (TileEdge ≤ 4096 = 2^12, so products stay < 2^53).
const maxTileCoord = int64(1) << 40

// handleTileZ is GET /v1/scene/{id}/tile/{z}/{x},{y} — the pyramid
// route. Tiles are fixed TileEdge×TileEdge windows on level z's
// lattice: tile (x, y) covers level-z samples [x·E, (x+1)·E) ×
// [y·E, (y+1)·E). z=0 renders the same surface bytes as the free-window
// route; coarser z renders exactly at decimated spacing (DESIGN.md
// §14). Responses carry Link: rel=prefetch hints for the four lattice
// neighbors, and the daemon best-effort prefetches them in the
// background.
func (s *Server) handleTileZ(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scene id")
		return
	}
	z, err := strconv.Atoi(r.PathValue("z"))
	if err != nil || z < 0 || z > s.cfg.MaxLevel {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("level %q: want an integer in [0, %d]", r.PathValue("z"), s.cfg.MaxLevel))
		return
	}
	x, y, err := parseTileXY(r.PathValue("xy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := parseTileParams(r, entry)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	edge := s.cfg.TileEdge
	win := window{x0: x * int64(edge), y0: y * int64(edge), nx: edge, ny: edge}
	h := w.Header()
	h.Set("X-RRS-Level", strconv.Itoa(z))
	for _, nb := range neighborTiles(x, y) {
		h.Add("Link", fmt.Sprintf("</v1/scene/%s/tile/%d/%d,%d?seed=%d&format=%s>; rel=prefetch",
			entry.ID, z, nb[0], nb[1], p.seed, p.format))
	}
	s.serveTile(w, r, entry, z, win, p)
	// Detached from the request: the hinted neighbors should keep
	// warming even after this response is written and the client gone.
	s.schedulePrefetch(context.WithoutCancel(r.Context()), entry, z, x, y, p)
}

// parseTileXY decodes the "{x},{y}" path segment of the pyramid route.
func parseTileXY(s string) (x, y int64, err error) {
	xs, ys, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("tile %q: want x,y", s)
	}
	if x, err = strconv.ParseInt(xs, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("tile x %q: not an integer", xs)
	}
	if y, err = strconv.ParseInt(ys, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("tile y %q: not an integer", ys)
	}
	if x < -maxTileCoord || x > maxTileCoord || y < -maxTileCoord || y > maxTileCoord {
		return 0, 0, fmt.Errorf("tile %d,%d: coordinates exceed ±2^40", x, y)
	}
	return x, y, nil
}

// neighborTiles lists the four lattice neighbors of tile (x, y), the
// prefetch frontier of a panning client. Neighbors past the coordinate
// bound are dropped.
func neighborTiles(x, y int64) [][2]int64 {
	all := [4][2]int64{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}}
	nbs := make([][2]int64, 0, 4)
	for _, nb := range all {
		if nb[0] < -maxTileCoord || nb[0] > maxTileCoord || nb[1] < -maxTileCoord || nb[1] > maxTileCoord {
			continue
		}
		nbs = append(nbs, nb)
	}
	return nbs
}

// serveTile is the shared render-or-cache path behind both tile routes.
// The fast path is a pure cache read; misses in cluster mode first try
// the tile's owning shard (DESIGN.md §16) before passing admission
// control (bounded pool + queue, shedding with 429) and rendering
// locally under the per-request deadline.
func (s *Server) serveTile(w http.ResponseWriter, r *http.Request, entry *sceneEntry, level int, win window, p tileParams) {
	key := cacheKey(entry.ID, level, p.seed, win, p.format, p.precision)
	fromPeer := s.cluster != nil && r.Header.Get(headerPeer) != ""
	if fromPeer && s.draining.Load() {
		// Ahead of shutdown: shed peer traffic immediately so the
		// sender falls back to its own renderer (drain ordering,
		// DESIGN.md §16). Direct clients keep being served below.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.cluster != nil {
		w.Header().Set(headerServedBy, s.cluster.Self())
	}
	if e, ok := s.cache.get(key); ok {
		s.met.cacheHits.Add(1)
		s.met.levelHits[level].Add(1)
		writeTile(w, e, win, "hit")
		return
	}
	if s.cluster != nil && !fromPeer {
		if owner, ok := s.cluster.Owner(key); ok {
			w.Header().Set(headerShard, owner.Name)
			if owner.Name != s.cluster.Self() {
				// Not ours: the owner's LRU is the authoritative hot
				// cache for this key. On failure fetchFromOwner has
				// counted the per-peer fallback reason and we render
				// locally below.
				if e, ownerCache, ok := s.fetchFromOwner(r.Context(), r.URL.RequestURI(), owner, level, key); ok {
					w.Header().Set(headerServedBy, owner.Name)
					writeTile(w, e, win, ownerCache)
					return
				}
			}
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	done := make(chan tileResult, 1) // buffered: render may finish after we stop waiting
	accepted := s.pool.TrySubmit(func() {
		if ctx.Err() != nil {
			// The client gave up (or the deadline passed) while this job
			// sat in the queue; skip the render.
			done <- tileResult{err: ctx.Err()}
			return
		}
		res := s.renderTile(ctx, entry, level, p.seed, win, p.format, p.precision)
		if res.err == nil {
			s.cache.add(&cacheEntry{key: key, body: res.body, ctype: res.ctype, pinned: s.pinLevel(level)})
		}
		done <- res
	})
	if !accepted {
		s.met.tileShed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tile workers saturated")
		return
	}
	select {
	case res := <-done:
		if res.err != nil {
			if ctx.Err() != nil {
				s.met.tileExpired.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, "tile deadline exceeded")
				return
			}
			//lint:ignore detflow error payloads are client diagnostics, not content-addressed artifacts
			writeError(w, http.StatusInternalServerError, res.err.Error())
			return
		}
		s.met.cacheMisses.Add(1)
		s.met.levelMisses[level].Add(1)
		writeTile(w, &cacheEntry{body: res.body, ctype: res.ctype}, win, "miss")
	case <-ctx.Done():
		// The render (still running) will deliver into the buffered
		// channel and populate the cache for the retry this response
		// invites.
		s.met.tileExpired.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "tile deadline exceeded")
	}
}

// pinLevel reports whether tiles at this level land in the pinned
// cache tier: levels ≥ PinLevel are coarse, tiny relative to the area
// they cover, and reheated by every zoom-out, so they get a budget the
// level-0 flood cannot evict.
func (s *Server) pinLevel(level int) bool {
	return s.cfg.PinLevel >= 0 && level >= s.cfg.PinLevel
}

// schedulePrefetch enqueues best-effort renders of the four lattice
// neighbors of the tile just served. Strictly subordinate to
// foreground traffic: jobs ride a separate one-worker pool whose
// TrySubmit sheds when its small queue is full, and a job that starts
// while the foreground render queue is non-empty gives up immediately
// rather than steal CPU from it. Dropped or skipped prefetches are
// never retried — the client's own request will render the tile and
// populate the same cache.
func (s *Server) schedulePrefetch(ctx context.Context, entry *sceneEntry, z int, x, y int64, p tileParams) {
	if s.prefetch == nil {
		return
	}
	edge := s.cfg.TileEdge
	for _, nb := range neighborTiles(x, y) {
		win := window{x0: nb[0] * int64(edge), y0: nb[1] * int64(edge), nx: edge, ny: edge}
		key := cacheKey(entry.ID, z, p.seed, win, p.format, p.precision)
		if s.cache.contains(key) {
			continue
		}
		accepted := s.prefetch.TrySubmit(func() {
			if s.pool.QueueDepth() > 0 {
				// Foreground renders are waiting for workers; a prefetch
				// now would delay a request someone is blocked on.
				s.met.prefetchSkipped.Add(1)
				return
			}
			if s.cache.contains(key) {
				return
			}
			pctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
			res := s.renderTile(pctx, entry, z, p.seed, win, p.format, p.precision)
			if res.err != nil {
				return // best effort: the foreground path will report real errors
			}
			s.cache.add(&cacheEntry{key: key, body: res.body, ctype: res.ctype, pinned: s.pinLevel(z)})
			s.met.prefetchRendered.Add(1)
		})
		if !accepted {
			s.met.prefetchDropped.Add(1)
		}
	}
}

type tileResult struct {
	body  []byte
	ctype string
	err   error
}

// renderTile generates and encodes one tile of pyramid level `level`.
// Runs on a pool worker; ctx carries the request deadline across the
// submit boundary. At f32 precision the surface renders through the
// single-precision SIMD pipeline (half the working set, vectorized MAC
// kernels) and the f32 wire format is emitted without a float64 round
// trip; PNG tiles widen the rendered samples for the shared
// colormapper.
func (s *Server) renderTile(ctx context.Context, entry *sceneEntry, level int, seed uint64, win window, format, precision string) tileResult {
	gen, err := entry.generator(ctx, level, seed)
	if err != nil {
		return tileResult{err: err}
	}
	if precision == core.PrecisionF32 {
		out := grid.New32(win.nx, win.ny)
		gen.generate32(out, win.x0, win.y0)
		if format == formatPNG {
			var buf bytes.Buffer
			if err := render.PNG(&buf, out.Widen()); err != nil {
				return tileResult{err: err}
			}
			return tileResult{body: buf.Bytes(), ctype: "image/png"}
		}
		return tileResult{body: encodeF32Native(out), ctype: "application/octet-stream"}
	}
	out := grid.New(win.nx, win.ny)
	gen.generate(out, win.x0, win.y0)
	switch format {
	case formatPNG:
		var buf bytes.Buffer
		if err := render.PNG(&buf, out); err != nil {
			return tileResult{err: err}
		}
		return tileResult{body: buf.Bytes(), ctype: "image/png"}
	default:
		return tileResult{body: encodeF32(out), ctype: "application/octet-stream"}
	}
}

// encodeF32 packs the grid row-major (row 0 first) as little-endian
// float32 — the wire format of the f32 tile. float32 halves bandwidth
// relative to the internal float64 at far more precision than surface
// statistics need, and the narrowing is deterministic.
func encodeF32(g *grid.Grid) []byte {
	body := make([]byte, 4*len(g.Data))
	for i, v := range g.Data {
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(float32(v)))
	}
	return body
}

// encodeF32Native packs an f32-rendered tile: the samples already hold
// the wire precision, so the body is their little-endian bits with no
// widen/narrow round trip.
func encodeF32Native(g *grid.Grid32) []byte {
	body := make([]byte, 4*len(g.Data))
	for i, v := range g.Data {
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(v))
	}
	return body
}

// decodeF32 is the inverse of encodeF32's framing (float32 precision);
// exported to tests and rrsload via the package boundary being shared.
func decodeF32(body []byte) []float32 {
	out := make([]float32, len(body)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return out
}

func writeTile(w http.ResponseWriter, e *cacheEntry, win window, cacheState string) {
	h := w.Header()
	h.Set("Content-Type", e.ctype)
	h.Set("Content-Length", strconv.Itoa(len(e.body)))
	h.Set("X-RRS-Window", fmt.Sprintf("%d,%d,%dx%d", win.x0, win.y0, win.nx, win.ny))
	h.Set("X-Cache", cacheState)
	h.Set("Cache-Control", "public, max-age=31536000, immutable") // tiles are content-addressed
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.body)
}
