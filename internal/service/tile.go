package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"roughsurface/internal/core"
	"roughsurface/internal/grid"
	"roughsurface/internal/render"
)

// window is one requested tile: lattice lower corner and sample counts.
type window struct {
	x0, y0 int64
	nx, ny int
}

// parseWindow decodes the "{x0},{y0},{nx}x{ny}" path segment, e.g.
// "-128,0,256x64".
func parseWindow(s string) (window, error) {
	var w window
	parts := strings.SplitN(s, ",", 3)
	if len(parts) != 3 {
		return w, fmt.Errorf("window %q: want x0,y0,NXxNY", s)
	}
	var err error
	if w.x0, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return w, fmt.Errorf("window x0 %q: not an integer", parts[0])
	}
	if w.y0, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return w, fmt.Errorf("window y0 %q: not an integer", parts[1])
	}
	dims := strings.SplitN(parts[2], "x", 2)
	if len(dims) != 2 {
		return w, fmt.Errorf("window size %q: want NXxNY", parts[2])
	}
	if w.nx, err = strconv.Atoi(dims[0]); err != nil || w.nx < 1 {
		return w, fmt.Errorf("window nx %q: want a positive integer", dims[0])
	}
	if w.ny, err = strconv.Atoi(dims[1]); err != nil || w.ny < 1 {
		return w, fmt.Errorf("window ny %q: want a positive integer", dims[1])
	}
	return w, nil
}

// Tile formats.
const (
	formatF32 = "f32" // row-major little-endian float32, row 0 first
	formatPNG = "png" // terrain-colormapped render.PNG
)

// cacheKey is the full identity of a tile response. precision is part
// of the key because f32 and f64 renders of the same window differ in
// bytes (within tolerance, but cached responses must be reproducible
// bit-for-bit for their parameters).
func cacheKey(sceneID string, seed uint64, w window, format, precision string) string {
	return fmt.Sprintf("%s|%d|%d,%d,%dx%d|%s|%s", sceneID, seed, w.x0, w.y0, w.nx, w.ny, format, precision)
}

// handleTile is GET /v1/scene/{id}/tile/{win}. The fast path is a pure
// cache read; misses pass admission control (bounded pool + queue,
// shedding with 429) and render under the per-request deadline.
func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scene id")
		return
	}
	win, err := parseWindow(r.PathValue("win"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if win.nx > s.cfg.MaxTileEdge || win.ny > s.cfg.MaxTileEdge ||
		win.nx*win.ny > s.cfg.MaxTileSamples {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("tile %dx%d exceeds limits (max edge %d, max samples %d)",
				win.nx, win.ny, s.cfg.MaxTileEdge, s.cfg.MaxTileSamples))
		return
	}
	seed := entry.Scene.Seed
	if q := r.URL.Query().Get("seed"); q != "" {
		if seed, err = strconv.ParseUint(q, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("seed %q: want an unsigned integer", q))
			return
		}
	}
	format := formatF32
	if q := r.URL.Query().Get("format"); q != "" {
		if q != formatF32 && q != formatPNG {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("format %q: want f32 or png", q))
			return
		}
		format = q
	}
	precision := entry.Scene.Precision // normalized: "" means f64
	if precision == "" {
		precision = core.PrecisionF64
	}
	if q := r.URL.Query().Get("precision"); q != "" {
		if q != core.PrecisionF32 && q != core.PrecisionF64 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("precision %q: want f32 or f64", q))
			return
		}
		precision = q
	}

	key := cacheKey(entry.ID, seed, win, format, precision)
	if e, ok := s.cache.get(key); ok {
		s.met.cacheHits.Add(1)
		writeTile(w, e, win, "hit")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	done := make(chan tileResult, 1) // buffered: render may finish after we stop waiting
	accepted := s.pool.TrySubmit(func() {
		if ctx.Err() != nil {
			// The client gave up (or the deadline passed) while this job
			// sat in the queue; skip the render.
			done <- tileResult{err: ctx.Err()}
			return
		}
		res := s.renderTile(ctx, entry, seed, win, format, precision)
		if res.err == nil {
			s.cache.add(&cacheEntry{key: key, body: res.body, ctype: res.ctype})
		}
		done <- res
	})
	if !accepted {
		s.met.tileShed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tile workers saturated")
		return
	}
	select {
	case res := <-done:
		if res.err != nil {
			if ctx.Err() != nil {
				s.met.tileExpired.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, "tile deadline exceeded")
				return
			}
			writeError(w, http.StatusInternalServerError, res.err.Error())
			return
		}
		s.met.cacheMisses.Add(1)
		writeTile(w, &cacheEntry{body: res.body, ctype: res.ctype}, win, "miss")
	case <-ctx.Done():
		// The render (still running) will deliver into the buffered
		// channel and populate the cache for the retry this response
		// invites.
		s.met.tileExpired.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "tile deadline exceeded")
	}
}

type tileResult struct {
	body  []byte
	ctype string
	err   error
}

// renderTile generates and encodes one tile. Runs on a pool worker;
// ctx carries the request deadline across the submit boundary. At f32
// precision the surface renders through the single-precision SIMD
// pipeline (half the working set, vectorized MAC kernels) and the f32
// wire format is emitted without a float64 round trip; PNG tiles widen
// the rendered samples for the shared colormapper.
func (s *Server) renderTile(ctx context.Context, entry *sceneEntry, seed uint64, win window, format, precision string) tileResult {
	gen, err := entry.generator(ctx, seed)
	if err != nil {
		return tileResult{err: err}
	}
	if precision == core.PrecisionF32 {
		out := grid.New32(win.nx, win.ny)
		gen.generate32(out, win.x0, win.y0)
		if format == formatPNG {
			var buf bytes.Buffer
			if err := render.PNG(&buf, out.Widen()); err != nil {
				return tileResult{err: err}
			}
			return tileResult{body: buf.Bytes(), ctype: "image/png"}
		}
		return tileResult{body: encodeF32Native(out), ctype: "application/octet-stream"}
	}
	out := grid.New(win.nx, win.ny)
	gen.generate(out, win.x0, win.y0)
	switch format {
	case formatPNG:
		var buf bytes.Buffer
		if err := render.PNG(&buf, out); err != nil {
			return tileResult{err: err}
		}
		return tileResult{body: buf.Bytes(), ctype: "image/png"}
	default:
		return tileResult{body: encodeF32(out), ctype: "application/octet-stream"}
	}
}

// encodeF32 packs the grid row-major (row 0 first) as little-endian
// float32 — the wire format of the f32 tile. float32 halves bandwidth
// relative to the internal float64 at far more precision than surface
// statistics need, and the narrowing is deterministic.
func encodeF32(g *grid.Grid) []byte {
	body := make([]byte, 4*len(g.Data))
	for i, v := range g.Data {
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(float32(v)))
	}
	return body
}

// encodeF32Native packs an f32-rendered tile: the samples already hold
// the wire precision, so the body is their little-endian bits with no
// widen/narrow round trip.
func encodeF32Native(g *grid.Grid32) []byte {
	body := make([]byte, 4*len(g.Data))
	for i, v := range g.Data {
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(v))
	}
	return body
}

// decodeF32 is the inverse of encodeF32's framing (float32 precision);
// exported to tests and rrsload via the package boundary being shared.
func decodeF32(body []byte) []float32 {
	out := make([]float32, len(body)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return out
}

func writeTile(w http.ResponseWriter, e *cacheEntry, win window, cacheState string) {
	h := w.Header()
	h.Set("Content-Type", e.ctype)
	h.Set("Content-Length", strconv.Itoa(len(e.body)))
	h.Set("X-RRS-Window", fmt.Sprintf("%d,%d,%dx%d", win.x0, win.y0, win.nx, win.ny))
	h.Set("X-Cache", cacheState)
	h.Set("Cache-Control", "public, max-age=31536000, immutable") // tiles are content-addressed
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.body)
}
