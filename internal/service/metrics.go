package service

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"roughsurface/internal/core"
)

// metrics is the daemon's hand-rolled instrumentation, exposed in
// Prometheus text format on /metrics. No client library: the set of
// series is small and fixed, and counters/gauges are plain atomics, so
// the scrape path allocates only the rendered text.
type metrics struct {
	mu       sync.Mutex
	requests map[reqKey]*uint64  // by (route, status code)
	peerOps  map[peerKey]*uint64 // cluster traffic by (peer, op)

	inflight    atomic.Int64
	latency     histogram
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	tileShed    atomic.Uint64 // admissions refused (429)
	tileExpired atomic.Uint64 // deadline passed while queued/rendering (503)

	// Per-pyramid-level tile cache traffic. Fixed arrays (levels are
	// bounded by core.MaxPyramidLevel) keep the hot path lock-free;
	// only levels with traffic are emitted, so cardinality tracks use.
	levelHits   [core.MaxPyramidLevel + 1]atomic.Uint64
	levelMisses [core.MaxPyramidLevel + 1]atomic.Uint64

	prefetchRendered atomic.Uint64 // neighbor tiles rendered into the cache
	prefetchDropped  atomic.Uint64 // prefetch queue full, job shed
	prefetchSkipped  atomic.Uint64 // job yielded to waiting foreground renders
}

type reqKey struct {
	route string
	code  int
}

// peerKey labels one cluster counter: op is one of proxy_hit,
// proxy_miss (successful proxied fetches, split by the owner's cache
// state), fallback_down, fallback_shed, fallback_error (local renders
// after the owner was unreachable, shedding, or erroring), and
// fanout_error (scene replication to that peer failed). Cardinality is
// bounded by the static peer set times six ops.
type peerKey struct {
	peer string
	op   string
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[reqKey]*uint64),
		peerOps:  make(map[peerKey]*uint64),
		latency:  newHistogram(),
	}
}

func (m *metrics) countRequest(route string, code int) {
	m.mu.Lock()
	c := m.requests[reqKey{route, code}]
	if c == nil {
		c = new(uint64)
		m.requests[reqKey{route, code}] = c
	}
	*c++
	m.mu.Unlock()
}

func (m *metrics) countPeer(peer, op string) {
	m.mu.Lock()
	c := m.peerOps[peerKey{peer, op}]
	if c == nil {
		c = new(uint64)
		m.peerOps[peerKey{peer, op}] = c
	}
	*c++
	m.mu.Unlock()
}

// histogram accumulates request latencies into fixed cumulative
// buckets. Sums are kept as integer microseconds so observation needs
// no float atomics.
type histogram struct {
	bounds    []float64 // upper bounds in seconds, ascending
	counts    []atomic.Uint64
	sumMicros atomic.Int64
	count     atomic.Uint64
}

// latencyBounds spans sub-millisecond cache hits to multi-second
// first-render kernel designs.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram() histogram {
	return histogram{bounds: latencyBounds, counts: make([]atomic.Uint64, len(latencyBounds))}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, b := range h.bounds {
		if s <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.sumMicros.Add(d.Microseconds())
	h.count.Add(1)
}

// gaugeFn lets the scrape read live values (queue depth, cache bytes)
// owned by other components without metric push wiring.
type gaugeFn struct {
	name, help string
	read       func() int64
}

// writePrometheus renders everything in the text exposition format.
// Map series are sorted so consecutive scrapes are diffable.
func (m *metrics) writePrometheus(w io.Writer, gauges []gaugeFn) {
	m.mu.Lock()
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	vals := make([]uint64, len(keys))
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	for i, k := range keys {
		vals[i] = *m.requests[k]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP rrsd_requests_total HTTP requests by route and status code.\n")
	fmt.Fprintf(w, "# TYPE rrsd_requests_total counter\n")
	for i, k := range keys {
		fmt.Fprintf(w, "rrsd_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, vals[i])
	}

	fmt.Fprintf(w, "# HELP rrsd_request_seconds Tile request latency (admission to response body ready).\n")
	fmt.Fprintf(w, "# TYPE rrsd_request_seconds histogram\n")
	var cum uint64
	for i, b := range m.latency.bounds {
		cum += m.latency.counts[i].Load()
		fmt.Fprintf(w, "rrsd_request_seconds_bucket{le=%q} %d\n", formatBound(b), cum)
	}
	total := m.latency.count.Load()
	fmt.Fprintf(w, "rrsd_request_seconds_bucket{le=\"+Inf\"} %d\n", total)
	fmt.Fprintf(w, "rrsd_request_seconds_sum %g\n", float64(m.latency.sumMicros.Load())/1e6)
	fmt.Fprintf(w, "rrsd_request_seconds_count %d\n", total)

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("rrsd_tile_cache_hits_total", "Tile responses served from the LRU.", m.cacheHits.Load())
	counter("rrsd_tile_cache_misses_total", "Tile responses rendered on demand.", m.cacheMisses.Load())
	counter("rrsd_tiles_shed_total", "Tile requests refused with 429 at admission.", m.tileShed.Load())
	counter("rrsd_tiles_deadline_total", "Tile requests that hit the per-request deadline (503).", m.tileExpired.Load())

	fmt.Fprintf(w, "# HELP rrsd_tile_level_hits_total Tile cache hits by pyramid level.\n")
	fmt.Fprintf(w, "# TYPE rrsd_tile_level_hits_total counter\n")
	for z := range m.levelHits {
		if v := m.levelHits[z].Load(); v > 0 || m.levelMisses[z].Load() > 0 {
			fmt.Fprintf(w, "rrsd_tile_level_hits_total{level=\"%d\"} %d\n", z, v)
		}
	}
	fmt.Fprintf(w, "# HELP rrsd_tile_level_misses_total Tile cache misses by pyramid level.\n")
	fmt.Fprintf(w, "# TYPE rrsd_tile_level_misses_total counter\n")
	for z := range m.levelMisses {
		if v := m.levelMisses[z].Load(); v > 0 || m.levelHits[z].Load() > 0 {
			fmt.Fprintf(w, "rrsd_tile_level_misses_total{level=\"%d\"} %d\n", z, v)
		}
	}

	counter("rrsd_prefetch_rendered_total", "Neighbor tiles prefetched into the cache.", m.prefetchRendered.Load())
	counter("rrsd_prefetch_dropped_total", "Prefetch jobs shed at the queue.", m.prefetchDropped.Load())
	counter("rrsd_prefetch_skipped_total", "Prefetch jobs that yielded to foreground renders.", m.prefetchSkipped.Load())

	m.writePeerOps(w)

	fmt.Fprintf(w, "# HELP rrsd_inflight_requests Requests currently being handled.\n")
	fmt.Fprintf(w, "# TYPE rrsd_inflight_requests gauge\nrrsd_inflight_requests %d\n", m.inflight.Load())
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.read())
	}
}

// writePeerOps renders the cluster traffic counters, sorted by
// (peer, op) so consecutive scrapes are diffable. The op space splits
// into three metric families to keep Prometheus label semantics clean:
// proxy results, fallback reasons, and fan-out errors.
func (m *metrics) writePeerOps(w io.Writer) {
	m.mu.Lock()
	keys := make([]peerKey, 0, len(m.peerOps))
	for k := range m.peerOps {
		keys = append(keys, k)
	}
	vals := make(map[peerKey]uint64, len(keys))
	for _, k := range keys {
		vals[k] = *m.peerOps[k]
	}
	m.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].peer != keys[j].peer {
			return keys[i].peer < keys[j].peer
		}
		return keys[i].op < keys[j].op
	})
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP rrsd_cluster_proxy_total Tile fetches proxied to their owning shard, by owner and its cache result.\n")
	fmt.Fprintf(w, "# TYPE rrsd_cluster_proxy_total counter\n")
	for _, k := range keys {
		if op, ok := strings.CutPrefix(k.op, "proxy_"); ok {
			fmt.Fprintf(w, "rrsd_cluster_proxy_total{peer=%q,result=%q} %d\n", k.peer, op, vals[k])
		}
	}
	fmt.Fprintf(w, "# HELP rrsd_cluster_fallback_total Local renders after the owning shard was unavailable, by owner and reason.\n")
	fmt.Fprintf(w, "# TYPE rrsd_cluster_fallback_total counter\n")
	for _, k := range keys {
		if reason, ok := strings.CutPrefix(k.op, "fallback_"); ok {
			fmt.Fprintf(w, "rrsd_cluster_fallback_total{peer=%q,reason=%q} %d\n", k.peer, reason, vals[k])
		}
	}
	fmt.Fprintf(w, "# HELP rrsd_cluster_fanout_errors_total Scene replications to a peer that failed.\n")
	fmt.Fprintf(w, "# TYPE rrsd_cluster_fanout_errors_total counter\n")
	for _, k := range keys {
		if k.op == "fanout_error" {
			fmt.Fprintf(w, "rrsd_cluster_fanout_errors_total{peer=%q} %d\n", k.peer, vals[k])
		}
	}
}

// formatBound renders bucket bounds the way Prometheus expects
// (shortest decimal, no exponent for these magnitudes).
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
