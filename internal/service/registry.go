package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"roughsurface/internal/convgen"
	"roughsurface/internal/core"
	"roughsurface/internal/grid"
	"roughsurface/internal/inhomo"
)

// sceneIDLen is the hex length of a scene ID: the first 128 bits of the
// SHA-256 of the canonical scene JSON. 128 bits keeps URLs short while
// making accidental collisions implausible at any registry size.
const sceneIDLen = 32

// SceneID computes the content address of an already-validated scene:
// SHA-256 over the JSON encoding of the *normalized* scene (defaults
// applied, struct-ordered fields), truncated to sceneIDLen hex chars.
// Two submissions that differ only in formatting, key order, or
// spelled-out defaults therefore map to the same ID and share every
// cache behind it.
func SceneID(sc core.Scene) (id string, canonical []byte, err error) {
	canonical, err = json.Marshal(sc.Normalized())
	if err != nil {
		return "", nil, fmt.Errorf("service: canonicalizing scene: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])[:sceneIDLen], canonical, nil
}

// registry maps scene IDs to their parsed scenes and lazily-built
// generation machinery. It is append-only up to maxScenes; scenes are
// small (the kernels dominate, and those are built on first tile).
type registry struct {
	mu        sync.RWMutex
	scenes    map[string]*sceneEntry
	maxScenes int
}

func newRegistry(maxScenes int) *registry {
	return &registry{scenes: make(map[string]*sceneEntry), maxScenes: maxScenes}
}

var errRegistryFull = fmt.Errorf("service: scene registry full")

// register parses, validates, and content-addresses a scene document.
// The dft generator is rejected here — it synthesizes one periodic
// grid, so it cannot serve windowed tiles (core.Components enforces
// the same rule; checking at registration turns it into a 422 instead
// of a failed first tile).
func (r *registry) register(body []byte, genWorkers, maxSeedGens int) (*sceneEntry, bool, error) {
	sc, err := core.ParseScene(body)
	if err != nil {
		return nil, false, err
	}
	sc = sc.Normalized()
	if sc.Method == core.MethodHomogeneous && sc.Generator == core.GeneratorDFT {
		return nil, false, fmt.Errorf("core: generator: dft scenes cannot be served as tiles (one periodic grid, not an unbounded surface); use conv")
	}
	id, canonical, err := SceneID(sc)
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.scenes[id]; ok {
		return e, false, nil
	}
	if len(r.scenes) >= r.maxScenes {
		return nil, false, errRegistryFull
	}
	e := &sceneEntry{
		ID:          id,
		Scene:       sc,
		Canonical:   canonical,
		genWorkers:  genWorkers,
		maxSeedGens: maxSeedGens,
		gens:        make(map[uint64]tileGen),
	}
	r.scenes[id] = e
	return e, true, nil
}

func (r *registry) get(id string) (*sceneEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.scenes[id]
	return e, ok
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.scenes)
}

// sceneEntry is one registered scene plus everything derived from it.
// Kernel design (the expensive, seed-independent step) runs exactly
// once under buildOnce — sync.Once gives singleflight semantics, so a
// burst of first requests for a new scene blocks on a single design
// instead of designing per request. Generators (cheap, seed-dependent)
// are cached per seed behind a small LRU.
type sceneEntry struct {
	ID         string
	Scene      core.Scene
	Canonical  []byte
	genWorkers int

	buildOnce sync.Once
	buildErr  error
	comp      *core.Components

	mu          sync.Mutex
	gens        map[uint64]tileGen
	order       []uint64 // LRU over seeds, most recent last
	maxSeedGens int
}

// tileGen renders one window of the deterministic surface for one
// (scene, seed), at reference (f64) or serving (f32) precision.
// Implementations are safe for concurrent use.
type tileGen interface {
	generate(out *grid.Grid, i0, j0 int64)
	generate32(out *grid.Grid32, i0, j0 int64)
}

// generator returns the (scene, seed) tile generator, designing the
// scene's kernels on first use. ctx bounds the wait: Once.Do can park
// a burst of first requests behind one kernel design, and a caller
// whose deadline lapsed while parked should not then start building a
// per-seed generator it will never use.
func (e *sceneEntry) generator(ctx context.Context, seed uint64) (tileGen, error) {
	e.buildOnce.Do(func() {
		e.comp, e.buildErr = e.Scene.Components()
	})
	if e.buildErr != nil {
		return nil, e.buildErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if g, ok := e.gens[seed]; ok {
		e.touch(seed)
		return g, nil
	}
	var g tileGen
	if e.comp.Blender == nil {
		conv := convgen.NewGenerator(e.comp.Kernels[0], seed)
		g = &homogGen{conv: conv, workers: e.genWorkers}
	} else {
		ig, err := inhomo.NewGenerator(e.comp.Kernels, e.comp.Blender, seed)
		if err != nil {
			return nil, err
		}
		ig.Workers = e.genWorkers
		g = &inhomoGen{gen: ig}
	}
	e.gens[seed] = g
	e.order = append(e.order, seed)
	if len(e.order) > e.maxSeedGens {
		old := e.order[0]
		e.order = e.order[1:]
		delete(e.gens, old)
	}
	return g, nil
}

func (e *sceneEntry) touch(seed uint64) {
	for i, s := range e.order {
		if s == seed {
			copy(e.order[i:], e.order[i+1:])
			e.order[len(e.order)-1] = seed
			return
		}
	}
}

// homogGen serves homogeneous conv scenes straight from convgen.
type homogGen struct {
	conv    *convgen.Generator
	workers int
}

func (h *homogGen) generate(out *grid.Grid, i0, j0 int64) {
	k := h.conv.Kernel()
	out.Dx, out.Dy = k.Dx, k.Dy
	out.X0 = float64(i0) * k.Dx
	out.Y0 = float64(j0) * k.Dy
	h.conv.GenerateAtInto(out.Data, out.Nx, i0, j0, out.Nx, out.Ny, h.workers)
}

func (h *homogGen) generate32(out *grid.Grid32, i0, j0 int64) {
	k := h.conv.Kernel()
	out.Dx, out.Dy = k.Dx, k.Dy
	out.X0 = float64(i0) * k.Dx
	out.Y0 = float64(j0) * k.Dy
	h.conv.GenerateAtInto32(out.Data, out.Nx, i0, j0, out.Nx, out.Ny, h.workers)
}

// inhomoGen serves plate/point scenes through the tile-sparse engine.
type inhomoGen struct {
	gen *inhomo.Generator
}

func (h *inhomoGen) generate(out *grid.Grid, i0, j0 int64) {
	h.gen.GenerateAtInto(out, i0, j0)
}

func (h *inhomoGen) generate32(out *grid.Grid32, i0, j0 int64) {
	h.gen.GenerateAtInto32(out, i0, j0)
}
