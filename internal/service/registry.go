package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"roughsurface/internal/convgen"
	"roughsurface/internal/core"
	"roughsurface/internal/grid"
	"roughsurface/internal/inhomo"
)

// sceneIDLen is the hex length of a scene ID: the first 128 bits of the
// SHA-256 of the canonical scene JSON. 128 bits keeps URLs short while
// making accidental collisions implausible at any registry size.
const sceneIDLen = 32

// SceneID computes the content address of an already-validated scene:
// SHA-256 over the JSON encoding of the *normalized* scene (defaults
// applied, struct-ordered fields), truncated to sceneIDLen hex chars.
// Two submissions that differ only in formatting, key order, or
// spelled-out defaults therefore map to the same ID and share every
// cache behind it.
func SceneID(sc core.Scene) (id string, canonical []byte, err error) {
	canonical, err = json.Marshal(sc.Normalized())
	if err != nil {
		return "", nil, fmt.Errorf("service: canonicalizing scene: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])[:sceneIDLen], canonical, nil
}

// registry maps scene IDs to their parsed scenes and lazily-built
// generation machinery. It is append-only up to maxScenes; scenes are
// small (the kernels dominate, and those are built on first tile).
type registry struct {
	mu        sync.RWMutex
	scenes    map[string]*sceneEntry
	maxScenes int
}

func newRegistry(maxScenes int) *registry {
	return &registry{scenes: make(map[string]*sceneEntry), maxScenes: maxScenes}
}

var errRegistryFull = fmt.Errorf("service: scene registry full")

// register parses, validates, and content-addresses a scene document.
// The dft generator is rejected here — it synthesizes one periodic
// grid, so it cannot serve windowed tiles (core.Components enforces
// the same rule; checking at registration turns it into a 422 instead
// of a failed first tile).
func (r *registry) register(body []byte, genWorkers, maxSeedGens int) (*sceneEntry, bool, error) {
	sc, err := core.ParseScene(body)
	if err != nil {
		return nil, false, err
	}
	sc = sc.Normalized()
	if sc.Method == core.MethodHomogeneous && sc.Generator == core.GeneratorDFT {
		return nil, false, fmt.Errorf("core: generator: dft scenes cannot be served as tiles (one periodic grid, not an unbounded surface); use conv")
	}
	id, canonical, err := SceneID(sc)
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.scenes[id]; ok {
		return e, false, nil
	}
	if len(r.scenes) >= r.maxScenes {
		return nil, false, errRegistryFull
	}
	e := &sceneEntry{
		ID:          id,
		Scene:       sc,
		Canonical:   canonical,
		genWorkers:  genWorkers,
		maxSeedGens: maxSeedGens,
		comps:       make(map[int]*levelComponents),
		gens:        make(map[genKey]tileGen),
	}
	r.scenes[id] = e
	return e, true, nil
}

func (r *registry) get(id string) (*sceneEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.scenes[id]
	return e, ok
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.scenes)
}

// sceneEntry is one registered scene plus everything derived from it.
// Kernel design (the expensive, seed-independent step) runs exactly
// once per pyramid level under a levelComponents Once — sync.Once gives
// singleflight semantics, so a burst of first requests for a new
// (scene, level) blocks on a single design instead of designing per
// request. Levels are designed independently: the kernel taps are a
// function of the level's grid spacing, and a scene serving only level
// 0 never pays for coarser kernels. Generators (cheap, seed-dependent)
// are cached per (level, seed) behind a small LRU.
type sceneEntry struct {
	ID         string
	Scene      core.Scene
	Canonical  []byte
	genWorkers int

	compMu sync.Mutex
	comps  map[int]*levelComponents

	mu          sync.Mutex
	gens        map[genKey]tileGen
	order       []genKey // LRU over (level, seed), most recent last
	maxSeedGens int
}

// levelComponents is the design singleflight slot for one pyramid
// level: kernels and weight maps re-derived at spacing Dx·2^level.
// The tapsHat spectrum LRU lives inside each level's convgen
// generators, so level keying here also keys that cache by level.
type levelComponents struct {
	once sync.Once
	err  error
	comp *core.Components
}

// genKey identifies one cached tile generator.
type genKey struct {
	level int
	seed  uint64
}

// components returns the level's kernels/blender, designing them on
// first use. Concurrent callers for the same level share one design:
// the loser of the Once race parks until the winner's design finishes,
// so ctx is accepted (and checked after the wait) even though the
// design itself is CPU-bound and runs to completion once started.
func (e *sceneEntry) components(ctx context.Context, level int) (*core.Components, error) {
	e.compMu.Lock()
	lc, ok := e.comps[level]
	if !ok {
		lc = &levelComponents{}
		e.comps[level] = lc
	}
	e.compMu.Unlock()
	lc.once.Do(func() {
		view, err := e.Scene.AtLevel(level)
		if err != nil {
			lc.err = err
			return
		}
		lc.comp, lc.err = view.Components()
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return lc.comp, lc.err
}

// tileGen renders one window of the deterministic surface for one
// (scene, seed), at reference (f64) or serving (f32) precision.
// Implementations are safe for concurrent use.
type tileGen interface {
	generate(out *grid.Grid, i0, j0 int64)
	generate32(out *grid.Grid32, i0, j0 int64)
}

// generator returns the (scene, level, seed) tile generator, designing
// the level's kernels on first use. ctx bounds the wait: Once.Do can
// park a burst of first requests behind one kernel design, and a caller
// whose deadline lapsed while parked should not then start building a
// per-seed generator it will never use.
func (e *sceneEntry) generator(ctx context.Context, level int, seed uint64) (tileGen, error) {
	comp, err := e.components(ctx, level)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := genKey{level, seed}
	if g, ok := e.gens[key]; ok {
		e.touch(key)
		return g, nil
	}
	var g tileGen
	if comp.Blender == nil {
		conv := convgen.NewGenerator(comp.Kernels[0], seed)
		g = &homogGen{conv: conv, workers: e.genWorkers}
	} else {
		ig, err := inhomo.NewGenerator(comp.Kernels, comp.Blender, seed)
		if err != nil {
			return nil, err
		}
		ig.Workers = e.genWorkers
		g = &inhomoGen{gen: ig}
	}
	e.gens[key] = g
	e.order = append(e.order, key)
	if len(e.order) > e.maxSeedGens {
		old := e.order[0]
		e.order = e.order[1:]
		delete(e.gens, old)
	}
	return g, nil
}

func (e *sceneEntry) touch(key genKey) {
	for i, k := range e.order {
		if k == key {
			copy(e.order[i:], e.order[i+1:])
			e.order[len(e.order)-1] = key
			return
		}
	}
}

// homogGen serves homogeneous conv scenes straight from convgen.
type homogGen struct {
	conv    *convgen.Generator
	workers int
}

func (h *homogGen) generate(out *grid.Grid, i0, j0 int64) {
	k := h.conv.Kernel()
	out.Dx, out.Dy = k.Dx, k.Dy
	out.X0 = float64(i0) * k.Dx
	out.Y0 = float64(j0) * k.Dy
	h.conv.GenerateAtInto(out.Data, out.Nx, i0, j0, out.Nx, out.Ny, h.workers)
}

func (h *homogGen) generate32(out *grid.Grid32, i0, j0 int64) {
	k := h.conv.Kernel()
	out.Dx, out.Dy = k.Dx, k.Dy
	out.X0 = float64(i0) * k.Dx
	out.Y0 = float64(j0) * k.Dy
	h.conv.GenerateAtInto32(out.Data, out.Nx, i0, j0, out.Nx, out.Ny, h.workers)
}

// inhomoGen serves plate/point scenes through the tile-sparse engine.
type inhomoGen struct {
	gen *inhomo.Generator
}

func (h *inhomoGen) generate(out *grid.Grid, i0, j0 int64) {
	h.gen.GenerateAtInto(out, i0, j0)
}

func (h *inhomoGen) generate32(out *grid.Grid32, i0, j0 int64) {
	h.gen.GenerateAtInto32(out, i0, j0)
}
