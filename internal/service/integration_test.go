package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"roughsurface/internal/par"
)

// testServer boots a Server (small limits so tests are fast) behind
// httptest and returns helpers. Callers own both closes, in this
// order: ts.Close (drains handlers), then s.Close (joins the pool).
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postScene(t *testing.T, ts *httptest.Server, doc string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/scene", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/scene: %d %s", resp.StatusCode, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// getTile fetches a tile and returns (body, X-Cache header).
func getTile(t *testing.T, ts *httptest.Server, path string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Cache")
}

// TestTileDeterminism is the wire-level determinism contract: the same
// scene+seed+window must produce byte-identical bodies cached and
// uncached, across server instances, and across intra-tile worker
// counts.
func TestTileDeterminism(t *testing.T) {
	for _, fixture := range []struct{ name, doc string }{
		{"homog", fixtureHomog}, {"plate", fixturePlate}, {"point", fixturePoint},
	} {
		t.Run(fixture.name, func(t *testing.T) {
			_, ts := testServer(t, Config{Workers: 2})
			id := postScene(t, ts, fixture.doc)
			path := "/v1/scene/" + id + "/tile/-32,-32,64x64?seed=7"

			first, cache1 := getTile(t, ts, path)
			second, cache2 := getTile(t, ts, path)
			if cache1 != "miss" || cache2 != "hit" {
				t.Errorf("X-Cache sequence %q, %q; want miss, hit", cache1, cache2)
			}
			if !bytes.Equal(first, second) {
				t.Error("cached response differs from rendered response")
			}
			if len(first) != 64*64*4 {
				t.Fatalf("f32 tile is %d bytes, want %d", len(first), 64*64*4)
			}

			// A fresh server (empty caches, different pool size, more
			// intra-tile workers) must produce the same bytes.
			_, ts2 := testServer(t, Config{Workers: 1, GenWorkers: 4})
			id2 := postScene(t, ts2, fixture.doc)
			if id2 != id {
				t.Fatalf("same document got id %s on second server, %s on first", id2, id)
			}
			third, _ := getTile(t, ts2, path)
			if !bytes.Equal(first, third) {
				t.Error("fresh server produced different tile bytes")
			}
		})
	}
}

// TestTileSeams checks the streaming-example seam property over HTTP:
// adjacent and overlapping tiles agree exactly on shared samples.
func TestTileSeams(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := postScene(t, ts, fixturePlate)
	get := func(win string) []byte {
		body, _ := getTile(t, ts, "/v1/scene/"+id+"/tile/"+win+"?seed=3")
		return body
	}
	const rowBytes = 64 * 4

	// Vertical overlap: B starts 32 rows above A's origin; A's rows
	// 32..63 must equal B's rows 0..31 byte for byte.
	a := get("0,0,64x64")
	b := get("0,32,64x64")
	if !bytes.Equal(a[32*rowBytes:64*rowBytes], b[0:32*rowBytes]) {
		t.Error("vertical seam mismatch between 0,0,64x64 and 0,32,64x64")
	}

	// Horizontal overlap: C starts 32 columns right of A; per row, A's
	// columns 32..63 must equal C's columns 0..31.
	c := get("32,0,64x64")
	for row := 0; row < 64; row++ {
		aRow := a[row*rowBytes : (row+1)*rowBytes]
		cRow := c[row*rowBytes : (row+1)*rowBytes]
		if !bytes.Equal(aRow[32*4:], cRow[:32*4]) {
			t.Fatalf("horizontal seam mismatch at row %d", row)
		}
	}

	// Different seeds must NOT agree (the seed actually selects the
	// realization).
	other, _ := getTile(t, ts, "/v1/scene/"+id+"/tile/0,0,64x64?seed=4")
	if bytes.Equal(a, other) {
		t.Error("seed 3 and seed 4 produced identical tiles")
	}
}

func TestTilePNGFormat(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := postScene(t, ts, fixtureHomog)
	resp, err := http.Get(ts.URL + "/v1/scene/" + id + "/tile/0,0,32x32?format=png")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("png tile: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Errorf("Content-Type %q", ct)
	}
	if !bytes.HasPrefix(body, []byte("\x89PNG\r\n\x1a\n")) {
		t.Error("body lacks PNG signature")
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := testServer(t, Config{MaxTileEdge: 128, MaxTileSamples: 128 * 128})
	id := postScene(t, ts, fixtureHomog)
	status := func(method, path, body string) (int, string) {
		var resp *http.Response
		var err error
		if method == http.MethodPost {
			resp, err = http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		} else {
			resp, err = http.Get(ts.URL + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, _ := status("GET", "/v1/scene/ffffffffffffffffffffffffffffffff/tile/0,0,8x8", ""); code != 404 {
		t.Errorf("unknown scene: %d, want 404", code)
	}
	if code, _ := status("GET", "/v1/scene/"+id+"/tile/junk", ""); code != 400 {
		t.Errorf("bad window: %d, want 400", code)
	}
	if code, _ := status("GET", "/v1/scene/"+id+"/tile/0,0,512x512", ""); code != 413 {
		t.Errorf("oversized tile: %d, want 413", code)
	}
	if code, _ := status("GET", "/v1/scene/"+id+"/tile/0,0,8x8?format=jpeg", ""); code != 400 {
		t.Errorf("bad format: %d, want 400", code)
	}
	if code, _ := status("GET", "/v1/scene/"+id+"/tile/0,0,8x8?seed=-1", ""); code != 400 {
		t.Errorf("bad seed: %d, want 400", code)
	}
	// Validation failures surface the core field paths over the wire.
	code, body := status("POST", "/v1/scene", `{"nx":64,"ny":64,"method":"plate","regions":[
	  {"shape":"circle","r":20,"t":4,"spectrum":{"family":"gaussian","h":1,"clx":-2,"cly":5}}]}`)
	if code != 422 || !strings.Contains(body, "regions[0].spectrum.clx") {
		t.Errorf("invalid scene: %d %s; want 422 naming regions[0].spectrum.clx", code, body)
	}
	if code, _ := status("POST", "/v1/scene", `{"nx":64,"ny":64,"method":"homogeneous","generator":"dft",
	  "spectrum":{"family":"gaussian","h":1,"cl":8}}`); code != 422 {
		t.Errorf("dft scene: %d, want 422", code)
	}
}

// TestSaturationSheds pins admission control: with the single worker
// busy and the queue full, the next request is shed immediately with
// 429 + Retry-After instead of piling up.
func TestSaturationSheds(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	id := postScene(t, ts, fixtureHomog)

	block := make(chan struct{})
	started := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("failed to occupy the worker")
	}
	<-started
	if !s.pool.TrySubmit(func() {}) {
		t.Fatal("failed to fill the queue slot")
	}

	begin := time.Now()
	resp, err := http.Get(ts.URL + "/v1/scene/" + id + "/tile/0,0,8x8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if elapsed := time.Since(begin); elapsed > time.Second {
		t.Errorf("shed took %s; must be immediate", elapsed)
	}
	close(block)

	// Once the pool drains, the same request renders fine.
	if body, _ := getTile(t, ts, "/v1/scene/"+id+"/tile/0,0,8x8"); len(body) != 8*8*4 {
		t.Errorf("post-drain tile has %d bytes", len(body))
	}
}

// TestDeadlineExpiresQueuedRequest pins the per-request deadline: a
// request stuck behind a busy worker gets 503 within its deadline, and
// the orphaned render job skips work when it finally runs.
func TestDeadlineExpiresQueuedRequest(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 4, RequestTimeout: 50 * time.Millisecond})
	id := postScene(t, ts, fixtureHomog)

	block := make(chan struct{})
	started := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("failed to occupy the worker")
	}
	<-started

	begin := time.Now()
	resp, err := http.Get(ts.URL + "/v1/scene/" + id + "/tile/0,0,8x8")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired request: %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Errorf("503 took %s, far beyond the 50ms deadline", elapsed)
	}
	close(block)
}

// TestGracefulShutdownDrains covers the acceptance criterion with a
// real http.Server: an in-flight tile request completes through
// Shutdown, new connections are refused afterwards, and Serve returns
// cleanly.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	serveErr := par.Background(func() error { return srv.Serve(ln) })
	base := "http://" + ln.Addr().String()

	resp, err := http.Post(base+"/v1/scene", "application/json", strings.NewReader(fixturePlate))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Launch a slow tile (first render designs kernels and fills a
	// 256x256 window) and wait until the handler is in flight.
	type result struct {
		code int
		n    int
		err  error
	}
	resc := make(chan result, 1)
	tileErr := par.Background(func() error {
		r, err := http.Get(base + "/v1/scene/" + reg.ID + "/tile/0,0,256x256")
		if err != nil {
			resc <- result{err: err}
			return err
		}
		defer r.Body.Close()
		body, err := io.ReadAll(r.Body)
		resc <- result{code: r.StatusCode, n: len(body), err: err}
		return nil
	})
	deadline := time.Now().Add(5 * time.Second)
	for s.met.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tile request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	<-tileErr
	res := <-resc
	if res.err != nil || res.code != http.StatusOK || res.n != 256*256*4 {
		t.Errorf("in-flight tile during shutdown: code=%d n=%d err=%v; want 200 with full body",
			res.code, res.n, res.err)
	}

	// New connections are refused after shutdown.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("request succeeded after Shutdown")
	}
}

// TestConcurrentMixedLoad hammers one server with a mix of scenes,
// seeds, windows, and formats — the -race companion to the determinism
// tests (generator reuse, cache, singleflight design all under
// contention).
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 4, QueueDepth: 64, CacheBytes: 1 << 20})
	ids := []string{
		postScene(t, ts, fixtureHomog),
		postScene(t, ts, fixturePlate),
	}
	client := ts.Client()
	const n = 48
	codes := make([]int, n)
	par.ForEach(n, 8, func(i int) {
		id := ids[i%len(ids)]
		format := "f32"
		if i%5 == 0 {
			format = "png"
		}
		path := fmt.Sprintf("/v1/scene/%s/tile/%d,%d,32x32?seed=%d&format=%s",
			id, 32*(i%3), 32*(i%2), 1+i%2, format)
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			codes[i] = -1
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes[i] = resp.StatusCode
	})
	for i, code := range codes {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Errorf("request %d: status %d", i, code)
		}
	}
	// Metrics endpoint stays consistent under load.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "rrsd_requests_total") {
		t.Error("metrics output missing rrsd_requests_total")
	}
}

func TestHealthzAndSceneGet(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
	id := postScene(t, ts, fixtureHomog)
	resp, err = http.Get(ts.URL + "/v1/scene/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	doc, _ := io.ReadAll(resp.Body)
	var round map[string]any
	if err := json.Unmarshal(doc, &round); err != nil {
		t.Fatalf("scene GET is not JSON: %v", err)
	}
	if round["method"] != "homogeneous" {
		t.Errorf("scene GET returned %s", doc)
	}
}
