package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"roughsurface/internal/approx"
	"roughsurface/internal/core"
	"roughsurface/internal/grid"
)

// The request fixtures. scripts/check.sh and the core fuzz seeds use
// these same documents, so the whole stack — fuzzer, unit tests,
// integration tests, CI smoke — exercises one set of scenes.
const (
	fixtureHomog = `{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":8}}`
	fixturePlate = `{"nx":64,"ny":64,"method":"plate","regions":[
	  {"shape":"rect","x1":0,"t":4,"spectrum":{"family":"gaussian","h":1,"cl":8}},
	  {"shape":"circle","cx":16,"cy":0,"r":20,"t":4,"spectrum":{"family":"exponential","h":2,"cl":5}}]}`
	fixturePoint = `{"nx":64,"ny":64,"method":"point","transition_t":10,"points":[
	  {"x":-20,"y":0,"spectrum":{"family":"gaussian","h":1,"cl":8}},
	  {"x":20,"y":0,"spectrum":{"family":"gaussian","h":2.5,"cl":8}}]}`
)

func TestSceneIDCanonicalization(t *testing.T) {
	parse := func(s string) core.Scene {
		sc, err := core.ParseScene([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	base := parse(fixtureHomog)
	id1, canonical, err := SceneID(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(id1) != sceneIDLen {
		t.Fatalf("scene id %q has length %d, want %d", id1, len(id1), sceneIDLen)
	}
	// Same scene, different formatting, reordered keys, defaults spelled
	// out: one ID.
	same := []string{
		"{\n  \"ny\": 64,\n  \"nx\": 64,\n  \"method\": \"homogeneous\",\n  \"spectrum\": {\"cl\": 10, \"family\": \"gaussian\", \"h\": 1}\n}",
		`{"nx":64,"ny":64,"dx":1,"dy":1,"seed":1,"generator":"conv","method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":10}}`,
	}
	// Patch cl to match fixture (10 vs 8): use an actually-identical pair.
	same[0] = strings.ReplaceAll(same[0], "10", "8")
	same[1] = strings.ReplaceAll(same[1], "10", "8")
	for i, doc := range same {
		id2, _, err := SceneID(parse(doc))
		if err != nil {
			t.Fatal(err)
		}
		if id2 != id1 {
			t.Errorf("variant %d hashed to %s, want %s", i, id2, id1)
		}
	}
	// Different content: different ID.
	other, _, err := SceneID(parse(fixturePlate))
	if err != nil {
		t.Fatal(err)
	}
	if other == id1 {
		t.Error("distinct scenes share an ID")
	}
	// Canonical JSON re-parses to the same ID (fixed point).
	id3, _, err := SceneID(parse(string(canonical)))
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Error("canonical JSON does not re-hash to the same ID")
	}
}

func TestRegistryRejectsDFTAndBounds(t *testing.T) {
	r := newRegistry(1)
	if _, _, err := r.register([]byte(`{"nx":64,"ny":64,"method":"homogeneous","generator":"dft",
		"spectrum":{"family":"gaussian","h":1,"cl":8}}`), 1, 4); err == nil {
		t.Error("dft scene registered; want rejection")
	}
	if _, created, err := r.register([]byte(fixtureHomog), 1, 4); err != nil || !created {
		t.Fatalf("first register: created=%v err=%v", created, err)
	}
	// Idempotent re-register of the same content succeeds even at cap.
	if _, created, err := r.register([]byte(fixtureHomog), 1, 4); err != nil || created {
		t.Fatalf("re-register: created=%v err=%v; want existing entry", created, err)
	}
	if _, _, err := r.register([]byte(fixturePlate), 1, 4); err != errRegistryFull {
		t.Errorf("register over cap: err=%v, want errRegistryFull", err)
	}
}

func TestSeedGeneratorLRUBounded(t *testing.T) {
	r := newRegistry(4)
	e, _, err := r.register([]byte(fixtureHomog), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		if _, err := e.generator(context.Background(), 0, seed); err != nil {
			t.Fatal(err)
		}
	}
	// Levels count against the same LRU: generators are sized by the
	// kernel they wrap, not by which lattice they sample.
	if _, err := e.generator(context.Background(), 1, 1); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	n := len(e.gens)
	e.mu.Unlock()
	if n > 2 {
		t.Errorf("seed generator cache holds %d entries, cap 2", n)
	}
}

func TestParseWindow(t *testing.T) {
	good := map[string]window{
		"0,0,64x64":      {0, 0, 64, 64},
		"-128,32,256x16": {-128, 32, 256, 16},
	}
	for in, want := range good {
		got, err := parseWindow(in)
		if err != nil || got != want {
			t.Errorf("parseWindow(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "0,0", "0,0,64", "0,0,64x", "a,0,64x64", "0,b,64x64", "0,0,0x64", "0,0,64x-1", "0,0,4.5x4"} {
		if _, err := parseWindow(in); err == nil {
			t.Errorf("parseWindow(%q) accepted", in)
		}
	}
}

func TestTileCacheEvictsByBytes(t *testing.T) {
	// Each entry charges body + key + ctype + entryOverhead = 300+1+0+128
	// = 429 bytes; a 1000-byte budget holds two but not three.
	c := newTileCache(1000, 0)
	body := func(n int) []byte { return make([]byte, n) }
	c.add(&cacheEntry{key: "a", body: body(300)})
	c.add(&cacheEntry{key: "b", body: body(300)})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted below capacity")
	}
	// "a" is now most-recent; the third entry evicts "b".
	c.add(&cacheEntry{key: "c", body: body(300)})
	if _, ok := c.get("b"); ok {
		t.Error("b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently-used a evicted before b")
	}
	if got := c.bytes(); got != 2*429 {
		t.Errorf("cache holds %d bytes, want %d", got, 2*429)
	}
	// Oversized entries are refused rather than flushing the cache:
	// 900 body bytes + key + overhead exceeds the 1000-byte budget.
	c.add(&cacheEntry{key: "huge", body: body(900)})
	if _, ok := c.get("huge"); ok {
		t.Error("over-capacity body cached")
	}
	if c.len() != 2 {
		t.Errorf("cache has %d entries, want 2", c.len())
	}
}

// TestTileCacheChargesOverhead pins the byte-accounting rule: tiny
// bodies cannot pack the cache beyond its budget because keys and
// fixed per-entry overhead are charged too.
func TestTileCacheChargesOverhead(t *testing.T) {
	c := newTileCache(1<<10, 0)
	for i := 0; i < 100; i++ {
		c.add(&cacheEntry{key: strings.Repeat("k", 30) + string(rune('a'+i)), body: []byte{1}})
	}
	// Body-only accounting would keep all 100 (100 bytes); charged
	// accounting fits at most 1024/160 = 6.
	if got := c.len(); got > 6 {
		t.Errorf("cache holds %d single-byte entries under a 1KiB budget; overhead not charged", got)
	}
	if got := c.bytes(); got > 1<<10 {
		t.Errorf("cache charges %d bytes, budget %d", got, 1<<10)
	}
}

func TestTileCachePinnedTier(t *testing.T) {
	// Main tier fits two 429-byte entries, pinned tier fits two.
	c := newTileCache(1000, 1000)
	body := func(n int) []byte { return make([]byte, n) }
	c.add(&cacheEntry{key: "p", body: body(300), pinned: true})
	c.add(&cacheEntry{key: "q", body: body(300), pinned: true})
	// A flood of unpinned tiles must not evict the pinned ones.
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		c.add(&cacheEntry{key: k, body: body(300)})
	}
	for _, k := range []string{"p", "q"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("pinned %q evicted by unpinned churn", k)
		}
	}
	if got := c.pinnedLen(); got != 2 {
		t.Errorf("pinned tier holds %d entries, want 2", got)
	}
	if got, want := c.pinnedBytes(), int64(2*429); got != want {
		t.Errorf("pinned tier charges %d bytes, want %d", got, want)
	}
	// Pinned entries evict among themselves when their own budget fills.
	c.add(&cacheEntry{key: "r", body: body(300), pinned: true})
	if _, ok := c.get("p"); ok {
		t.Error("pinned LRU did not evict its own oldest entry")
	}
	if _, ok := c.get("r"); !ok {
		t.Error("new pinned entry missing")
	}
	// No pinned budget: pinned adds compete in the main tier instead of
	// vanishing.
	c2 := newTileCache(1000, 0)
	c2.add(&cacheEntry{key: "p", body: body(300), pinned: true})
	if _, ok := c2.get("p"); !ok {
		t.Error("pinned add dropped when pinned tier is disabled")
	}
	if got := c2.pinnedLen(); got != 0 {
		t.Errorf("disabled pinned tier holds %d entries", got)
	}
}

func TestTileCacheDisabled(t *testing.T) {
	c := newTileCache(-1, 1<<20)
	c.add(&cacheEntry{key: "a", body: []byte{1}})
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
	c.add(&cacheEntry{key: "p", body: []byte{1}, pinned: true})
	if _, ok := c.get("p"); ok {
		t.Error("disabled cache stored a pinned entry")
	}
}

func TestMetricsPrometheusText(t *testing.T) {
	m := newMetrics()
	m.countRequest("tile", 200)
	m.countRequest("tile", 200)
	m.countRequest("tile", 429)
	m.countRequest("healthz", 200)
	m.latency.observe(3 * time.Millisecond)
	m.latency.observe(40 * time.Millisecond)
	m.cacheHits.Add(1)
	var buf bytes.Buffer
	m.writePrometheus(&buf, []gaugeFn{{"rrsd_queue_depth", "q", func() int64 { return 7 }}})
	out := buf.String()
	for _, want := range []string{
		`rrsd_requests_total{route="healthz",code="200"} 1`,
		`rrsd_requests_total{route="tile",code="200"} 2`,
		`rrsd_requests_total{route="tile",code="429"} 1`,
		`rrsd_request_seconds_bucket{le="+Inf"} 2`,
		`rrsd_request_seconds_count 2`,
		`rrsd_tile_cache_hits_total 1`,
		`rrsd_queue_depth 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	// Deterministic rendering: a second scrape with no new events is
	// byte-identical (sorted map iteration).
	var buf2 bytes.Buffer
	m.writePrometheus(&buf2, []gaugeFn{{"rrsd_queue_depth", "q", func() int64 { return 7 }}})
	if buf.String() != buf2.String() {
		t.Error("consecutive scrapes differ")
	}
}

func TestF32CodecRoundTrip(t *testing.T) {
	g := grid.New(5, 3)
	for i := range g.Data {
		g.Data[i] = float64(i) * 0.25
	}
	body := encodeF32(g)
	if len(body) != 4*len(g.Data) {
		t.Fatalf("encoded %d bytes, want %d", len(body), 4*len(g.Data))
	}
	vals := decodeF32(body)
	for i, v := range vals {
		if !approx.Exact(float64(v), float64(float32(g.Data[i]))) {
			t.Fatalf("sample %d decoded to %g, want %g", i, v, float32(g.Data[i]))
		}
	}
}
