package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"roughsurface/internal/approx"
	"roughsurface/internal/core"
	"roughsurface/internal/grid"
)

// The request fixtures. scripts/check.sh and the core fuzz seeds use
// these same documents, so the whole stack — fuzzer, unit tests,
// integration tests, CI smoke — exercises one set of scenes.
const (
	fixtureHomog = `{"nx":64,"ny":64,"method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":8}}`
	fixturePlate = `{"nx":64,"ny":64,"method":"plate","regions":[
	  {"shape":"rect","x1":0,"t":4,"spectrum":{"family":"gaussian","h":1,"cl":8}},
	  {"shape":"circle","cx":16,"cy":0,"r":20,"t":4,"spectrum":{"family":"exponential","h":2,"cl":5}}]}`
	fixturePoint = `{"nx":64,"ny":64,"method":"point","transition_t":10,"points":[
	  {"x":-20,"y":0,"spectrum":{"family":"gaussian","h":1,"cl":8}},
	  {"x":20,"y":0,"spectrum":{"family":"gaussian","h":2.5,"cl":8}}]}`
)

func TestSceneIDCanonicalization(t *testing.T) {
	parse := func(s string) core.Scene {
		sc, err := core.ParseScene([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	base := parse(fixtureHomog)
	id1, canonical, err := SceneID(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(id1) != sceneIDLen {
		t.Fatalf("scene id %q has length %d, want %d", id1, len(id1), sceneIDLen)
	}
	// Same scene, different formatting, reordered keys, defaults spelled
	// out: one ID.
	same := []string{
		"{\n  \"ny\": 64,\n  \"nx\": 64,\n  \"method\": \"homogeneous\",\n  \"spectrum\": {\"cl\": 10, \"family\": \"gaussian\", \"h\": 1}\n}",
		`{"nx":64,"ny":64,"dx":1,"dy":1,"seed":1,"generator":"conv","method":"homogeneous","spectrum":{"family":"gaussian","h":1,"cl":10}}`,
	}
	// Patch cl to match fixture (10 vs 8): use an actually-identical pair.
	same[0] = strings.ReplaceAll(same[0], "10", "8")
	same[1] = strings.ReplaceAll(same[1], "10", "8")
	for i, doc := range same {
		id2, _, err := SceneID(parse(doc))
		if err != nil {
			t.Fatal(err)
		}
		if id2 != id1 {
			t.Errorf("variant %d hashed to %s, want %s", i, id2, id1)
		}
	}
	// Different content: different ID.
	other, _, err := SceneID(parse(fixturePlate))
	if err != nil {
		t.Fatal(err)
	}
	if other == id1 {
		t.Error("distinct scenes share an ID")
	}
	// Canonical JSON re-parses to the same ID (fixed point).
	id3, _, err := SceneID(parse(string(canonical)))
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Error("canonical JSON does not re-hash to the same ID")
	}
}

func TestRegistryRejectsDFTAndBounds(t *testing.T) {
	r := newRegistry(1)
	if _, _, err := r.register([]byte(`{"nx":64,"ny":64,"method":"homogeneous","generator":"dft",
		"spectrum":{"family":"gaussian","h":1,"cl":8}}`), 1, 4); err == nil {
		t.Error("dft scene registered; want rejection")
	}
	if _, created, err := r.register([]byte(fixtureHomog), 1, 4); err != nil || !created {
		t.Fatalf("first register: created=%v err=%v", created, err)
	}
	// Idempotent re-register of the same content succeeds even at cap.
	if _, created, err := r.register([]byte(fixtureHomog), 1, 4); err != nil || created {
		t.Fatalf("re-register: created=%v err=%v; want existing entry", created, err)
	}
	if _, _, err := r.register([]byte(fixturePlate), 1, 4); err != errRegistryFull {
		t.Errorf("register over cap: err=%v, want errRegistryFull", err)
	}
}

func TestSeedGeneratorLRUBounded(t *testing.T) {
	r := newRegistry(4)
	e, _, err := r.register([]byte(fixtureHomog), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		if _, err := e.generator(context.Background(), seed); err != nil {
			t.Fatal(err)
		}
	}
	e.mu.Lock()
	n := len(e.gens)
	e.mu.Unlock()
	if n > 2 {
		t.Errorf("seed generator cache holds %d entries, cap 2", n)
	}
}

func TestParseWindow(t *testing.T) {
	good := map[string]window{
		"0,0,64x64":      {0, 0, 64, 64},
		"-128,32,256x16": {-128, 32, 256, 16},
	}
	for in, want := range good {
		got, err := parseWindow(in)
		if err != nil || got != want {
			t.Errorf("parseWindow(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "0,0", "0,0,64", "0,0,64x", "a,0,64x64", "0,b,64x64", "0,0,0x64", "0,0,64x-1", "0,0,4.5x4"} {
		if _, err := parseWindow(in); err == nil {
			t.Errorf("parseWindow(%q) accepted", in)
		}
	}
}

func TestTileCacheEvictsByBytes(t *testing.T) {
	c := newTileCache(100)
	body := func(n int) []byte { return make([]byte, n) }
	c.add(&cacheEntry{key: "a", body: body(40)})
	c.add(&cacheEntry{key: "b", body: body(40)})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted below capacity")
	}
	// "a" is now most-recent; adding 40 more evicts "b".
	c.add(&cacheEntry{key: "c", body: body(40)})
	if _, ok := c.get("b"); ok {
		t.Error("b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently-used a evicted before b")
	}
	if got := c.bytes(); got != 80 {
		t.Errorf("cache holds %d bytes, want 80", got)
	}
	// Oversized bodies are refused rather than flushing the cache.
	c.add(&cacheEntry{key: "huge", body: body(101)})
	if _, ok := c.get("huge"); ok {
		t.Error("over-capacity body cached")
	}
	if c.len() != 2 {
		t.Errorf("cache has %d entries, want 2", c.len())
	}
}

func TestTileCacheDisabled(t *testing.T) {
	c := newTileCache(-1)
	c.add(&cacheEntry{key: "a", body: []byte{1}})
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestMetricsPrometheusText(t *testing.T) {
	m := newMetrics()
	m.countRequest("tile", 200)
	m.countRequest("tile", 200)
	m.countRequest("tile", 429)
	m.countRequest("healthz", 200)
	m.latency.observe(3 * time.Millisecond)
	m.latency.observe(40 * time.Millisecond)
	m.cacheHits.Add(1)
	var buf bytes.Buffer
	m.writePrometheus(&buf, []gaugeFn{{"rrsd_queue_depth", "q", func() int64 { return 7 }}})
	out := buf.String()
	for _, want := range []string{
		`rrsd_requests_total{route="healthz",code="200"} 1`,
		`rrsd_requests_total{route="tile",code="200"} 2`,
		`rrsd_requests_total{route="tile",code="429"} 1`,
		`rrsd_request_seconds_bucket{le="+Inf"} 2`,
		`rrsd_request_seconds_count 2`,
		`rrsd_tile_cache_hits_total 1`,
		`rrsd_queue_depth 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	// Deterministic rendering: a second scrape with no new events is
	// byte-identical (sorted map iteration).
	var buf2 bytes.Buffer
	m.writePrometheus(&buf2, []gaugeFn{{"rrsd_queue_depth", "q", func() int64 { return 7 }}})
	if buf.String() != buf2.String() {
		t.Error("consecutive scrapes differ")
	}
}

func TestF32CodecRoundTrip(t *testing.T) {
	g := grid.New(5, 3)
	for i := range g.Data {
		g.Data[i] = float64(i) * 0.25
	}
	body := encodeF32(g)
	if len(body) != 4*len(g.Data) {
		t.Fatalf("encoded %d bytes, want %d", len(body), 4*len(g.Data))
	}
	vals := decodeF32(body)
	for i, v := range vals {
		if !approx.Exact(float64(v), float64(float32(g.Data[i]))) {
			t.Fatalf("sample %d decoded to %g, want %g", i, v, float32(g.Data[i]))
		}
	}
}
